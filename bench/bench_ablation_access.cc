// Ablation beyond the paper's figures: implicit host-memory access (the
// design GAMMA builds on, §II-B) vs Subway-style explicit transfer, which
// gathers + reorganizes + ships the frontier before every extension. The
// paper argues explicit transfer "cannot be applied to large-scale GPM";
// this bench quantifies the gap on multi-extension workloads.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gpm;

void BM_Access(benchmark::State& state, std::string dataset,
               core::GraphPlacement placement, int k) {
  const graph::Graph& g = bench::Dataset(dataset);
  for (auto _ : state) {
    gpusim::Device device(bench::BenchDeviceParams());
    core::GammaOptions options = bench::BenchGammaOptions();
    options.access.placement = placement;
    auto r = baselines::GammaKClique(&device, g, k, options);
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    state.counters["h2d_MiB"] =
        static_cast<double>(device.stats().explicit_h2d_bytes +
                            device.stats().um_migrated_bytes) /
        1048576.0;
    bench::ReportSimMillis(state, r.value().sim_millis);
  }
}

}  // namespace

int main(int argc, char** argv) {
  struct {
    core::GraphPlacement placement;
    const char* name;
  } modes[] = {
      {core::GraphPlacement::kHybridAdaptive, "implicit-hybrid"},
      {core::GraphPlacement::kExplicitTransfer, "explicit-transfer"},
  };
  for (const char* name : {"ER", "EA", "CP", "CL"}) {
    for (const auto& m : modes) {
      std::string ds = name;
      core::GraphPlacement p = m.placement;
      bench::RegisterSim(
          std::string("AblationAccess/4CL/") + m.name + "/" + ds,
          [ds, p](benchmark::State& s) { BM_Access(s, ds, p, 4); });
    }
  }
  return bench::Main(argc, argv);
}
