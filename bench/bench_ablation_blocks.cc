// Ablation of Optimization 1's block size (the paper fixes 8 KB and argues
// warps as write units balance contention vs waste): sweeps the memory-pool
// block size and reports time plus allocation behaviour. Expected shape:
// tiny blocks inflate atomic contention (many pool requests), huge blocks
// inflate waste; a broad sweet spot sits around the paper's 8 KB.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gpm;

void BM_Blocks(benchmark::State& state, std::string dataset,
               std::size_t block_bytes) {
  const graph::Graph& g = bench::Dataset(dataset);
  for (auto _ : state) {
    gpusim::Device device(bench::BenchDeviceParams());
    core::GammaOptions options = bench::BenchGammaOptions();
    options.extension.block_bytes = block_bytes;
    auto r = baselines::GammaKClique(&device, g, 4, options);
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    state.counters["pool_requests"] =
        static_cast<double>(device.stats().pool_block_requests);
    state.counters["blocks_wasted"] =
        static_cast<double>(device.stats().pool_blocks_wasted);
    bench::ReportSimMillis(state, r.value().sim_millis);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* name : {"EA", "CL"}) {
    for (std::size_t kb : {1, 2, 8, 32, 128, 512}) {
      std::string ds = name;
      std::size_t bytes = kb << 10;
      bench::RegisterSim(
          std::string("AblationBlocks/4CL/") + ds + "/" +
              std::to_string(kb) + "KB",
          [ds, bytes](benchmark::State& s) { BM_Blocks(s, ds, bytes); });
    }
  }
  return bench::Main(argc, argv);
}
