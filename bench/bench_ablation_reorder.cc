// Ablation: vertex-ordering effect on the self-adaptive access policy.
// Related work (§VII-C) improves UM/zero-copy performance by reordering
// graphs; this bench runs the same workload on degree-sorted, BFS and
// random layouts. Degree-descending clusters hub adjacency lists into few
// pages, which the AccHeat policy can pin; a random layout smears them.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "graph/reorder.h"

namespace {

using namespace gpm;

void BM_Reorder(benchmark::State& state, std::string dataset,
                graph::ReorderStrategy strategy) {
  graph::Graph g =
      graph::Reorder(bench::Dataset(dataset), strategy, /*seed=*/3);
  for (auto _ : state) {
    gpusim::Device device(bench::BenchDeviceParams());
    auto r = baselines::GammaKClique(&device, g, 4,
                                     bench::BenchGammaOptions());
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    state.counters["um_faults"] =
        static_cast<double>(device.stats().um_page_faults);
    state.counters["zc_tx"] =
        static_cast<double>(device.stats().zc_transactions);
    bench::ReportSimMillis(state, r.value().sim_millis);
  }
}

}  // namespace

int main(int argc, char** argv) {
  struct {
    graph::ReorderStrategy strategy;
    const char* name;
  } strategies[] = {
      {graph::ReorderStrategy::kDegreeDescending, "degree-desc"},
      {graph::ReorderStrategy::kBfs, "bfs"},
      {graph::ReorderStrategy::kRandom, "random"},
      {graph::ReorderStrategy::kDegeneracy, "degeneracy"},
  };
  for (const char* name : {"EA", "CP", "CL"}) {
    for (const auto& strat : strategies) {
      std::string ds = name;
      graph::ReorderStrategy s2 = strat.strategy;
      bench::RegisterSim(
          std::string("AblationReorder/4CL/") + strat.name + "/" + ds,
          [ds, s2](benchmark::State& s) { BM_Reorder(s, ds, s2); });
    }
  }
  return bench::Main(argc, argv);
}
