#ifndef GAMMA_BENCH_BENCH_COMMON_H_
#define GAMMA_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "baselines/presets.h"
#include "baselines/systems.h"
#include "graph/datasets.h"
#include "gpusim/device.h"
#include "gpusim/profile.h"

namespace gpm::bench {

/// Simulated device used across the benches. The ratios mirror the paper's
/// testbed: device memory is small relative to the proxy graphs and their
/// intermediate results, the same way 16 GB compares to billion-edge
/// graphs and 310 GB of intermediates.
inline gpusim::SimParams BenchDeviceParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 4ull << 20;  // 4 MiB "device"
  // The page buffer is deliberately much smaller than the proxy graphs
  // (64 pages vs hundreds of CSR pages) — the paper's regime, where the
  // choice of which pages to cache actually matters.
  p.um_device_buffer_bytes = 256ull << 10;
  return p;
}

/// Device for the in-core systems (Pangolin-GPU, GSI): same capacity, but
/// no unified-memory page buffer — they use explicit transfers only, so
/// all device memory serves data (as on real hardware).
inline gpusim::SimParams InCoreDeviceParams() {
  gpusim::SimParams p = BenchDeviceParams();
  p.um_device_buffer_bytes = 0;
  return p;
}

/// GAMMA options sized for the bench device.
inline core::GammaOptions BenchGammaOptions() {
  core::GammaOptions options = baselines::GammaDefaultOptions();
  options.extension.pool_bytes = 2ull << 20;
  return options;
}

/// Dataset cache: proxies are generated once per bench binary.
inline const graph::Graph& Dataset(const std::string& name) {
  static std::map<std::string, graph::Graph>* cache =
      new std::map<std::string, graph::Graph>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    graph::Graph g = graph::MakeDataset(name);
    g.EnsureEdgeIndex();
    it = cache->emplace(name, std::move(g)).first;
  }
  return it->second;
}

/// Reports one completed system run: simulated time becomes the manual
/// iteration time, so the benchmark table reads in simulated seconds.
inline void ReportSimMillis(benchmark::State& state, double sim_millis) {
  state.SetIterationTime(sim_millis / 1e3);
  state.counters["sim_ms"] = sim_millis;
}

/// Standard skip for the paper's "crashed on this dataset" cases.
inline void SkipCrashed(benchmark::State& state, const Status& status) {
  state.SkipWithError(status.ToString().c_str());
}

/// Attaches the run's memory-traffic counters and per-phase simulated time
/// to the benchmark, so the reported table carries the same breakdown the
/// JSON profile exports (headline counters plus one `<phase>_ms` column
/// per engine phase that ran).
inline void ReportProfile(benchmark::State& state,
                          const gpusim::Device& device) {
  const gpusim::DeviceStats& s = device.stats();
  state.counters["um_faults"] = static_cast<double>(s.um_page_faults);
  state.counters["um_hits"] = static_cast<double>(s.um_page_hits);
  state.counters["um_migrated_B"] = static_cast<double>(s.um_migrated_bytes);
  state.counters["zc_tx"] = static_cast<double>(s.zc_transactions);
  state.counters["pool_wasted"] = static_cast<double>(s.pool_blocks_wasted);
  for (const gpusim::PhaseRecord& ph : device.profile().phases()) {
    state.counters[ph.name + "_ms"] =
        device.params().CyclesToMillis(ph.cycles);
  }
}

/// Registers a single-shot manual-time benchmark. The installed
/// google-benchmark lacks the variadic RegisterBenchmark overload, so
/// benches bind their arguments in a capturing lambda.
template <typename Fn>
benchmark::internal::Benchmark* RegisterSim(const std::string& name,
                                            Fn fn) {
  return benchmark::RegisterBenchmark(name.c_str(), fn)
      ->UseManualTime()
      ->Iterations(1);
}

}  // namespace gpm::bench

#endif  // GAMMA_BENCH_BENCH_COMMON_H_
