#ifndef GAMMA_BENCH_BENCH_COMMON_H_
#define GAMMA_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/presets.h"
#include "baselines/systems.h"
#include "common/json.h"
#include "graph/datasets.h"
#include "gpusim/critpath.h"
#include "gpusim/device.h"
#include "gpusim/profile.h"
#include "gpusim/resource_class.h"

namespace gpm::bench {

/// Host threads used by every simulated device the benches construct,
/// settable with `--host-threads=N` (see Main). Purely a wall-clock knob:
/// the executor's ordered replay keeps every simulated result bit-identical
/// to a serial run — the CI identity smoke diffs the exported JSON between
/// 1 and 4 threads to enforce exactly that.
inline int& BenchHostThreads() {
  static int threads = 1;
  return threads;
}

/// When non-empty (set with `--trace-out=<prefix>`), every RegisterSim run
/// that calls ReportProfile also writes a Chrome trace-event timeline to
/// `<prefix><sanitized-run-name>.trace.json`.
inline std::string& BenchTraceOutPrefix() {
  static std::string* prefix = new std::string();
  return *prefix;
}

/// Simulated device used across the benches. The ratios mirror the paper's
/// testbed: device memory is small relative to the proxy graphs and their
/// intermediate results, the same way 16 GB compares to billion-edge
/// graphs and 310 GB of intermediates.
inline gpusim::SimParams BenchDeviceParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 4ull << 20;  // 4 MiB "device"
  // The page buffer is deliberately much smaller than the proxy graphs
  // (64 pages vs hundreds of CSR pages) — the paper's regime, where the
  // choice of which pages to cache actually matters.
  p.um_device_buffer_bytes = 256ull << 10;
  p.host_threads = BenchHostThreads();
  // Command recording is pure observation (no simulated result changes)
  // and feeds the per-run bottleneck summary in the bench JSON.
  p.record_commands = true;
  p.record_timeline = !BenchTraceOutPrefix().empty();
  return p;
}

/// Device for the in-core systems (Pangolin-GPU, GSI): same capacity, but
/// no unified-memory page buffer — they use explicit transfers only, so
/// all device memory serves data (as on real hardware).
inline gpusim::SimParams InCoreDeviceParams() {
  gpusim::SimParams p = BenchDeviceParams();
  p.um_device_buffer_bytes = 0;
  return p;
}

/// Plan profiler attach switch for GAMMA bench runs, settable with
/// `--planprof=off` (see Main). On by default: profiling is observation
/// only (bit-identical cycles and counters — the planprof smoke CI job
/// diffs on-vs-off bench JSON at tolerance zero to enforce it), and the
/// per-level Q-error digest lands in the bench JSON.
inline bool& BenchPlanProf() {
  static bool enabled = true;
  return enabled;
}

/// GAMMA options sized for the bench device.
inline core::GammaOptions BenchGammaOptions() {
  core::GammaOptions options = baselines::GammaDefaultOptions();
  options.extension.pool_bytes = 2ull << 20;
  options.plan_profile = BenchPlanProf();
  return options;
}

/// Dataset cache: proxies are generated once per bench binary.
inline const graph::Graph& Dataset(const std::string& name) {
  static std::map<std::string, graph::Graph>* cache =
      new std::map<std::string, graph::Graph>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    graph::Graph g = graph::MakeDataset(name);
    g.EnsureEdgeIndex();
    it = cache->emplace(name, std::move(g)).first;
  }
  return it->second;
}

/// One variant run captured for the machine-readable bench export: the
/// benchmark's full name, its outcome, simulated time/cycles, the device
/// configuration it ran on, and the complete hardware-counter and
/// per-phase breakdown.
struct BenchRun {
  std::string name;
  bool skipped = false;
  std::string error;
  double sim_millis = 0;
  double cycles = 0;
  /// Real (host) time the variant took, for the parallel-executor speedup
  /// report. Unlike everything else in the document this is inherently
  /// nondeterministic — comparison tooling ignores it.
  double wall_clock_ms = 0;
  std::size_t device_memory_bytes = 0;
  std::size_t um_device_buffer_bytes = 0;
  int num_warp_slots = 0;
  int streams = 0;
  int host_threads = 1;
  std::size_t peak_device_bytes = 0;
  std::size_t peak_host_bytes = 0;
  double link_busy_cycles = 0;
  gpusim::DeviceStats counters;
  std::vector<gpusim::PhaseRecord> phases;
  /// Adaptivity-audit totals when the variant ran with an audit attached
  /// (adaptivity.enabled stays false otherwise and no JSON is emitted).
  core::AdaptivitySummary adaptivity;
  /// gamma-prof bottleneck summary, filled when the device recorded its
  /// command timeline (BenchDeviceParams turns recording on).
  bool has_bottleneck = false;
  bool critpath_partial = false;
  double critical_path_cycles = 0;
  double pcie_link_utilization = 0;
  gpusim::ResourceClass binding = gpusim::ResourceClass::kSyncIdle;
  gpusim::ResourceCycles resource_cycles{};
  std::vector<prof::WhatIf> whatifs;
  /// Compiled-plan summary when the variant ran through the pattern
  /// compiler (plan.enabled stays false otherwise; no JSON is emitted).
  core::PlanSummary plan;
  /// Plan-profiler digest when the variant ran with a profiler attached
  /// (planprof.enabled stays false otherwise; no JSON is emitted).
  core::PlanProfSummary planprof;
};

/// Collects every RegisterSim run of a bench binary and writes one
/// versioned `gamma.bench.v1` JSON document, so CI and future PRs can
/// diff perf trajectories instead of scraping console tables. Enabled by
/// the `--json=<file>` flag (see `Main()`); zero-cost when disabled.
class BenchJson {
 public:
  static BenchJson& Get() {
    static BenchJson* instance = new BenchJson();
    return *instance;
  }

  void Enable(std::string path, std::string binary) {
    path_ = std::move(path);
    binary_ = std::move(binary);
  }
  bool enabled() const { return !path_.empty(); }

  /// Opens a fresh record; subsequent Report*/SkipCrashed calls fill it.
  void BeginRun(const std::string& name) {
    if (!enabled()) return;
    runs_.emplace_back();
    runs_.back().name = name;
  }

  /// The record being filled, or nullptr when the export is disabled.
  BenchRun* Current() {
    return enabled() && !runs_.empty() ? &runs_.back() : nullptr;
  }

  /// Writes the document; returns false (with a message) on I/O failure.
  bool Write() const {
    std::ostringstream os;
    JsonWriter w(os);
    w.BeginObject();
    w.Key("schema").Value("gamma.bench.v1");
    w.Key("binary").Value(binary_);
    w.Key("runs").BeginArray();
    for (const BenchRun& r : runs_) {
      w.BeginObject();
      w.Key("name").Value(r.name);
      w.Key("skipped").Value(r.skipped);
      if (!r.error.empty()) w.Key("error").Value(r.error);
      w.Key("sim_millis").Value(r.sim_millis);
      w.Key("cycles").Value(r.cycles);
      w.Key("wall_clock_ms").Value(r.wall_clock_ms);
      w.Key("params").BeginObject();
      w.Key("device_memory_bytes").Value(r.device_memory_bytes);
      w.Key("um_device_buffer_bytes").Value(r.um_device_buffer_bytes);
      w.Key("num_warp_slots").Value(r.num_warp_slots);
      w.Key("streams").Value(r.streams);
      w.Key("host_threads").Value(r.host_threads);
      w.EndObject();
      w.Key("peak_device_bytes").Value(r.peak_device_bytes);
      w.Key("peak_host_bytes").Value(r.peak_host_bytes);
      w.Key("link_busy_cycles").Value(r.link_busy_cycles);
      w.Key("counters").BeginObject();
      for (const gpusim::DeviceStats::Field& f :
           gpusim::DeviceStats::Fields()) {
        w.Key(f.name).Value(r.counters.*f.member);
      }
      w.EndObject();
      w.Key("phases").BeginArray();
      for (const gpusim::PhaseRecord& ph : r.phases) {
        w.BeginObject();
        w.Key("name").Value(ph.name);
        w.Key("invocations").Value(ph.invocations);
        w.Key("cycles").Value(ph.cycles);
        w.EndObject();
      }
      w.EndArray();
      if (r.has_bottleneck) {
        w.Key("bottleneck").BeginObject();
        w.Key("partial").Value(r.critpath_partial);
        w.Key("critical_path_cycles").Value(r.critical_path_cycles);
        w.Key("binding").Value(gpusim::ResourceClassName(r.binding));
        w.Key("pcie_link_utilization").Value(r.pcie_link_utilization);
        w.Key("resource_cycles").BeginObject();
        for (int c = 0; c < gpusim::kNumResourceClasses; ++c) {
          w.Key(gpusim::ResourceClassName(
                    static_cast<gpusim::ResourceClass>(c)))
              .Value(r.resource_cycles[static_cast<std::size_t>(c)]);
        }
        w.EndObject();
        w.Key("whatif").BeginArray();
        for (const prof::WhatIf& wi : r.whatifs) {
          w.BeginObject();
          w.Key("resource").Value(gpusim::ResourceClassName(wi.resource));
          w.Key("cost_factor").Value(wi.cost_factor);
          w.Key("projected_cycles").Value(wi.projected_cycles);
          w.Key("speedup").Value(wi.speedup);
          w.EndObject();
        }
        w.EndArray();
        w.EndObject();
      }
      if (r.plan.enabled) {
        w.Key("plan").BeginObject();
        w.Key("kind").Value(r.plan.kind);
        w.Key("order").BeginArray();
        for (int v : r.plan.order) w.Value(v);
        w.EndArray();
        w.Key("levels").Value(r.plan.levels);
        w.Key("symmetry_broken").Value(r.plan.symmetry_broken);
        w.EndObject();
      }
      if (r.planprof.enabled) {
        w.Key("planprof").BeginObject();
        w.Key("worst_q_error").Value(r.planprof.worst_q_error);
        w.Key("worst_q_error_depth").Value(r.planprof.worst_q_error_depth);
        w.Key("imbalance").Value(r.planprof.imbalance);
        w.Key("levels").BeginArray();
        for (const core::PlanProfSummary::Level& level : r.planprof.levels) {
          w.BeginObject();
          w.Key("label").Value(level.label);
          w.Key("depth").Value(level.depth);
          w.Key("has_estimate").Value(level.has_estimate);
          w.Key("est_rows").Value(level.est_rows);
          w.Key("rows").Value(level.rows);
          w.Key("q_error").Value(level.q_error);
          w.EndObject();
        }
        w.EndArray();
        w.EndObject();
      }
      if (r.adaptivity.enabled) {
        const core::AdaptivitySummary& a = r.adaptivity;
        w.Key("adaptivity").BeginObject();
        w.Key("extensions").Value(a.extensions);
        w.Key("mean_unified_pages").Value(a.mean_unified_pages);
        w.Key("plan_cycles").Value(a.plan_cycles);
        w.Key("actual_access_cycles").Value(a.actual_access_cycles);
        w.Key("est_unified_cycles").Value(a.est_unified_cycles);
        w.Key("est_zerocopy_cycles").Value(a.est_zerocopy_cycles);
        w.Key("regret_cycles").Value(a.regret_cycles);
        w.EndObject();
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    os << '\n';

    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
      return false;
    }
    out << os.str();
    std::printf("bench JSON written to %s (%zu runs)\n", path_.c_str(),
                runs_.size());
    return true;
  }

 private:
  BenchJson() = default;
  std::string path_;
  std::string binary_;
  std::vector<BenchRun> runs_;
};

/// Name of the RegisterSim run currently executing (used to name per-run
/// trace files even when the JSON export is disabled).
inline std::string& BenchCurrentRunName() {
  static std::string* name = new std::string();
  return *name;
}

/// Writes the device's recorded timeline to
/// `<prefix><sanitized-run-name>.trace.json` when `--trace-out` is set.
inline void WriteBenchTrace(const gpusim::Device& device) {
  const std::string& prefix = BenchTraceOutPrefix();
  if (prefix.empty() || !device.trace().enabled()) return;
  std::string tag = BenchCurrentRunName();
  for (char& c : tag) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!keep) c = '_';
  }
  const std::string path = prefix + tag + ".trace.json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  out << device.trace().ToChromeTraceJson(device.params());
  std::printf("timeline written to %s (%zu events)\n", path.c_str(),
              device.trace().events().size());
}

/// Reports one completed system run: simulated time becomes the manual
/// iteration time, so the benchmark table reads in simulated seconds.
inline void ReportSimMillis(benchmark::State& state, double sim_millis) {
  state.SetIterationTime(sim_millis / 1e3);
  state.counters["sim_ms"] = sim_millis;
  if (BenchRun* r = BenchJson::Get().Current()) r->sim_millis = sim_millis;
}

/// Standard skip for the paper's "crashed on this dataset" cases.
inline void SkipCrashed(benchmark::State& state, const Status& status) {
  state.SkipWithError(status.ToString().c_str());
  if (BenchRun* r = BenchJson::Get().Current()) {
    r->skipped = true;
    r->error = status.ToString();
  }
}

/// Attaches the run's memory-traffic counters and per-phase simulated time
/// to the benchmark, so the reported table carries the same breakdown the
/// JSON profile exports (headline counters plus one `<phase>_ms` column
/// per engine phase that ran).
inline void ReportProfile(benchmark::State& state,
                          const gpusim::Device& device) {
  const gpusim::DeviceStats& s = device.stats();
  state.counters["um_faults"] = static_cast<double>(s.um_page_faults);
  state.counters["um_hits"] = static_cast<double>(s.um_page_hits);
  state.counters["um_migrated_B"] = static_cast<double>(s.um_migrated_bytes);
  state.counters["zc_tx"] = static_cast<double>(s.zc_transactions);
  state.counters["pool_wasted"] = static_cast<double>(s.pool_blocks_wasted);
  for (const gpusim::PhaseRecord& ph : device.profile().phases()) {
    state.counters[ph.name + "_ms"] =
        device.params().CyclesToMillis(ph.cycles);
  }
  if (BenchRun* r = BenchJson::Get().Current()) {
    r->cycles = device.now_cycles();
    r->device_memory_bytes = device.params().device_memory_bytes;
    r->um_device_buffer_bytes = device.params().um_device_buffer_bytes;
    r->num_warp_slots = device.params().num_warp_slots;
    r->streams = device.streams().num_streams();
    r->link_busy_cycles = device.streams().link_busy_cycles();
    r->peak_device_bytes = device.PeakDeviceBytes();
    r->peak_host_bytes = device.host_tracker().peak_bytes();
    r->counters = device.stats().Snapshot();
    r->phases = device.profile().phases();
    if (device.critpath().enabled()) {
      auto analyzed = prof::Analyze(device);
      if (analyzed.ok()) {
        const prof::CritpathReport& rep = analyzed.value();
        r->has_bottleneck = true;
        r->critpath_partial = rep.partial;
        r->critical_path_cycles = rep.critical_path_cycles;
        r->pcie_link_utilization = rep.pcie_link_utilization;
        r->binding = rep.binding;
        r->resource_cycles = rep.resource_cycles;
        r->whatifs = rep.whatifs;
        state.counters["critpath_cy"] = rep.critical_path_cycles;
      } else {
        std::fprintf(stderr, "critpath analysis failed for %s: %s\n",
                     r->name.c_str(),
                     analyzed.status().ToString().c_str());
      }
    }
  }
  WriteBenchTrace(device);
}

/// Attaches a run's adaptivity-audit totals to the current BenchJson
/// record and surfaces the regret as a benchmark counter.
inline void ReportAdaptivity(benchmark::State& state,
                             const core::AdaptivitySummary& summary) {
  if (!summary.enabled) return;
  state.counters["regret_cy"] = summary.regret_cycles;
  if (BenchRun* r = BenchJson::Get().Current()) r->adaptivity = summary;
}

/// Attaches a run's compiled-plan summary to the current BenchJson
/// record (emitted as the exact-valued "plan" object).
inline void ReportPlan(benchmark::State& state,
                       const core::PlanSummary& summary) {
  (void)state;
  if (!summary.enabled) return;
  if (BenchRun* r = BenchJson::Get().Current()) r->plan = summary;
}

/// Attaches a run's plan-profiler digest to the current BenchJson record
/// and surfaces the worst per-level Q-error as a benchmark counter.
inline void ReportPlanProf(benchmark::State& state,
                           const core::PlanProfSummary& summary) {
  if (!summary.enabled) return;
  state.counters["worst_q_err"] = summary.worst_q_error;
  if (BenchRun* r = BenchJson::Get().Current()) r->planprof = summary;
}

/// Registers a single-shot manual-time benchmark. The installed
/// google-benchmark lacks the variadic RegisterBenchmark overload, so
/// benches bind their arguments in a capturing lambda. The wrapper also
/// opens a BenchJson record per run (the installed benchmark::State has
/// no name accessor, so the name is threaded through here).
template <typename Fn>
benchmark::internal::Benchmark* RegisterSim(const std::string& name,
                                            Fn fn) {
  return benchmark::RegisterBenchmark(
             name.c_str(),
             [name, fn](benchmark::State& state) mutable {
               BenchJson::Get().BeginRun(name);
               BenchCurrentRunName() = name;
               const auto wall_start = std::chrono::steady_clock::now();
               fn(state);
               if (BenchRun* r = BenchJson::Get().Current()) {
                 r->wall_clock_ms =
                     std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
                 r->host_threads = BenchHostThreads();
               }
             })
      ->UseManualTime()
      ->Iterations(1);
}

/// Shared bench-binary entry point: strips `--json=<file>` from the
/// arguments (everything else goes to google-benchmark as usual), runs
/// the registered benchmarks, and writes the `gamma.bench.v1` document
/// when requested. Call after registering all benchmarks:
///   `return bench::Main(argc, argv);`
inline int Main(int argc, char** argv) {
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      BenchTraceOutPrefix() = arg.substr(12);
    } else if (arg == "--planprof=off") {
      BenchPlanProf() = false;
    } else if (arg == "--planprof=on") {
      BenchPlanProf() = true;
    } else if (arg.rfind("--host-threads=", 0) == 0) {
      int threads = std::atoi(arg.c_str() + 15);
      if (threads < 1) {
        std::fprintf(stderr, "--host-threads wants a positive integer\n");
        return 1;
      }
      BenchHostThreads() = threads;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!json_path.empty()) {
    std::string binary = argv[0];
    std::size_t slash = binary.find_last_of('/');
    if (slash != std::string::npos) binary = binary.substr(slash + 1);
    BenchJson::Get().Enable(json_path, binary);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty() && !BenchJson::Get().Write()) return 1;
  return 0;
}

}  // namespace gpm::bench

#endif  // GAMMA_BENCH_BENCH_COMMON_H_
