// Table II: datasets. Prints the paper's datasets next to the synthetic
// proxies this reproduction generates (with the scale divisor), then
// benchmarks proxy generation itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "graph/datasets.h"

namespace {

using namespace gpm;

void PrintTable() {
  std::printf("=== Table II: datasets (paper vs generated proxy) ===\n");
  std::printf("%-5s %-12s %-10s %12s %14s %8s %12s %12s %8s\n", "name",
              "full", "family", "paper |V|", "paper |E|", "scale",
              "proxy |V|", "proxy |E|", "d_max");
  for (const graph::DatasetInfo& d : graph::AllDatasets()) {
    const graph::Graph& g = bench::Dataset(d.name);
    std::printf("%-5s %-12s %-10s %12llu %14llu %8.0f %12zu %12zu %8u\n",
                d.name.c_str(), d.full_name.c_str(), d.family.c_str(),
                static_cast<unsigned long long>(d.paper_nodes),
                static_cast<unsigned long long>(d.paper_edges),
                d.scale_divisor, g.num_vertices(), g.num_edges(),
                g.max_degree());
  }
  std::printf("\n");
}

void BM_GenerateDataset(benchmark::State& state, std::string name) {
  for (auto _ : state) {
    graph::Graph g = graph::MakeDataset(name);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.counters["edges"] = static_cast<double>(
      graph::MakeDataset(name).num_edges());
}

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  for (const char* name : {"ER", "EA", "CP", "CL", "CO", "SL5"}) {
    std::string ds = name;
    benchmark::RegisterBenchmark(
        (std::string("GenerateDataset/") + name).c_str(),
        [ds](benchmark::State& state) { BM_GenerateDataset(state, ds); });
  }
  return bench::Main(argc, argv);
}
