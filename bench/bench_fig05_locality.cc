// Fig. 5: temporal locality of hot pages across extensions. For each
// extension step of an SM / kCL run, reports the fraction of the top-K
// hot pages that were also hot in the previous extension. The paper
// observes >50% overlap (up to ~70% for larger K), which is what makes
// unified-memory buffering of hot pages pay off across extensions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "algos/kclique.h"
#include "algos/subgraph_matching.h"
#include "bench/bench_common.h"

namespace {

using namespace gpm;

// Runs WOJ steps manually so the heat tracker can be sampled per step.
void BM_SmLocality(benchmark::State& state, std::string dataset,
                   std::size_t top_k) {
  const graph::Graph& g = bench::Dataset(dataset);
  graph::Pattern q = graph::Pattern::SmQuery(2, g.num_labels());
  for (auto _ : state) {
    gpusim::Device device(bench::BenchDeviceParams());
    core::GammaEngine engine(&device, &g, bench::BenchGammaOptions());
    if (Status st = engine.Prepare(); !st.ok()) {
      bench::SkipCrashed(state, st);
      return;
    }
    std::vector<int> order = q.DefaultMatchingOrder();
    auto table = engine.InitVertexTable(q.label(order[0]));
    if (!table.ok()) {
      bench::SkipCrashed(state, table.status());
      return;
    }
    double overlap_sum = 0;
    int overlap_steps = 0;
    for (std::size_t d = 1; d < order.size(); ++d) {
      core::VertexExtensionSpec spec;
      for (std::size_t j = 0; j < d; ++j) {
        if (q.HasEdge(order[d], order[j])) {
          spec.intersect_positions.push_back(static_cast<int>(j));
        }
      }
      spec.candidate_label = q.label(order[d]);
      auto r = engine.VertexExtension(table.value().get(), spec);
      if (!r.ok()) {
        bench::SkipCrashed(state, r.status());
        return;
      }
      if (d >= 2) {
        overlap_sum += engine.accessor().heat().HotPageOverlap(top_k);
        ++overlap_steps;
      }
    }
    state.counters["hot_page_overlap_pct"] =
        overlap_steps > 0 ? 100.0 * overlap_sum / overlap_steps : 0.0;
    bench::ReportSimMillis(state, device.ElapsedMillis());
  }
}

void BM_KclLocality(benchmark::State& state, std::string dataset,
                    std::size_t top_k) {
  const graph::Graph& g = bench::Dataset(dataset);
  for (auto _ : state) {
    gpusim::Device device(bench::BenchDeviceParams());
    core::GammaEngine engine(&device, &g, bench::BenchGammaOptions());
    if (Status st = engine.Prepare(); !st.ok()) {
      bench::SkipCrashed(state, st);
      return;
    }
    auto table = engine.InitVertexTable();
    if (!table.ok()) return;
    double overlap_sum = 0;
    int overlap_steps = 0;
    for (int depth = 1; depth < 4; ++depth) {
      core::VertexExtensionSpec spec;
      for (int j = 0; j < depth; ++j) spec.intersect_positions.push_back(j);
      spec.require_ascending = true;
      auto r = engine.VertexExtension(table.value().get(), spec);
      if (!r.ok()) {
        bench::SkipCrashed(state, r.status());
        return;
      }
      if (depth >= 2) {
        overlap_sum += engine.accessor().heat().HotPageOverlap(top_k);
        ++overlap_steps;
      }
    }
    state.counters["hot_page_overlap_pct"] =
        overlap_steps > 0 ? 100.0 * overlap_sum / overlap_steps : 0.0;
    bench::ReportSimMillis(state, device.ElapsedMillis());
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* name : {"EA", "CP", "CL"}) {
    for (std::size_t k : {16, 64, 256}) {
      std::string ds = name;
      bench::RegisterSim(
          std::string("Fig5/SM-q2/") + ds + "/top" + std::to_string(k),
          [ds, k](benchmark::State& s) { BM_SmLocality(s, ds, k); });
      bench::RegisterSim(
          std::string("Fig5/4CL/") + ds + "/top" + std::to_string(k),
          [ds, k](benchmark::State& s) { BM_KclLocality(s, ds, k); });
    }
  }
  return bench::Main(argc, argv);
}
