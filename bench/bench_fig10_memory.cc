// Fig. 10: peak memory usage (host + device) of GAMMA vs the in-core GPU
// systems (Pangolin-GPU; GSI for SM) per workload. In-core systems only
// use device memory and crash once the working set exceeds it; GAMMA
// spills to host memory, and its embedding-table compression keeps the
// total below the uncompressed baselines where both run.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gpm;

void ReportMemory(benchmark::State& state,
                  const baselines::GpuRunResult& r) {
  state.counters["device_MiB"] =
      static_cast<double>(r.peak_device_bytes) / 1048576.0;
  state.counters["host_MiB"] =
      static_cast<double>(r.peak_host_bytes) / 1048576.0;
  state.counters["total_MiB"] =
      static_cast<double>(r.peak_device_bytes + r.peak_host_bytes) /
      1048576.0;
  bench::ReportSimMillis(state, r.sim_millis);
}

enum class System { kGamma, kPangolinGpu, kGsi };

// GAMMA runs carry the adaptivity audit so the bench JSON embeds the
// hybrid's counterfactual costs; the in-core systems have no host
// traffic to audit.
core::GammaOptions GammaOptions() {
  core::GammaOptions options = bench::BenchGammaOptions();
  options.adaptivity_audit = true;
  return options;
}

void BM_MemorySm(benchmark::State& state, std::string dataset, System sys) {
  const graph::Graph& g = bench::Dataset(dataset);
  graph::Pattern q = graph::Pattern::SmQuery(1, g.num_labels());
  for (auto _ : state) {
    gpusim::Device device(sys == System::kGamma
                               ? bench::BenchDeviceParams()
                               : bench::InCoreDeviceParams());
    Result<baselines::GpuRunResult> r =
        sys == System::kGamma
            ? baselines::GammaMatch(&device, g, q, GammaOptions())
            : baselines::GsiMatch(&device, g, q);
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    bench::ReportProfile(state, device);
    bench::ReportAdaptivity(state, r.value().adaptivity);
    bench::ReportPlan(state, r.value().plan);
    bench::ReportPlanProf(state, r.value().planprof);
    ReportMemory(state, r.value());
  }
}

void BM_MemoryKcl(benchmark::State& state, std::string dataset,
                  System sys) {
  const graph::Graph& g = bench::Dataset(dataset);
  for (auto _ : state) {
    gpusim::Device device(sys == System::kGamma
                               ? bench::BenchDeviceParams()
                               : bench::InCoreDeviceParams());
    Result<baselines::GpuRunResult> r =
        sys == System::kGamma
            ? baselines::GammaKClique(&device, g, 4, GammaOptions())
            : baselines::PangolinGpuKClique(&device, g, 4);
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    bench::ReportProfile(state, device);
    bench::ReportAdaptivity(state, r.value().adaptivity);
    bench::ReportPlan(state, r.value().plan);
    bench::ReportPlanProf(state, r.value().planprof);
    ReportMemory(state, r.value());
  }
}

void BM_MemoryFpm(benchmark::State& state, std::string dataset,
                  System sys) {
  const graph::Graph& g = bench::Dataset(dataset);
  uint64_t min_support = g.num_edges() / 10;
  for (auto _ : state) {
    gpusim::Device device(sys == System::kGamma
                               ? bench::BenchDeviceParams()
                               : bench::InCoreDeviceParams());
    Result<baselines::GpuRunResult> r =
        sys == System::kGamma
            ? baselines::GammaFpm(&device, g, 3, min_support,
                                  GammaOptions())
            : baselines::PangolinGpuFpm(&device, g, 3, min_support);
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    bench::ReportProfile(state, device);
    bench::ReportAdaptivity(state, r.value().adaptivity);
    bench::ReportPlan(state, r.value().plan);
    bench::ReportPlanProf(state, r.value().planprof);
    ReportMemory(state, r.value());
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* name : {"ER", "EA", "CP", "CL", "CO", "SL5", "CL8"}) {
    std::string ds = name;
    bench::RegisterSim(
        std::string("Fig10/SM-q1/GAMMA/") + ds,
        [ds](benchmark::State& s) { BM_MemorySm(s, ds, System::kGamma); });
    bench::RegisterSim(
        std::string("Fig10/SM-q1/GSI/") + ds,
        [ds](benchmark::State& s) { BM_MemorySm(s, ds, System::kGsi); });
  }
  for (const char* name : {"ER", "EA", "CP", "CL"}) {
    std::string ds = name;
    bench::RegisterSim(std::string("Fig10/4CL/GAMMA/") + ds,
                       [ds](benchmark::State& s) {
                         BM_MemoryKcl(s, ds, System::kGamma);
                       });
    bench::RegisterSim(std::string("Fig10/4CL/Pangolin-GPU/") + ds,
                       [ds](benchmark::State& s) {
                         BM_MemoryKcl(s, ds, System::kPangolinGpu);
                       });
  }
  for (const char* name : {"ER", "CP"}) {
    std::string ds = name;
    bench::RegisterSim(std::string("Fig10/FPM-3/GAMMA/") + ds,
                       [ds](benchmark::State& s) {
                         BM_MemoryFpm(s, ds, System::kGamma);
                       });
    bench::RegisterSim(std::string("Fig10/FPM-3/Pangolin-GPU/") + ds,
                       [ds](benchmark::State& s) {
                         BM_MemoryFpm(s, ds, System::kPangolinGpu);
                       });
  }
  return bench::Main(argc, argv);
}
