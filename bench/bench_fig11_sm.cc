// Fig. 11: subgraph matching running time — GAMMA vs GSI (in-core GPU)
// vs Peregrine (multi-thread CPU) on the three Fig. 13 queries.
// Expected shape: GAMMA wins on mid/large graphs; on the tiny EA/ER
// datasets the in-core/CPU systems can win because GAMMA pays host-memory
// staging; GSI crashes where its worst-case buffers or in-core tables no
// longer fit.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gpm;

enum class System { kGamma, kGsi, kPeregrine };

void BM_Sm(benchmark::State& state, std::string dataset, int query,
           System sys) {
  const graph::Graph& g = bench::Dataset(dataset);
  graph::Pattern q = graph::Pattern::SmQuery(query, g.num_labels());
  for (auto _ : state) {
    double sim_millis = 0;
    uint64_t count = 0;
    if (sys == System::kPeregrine) {
      baselines::CpuRunResult r = baselines::PeregrineMatch(g, q);
      sim_millis = r.sim_millis;
      count = r.count;
    } else {
      gpusim::Device device(sys == System::kGamma
                                 ? bench::BenchDeviceParams()
                                 : bench::InCoreDeviceParams());
      Result<baselines::GpuRunResult> r =
          sys == System::kGamma
              ? baselines::GammaMatch(&device, g, q,
                                      bench::BenchGammaOptions())
              : baselines::GsiMatch(&device, g, q);
      if (!r.ok()) {
        bench::SkipCrashed(state, r.status());
        return;
      }
      sim_millis = r.value().sim_millis;
      count = r.value().count;
    }
    state.counters["embeddings"] = static_cast<double>(count);
    bench::ReportSimMillis(state, sim_millis);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* datasets[] = {"ER", "EA", "CP", "CL", "CO", "SL5", "CL8"};
  struct {
    System sys;
    const char* name;
  } systems[] = {{System::kGamma, "GAMMA"},
                 {System::kGsi, "GSI"},
                 {System::kPeregrine, "Peregrine"}};
  for (int q = 1; q <= 3; ++q) {
    for (const char* name : datasets) {
      for (const auto& sys : systems) {
        std::string ds = name;
        System which = sys.sys;
        bench::RegisterSim(
            std::string("Fig11/SM-q") + std::to_string(q) + "/" +
                sys.name + "/" + ds,
            [ds, q, which](benchmark::State& s) {
              BM_Sm(s, ds, q, which);
            });
      }
    }
  }
  return bench::Main(argc, argv);
}
