// Fig. 12: k-clique running time — GAMMA vs Pangolin-ST (single-thread),
// Pangolin-GPU (in-core) and Peregrine (multi-thread CPU). The paper
// reports GAMMA ~68% faster than Pangolin-GPU and ~74% faster than
// Peregrine, with the in-core system crashing on denser datasets.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gpm;

enum class System { kGamma, kPangolinGpu, kPangolinSt, kPeregrine };

void BM_Kcl(benchmark::State& state, std::string dataset, int k,
            System sys) {
  const graph::Graph& g = bench::Dataset(dataset);
  for (auto _ : state) {
    double sim_millis = 0;
    uint64_t count = 0;
    switch (sys) {
      case System::kPangolinSt: {
        auto r = baselines::PangolinStKClique(g, k);
        sim_millis = r.sim_millis;
        count = r.count;
        break;
      }
      case System::kPeregrine: {
        auto r = baselines::PeregrineKClique(g, k);
        sim_millis = r.sim_millis;
        count = r.count;
        break;
      }
      case System::kGamma:
      case System::kPangolinGpu: {
        gpusim::Device device(sys == System::kGamma
                                   ? bench::BenchDeviceParams()
                                   : bench::InCoreDeviceParams());
        Result<baselines::GpuRunResult> r =
            sys == System::kGamma
                ? baselines::GammaKClique(&device, g, k,
                                          bench::BenchGammaOptions())
                : baselines::PangolinGpuKClique(&device, g, k);
        if (!r.ok()) {
          bench::SkipCrashed(state, r.status());
          return;
        }
        sim_millis = r.value().sim_millis;
        count = r.value().count;
        break;
      }
    }
    state.counters["cliques"] = static_cast<double>(count);
    bench::ReportSimMillis(state, sim_millis);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* datasets[] = {"ER", "EA", "CP", "CL", "CL8"};
  struct {
    System sys;
    const char* name;
  } systems[] = {{System::kGamma, "GAMMA"},
                 {System::kPangolinGpu, "Pangolin-GPU"},
                 {System::kPangolinSt, "Pangolin-ST"},
                 {System::kPeregrine, "Peregrine"}};
  for (const char* name : datasets) {
    for (const auto& sys : systems) {
      std::string ds = name;
      System which = sys.sys;
      bench::RegisterSim(
          std::string("Fig12/4CL/") + sys.name + "/" + ds,
          [ds, which](benchmark::State& s) { BM_Kcl(s, ds, 4, which); });
    }
  }
  // 5-clique on the small email graphs.
  for (const char* name : {"ER", "EA"}) {
    for (const auto& sys : systems) {
      std::string ds = name;
      System which = sys.sys;
      bench::RegisterSim(
          std::string("Fig12/5CL/") + sys.name + "/" + ds,
          [ds, which](benchmark::State& s) { BM_Kcl(s, ds, 5, which); });
    }
  }
  return bench::Main(argc, argv);
}
