// Fig. 14: frequent pattern mining running time — GAMMA vs GraphMiner
// (multi-core CPU library), Peregrine (pattern-centric CPU framework),
// Pangolin-ST and Pangolin-GPU. Expected shape: GAMMA ahead of all
// (modestly ahead of GraphMiner, as in the paper's 24.7%), Pangolin-GPU
// crashing once the embedding table or the pattern-table sort no longer
// fits in device memory.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gpm;

enum class System {
  kGamma,
  kPangolinGpu,
  kPangolinSt,
  kPeregrine,
  kGraphMiner
};

void BM_Fpm(benchmark::State& state, std::string dataset, System sys) {
  const graph::Graph& g = bench::Dataset(dataset);
  const int max_edges = 3;
  const uint64_t min_support = g.num_edges() / 10;
  for (auto _ : state) {
    double sim_millis = 0;
    uint64_t patterns = 0;
    switch (sys) {
      case System::kPangolinSt: {
        auto r = baselines::PangolinStFpm(g, max_edges, min_support);
        sim_millis = r.sim_millis;
        patterns = r.patterns.size();
        break;
      }
      case System::kPeregrine: {
        auto r = baselines::PeregrineFpm(g, max_edges, min_support);
        sim_millis = r.sim_millis;
        patterns = r.patterns.size();
        break;
      }
      case System::kGraphMiner: {
        auto r = baselines::GraphMinerFpm(g, max_edges, min_support);
        sim_millis = r.sim_millis;
        patterns = r.patterns.size();
        break;
      }
      case System::kGamma:
      case System::kPangolinGpu: {
        gpusim::Device device(sys == System::kGamma
                                   ? bench::BenchDeviceParams()
                                   : bench::InCoreDeviceParams());
        Result<baselines::GpuRunResult> r =
            sys == System::kGamma
                ? baselines::GammaFpm(&device, g, max_edges, min_support,
                                      bench::BenchGammaOptions())
                : baselines::PangolinGpuFpm(&device, g, max_edges,
                                            min_support);
        if (!r.ok()) {
          bench::SkipCrashed(state, r.status());
          return;
        }
        sim_millis = r.value().sim_millis;
        patterns = r.value().count;
        break;
      }
    }
    state.counters["patterns"] = static_cast<double>(patterns);
    bench::ReportSimMillis(state, sim_millis);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* datasets[] = {"ER", "CP"};
  struct {
    System sys;
    const char* name;
  } systems[] = {{System::kGamma, "GAMMA"},
                 {System::kPangolinGpu, "Pangolin-GPU"},
                 {System::kPangolinSt, "Pangolin-ST"},
                 {System::kPeregrine, "Peregrine"},
                 {System::kGraphMiner, "GraphMiner"}};
  for (const char* name : datasets) {
    for (const auto& sys : systems) {
      std::string ds = name;
      System which = sys.sys;
      bench::RegisterSim(
          std::string("Fig14/FPM-3/") + sys.name + "/" + ds,
          [ds, which](benchmark::State& s) { BM_Fpm(s, ds, which); });
    }
  }
  return bench::Main(argc, argv);
}
