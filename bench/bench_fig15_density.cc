// Fig. 15: scalability in graph density. Kronecker (R-MAT) graphs with a
// fixed vertex count and growing average degree; GAMMA's running time
// should grow approximately linearly with density.
#include <benchmark/benchmark.h>

#include "algos/kclique.h"
#include "bench/bench_common.h"
#include "graph/generators.h"

namespace {

using namespace gpm;

void BM_Density(benchmark::State& state, int scale, int edge_factor) {
  Rng rng(1234 + edge_factor);
  graph::Graph g = graph::Rmat(
      scale, static_cast<std::size_t>(edge_factor) << scale, &rng);
  for (auto _ : state) {
    gpusim::Device device(bench::BenchDeviceParams());
    auto r = baselines::GammaKClique(&device, g, 3,
                                     bench::BenchGammaOptions());
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    state.counters["avg_degree"] = g.average_degree();
    state.counters["edges"] = static_cast<double>(g.num_edges());
    state.counters["triangles"] = static_cast<double>(r.value().count);
    bench::ReportPlanProf(state, r.value().planprof);
    bench::ReportSimMillis(state, r.value().sim_millis);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int scale : {11, 12}) {
    for (int edge_factor : {2, 4, 8, 16, 32}) {
      bench::RegisterSim("Fig15/3CL/kron-2^" + std::to_string(scale) +
                             "/ef" + std::to_string(edge_factor),
                         [scale, edge_factor](benchmark::State& s) {
                           BM_Density(s, scale, edge_factor);
                         });
    }
  }
  return bench::Main(argc, argv);
}
