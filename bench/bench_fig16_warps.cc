// Fig. 16: scalability with warp count. GAMMA's speedup over Pangolin-ST
// should grow approximately linearly with the number of resident warps
// (the paper reports GAMMA ahead already at 1-2 warps).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gpm;

void BM_Warps(benchmark::State& state, std::string dataset, int warps) {
  const graph::Graph& g = bench::Dataset(dataset);
  baselines::CpuRunResult st_run = baselines::PangolinStKClique(g, 4);
  for (auto _ : state) {
    gpusim::SimParams params = bench::BenchDeviceParams();
    params.num_warp_slots = warps;
    gpusim::Device device(params);
    auto r = baselines::GammaKClique(&device, g, 4,
                                     bench::BenchGammaOptions());
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    state.counters["speedup_vs_PangolinST"] =
        st_run.sim_millis / r.value().sim_millis;
    bench::ReportSimMillis(state, r.value().sim_millis);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* name : {"EA", "CP", "CL"}) {
    for (int warps : {1, 2, 4, 8, 16, 32, 64, 128}) {
      std::string ds = name;
      bench::RegisterSim(
          std::string("Fig16/4CL/") + ds + "/warps" +
              std::to_string(warps),
          [ds, warps](benchmark::State& s) { BM_Warps(s, ds, warps); });
    }
  }
  return bench::Main(argc, argv);
}
