// Fig. 17: effect of the extension-primitive optimizations on SM.
// "naive" = Pangolin-style count-then-write, no grouping;
// "dynamic-alloc" adds Optimization 1 (memory-pool writes);
// "pre-merge" adds Optimization 2 (prefix-grouped intersection).
// Expected shape: each optimization strictly improves, ~20-25% apiece.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gpm;

enum class Variant { kNaive, kDynamicAlloc, kPreMerge };

core::GammaOptions VariantOptions(Variant v) {
  core::GammaOptions options = bench::BenchGammaOptions();
  switch (v) {
    case Variant::kNaive:
      options.extension.write_strategy = core::WriteStrategy::kNaiveTwoPass;
      options.extension.pre_merge = false;
      break;
    case Variant::kDynamicAlloc:
      options.extension.write_strategy = core::WriteStrategy::kDynamicAlloc;
      options.extension.pre_merge = false;
      break;
    case Variant::kPreMerge:
      options.extension.write_strategy = core::WriteStrategy::kDynamicAlloc;
      options.extension.pre_merge = true;
      break;
  }
  return options;
}

void BM_OptSm(benchmark::State& state, std::string dataset, Variant v) {
  const graph::Graph& g = bench::Dataset(dataset);
  graph::Pattern q = graph::Pattern::SmQuery(2, g.num_labels());
  for (auto _ : state) {
    gpusim::Device device(bench::BenchDeviceParams());
    auto r = baselines::GammaMatch(&device, g, q, VariantOptions(v));
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    state.counters["embeddings"] = static_cast<double>(r.value().count);
    bench::ReportSimMillis(state, r.value().sim_millis);
  }
}

}  // namespace

int main(int argc, char** argv) {
  struct {
    Variant v;
    const char* name;
  } variants[] = {{Variant::kNaive, "naive"},
                  {Variant::kDynamicAlloc, "dynamic-alloc"},
                  {Variant::kPreMerge, "pre-merge"}};
  for (const char* name : {"ER", "EA", "CP", "CL", "CO"}) {
    for (const auto& var : variants) {
      std::string ds = name;
      Variant v = var.v;
      bench::RegisterSim(
          std::string("Fig17/SM-q2/") + var.name + "/" + ds,
          [ds, v](benchmark::State& s) { BM_OptSm(s, ds, v); });
    }
  }
  return bench::Main(argc, argv);
}
