// Fig. 19 + Table III: out-of-core multi-merge sorting. The paper merges
// up to 4.3 B 64-bit keys n-ways; scaled here to millions of keys against
// a MiB-scale device, preserving the keys-to-device ratio. Methods:
// GAMMA's checkpointed multi-merge (Optimization 3), the naive merge
// (full pairwise searches), an xtr2sort-style sample sort, and CPU
// std::sort (Table III's CPU row, far slower than every GPU method).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/random.h"
#include "core/multimerge_sort.h"

namespace {

using namespace gpm;

void BM_Sort(benchmark::State& state, std::size_t keys_n, int ways,
             core::SortMethod method) {
  Rng rng(keys_n ^ ways);
  std::vector<uint64_t> master(keys_n);
  for (auto& k : master) k = rng.Next();
  for (auto _ : state) {
    std::vector<uint64_t> keys = master;
    gpusim::SimParams params = bench::BenchDeviceParams();
    gpusim::Device device(params);
    core::SortOptions options;
    options.method = method;
    // `ways`-way merge: size segments so the segment count is `ways`.
    options.segment_bytes = keys_n * sizeof(uint64_t) / ways;
    options.p_size = 1 << 12;
    auto r = core::SortKeys(&device, &keys, options);
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    state.counters["segments"] = static_cast<double>(r.value().segments);
    state.counters["subtasks"] = static_cast<double>(r.value().subtasks);
    bench::ReportSimMillis(state, device.ElapsedMillis());
  }
}

}  // namespace

int main(int argc, char** argv) {
  struct {
    core::SortMethod method;
    const char* name;
  } methods[] = {{core::SortMethod::kGammaMultiMerge, "multimerge-opt"},
                 {core::SortMethod::kNaiveMerge, "naive"},
                 {core::SortMethod::kXtr2Sort, "xtr2sort"},
                 {core::SortMethod::kCpuSort, "cpu-sort"}};
  struct {
    std::size_t keys;
    int ways;
    const char* label;
  } tasks[] = {{1u << 20, 4, "1M4W"},
               {1u << 20, 8, "1M8W"},
               {4u << 20, 8, "4M8W"},
               {8u << 20, 16, "8M16W"}};
  for (const auto& task : tasks) {
    for (const auto& m : methods) {
      std::size_t keys = task.keys;
      int ways = task.ways;
      core::SortMethod method = m.method;
      bench::RegisterSim(std::string("Fig19/") + task.label + "/" + m.name,
                         [keys, ways, method](benchmark::State& s) {
                           BM_Sort(s, keys, ways, method);
                         });
    }
  }
  return bench::Main(argc, argv);
}
