// Fig. 20: the self-adaptive hybrid host-memory access strategy vs
// unified-memory-only and zero-copy-only, across all three workloads.
// Expected shape: hybrid beats both single modes (paper: ~47% over
// UM-only, ~51% over ZC-only).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gpm;

core::GammaOptions PlacementOptions(core::GraphPlacement placement) {
  core::GammaOptions options = bench::BenchGammaOptions();
  options.access.placement = placement;
  // Every Fig. 20 variant carries its counterfactual audit, so the bench
  // JSON can report per-placement regret alongside the measured times.
  options.adaptivity_audit = true;
  return options;
}

void BM_HybridSm(benchmark::State& state, std::string dataset,
                 core::GraphPlacement placement) {
  const graph::Graph& g = bench::Dataset(dataset);
  graph::Pattern q = graph::Pattern::SmQuery(1, g.num_labels());
  for (auto _ : state) {
    gpusim::Device device(bench::BenchDeviceParams());
    auto r =
        baselines::GammaMatch(&device, g, q, PlacementOptions(placement));
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    bench::ReportProfile(state, device);
    bench::ReportAdaptivity(state, r.value().adaptivity);
    bench::ReportPlan(state, r.value().plan);
    bench::ReportPlanProf(state, r.value().planprof);
    bench::ReportSimMillis(state, r.value().sim_millis);
  }
}

void BM_HybridKcl(benchmark::State& state, std::string dataset,
                  core::GraphPlacement placement) {
  const graph::Graph& g = bench::Dataset(dataset);
  for (auto _ : state) {
    gpusim::Device device(bench::BenchDeviceParams());
    auto r = baselines::GammaKClique(&device, g, 4,
                                     PlacementOptions(placement));
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    bench::ReportProfile(state, device);
    bench::ReportAdaptivity(state, r.value().adaptivity);
    bench::ReportPlan(state, r.value().plan);
    bench::ReportPlanProf(state, r.value().planprof);
    bench::ReportSimMillis(state, r.value().sim_millis);
  }
}

void BM_HybridFpm(benchmark::State& state, std::string dataset,
                  core::GraphPlacement placement) {
  const graph::Graph& g = bench::Dataset(dataset);
  for (auto _ : state) {
    gpusim::Device device(bench::BenchDeviceParams());
    auto r = baselines::GammaFpm(&device, g, 3, g.num_edges() / 10,
                                 PlacementOptions(placement));
    if (!r.ok()) {
      bench::SkipCrashed(state, r.status());
      return;
    }
    bench::ReportProfile(state, device);
    bench::ReportAdaptivity(state, r.value().adaptivity);
    bench::ReportPlan(state, r.value().plan);
    bench::ReportPlanProf(state, r.value().planprof);
    bench::ReportSimMillis(state, r.value().sim_millis);
  }
}

}  // namespace

int main(int argc, char** argv) {
  struct {
    core::GraphPlacement placement;
    const char* name;
  } modes[] = {{core::GraphPlacement::kHybridAdaptive, "hybrid"},
               {core::GraphPlacement::kUnifiedOnly, "unified-only"},
               {core::GraphPlacement::kZeroCopyOnly, "zerocopy-only"}};
  for (const char* name : {"EA", "CP", "CL"}) {
    for (const auto& m : modes) {
      std::string ds = name;
      core::GraphPlacement p = m.placement;
      bench::RegisterSim(
          std::string("Fig20/SM-q1/") + m.name + "/" + ds,
          [ds, p](benchmark::State& s) { BM_HybridSm(s, ds, p); });
      bench::RegisterSim(
          std::string("Fig20/4CL/") + m.name + "/" + ds,
          [ds, p](benchmark::State& s) { BM_HybridKcl(s, ds, p); });
    }
  }
  for (const char* name : {"ER", "CP"}) {
    for (const auto& m : modes) {
      std::string ds = name;
      core::GraphPlacement p = m.placement;
      bench::RegisterSim(
          std::string("Fig20/FPM-3/") + m.name + "/" + ds,
          [ds, p](benchmark::State& s) { BM_HybridFpm(s, ds, p); });
    }
  }
  return bench::Main(argc, argv);
}
