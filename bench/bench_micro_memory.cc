// Microbenchmarks of the simulated memory subsystem itself: achievable
// throughput of device reads, unified-memory hits, unified-memory cold
// faults, prefetched pages, and zero-copy streams. These validate that the
// cost model preserves the orderings GAMMA's design depends on:
//   device ≈ UM-hit  >>  zero-copy  >>  UM cold faults,
// with prefetch recovering most of the fault cost (§II-B, §IV).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "gpusim/host_array.h"

namespace {

using namespace gpm;

constexpr std::size_t kBytes = 1 << 20;  // 1 MiB sweep per pattern
constexpr std::size_t kAccessBytes = 256;

void Report(benchmark::State& state, gpusim::Device& device) {
  double ms = device.ElapsedMillis();
  state.SetIterationTime(ms / 1e3);
  state.counters["GBps"] =
      static_cast<double>(kBytes) / 1e9 / (ms / 1e3);
}

void BM_DeviceRead(benchmark::State& state) {
  for (auto _ : state) {
    gpusim::Device device(bench::BenchDeviceParams());
    device.LaunchKernel(64, [&](gpusim::WarpCtx& w, std::size_t) {
      for (std::size_t i = 0; i < kBytes / 64 / kAccessBytes; ++i) {
        w.DeviceRead(kAccessBytes);
      }
    });
    Report(state, device);
  }
}

void BM_UnifiedHit(benchmark::State& state) {
  for (auto _ : state) {
    gpusim::SimParams p = bench::BenchDeviceParams();
    p.um_device_buffer_bytes = 2 * kBytes;  // everything stays resident
    gpusim::Device device(p);
    gpusim::HostArray<uint8_t> data(&device);
    data.Resize(kBytes);
    // Warm every page first (not timed: clock reset afterwards).
    device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
      for (std::size_t off = 0; off < kBytes; off += 4096) {
        w.UnifiedRead(data.region(), off, 1);
      }
    });
    device.ResetClock();
    device.LaunchKernel(64, [&](gpusim::WarpCtx& w, std::size_t t) {
      std::size_t chunk = kBytes / 64;
      for (std::size_t i = 0; i < chunk / kAccessBytes; ++i) {
        w.UnifiedRead(data.region(), t * chunk + i * kAccessBytes,
                      kAccessBytes);
      }
    });
    Report(state, device);
  }
}

void BM_UnifiedColdFault(benchmark::State& state) {
  for (auto _ : state) {
    gpusim::SimParams p = bench::BenchDeviceParams();
    p.um_device_buffer_bytes = 2 * kBytes;  // no capacity evictions
    gpusim::Device device(p);
    gpusim::HostArray<uint8_t> data(&device);
    data.Resize(kBytes);
    device.ResetClock();
    device.LaunchKernel(64, [&](gpusim::WarpCtx& w, std::size_t t) {
      std::size_t chunk = kBytes / 64;
      for (std::size_t i = 0; i < chunk / kAccessBytes; ++i) {
        w.UnifiedRead(data.region(), t * chunk + i * kAccessBytes,
                      kAccessBytes);
      }
    });
    Report(state, device);
  }
}

void BM_UnifiedPrefetched(benchmark::State& state) {
  for (auto _ : state) {
    gpusim::SimParams p = bench::BenchDeviceParams();
    p.um_device_buffer_bytes = 2 * kBytes;
    gpusim::Device device(p);
    gpusim::HostArray<uint8_t> data(&device);
    data.Resize(kBytes);
    device.ResetClock();
    std::size_t migrated = 0;
    for (std::size_t off = 0; off < kBytes; off += 4096) {
      migrated += device.unified().PrefetchPage(data.region(), off);
    }
    device.CopyHostToDevice(migrated);
    device.LaunchKernel(64, [&](gpusim::WarpCtx& w, std::size_t t) {
      std::size_t chunk = kBytes / 64;
      for (std::size_t i = 0; i < chunk / kAccessBytes; ++i) {
        w.UnifiedRead(data.region(), t * chunk + i * kAccessBytes,
                      kAccessBytes);
      }
    });
    Report(state, device);
  }
}

void BM_ZeroCopyStream(benchmark::State& state) {
  for (auto _ : state) {
    gpusim::Device device(bench::BenchDeviceParams());
    device.LaunchKernel(64, [&](gpusim::WarpCtx& w, std::size_t) {
      for (std::size_t i = 0; i < kBytes / 64 / kAccessBytes; ++i) {
        w.ZeroCopyRead(kAccessBytes);
      }
    });
    Report(state, device);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RegisterSim("MicroMemory/device-read", BM_DeviceRead);
  bench::RegisterSim("MicroMemory/unified-hit", BM_UnifiedHit);
  bench::RegisterSim("MicroMemory/unified-cold-fault", BM_UnifiedColdFault);
  bench::RegisterSim("MicroMemory/unified-prefetched", BM_UnifiedPrefetched);
  bench::RegisterSim("MicroMemory/zero-copy-stream", BM_ZeroCopyStream);
  return bench::Main(argc, argv);
}
