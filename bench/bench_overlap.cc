// Sync vs async execution: the same GAMMA workload run once on the
// historical synchronous path (one stream) and once with the
// double-buffered extension pipeline (compute + copy streams). Both runs
// use deliberately small extension chunks so the pipeline has depth; the
// bench verifies the embedding counts match and reports the cycle ratio.
// The async run's device fills the `--json` record, so the export carries
// the stream count and PCIe-link occupancy of the overlapped execution.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gpm;

// Many small chunks give the double-buffered pipeline something to
// overlap; both variants use the identical chunking so the comparison
// isolates the stream assignment.
core::GammaOptions OverlapOptions(std::size_t streams) {
  core::GammaOptions options = bench::BenchGammaOptions();
  options.extension.chunk_rows = 2048;
  options.extension.num_streams = streams;
  options.aggregation.sort.num_streams = streams;
  return options;
}

void BM_OverlapKcl(benchmark::State& state, std::string dataset, int k) {
  const graph::Graph& g = bench::Dataset(dataset);
  for (auto _ : state) {
    gpusim::Device sync_device(bench::BenchDeviceParams());
    Result<baselines::GpuRunResult> sync =
        baselines::GammaKClique(&sync_device, g, k, OverlapOptions(1));
    if (!sync.ok()) {
      bench::SkipCrashed(state, sync.status());
      return;
    }
    gpusim::Device async_device(bench::BenchDeviceParams());
    Result<baselines::GpuRunResult> async =
        baselines::GammaKClique(&async_device, g, k, OverlapOptions(2));
    if (!async.ok()) {
      bench::SkipCrashed(state, async.status());
      return;
    }
    if (sync.value().count != async.value().count) {
      state.SkipWithError("sync/async embedding counts diverged");
      return;
    }
    const double sync_cycles = sync_device.now_cycles();
    const double async_cycles = async_device.now_cycles();
    state.counters["sync_ms"] = sync.value().sim_millis;
    state.counters["async_ms"] = async.value().sim_millis;
    state.counters["overlap_speedup"] =
        async_cycles > 0 ? sync_cycles / async_cycles : 0.0;
    state.counters["saved_cycles"] = sync_cycles - async_cycles;
    bench::ReportProfile(state, async_device);
    bench::ReportSimMillis(state, async.value().sim_millis);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // The Fig. 10 memory workload (4-clique on the proxy datasets) is the
  // reference point: chunked extensions dominate its runtime, so it is
  // where transfer/compute overlap must pay off.
  for (const char* name : {"ER", "EA", "CP", "CL"}) {
    std::string ds = name;
    bench::RegisterSim(std::string("Overlap/4CL/") + ds,
                       [ds](benchmark::State& s) {
                         BM_OverlapKcl(s, ds, 4);
                       });
  }
  return bench::Main(argc, argv);
}
