# Empty dependencies file for bench_fig05_locality.
# This may be replaced when dependencies are built.
