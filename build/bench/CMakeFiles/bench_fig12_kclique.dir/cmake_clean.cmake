file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_kclique.dir/bench_fig12_kclique.cc.o"
  "CMakeFiles/bench_fig12_kclique.dir/bench_fig12_kclique.cc.o.d"
  "bench_fig12_kclique"
  "bench_fig12_kclique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_kclique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
