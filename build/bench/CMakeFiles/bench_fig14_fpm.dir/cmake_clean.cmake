file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_fpm.dir/bench_fig14_fpm.cc.o"
  "CMakeFiles/bench_fig14_fpm.dir/bench_fig14_fpm.cc.o.d"
  "bench_fig14_fpm"
  "bench_fig14_fpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_fpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
