# Empty dependencies file for bench_fig14_fpm.
# This may be replaced when dependencies are built.
