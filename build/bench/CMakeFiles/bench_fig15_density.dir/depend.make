# Empty dependencies file for bench_fig15_density.
# This may be replaced when dependencies are built.
