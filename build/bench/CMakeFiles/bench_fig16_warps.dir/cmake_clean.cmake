file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_warps.dir/bench_fig16_warps.cc.o"
  "CMakeFiles/bench_fig16_warps.dir/bench_fig16_warps.cc.o.d"
  "bench_fig16_warps"
  "bench_fig16_warps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_warps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
