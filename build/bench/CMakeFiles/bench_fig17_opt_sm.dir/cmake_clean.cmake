file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_opt_sm.dir/bench_fig17_opt_sm.cc.o"
  "CMakeFiles/bench_fig17_opt_sm.dir/bench_fig17_opt_sm.cc.o.d"
  "bench_fig17_opt_sm"
  "bench_fig17_opt_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_opt_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
