# Empty compiler generated dependencies file for bench_fig17_opt_sm.
# This may be replaced when dependencies are built.
