
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig18_opt_kcl.cc" "bench/CMakeFiles/bench_fig18_opt_kcl.dir/bench_fig18_opt_kcl.cc.o" "gcc" "bench/CMakeFiles/bench_fig18_opt_kcl.dir/bench_fig18_opt_kcl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/gamma_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/gamma_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gamma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gamma_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gamma_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gamma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
