file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_opt_kcl.dir/bench_fig18_opt_kcl.cc.o"
  "CMakeFiles/bench_fig18_opt_kcl.dir/bench_fig18_opt_kcl.cc.o.d"
  "bench_fig18_opt_kcl"
  "bench_fig18_opt_kcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_opt_kcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
