# Empty dependencies file for bench_fig18_opt_kcl.
# This may be replaced when dependencies are built.
