file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_sort.dir/bench_fig19_sort.cc.o"
  "CMakeFiles/bench_fig19_sort.dir/bench_fig19_sort.cc.o.d"
  "bench_fig19_sort"
  "bench_fig19_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
