# Empty dependencies file for bench_fig20_hybrid.
# This may be replaced when dependencies are built.
