file(REMOVE_RECURSE
  "CMakeFiles/citation_fpm.dir/citation_fpm.cpp.o"
  "CMakeFiles/citation_fpm.dir/citation_fpm.cpp.o.d"
  "citation_fpm"
  "citation_fpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_fpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
