# Empty compiler generated dependencies file for citation_fpm.
# This may be replaced when dependencies are built.
