file(REMOVE_RECURSE
  "CMakeFiles/gamma_cli.dir/gamma_cli.cpp.o"
  "CMakeFiles/gamma_cli.dir/gamma_cli.cpp.o.d"
  "gamma_cli"
  "gamma_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
