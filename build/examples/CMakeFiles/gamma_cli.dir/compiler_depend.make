# Empty compiler generated dependencies file for gamma_cli.
# This may be replaced when dependencies are built.
