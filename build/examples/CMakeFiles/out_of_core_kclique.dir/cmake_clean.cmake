file(REMOVE_RECURSE
  "CMakeFiles/out_of_core_kclique.dir/out_of_core_kclique.cpp.o"
  "CMakeFiles/out_of_core_kclique.dir/out_of_core_kclique.cpp.o.d"
  "out_of_core_kclique"
  "out_of_core_kclique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core_kclique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
