file(REMOVE_RECURSE
  "CMakeFiles/social_network_sm.dir/social_network_sm.cpp.o"
  "CMakeFiles/social_network_sm.dir/social_network_sm.cpp.o.d"
  "social_network_sm"
  "social_network_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_network_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
