# Empty compiler generated dependencies file for social_network_sm.
# This may be replaced when dependencies are built.
