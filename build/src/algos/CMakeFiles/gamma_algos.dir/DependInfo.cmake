
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/fpm.cc" "src/algos/CMakeFiles/gamma_algos.dir/fpm.cc.o" "gcc" "src/algos/CMakeFiles/gamma_algos.dir/fpm.cc.o.d"
  "/root/repo/src/algos/kclique.cc" "src/algos/CMakeFiles/gamma_algos.dir/kclique.cc.o" "gcc" "src/algos/CMakeFiles/gamma_algos.dir/kclique.cc.o.d"
  "/root/repo/src/algos/motif.cc" "src/algos/CMakeFiles/gamma_algos.dir/motif.cc.o" "gcc" "src/algos/CMakeFiles/gamma_algos.dir/motif.cc.o.d"
  "/root/repo/src/algos/subgraph_matching.cc" "src/algos/CMakeFiles/gamma_algos.dir/subgraph_matching.cc.o" "gcc" "src/algos/CMakeFiles/gamma_algos.dir/subgraph_matching.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gamma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gamma_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gamma_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gamma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
