file(REMOVE_RECURSE
  "CMakeFiles/gamma_algos.dir/fpm.cc.o"
  "CMakeFiles/gamma_algos.dir/fpm.cc.o.d"
  "CMakeFiles/gamma_algos.dir/kclique.cc.o"
  "CMakeFiles/gamma_algos.dir/kclique.cc.o.d"
  "CMakeFiles/gamma_algos.dir/motif.cc.o"
  "CMakeFiles/gamma_algos.dir/motif.cc.o.d"
  "CMakeFiles/gamma_algos.dir/subgraph_matching.cc.o"
  "CMakeFiles/gamma_algos.dir/subgraph_matching.cc.o.d"
  "libgamma_algos.a"
  "libgamma_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
