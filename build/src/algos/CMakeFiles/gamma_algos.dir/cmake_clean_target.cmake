file(REMOVE_RECURSE
  "libgamma_algos.a"
)
