# Empty compiler generated dependencies file for gamma_algos.
# This may be replaced when dependencies are built.
