file(REMOVE_RECURSE
  "CMakeFiles/gamma_baselines.dir/cpu_ref.cc.o"
  "CMakeFiles/gamma_baselines.dir/cpu_ref.cc.o.d"
  "CMakeFiles/gamma_baselines.dir/presets.cc.o"
  "CMakeFiles/gamma_baselines.dir/presets.cc.o.d"
  "CMakeFiles/gamma_baselines.dir/systems.cc.o"
  "CMakeFiles/gamma_baselines.dir/systems.cc.o.d"
  "libgamma_baselines.a"
  "libgamma_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
