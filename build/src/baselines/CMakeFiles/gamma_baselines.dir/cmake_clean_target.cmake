file(REMOVE_RECURSE
  "libgamma_baselines.a"
)
