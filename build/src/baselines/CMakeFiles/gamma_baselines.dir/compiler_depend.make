# Empty compiler generated dependencies file for gamma_baselines.
# This may be replaced when dependencies are built.
