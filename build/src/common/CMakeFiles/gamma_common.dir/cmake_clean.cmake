file(REMOVE_RECURSE
  "CMakeFiles/gamma_common.dir/logging.cc.o"
  "CMakeFiles/gamma_common.dir/logging.cc.o.d"
  "CMakeFiles/gamma_common.dir/status.cc.o"
  "CMakeFiles/gamma_common.dir/status.cc.o.d"
  "libgamma_common.a"
  "libgamma_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
