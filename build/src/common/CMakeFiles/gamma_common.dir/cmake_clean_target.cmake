file(REMOVE_RECURSE
  "libgamma_common.a"
)
