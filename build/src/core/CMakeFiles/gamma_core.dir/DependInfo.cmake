
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_heat.cc" "src/core/CMakeFiles/gamma_core.dir/access_heat.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/access_heat.cc.o.d"
  "/root/repo/src/core/adaptive_access.cc" "src/core/CMakeFiles/gamma_core.dir/adaptive_access.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/adaptive_access.cc.o.d"
  "/root/repo/src/core/aggregation.cc" "src/core/CMakeFiles/gamma_core.dir/aggregation.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/aggregation.cc.o.d"
  "/root/repo/src/core/compaction.cc" "src/core/CMakeFiles/gamma_core.dir/compaction.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/compaction.cc.o.d"
  "/root/repo/src/core/embedding_table.cc" "src/core/CMakeFiles/gamma_core.dir/embedding_table.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/embedding_table.cc.o.d"
  "/root/repo/src/core/extension.cc" "src/core/CMakeFiles/gamma_core.dir/extension.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/extension.cc.o.d"
  "/root/repo/src/core/filtering.cc" "src/core/CMakeFiles/gamma_core.dir/filtering.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/filtering.cc.o.d"
  "/root/repo/src/core/gamma.cc" "src/core/CMakeFiles/gamma_core.dir/gamma.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/gamma.cc.o.d"
  "/root/repo/src/core/intersection.cc" "src/core/CMakeFiles/gamma_core.dir/intersection.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/intersection.cc.o.d"
  "/root/repo/src/core/memory_pool.cc" "src/core/CMakeFiles/gamma_core.dir/memory_pool.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/memory_pool.cc.o.d"
  "/root/repo/src/core/multimerge_sort.cc" "src/core/CMakeFiles/gamma_core.dir/multimerge_sort.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/multimerge_sort.cc.o.d"
  "/root/repo/src/core/pattern_table.cc" "src/core/CMakeFiles/gamma_core.dir/pattern_table.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/pattern_table.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/gamma_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/plan.cc.o.d"
  "/root/repo/src/core/symmetry.cc" "src/core/CMakeFiles/gamma_core.dir/symmetry.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/symmetry.cc.o.d"
  "/root/repo/src/core/table_io.cc" "src/core/CMakeFiles/gamma_core.dir/table_io.cc.o" "gcc" "src/core/CMakeFiles/gamma_core.dir/table_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gamma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gamma_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gamma_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
