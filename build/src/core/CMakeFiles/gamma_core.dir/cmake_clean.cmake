file(REMOVE_RECURSE
  "CMakeFiles/gamma_core.dir/access_heat.cc.o"
  "CMakeFiles/gamma_core.dir/access_heat.cc.o.d"
  "CMakeFiles/gamma_core.dir/adaptive_access.cc.o"
  "CMakeFiles/gamma_core.dir/adaptive_access.cc.o.d"
  "CMakeFiles/gamma_core.dir/aggregation.cc.o"
  "CMakeFiles/gamma_core.dir/aggregation.cc.o.d"
  "CMakeFiles/gamma_core.dir/compaction.cc.o"
  "CMakeFiles/gamma_core.dir/compaction.cc.o.d"
  "CMakeFiles/gamma_core.dir/embedding_table.cc.o"
  "CMakeFiles/gamma_core.dir/embedding_table.cc.o.d"
  "CMakeFiles/gamma_core.dir/extension.cc.o"
  "CMakeFiles/gamma_core.dir/extension.cc.o.d"
  "CMakeFiles/gamma_core.dir/filtering.cc.o"
  "CMakeFiles/gamma_core.dir/filtering.cc.o.d"
  "CMakeFiles/gamma_core.dir/gamma.cc.o"
  "CMakeFiles/gamma_core.dir/gamma.cc.o.d"
  "CMakeFiles/gamma_core.dir/intersection.cc.o"
  "CMakeFiles/gamma_core.dir/intersection.cc.o.d"
  "CMakeFiles/gamma_core.dir/memory_pool.cc.o"
  "CMakeFiles/gamma_core.dir/memory_pool.cc.o.d"
  "CMakeFiles/gamma_core.dir/multimerge_sort.cc.o"
  "CMakeFiles/gamma_core.dir/multimerge_sort.cc.o.d"
  "CMakeFiles/gamma_core.dir/pattern_table.cc.o"
  "CMakeFiles/gamma_core.dir/pattern_table.cc.o.d"
  "CMakeFiles/gamma_core.dir/plan.cc.o"
  "CMakeFiles/gamma_core.dir/plan.cc.o.d"
  "CMakeFiles/gamma_core.dir/symmetry.cc.o"
  "CMakeFiles/gamma_core.dir/symmetry.cc.o.d"
  "CMakeFiles/gamma_core.dir/table_io.cc.o"
  "CMakeFiles/gamma_core.dir/table_io.cc.o.d"
  "libgamma_core.a"
  "libgamma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
