
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device.cc" "src/gpusim/CMakeFiles/gamma_gpusim.dir/device.cc.o" "gcc" "src/gpusim/CMakeFiles/gamma_gpusim.dir/device.cc.o.d"
  "/root/repo/src/gpusim/device_memory.cc" "src/gpusim/CMakeFiles/gamma_gpusim.dir/device_memory.cc.o" "gcc" "src/gpusim/CMakeFiles/gamma_gpusim.dir/device_memory.cc.o.d"
  "/root/repo/src/gpusim/stats.cc" "src/gpusim/CMakeFiles/gamma_gpusim.dir/stats.cc.o" "gcc" "src/gpusim/CMakeFiles/gamma_gpusim.dir/stats.cc.o.d"
  "/root/repo/src/gpusim/unified_memory.cc" "src/gpusim/CMakeFiles/gamma_gpusim.dir/unified_memory.cc.o" "gcc" "src/gpusim/CMakeFiles/gamma_gpusim.dir/unified_memory.cc.o.d"
  "/root/repo/src/gpusim/warp.cc" "src/gpusim/CMakeFiles/gamma_gpusim.dir/warp.cc.o" "gcc" "src/gpusim/CMakeFiles/gamma_gpusim.dir/warp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gamma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
