file(REMOVE_RECURSE
  "CMakeFiles/gamma_gpusim.dir/device.cc.o"
  "CMakeFiles/gamma_gpusim.dir/device.cc.o.d"
  "CMakeFiles/gamma_gpusim.dir/device_memory.cc.o"
  "CMakeFiles/gamma_gpusim.dir/device_memory.cc.o.d"
  "CMakeFiles/gamma_gpusim.dir/stats.cc.o"
  "CMakeFiles/gamma_gpusim.dir/stats.cc.o.d"
  "CMakeFiles/gamma_gpusim.dir/unified_memory.cc.o"
  "CMakeFiles/gamma_gpusim.dir/unified_memory.cc.o.d"
  "CMakeFiles/gamma_gpusim.dir/warp.cc.o"
  "CMakeFiles/gamma_gpusim.dir/warp.cc.o.d"
  "libgamma_gpusim.a"
  "libgamma_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
