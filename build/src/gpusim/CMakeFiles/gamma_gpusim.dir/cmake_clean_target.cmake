file(REMOVE_RECURSE
  "libgamma_gpusim.a"
)
