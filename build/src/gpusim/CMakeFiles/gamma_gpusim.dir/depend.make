# Empty dependencies file for gamma_gpusim.
# This may be replaced when dependencies are built.
