
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/canonical.cc" "src/graph/CMakeFiles/gamma_graph.dir/canonical.cc.o" "gcc" "src/graph/CMakeFiles/gamma_graph.dir/canonical.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/graph/CMakeFiles/gamma_graph.dir/csr.cc.o" "gcc" "src/graph/CMakeFiles/gamma_graph.dir/csr.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "src/graph/CMakeFiles/gamma_graph.dir/datasets.cc.o" "gcc" "src/graph/CMakeFiles/gamma_graph.dir/datasets.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/gamma_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/gamma_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/isomorphism.cc" "src/graph/CMakeFiles/gamma_graph.dir/isomorphism.cc.o" "gcc" "src/graph/CMakeFiles/gamma_graph.dir/isomorphism.cc.o.d"
  "/root/repo/src/graph/loader.cc" "src/graph/CMakeFiles/gamma_graph.dir/loader.cc.o" "gcc" "src/graph/CMakeFiles/gamma_graph.dir/loader.cc.o.d"
  "/root/repo/src/graph/metrics.cc" "src/graph/CMakeFiles/gamma_graph.dir/metrics.cc.o" "gcc" "src/graph/CMakeFiles/gamma_graph.dir/metrics.cc.o.d"
  "/root/repo/src/graph/pattern.cc" "src/graph/CMakeFiles/gamma_graph.dir/pattern.cc.o" "gcc" "src/graph/CMakeFiles/gamma_graph.dir/pattern.cc.o.d"
  "/root/repo/src/graph/reorder.cc" "src/graph/CMakeFiles/gamma_graph.dir/reorder.cc.o" "gcc" "src/graph/CMakeFiles/gamma_graph.dir/reorder.cc.o.d"
  "/root/repo/src/graph/upscale.cc" "src/graph/CMakeFiles/gamma_graph.dir/upscale.cc.o" "gcc" "src/graph/CMakeFiles/gamma_graph.dir/upscale.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gamma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
