file(REMOVE_RECURSE
  "CMakeFiles/gamma_graph.dir/canonical.cc.o"
  "CMakeFiles/gamma_graph.dir/canonical.cc.o.d"
  "CMakeFiles/gamma_graph.dir/csr.cc.o"
  "CMakeFiles/gamma_graph.dir/csr.cc.o.d"
  "CMakeFiles/gamma_graph.dir/datasets.cc.o"
  "CMakeFiles/gamma_graph.dir/datasets.cc.o.d"
  "CMakeFiles/gamma_graph.dir/generators.cc.o"
  "CMakeFiles/gamma_graph.dir/generators.cc.o.d"
  "CMakeFiles/gamma_graph.dir/isomorphism.cc.o"
  "CMakeFiles/gamma_graph.dir/isomorphism.cc.o.d"
  "CMakeFiles/gamma_graph.dir/loader.cc.o"
  "CMakeFiles/gamma_graph.dir/loader.cc.o.d"
  "CMakeFiles/gamma_graph.dir/metrics.cc.o"
  "CMakeFiles/gamma_graph.dir/metrics.cc.o.d"
  "CMakeFiles/gamma_graph.dir/pattern.cc.o"
  "CMakeFiles/gamma_graph.dir/pattern.cc.o.d"
  "CMakeFiles/gamma_graph.dir/reorder.cc.o"
  "CMakeFiles/gamma_graph.dir/reorder.cc.o.d"
  "CMakeFiles/gamma_graph.dir/upscale.cc.o"
  "CMakeFiles/gamma_graph.dir/upscale.cc.o.d"
  "libgamma_graph.a"
  "libgamma_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
