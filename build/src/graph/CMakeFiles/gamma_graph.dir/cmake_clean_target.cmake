file(REMOVE_RECURSE
  "libgamma_graph.a"
)
