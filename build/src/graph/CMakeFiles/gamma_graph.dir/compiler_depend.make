# Empty compiler generated dependencies file for gamma_graph.
# This may be replaced when dependencies are built.
