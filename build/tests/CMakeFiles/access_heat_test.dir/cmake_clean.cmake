file(REMOVE_RECURSE
  "CMakeFiles/access_heat_test.dir/access_heat_test.cc.o"
  "CMakeFiles/access_heat_test.dir/access_heat_test.cc.o.d"
  "access_heat_test"
  "access_heat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_heat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
