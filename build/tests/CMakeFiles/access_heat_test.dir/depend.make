# Empty dependencies file for access_heat_test.
# This may be replaced when dependencies are built.
