file(REMOVE_RECURSE
  "CMakeFiles/embedding_table_test.dir/embedding_table_test.cc.o"
  "CMakeFiles/embedding_table_test.dir/embedding_table_test.cc.o.d"
  "embedding_table_test"
  "embedding_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
