file(REMOVE_RECURSE
  "CMakeFiles/filtering_test.dir/filtering_test.cc.o"
  "CMakeFiles/filtering_test.dir/filtering_test.cc.o.d"
  "filtering_test"
  "filtering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filtering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
