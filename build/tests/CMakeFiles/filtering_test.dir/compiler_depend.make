# Empty compiler generated dependencies file for filtering_test.
# This may be replaced when dependencies are built.
