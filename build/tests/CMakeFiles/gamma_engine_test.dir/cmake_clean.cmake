file(REMOVE_RECURSE
  "CMakeFiles/gamma_engine_test.dir/gamma_engine_test.cc.o"
  "CMakeFiles/gamma_engine_test.dir/gamma_engine_test.cc.o.d"
  "gamma_engine_test"
  "gamma_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
