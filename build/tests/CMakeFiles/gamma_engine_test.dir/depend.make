# Empty dependencies file for gamma_engine_test.
# This may be replaced when dependencies are built.
