file(REMOVE_RECURSE
  "CMakeFiles/memory_pool_test.dir/memory_pool_test.cc.o"
  "CMakeFiles/memory_pool_test.dir/memory_pool_test.cc.o.d"
  "memory_pool_test"
  "memory_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
