file(REMOVE_RECURSE
  "CMakeFiles/plan_reorder_test.dir/plan_reorder_test.cc.o"
  "CMakeFiles/plan_reorder_test.dir/plan_reorder_test.cc.o.d"
  "plan_reorder_test"
  "plan_reorder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_reorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
