# Empty dependencies file for plan_reorder_test.
# This may be replaced when dependencies are built.
