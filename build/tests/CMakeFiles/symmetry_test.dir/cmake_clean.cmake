file(REMOVE_RECURSE
  "CMakeFiles/symmetry_test.dir/symmetry_test.cc.o"
  "CMakeFiles/symmetry_test.dir/symmetry_test.cc.o.d"
  "symmetry_test"
  "symmetry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
