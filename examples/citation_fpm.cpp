// Frequent pattern mining on a citation-graph proxy (Algorithm 2): mines
// all patterns of up to three edges whose instance count clears the
// support threshold, then prints the surviving pattern table.
#include <cstdio>

#include "algos/fpm.h"
#include "core/gamma.h"
#include "graph/datasets.h"
#include "gpusim/device.h"

int main(int argc, char** argv) {
  using namespace gpm;

  uint64_t min_support = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                  : 500;
  graph::Graph g = graph::MakeDataset("CP");  // cit-Patent proxy
  g.EnsureEdgeIndex();
  std::printf("citation graph proxy: %s\n", g.DebugString().c_str());
  std::printf("mining <=3-edge patterns with support >= %llu\n\n",
              static_cast<unsigned long long>(min_support));

  gpusim::SimParams params;
  params.device_memory_bytes = 32ull << 20;
  gpusim::Device device(params);
  core::GammaEngine engine(&device, &g, {});
  if (Status st = engine.Prepare(); !st.ok()) {
    std::fprintf(stderr, "prepare: %s\n", st.ToString().c_str());
    return 1;
  }

  auto result = algos::MineFrequentPatterns(
      &engine, {.max_edges = 3, .min_support = min_support});
  if (!result.ok()) {
    std::fprintf(stderr, "FPM: %s\n", result.status().ToString().c_str());
    return 1;
  }

  auto top = result.value().patterns.TopPatterns();
  std::printf("%zu frequent patterns (simulated %.3f ms):\n", top.size(),
              result.value().sim_millis);
  for (const core::PatternEntry& e : top) {
    std::printf("  sup=%8llu  %s\n",
                static_cast<unsigned long long>(e.support),
                e.exemplar.DebugString().c_str());
  }

  std::printf("\nper-iteration aggregation stats:\n");
  for (std::size_t i = 0; i < result.value().aggregations.size(); ++i) {
    const core::AggregationResult& a = result.value().aggregations[i];
    std::printf("  iteration %zu: %zu embeddings, %zu distinct patterns, "
                "%zu sort segments\n",
                i + 1, a.codes.size(), a.distinct_patterns,
                a.sort_stats.segments);
  }
  std::printf("\ndevice counters: %s\n", device.stats().ToString().c_str());
  return 0;
}
