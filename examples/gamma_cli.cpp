// gamma_cli — command-line driver for the framework: pick a dataset proxy
// (or load an edge list), a workload, and platform/framework options, run
// it on the simulated device, and print results plus hardware counters.
//
// Examples:
//   gamma_cli --dataset CL --task kcl --k 4
//   gamma_cli --dataset CP --task sm --query 2 --placement zerocopy
//   gamma_cli --dataset ER --task fpm --minsup 300 --strategy naive
//   gamma_cli --graph my_edges.txt --task motif --k 3
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "algos/fpm.h"
#include "algos/kclique.h"
#include "algos/motif.h"
#include "algos/subgraph_matching.h"
#include "baselines/presets.h"
#include "core/compiled_engine.h"
#include "core/gamma.h"
#include "core/pattern_compiler.h"
#include "core/plan_io.h"
#include "core/plan_verifier.h"
#include "graph/datasets.h"
#include "graph/loader.h"
#include "gpusim/critpath.h"
#include "gpusim/device.h"
#include "gpusim/profile.h"

namespace {

using namespace gpm;

struct CliOptions {
  std::string dataset = "CP";
  std::string graph_path;
  std::string task = "kcl";
  bool task_set = false;
  int k = 3;
  int query = 1;
  std::string pattern_text;
  std::string pattern_preset;
  std::string plan_out;
  std::string verify_plan_path;
  bool verify_plan = false;
  bool verify_json = false;
  bool plan_auto = false;
  std::string planprof_out;
  bool explain = false;
  bool explain_analyze = false;
  int fpm_edges = 3;
  uint64_t minsup = 0;  // 0 = |E|/10
  std::string placement = "hybrid";
  std::string strategy = "dynamic";
  bool pre_merge = true;
  std::size_t streams = 1;
  std::size_t extension_chunk_rows = 0;  // 0 = keep the default
  bool symmetric = false;
  std::size_t device_mb = 16;
  int warps = 64;
  int host_threads = 1;
  bool show_stats = false;
  bool trace = false;
  std::string profile_json;
  std::string trace_out;
  std::string critpath_out;
  std::string metrics_out;
  std::string adaptivity_out;
  std::size_t trace_capacity = 0;  // 0 = keep the default
  double metrics_interval = 100000;
  bool check = false;
  std::string check_list;  // empty = all checkers
  std::string check_out;
};

void Usage() {
  std::puts(
      "usage: gamma_cli [options]\n"
      "  --dataset NAME     Table II proxy: CP CL CO EA ER CL8 SL5 UK IT TW\n"
      "  --graph PATH       edge-list file instead of a proxy\n"
      "  --task T           kcl | sm | fpm | motif\n"
      "  --k N              clique/motif size (default 3)\n"
      "  --query N          SM query 1..3 (Fig. 13)\n"
      "  --pattern P        custom SM pattern: an inline spec like\n"
      "                     0-1,1-2,2-0;labels=0,1,* or the path of a\n"
      "                     pattern file ('u v' edge lines, optional\n"
      "                     'labels l0 l1 ...' line with * wildcards,\n"
      "                     # comments). Implies --task sm\n"
      "  --pattern-preset N canned pattern: triangle | clique4 | clique5 |\n"
      "                     path3 | path4 | cycle4 | cycle5 | star3 |\n"
      "                     diamond | tailed-triangle | q1 | q2 | q3.\n"
      "                     Implies --task sm\n"
      "  --plan-out F       write the compiled gamma.plan.v1 plan JSON\n"
      "                     (any task) to F\n"
      "  --verify-plan F    load a gamma.plan.v1 document from F and run\n"
      "                     the static soundness verifier against the\n"
      "                     selected graph without executing anything.\n"
      "                     Prints the obligation report and exits 0 if\n"
      "                     the plan is verified, 2 if it is refuted or\n"
      "                     malformed. --verify-plan=json F emits the\n"
      "                     gamma.verify.v1 JSON report on stdout instead\n"
      "  --plan-auto        input-aware compilation for SM: greedy\n"
      "                     cardinality order, automatic symmetry\n"
      "                     breaking, statistics-driven start mode and\n"
      "                     per-level write strategies\n"
      "  --planprof-out F   write a gamma.planprof.v1 plan-execution\n"
      "                     audit: per-level estimated vs actual rows\n"
      "                     (Q-error), candidates and selectivity,\n"
      "                     strategy provenance, resource-class cycle\n"
      "                     attribution, and warp-slot load imbalance.\n"
      "                     Observation only: a profiled run is\n"
      "                     bit-identical in cycles and counters\n"
      "  --explain          print the compiled plan as an aligned table\n"
      "                     (levels, estimates, strategies) and exit\n"
      "                     without running\n"
      "  --explain-analyze  run, then print the plan table joined with\n"
      "                     actual rows, Q-error, binding resource class,\n"
      "                     and per-level load imbalance\n"
      "  --fpm-edges N      FPM pattern size in edges (default 3)\n"
      "  --minsup N         FPM support threshold (default |E|/10)\n"
      "  --placement P      hybrid | unified | zerocopy | device | explicit\n"
      "  --strategy S       dynamic | naive | prealloc (write strategy)\n"
      "  --no-premerge      disable Optimization 2 grouping\n"
      "  --streams N        execution streams (default 1 = synchronous;\n"
      "                     >= 2 double-buffers the extension pipeline and\n"
      "                     overlaps segment sorts with transfers)\n"
      "  --extension-chunk-rows N  embedding rows per extension kernel\n"
      "                     (out-of-core chunk size; default 65536)\n"
      "  --symmetric        SM with automorphism symmetry breaking\n"
      "  --device-mb N      simulated device memory (default 16)\n"
      "  --warps N          resident warp slots (default 64)\n"
      "  --host-threads N   host threads executing warp tasks (default 1;\n"
      "                     > 1 runs task functions on a thread pool and\n"
      "                     replays their side effects in task order, so\n"
      "                     all simulated output stays bit-identical)\n"
      "  --stats            print hardware counters\n"
      "  --trace            print per-kernel cycle breakdown\n"
      "  --profile-json F   write the run profile (per-phase cycles and\n"
      "                     memory traffic, totals, kernel trace) to F\n"
      "  --trace-out F      write a Chrome trace-event JSON timeline\n"
      "                     (kernels, phases, warp slots, UM page events;\n"
      "                     open in Perfetto or chrome://tracing)\n"
      "  --trace-capacity N cap buffered trace events / kernel records /\n"
      "                     timeline commands (default 65536 events, 2^20\n"
      "                     commands; overflow counted, not stored)\n"
      "  --critpath-out F   write a gamma.critpath.v1 analysis: critical\n"
      "                     path over the stream/event/kernel DAG, per-span\n"
      "                     slack, per-phase binding resource, and what-if\n"
      "                     projections (PCIe x2, sort x2, ...). On a\n"
      "                     single-stream run the critical path equals the\n"
      "                     end-to-end cycle count exactly\n"
      "  --metrics-out F    write a gamma.metrics.v1 counter time-series\n"
      "  --metrics-interval N  metrics sampling interval in simulated\n"
      "                     cycles (default 100000)\n"
      "  --adaptivity-out F write a gamma.adaptivity.v1 audit: one record\n"
      "                     per extension with the hybrid's heat/N_u\n"
      "                     decision, actual traffic, and counterfactual\n"
      "                     unified-only / zerocopy-only shadow costs\n"
      "                     (host placements only; also enables the\n"
      "                     --stats adaptivity summary line)\n"
      "  --check[=LIST]     run under gpusim-check (the compute-sanitizer\n"
      "                     analog); LIST is a comma-separated subset of\n"
      "                     memcheck,initcheck,racecheck (default all).\n"
      "                     Prints a report and exits 2 on any finding\n"
      "  --check-out F      write the gamma.check.v1 report JSON to F\n"
      "                     (implies --check)");
}

bool Parse(int argc, char** argv, CliOptions* o) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--dataset") {
      o->dataset = next();
    } else if (a == "--graph") {
      o->graph_path = next();
    } else if (a == "--task") {
      o->task = next();
      o->task_set = true;
    } else if (a == "--k") {
      o->k = std::atoi(next());
    } else if (a == "--query") {
      o->query = std::atoi(next());
    } else if (a == "--pattern") {
      o->pattern_text = next();
    } else if (a == "--pattern-preset") {
      o->pattern_preset = next();
    } else if (a == "--plan-out") {
      o->plan_out = next();
    } else if (a == "--verify-plan") {
      o->verify_plan = true;
      o->verify_plan_path = next();
    } else if (a == "--verify-plan=json") {
      o->verify_plan = true;
      o->verify_json = true;
      o->verify_plan_path = next();
    } else if (a == "--plan-auto") {
      o->plan_auto = true;
    } else if (a == "--planprof-out") {
      o->planprof_out = next();
    } else if (a == "--explain") {
      o->explain = true;
    } else if (a == "--explain-analyze") {
      o->explain_analyze = true;
    } else if (a == "--fpm-edges") {
      o->fpm_edges = std::atoi(next());
    } else if (a == "--minsup") {
      o->minsup = std::strtoull(next(), nullptr, 10);
    } else if (a == "--placement") {
      o->placement = next();
    } else if (a == "--strategy") {
      o->strategy = next();
    } else if (a == "--no-premerge") {
      o->pre_merge = false;
    } else if (a == "--streams") {
      o->streams = std::strtoull(next(), nullptr, 10);
    } else if (a == "--extension-chunk-rows") {
      o->extension_chunk_rows = std::strtoull(next(), nullptr, 10);
    } else if (a == "--symmetric") {
      o->symmetric = true;
    } else if (a == "--device-mb") {
      o->device_mb = std::strtoull(next(), nullptr, 10);
    } else if (a == "--warps") {
      o->warps = std::atoi(next());
    } else if (a == "--host-threads") {
      o->host_threads = std::atoi(next());
      if (o->host_threads < 1) {
        std::fprintf(stderr, "--host-threads wants N >= 1\n");
        return false;
      }
    } else if (a == "--stats") {
      o->show_stats = true;
    } else if (a == "--trace") {
      o->trace = true;
    } else if (a == "--profile-json") {
      o->profile_json = next();
    } else if (a == "--trace-out") {
      o->trace_out = next();
    } else if (a == "--critpath-out") {
      o->critpath_out = next();
    } else if (a == "--trace-capacity") {
      o->trace_capacity = std::strtoull(next(), nullptr, 10);
    } else if (a == "--metrics-out") {
      o->metrics_out = next();
    } else if (a == "--metrics-interval") {
      o->metrics_interval = std::strtod(next(), nullptr);
    } else if (a == "--adaptivity-out") {
      o->adaptivity_out = next();
    } else if (a == "--check") {
      o->check = true;
    } else if (a.rfind("--check=", 0) == 0) {
      o->check = true;
      o->check_list = a.substr(std::strlen("--check="));
    } else if (a == "--check-out") {
      o->check = true;
      o->check_out = next();
    } else if (a == "--help" || a == "-h") {
      Usage();
      return false;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      Usage();
      return false;
    }
  }
  // A user-supplied pattern is a subgraph-matching query unless a task
  // was named explicitly.
  if (!o->task_set &&
      (!o->pattern_text.empty() || !o->pattern_preset.empty())) {
    o->task = "sm";
  }
  return true;
}

Result<graph::Pattern> ResolvePattern(const CliOptions& o,
                                      const graph::Graph& g) {
  if (!o.pattern_preset.empty()) {
    const std::string& n = o.pattern_preset;
    if (n == "triangle") return graph::Pattern::Triangle();
    if (n == "clique4") return graph::Pattern::Clique(4);
    if (n == "clique5") return graph::Pattern::Clique(5);
    if (n == "path3") return graph::Pattern::Path(3);
    if (n == "path4") return graph::Pattern::Path(4);
    if (n == "cycle4") return graph::Pattern::Cycle(4);
    if (n == "cycle5") return graph::Pattern::Cycle(5);
    if (n == "star3") return graph::Pattern::Star(3);
    if (n == "diamond") return graph::Pattern::Diamond();
    if (n == "tailed-triangle") return graph::Pattern::TailedTriangle();
    if (n == "q1") return graph::Pattern::SmQuery(1, g.num_labels());
    if (n == "q2") return graph::Pattern::SmQuery(2, g.num_labels());
    if (n == "q3") return graph::Pattern::SmQuery(3, g.num_labels());
    return Status::InvalidArgument("unknown pattern preset: " + n);
  }
  if (!o.pattern_text.empty()) {
    // A path on disk wins; anything else is an inline spec.
    if (std::ifstream probe(o.pattern_text); probe) {
      return graph::ParsePatternFile(o.pattern_text);
    }
    return graph::ParsePattern(o.pattern_text);
  }
  return graph::Pattern::SmQuery(o.query, g.num_labels());
}

// Writes the gamma.plan.v1 document of the run's compiled plan.
bool WritePlan(const std::string& path, const core::CompiledPlan& plan) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << plan.ToJson();
  std::printf("plan written to %s (%s)\n", path.c_str(),
              plan.DebugString().c_str());
  return true;
}

// Compiles the plan the chosen task would run — the same preset entry
// points the run path drives — without executing it (--explain).
Result<core::CompiledPlan> CompileTaskPlan(const CliOptions& o,
                                           const graph::Graph& g) {
  core::PatternCompiler compiler(&g);
  if (o.task == "kcl") {
    return compiler.CompileKClique(o.k, /*count_only_last=*/false);
  }
  if (o.task == "motif") return compiler.CompileMotifCensus(o.k);
  if (o.task == "fpm") {
    const uint64_t minsup = o.minsup ? o.minsup : g.num_edges() / 10;
    return compiler.CompileFpm(o.fpm_edges, minsup);
  }
  if (o.task == "sm") {
    auto pattern = ResolvePattern(o, g);
    if (!pattern.ok()) return pattern.status();
    core::CompileOptions copts;
    if (o.plan_auto) {
      copts.plan_strategy = core::PlanStrategy::kGreedyCardinality;
      copts.break_symmetry = true;
      copts.fold_ascending = true;
      copts.input_aware = true;
    } else if (o.symmetric) {
      copts.break_symmetry = true;
    }
    return compiler.CompileMatch(pattern.value(), copts);
  }
  return Status::InvalidArgument("unknown task: " + o.task);
}

std::string IntersectText(const std::vector<int>& positions) {
  if (positions.empty()) return "union";
  std::string s = "[";
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(positions[i]);
  }
  return s + "]";
}

std::string LabelText(graph::Label label) {
  return label == graph::Pattern::kAnyLabel ? "*" : std::to_string(label);
}

void PrintPlanHeadline(const core::CompiledPlan& plan) {
  std::printf("plan: %s", core::PlanKindName(plan.kind));
  if (!plan.order.empty()) {
    std::printf("  order=[");
    for (std::size_t i = 0; i < plan.order.size(); ++i) {
      std::printf(i > 0 ? " %d" : "%d", plan.order[i]);
    }
    std::printf("]");
  }
  if (plan.kind == core::PlanKind::kSubgraphMatch ||
      plan.kind == core::PlanKind::kMotifCensus) {
    std::printf("  start=%s", core::StartModeName(plan.start));
  }
  if (plan.symmetry_broken) std::printf("  symmetry-broken");
  if (plan.kind == core::PlanKind::kFrequentMining) {
    std::printf("  max_edges=%d  min_support=%llu", plan.max_edges,
                static_cast<unsigned long long>(plan.min_support));
  }
  std::printf("\n");
}

// --explain: the compiled plan as an aligned per-level table.
void PrintExplain(const core::CompiledPlan& plan) {
  PrintPlanHeadline(plan);
  if (plan.kind == core::PlanKind::kFrequentMining) {
    std::printf("  %d aggregate/filter/extend iterations over the edge "
                "table\n",
                plan.max_edges);
    return;
  }
  if (plan.kind == core::PlanKind::kEdgeJoin) {
    std::printf("  edge order:");
    for (auto [a, b] : plan.edge_order) std::printf(" (%d,%d)", a, b);
    std::printf("\n");
    return;
  }
  std::printf("  %-7s %5s  %-10s %5s  %-14s %-9s %12s\n", "level", "depth",
              "intersect", "label", "write", "pre-merge", "est_rows");
  const double start_est = plan.start == core::StartMode::kEdgeParallel
                               ? plan.est_pair_rows
                               : plan.est_start_rows;
  std::printf("  %-7s %5d  %-10s %5s  %-14s %-9s %12.6g\n", "start",
              plan.first_depth() - 1, "-",
              LabelText(plan.start_label).c_str(), "-", "-", start_est);
  for (std::size_t i = 0; i < plan.levels.size(); ++i) {
    const core::CompiledLevel& level = plan.levels[i];
    const int depth = plan.first_depth() + static_cast<int>(i);
    const std::string name = "L" + std::to_string(depth);
    std::printf("  %-7s %5d  %-10s %5s  %-14s %-9s %12.6g\n", name.c_str(),
                depth, IntersectText(level.intersect_positions).c_str(),
                LabelText(level.candidate_label).c_str(),
                level.write_strategy
                    ? core::WriteStrategyName(*level.write_strategy)
                    : "inherit",
                level.pre_merge ? (*level.pre_merge ? "yes" : "no")
                                : "inherit",
                level.est_rows);
  }
}

// --explain-analyze: the profiled run as an aligned per-level table
// joining estimates with actuals.
void PrintExplainAnalyze(core::PlanProfiler* prof) {
  const core::PlanProfSummary summary = prof->Summary();
  std::printf("  %-9s %5s %12s %12s %8s %12s %7s  %-17s %-9s %6s\n",
              "level", "depth", "est_rows", "rows", "q_error", "candidates",
              "select", "strategy", "binding", "imbal");
  for (const core::PlanProfSegment& seg : prof->segments()) {
    std::string strategy = "-";
    if (seg.has_strategy) {
      strategy = seg.strategy.write_strategy;
      if (seg.strategy.pre_merge) strategy += "+pm";
      if (seg.strategy.count_only) strategy += "+cnt";
    }
    char est[24];
    char q[16];
    if (seg.has_estimate) {
      std::snprintf(est, sizeof(est), "%12.6g", seg.est_rows);
      std::snprintf(q, sizeof(q), "%8.2f", seg.q_error);
    } else {
      std::snprintf(est, sizeof(est), "%12s", "-");
      std::snprintf(q, sizeof(q), "%8s", "-");
    }
    std::printf("  %-9s %5d %s %12llu %s %12llu %7.3f  %-17s %-9s %6.2f\n",
                seg.label.c_str(), seg.depth, est,
                static_cast<unsigned long long>(seg.rows), q,
                static_cast<unsigned long long>(seg.candidates),
                seg.selectivity, strategy.c_str(),
                seg.attributed ? gpusim::ResourceClassName(seg.binding)
                               : "-",
                seg.imbalance);
  }
  if (summary.worst_q_error > 0) {
    std::printf("  worst Q-error %.2f at depth %d; run imbalance %.2f\n",
                summary.worst_q_error, summary.worst_q_error_depth,
                summary.imbalance);
  } else {
    std::printf("  no cardinality estimates; run imbalance %.2f\n",
                summary.imbalance);
  }
}

core::GammaOptions FrameworkOptions(const CliOptions& o) {
  core::GammaOptions options = baselines::GammaDefaultOptions();
  if (o.placement == "unified") {
    options.access.placement = core::GraphPlacement::kUnifiedOnly;
  } else if (o.placement == "zerocopy") {
    options.access.placement = core::GraphPlacement::kZeroCopyOnly;
  } else if (o.placement == "device") {
    options.access.placement = core::GraphPlacement::kDeviceResident;
  } else if (o.placement == "explicit") {
    options.access.placement = core::GraphPlacement::kExplicitTransfer;
  }
  if (o.strategy == "naive") {
    options.extension.write_strategy = core::WriteStrategy::kNaiveTwoPass;
  } else if (o.strategy == "prealloc") {
    options.extension.write_strategy = core::WriteStrategy::kPreAlloc;
  }
  options.extension.pre_merge = o.pre_merge;
  if (o.streams > 0) {
    options.extension.num_streams = o.streams;
    options.aggregation.sort.num_streams = o.streams;
  }
  if (o.extension_chunk_rows > 0) {
    options.extension.chunk_rows = o.extension_chunk_rows;
  }
  // The audit also feeds the --stats summary line, so either flag turns
  // it on (the engine ignores it for placements with no host traffic).
  options.adaptivity_audit = !o.adaptivity_out.empty() || o.show_stats;
  options.plan_profile = !o.planprof_out.empty() || o.explain_analyze;
  return options;
}

// --verify-plan: load an external gamma.plan.v1 document and run the
// static soundness verifier against the selected graph. Pure host-side
// analysis — no device, no engine, no simulated cycles. Returns the
// process exit code: 0 verified, 2 refuted or malformed.
int VerifyPlanFile(const CliOptions& o, const graph::Graph& g) {
  std::ifstream in(o.verify_plan_path);
  if (!in) {
    std::fprintf(stderr, "verify-plan: cannot open %s\n",
                 o.verify_plan_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto plan = core::ParsePlanJson(buffer.str());
  if (!plan.ok()) {
    std::fprintf(stderr, "verify-plan: %s\n",
                 plan.status().ToString().c_str());
    return 2;
  }
  // Verify with the same inherited strategies a run with these CLI flags
  // would resolve, so tier-3 reservation findings match the run path.
  core::GammaOptions fw = FrameworkOptions(o);
  core::VerifyOptions vopts;
  vopts.graph = &g;
  vopts.engine_extension = &fw.extension;
  const core::VerifyReport report =
      core::PlanVerifier(vopts).Verify(plan.value());
  if (o.verify_json) {
    std::fputs(report.ToJson().c_str(), stdout);
  } else {
    std::fputs(report.ReportText().c_str(), stdout);
  }
  return report.verified ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions o;
  if (!Parse(argc, argv, &o)) return 1;

  graph::Graph g;
  if (!o.graph_path.empty()) {
    auto loaded = graph::LoadEdgeListText(o.graph_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
  } else {
    g = graph::MakeDataset(o.dataset);
  }
  g.EnsureEdgeIndex();
  // In --verify-plan=json mode stdout carries exactly one JSON document
  // so the report can be piped or redirected; the banner moves to stderr.
  if (o.verify_plan && o.verify_json)
    std::fprintf(stderr, "graph: %s\n", g.DebugString().c_str());
  else
    std::printf("graph: %s\n", g.DebugString().c_str());

  if (o.verify_plan) return VerifyPlanFile(o, g);

  if (o.explain) {
    // Plan only — compile the task's plan and print it without running.
    auto plan = CompileTaskPlan(o, g);
    if (!plan.ok()) {
      std::fprintf(stderr, "explain: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    PrintExplain(plan.value());
    if (!o.plan_out.empty() && !WritePlan(o.plan_out, plan.value())) {
      return 1;
    }
    return 0;
  }

  gpusim::SimParams params;
  params.device_memory_bytes = o.device_mb << 20;
  params.um_device_buffer_bytes = params.device_memory_bytes / 8;
  params.num_warp_slots = o.warps;
  params.host_threads = o.host_threads;
  gpusim::Device device(params);
  // The JSON profile embeds the kernel trace, so --profile-json implies
  // tracing.
  if (o.trace || !o.profile_json.empty()) device.set_trace_enabled(true);
  if (o.trace_capacity > 0) device.set_trace_capacity(o.trace_capacity);
  if (!o.trace_out.empty()) device.trace().set_enabled(true);
  if (!o.critpath_out.empty()) device.critpath().set_enabled(true);
  // The plan profiler's resource attribution and binding columns come from
  // the critpath command log; recording it stays observation-only.
  if (!o.planprof_out.empty() || o.explain_analyze) {
    device.critpath().set_enabled(true);
  }
  if (!o.metrics_out.empty()) {
    device.metrics().set_interval_cycles(o.metrics_interval);
  }
  if (o.check) {
    gpusim::Sanitizer::Options copts;
    if (!gpusim::Sanitizer::ParseCheckList(o.check_list, &copts)) {
      std::fprintf(stderr,
                   "--check: bad checker list '%s' (want a comma-separated "
                   "subset of memcheck,initcheck,racecheck)\n",
                   o.check_list.c_str());
      return 1;
    }
    device.EnableSanitizer(copts);
  }
  // Held in a unique_ptr so the leak sweep below can run after the engine
  // (and every DeviceBuffer it owns) has been destroyed.
  auto engine =
      std::make_unique<core::GammaEngine>(&device, &g, FrameworkOptions(o));
  if (Status st = engine->Prepare(); !st.ok()) {
    std::fprintf(stderr, "prepare: %s\n", st.ToString().c_str());
    return 1;
  }

  if (o.task == "kcl") {
    auto r = algos::CountKCliques(engine.get(), o.k);
    if (!r.ok()) {
      std::fprintf(stderr, "kcl: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%d-cliques: %llu (%.3f ms simulated)\n", o.k,
                static_cast<unsigned long long>(r.value().cliques),
                r.value().sim_millis);
    if (!o.plan_out.empty() && !WritePlan(o.plan_out, r.value().plan)) {
      return 1;
    }
  } else if (o.task == "sm") {
    auto pattern = ResolvePattern(o, g);
    if (!pattern.ok()) {
      std::fprintf(stderr, "pattern: %s\n",
                   pattern.status().ToString().c_str());
      return 2;
    }
    const graph::Pattern& q = pattern.value();
    std::printf("query: %s\n", q.DebugString().c_str());
    // Drive the pattern compiler directly: any connected (optionally
    // labeled) pattern becomes a CompiledPlan the generic engine runs.
    core::PatternCompiler compiler(&g);
    core::CompileOptions copts;
    if (o.plan_auto) {
      copts.plan_strategy = core::PlanStrategy::kGreedyCardinality;
      copts.break_symmetry = true;
      copts.fold_ascending = true;
      copts.input_aware = true;
    } else if (o.symmetric) {
      copts.break_symmetry = true;
    }
    auto compiled = compiler.CompileMatch(q, copts);
    if (!compiled.ok()) {
      std::fprintf(stderr, "sm: %s\n",
                   compiled.status().ToString().c_str());
      return 2;
    }
    const core::CompiledPlan& plan = compiled.value();
    auto r = core::CompiledEngine(engine.get()).Run(plan);
    if (!r.ok()) {
      std::fprintf(stderr, "sm: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("embeddings: %llu, instances: %llu (%.3f ms simulated)\n",
                static_cast<unsigned long long>(r.value().embeddings),
                static_cast<unsigned long long>(r.value().instances),
                r.value().sim_millis);
    if (!o.plan_out.empty() && !WritePlan(o.plan_out, plan)) return 1;
  } else if (o.task == "fpm") {
    uint64_t minsup = o.minsup ? o.minsup : g.num_edges() / 10;
    auto r = algos::MineFrequentPatterns(
        engine.get(), {.max_edges = o.fpm_edges, .min_support = minsup});
    if (!r.ok()) {
      std::fprintf(stderr, "fpm: %s\n", r.status().ToString().c_str());
      return 1;
    }
    auto maximal = r.value().patterns.MaximalPatterns();
    std::printf("frequent patterns: %zu (%zu maximal), sup >= %llu "
                "(%.3f ms simulated)\n",
                r.value().patterns.size(), maximal.size(),
                static_cast<unsigned long long>(minsup),
                r.value().sim_millis);
    for (const auto& e : r.value().patterns.TopPatterns()) {
      std::printf("  sup=%8llu  %s\n",
                  static_cast<unsigned long long>(e.support),
                  e.exemplar.DebugString().c_str());
    }
    if (!o.plan_out.empty() && !WritePlan(o.plan_out, r.value().plan)) {
      return 1;
    }
  } else if (o.task == "motif") {
    auto r = algos::CountMotifs(engine.get(), o.k);
    if (!r.ok()) {
      std::fprintf(stderr, "motif: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%d-vertex motifs (%.3f ms simulated):\n", o.k,
                r.value().sim_millis);
    for (const auto& [pattern, count] : r.value().motifs) {
      std::printf("  %12llu x %s\n",
                  static_cast<unsigned long long>(count),
                  pattern.DebugString().c_str());
    }
    if (!o.plan_out.empty() && !WritePlan(o.plan_out, r.value().plan)) {
      return 1;
    }
  } else {
    std::fprintf(stderr, "unknown task: %s\n", o.task.c_str());
    Usage();
    return 1;
  }

  if (o.trace) {
    // Aggregate the trace by kernel name.
    std::map<std::string, std::pair<std::size_t, double>> by_name;
    for (const auto& rec : device.kernel_trace()) {
      auto& agg = by_name[rec.name];
      agg.first += 1;
      agg.second += rec.total_cycles;
    }
    std::printf("kernel breakdown:\n");
    for (const auto& [name, agg] : by_name) {
      std::printf("  %-22s %6zu launches  %10.3f ms\n", name.c_str(),
                  agg.first, agg.second * 1e-6);
    }
  }
  if (o.show_stats) {
    std::printf("device counters: %s\n", device.stats().ToString().c_str());
    std::printf("peak device: %.2f MiB, peak host: %.2f MiB\n",
                device.PeakDeviceBytes() / 1048576.0,
                device.host_tracker().peak_bytes() / 1048576.0);
    if (engine->audit() != nullptr) {
      core::AdaptivitySummary s = engine->audit()->Summary();
      std::printf(
          "adaptivity: %llu extensions, mean N_u %.1f pages, "
          "regret %+.0f cycles vs best pure (%s)\n",
          static_cast<unsigned long long>(s.extensions),
          s.mean_unified_pages, s.regret_cycles,
          s.est_unified_cycles <= s.est_zerocopy_cycles ? "unified"
                                                        : "zerocopy");
    }
  }
  if (!o.profile_json.empty()) {
    std::ofstream out(o.profile_json);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   o.profile_json.c_str());
      return 1;
    }
    out << device.profile().ToJson(device);
    std::printf("profile written to %s (%zu phases, %zu kernel records",
                o.profile_json.c_str(), device.profile().phases().size(),
                device.kernel_trace().size());
    if (device.dropped_kernel_records() > 0) {
      std::printf(", %llu dropped",
                  static_cast<unsigned long long>(
                      device.dropped_kernel_records()));
    }
    std::printf(")\n");
  }
  if (!o.trace_out.empty()) {
    std::ofstream out(o.trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   o.trace_out.c_str());
      return 1;
    }
    out << device.trace().ToChromeTraceJson(device.params());
    std::printf("timeline written to %s (%zu events, %llu dropped; open in "
                "Perfetto)\n",
                o.trace_out.c_str(), device.trace().events().size(),
                static_cast<unsigned long long>(
                    device.trace().dropped_events()));
  }
  if (!o.metrics_out.empty()) {
    // Pin the final state so the series always covers the whole run.
    device.metrics().ForceSample(device);
    std::ofstream out(o.metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   o.metrics_out.c_str());
      return 1;
    }
    out << device.metrics().ToJson(device);
    std::printf("metrics written to %s (%zu samples every %.0f cycles)\n",
                o.metrics_out.c_str(), device.metrics().samples().size(),
                device.metrics().interval_cycles());
  }
  if (!o.critpath_out.empty()) {
    auto analyzed = prof::Analyze(device);
    if (!analyzed.ok()) {
      std::fprintf(stderr, "critpath: %s\n",
                   analyzed.status().ToString().c_str());
      return 1;
    }
    const prof::CritpathReport& report = analyzed.value();
    std::ofstream out(o.critpath_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   o.critpath_out.c_str());
      return 1;
    }
    out << report.ToJson();
    std::printf(
        "critpath written to %s (%zu commands, %d streams%s)\n",
        o.critpath_out.c_str(), report.commands, report.streams,
        report.partial ? "; PARTIAL: command log overflowed" : "");
    std::printf(
        "  critical path %.0f of %.0f cycles, bound on %s "
        "(link utilization %.1f%%)\n",
        report.critical_path_cycles, report.total_cycles,
        gpusim::ResourceClassName(report.binding),
        report.pcie_link_utilization * 100.0);
    for (const prof::WhatIf& wi : report.whatifs) {
      if (wi.cost_factor == 1.0) continue;  // calibration row
      std::printf("  what-if %s x%.2g: %.0f cycles (%.2fx)\n",
                  gpusim::ResourceClassName(wi.resource), wi.cost_factor,
                  wi.projected_cycles, wi.speedup);
    }
  }
  if (!o.adaptivity_out.empty()) {
    if (engine->audit() == nullptr) {
      std::fprintf(stderr,
                   "--adaptivity-out: placement %s has no host-memory "
                   "traffic to audit\n",
                   o.placement.c_str());
      return 1;
    }
    std::ofstream out(o.adaptivity_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   o.adaptivity_out.c_str());
      return 1;
    }
    out << engine->audit()->ToJson();
    std::printf("adaptivity audit written to %s (%zu extension records)\n",
                o.adaptivity_out.c_str(), engine->audit()->records().size());
  }
  if (o.explain_analyze || !o.planprof_out.empty()) {
    core::PlanProfiler* prof = engine->plan_profiler();
    if (prof == nullptr || !prof->has_run()) {
      std::fprintf(stderr, "planprof: task produced no profiled run\n");
      return 1;
    }
    if (o.explain_analyze) PrintExplainAnalyze(prof);
    if (!o.planprof_out.empty()) {
      std::ofstream out(o.planprof_out);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     o.planprof_out.c_str());
        return 1;
      }
      out << prof->ToJson();
      std::printf("planprof written to %s (%zu levels)\n",
                  o.planprof_out.c_str(), prof->segments().size());
    }
  }
  if (o.check) {
    // Tear the engine down first so buffers it still owns are released and
    // the leak sweep only reports real leaks.
    engine.reset();
    gpusim::Sanitizer* san = device.sanitizer();
    san->FinalizeLeakCheck();
    if (!o.check_out.empty()) {
      std::ofstream out(o.check_out);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     o.check_out.c_str());
        return 1;
      }
      out << san->ToJson();
      std::printf("check report written to %s\n", o.check_out.c_str());
    }
    if (!san->findings().empty()) {
      std::fputs(san->ReportText().c_str(), stderr);
      return 2;
    }
    std::printf(
        "gpusim-check: clean (%llu device, %llu unified, %llu bulk "
        "accesses; %llu allocs, %llu frees checked)\n",
        static_cast<unsigned long long>(san->activity().device_accesses),
        static_cast<unsigned long long>(san->activity().unified_accesses),
        static_cast<unsigned long long>(san->activity().bulk_accesses),
        static_cast<unsigned long long>(san->activity().allocations),
        static_cast<unsigned long long>(san->activity().frees));
  }
  return 0;
}
