// Motif census: counts all connected 3-vertex and 4-vertex induced shapes
// in an email-network proxy using GAMMA's union-neighborhood vertex
// extension plus canonical aggregation — the "motif counting" GPM task the
// paper lists alongside SM/FPM/kCL (§III).
#include <cstdio>

#include "algos/motif.h"
#include "core/gamma.h"
#include "graph/datasets.h"
#include "gpusim/device.h"

int main() {
  using namespace gpm;

  graph::Graph g = graph::MakeDataset("ER");  // small email proxy
  std::printf("email graph proxy: %s\n\n", g.DebugString().c_str());

  gpusim::SimParams params;
  params.device_memory_bytes = 32ull << 20;
  for (int k : {3, 4}) {
    gpusim::Device device(params);
    core::GammaEngine engine(&device, &g, {});
    if (Status st = engine.Prepare(); !st.ok()) {
      std::fprintf(stderr, "prepare: %s\n", st.ToString().c_str());
      return 1;
    }
    auto census = algos::CountMotifs(&engine, k);
    if (!census.ok()) {
      std::fprintf(stderr, "motifs: %s\n",
                   census.status().ToString().c_str());
      return 1;
    }
    std::printf("%d-vertex motifs (%.3f ms simulated):\n", k,
                census.value().sim_millis);
    for (const auto& [pattern, count] : census.value().motifs) {
      std::printf("  %12llu  x  %s\n",
                  static_cast<unsigned long long>(count),
                  pattern.DebugString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
