// The paper's headline scenario: intermediate results outgrow device
// memory. An in-core framework (Pangolin's design point) crashes with
// device OOM; GAMMA keeps the embedding table in host memory and finishes.
#include <cstdio>

#include "baselines/presets.h"
#include "baselines/systems.h"
#include "graph/datasets.h"
#include "gpusim/device.h"

int main() {
  using namespace gpm;

  graph::Graph g = graph::MakeDataset("CO");  // com-orkut proxy (dense)
  std::printf("data graph: %s\n", g.DebugString().c_str());

  // A deliberately small device: 4-clique intermediate results exceed it.
  gpusim::SimParams params;
  params.device_memory_bytes = 2ull << 20;   // 2 MiB "device"
  params.um_device_buffer_bytes = 512 << 10;
  const int k = 4;

  {
    gpusim::Device device(params);
    auto r = baselines::PangolinGpuKClique(&device, g, k);
    if (r.ok()) {
      std::printf("Pangolin-GPU (in-core): %llu cliques, %.3f ms\n",
                  static_cast<unsigned long long>(r.value().count),
                  r.value().sim_millis);
    } else {
      std::printf("Pangolin-GPU (in-core): CRASHED — %s\n",
                  r.status().ToString().c_str());
    }
  }
  {
    gpusim::Device device(params);
    core::GammaOptions options = baselines::GammaDefaultOptions();
    options.extension.pool_bytes = 1 << 20;  // fit the small device
    auto r = baselines::GammaKClique(&device, g, k, options);
    if (!r.ok()) {
      std::printf("GAMMA: failed — %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("GAMMA (out-of-core): %llu cliques, %.3f ms\n",
                static_cast<unsigned long long>(r.value().count),
                r.value().sim_millis);
    std::printf("  peak device memory: %.2f MiB (capacity %.2f MiB)\n",
                r.value().peak_device_bytes / 1048576.0,
                params.device_memory_bytes / 1048576.0);
    std::printf("  peak host memory:   %.2f MiB\n",
                r.value().peak_host_bytes / 1048576.0);
    std::printf("  device counters: %s\n",
                device.stats().ToString().c_str());
  }
  return 0;
}
