// Quickstart: count triangles in a small synthetic graph with GAMMA.
//
// Demonstrates the basic lifecycle: build a simulated device, stage a
// graph, construct the engine, and run the extension primitive twice to
// grow vertex embeddings into triangles.
#include <cstdio>

#include "algos/kclique.h"
#include "core/gamma.h"
#include "graph/generators.h"
#include "gpusim/device.h"

int main() {
  using namespace gpm;

  // 1. A data graph: R-MAT with 2^12 vertices, ~40k edges.
  Rng rng(42);
  graph::Graph g = graph::Rmat(12, 40000, &rng);
  std::printf("data graph: %s\n", g.DebugString().c_str());

  // 2. A simulated GPU (Tesla-class ratios, scaled-down capacity).
  gpusim::SimParams params;
  params.device_memory_bytes = 64ull << 20;
  gpusim::Device device(params);

  // 3. The GAMMA engine with default (out-of-core, self-adaptive) options.
  core::GammaEngine engine(&device, &g, {});
  if (Status st = engine.Prepare(); !st.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Run the built-in k-clique algorithm (k = 3: triangles).
  auto result = algos::CountTriangles(&engine);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("triangles: %llu\n",
              static_cast<unsigned long long>(result.value().cliques));
  std::printf("simulated GPU time: %.3f ms\n", result.value().sim_millis);
  std::printf("device counters: %s\n", device.stats().ToString().c_str());

  // 5. The same thing spelled out with the Fig. 3 primitives.
  auto table = engine.InitVertexTable();
  if (!table.ok()) return 1;
  for (int depth = 1; depth < 3; ++depth) {
    core::VertexExtensionSpec spec;
    for (int j = 0; j < depth; ++j) spec.intersect_positions.push_back(j);
    spec.require_ascending = true;
    auto stats = engine.VertexExtension(table.value().get(), spec);
    if (!stats.ok()) return 1;
    std::printf("extension %d: %zu -> %zu embeddings (%zu kernels)\n",
                depth, stats.value().input_rows, stats.value().results,
                stats.value().chunks);
  }
  std::printf("%s\n",
              engine.OutputResults(table.value().get(), nullptr).c_str());
  return 0;
}
