// Subgraph matching on a social-network proxy: the motivating workload of
// the paper's introduction. Runs the three Fig. 13 queries with GAMMA's
// worst-case-optimal join and compares against the binary-join plan.
#include <cstdio>

#include "algos/subgraph_matching.h"
#include "core/gamma.h"
#include "graph/datasets.h"
#include "gpusim/device.h"

int main() {
  using namespace gpm;

  graph::Graph g = graph::MakeDataset("CL");  // com-lj proxy
  g.EnsureEdgeIndex();
  std::printf("social graph proxy: %s\n", g.DebugString().c_str());

  gpusim::SimParams params;
  params.device_memory_bytes = 32ull << 20;
  params.um_device_buffer_bytes = 8ull << 20;

  for (int q = 1; q <= 3; ++q) {
    graph::Pattern query = graph::Pattern::SmQuery(q, g.num_labels());
    std::printf("\nquery q%d: %s\n", q, query.DebugString().c_str());

    gpusim::Device device(params);
    core::GammaEngine engine(&device, &g, {});
    if (Status st = engine.Prepare(); !st.ok()) {
      std::fprintf(stderr, "prepare: %s\n", st.ToString().c_str());
      return 1;
    }
    auto woj = algos::MatchWoj(&engine, query);
    if (!woj.ok()) {
      std::fprintf(stderr, "WOJ: %s\n", woj.status().ToString().c_str());
      return 1;
    }
    std::printf("  WOJ: %llu embeddings (%llu instances), %.3f ms "
                "simulated\n",
                static_cast<unsigned long long>(woj.value().embeddings),
                static_cast<unsigned long long>(woj.value().instances),
                woj.value().sim_millis);
    for (std::size_t s = 0; s < woj.value().steps.size(); ++s) {
      const core::ExtensionStats& step = woj.value().steps[s];
      std::printf("    step %zu: %zu -> %zu rows, %zu groups\n", s + 1,
                  step.input_rows, step.results, step.groups);
    }

    // The binary-join plan for the triangle query (edge extension). The
    // BJ plan enumerates far more partial matches than WOJ on larger
    // queries, so the example only runs it for q1 — which is exactly the
    // contrast between query-edge-at-a-time and query-vertex-at-a-time
    // plans GAMMA's two extension primitives expose.
    if (q == 1) {
      gpusim::Device device2(params);
      core::GammaEngine engine2(&device2, &g, {});
      if (Status st = engine2.Prepare(); !st.ok()) return 1;
      auto bj = algos::MatchBinaryJoin(&engine2, query);
      if (bj.ok()) {
        std::printf("  binary join: %llu instances, %.3f ms simulated\n",
                    static_cast<unsigned long long>(bj.value().instances),
                    bj.value().sim_millis);
      } else {
        std::printf("  binary join: %s\n", bj.status().ToString().c_str());
      }
    }
  }
  return 0;
}
