#include "algos/fpm.h"

#include <utility>

#include "common/logging.h"
#include "core/compiled_engine.h"

namespace gpm::algos {

Result<FpmResult> MineFrequentPatterns(core::GammaEngine* engine,
                                       const FpmOptions& options) {
  GAMMA_CHECK(options.max_edges >= 1) << "need at least one iteration";
  core::PatternCompiler compiler(&engine->graph());
  auto plan = compiler.CompileFpm(options.max_edges, options.min_support);
  if (!plan.ok()) return plan.status();
  auto run = core::CompiledEngine(engine).Run(plan.value());
  if (!run.ok()) return run.status();

  FpmResult result;
  result.patterns = std::move(run.value().patterns);
  result.sim_millis = run.value().sim_millis;
  result.steps = std::move(run.value().steps);
  result.aggregations = std::move(run.value().aggregations);
  result.plan = std::move(plan).value();
  return result;
}

}  // namespace gpm::algos
