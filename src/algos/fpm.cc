#include "algos/fpm.h"

#include "common/logging.h"

namespace gpm::algos {

Result<FpmResult> MineFrequentPatterns(core::GammaEngine* engine,
                                       const FpmOptions& options) {
  GAMMA_CHECK(options.max_edges >= 1) << "need at least one iteration";
  FpmResult result;
  gpusim::Device* device = engine->device();
  const double start = device->now_cycles();

  auto table = engine->InitEdgeTable();
  if (!table.ok()) return table.status();
  core::EmbeddingTable* et = table.value().get();

  for (int i = 1; i <= options.max_edges; ++i) {
    // PT = PT ∪ Aggregation(ET, m_f)
    auto agg = engine->Aggregation(*et, &result.patterns);
    if (!agg.ok()) return agg.status();
    // Filtering(ET, PT, sup_min): invalidate infrequent patterns and drop
    // their instances.
    result.patterns.InvalidateBelow(options.min_support);
    engine->Filtering(et, agg.value().codes, result.patterns);
    result.patterns.EraseInvalid();
    result.aggregations.push_back(std::move(agg).value());

    if (i < options.max_edges) {
      core::EdgeExtensionSpec spec;
      spec.canonical_only = true;
      auto stats = engine->EdgeExtension(et, spec);
      if (!stats.ok()) return stats.status();
      result.steps.push_back(stats.value());
    }
  }

  result.sim_millis =
      device->params().CyclesToMillis(device->now_cycles() - start);
  return result;
}

}  // namespace gpm::algos
