#ifndef GAMMA_ALGOS_FPM_H_
#define GAMMA_ALGOS_FPM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/gamma.h"
#include "core/pattern_compiler.h"

namespace gpm::algos {

struct FpmOptions {
  /// Mine patterns of up to this many edges (the paper's length l).
  int max_edges = 3;
  /// Support threshold sup_min.
  uint64_t min_support = 2;
};

struct FpmResult {
  core::PatternTable patterns;  ///< all frequent patterns (1..l edges)
  double sim_millis = 0;
  std::vector<core::ExtensionStats> steps;
  std::vector<core::AggregationResult> aggregations;
  core::CompiledPlan plan;  ///< the compiled plan the run executed
};

/// Frequent pattern mining (Algorithm 2): the FPM preset of the pattern
/// compiler run on the compiled engine — starting from all length-1 edge
/// embeddings, alternate aggregation (pattern support), filtering (drop
/// instances of infrequent patterns), and edge extension.
Result<FpmResult> MineFrequentPatterns(core::GammaEngine* engine,
                                       const FpmOptions& options);

}  // namespace gpm::algos

#endif  // GAMMA_ALGOS_FPM_H_
