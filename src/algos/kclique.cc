#include "algos/kclique.h"

#include "common/logging.h"
#include "graph/reorder.h"

namespace gpm::algos {

Result<KCliqueResult> CountKCliques(core::GammaEngine* engine, int k,
                                    bool count_only_last) {
  GAMMA_CHECK(k >= 2) << "k must be at least 2";
  KCliqueResult result;
  gpusim::Device* device = engine->device();
  const double start = device->now_cycles();

  auto table = engine->InitVertexTable();
  if (!table.ok()) return table.status();
  core::EmbeddingTable* et = table.value().get();

  const bool saved_count_only =
      engine->options().extension.count_only;
  for (int depth = 1; depth < k; ++depth) {
    core::VertexExtensionSpec spec;
    // A clique candidate must be adjacent to every matched vertex.
    for (int j = 0; j < depth; ++j) spec.intersect_positions.push_back(j);
    spec.require_ascending = true;  // enumerate sorted tuples only
    spec.enforce_injective = true;
    const bool final_level = depth == k - 1;
    engine->mutable_options().extension.count_only =
        saved_count_only || (count_only_last && final_level);
    auto stats = engine->VertexExtension(et, spec);
    engine->mutable_options().extension.count_only = saved_count_only;
    if (!stats.ok()) return stats.status();
    result.steps.push_back(stats.value());
    if (final_level) result.cliques = stats.value().results;
  }
  if (!count_only_last) result.cliques = et->num_embeddings();

  result.sim_millis =
      device->params().CyclesToMillis(device->now_cycles() - start);
  return result;
}

Result<KCliqueResult> CountKCliquesOriented(
    gpusim::Device* device, const graph::Graph& g, int k,
    const core::GammaOptions& options) {
  // Relabeling happens host-side before the run; charge one pass over the
  // CSR for the peel + rebuild.
  graph::Graph oriented =
      graph::Reorder(g, graph::ReorderStrategy::kDegeneracy);
  device->ChargeHostWork(static_cast<double>(g.num_arcs()));
  core::GammaEngine engine(device, &oriented, options);
  Status st = engine.Prepare();
  if (!st.ok()) return st;
  return CountKCliques(&engine, k);
}

}  // namespace gpm::algos
