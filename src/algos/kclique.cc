#include "algos/kclique.h"

#include "common/logging.h"
#include "core/compiled_engine.h"
#include "graph/reorder.h"

namespace gpm::algos {

Result<KCliqueResult> CountKCliques(core::GammaEngine* engine, int k,
                                    bool count_only_last) {
  GAMMA_CHECK(k >= 2) << "k must be at least 2";
  core::PatternCompiler compiler(&engine->graph());
  auto plan = compiler.CompileKClique(k, count_only_last);
  if (!plan.ok()) return plan.status();
  auto run = core::CompiledEngine(engine).Run(plan.value());
  if (!run.ok()) return run.status();

  KCliqueResult result;
  result.cliques = run.value().embeddings;
  result.sim_millis = run.value().sim_millis;
  result.steps = std::move(run.value().steps);
  result.plan = std::move(plan).value();
  return result;
}

Result<KCliqueResult> CountKCliquesOriented(
    gpusim::Device* device, const graph::Graph& g, int k,
    const core::GammaOptions& options) {
  // Relabeling happens host-side before the run; charge one pass over the
  // CSR for the peel + rebuild.
  graph::Graph oriented =
      graph::Reorder(g, graph::ReorderStrategy::kDegeneracy);
  device->ChargeHostWork(static_cast<double>(g.num_arcs()));
  core::GammaEngine engine(device, &oriented, options);
  Status st = engine.Prepare();
  if (!st.ok()) return st;
  return CountKCliques(&engine, k);
}

}  // namespace gpm::algos
