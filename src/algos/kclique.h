#ifndef GAMMA_ALGOS_KCLIQUE_H_
#define GAMMA_ALGOS_KCLIQUE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/gamma.h"
#include "core/pattern_compiler.h"

namespace gpm::algos {

struct KCliqueResult {
  uint64_t cliques = 0;  ///< k-cliques, each counted once
  double sim_millis = 0;
  std::vector<core::ExtensionStats> steps;
  core::CompiledPlan plan;  ///< the compiled plan the run executed
};

/// k-clique counting/listing on GAMMA: a preset of the pattern compiler
/// (Clique(k) with symmetry folding) run on the compiled engine. The
/// clique's automorphism restrictions fold into ascending-id extensions
/// intersecting the adjacency of every matched vertex, so each clique
/// appears exactly once as its sorted vertex tuple. With
/// `count_only_last`, the final extension tallies cliques without
/// materializing the last column (counting workloads never read it).
Result<KCliqueResult> CountKCliques(core::GammaEngine* engine, int k,
                                    bool count_only_last);
inline Result<KCliqueResult> CountKCliques(core::GammaEngine* engine,
                                           int k) {
  return CountKCliques(engine, k, /*count_only_last=*/false);
}

/// Triangle counting = 3-clique counting.
inline Result<KCliqueResult> CountTriangles(core::GammaEngine* engine) {
  return CountKCliques(engine, 3);
}

/// k-clique counting with degeneracy orientation: relabels the graph in
/// k-core peeling order first, so ascending-id enumeration bounds every
/// forward neighborhood by the graph's degeneracy instead of its maximum
/// degree — the standard mitigation for hub blow-up on skewed graphs.
/// Builds its own engine over the reordered graph on `device`.
Result<KCliqueResult> CountKCliquesOriented(gpusim::Device* device,
                                            const graph::Graph& g, int k,
                                            const core::GammaOptions&
                                                options);

}  // namespace gpm::algos

#endif  // GAMMA_ALGOS_KCLIQUE_H_
