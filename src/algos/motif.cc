#include "algos/motif.h"

#include <utility>

#include "common/logging.h"
#include "core/compiled_engine.h"

namespace gpm::algos {

uint64_t CountConnectedOrderings(const graph::Pattern& p) {
  return graph::CountConnectedOrderings(p);
}

Result<MotifResult> CountMotifs(core::GammaEngine* engine, int k) {
  GAMMA_CHECK(k >= 2 && k <= 5) << "motif size out of supported range";
  core::PatternCompiler compiler(&engine->graph());
  auto plan = compiler.CompileMotifCensus(k);
  if (!plan.ok()) return plan.status();
  auto run = core::CompiledEngine(engine).Run(plan.value());
  if (!run.ok()) return run.status();

  MotifResult result;
  result.motifs = std::move(run.value().motifs);
  result.sim_millis = run.value().sim_millis;
  result.plan = std::move(plan).value();
  return result;
}

}  // namespace gpm::algos
