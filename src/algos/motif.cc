#include "algos/motif.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "graph/canonical.h"
#include "graph/isomorphism.h"

namespace gpm::algos {

uint64_t CountConnectedOrderings(const graph::Pattern& p) {
  const int n = p.num_vertices();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  uint64_t count = 0;
  do {
    if (p.ConnectedPrefix(perm)) ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return count;
}

Result<MotifResult> CountMotifs(core::GammaEngine* engine, int k) {
  GAMMA_CHECK(k >= 2 && k <= 5) << "motif size out of supported range";
  MotifResult result;
  gpusim::Device* device = engine->device();
  const double start = device->now_cycles();

  auto table = engine->InitVertexTable();
  if (!table.ok()) return table.status();
  core::EmbeddingTable* et = table.value().get();

  for (int depth = 1; depth < k; ++depth) {
    core::VertexExtensionSpec spec;  // empty positions = union semantics
    spec.enforce_injective = true;
    auto stats = engine->VertexExtension(et, spec);
    if (!stats.ok()) return stats.status();
  }

  // Aggregate by unlabeled induced shape. Motif counting is unlabeled and
  // induced by definition (PatternOfVertices already reports every edge
  // among the matched vertices).
  core::PatternTable pt;
  core::AggregationOptions agg_options = engine->options().aggregation;
  agg_options.use_labels = false;
  auto agg =
      core::Aggregate(*et, &engine->accessor(), &pt, agg_options);
  if (!agg.ok()) return agg.status();

  for (const core::PatternEntry& e : pt.entries()) {
    uint64_t orderings = CountConnectedOrderings(e.exemplar);
    GAMMA_CHECK(orderings > 0) << "disconnected motif shape";
    result.motifs.emplace_back(e.exemplar, e.support / orderings);
  }
  std::sort(result.motifs.begin(), result.motifs.end(),
            [](const auto& a, const auto& b) {
              return a.first.num_edges() < b.first.num_edges();
            });
  result.sim_millis =
      device->params().CyclesToMillis(device->now_cycles() - start);
  return result;
}

}  // namespace gpm::algos
