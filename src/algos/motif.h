#ifndef GAMMA_ALGOS_MOTIF_H_
#define GAMMA_ALGOS_MOTIF_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/gamma.h"
#include "core/pattern_compiler.h"
#include "graph/isomorphism.h"
#include "graph/pattern.h"

namespace gpm::algos {

struct MotifResult {
  /// Canonical code -> (exemplar pattern, count of connected induced
  /// subgraphs of that shape).
  std::vector<std::pair<graph::Pattern, uint64_t>> motifs;
  double sim_millis = 0;
  core::CompiledPlan plan;  ///< the compiled plan the run executed
};

/// Counts connected k-vertex motifs (unlabeled shapes): the motif-census
/// preset of the pattern compiler — union-neighborhood vertex extensions
/// plus shape aggregation on the compiled engine. Each connected vertex
/// set is enumerated once per connected-prefix ordering, so per shape the
/// embedding count is divided by the shape's number of connected-prefix
/// orderings.
Result<MotifResult> CountMotifs(core::GammaEngine* engine, int k);

/// Number of vertex orderings of `p` whose every prefix is connected —
/// the per-instance multiplicity of union-extension enumeration. Forwards
/// to graph::CountConnectedOrderings; kept for source compatibility.
uint64_t CountConnectedOrderings(const graph::Pattern& p);

}  // namespace gpm::algos

#endif  // GAMMA_ALGOS_MOTIF_H_
