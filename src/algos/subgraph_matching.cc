#include "algos/subgraph_matching.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "core/symmetry.h"

namespace gpm::algos {
namespace {

using core::Unit;
using graph::VertexId;

bool LabelOk(const graph::Graph& g, const graph::Pattern& q, int qv,
             VertexId dv) {
  return q.label(qv) == graph::Pattern::kAnyLabel ||
         q.label(qv) == g.label(dv);
}

// Connected ordering of the query's edges: every edge after the first
// shares a vertex with an earlier one.
std::vector<std::pair<int, int>> ConnectedEdgeOrder(
    const graph::Pattern& q) {
  std::vector<std::pair<int, int>> remaining = q.EdgeList();
  std::vector<std::pair<int, int>> order;
  std::vector<bool> seen(q.num_vertices(), false);
  while (!remaining.empty()) {
    std::size_t pick = remaining.size();
    if (order.empty()) {
      pick = 0;
    } else {
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (seen[remaining[i].first] || seen[remaining[i].second]) {
          pick = i;
          break;
        }
      }
      GAMMA_CHECK(pick < remaining.size()) << "query graph not connected";
    }
    seen[remaining[pick].first] = true;
    seen[remaining[pick].second] = true;
    order.push_back(remaining[pick]);
    remaining.erase(remaining.begin() + pick);
  }
  return order;
}

// Backtracking assignment of query vertices to data vertices consistent
// with the edge sequence; both orientations of each data edge are tried.
bool TryAssign(const graph::Graph& g,
               const std::vector<graph::EdgeId>& edges,
               const graph::Pattern& query,
               const std::vector<std::pair<int, int>>& query_edges,
               std::size_t idx, std::vector<int>& qv_to_dv,
               std::vector<int>& dv_owner_qv,
               std::vector<VertexId>& bound_dvs) {
  if (idx == edges.size()) return true;
  auto [qa, qb] = query_edges[idx];
  const graph::Edge& e = g.edge_list()[edges[idx]];
  const VertexId ends[2] = {e.u, e.v};
  for (int o = 0; o < 2; ++o) {
    VertexId da = ends[o];
    VertexId db = ends[1 - o];
    if (!LabelOk(g, query, qa, da) || !LabelOk(g, query, qb, db)) continue;
    // Binding checks: each query vertex maps to one data vertex and
    // vice versa (injective).
    auto find_owner = [&](VertexId dv) {
      for (std::size_t i = 0; i < bound_dvs.size(); ++i) {
        if (bound_dvs[i] == dv) return dv_owner_qv[i];
      }
      return -1;
    };
    int owner_a = find_owner(da);
    int owner_b = find_owner(db);
    if (qv_to_dv[qa] >= 0 && qv_to_dv[qa] != static_cast<int>(da)) continue;
    if (qv_to_dv[qb] >= 0 && qv_to_dv[qb] != static_cast<int>(db)) continue;
    if (owner_a >= 0 && owner_a != qa) continue;
    if (owner_b >= 0 && owner_b != qb) continue;
    // Bind (remember what we added to undo on backtrack).
    int added = 0;
    int prev_a = qv_to_dv[qa];
    int prev_b = qv_to_dv[qb];
    if (qv_to_dv[qa] < 0) {
      qv_to_dv[qa] = static_cast<int>(da);
      dv_owner_qv.push_back(qa);
      bound_dvs.push_back(da);
      ++added;
    }
    if (qv_to_dv[qb] < 0) {
      qv_to_dv[qb] = static_cast<int>(db);
      dv_owner_qv.push_back(qb);
      bound_dvs.push_back(db);
      ++added;
    }
    if (TryAssign(g, edges, query, query_edges, idx + 1, qv_to_dv,
                  dv_owner_qv, bound_dvs)) {
      return true;
    }
    for (int i = 0; i < added; ++i) {
      dv_owner_qv.pop_back();
      bound_dvs.pop_back();
    }
    qv_to_dv[qa] = prev_a;
    qv_to_dv[qb] = prev_b;
  }
  return false;
}

}  // namespace

bool MatchesQueryPrefix(
    const graph::Graph& g, const std::vector<graph::EdgeId>& edges,
    const graph::Pattern& query,
    const std::vector<std::pair<int, int>>& query_edges) {
  GAMMA_CHECK(edges.size() <= query_edges.size()) << "prefix too long";
  std::vector<int> qv_to_dv(query.num_vertices(), -1);
  std::vector<int> dv_owner;
  std::vector<VertexId> bound;
  return TryAssign(g, edges, query, query_edges, 0, qv_to_dv, dv_owner,
                   bound);
}

Result<SmResult> MatchWojWithPlan(core::GammaEngine* engine,
                                  const graph::Pattern& query,
                                  const core::WojPlan& plan) {
  SmResult result;
  gpusim::Device* device = engine->device();
  const double start = device->now_cycles();
  const std::vector<int>& order = plan.order;
  GAMMA_CHECK(static_cast<int>(order.size()) == query.num_vertices())
      << "plan order size mismatch";

  auto table = engine->InitVertexTable(query.label(order[0]));
  if (!table.ok()) return table.status();
  core::EmbeddingTable* et = table.value().get();

  for (std::size_t d = 1; d < order.size(); ++d) {
    core::VertexExtensionSpec spec;
    spec.intersect_positions = plan.backward[d];
    GAMMA_CHECK(!spec.intersect_positions.empty())
        << "matching order prefix not connected";
    spec.candidate_label = query.label(order[d]);
    spec.enforce_injective = true;
    auto stats = engine->VertexExtension(et, spec);
    if (!stats.ok()) return stats.status();
    result.steps.push_back(stats.value());
  }

  result.embeddings = et->num_embeddings();
  result.instances =
      result.embeddings /
      static_cast<uint64_t>(query.CountAutomorphisms());
  result.sim_millis =
      device->params().CyclesToMillis(device->now_cycles() - start);
  return result;
}

Result<SmResult> MatchWoj(core::GammaEngine* engine,
                          const graph::Pattern& query) {
  core::WojPlan plan = core::BuildWojPlan(engine->graph(), query,
                                          core::PlanStrategy::kStructural);
  return MatchWojWithPlan(engine, query, plan);
}

Result<SmResult> MatchWojSymmetric(core::GammaEngine* engine,
                                   const graph::Pattern& query) {
  SmResult result;
  gpusim::Device* device = engine->device();
  const double start = device->now_cycles();
  core::WojPlan plan = core::BuildWojPlan(engine->graph(), query,
                                          core::PlanStrategy::kStructural);
  const std::vector<int>& order = plan.order;
  const std::vector<core::SymmetryRestriction> restrictions =
      core::BreakSymmetry(query, order);

  auto table = engine->InitVertexTable(query.label(order[0]));
  if (!table.ok()) return table.status();
  core::EmbeddingTable* et = table.value().get();

  for (std::size_t d = 1; d < order.size(); ++d) {
    core::VertexExtensionSpec spec;
    spec.intersect_positions = plan.backward[d];
    spec.candidate_label = query.label(order[d]);
    spec.enforce_injective = true;
    // Apply every restriction whose later position is the one being
    // matched now (the earlier side is already in the embedding).
    std::vector<core::SymmetryRestriction> applicable;
    for (const auto& r : restrictions) {
      if (r.larger_pos == static_cast<int>(d) &&
          r.smaller_pos < static_cast<int>(d)) {
        applicable.push_back(r);
      }
      if (r.smaller_pos == static_cast<int>(d) &&
          r.larger_pos < static_cast<int>(d)) {
        applicable.push_back(r);
      }
    }
    if (!applicable.empty()) {
      spec.post_filter = [applicable, d](std::span<const core::Unit> emb,
                                         core::Unit cand) {
        for (const auto& r : applicable) {
          if (r.larger_pos == static_cast<int>(d)) {
            if (!(emb[r.smaller_pos] < cand)) return false;
          } else {
            if (!(cand < emb[r.larger_pos])) return false;
          }
        }
        return true;
      };
    }
    auto stats = engine->VertexExtension(et, spec);
    if (!stats.ok()) return stats.status();
    result.steps.push_back(stats.value());
  }

  result.embeddings = et->num_embeddings();
  result.instances = result.embeddings;  // one row per instance
  result.sim_millis =
      device->params().CyclesToMillis(device->now_cycles() - start);
  return result;
}

Result<SmResult> MatchBinaryJoin(core::GammaEngine* engine,
                                 const graph::Pattern& query) {
  SmResult result;
  gpusim::Device* device = engine->device();
  const graph::Graph& g = engine->graph();
  const double start = device->now_cycles();
  const std::vector<std::pair<int, int>> query_edges =
      ConnectedEdgeOrder(query);

  auto table = engine->InitEdgeTable();
  if (!table.ok()) return table.status();
  core::EmbeddingTable* et = table.value().get();

  // Filter the length-1 table down to edges matching the first query edge.
  engine->Filtering(et, [&](std::span<const Unit> emb) {
    std::vector<graph::EdgeId> edges(emb.begin(), emb.end());
    return MatchesQueryPrefix(g, edges, query, query_edges);
  });

  for (std::size_t k = 1; k < query_edges.size(); ++k) {
    core::EdgeExtensionSpec spec;
    spec.canonical_only = false;  // order is dictated by the query plan
    spec.post_filter = [&](std::span<const Unit> emb, Unit cand) {
      std::vector<graph::EdgeId> edges(emb.begin(), emb.end());
      edges.push_back(cand);
      return MatchesQueryPrefix(g, edges, query, query_edges);
    };
    auto stats = engine->EdgeExtension(et, spec);
    if (!stats.ok()) return stats.status();
    result.steps.push_back(stats.value());
  }

  result.embeddings = et->num_embeddings();
  // Distinct instances = distinct edge sets among the matched sequences.
  std::unordered_set<uint64_t> distinct;
  for (const auto& emb : et->Materialize()) {
    std::vector<Unit> sorted(emb.begin(), emb.end());
    std::sort(sorted.begin(), sorted.end());
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (Unit u : sorted) h = Mix64(h ^ u);
    distinct.insert(h);
  }
  result.instances = distinct.size();
  result.sim_millis =
      device->params().CyclesToMillis(device->now_cycles() - start);
  return result;
}

}  // namespace gpm::algos
