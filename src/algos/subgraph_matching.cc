#include "algos/subgraph_matching.h"

#include <utility>

#include "common/logging.h"
#include "core/compiled_engine.h"

namespace gpm::algos {
namespace {

SmResult ProjectSm(core::CompiledRunResult&& run, core::CompiledPlan&& plan) {
  SmResult result;
  result.embeddings = run.embeddings;
  result.instances = run.instances;
  result.sim_millis = run.sim_millis;
  result.steps = std::move(run.steps);
  result.plan = std::move(plan);
  return result;
}

}  // namespace

bool MatchesQueryPrefix(
    const graph::Graph& g, const std::vector<graph::EdgeId>& edges,
    const graph::Pattern& query,
    const std::vector<std::pair<int, int>>& query_edges) {
  return graph::MatchesQueryPrefix(g, edges, query, query_edges);
}

Result<SmResult> MatchWojWithPlan(core::GammaEngine* engine,
                                  const graph::Pattern& query,
                                  const core::WojPlan& plan) {
  GAMMA_CHECK(static_cast<int>(plan.order.size()) == query.num_vertices())
      << "plan order size mismatch";
  core::PatternCompiler compiler(&engine->graph());
  auto compiled = compiler.CompileMatchWithPlan(query, plan, core::CompileOptions{});
  if (!compiled.ok()) return compiled.status();
  auto run = core::CompiledEngine(engine).Run(compiled.value());
  if (!run.ok()) return run.status();
  return ProjectSm(std::move(run).value(), std::move(compiled).value());
}

Result<SmResult> MatchWoj(core::GammaEngine* engine,
                          const graph::Pattern& query) {
  core::PatternCompiler compiler(&engine->graph());
  auto compiled = compiler.CompileMatch(query, core::CompileOptions{});
  if (!compiled.ok()) return compiled.status();
  auto run = core::CompiledEngine(engine).Run(compiled.value());
  if (!run.ok()) return run.status();
  return ProjectSm(std::move(run).value(), std::move(compiled).value());
}

Result<SmResult> MatchWojSymmetric(core::GammaEngine* engine,
                                   const graph::Pattern& query) {
  core::PatternCompiler compiler(&engine->graph());
  core::CompileOptions options;
  // fold_ascending stays off: the legacy symmetric matcher always applied
  // restrictions as a post-filter, and inherit-mode runs reproduce it
  // bit-for-bit.
  options.break_symmetry = true;
  auto compiled = compiler.CompileMatch(query, options);
  if (!compiled.ok()) return compiled.status();
  auto run = core::CompiledEngine(engine).Run(compiled.value());
  if (!run.ok()) return run.status();
  return ProjectSm(std::move(run).value(), std::move(compiled).value());
}

Result<SmResult> MatchBinaryJoin(core::GammaEngine* engine,
                                 const graph::Pattern& query) {
  core::PatternCompiler compiler(&engine->graph());
  auto compiled = compiler.CompileEdgeJoin(query);
  if (!compiled.ok()) return compiled.status();
  auto run = core::CompiledEngine(engine).Run(compiled.value());
  if (!run.ok()) return run.status();
  return ProjectSm(std::move(run).value(), std::move(compiled).value());
}

}  // namespace gpm::algos
