#ifndef GAMMA_ALGOS_SUBGRAPH_MATCHING_H_
#define GAMMA_ALGOS_SUBGRAPH_MATCHING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/gamma.h"
#include "core/pattern_compiler.h"
#include "core/plan.h"
#include "graph/isomorphism.h"
#include "graph/pattern.h"

namespace gpm::algos {

/// Outcome of a subgraph-matching run.
struct SmResult {
  uint64_t embeddings = 0;  ///< ordered matches (query-vertex assignments)
  uint64_t instances = 0;   ///< embeddings / |Aut(query)|
  double sim_millis = 0;    ///< simulated time consumed by the run
  std::vector<core::ExtensionStats> steps;
  core::CompiledPlan plan;  ///< the compiled plan the run executed
};

/// Worst-case-optimal-join subgraph matching (Algorithm 1): one query
/// vertex per iteration via vertex extension; extensions intersect the
/// adjacency lists of all matched backward neighbors and are filtered by
/// label immediately (the pruning-inside-extension the paper describes).
/// A pattern-compiler preset (structural order, no symmetry breaking) run
/// on the compiled engine.
Result<SmResult> MatchWoj(core::GammaEngine* engine,
                          const graph::Pattern& query);

/// WOJ matching with an explicit plan (see core/plan.h): lets callers pick
/// the cardinality-based greedy order.
Result<SmResult> MatchWojWithPlan(core::GammaEngine* engine,
                                  const graph::Pattern& query,
                                  const core::WojPlan& plan);

/// WOJ matching with automorphism symmetry breaking (core/symmetry.h):
/// ordering restrictions make each instance appear exactly once, so the
/// embedding table holds `instances` rows instead of |Aut| times as many —
/// the pattern-aware trick CPU frameworks like Peregrine use, here derived
/// automatically by the pattern compiler.
Result<SmResult> MatchWojSymmetric(core::GammaEngine* engine,
                                   const graph::Pattern& query);

/// Binary-join subgraph matching (query-edge-at-a-time) via edge
/// extension: each iteration matches the next query edge; candidates must
/// extend to an isomorphism of the query's edge prefix.
Result<SmResult> MatchBinaryJoin(core::GammaEngine* engine,
                                 const graph::Pattern& query);

/// True when the edge-id sequence `edges` (in order) can be mapped to the
/// first `edges.size()` edges of `query_edges` (pairs over query vertices,
/// with `query` supplying labels) by a consistent injective vertex
/// assignment. Forwards to graph::MatchesQueryPrefix; kept for source
/// compatibility.
bool MatchesQueryPrefix(const graph::Graph& g,
                        const std::vector<graph::EdgeId>& edges,
                        const graph::Pattern& query,
                        const std::vector<std::pair<int, int>>& query_edges);

}  // namespace gpm::algos

#endif  // GAMMA_ALGOS_SUBGRAPH_MATCHING_H_
