#include "baselines/cpu_ref.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "core/extension.h"
#include "graph/canonical.h"
#include "graph/isomorphism.h"

namespace gpm::baselines {
namespace {

using graph::EdgeId;
using graph::Label;
using graph::Pattern;
using graph::VertexId;

// Op-counted backtracking matcher (embedding count). Ops: one per
// candidate probed (adjacency scan element or binary-search step).
struct CountingMatcher {
  const graph::Graph& g;
  const Pattern& p;
  std::vector<int> order;
  std::vector<VertexId> assigned;
  uint64_t count = 0;
  uint64_t ops = 0;

  CountingMatcher(const graph::Graph& graph, const Pattern& pattern)
      : g(graph), p(pattern), order(pattern.DefaultMatchingOrder()) {
    assigned.assign(p.num_vertices(), 0);
  }

  bool LabelOk(int qv, VertexId dv) const {
    return p.label(qv) == Pattern::kAnyLabel || p.label(qv) == g.label(dv);
  }

  void Run() {
    const int first = order[0];
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ++ops;
      if (!LabelOk(first, v)) continue;
      assigned[first] = v;
      Extend(1);
    }
  }

  void Extend(int depth) {
    if (depth == p.num_vertices()) {
      ++count;
      return;
    }
    const int pv = order[depth];
    int anchor = -1;
    uint32_t anchor_deg = 0;
    std::vector<int> backs;
    for (int d = 0; d < depth; ++d) {
      int q = order[d];
      if (!p.HasEdge(pv, q)) continue;
      backs.push_back(q);
      uint32_t deg = g.degree(assigned[q]);
      if (anchor < 0 || deg < anchor_deg) {
        anchor = q;
        anchor_deg = deg;
      }
    }
    GAMMA_CHECK(anchor >= 0) << "disconnected matching order";
    for (VertexId cand : g.neighbors(assigned[anchor])) {
      ++ops;
      if (!LabelOk(pv, cand)) continue;
      bool ok = true;
      for (int d = 0; d < depth && ok; ++d) {
        if (assigned[order[d]] == cand) ok = false;
      }
      for (int q : backs) {
        if (!ok) break;
        if (q == anchor) continue;
        // A binary-search adjacency probe touches ~log2(d) cache lines.
        ops += 8;
        if (!g.HasEdge(assigned[q], cand)) ok = false;
      }
      if (!ok) continue;
      assigned[pv] = cand;
      Extend(depth + 1);
    }
  }
};

}  // namespace

CpuRunResult CpuKClique(const graph::Graph& g, int k,
                        const CpuModel& model) {
  CpuRunResult result;
  GAMMA_CHECK(k >= 2) << "k must be at least 2";

  // Ordered DFS: candidates are neighbors with larger ids, intersected as
  // the clique grows, so each clique is visited exactly once.
  std::vector<VertexId> cand, next;
  struct Frame {
    std::vector<VertexId> cand;
    std::size_t i = 0;
  };
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    auto it = std::upper_bound(nbrs.begin(), nbrs.end(), v);
    cand.assign(it, nbrs.end());
    result.ops += nbrs.size();
    if (k == 2) {
      result.count += cand.size();
      continue;
    }
    // Iterative DFS from depth 2.
    std::vector<Frame> stack;
    stack.push_back({cand, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.i >= f.cand.size()) {
        stack.pop_back();
        continue;
      }
      VertexId w = f.cand[f.i++];
      int depth = static_cast<int>(stack.size()) + 1;  // vertices so far
      if (depth + 1 == k) {
        // Count completions: candidates after w adjacent to w.
        auto wn = g.neighbors(w);
        next.clear();
        std::set_intersection(f.cand.begin() + f.i, f.cand.end(),
                              wn.begin(), wn.end(),
                              std::back_inserter(next));
        result.ops += (f.cand.size() - f.i) + wn.size();
        result.count += next.size();
      } else {
        auto wn = g.neighbors(w);
        next.clear();
        std::set_intersection(f.cand.begin() + f.i, f.cand.end(),
                              wn.begin(), wn.end(),
                              std::back_inserter(next));
        result.ops += (f.cand.size() - f.i) + wn.size();
        if (!next.empty()) stack.push_back({next, 0});
      }
    }
  }
  result.sim_millis = model.OpsToMillis(result.ops);
  return result;
}

CpuRunResult CpuSubgraphMatch(const graph::Graph& g,
                              const graph::Pattern& query,
                              const CpuModel& model,
                              bool symmetry_breaking) {
  CountingMatcher m(g, query);
  m.Run();
  CpuRunResult result;
  result.count = m.count;
  result.ops = m.ops;
  if (symmetry_breaking) {
    // Pattern-aware systems explore one representative per automorphism
    // orbit and multiply; the work shrinks by |Aut| while the reported
    // count stays the same.
    result.ops /= static_cast<uint64_t>(query.CountAutomorphisms());
  }
  result.sim_millis = model.OpsToMillis(result.ops);
  return result;
}

CpuFpmResult CpuFpmEmbeddingCentric(const graph::Graph& g, int max_edges,
                                    uint64_t min_support,
                                    const CpuModel& model) {
  CpuFpmResult result;
  GAMMA_CHECK(!g.edge_list().empty()) << "edge index required";
  graph::CanonicalCache cache;

  std::vector<std::vector<EdgeId>> level;
  level.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.edge_list().size(); ++e) level.push_back({e});

  for (int i = 1; i <= max_edges; ++i) {
    // Aggregation.
    std::unordered_map<uint64_t, uint64_t> counts;
    std::unordered_map<uint64_t, Pattern> exemplars;
    std::vector<uint64_t> codes(level.size());
    for (std::size_t r = 0; r < level.size(); ++r) {
      Pattern p = graph::PatternOfEdges(g, level[r], /*use_labels=*/true);
      uint64_t code = cache.Get(p);
      codes[r] = code;
      ++counts[code];
      exemplars.emplace(code, p);
      result.ops += static_cast<uint64_t>(i) * i;
    }
    for (auto& [code, c] : counts) {
      result.patterns.Accumulate(code, exemplars.at(code), c);
    }
    result.patterns.InvalidateBelow(min_support);
    auto invalid = result.patterns.InvalidCodes();
    result.patterns.EraseInvalid();

    // Filtering.
    std::vector<std::vector<EdgeId>> kept;
    kept.reserve(level.size());
    for (std::size_t r = 0; r < level.size(); ++r) {
      ++result.ops;
      if (!invalid.count(codes[r])) kept.push_back(std::move(level[r]));
    }
    level = std::move(kept);

    if (i == max_edges) break;

    // Extension with canonicality dedup.
    std::vector<std::vector<EdgeId>> next;
    std::vector<VertexId> verts;
    std::vector<EdgeId> cands;
    for (const auto& emb : level) {
      verts.clear();
      for (EdgeId e : emb) {
        const graph::Edge& ed = g.edge_list()[e];
        if (std::find(verts.begin(), verts.end(), ed.u) == verts.end())
          verts.push_back(ed.u);
        if (std::find(verts.begin(), verts.end(), ed.v) == verts.end())
          verts.push_back(ed.v);
      }
      cands.clear();
      for (VertexId v : verts) {
        auto eids = g.neighbor_edge_ids(v);
        cands.insert(cands.end(), eids.begin(), eids.end());
        result.ops += eids.size();
      }
      std::sort(cands.begin(), cands.end());
      cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
      for (EdgeId cand : cands) {
        if (std::find(emb.begin(), emb.end(), cand) != emb.end()) continue;
        result.ops += static_cast<uint64_t>(i) * i;
        std::span<const core::Unit> span(
            reinterpret_cast<const core::Unit*>(emb.data()), emb.size());
        if (!core::IsCanonicalEdgeExtension(g, span, cand)) continue;
        std::vector<EdgeId> extended = emb;
        extended.push_back(cand);
        next.push_back(std::move(extended));
      }
    }
    level = std::move(next);
  }
  result.sim_millis = model.OpsToMillis(result.ops);
  return result;
}

CpuFpmResult CpuFpmPatternCentric(const graph::Graph& g, int max_edges,
                                  uint64_t min_support,
                                  const CpuModel& model) {
  CpuFpmResult result;
  graph::CanonicalCache cache;
  const uint32_t num_labels = g.num_labels();

  // Level 1: single-edge patterns by label pair (one scan of the edges).
  std::unordered_map<uint64_t, std::pair<Pattern, uint64_t>> current;
  for (const graph::Edge& e : g.edge_list()) {
    ++result.ops;
    Pattern p(2);
    p.AddEdge(0, 1);
    Label a = g.label(e.u), b = g.label(e.v);
    p.SetLabel(0, std::min(a, b));
    p.SetLabel(1, std::max(a, b));
    uint64_t code = cache.Get(p);
    auto [it, inserted] = current.emplace(code, std::make_pair(p, 0));
    ++it->second.second;
  }
  for (auto it = current.begin(); it != current.end();) {
    if (it->second.second < min_support) {
      it = current.erase(it);
    } else {
      result.patterns.Accumulate(it->first, it->second.first,
                                 it->second.second);
      ++it;
    }
  }

  for (int i = 2; i <= max_edges; ++i) {
    // Candidate generation: extend each frequent pattern by one edge —
    // either to a fresh vertex with every label, or closing a non-edge.
    std::unordered_map<uint64_t, Pattern> candidates;
    for (const auto& [code, entry] : current) {
      const Pattern& p = entry.first;
      const int n = p.num_vertices();
      if (n < Pattern::kMaxVertices) {
        for (int a = 0; a < n; ++a) {
          for (uint32_t l = 0; l < num_labels; ++l) {
            Pattern q(n + 1);
            for (int x = 0; x < n; ++x) {
              q.SetLabel(x, p.label(x));
              for (int y = x + 1; y < n; ++y) {
                if (p.HasEdge(x, y)) q.AddEdge(x, y);
              }
            }
            q.SetLabel(n, l);
            q.AddEdge(a, n);
            candidates.emplace(cache.Get(q), q);
          }
        }
      }
      for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
          if (p.HasEdge(a, b)) continue;
          Pattern q = p;
          q.AddEdge(a, b);
          candidates.emplace(cache.Get(q), q);
        }
      }
    }
    // Support counting by matching (no embeddings materialized).
    std::unordered_map<uint64_t, std::pair<Pattern, uint64_t>> next;
    for (const auto& [code, q] : candidates) {
      CountingMatcher m(g, q);
      m.Run();
      result.ops += m.ops;
      uint64_t support =
          m.count / static_cast<uint64_t>(q.CountAutomorphisms());
      if (support >= min_support) {
        next.emplace(code, std::make_pair(q, support));
        result.patterns.Accumulate(code, q, support);
      }
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  result.sim_millis = model.OpsToMillis(result.ops);
  return result;
}

}  // namespace gpm::baselines
