#ifndef GAMMA_BASELINES_CPU_REF_H_
#define GAMMA_BASELINES_CPU_REF_H_

#include <algorithm>
#include <cstdint>

#include "core/pattern_table.h"
#include "graph/csr.h"
#include "graph/pattern.h"

namespace gpm::baselines {

/// Cost model of a CPU execution: operations are counted by the reference
/// algorithms and converted to simulated milliseconds. Single-threaded
/// systems use threads = 1; multi-threaded frameworks divide by
/// threads x efficiency. The 1 GHz simulated clock matches gpusim's.
struct CpuModel {
  int threads = 1;
  double cycles_per_op = 6.0;
  double efficiency = 0.85;
  /// Memory touched per op; with `bandwidth_bytes_per_cycle` it gives the
  /// DRAM floor multi-threaded scans cannot go below — threads share one
  /// memory system, so op throughput stops scaling once bandwidth-bound.
  double bytes_per_op = 8.0;
  double bandwidth_bytes_per_cycle = 24.0;  // ~24 GB/s effective

  double OpsToMillis(uint64_t ops) const {
    double denom =
        threads <= 1 ? 1.0 : static_cast<double>(threads) * efficiency;
    double compute = static_cast<double>(ops) * cycles_per_op / denom;
    double memory = static_cast<double>(ops) * bytes_per_op /
                    bandwidth_bytes_per_cycle;
    return std::max(compute, memory) * 1e-6;
  }
};

struct CpuRunResult {
  uint64_t count = 0;  ///< result cardinality (cliques, embeddings, ...)
  uint64_t ops = 0;    ///< counted work units
  double sim_millis = 0;
};

struct CpuFpmResult {
  core::PatternTable patterns;
  uint64_t ops = 0;
  double sim_millis = 0;
};

/// k-clique counting by ordered DFS over sorted adjacency intersections
/// (each clique visited once, ascending vertex ids). Ops = elements
/// scanned during intersections.
CpuRunResult CpuKClique(const graph::Graph& g, int k, const CpuModel& model);

/// Subgraph-matching embedding count by backtracking (ops = candidate
/// probes). `symmetry_breaking` restricts to one representative per
/// automorphism orbit and scales the count back up, modeling
/// pattern-aware systems like Peregrine.
CpuRunResult CpuSubgraphMatch(const graph::Graph& g,
                              const graph::Pattern& query,
                              const CpuModel& model,
                              bool symmetry_breaking);

/// Embedding-centric FPM (Pangolin/GraphMiner style): BFS levels of edge
/// embeddings with canonicality dedup, aggregation by canonical code,
/// support filtering.
CpuFpmResult CpuFpmEmbeddingCentric(const graph::Graph& g, int max_edges,
                                    uint64_t min_support,
                                    const CpuModel& model);

/// Pattern-centric FPM (Peregrine style): candidate patterns are extended
/// shapes of frequent patterns; each candidate's support is counted by
/// matching, with no embedding materialization.
CpuFpmResult CpuFpmPatternCentric(const graph::Graph& g, int max_edges,
                                  uint64_t min_support,
                                  const CpuModel& model);

}  // namespace gpm::baselines

#endif  // GAMMA_BASELINES_CPU_REF_H_
