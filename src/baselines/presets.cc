#include "baselines/presets.h"

namespace gpm::baselines {

core::GammaOptions GammaDefaultOptions() {
  core::GammaOptions options;
  options.access.placement = core::GraphPlacement::kHybridAdaptive;
  options.extension.write_strategy = core::WriteStrategy::kDynamicAlloc;
  options.extension.pre_merge = true;
  options.filter.compress = true;
  options.aggregation.sort.method = core::SortMethod::kGammaMultiMerge;
  options.device_resident_tables = false;
  return options;
}

core::GammaOptions PangolinGpuOptions() {
  core::GammaOptions options;
  options.access.placement = core::GraphPlacement::kDeviceResident;
  options.extension.write_strategy = core::WriteStrategy::kNaiveTwoPass;
  options.extension.pre_merge = false;
  options.filter.compress = false;
  options.aggregation.sort.method = core::SortMethod::kGammaMultiMerge;
  options.aggregation.sort.in_core_only = true;
  options.device_resident_tables = true;
  return options;
}

core::GammaOptions GsiOptions() {
  core::GammaOptions options;
  options.access.placement = core::GraphPlacement::kDeviceResident;
  options.extension.write_strategy = core::WriteStrategy::kPreAlloc;
  options.extension.pre_merge = false;
  options.filter.compress = false;
  options.aggregation.sort.in_core_only = true;
  options.device_resident_tables = true;
  return options;
}

}  // namespace gpm::baselines
