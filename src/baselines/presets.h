#ifndef GAMMA_BASELINES_PRESETS_H_
#define GAMMA_BASELINES_PRESETS_H_

#include "core/gamma.h"

namespace gpm::baselines {

/// GAMMA as evaluated in the paper: out-of-core, self-adaptive hybrid
/// access, dynamic allocation, pre-merge grouping, table compression,
/// multi-merge aggregation sort.
core::GammaOptions GammaDefaultOptions();

/// Pangolin's GPU design point: everything in-core (graph + embedding
/// tables in device memory), count-then-write extension, no grouping, no
/// table compression, in-core-only aggregation sort.
core::GammaOptions PangolinGpuOptions();

/// GSI's design point: in-core with worst-case preallocation
/// ("prealloc-combine") instead of joining twice.
core::GammaOptions GsiOptions();

}  // namespace gpm::baselines

#endif  // GAMMA_BASELINES_PRESETS_H_
