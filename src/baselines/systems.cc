#include "baselines/systems.h"

#include "algos/fpm.h"
#include "algos/kclique.h"
#include "algos/subgraph_matching.h"
#include "baselines/presets.h"

namespace gpm::baselines {
namespace {

GpuRunResult Snapshot(gpusim::Device* device, core::GammaEngine* engine,
                      uint64_t count, double sim_millis,
                      const core::CompiledPlan* plan = nullptr) {
  GpuRunResult r;
  r.count = count;
  r.sim_millis = sim_millis;
  r.peak_device_bytes = device->PeakDeviceBytes();
  r.peak_host_bytes = device->host_tracker().peak_bytes();
  if (engine != nullptr && engine->audit() != nullptr) {
    r.adaptivity = engine->audit()->Summary();
  }
  if (engine != nullptr && engine->plan_profiler() != nullptr) {
    r.planprof = engine->plan_profiler()->Summary();
  }
  if (plan != nullptr) r.plan = plan->Summary();
  return r;
}

// In-core systems size their write buffers from whatever device memory the
// graph left free (they have no host spill to fall back on).
void FitPoolToFreeMemory(core::GammaEngine* engine,
                         gpusim::Device* device) {
  std::size_t free_bytes = device->memory().available_bytes();
  std::size_t pool = std::max<std::size_t>(64 << 10, free_bytes / 2);
  engine->mutable_options().extension.pool_bytes =
      std::min(engine->options().extension.pool_bytes, pool);
}

}  // namespace

CpuModel PangolinStModel() { return {.threads = 1, .cycles_per_op = 8.0}; }

CpuModel PeregrineModel() {
  return {.threads = 32, .cycles_per_op = 8.0, .efficiency = 0.8};
}

CpuModel GraphMinerModel() {
  return {.threads = 32, .cycles_per_op = 4.0, .efficiency = 0.85};
}

Result<GpuRunResult> PangolinGpuKClique(gpusim::Device* device,
                                        const graph::Graph& g, int k) {
  core::GammaEngine engine(device, &g, PangolinGpuOptions());
  Status st = engine.Prepare();
  if (!st.ok()) return st;
  FitPoolToFreeMemory(&engine, device);
  auto run = algos::CountKCliques(&engine, k);
  if (!run.ok()) return run.status();
  return Snapshot(device, &engine, run.value().cliques,
                  run.value().sim_millis, &run.value().plan);
}

Result<GpuRunResult> PangolinGpuFpm(gpusim::Device* device,
                                    const graph::Graph& g, int max_edges,
                                    uint64_t min_support) {
  core::GammaEngine engine(device, &g, PangolinGpuOptions());
  Status st = engine.Prepare();
  if (!st.ok()) return st;
  FitPoolToFreeMemory(&engine, device);
  auto run = algos::MineFrequentPatterns(
      &engine, {.max_edges = max_edges, .min_support = min_support});
  if (!run.ok()) return run.status();
  return Snapshot(device, &engine, run.value().patterns.size(),
                  run.value().sim_millis, &run.value().plan);
}

Result<GpuRunResult> GsiMatch(gpusim::Device* device, const graph::Graph& g,
                              const graph::Pattern& query) {
  core::GammaEngine engine(device, &g, GsiOptions());
  Status st = engine.Prepare();
  if (!st.ok()) return st;
  FitPoolToFreeMemory(&engine, device);
  auto run = algos::MatchWoj(&engine, query);
  if (!run.ok()) return run.status();
  return Snapshot(device, &engine, run.value().embeddings,
                  run.value().sim_millis, &run.value().plan);
}

Result<GpuRunResult> GammaKClique(gpusim::Device* device,
                                  const graph::Graph& g, int k,
                                  const core::GammaOptions& options) {
  core::GammaEngine engine(device, &g, options);
  Status st = engine.Prepare();
  if (!st.ok()) return st;
  auto run = algos::CountKCliques(&engine, k);
  if (!run.ok()) return run.status();
  return Snapshot(device, &engine, run.value().cliques,
                  run.value().sim_millis, &run.value().plan);
}

Result<GpuRunResult> GammaMatch(gpusim::Device* device,
                                const graph::Graph& g,
                                const graph::Pattern& query,
                                const core::GammaOptions& options) {
  core::GammaEngine engine(device, &g, options);
  Status st = engine.Prepare();
  if (!st.ok()) return st;
  auto run = algos::MatchWoj(&engine, query);
  if (!run.ok()) return run.status();
  return Snapshot(device, &engine, run.value().embeddings,
                  run.value().sim_millis, &run.value().plan);
}

Result<GpuRunResult> GammaFpm(gpusim::Device* device, const graph::Graph& g,
                              int max_edges, uint64_t min_support,
                              const core::GammaOptions& options) {
  core::GammaEngine engine(device, &g, options);
  Status st = engine.Prepare();
  if (!st.ok()) return st;
  auto run = algos::MineFrequentPatterns(
      &engine, {.max_edges = max_edges, .min_support = min_support});
  if (!run.ok()) return run.status();
  return Snapshot(device, &engine, run.value().patterns.size(),
                  run.value().sim_millis, &run.value().plan);
}

CpuRunResult PeregrineKClique(const graph::Graph& g, int k) {
  return CpuKClique(g, k, PeregrineModel());
}

CpuRunResult PeregrineMatch(const graph::Graph& g,
                            const graph::Pattern& query) {
  return CpuSubgraphMatch(g, query, PeregrineModel(),
                          /*symmetry_breaking=*/true);
}

CpuFpmResult PeregrineFpm(const graph::Graph& g, int max_edges,
                          uint64_t min_support) {
  return CpuFpmPatternCentric(g, max_edges, min_support, PeregrineModel());
}

CpuRunResult PangolinStKClique(const graph::Graph& g, int k) {
  return CpuKClique(g, k, PangolinStModel());
}

CpuFpmResult PangolinStFpm(const graph::Graph& g, int max_edges,
                           uint64_t min_support) {
  return CpuFpmEmbeddingCentric(g, max_edges, min_support,
                                PangolinStModel());
}

CpuFpmResult GraphMinerFpm(const graph::Graph& g, int max_edges,
                           uint64_t min_support) {
  return CpuFpmEmbeddingCentric(g, max_edges, min_support,
                                GraphMinerModel());
}

}  // namespace gpm::baselines
