#ifndef GAMMA_BASELINES_SYSTEMS_H_
#define GAMMA_BASELINES_SYSTEMS_H_

#include <cstdint>
#include <string>

#include "baselines/cpu_ref.h"
#include "common/status.h"
#include "core/gamma.h"
#include "core/pattern_compiler.h"
#include "graph/pattern.h"
#include "gpusim/device.h"

namespace gpm::baselines {

/// Outcome of one GPU-system run (GAMMA / Pangolin-GPU / GSI). A
/// kDeviceOutOfMemory status is the simulated counterpart of the crashes
/// the paper reports for the in-core systems on large graphs.
struct GpuRunResult {
  uint64_t count = 0;
  double sim_millis = 0;
  std::size_t peak_device_bytes = 0;
  std::size_t peak_host_bytes = 0;
  /// Whole-run adaptivity-audit totals (enabled=false when the run's
  /// GammaOptions did not request an audit).
  core::AdaptivitySummary adaptivity;
  /// Compiled-plan summary of the run (enabled=false for systems that do
  /// not run through the pattern compiler).
  core::PlanSummary plan;
  /// Plan-profiler digest — per-level estimate-vs-actual rows, worst
  /// Q-error, load imbalance (enabled=false when the run's GammaOptions
  /// did not attach a profiler).
  core::PlanProfSummary planprof;
};

/// CPU system models as configured for the paper's comparisons.
CpuModel PangolinStModel();    ///< single-thread Pangolin
CpuModel PeregrineModel();     ///< 32-thread pattern-aware CPU framework
CpuModel GraphMinerModel();    ///< 32-thread specialized CPU library

// -- Pangolin-GPU (in-core GPM framework) -----------------------------------

Result<GpuRunResult> PangolinGpuKClique(gpusim::Device* device,
                                        const graph::Graph& g, int k);
Result<GpuRunResult> PangolinGpuFpm(gpusim::Device* device,
                                    const graph::Graph& g, int max_edges,
                                    uint64_t min_support);

// -- GSI (in-core GPU subgraph matching) -------------------------------------

Result<GpuRunResult> GsiMatch(gpusim::Device* device, const graph::Graph& g,
                              const graph::Pattern& query);

// -- GAMMA (for symmetry with the baselines) ---------------------------------

Result<GpuRunResult> GammaKClique(gpusim::Device* device,
                                  const graph::Graph& g, int k,
                                  const core::GammaOptions& options);
Result<GpuRunResult> GammaMatch(gpusim::Device* device,
                                const graph::Graph& g,
                                const graph::Pattern& query,
                                const core::GammaOptions& options);
Result<GpuRunResult> GammaFpm(gpusim::Device* device, const graph::Graph& g,
                              int max_edges, uint64_t min_support,
                              const core::GammaOptions& options);

// -- CPU systems --------------------------------------------------------------

CpuRunResult PeregrineKClique(const graph::Graph& g, int k);
CpuRunResult PeregrineMatch(const graph::Graph& g,
                            const graph::Pattern& query);
CpuFpmResult PeregrineFpm(const graph::Graph& g, int max_edges,
                          uint64_t min_support);

CpuRunResult PangolinStKClique(const graph::Graph& g, int k);
CpuFpmResult PangolinStFpm(const graph::Graph& g, int max_edges,
                           uint64_t min_support);

CpuFpmResult GraphMinerFpm(const graph::Graph& g, int max_edges,
                           uint64_t min_support);

}  // namespace gpm::baselines

#endif  // GAMMA_BASELINES_SYSTEMS_H_
