#ifndef GAMMA_COMMON_JSON_H_
#define GAMMA_COMMON_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <type_traits>
#include <vector>

namespace gpm {

/// Minimal streaming JSON writer (no external dependency).
///
/// Emits indented, standards-valid JSON to an ostream. The caller drives
/// the document structure with BeginObject/BeginArray/Key/Value; commas,
/// newlines, string escaping, and non-finite doubles (written as 0) are
/// handled here. Used by the observability exports (DeviceStats /
/// RunProfile), which must stay machine-readable.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent_width = 2)
      : os_(os), indent_width_(indent_width) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& BeginObject() {
    Open('{');
    return *this;
  }
  JsonWriter& EndObject() {
    Close('}');
    return *this;
  }
  JsonWriter& BeginArray() {
    Open('[');
    return *this;
  }
  JsonWriter& EndArray() {
    Close(']');
    return *this;
  }

  JsonWriter& Key(std::string_view key) {
    Separate();
    WriteString(key);
    os_ << ": ";
    pending_value_ = true;
    return *this;
  }

  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& Value(T v) {
    Separate();
    os_ << +v;
    return *this;
  }

  JsonWriter& Value(double v) {
    Separate();
    if (!std::isfinite(v)) v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
  }

  JsonWriter& Value(bool v) {
    Separate();
    os_ << (v ? "true" : "false");
    return *this;
  }

  JsonWriter& Value(std::string_view v) {
    Separate();
    WriteString(v);
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }

 private:
  struct Level {
    bool first = true;
  };

  void Open(char c) {
    Separate();
    os_ << c;
    levels_.push_back({});
  }

  void Close(char c) {
    bool empty = levels_.back().first;
    levels_.pop_back();
    if (!empty) {
      os_ << '\n';
      Indent(levels_.size());
    }
    os_ << c;
  }

  // Positions the stream for the next element: nothing after a Key, a
  // comma + newline + indent between siblings.
  void Separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (levels_.empty()) return;
    if (!levels_.back().first) os_ << ',';
    levels_.back().first = false;
    os_ << '\n';
    Indent(levels_.size());
  }

  void Indent(std::size_t depth) {
    for (std::size_t i = 0; i < depth * static_cast<std::size_t>(indent_width_);
         ++i) {
      os_ << ' ';
    }
  }

  void WriteString(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          os_ << "\\\"";
          break;
        case '\\':
          os_ << "\\\\";
          break;
        case '\n':
          os_ << "\\n";
          break;
        case '\r':
          os_ << "\\r";
          break;
        case '\t':
          os_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  int indent_width_;
  std::vector<Level> levels_;
  bool pending_value_ = false;
};

}  // namespace gpm

#endif  // GAMMA_COMMON_JSON_H_
