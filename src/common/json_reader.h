// Minimal recursive-descent JSON reader (no external dependency).
// Shared by the gamma.plan.v1 load path (core/plan_io) and the test
// suites validating observability exports.
// Handles the subset JsonWriter emits — objects, arrays, strings with
// escapes, finite numbers, booleans, null — and rejects anything else, so
// a malformed export fails the test instead of parsing loosely.
#ifndef GAMMA_COMMON_JSON_READER_H_
#define GAMMA_COMMON_JSON_READER_H_

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gpm::minijson {

struct Value {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// Object member by key, or nullptr.
  const Value* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(Value* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();  // trailing garbage is an error
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(Value* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = Value::kString;
        return ParseString(&out->str);
      case 't':
        out->type = Value::kBool;
        out->boolean = true;
        return ConsumeWord("true");
      case 'f':
        out->type = Value::kBool;
        out->boolean = false;
        return ConsumeWord("false");
      case 'n':
        out->type = Value::kNull;
        return ConsumeWord("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseObject(Value* out) {
    out->type = Value::kObject;
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      Value v;
      if (!ParseValue(&v)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(Value* out) {
    out->type = Value::kArray;
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      SkipWs();
      Value v;
      if (!ParseValue(&v)) return false;
      out->array.push_back(std::move(v));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            // Control characters only in our output; keep the low byte.
            std::string hex(text_.substr(pos_, 4));
            out->push_back(static_cast<char>(
                std::strtoul(hex.c_str(), nullptr, 16) & 0xff));
            pos_ += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(Value* out) {
    out->type = Value::kNumber;
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Parses `text`; returns false on any syntax error.
inline bool Parse(std::string_view text, Value* out) {
  return Parser(text).Parse(out);
}

}  // namespace gpm::minijson

#endif  // GAMMA_COMMON_JSON_READER_H_
