#include "common/logging.h"

namespace gpm {
namespace internal_logging {
namespace {

const char* SeverityTag(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "I";
    case Severity::kWarning:
      return "W";
    case Severity::kError:
      return "E";
    case Severity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogMessage::~LogMessage() {
  std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityTag(severity_), file_,
               line_, stream_.str().c_str());
  if (severity_ == Severity::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace gpm
