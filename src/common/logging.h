#ifndef GAMMA_COMMON_LOGGING_H_
#define GAMMA_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gpm {
namespace internal_logging {

enum class Severity { kInfo, kWarning, kError, kFatal };

/// Stream-style log sink; writes the accumulated message on destruction and
/// aborts the process for kFatal. Used only through the macros below.
class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line)
      : severity_(severity), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  Severity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace gpm

#define GAMMA_LOG(severity)                                        \
  ::gpm::internal_logging::LogMessage(                           \
      ::gpm::internal_logging::Severity::k##severity, __FILE__,  \
      __LINE__)

/// CHECK aborts with a message when `cond` is false. Used for programmer
/// errors (invariant violations), not for recoverable conditions.
#define GAMMA_CHECK(cond)                                 \
  if (!(cond))                                            \
  GAMMA_LOG(Fatal) << "Check failed: " #cond " "

#define GAMMA_CHECK_OK(status_expr)                              \
  do {                                                           \
    const ::gpm::Status _st = (status_expr);                   \
    if (!_st.ok())                                               \
      GAMMA_LOG(Fatal) << "Status not OK: " << _st.ToString();   \
  } while (0)

#endif  // GAMMA_COMMON_LOGGING_H_
