#ifndef GAMMA_COMMON_RANDOM_H_
#define GAMMA_COMMON_RANDOM_H_

#include <cstdint>

namespace gpm {

/// SplitMix64 — used to seed Xoshiro and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Mixes a 64-bit value into a well-distributed hash (stateless).
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

/// xoshiro256** — fast, high-quality PRNG used by all generators so that
/// datasets and workloads are reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bull) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace gpm

#endif  // GAMMA_COMMON_RANDOM_H_
