#ifndef GAMMA_COMMON_SCAN_H_
#define GAMMA_COMMON_SCAN_H_

#include <cstddef>
#include <vector>

namespace gpm {

/// Exclusive prefix sum: out[i] = sum(in[0..i)). Returns the total.
/// Mirrors the GPU prefix-scan primitive GAMMA uses for compaction and
/// write positioning; the host version is the functional reference.
template <typename T>
T ExclusiveScan(const std::vector<T>& in, std::vector<T>* out) {
  out->resize(in.size());
  T running = T{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    (*out)[i] = running;
    running += in[i];
  }
  return running;
}

/// In-place exclusive prefix sum. Returns the total.
template <typename T>
T ExclusiveScanInPlace(std::vector<T>* v) {
  T running = T{};
  for (auto& x : *v) {
    T next = running + x;
    x = running;
    running = next;
  }
  return running;
}

/// Inclusive prefix sum: out[i] = sum(in[0..i]).
template <typename T>
void InclusiveScan(const std::vector<T>& in, std::vector<T>* out) {
  out->resize(in.size());
  T running = T{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    running += in[i];
    (*out)[i] = running;
  }
}

}  // namespace gpm

#endif  // GAMMA_COMMON_SCAN_H_
