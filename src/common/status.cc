#include "common/status.h"

namespace gpm {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kDeviceOutOfMemory:
      return "DEVICE_OUT_OF_MEMORY";
    case ErrorCode::kHostOutOfMemory:
      return "HOST_OUT_OF_MEMORY";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = ErrorCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace gpm
