#ifndef GAMMA_COMMON_STATUS_H_
#define GAMMA_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace gpm {

/// Error categories used throughout GAMMA.
///
/// GAMMA does not use exceptions; operations that can fail return a `Status`
/// or a `Result<T>`. The most important code for the reproduction is
/// `kDeviceOutOfMemory`: in-core baselines (Pangolin-GPU, GSI) surface it on
/// graphs whose working set exceeds simulated device memory, reproducing the
/// "crashes" the paper reports for those systems on large datasets.
enum class ErrorCode {
  kOk = 0,
  kDeviceOutOfMemory,
  kHostOutOfMemory,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name, e.g. "DEVICE_OUT_OF_MEMORY".
const char* ErrorCodeName(ErrorCode code);

/// A success-or-error value, modeled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status DeviceOutOfMemory(std::string m) {
    return Status(ErrorCode::kDeviceOutOfMemory, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(ErrorCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(ErrorCode::kNotFound, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(ErrorCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(ErrorCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

/// A value-or-error, modeled after absl::StatusOr.
///
/// `ok()` must be checked before calling `value()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  /// `return buf;` and `return Status::DeviceOutOfMemory(...)`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace gpm

#endif  // GAMMA_COMMON_STATUS_H_
