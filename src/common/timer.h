#ifndef GAMMA_COMMON_TIMER_H_
#define GAMMA_COMMON_TIMER_H_

#include <chrono>

namespace gpm {

/// Wall-clock timer for host-side (real) measurements. Simulated GPU time is
/// tracked separately by gpusim::SimClock.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gpm

#endif  // GAMMA_COMMON_TIMER_H_
