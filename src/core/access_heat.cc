#include "core/access_heat.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace gpm::core {
namespace {

// Top-`n` page indices of `score`, highest first, zero-score excluded.
// The comparator is a total order (score desc, then page index asc), so
// the selection is deterministic even among equal-score pages — audit
// records and hybrid plans must reproduce bit-identically across
// platforms and std::partial_sort implementations.
std::vector<uint32_t> TopOf(const std::vector<double>& score,
                            std::size_t n) {
  std::vector<uint32_t> pages;
  pages.reserve(score.size());
  for (uint32_t p = 0; p < score.size(); ++p) {
    if (score[p] > 0) pages.push_back(p);
  }
  n = std::min(n, pages.size());
  std::partial_sort(pages.begin(), pages.begin() + n, pages.end(),
                    [&score](uint32_t a, uint32_t b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  pages.resize(n);
  return pages;
}

}  // namespace

AccessHeatTracker::AccessHeatTracker(std::size_t space_bytes,
                                     std::size_t page_bytes)
    : page_bytes_(page_bytes) {
  GAMMA_CHECK(page_bytes > 0) << "page size must be positive";
  std::size_t pages = (space_bytes + page_bytes - 1) / page_bytes;
  spatial_.assign(pages, 0);
  temporal_.assign(pages, 0);
  heat_.assign(pages, 0);
}

void AccessHeatTracker::BeginExtension() {
  // Roll the previous extension's SpatialLoc into the temporal history.
  if (extension_index_ > 0) {
    prev_spatial_ = spatial_;
    for (std::size_t p = 0; p < spatial_.size(); ++p) {
      temporal_[p] += spatial_[p];
    }
    history_total_ += current_total_;
  }
  std::fill(spatial_.begin(), spatial_.end(), 0.0);
  current_total_ = 0;
  ++extension_index_;
}

void AccessHeatTracker::AddPlannedAccess(std::size_t offset,
                                         std::size_t bytes, uint64_t times) {
  if (bytes == 0 || times == 0) return;
  std::size_t first = offset / page_bytes_;
  std::size_t last = (offset + bytes - 1) / page_bytes_;
  for (std::size_t p = first; p <= last && p < spatial_.size(); ++p) {
    std::size_t lo = std::max(offset, p * page_bytes_);
    std::size_t hi = std::min(offset + bytes, (p + 1) * page_bytes_);
    double contribution = static_cast<double>(hi - lo) * times;
    spatial_[p] += contribution;
    current_total_ += contribution;
  }
}

const std::vector<double>& AccessHeatTracker::FinalizeExtension() {
  GAMMA_CHECK(extension_index_ > 0) << "FinalizeExtension before Begin";
  double denom = current_total_ + history_total_;
  double w_spatial = denom > 0 ? current_total_ / denom : 1.0;
  last_w_spatial_ = w_spatial;
  double past = std::max(1, extension_index_ - 1);
  for (std::size_t p = 0; p < heat_.size(); ++p) {
    heat_[p] =
        w_spatial * spatial_[p] + (1 - w_spatial) * temporal_[p] / past;
  }
  return heat_;
}

std::vector<uint32_t> AccessHeatTracker::TopPages(std::size_t n) const {
  return TopOf(heat_, n);
}

double AccessHeatTracker::HotPageOverlap(std::size_t k) const {
  if (extension_index_ < 2 || k == 0) return 0.0;
  std::vector<uint32_t> now = TopOf(spatial_, k);
  std::vector<uint32_t> before = TopOf(prev_spatial_, k);
  if (now.empty() || before.empty()) return 0.0;
  std::sort(now.begin(), now.end());
  std::sort(before.begin(), before.end());
  std::vector<uint32_t> common;
  std::set_intersection(now.begin(), now.end(), before.begin(), before.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) /
         static_cast<double>(std::min(now.size(), before.size()));
}

}  // namespace gpm::core
