#ifndef GAMMA_CORE_ACCESS_HEAT_H_
#define GAMMA_CORE_ACCESS_HEAT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpm::core {

/// Quantitative model of page access (§IV, Definitions 4.1-4.3).
///
/// The tracked address space (the CSR column array) is divided into pages.
/// Before each extension, GAMMA knows which adjacency lists will be read and
/// how often; `AddPlannedAccess` accumulates that into the current
/// extension's SpatialLoc, and `FinalizeExtension` folds it with the
/// historical TempLoc into AccHeat:
///
///   AccHeat_i(p) = w_s * SpatialLoc_i(p) + (1 - w_s) * TempLoc_i(p) / (i-1)
///
/// with w_s = A_i / (A_i + sum_{j<i} A_j). TempLoc is averaged over the
/// number of past extensions so that both terms are on a per-extension
/// scale (the paper's Def. 4.3 weighs the two by the ratio of current to
/// historical traffic; this is the same idea in normalized form).
class AccessHeatTracker {
 public:
  AccessHeatTracker(std::size_t space_bytes, std::size_t page_bytes);

  std::size_t num_pages() const { return spatial_.size(); }
  std::size_t page_bytes() const { return page_bytes_; }

  /// Starts accumulating the next extension's planned accesses.
  void BeginExtension();

  /// Declares that `bytes` starting at `offset` will be read `times` times
  /// in the pending extension (one adjacency list, typically).
  void AddPlannedAccess(std::size_t offset, std::size_t bytes,
                        uint64_t times);

  /// Computes AccHeat for the pending extension and rolls SpatialLoc into
  /// the temporal history. Returns per-page heat.
  const std::vector<double>& FinalizeExtension();

  /// Indices of the `n` hottest pages after the last FinalizeExtension,
  /// highest heat first. Pages with zero heat are never returned. Equal
  /// heat ties break by ascending page index, so the selected set (and
  /// every audit record derived from it) is identical across platforms,
  /// compilers, and repeated runs.
  std::vector<uint32_t> TopPages(std::size_t n) const;

  /// Fig. 5 metric: |top-k now ∩ top-k previous| / k. Returns 0 before the
  /// second extension.
  double HotPageOverlap(std::size_t k) const;

  const std::vector<double>& spatial() const { return spatial_; }
  const std::vector<double>& temporal() const { return temporal_; }
  const std::vector<double>& heat() const { return heat_; }
  int extensions_seen() const { return extension_index_; }

  /// The w_s the last FinalizeExtension used (Def. 4.3 weight between the
  /// spatial and temporal terms); 1.0 before any finalize.
  double last_w_spatial() const { return last_w_spatial_; }

  /// A_i: total planned bytes*times of the pending/last extension.
  double current_total() const { return current_total_; }

 private:
  std::size_t page_bytes_;
  int extension_index_ = 0;  // i in the definitions; 1-based once begun
  double current_total_ = 0;     // A_i
  double history_total_ = 0;     // sum_{j<i} A_j
  double last_w_spatial_ = 1.0;  // w_s of the last FinalizeExtension
  std::vector<double> spatial_;  // SpatialLoc_i(p)
  std::vector<double> temporal_;  // TempLoc_i(p) = cumulative past spatial
  std::vector<double> heat_;          // AccHeat_i(p)
  std::vector<double> prev_spatial_;  // previous extension's SpatialLoc
};

}  // namespace gpm::core

#endif  // GAMMA_CORE_ACCESS_HEAT_H_
