#include "core/adaptive_access.h"

#include <algorithm>

#include "common/logging.h"
#include "core/adaptivity_audit.h"
#include "gpusim/sanitizer.h"

namespace gpm::core {

const char* GraphPlacementName(GraphPlacement placement) {
  switch (placement) {
    case GraphPlacement::kHybridAdaptive:
      return "hybrid-adaptive";
    case GraphPlacement::kUnifiedOnly:
      return "unified-only";
    case GraphPlacement::kZeroCopyOnly:
      return "zero-copy-only";
    case GraphPlacement::kDeviceResident:
      return "device-resident";
    case GraphPlacement::kExplicitTransfer:
      return "explicit-transfer";
  }
  return "?";
}

GraphAccessor::GraphAccessor(gpusim::Device* device,
                             const graph::Graph* graph,
                             const Options& options)
    : device_(device),
      graph_(graph),
      options_(options),
      col_(device),
      labels_(device),
      edges_packed_(device),
      arc_eids_(device),
      heat_(graph->col().size() * sizeof(graph::VertexId),
            device->params().um_page_bytes) {}

Status GraphAccessor::Prepare() {
  GAMMA_CHECK(!prepared_) << "Prepare called twice";
  switch (options_.placement) {
    case GraphPlacement::kDeviceResident: {
      // The whole CSR (row pointers + columns + labels) must fit on device.
      std::size_t bytes = graph_->StorageBytes();
      auto buf = gpusim::DeviceBuffer::Make(&device_->memory(), bytes);
      if (!buf.ok()) return buf.status();
      device_csr_ = std::move(buf).value();
      if (gpusim::Sanitizer* san = device_->sanitizer()) {
        san->LabelObject(device_csr_.id(), "device-csr");
        // The upload below materializes the whole CSR; mark it initialized
        // up front rather than modelling the copy as a write (which would
        // pin a default-stream access into the race history).
        san->MarkInitialized(device_csr_.id());
      }
      device_->CopyHostToDevice(bytes);
      break;
    }
    case GraphPlacement::kHybridAdaptive:
    case GraphPlacement::kUnifiedOnly:
    case GraphPlacement::kZeroCopyOnly:
    case GraphPlacement::kExplicitTransfer: {
      // Host-resident duplicates in the unified and zero-copy spaces (the
      // paper duplicates the CSR in both; functionally one copy suffices
      // here because zero-copy reads are stateless).
      col_.Assign(graph_->col());
      std::vector<graph::Label> labels = graph_->labels();
      if (labels.empty()) labels.assign(graph_->num_vertices(), 0);
      labels_.Assign(std::move(labels));
      if (!graph_->edge_list().empty()) {
        std::vector<uint64_t> packed;
        packed.reserve(graph_->edge_list().size());
        for (const graph::Edge& e : graph_->edge_list()) {
          packed.push_back((static_cast<uint64_t>(e.u) << 32) | e.v);
        }
        edges_packed_.Assign(std::move(packed));
      }
      if (!graph_->arc_edge_ids().empty()) {
        // The edge-id mirror of the column array gets its own unified
        // region: its pages fault and occupy page-buffer slots
        // independently of the column pages they mirror.
        arc_eids_.Assign(graph_->arc_edge_ids());
      }
      if (options_.placement == GraphPlacement::kHybridAdaptive) {
        // Account the second copy's host footprint (duplication, §IV).
        device_->host_tracker().Add(col_.ByteSize());
      }
      page_unified_.assign(heat_.num_pages(), 0);
      break;
    }
  }
  prepared_ = true;
  return Status::Ok();
}

void GraphAccessor::PlanExtension(
    const std::vector<std::pair<graph::VertexId, uint64_t>>& frontier) {
  if (options_.placement == GraphPlacement::kExplicitTransfer) {
    // Subway-style staging: gather the frontier's adjacency lists into a
    // compacted buffer on the host, then transfer it explicitly. Gathering
    // and reorganizing is host work proportional to the gathered bytes
    // (§II-B: "data extraction and reorganization ... are costly"); the
    // staged buffer must also fit in device memory.
    std::size_t gather_bytes = 0;
    for (auto [v, times] : frontier) {
      (void)times;  // explicit staging copies each list once
      gather_bytes += graph_->adjacency_bytes(v);
    }
    staged_bytes_ = gather_bytes;
    // ~1 cycle per gathered byte of host-side extraction + reorganization.
    device_->ChargeHostWork(static_cast<double>(gather_bytes));
    device_->CopyHostToDevice(gather_bytes);
    return;
  }
  if (audit_ != nullptr) {
    // One audit record per extension under every audited placement, so
    // pure runs line up record-for-record with a hybrid run. Planned
    // bytes are recomputed here because the pure placements skip the heat
    // tracker entirely (the hybrid branch overwrites this with the heat
    // tracker's exact A_i below).
    double planned = 0;
    for (auto [v, times] : frontier) {
      planned += static_cast<double>(graph_->adjacency_bytes(v)) *
                 static_cast<double>(times);
    }
    audit_->BeginExtension(frontier.size(), planned);
  }
  if (options_.placement != GraphPlacement::kHybridAdaptive) return;
  const double plan_start_cycles = device_->now_cycles();
  heat_.BeginExtension();
  for (auto [v, times] : frontier) {
    heat_.AddPlannedAccess(graph_->adjacency_offset_bytes(v),
                           graph_->adjacency_bytes(v), times);
  }
  heat_.FinalizeExtension();

  std::size_t n_u = static_cast<std::size_t>(
      options_.um_buffer_fraction *
      static_cast<double>(device_->unified().capacity_pages()));
  std::vector<uint32_t> hot = heat_.TopPages(n_u);
  std::fill(page_unified_.begin(), page_unified_.end(), 0);
  // The access list is known before the extension, so the hot pages are
  // prefetched in bulk (no per-page fault penalty) — this is the payoff
  // of planning: unified-only pays demand faults for the same pages.
  std::size_t migrate_bytes = 0;
  const std::size_t page_bytes = device_->params().um_page_bytes;
  for (uint32_t p : hot) {
    page_unified_[p] = 1;
    migrate_bytes +=
        device_->unified().PrefetchPage(col_.region(), p * page_bytes);
  }
  if (migrate_bytes > 0) device_->CopyHostToDevice(migrate_bytes);
  unified_page_count_ = hot.size();

  // Planning runs on the host between kernels: one pass over the frontier
  // plus the top-N selection. Charged at ~1 cycle per frontier entry and
  // per page, which is generous to the baselines (they skip this step).
  device_->ChargeHostWork(static_cast<double>(frontier.size()) +
                          static_cast<double>(heat_.num_pages()));

  // Gauge is maintained with or without an audit so metrics sampling can
  // plot N_u from any hybrid run; zero-cost when metrics are off.
  device_->adaptivity_gauges().unified_page_count = unified_page_count_;
  if (audit_ != nullptr) {
    audit_->RecordHybridPlan(heat_, unified_page_count_,
                             heat_.HotPageOverlap(n_u),
                             device_->now_cycles() - plan_start_cycles);
  }
}

bool GraphAccessor::PageIsUnified(std::size_t page) const {
  switch (options_.placement) {
    case GraphPlacement::kUnifiedOnly:
      return true;
    case GraphPlacement::kZeroCopyOnly:
      return false;
    case GraphPlacement::kHybridAdaptive:
      return page < page_unified_.size() && page_unified_[page] != 0;
    case GraphPlacement::kDeviceResident:
    case GraphPlacement::kExplicitTransfer:
      return false;  // Unreachable through ChargeSpan.
  }
  return false;
}

void GraphAccessor::ChargeSpan(gpusim::WarpCtx& warp, std::size_t offset,
                               std::size_t bytes,
                               gpusim::UnifiedMemory::RegionId region) {
  if (bytes == 0) return;
  if (options_.placement == GraphPlacement::kDeviceResident ||
      options_.placement == GraphPlacement::kExplicitTransfer) {
    // Explicit transfer staged the frontier to device memory up front, so
    // kernel reads hit device memory directly. device_csr_.id() is 0 for
    // explicit transfer (no persistent CSR buffer), which skips the
    // sanitizer attribution.
    warp.DeviceRead(device_csr_.id(), offset, bytes);
    return;
  }
  // Graph spans are replayed into the counterfactual shadow models here,
  // where the offsets are known (the zero-copy warp path cannot recover
  // them); the graph-span bracket stops the observer taps from replaying
  // the real charges a second time while still accumulating their actual
  // cycles. Both the shadow replay and the bracket mutate audit state, so
  // they ride WarpCtx::Defer: immediate on a serial context, recorded
  // in-line with the charges (and hence correctly ordered around them at
  // replay) on a recording one.
  if (audit_ != nullptr) {
    warp.Defer([audit = audit_, region, offset, bytes](gpusim::WarpCtx&) {
      audit->OnGraphSpan(region, offset, bytes);
      audit->BeginGraphSpan();
    });
  }
  const std::size_t page_bytes = device_->params().um_page_bytes;
  std::size_t first = offset / page_bytes;
  std::size_t last = (offset + bytes - 1) / page_bytes;
  for (std::size_t p = first; p <= last; ++p) {
    std::size_t lo = std::max(offset, p * page_bytes);
    std::size_t hi = std::min(offset + bytes, (p + 1) * page_bytes);
    if (PageIsUnified(p)) {
      warp.UnifiedRead(region, lo, hi - lo);
    } else {
      warp.ZeroCopyRead(hi - lo);
    }
  }
  if (audit_ != nullptr) {
    warp.Defer([audit = audit_](gpusim::WarpCtx&) { audit->EndGraphSpan(); });
  }
}

std::span<const graph::VertexId> GraphAccessor::ReadAdjacency(
    gpusim::WarpCtx& warp, graph::VertexId v) {
  GAMMA_CHECK(prepared_) << "GraphAccessor used before Prepare";
  ChargeSpan(warp, graph_->adjacency_offset_bytes(v),
             graph_->adjacency_bytes(v), col_.region());
  return graph_->neighbors(v);
}

std::pair<std::span<const graph::VertexId>, std::span<const graph::EdgeId>>
GraphAccessor::ReadAdjacencyWithEids(gpusim::WarpCtx& warp,
                                     graph::VertexId v) {
  GAMMA_CHECK(prepared_) << "GraphAccessor used before Prepare";
  GAMMA_CHECK(!graph_->arc_edge_ids().empty())
      << "edge index required for edge ids";
  // The edge-id array mirrors the column array page-for-page, but it is a
  // distinct allocation: both spans go through the same per-page policy,
  // and the mirror's pages fault and compete for the page buffer on their
  // own (charging the column region twice would land the edge-id traffic
  // on already-resident pages and model it as free).
  ChargeSpan(warp, graph_->adjacency_offset_bytes(v),
             graph_->adjacency_bytes(v), col_.region());
  ChargeSpan(warp, graph_->adjacency_offset_bytes(v),
             graph_->adjacency_bytes(v), arc_eids_.region());
  return {graph_->neighbors(v), graph_->neighbor_edge_ids(v)};
}

graph::Edge GraphAccessor::ReadEdgeEndpoints(gpusim::WarpCtx& warp,
                                             graph::EdgeId e) {
  GAMMA_CHECK(e < graph_->edge_list().size()) << "edge id out of range";
  if (options_.placement == GraphPlacement::kDeviceResident) {
    warp.DeviceRead(device_csr_.id(), e * sizeof(uint64_t),
                    sizeof(uint64_t));
  } else {
    warp.UnifiedRead(edges_packed_.region(), e * sizeof(uint64_t),
                     sizeof(uint64_t));
  }
  return graph_->edge_list()[e];
}

graph::Label GraphAccessor::ReadLabel(gpusim::WarpCtx& warp,
                                      graph::VertexId v) {
  if (options_.placement == GraphPlacement::kDeviceResident) {
    warp.DeviceRead(device_csr_.id(), v * sizeof(graph::Label),
                    sizeof(graph::Label));
  } else {
    // Labels are dense and heavily reused; they live in the unified space
    // and compete for the page buffer like everything else.
    warp.UnifiedRead(labels_.region(), v * sizeof(graph::Label),
                     sizeof(graph::Label));
  }
  return graph_->label(v);
}

void GraphAccessor::ChargeLabelsBatch(
    gpusim::WarpCtx& warp, std::span<const graph::VertexId> vertices) {
  const std::size_t width =
      static_cast<std::size_t>(device_->params().warp_size);
  for (std::size_t i = 0; i < vertices.size(); i += width) {
    const std::size_t lanes = std::min(width, vertices.size() - i);
    if (options_.placement == GraphPlacement::kDeviceResident) {
      warp.DeviceRead(lanes * sizeof(graph::Label));
    } else {
      // Gathered read: each lane fetches the label of its own vertex,
      // which may live on a different page, so the traffic is charged per
      // lane at each vertex's offset — not one label per batch.
      for (std::size_t j = 0; j < lanes; ++j) {
        warp.UnifiedRead(labels_.region(),
                         vertices[i + j] * sizeof(graph::Label),
                         sizeof(graph::Label));
      }
    }
  }
}

void GraphAccessor::ChargeEdgeEndpointsBatch(gpusim::WarpCtx& warp,
                                             graph::EdgeId first,
                                             std::size_t count) {
  const std::size_t width =
      static_cast<std::size_t>(device_->params().warp_size);
  for (std::size_t lane0 = 0; lane0 < count; lane0 += width) {
    const std::size_t lanes = std::min(width, count - lane0);
    if (options_.placement == GraphPlacement::kDeviceResident) {
      warp.DeviceRead(lanes * sizeof(uint64_t));
    } else {
      // Each warp-wide batch reads its own span of the packed edge array;
      // the offset advances with the batch so that spans past the first
      // page are charged where they actually land.
      warp.UnifiedRead(
          edges_packed_.region(),
          (static_cast<std::size_t>(first) + lane0) * sizeof(uint64_t),
          lanes * sizeof(uint64_t));
    }
  }
}

uint32_t GraphAccessor::ReadDegree(gpusim::WarpCtx& warp,
                                   graph::VertexId v) {
  if (options_.placement == GraphPlacement::kDeviceResident) {
    // Two adjacent row-pointer entries give the degree.
    warp.DeviceRead(device_csr_.id(), v * sizeof(uint64_t),
                    2 * sizeof(uint64_t));
  } else {
    warp.ZeroCopyRead(2 * sizeof(uint64_t));
  }
  return graph_->degree(v);
}

}  // namespace gpm::core
