#ifndef GAMMA_CORE_ADAPTIVE_ACCESS_H_
#define GAMMA_CORE_ADAPTIVE_ACCESS_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/access_heat.h"
#include "gpusim/device.h"
#include "gpusim/host_array.h"
#include "graph/csr.h"

namespace gpm::core {

class AdaptivityAudit;

/// How the data graph is reached from device code.
enum class GraphPlacement : uint8_t {
  /// GAMMA's self-adaptive hybrid: per page, unified or zero-copy, chosen
  /// by AccHeat before every extension (§IV). The CSR is duplicated in both
  /// spaces, as in the paper.
  kHybridAdaptive,
  /// Ablation baselines for Fig. 20.
  kUnifiedOnly,
  kZeroCopyOnly,
  /// In-core systems (Pangolin, GSI): the whole CSR must fit in device
  /// memory; Prepare() fails with kDeviceOutOfMemory otherwise.
  kDeviceResident,
  /// Subway-style explicit transfer (§II-B): before each extension the
  /// frontier's adjacency lists are gathered and reorganized on the host
  /// and shipped to the device in one batch; kernel reads then hit device
  /// memory. Pays host gather work + a full frontier transfer every
  /// extension — the overhead implicit access avoids.
  kExplicitTransfer,
};

const char* GraphPlacementName(GraphPlacement placement);

/// Charged access path to a CSR graph for simulated kernels.
///
/// Owns the host-side copies of the column/label arrays (registered as
/// unified-memory regions) and, for kDeviceResident, the device allocation.
/// Frontier planning (`PlanExtension`) implements the page-heat policy:
/// the N_u hottest pages are flagged for unified access, everything else
/// goes through zero-copy.
class GraphAccessor {
 public:
  struct Options {
    GraphPlacement placement = GraphPlacement::kHybridAdaptive;
    /// Fraction of the UM page buffer the graph may claim as "hot" pages
    /// (the rest serves the embedding table and label regions).
    double um_buffer_fraction = 0.75;
  };

  GraphAccessor(gpusim::Device* device, const graph::Graph* graph,
                const Options& options);

  GraphAccessor(const GraphAccessor&) = delete;
  GraphAccessor& operator=(const GraphAccessor&) = delete;

  /// Stages the graph: device allocation (+ explicit H2D copy) for
  /// kDeviceResident; host-pinning cost for the host-resident modes.
  /// Must be called once before kernels run.
  Status Prepare();

  /// Declares the next extension's frontier: (vertex, access count) pairs.
  /// Only meaningful for kHybridAdaptive (no-op otherwise, kept cheap so
  /// callers need not branch). Charges the host-side planning work.
  void PlanExtension(
      const std::vector<std::pair<graph::VertexId, uint64_t>>& frontier);

  /// Charged read of `v`'s adjacency list.
  std::span<const graph::VertexId> ReadAdjacency(gpusim::WarpCtx& warp,
                                                 graph::VertexId v);

  /// Charged read of `v`'s adjacency list together with the aligned
  /// undirected edge ids (2x the bytes; used by edge extension). Requires
  /// the graph's edge index.
  std::pair<std::span<const graph::VertexId>, std::span<const graph::EdgeId>>
  ReadAdjacencyWithEids(gpusim::WarpCtx& warp, graph::VertexId v);

  /// Charged read of the endpoints of undirected edge `e`. Requires the
  /// edge index.
  graph::Edge ReadEdgeEndpoints(gpusim::WarpCtx& warp, graph::EdgeId e);

  /// Charged read of `v`'s label.
  graph::Label ReadLabel(gpusim::WarpCtx& warp, graph::VertexId v);

  /// Charged warp-coalesced read of the labels of `vertices`: one label
  /// transaction per warp-width batch (32 threads fetch 32 labels in
  /// parallel). Returns nothing — callers read labels through the graph;
  /// this only models the traffic.
  void ChargeLabelsBatch(gpusim::WarpCtx& warp,
                         std::span<const graph::VertexId> vertices);

  /// Charged warp-coalesced read of `count` edge-endpoint records starting
  /// around `first` (edge ids of one embedding are read by parallel lanes).
  void ChargeEdgeEndpointsBatch(gpusim::WarpCtx& warp, graph::EdgeId first,
                                std::size_t count);

  /// Charged read of `v`'s degree (row-pointer pair). Plans precompute
  /// frontier offsets host-side, so this is only for per-candidate lookups.
  uint32_t ReadDegree(gpusim::WarpCtx& warp, graph::VertexId v);

  const graph::Graph& graph() const { return *graph_; }
  const Options& options() const { return options_; }
  const AccessHeatTracker& heat() const { return heat_; }
  AccessHeatTracker& heat() { return heat_; }

  /// Pages currently flagged for unified access (hybrid mode).
  std::size_t unified_page_count() const { return unified_page_count_; }

  /// Bytes staged by the last explicit-transfer plan (kExplicitTransfer).
  std::size_t staged_bytes() const { return staged_bytes_; }

  /// Attaches an adaptivity audit (owned by the engine). The accessor then
  /// opens one audit record per PlanExtension and routes graph spans
  /// through the audit's shadow cost models. Pass nullptr to detach.
  void set_audit(AdaptivityAudit* audit) { audit_ = audit; }
  AdaptivityAudit* audit() const { return audit_; }

 private:
  bool PageIsUnified(std::size_t page) const;
  void ChargeSpan(gpusim::WarpCtx& warp, std::size_t offset,
                  std::size_t bytes, gpusim::UnifiedMemory::RegionId region);

  gpusim::Device* device_;
  const graph::Graph* graph_;
  Options options_;
  bool prepared_ = false;

  // Host-resident duplicates of the CSR payload (unified regions).
  gpusim::HostArray<graph::VertexId> col_;
  gpusim::HostArray<graph::Label> labels_;
  gpusim::HostArray<uint64_t> edges_packed_;  // edge id -> (u << 32 | v)
  // Per-arc edge ids, mirroring col_ page-for-page but faulting and
  // occupying page-buffer slots as its own region.
  gpusim::HostArray<graph::EdgeId> arc_eids_;

  // Device-resident placement.
  gpusim::DeviceBuffer device_csr_;

  // Hybrid policy state.
  AccessHeatTracker heat_;
  std::vector<uint8_t> page_unified_;
  std::size_t unified_page_count_ = 0;

  // Explicit-transfer staging state.
  std::size_t staged_bytes_ = 0;

  // Optional decision/counterfactual audit (not owned).
  AdaptivityAudit* audit_ = nullptr;
};

}  // namespace gpm::core

#endif  // GAMMA_CORE_ADAPTIVE_ACCESS_H_
