#include "core/adaptivity_audit.h"

#include <algorithm>
#include <sstream>

#include "common/json.h"

namespace gpm::core {

namespace {

uint64_t SatSub(uint64_t a, uint64_t b) { return a >= b ? a - b : 0; }

}  // namespace

ShadowCounters ShadowCounters::Diff(const ShadowCounters& since) const {
  ShadowCounters d;
  d.cycles = cycles - since.cycles;
  d.um_page_faults = SatSub(um_page_faults, since.um_page_faults);
  d.um_page_hits = SatSub(um_page_hits, since.um_page_hits);
  d.um_migrated_bytes = SatSub(um_migrated_bytes, since.um_migrated_bytes);
  d.um_evictions = SatSub(um_evictions, since.um_evictions);
  d.zc_transactions = SatSub(zc_transactions, since.zc_transactions);
  d.zc_bytes = SatSub(zc_bytes, since.zc_bytes);
  return d;
}

void ShadowPageLru::Access(uint32_t region, std::size_t offset,
                           std::size_t bytes) {
  if (bytes == 0) return;
  // Identical page split, cost arithmetic, and accumulation order to
  // UnifiedMemory::Access: the per-call charge is summed locally and added
  // to the running total once, so cycle totals stay bit-comparable with a
  // real run that executed the same stream.
  double cycles = 0;
  const std::size_t page_bytes = params_.um_page_bytes;
  uint64_t first_page = offset / page_bytes;
  uint64_t last_page = (offset + bytes - 1) / page_bytes;
  for (uint64_t p = first_page; p <= last_page; ++p) {
    uint64_t key = PageKey(region, p);
    std::size_t lo = std::max<std::size_t>(offset, p * page_bytes);
    std::size_t hi =
        std::min<std::size_t>(offset + bytes, (p + 1) * page_bytes);
    std::size_t span = hi - lo;
    auto it = resident_.find(key);
    if (it != resident_.end()) {
      ++counters_.um_page_hits;
      cycles += params_.device_mem_latency_cycles +
                static_cast<double>(span) / params_.device_bytes_per_cycle;
      lru_.splice(lru_.begin(), lru_, it->second);
    } else {
      ++counters_.um_page_faults;
      counters_.um_migrated_bytes += page_bytes;
      cycles += params_.page_fault_cycles +
                static_cast<double>(page_bytes) / params_.pcie_bytes_per_cycle;
      Insert(key);
    }
  }
  counters_.cycles += cycles;
}

void ShadowPageLru::ZeroCopy(std::size_t bytes) {
  if (bytes == 0) return;
  // Mirrors WarpCtx::ZeroCopyRead.
  std::size_t ntx = (bytes + params_.zc_transaction_bytes - 1) /
                    params_.zc_transaction_bytes;
  counters_.zc_transactions += ntx;
  counters_.zc_bytes += ntx * params_.zc_transaction_bytes;
  counters_.cycles += params_.pcie_latency_cycles +
                      static_cast<double>(ntx - 1) * params_.zc_pipelined_cycles;
}

void ShadowPageLru::Insert(uint64_t key) {
  if (capacity_pages_ == 0) return;  // No buffer: behaves like re-faulting.
  while (lru_.size() >= capacity_pages_) {
    uint64_t victim = lru_.back();
    resident_.erase(victim);
    lru_.pop_back();
    ++counters_.um_evictions;
  }
  lru_.push_front(key);
  resident_.emplace(key, lru_.begin());
}

void ShadowPageLru::DropRegionTail(uint32_t region, std::size_t old_bytes,
                                   std::size_t new_bytes) {
  if (new_bytes >= old_bytes) return;
  const std::size_t page_bytes = params_.um_page_bytes;
  uint64_t first_stale = (new_bytes + page_bytes - 1) / page_bytes;
  uint64_t last = old_bytes / page_bytes;
  for (uint64_t p = first_stale; p <= last; ++p) {
    auto it = resident_.find(PageKey(region, p));
    if (it != resident_.end()) {
      lru_.erase(it->second);
      resident_.erase(it);
    }
  }
}

void ShadowPageLru::DropRegion(uint32_t region) {
  for (auto it = resident_.begin(); it != resident_.end();) {
    if ((it->first >> 48) == region) {
      lru_.erase(it->second);
      it = resident_.erase(it);
    } else {
      ++it;
    }
  }
}

AdaptivityAudit::AdaptivityAudit(gpusim::Device* device,
                                 GraphPlacement placement)
    : device_(device),
      placement_(placement),
      shadow_unified_(device->params(), device->unified().capacity_pages()),
      shadow_zerocopy_(device->params(), device->unified().capacity_pages()) {}

AdaptivityAudit::~AdaptivityAudit() {
  if (device_ != nullptr && device_->access_observer() == this) {
    device_->set_access_observer(nullptr);
  }
}

void AdaptivityAudit::BeginExtension(std::size_t frontier_vertices,
                                     double planned_bytes) {
  CloseOpenRecord();
  open_ = AdaptivityRecord{};
  open_.extension = ++num_extensions_;
  open_.frontier_vertices = frontier_vertices;
  open_.planned_bytes = planned_bytes;
  stats_at_begin_ = device_->stats().Snapshot();
  actual_cycles_at_begin_ = actual_access_cycles_;
  est_unified_at_begin_ = shadow_unified_.counters();
  est_zerocopy_at_begin_ = shadow_zerocopy_.counters();
  extension_open_ = true;
}

void AdaptivityAudit::RecordHybridPlan(const AccessHeatTracker& heat,
                                       std::size_t unified_pages,
                                       double top_page_overlap,
                                       double plan_cycles) {
  if (!extension_open_) return;
  open_.planned_bytes = heat.current_total();  // exact A_i, clamped to space
  open_.w_spatial = heat.last_w_spatial();
  open_.unified_pages = unified_pages;
  open_.top_page_overlap = top_page_overlap;
  open_.plan_cycles = plan_cycles;
  plan_cycles_total_ += plan_cycles;

  const std::vector<double>& h = heat.heat();
  double max = 0;
  double sum = 0;
  std::size_t nonzero = 0;
  for (double v : h) {
    if (v <= 0) continue;
    ++nonzero;
    sum += v;
    max = std::max(max, v);
  }
  open_.heat_nonzero_pages = nonzero;
  open_.heat_max = max;
  open_.heat_mean_nonzero = nonzero > 0 ? sum / static_cast<double>(nonzero) : 0;
  if (max > 0) {
    for (double v : h) {
      if (v <= 0) continue;
      // Bucket by power-of-two distance from the hottest page; everything
      // colder than max/2^(kBuckets-1) lands in the last bucket.
      std::size_t b = 0;
      double threshold = max / 2;
      while (b + 1 < kHeatHistogramBuckets && v <= threshold) {
        ++b;
        threshold /= 2;
      }
      ++open_.heat_histogram[b];
    }
  }

  if (device_->trace().enabled()) {
    device_->trace().RecordAdaptivity(device_->now_cycles(),
                                      static_cast<uint32_t>(open_.extension),
                                      unified_pages);
  }
}

void AdaptivityAudit::OnGraphSpan(uint32_t region, std::size_t offset,
                                  std::size_t bytes) {
  if (bytes == 0) return;
  // Same page split as GraphAccessor::ChargeSpan, so each shadow sees the
  // exact per-span sequence its pure run would have charged.
  const std::size_t page_bytes = device_->params().um_page_bytes;
  std::size_t first = offset / page_bytes;
  std::size_t last = (offset + bytes - 1) / page_bytes;
  for (std::size_t p = first; p <= last; ++p) {
    std::size_t lo = std::max(offset, p * page_bytes);
    std::size_t hi = std::min(offset + bytes, (p + 1) * page_bytes);
    shadow_unified_.Access(region, lo, hi - lo);
    shadow_zerocopy_.ZeroCopy(hi - lo);
  }
}

void AdaptivityAudit::OnUnifiedAccess(uint32_t region, std::size_t offset,
                                      std::size_t bytes, double cycles) {
  actual_access_cycles_ += cycles;
  if (in_graph_span_) return;  // already replayed via OnGraphSpan
  // Non-graph unified traffic (labels, packed edges, table columns) stays
  // unified under every host placement: replay into both shadows so they
  // contend for page-buffer capacity exactly as in the pure runs.
  shadow_unified_.Access(region, offset, bytes);
  shadow_zerocopy_.Access(region, offset, bytes);
}

void AdaptivityAudit::OnZeroCopy(std::size_t bytes, double cycles) {
  actual_access_cycles_ += cycles;
  if (in_graph_span_) return;
  // Non-graph zero-copy charges (degree probes, staging reads) are
  // placement-invariant: both counterfactual runs would pay them as-is.
  shadow_unified_.ZeroCopy(bytes);
  shadow_zerocopy_.ZeroCopy(bytes);
}

void AdaptivityAudit::OnRegionResized(uint32_t region, std::size_t old_bytes,
                                      std::size_t new_bytes) {
  shadow_unified_.DropRegionTail(region, old_bytes, new_bytes);
  shadow_zerocopy_.DropRegionTail(region, old_bytes, new_bytes);
}

void AdaptivityAudit::OnRegionInvalidated(uint32_t region) {
  shadow_unified_.DropRegion(region);
  shadow_zerocopy_.DropRegion(region);
}

void AdaptivityAudit::CloseOpenRecord() {
  if (!extension_open_) return;
  extension_open_ = false;
  open_.actual = device_->stats().Snapshot().Diff(stats_at_begin_);
  open_.actual_access_cycles = actual_access_cycles_ - actual_cycles_at_begin_;
  open_.est_unified = shadow_unified_.counters().Diff(est_unified_at_begin_);
  open_.est_zerocopy =
      shadow_zerocopy_.counters().Diff(est_zerocopy_at_begin_);
  open_.regret_cycles =
      open_.actual_access_cycles + open_.plan_cycles -
      std::min(open_.est_unified.cycles, open_.est_zerocopy.cycles);
  records_.push_back(open_);
  device_->adaptivity_gauges().regret_cycles = TotalRegretCycles();
}

double AdaptivityAudit::TotalRegretCycles() const {
  // Committed-mode regret: a real counterfactual run picks ONE pure mode
  // for the whole workload, so the baseline is the min of the run totals
  // (not the sum of per-record minima, which would grant the baseline an
  // oracle that re-picks the mode every extension).
  return actual_access_cycles_ + plan_cycles_total_ -
         std::min(shadow_unified_.counters().cycles,
                  shadow_zerocopy_.counters().cycles);
}

void AdaptivityAudit::Finalize() { CloseOpenRecord(); }

AdaptivitySummary AdaptivityAudit::Summary() {
  Finalize();
  AdaptivitySummary s;
  s.enabled = true;
  s.extensions = static_cast<uint64_t>(records_.size());
  std::size_t unified_pages_sum = 0;
  for (const AdaptivityRecord& r : records_) {
    unified_pages_sum += r.unified_pages;
  }
  s.mean_unified_pages =
      records_.empty() ? 0
                       : static_cast<double>(unified_pages_sum) /
                             static_cast<double>(records_.size());
  s.plan_cycles = plan_cycles_total_;
  s.actual_access_cycles = actual_access_cycles_;
  s.est_unified_cycles = shadow_unified_.counters().cycles;
  s.est_zerocopy_cycles = shadow_zerocopy_.counters().cycles;
  s.regret_cycles = TotalRegretCycles();
  return s;
}

namespace {

void WriteShadow(JsonWriter& w, const char* key, const ShadowCounters& c) {
  w.Key(key).BeginObject();
  w.Key("cycles").Value(c.cycles);
  w.Key("um_page_faults").Value(c.um_page_faults);
  w.Key("um_page_hits").Value(c.um_page_hits);
  w.Key("um_migrated_bytes").Value(c.um_migrated_bytes);
  w.Key("um_evictions").Value(c.um_evictions);
  w.Key("zc_transactions").Value(c.zc_transactions);
  w.Key("zc_bytes").Value(c.zc_bytes);
  w.EndObject();
}

}  // namespace

std::string AdaptivityAudit::ToJson() {
  AdaptivitySummary s = Summary();
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema").Value("gamma.adaptivity.v1");
  w.Key("placement").Value(GraphPlacementName(placement_));
  w.Key("page_bytes").Value(device_->params().um_page_bytes);
  w.Key("capacity_pages").Value(device_->unified().capacity_pages());
  w.Key("extensions").Value(s.extensions);

  w.Key("totals").BeginObject();
  w.Key("actual_access_cycles").Value(s.actual_access_cycles);
  w.Key("plan_cycles").Value(s.plan_cycles);
  w.Key("est_unified_cycles").Value(s.est_unified_cycles);
  w.Key("est_zerocopy_cycles").Value(s.est_zerocopy_cycles);
  w.Key("best_pure")
      .Value(s.est_unified_cycles <= s.est_zerocopy_cycles ? "unified"
                                                           : "zerocopy");
  w.Key("regret_cycles").Value(s.regret_cycles);
  w.Key("mean_unified_pages").Value(s.mean_unified_pages);
  w.EndObject();

  w.Key("records").BeginArray();
  for (const AdaptivityRecord& r : records_) {
    w.BeginObject();
    w.Key("extension").Value(r.extension);
    w.Key("frontier_vertices").Value(r.frontier_vertices);
    w.Key("planned_bytes").Value(r.planned_bytes);
    w.Key("w_spatial").Value(r.w_spatial);
    w.Key("unified_pages").Value(r.unified_pages);
    w.Key("top_page_overlap").Value(r.top_page_overlap);
    w.Key("heat").BeginObject();
    w.Key("nonzero_pages").Value(r.heat_nonzero_pages);
    w.Key("max").Value(r.heat_max);
    w.Key("mean_nonzero").Value(r.heat_mean_nonzero);
    w.Key("histogram").BeginArray();
    for (uint64_t b : r.heat_histogram) w.Value(b);
    w.EndArray();
    w.EndObject();
    w.Key("plan_cycles").Value(r.plan_cycles);
    w.Key("actual").BeginObject();
    w.Key("access_cycles").Value(r.actual_access_cycles);
    for (const gpusim::DeviceStats::Field& f :
         gpusim::DeviceStats::Fields()) {
      w.Key(f.name).Value(r.actual.*f.member);
    }
    w.EndObject();
    WriteShadow(w, "est_unified", r.est_unified);
    WriteShadow(w, "est_zerocopy", r.est_zerocopy);
    w.Key("regret_cycles").Value(r.regret_cycles);
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  os << '\n';
  return os.str();
}

}  // namespace gpm::core
