#ifndef GAMMA_CORE_ADAPTIVITY_AUDIT_H_
#define GAMMA_CORE_ADAPTIVITY_AUDIT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/access_heat.h"
#include "core/adaptive_access.h"
#include "gpusim/access_observer.h"
#include "gpusim/device.h"
#include "gpusim/sim_params.h"
#include "gpusim/stats.h"

namespace gpm::core {

/// Traffic a shadow cost model accumulated: the same fields the real
/// DeviceStats tracks for host-memory access, plus the warp-stall cycles
/// the modeled charges would have cost.
struct ShadowCounters {
  double cycles = 0;
  uint64_t um_page_faults = 0;
  uint64_t um_page_hits = 0;
  uint64_t um_migrated_bytes = 0;
  uint64_t um_evictions = 0;
  uint64_t zc_transactions = 0;
  uint64_t zc_bytes = 0;

  /// Per-field difference `*this - since` (counters saturate at zero).
  ShadowCounters Diff(const ShadowCounters& since) const;
};

/// Shadow replica of the unified-memory page buffer.
///
/// Replays an access stream through the exact LRU + cost arithmetic of
/// `gpusim::UnifiedMemory::Access` (and `WarpCtx::ZeroCopyRead` for the
/// zero-copy formula) without touching the real buffer, so a hybrid run
/// can cost the same stream as if a pure placement had executed it. The
/// per-access charge is summed locally and added to the running total
/// once, matching the real accumulation order bit-for-bit.
class ShadowPageLru {
 public:
  ShadowPageLru(const gpusim::SimParams& params, std::size_t capacity_pages)
      : params_(params), capacity_pages_(capacity_pages) {}

  /// Replays a unified access of `[offset, offset + bytes)` in `region`.
  void Access(uint32_t region, std::size_t offset, std::size_t bytes);

  /// Replays a zero-copy charge of `bytes` (128 B transaction model).
  void ZeroCopy(std::size_t bytes);

  /// Mirrors UnifiedMemory::ResizeRegion: drops buffered pages past the
  /// new size when the region shrank.
  void DropRegionTail(uint32_t region, std::size_t old_bytes,
                      std::size_t new_bytes);

  /// Mirrors UnifiedMemory::InvalidateRegion.
  void DropRegion(uint32_t region);

  const ShadowCounters& counters() const { return counters_; }
  std::size_t resident_pages() const { return lru_.size(); }

 private:
  static uint64_t PageKey(uint32_t region, uint64_t page) {
    return (static_cast<uint64_t>(region) << 48) | page;
  }
  void Insert(uint64_t key);

  gpusim::SimParams params_;
  std::size_t capacity_pages_;
  ShadowCounters counters_;
  // LRU over resident pages: front = most recent (same shape as the real
  // buffer so eviction order matches exactly).
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> resident_;
};

/// Number of buckets in the per-record heat histogram: bucket 0 counts
/// pages within 2x of the hottest page, bucket i pages in
/// (max/2^(i+1), max/2^i], and the last bucket everything colder.
inline constexpr std::size_t kHeatHistogramBuckets = 8;

/// One per-extension audit record: why the plan chose what it chose, what
/// the run actually paid, and what each pure placement would have paid for
/// the same access stream. The record's window runs from its plan until
/// the next extension's plan (or Finalize), so aggregation/filter traffic
/// between extensions lands in the preceding record.
struct AdaptivityRecord {
  int extension = 0;  ///< 1-based extension index
  std::size_t frontier_vertices = 0;
  double planned_bytes = 0;  ///< A_i: planned bytes x times for the window

  // Hybrid decision snapshot (zeroed under pure placements, which plan
  // nothing).
  double w_spatial = 0;           ///< Def. 4.3 weight w_s
  std::size_t unified_pages = 0;  ///< N_u pages flagged unified
  double top_page_overlap = 0;    ///< Fig. 5 top-N_u overlap vs previous
  std::size_t heat_nonzero_pages = 0;
  double heat_max = 0;
  double heat_mean_nonzero = 0;
  std::array<uint64_t, kHeatHistogramBuckets> heat_histogram{};
  double plan_cycles = 0;  ///< host planning + prefetch transfer cycles

  /// Actual traffic of the window (full DeviceStats delta) and the actual
  /// warp-stall cycles of the observed host-memory accesses.
  gpusim::DeviceStats actual;
  double actual_access_cycles = 0;

  /// Counterfactual costs of the same window's access stream.
  ShadowCounters est_unified;
  ShadowCounters est_zerocopy;

  /// (actual_access_cycles + plan_cycles) - min(est cycles): positive
  /// means the best pure mode would have beaten the hybrid this window.
  double regret_cycles = 0;
};

/// Whole-run aggregate of an audit, for one-line summaries and the bench
/// export. All cycle fields count observed host-memory access charges
/// (plus plan overhead where named), not end-to-end makespans.
struct AdaptivitySummary {
  bool enabled = false;
  uint64_t extensions = 0;
  double mean_unified_pages = 0;
  double plan_cycles = 0;
  double actual_access_cycles = 0;
  double est_unified_cycles = 0;
  double est_zerocopy_cycles = 0;
  /// (actual + plan) - min(est_unified, est_zerocopy) over run totals:
  /// the committed-mode regret (one pure mode for the whole run).
  double regret_cycles = 0;
};

/// Per-extension decision explainability + counterfactual shadow costing
/// for the self-adaptive hybrid (the paper's §IV / Fig. 20 claim).
///
/// Attached as the device's AccessObserver, the audit sees every real
/// unified/zero-copy charge and replays the identical access stream
/// through two shadow models: a ShadowPageLru costing the run as if
/// UnifiedOnly, and the 128 B-transaction arithmetic as if ZeroCopyOnly
/// (graph spans only — labels, packed edges, and embedding-table columns
/// stay unified under every host placement and are replayed into both
/// shadow buffers, where they contend for capacity exactly as they would
/// in the pure run). GraphAccessor routes graph spans through OnGraphSpan
/// and brackets its real charges with SpanGuard so they are not replayed
/// twice.
///
/// Because functional execution is placement-independent, a pure run
/// observes the same access stream the hybrid run replays — so the
/// hybrid's counterfactual totals match the pure runs' actual counters
/// exactly, and their cycle sums bit-for-bit (tests/adaptivity_audit_test
/// enforces this). Observing is strictly read-only: simulated cycles and
/// counters are identical with or without an audit attached.
class AdaptivityAudit : public gpusim::AccessObserver {
 public:
  /// `device` must outlive the audit. `placement` is recorded in the
  /// export; shadow models are meaningful for the host placements only.
  AdaptivityAudit(gpusim::Device* device, GraphPlacement placement);
  ~AdaptivityAudit() override;

  AdaptivityAudit(const AdaptivityAudit&) = delete;
  AdaptivityAudit& operator=(const AdaptivityAudit&) = delete;

  // -- GraphAccessor hooks ---------------------------------------------------

  /// Opens the next extension's record (closing the previous one). Called
  /// from PlanExtension under every audited placement, so pure runs carry
  /// one record per extension too.
  void BeginExtension(std::size_t frontier_vertices, double planned_bytes);

  /// Fills the open record's decision snapshot after a hybrid plan and
  /// emits the trace marker. `plan_cycles` is the simulated time the plan
  /// itself consumed (host work + prefetch transfer).
  void RecordHybridPlan(const AccessHeatTracker& heat,
                        std::size_t unified_pages, double top_page_overlap,
                        double plan_cycles);

  /// Replays one graph span through both shadow models (page-split
  /// identical to GraphAccessor::ChargeSpan). The caller then performs
  /// the real charges under a SpanGuard.
  void OnGraphSpan(uint32_t region, std::size_t offset, std::size_t bytes);

  /// Brackets for the real charges of a graph span already replayed via
  /// OnGraphSpan, so the observer taps add them to the actual totals only.
  /// Exposed (rather than SpanGuard-only) because GraphAccessor defers them
  /// through WarpCtx::Defer on recording contexts, where the bracket must
  /// travel with the charges into the ordered replay.
  void BeginGraphSpan() { in_graph_span_ = true; }
  void EndGraphSpan() { in_graph_span_ = false; }

  /// RAII form of the brackets, for immediate-mode call sites.
  class SpanGuard {
   public:
    explicit SpanGuard(AdaptivityAudit* audit) : audit_(audit) {
      if (audit_ != nullptr) audit_->BeginGraphSpan();
    }
    ~SpanGuard() {
      if (audit_ != nullptr) audit_->EndGraphSpan();
    }
    SpanGuard(const SpanGuard&) = delete;
    SpanGuard& operator=(const SpanGuard&) = delete;

   private:
    AdaptivityAudit* audit_;
  };

  // -- AccessObserver taps ---------------------------------------------------

  void OnUnifiedAccess(uint32_t region, std::size_t offset,
                       std::size_t bytes, double cycles) override;
  void OnZeroCopy(std::size_t bytes, double cycles) override;
  void OnRegionResized(uint32_t region, std::size_t old_bytes,
                       std::size_t new_bytes) override;
  void OnRegionInvalidated(uint32_t region) override;

  // -- Export ----------------------------------------------------------------

  /// Closes the last open record. Idempotent; called implicitly by
  /// Summary()/ToJson(). Call once the workload is done.
  void Finalize();

  const std::vector<AdaptivityRecord>& records() const { return records_; }
  GraphPlacement placement() const { return placement_; }

  /// Cumulative shadow totals from attach — the counter counterpart of
  /// Summary()'s est_*_cycles (which are these structs' cycles fields).
  const ShadowCounters& unified_shadow_totals() const {
    return shadow_unified_.counters();
  }
  const ShadowCounters& zerocopy_shadow_totals() const {
    return shadow_zerocopy_.counters();
  }

  /// Whole-run totals (accumulated from attach, so traffic before the
  /// first extension counts toward totals but no record).
  AdaptivitySummary Summary();

  /// Renders the audit as a `gamma.adaptivity.v1` JSON document.
  std::string ToJson();

 private:
  void CloseOpenRecord();
  double TotalRegretCycles() const;

  gpusim::Device* device_;
  GraphPlacement placement_;
  ShadowPageLru shadow_unified_;
  ShadowPageLru shadow_zerocopy_;

  double actual_access_cycles_ = 0;  // cumulative observed charges
  double plan_cycles_total_ = 0;
  bool in_graph_span_ = false;

  bool extension_open_ = false;
  int num_extensions_ = 0;
  AdaptivityRecord open_;
  gpusim::DeviceStats stats_at_begin_;
  double actual_cycles_at_begin_ = 0;
  ShadowCounters est_unified_at_begin_;
  ShadowCounters est_zerocopy_at_begin_;
  std::vector<AdaptivityRecord> records_;
};

}  // namespace gpm::core

#endif  // GAMMA_CORE_ADAPTIVITY_AUDIT_H_
