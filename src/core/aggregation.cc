#include "core/aggregation.h"

#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "graph/canonical.h"
#include "graph/isomorphism.h"

namespace gpm::core {
namespace {

constexpr std::size_t kRowsPerWarp = 256;

}  // namespace

Result<AggregationResult> Aggregate(const EmbeddingTable& table,
                                    GraphAccessor* accessor,
                                    PatternTable* pt,
                                    const AggregationOptions& options) {
  AggregationResult result;
  const std::size_t rows = table.num_embeddings();
  const int len = table.length();
  if (rows == 0) return result;

  gpusim::Device* device = table.device();
  const graph::Graph& g = accessor->graph();

  // Map phase: one warp per row block; each row is reconstructed, its
  // pattern built and canonically coded, and the code written out. Tasks
  // may run concurrently: every row writes only its own code slot, each
  // task collects its own first-seen exemplars (merged after the launch in
  // ascending task order, reproducing the serial first-wins choice), and
  // the canonical-code memo — whose values are content-derived and thus
  // interleaving-independent — is the one piece of shared mutable state,
  // behind a mutex. The permutation search itself runs outside the lock
  // (codes are pure functions of the pattern, so a rare duplicate search
  // computes the same value), keeping the dominant cost parallel.
  result.codes.resize(rows);
  std::unordered_map<uint64_t, graph::Pattern> exemplars;
  std::mutex cache_mu;
  std::unordered_map<uint64_t, uint64_t> canon_memo;  // raw code -> canonical
  auto canonical_of = [&cache_mu, &canon_memo](const graph::Pattern& p) {
    const uint64_t raw = graph::RawCode(p);
    {
      std::lock_guard<std::mutex> lock(cache_mu);
      auto it = canon_memo.find(raw);
      if (it != canon_memo.end()) return it->second;
    }
    const uint64_t canon = graph::CanonicalCode(p);
    std::lock_guard<std::mutex> lock(cache_mu);
    canon_memo.emplace(raw, canon);
    return canon;
  };
  std::size_t tasks = (rows + kRowsPerWarp - 1) / kRowsPerWarp;
  std::vector<std::unordered_map<uint64_t, graph::Pattern>> task_exemplars(
      tasks);
  result.kernel_cycles += device->LaunchKernel(
      tasks, [&](gpusim::WarpCtx& w, std::size_t t) {
        std::size_t lo = t * kRowsPerWarp;
        std::size_t hi = std::min(rows, lo + kRowsPerWarp);
        table.ChargeColumnRead(w, len - 1, lo, hi - lo);
        w.ChargeSimtWork((hi - lo) * len,
                         options.map_cycles_per_unit * len);
        for (std::size_t r = lo; r < hi; ++r) {
          std::vector<Unit> emb = table.GetEmbedding(len - 1,
                                                     static_cast<RowIndex>(r));
          graph::Pattern p;
          if (table.kind() == TableKind::kEdge) {
            std::vector<graph::EdgeId> edges(emb.begin(), emb.end());
            p = graph::PatternOfEdges(g, edges, options.use_labels);
          } else {
            std::vector<graph::VertexId> verts(emb.begin(), emb.end());
            p = graph::PatternOfVertices(g, verts, options.use_labels);
          }
          const uint64_t code = canonical_of(p);
          result.codes[r] = code;
          task_exemplars[t].emplace(code, p);
        }
        w.DeviceWrite((hi - lo) * sizeof(uint64_t));
      },
      "aggregation-map");
  for (auto& te : task_exemplars) {
    for (auto& [code, p] : te) exemplars.emplace(code, p);
  }

  // Sort the code column (out-of-core capable) and count runs.
  std::vector<uint64_t> sorted = result.codes;
  SortOptions sort_options = options.sort;
  auto sort_stats = SortKeys(device, &sorted, sort_options);
  if (!sort_stats.ok()) return sort_stats.status();
  result.sort_stats = sort_stats.value();

  // Run-length count over the sorted codes (single scan kernel).
  std::unordered_map<uint64_t, uint64_t> counts;
  result.kernel_cycles += device->LaunchKernel(
      std::max<std::size_t>(1, rows / 4096),
      [&](gpusim::WarpCtx& w, std::size_t) {
        w.ZeroCopyRead(4096 * sizeof(uint64_t));
        w.ChargeSimtWork(4096);
      },
      "aggregation-count");
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    counts[sorted[i]] = j - i;
    i = j;
  }
  result.distinct_patterns = counts.size();

  if (options.support == SupportMeasure::kInstanceCount) {
    for (auto& [code, count] : counts) {
      pt->Accumulate(code, exemplars.at(code), count);
    }
  } else {
    // MNI: min over pattern positions of distinct data vertices seen at
    // that position. Positions follow the embedding's unit order (for
    // e-ET, the first-seen vertex order used by PatternOfEdges).
    std::unordered_map<uint64_t,
                       std::vector<std::unordered_set<graph::VertexId>>>
        images;
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<Unit> emb =
          table.GetEmbedding(len - 1, static_cast<RowIndex>(r));
      std::vector<graph::VertexId> verts;
      if (table.kind() == TableKind::kEdge) {
        for (Unit e : emb) {
          const graph::Edge& ed = g.edge_list()[e];
          if (std::find(verts.begin(), verts.end(), ed.u) == verts.end())
            verts.push_back(ed.u);
          if (std::find(verts.begin(), verts.end(), ed.v) == verts.end())
            verts.push_back(ed.v);
        }
      } else {
        verts.assign(emb.begin(), emb.end());
      }
      auto& img = images[result.codes[r]];
      if (img.size() < verts.size()) img.resize(verts.size());
      for (std::size_t i = 0; i < verts.size(); ++i) {
        img[i].insert(verts[i]);
      }
    }
    for (auto& [code, img] : images) {
      uint64_t mni = img.empty() ? 0 : img.front().size();
      for (const auto& s : img) {
        mni = std::min<uint64_t>(mni, s.size());
      }
      pt->SetSupport(code, exemplars.at(code), mni);
    }
  }
  return result;
}

}  // namespace gpm::core
