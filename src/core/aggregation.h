#ifndef GAMMA_CORE_AGGREGATION_H_
#define GAMMA_CORE_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/adaptive_access.h"
#include "core/embedding_table.h"
#include "core/multimerge_sort.h"
#include "core/pattern_table.h"

namespace gpm::core {

/// Support measure used when aggregating embeddings into patterns.
enum class SupportMeasure : uint8_t {
  /// Number of instances of the pattern (the paper's definition, §III).
  kInstanceCount,
  /// Minimum node image: min over pattern positions of the number of
  /// distinct data vertices appearing there (anti-monotone; common in
  /// other FPM systems, provided as an extension).
  kMni,
};

struct AggregationOptions {
  /// Map embeddings to labeled patterns (true for FPM over labeled data).
  bool use_labels = true;
  SupportMeasure support = SupportMeasure::kInstanceCount;
  /// Sorting backend for the canonical-code table; the pattern table can
  /// exceed device memory, which is what Optimization 3 addresses.
  SortOptions sort;
  /// Cycles charged per embedding for the map function (canonical coding
  /// of a k-unit embedding costs ~O(k^2) table lookups on device).
  double map_cycles_per_unit = 8.0;
};

struct AggregationResult {
  /// codes[r] = canonical pattern code of embedding r (aligned with the
  /// last column). Retained so Filtering can drop instances of invalid
  /// patterns without recomputing the map.
  std::vector<uint64_t> codes;
  std::size_t distinct_patterns = 0;
  SortStats sort_stats;
  double kernel_cycles = 0;
};

/// The aggregation primitive (§III-B2): maps every embedding of `table` to
/// its pattern's canonical label, sorts the label column (out-of-core when
/// needed), counts support per pattern, and accumulates into `pt`.
Result<AggregationResult> Aggregate(const EmbeddingTable& table,
                                    GraphAccessor* accessor,
                                    PatternTable* pt,
                                    const AggregationOptions& options);

}  // namespace gpm::core

#endif  // GAMMA_CORE_AGGREGATION_H_
