#include "core/compaction.h"

#include "common/logging.h"
#include "common/scan.h"
#include "gpusim/device.h"

namespace gpm::core {
namespace {

// Rows handled by one warp task in the compaction kernels.
constexpr std::size_t kRowsPerWarp = 1024;

// Charges a mark/scan/scatter pass over `rows` rows (units + parents are
// read and the survivors rewritten) and returns the kernel cycles.
double ChargeCompactKernel(gpusim::Device* device, std::size_t rows,
                           std::size_t kept) {
  if (rows == 0) return 0;
  std::size_t tasks = (rows + kRowsPerWarp - 1) / kRowsPerWarp;
  return device->LaunchKernel(tasks, [&](gpusim::WarpCtx& w,
                                         std::size_t t) {
    std::size_t lo = t * kRowsPerWarp;
    std::size_t hi = std::min(rows, lo + kRowsPerWarp);
    std::size_t n = hi - lo;
    // Read marks + (unit, parent) pairs, warp-scan for positions, write the
    // survivors' share of this chunk.
    w.DeviceRead(n * sizeof(uint8_t));
    w.DeviceRead(n * (sizeof(Unit) + sizeof(RowIndex)));
    w.ChargeSimtWork(n);
    w.ChargeWarpScan();
    std::size_t chunk_kept = kept * n / rows;  // proportional estimate
    w.DeviceWrite(chunk_kept * (sizeof(Unit) + sizeof(RowIndex)));
  },
  "compact");
}

}  // namespace

CompactionResult CompactTable(EmbeddingTable* table,
                              const std::vector<uint8_t>& keep_last,
                              bool prune_ancestors) {
  CompactionResult result;
  const int ncols = table->length();
  GAMMA_CHECK(ncols > 0) << "compaction of empty table";
  GAMMA_CHECK(keep_last.size() == table->num_embeddings())
      << "keep mask size mismatch";

  gpusim::Device* device = table->device();
  std::vector<uint8_t> keep = keep_last;

  for (int j = ncols - 1; j >= 0; --j) {
    auto& col = table->column(j);
    const std::vector<Unit>& units = col.units.host_data();
    const std::vector<RowIndex>& parents = col.parents.host_data();
    const std::size_t rows = units.size();

    // Prefix scan of the keep marks gives each survivor its new position.
    std::vector<RowIndex> new_pos(rows);
    RowIndex kept = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      new_pos[r] = kept;
      kept += keep[r] ? 1 : 0;
    }
    result.kernel_cycles += ChargeCompactKernel(device, rows, kept);

    std::vector<Unit> new_units(kept);
    std::vector<RowIndex> new_parents(kept);
    std::vector<uint8_t> keep_parent;
    if (j > 0 && prune_ancestors) {
      keep_parent.assign(table->column(j - 1).size(), 0);
    }
    for (std::size_t r = 0; r < rows; ++r) {
      if (!keep[r]) continue;
      new_units[new_pos[r]] = units[r];
      new_parents[new_pos[r]] = parents[r];
      if (!keep_parent.empty()) keep_parent[parents[r]] = 1;
    }
    std::size_t removed = rows - kept;
    if (j == ncols - 1) {
      result.removed_last = removed;
    } else {
      result.removed_ancestors += removed;
    }

    col.units.Assign(std::move(new_units));
    col.parents.Assign(std::move(new_parents));

    if (j == 0 || !prune_ancestors) {
      // Without ancestor pruning, parent rows are untouched and the
      // surviving parent indices are already valid.
      break;
    }

    // Remap the just-written parents after the previous column compacts:
    // compute the previous column's new positions first, then rewrite.
    const std::size_t prev_rows = keep_parent.size();
    std::vector<RowIndex> prev_new_pos(prev_rows);
    RowIndex prev_kept = 0;
    for (std::size_t r = 0; r < prev_rows; ++r) {
      prev_new_pos[r] = prev_kept;
      prev_kept += keep_parent[r] ? 1 : 0;
    }
    auto& parents_vec = col.parents.mutable_host_data();
    for (auto& p : parents_vec) p = prev_new_pos[p];
    keep = std::move(keep_parent);
  }
  table->SyncDeviceColumnSizes();
  return result;
}

}  // namespace gpm::core
