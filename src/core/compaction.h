#ifndef GAMMA_CORE_COMPACTION_H_
#define GAMMA_CORE_COMPACTION_H_

#include <cstdint>
#include <vector>

#include "core/embedding_table.h"

namespace gpm::core {

/// Result of one compaction pass.
struct CompactionResult {
  std::size_t removed_last = 0;       ///< rows removed from the last column
  std::size_t removed_ancestors = 0;  ///< orphan rows removed upstream
  double kernel_cycles = 0;           ///< simulated cost of the pass
};

/// Compresses the embedding table after filtering (§V-A, Fig. 6(c)).
///
/// `keep_last[r]` says whether row r of the last column survives. The pass
/// follows the paper's three stages — mark, prefix-scan for new positions,
/// parallel collection — charged as GPU kernels; when `prune_ancestors` is
/// set, rows of earlier columns that lost all descendants are removed too
/// and parent pointers are remapped (the space compression "ignored in
/// existing GPM frameworks").
CompactionResult CompactTable(EmbeddingTable* table,
                              const std::vector<uint8_t>& keep_last,
                              bool prune_ancestors);

}  // namespace gpm::core

#endif  // GAMMA_CORE_COMPACTION_H_
