#include "core/compiled_engine.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "graph/isomorphism.h"

namespace gpm::core {

Result<CompiledRunResult> CompiledEngine::Run(const CompiledPlan& plan) {
  // Mandatory admission gate: no plan reaches the interpreter without a
  // VerifiedPlan witness. Pure host analysis — no simulated cycles.
  auto verified = VerifiedPlan::Make(plan, MakeVerifyOptions());
  if (!verified.ok()) return verified.status();
  return Run(verified.value());
}

VerifyOptions CompiledEngine::MakeVerifyOptions() const {
  VerifyOptions options;
  options.graph = &engine_->graph();
  options.engine_extension = &engine_->options().extension;
  return options;
}

Result<CompiledRunResult> CompiledEngine::Run(const VerifiedPlan& verified) {
  const CompiledPlan& plan = verified.plan();
  switch (plan.kind) {
    case PlanKind::kSubgraphMatch:
    case PlanKind::kMotifCensus:
      return RunVertexPlan(plan);
    case PlanKind::kFrequentMining:
      return RunFrequentMining(plan);
    case PlanKind::kEdgeJoin:
      return RunEdgeJoin(plan);
  }
  return Status::InvalidArgument("unknown plan kind");
}

namespace {

// Labels are per-run-unique, so the profiler's phase markers never alias.
std::string LevelLabel(const char* prefix, int n) {
  return std::string(prefix) + std::to_string(n);
}

}  // namespace

Result<CompiledRunResult> CompiledEngine::RunVertexPlan(
    const CompiledPlan& plan) {
  CompiledRunResult result;
  gpusim::Device* device = engine_->device();
  PlanProfiler* prof = engine_->plan_profiler();
  const double start = device->now_cycles();
  if (prof != nullptr) {
    prof->BeginRun(plan, device);
    PlanProfLevelInput in;
    in.label = "start";
    in.depth = plan.first_depth() - 1;
    in.est_rows = plan.start == StartMode::kEdgeParallel
                      ? plan.est_pair_rows
                      : plan.est_start_rows;
    in.has_estimate = in.est_rows > 0;
    prof->BeginSegment(std::move(in));
  }

  auto table =
      plan.start == StartMode::kEdgeParallel
          ? engine_->InitVertexPairTable(plan.start_label, plan.second_label,
                                         plan.start_ascending)
          : engine_->InitVertexTable(plan.start_label);
  if (!table.ok()) {
    if (prof != nullptr) prof->AbortRun();
    return table.status();
  }
  EmbeddingTable* et = table.value().get();
  if (prof != nullptr) {
    const uint64_t rows = et->num_embeddings();
    prof->EndSegment(/*input_rows=*/0, /*candidates=*/0, rows);
  }

  const ExtensionOptions saved = engine_->options().extension;
  uint64_t last_count = 0;
  bool counted_only = false;
  for (std::size_t i = 0; i < plan.levels.size(); ++i) {
    const CompiledLevel& level = plan.levels[i];
    const int depth = plan.first_depth() + static_cast<int>(i);
    VertexExtensionSpec spec;
    spec.intersect_positions = level.intersect_positions;
    spec.candidate_label = level.candidate_label;
    spec.require_ascending = level.require_ascending;
    spec.enforce_injective = level.enforce_injective;
    if (!level.restrictions.empty()) {
      // Same closure the legacy symmetric matcher installed: the matched
      // side of each restriction is already in the embedding, the other
      // side is the candidate.
      const std::vector<SymmetryRestriction> applicable =
          level.restrictions;
      spec.post_filter = [applicable, depth](std::span<const Unit> emb,
                                             Unit cand) {
        for (const SymmetryRestriction& r : applicable) {
          if (r.larger_pos == depth) {
            if (!(emb[r.smaller_pos] < cand)) return false;
          } else {
            if (!(cand < emb[r.larger_pos])) return false;
          }
        }
        return true;
      };
    }
    ExtensionOptions& live = engine_->mutable_options().extension;
    live.count_only = saved.count_only || level.count_only;
    if (level.write_strategy) live.write_strategy = *level.write_strategy;
    if (level.pre_merge) live.pre_merge = *level.pre_merge;
    if (prof != nullptr) {
      PlanProfLevelInput in;
      in.label = LevelLabel("L", depth);
      in.depth = depth;
      in.est_rows = level.est_rows;
      in.has_estimate = level.est_rows > 0;
      in.intersect_width =
          static_cast<int>(level.intersect_positions.size());
      in.union_extension = level.intersect_positions.empty();
      in.has_strategy = true;
      in.strategy.write_strategy = WriteStrategyName(live.write_strategy);
      in.strategy.write_strategy_from_plan = level.write_strategy.has_value();
      in.strategy.pre_merge = live.pre_merge;
      in.strategy.pre_merge_from_plan = level.pre_merge.has_value();
      in.strategy.count_only = live.count_only;
      prof->BeginSegment(std::move(in));
    }
    auto stats = engine_->VertexExtension(et, spec);
    engine_->mutable_options().extension = saved;
    if (!stats.ok()) {
      if (prof != nullptr) prof->AbortRun();
      return stats.status();
    }
    if (prof != nullptr) {
      prof->EndSegment(stats.value().input_rows, stats.value().candidates,
                       stats.value().results);
    }
    result.steps.push_back(stats.value());
    if (level.count_only) {
      last_count = stats.value().results;
      counted_only = true;
    }
  }

  if (plan.kind == PlanKind::kMotifCensus) {
    // Aggregate by unlabeled induced shape, dividing each support by the
    // shape's connected-prefix ordering multiplicity.
    PatternTable pt;
    AggregationOptions agg_options = engine_->options().aggregation;
    agg_options.use_labels = false;
    if (prof != nullptr) {
      PlanProfLevelInput in;
      in.label = "aggregate";
      in.depth = plan.first_depth() + static_cast<int>(plan.levels.size());
      prof->BeginSegment(std::move(in));
    }
    auto agg = Aggregate(*et, &engine_->accessor(), &pt, agg_options);
    if (!agg.ok()) {
      if (prof != nullptr) prof->AbortRun();
      return agg.status();
    }
    if (prof != nullptr) {
      prof->EndSegment(et->num_embeddings(), /*candidates=*/0,
                       pt.entries().size());
    }
    for (const PatternEntry& e : pt.entries()) {
      uint64_t orderings = graph::CountConnectedOrderings(e.exemplar);
      GAMMA_CHECK(orderings > 0) << "disconnected motif shape";
      result.motifs.emplace_back(e.exemplar, e.support / orderings);
    }
    std::sort(result.motifs.begin(), result.motifs.end(),
              [](const auto& a, const auto& b) {
                return a.first.num_edges() < b.first.num_edges();
              });
  } else {
    result.embeddings = counted_only ? last_count : et->num_embeddings();
    result.instances = plan.symmetry_broken
                           ? result.embeddings
                           : result.embeddings / plan.automorphisms;
  }

  if (prof != nullptr) prof->FinishRun();
  result.sim_millis =
      device->params().CyclesToMillis(device->now_cycles() - start);
  return result;
}

Result<CompiledRunResult> CompiledEngine::RunFrequentMining(
    const CompiledPlan& plan) {
  GAMMA_CHECK(plan.max_edges >= 1) << "need at least one iteration";
  CompiledRunResult result;
  gpusim::Device* device = engine_->device();
  PlanProfiler* prof = engine_->plan_profiler();
  const double start = device->now_cycles();
  if (prof != nullptr) {
    prof->BeginRun(plan, device);
    PlanProfLevelInput in;
    in.label = "start";
    in.depth = 1;  // one matched edge per row
    prof->BeginSegment(std::move(in));
  }

  auto table = engine_->InitEdgeTable();
  if (!table.ok()) {
    if (prof != nullptr) prof->AbortRun();
    return table.status();
  }
  EmbeddingTable* et = table.value().get();
  if (prof != nullptr) {
    prof->EndSegment(/*input_rows=*/0, /*candidates=*/0,
                     et->num_embeddings());
  }

  for (int i = 1; i <= plan.max_edges; ++i) {
    // Iteration i audits the i-edge patterns, then (except on the last
    // round) extends the survivors to i+1 edges.
    const uint64_t rows_in = et->num_embeddings();
    uint64_t candidates = 0;
    if (prof != nullptr) {
      PlanProfLevelInput in;
      in.label = LevelLabel("it", i);
      in.depth = i;
      prof->BeginSegment(std::move(in));
    }
    // PT = PT ∪ Aggregation(ET, m_f)
    auto agg = engine_->Aggregation(*et, &result.patterns);
    if (!agg.ok()) {
      if (prof != nullptr) prof->AbortRun();
      return agg.status();
    }
    // Filtering(ET, PT, sup_min): invalidate infrequent patterns and drop
    // their instances.
    result.patterns.InvalidateBelow(plan.min_support);
    engine_->Filtering(et, agg.value().codes, result.patterns);
    result.patterns.EraseInvalid();
    result.aggregations.push_back(std::move(agg).value());

    if (i < plan.max_edges) {
      EdgeExtensionSpec spec;
      spec.canonical_only = true;
      auto stats = engine_->EdgeExtension(et, spec);
      if (!stats.ok()) {
        if (prof != nullptr) prof->AbortRun();
        return stats.status();
      }
      candidates = stats.value().candidates;
      result.steps.push_back(stats.value());
    }
    if (prof != nullptr) {
      prof->EndSegment(rows_in, candidates, et->num_embeddings());
    }
  }

  if (prof != nullptr) prof->FinishRun();
  result.sim_millis =
      device->params().CyclesToMillis(device->now_cycles() - start);
  return result;
}

Result<CompiledRunResult> CompiledEngine::RunEdgeJoin(
    const CompiledPlan& plan) {
  CompiledRunResult result;
  gpusim::Device* device = engine_->device();
  const graph::Graph& g = engine_->graph();
  const double start = device->now_cycles();
  const graph::Pattern& query = plan.pattern;
  const std::vector<std::pair<int, int>>& query_edges = plan.edge_order;

  PlanProfiler* prof = engine_->plan_profiler();
  if (prof != nullptr) {
    prof->BeginRun(plan, device);
    PlanProfLevelInput in;
    in.label = "start";
    in.depth = 1;  // one matched query edge after the seed filter
    prof->BeginSegment(std::move(in));
  }
  auto table = engine_->InitEdgeTable();
  if (!table.ok()) {
    if (prof != nullptr) prof->AbortRun();
    return table.status();
  }
  EmbeddingTable* et = table.value().get();
  const uint64_t seed_rows = et->num_embeddings();

  // Filter the length-1 table down to edges matching the first query edge.
  engine_->Filtering(et, [&](std::span<const Unit> emb) {
    std::vector<graph::EdgeId> edges(emb.begin(), emb.end());
    return graph::MatchesQueryPrefix(g, edges, query, query_edges);
  });
  if (prof != nullptr) {
    prof->EndSegment(seed_rows, seed_rows, et->num_embeddings());
  }

  for (std::size_t k = 1; k < query_edges.size(); ++k) {
    EdgeExtensionSpec spec;
    spec.canonical_only = false;  // order is dictated by the query plan
    spec.post_filter = [&](std::span<const Unit> emb, Unit cand) {
      std::vector<graph::EdgeId> edges(emb.begin(), emb.end());
      edges.push_back(cand);
      return graph::MatchesQueryPrefix(g, edges, query, query_edges);
    };
    if (prof != nullptr) {
      PlanProfLevelInput in;
      in.label = LevelLabel("e", static_cast<int>(k));
      in.depth = static_cast<int>(k) + 1;  // matched edges after the step
      prof->BeginSegment(std::move(in));
    }
    auto stats = engine_->EdgeExtension(et, spec);
    if (!stats.ok()) {
      if (prof != nullptr) prof->AbortRun();
      return stats.status();
    }
    if (prof != nullptr) {
      prof->EndSegment(stats.value().input_rows, stats.value().candidates,
                       stats.value().results);
    }
    result.steps.push_back(stats.value());
  }

  if (prof != nullptr) prof->FinishRun();
  result.embeddings = et->num_embeddings();
  // Distinct instances = distinct edge sets among the matched sequences.
  std::unordered_set<uint64_t> distinct;
  for (const auto& emb : et->Materialize()) {
    std::vector<Unit> sorted(emb.begin(), emb.end());
    std::sort(sorted.begin(), sorted.end());
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (Unit u : sorted) h = Mix64(h ^ u);
    distinct.insert(h);
  }
  result.instances = distinct.size();
  result.sim_millis =
      device->params().CyclesToMillis(device->now_cycles() - start);
  return result;
}

}  // namespace gpm::core
