#ifndef GAMMA_CORE_COMPILED_ENGINE_H_
#define GAMMA_CORE_COMPILED_ENGINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/gamma.h"
#include "core/pattern_compiler.h"
#include "core/plan_verifier.h"
#include "graph/pattern.h"

namespace gpm::core {

/// What CompiledEngine::Run produces. Which fields are meaningful depends
/// on the plan kind; the preset wrappers in src/algos project this into
/// their legacy result structs.
struct CompiledRunResult {
  uint64_t embeddings = 0;  ///< matched rows (vertex plans, edge join)
  uint64_t instances = 0;   ///< deduplicated instances
  double sim_millis = 0;
  std::vector<ExtensionStats> steps;
  /// kMotifCensus: (exemplar shape, instance count), sorted by edge count.
  std::vector<std::pair<graph::Pattern, uint64_t>> motifs;
  /// kFrequentMining: frequent patterns and the per-iteration aggregation
  /// results (Algorithm 2 outputs).
  PatternTable patterns;
  std::vector<AggregationResult> aggregations;
};

/// The one generic execution loop all four mining workloads run on: a
/// CompiledPlan interpreter over GammaEngine primitives. Each level builds
/// its VertexExtensionSpec / EdgeExtensionSpec from plan data; per-level
/// strategy overrides are applied around the primitive call and restored
/// after, so inherit-mode plans are bit-identical to the legacy
/// hand-specialized algorithms.
class CompiledEngine {
 public:
  explicit CompiledEngine(GammaEngine* engine) : engine_(engine) {}

  /// Verifies `plan` through the static PlanVerifier (against this
  /// engine's graph and extension options), then interprets it. A refuted
  /// plan never reaches the interpreter: the call fails with
  /// kFailedPrecondition naming the violated obligation. Verification is
  /// pure host-side analysis and charges no simulated cycles.
  Result<CompiledRunResult> Run(const CompiledPlan& plan);

  /// Interprets an already-verified plan (skips re-verification).
  Result<CompiledRunResult> Run(const VerifiedPlan& plan);

  /// The verifier configuration Run() gates plans with.
  VerifyOptions MakeVerifyOptions() const;

 private:
  Result<CompiledRunResult> RunVertexPlan(const CompiledPlan& plan);
  Result<CompiledRunResult> RunFrequentMining(const CompiledPlan& plan);
  Result<CompiledRunResult> RunEdgeJoin(const CompiledPlan& plan);

  GammaEngine* engine_;
};

}  // namespace gpm::core

#endif  // GAMMA_CORE_COMPILED_ENGINE_H_
