#include "core/embedding_table.h"

#include <sstream>
#include <string>

#include "common/logging.h"
#include "gpusim/sanitizer.h"

namespace gpm::core {

Status EmbeddingTable::AppendColumn(std::vector<Unit> units,
                                    std::vector<RowIndex> parents) {
  GAMMA_CHECK(units.size() == parents.size())
      << "column arrays must have equal length";
  if (!columns_.empty()) {
    const std::size_t prev = columns_.back()->size();
    for (RowIndex p : parents) {
      GAMMA_CHECK(p < prev) << "parent row out of range";
    }
  } else {
    for (RowIndex p : parents) {
      GAMMA_CHECK(p == kNoParent) << "first column must have no parents";
    }
  }
  if (device_resident_) {
    std::size_t bytes = units.size() * (sizeof(Unit) + sizeof(RowIndex));
    auto buf = gpusim::DeviceBuffer::Make(&device_->memory(), bytes);
    if (!buf.ok()) return buf.status();
    gpusim::DeviceBuffer dbuf = std::move(buf).value();
    if (gpusim::Sanitizer* san = device_->sanitizer()) {
      san->LabelObject(dbuf.id(),
                       "et-column-" + std::to_string(columns_.size()));
      // The column is materialized with its data: the flush that filled it
      // is the pool's business, not a read-before-write hazard here.
      san->MarkInitialized(dbuf.id());
    }
    device_columns_.push_back(std::move(dbuf));
  }
  auto col = std::make_unique<Column>(device_);
  col->units.Assign(std::move(units));
  col->parents.Assign(std::move(parents));
  columns_.push_back(std::move(col));
  return Status::Ok();
}

Status EmbeddingTable::InitFirstColumn(std::vector<Unit> units) {
  GAMMA_CHECK(columns_.empty()) << "table already initialized";
  std::vector<RowIndex> parents(units.size(), kNoParent);
  return AppendColumn(std::move(units), std::move(parents));
}

void EmbeddingTable::PopColumn() {
  GAMMA_CHECK(!columns_.empty()) << "pop from empty table";
  columns_.pop_back();
  if (device_resident_ && !device_columns_.empty()) {
    device_columns_.pop_back();
  }
}

void EmbeddingTable::SyncDeviceColumnSizes() {
  if (!device_resident_) return;
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    std::size_t bytes =
        columns_[j]->size() * (sizeof(Unit) + sizeof(RowIndex));
    if (bytes < device_columns_[j].bytes()) {
      GAMMA_CHECK_OK(device_columns_[j].Resize(bytes));
    }
  }
}

void EmbeddingTable::ChargeColumnRead(gpusim::WarpCtx& warp, int col,
                                      std::size_t first,
                                      std::size_t count) const {
  const Column& c = *columns_[col];
  if (device_resident_) {
    constexpr std::size_t kEntryBytes = sizeof(Unit) + sizeof(RowIndex);
    warp.DeviceRead(device_columns_[col].id(), first * kEntryBytes,
                    count * kEntryBytes);
  } else {
    warp.UnifiedRead(c.units.region(), first * sizeof(Unit),
                     count * sizeof(Unit));
    warp.UnifiedRead(c.parents.region(), first * sizeof(RowIndex),
                     count * sizeof(RowIndex));
  }
}

std::vector<Unit> EmbeddingTable::GetEmbedding(int col, RowIndex row) const {
  GAMMA_CHECK(col >= 0 && col < length()) << "column out of range";
  std::vector<Unit> out(col + 1);
  RowIndex r = row;
  for (int j = col; j >= 0; --j) {
    GAMMA_CHECK(r < columns_[j]->size()) << "row out of range";
    out[j] = columns_[j]->units.host_data()[r];
    r = columns_[j]->parents.host_data()[r];
  }
  return out;
}

std::vector<std::vector<Unit>> EmbeddingTable::Materialize() const {
  std::vector<std::vector<Unit>> out;
  if (columns_.empty()) return out;
  const int last = length() - 1;
  out.reserve(num_embeddings());
  for (RowIndex r = 0; r < num_embeddings(); ++r) {
    out.push_back(GetEmbedding(last, r));
  }
  return out;
}

std::size_t EmbeddingTable::StorageBytes() const {
  std::size_t bytes = 0;
  for (const auto& c : columns_) {
    bytes += c->units.ByteSize() + c->parents.ByteSize();
  }
  return bytes;
}

std::string EmbeddingTable::DebugString() const {
  std::ostringstream os;
  os << "EmbeddingTable(kind="
     << (kind_ == TableKind::kVertex ? "vertex" : "edge") << ", cols=[";
  for (int j = 0; j < length(); ++j) {
    if (j > 0) os << ",";
    os << columns_[j]->size();
  }
  os << "])";
  return os.str();
}

}  // namespace gpm::core
