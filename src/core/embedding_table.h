#ifndef GAMMA_CORE_EMBEDDING_TABLE_H_
#define GAMMA_CORE_EMBEDDING_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "gpusim/host_array.h"
#include "graph/csr.h"

namespace gpm::core {

/// Unit stored in one embedding-table cell: a vertex id (v-ET) or an
/// undirected edge id (e-ET).
using Unit = uint32_t;
/// Row index within a column; kNoParent for the first column.
using RowIndex = uint32_t;
inline constexpr RowIndex kNoParent = 0xffffffffu;

enum class TableKind : uint8_t { kVertex, kEdge };

/// Columnar embedding table with prefix sharing (§V-A).
///
/// Column j holds the j-th unit of every partial embedding plus a pointer to
/// its predecessor row in column j-1; embeddings extended from the same
/// parent share that parent row, so the table is a prefix tree stored
/// column-first ("each column ... stored consecutively for coalesced reading
/// and writing, and each vertex has a pointer to its predecessor").
///
/// Columns are host-resident (the table can exceed device memory); each
/// column's unit and parent arrays are unified-memory regions, matching the
/// paper's choice of unified memory for the embedding table since extension
/// reads it in continuous batches.
class EmbeddingTable {
 public:
  struct Column {
    explicit Column(gpusim::Device* device)
        : units(device), parents(device) {}
    gpusim::HostArray<Unit> units;
    gpusim::HostArray<RowIndex> parents;
    std::size_t size() const { return units.size(); }
  };

  /// `device_resident` models in-core frameworks (Pangolin, GSI): every
  /// column is also allocated in device memory, so AppendColumn fails with
  /// kDeviceOutOfMemory once the intermediate results outgrow the card —
  /// the crash mode the paper reports for those systems. GAMMA itself keeps
  /// the table host-resident (false).
  EmbeddingTable(gpusim::Device* device, TableKind kind,
                 bool device_resident = false)
      : device_(device), kind_(kind), device_resident_(device_resident) {}

  EmbeddingTable(const EmbeddingTable&) = delete;
  EmbeddingTable& operator=(const EmbeddingTable&) = delete;

  bool device_resident() const { return device_resident_; }

  TableKind kind() const { return kind_; }
  gpusim::Device* device() const { return device_; }

  /// Number of columns (current embedding length).
  int length() const { return static_cast<int>(columns_.size()); }

  /// Number of (partial) embeddings = rows of the last column.
  std::size_t num_embeddings() const {
    return columns_.empty() ? 0 : columns_.back()->size();
  }

  bool empty() const { return num_embeddings() == 0; }

  Column& column(int j) { return *columns_[j]; }
  const Column& column(int j) const { return *columns_[j]; }
  Column& last_column() { return *columns_.back(); }
  const Column& last_column() const { return *columns_.back(); }

  /// Appends a fully formed column. `parents` must reference rows of the
  /// previous column (or be kNoParent for the first column). Fails with
  /// kDeviceOutOfMemory for device-resident tables that no longer fit.
  Status AppendColumn(std::vector<Unit> units, std::vector<RowIndex> parents);

  /// Initializes a one-column table (parents all kNoParent).
  Status InitFirstColumn(std::vector<Unit> units);

  /// Charges `warp` for a device-side read of `count` cells (unit +
  /// parent) of column `col` starting at row `first`, using device reads
  /// for device-resident tables and unified reads otherwise.
  void ChargeColumnRead(gpusim::WarpCtx& warp, int col, std::size_t first,
                        std::size_t count) const;

  /// Drops the last column (used when an extension is rolled back).
  void PopColumn();

  /// Shrinks the device allocations of an in-core table to the current
  /// column sizes (called after compaction; shrinking never fails).
  void SyncDeviceColumnSizes();

  /// Host-side reconstruction of row `row` of column `col` as a full
  /// embedding, oldest unit first. Un-charged; for host logic and tests.
  std::vector<Unit> GetEmbedding(int col, RowIndex row) const;

  /// All embeddings of the last column (host-side, for tests/output).
  std::vector<std::vector<Unit>> Materialize() const;

  /// Total host bytes of all columns (peak-memory accounting, Fig. 10).
  std::size_t StorageBytes() const;

  std::string DebugString() const;

 private:
  gpusim::Device* device_;
  TableKind kind_;
  bool device_resident_ = false;
  std::vector<std::unique_ptr<Column>> columns_;
  // Device allocations backing the columns of in-core tables.
  std::vector<gpusim::DeviceBuffer> device_columns_;
};

}  // namespace gpm::core

#endif  // GAMMA_CORE_EMBEDDING_TABLE_H_
