#include "core/extension.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "core/intersection.h"

namespace gpm::core {
namespace {

using graph::VertexId;

constexpr std::size_t kEntryBytes = sizeof(Unit) + sizeof(RowIndex);

const char* KindName(TableKind kind) {
  return kind == TableKind::kVertex ? "vertex" : "edge";
}

// Host-side flat materialization of the table: row-major rows x len. This
// is the functional truth the kernels compute over; the simulated cost of
// reading the columns is charged separately by ChargeTableRead.
struct Flattened {
  int len = 0;
  std::size_t rows = 0;
  std::vector<Unit> data;

  std::span<const Unit> row(std::size_t r) const {
    return {data.data() + r * len, static_cast<std::size_t>(len)};
  }
};

Flattened Flatten(const EmbeddingTable& table) {
  Flattened flat;
  flat.len = table.length();
  flat.rows = table.num_embeddings();
  flat.data.resize(flat.rows * flat.len);
  if (flat.rows == 0) return flat;
  // Walk column by column: compute each row's ancestor in one pass per
  // column instead of chasing parents per row.
  std::vector<RowIndex> anc(flat.rows);
  for (std::size_t r = 0; r < flat.rows; ++r) anc[r] = static_cast<RowIndex>(r);
  for (int j = flat.len - 1; j >= 0; --j) {
    const auto& units = table.column(j).units.host_data();
    const auto& parents = table.column(j).parents.host_data();
    for (std::size_t r = 0; r < flat.rows; ++r) {
      flat.data[r * flat.len + j] = units[anc[r]];
      anc[r] = parents[anc[r]];
    }
  }
  return flat;
}

// Charges the unified-memory reads a warp performs to reconstruct rows
// [lo, hi) of the table. Ancestor rows of a contiguous row range are
// themselves contiguous (children are appended in parent order), so each
// column contributes one span.
void ChargeTableRead(gpusim::WarpCtx& warp, const EmbeddingTable& table,
                     std::size_t lo, std::size_t hi) {
  if (lo >= hi) return;
  RowIndex first = static_cast<RowIndex>(lo);
  RowIndex last = static_cast<RowIndex>(hi - 1);
  for (int j = table.length() - 1; j >= 0; --j) {
    const auto& col = table.column(j);
    std::size_t span = (static_cast<std::size_t>(last) - first + 1);
    table.ChargeColumnRead(warp, j, first, span);
    first = col.parents.host_data()[first];
    last = col.parents.host_data()[last];
    if (first == kNoParent) break;
  }
}

// One emitted extension result.
struct Emit {
  Unit unit;
  RowIndex parent;
};

// Generator interface: fills `out` with the accepted candidates of rows
// [lo, hi) while charging `warp`. Returns the raw candidate count (before
// filtering) for the stats.
using RowRangeGenerator = std::function<std::size_t(
    gpusim::WarpCtx& warp, std::size_t lo, std::size_t hi,
    std::vector<Emit>* out)>;

// A kernel-granularity unit of work: either a plain row range or one
// pre-merge group.
struct WarpTask {
  std::size_t lo;
  std::size_t hi;
};

// Shared chunked driver implementing the three write strategies. The
// generator is strategy-agnostic; this function arranges passes, buffers,
// pool traffic and flushes, and appends the final column.
Result<ExtensionStats> RunExtension(
    EmbeddingTable* table, GraphAccessor* accessor,
    const ExtensionOptions& options, const std::vector<WarpTask>& tasks,
    const RowRangeGenerator& generate, std::size_t worst_case_per_row) {
  gpusim::Device* device = table->device();
  ExtensionStats stats;
  stats.input_rows = table->num_embeddings();

  // Double-buffered pipeline (num_streams >= 2): extension kernels for
  // chunk i+1 run on a compute stream while chunk i's result flush and
  // host-side append drain on a copy stream; events guard reuse of each
  // buffer half. Count-only extensions move no results, so there is
  // nothing to overlap — but their kernels still run on the compute
  // stream, so per-stream trace/metrics attribution is consistent across
  // every write strategy.
  const bool use_worker_streams = options.num_streams >= 2;
  const bool async = use_worker_streams && !options.count_only;
  const gpusim::StreamId compute_stream =
      use_worker_streams ? device->WorkerStream(0) : gpusim::kDefaultStream;
  const gpusim::StreamId copy_stream =
      async ? device->WorkerStream(1) : gpusim::kDefaultStream;
  if (use_worker_streams) {
    // The extension logically follows everything already submitted.
    device->FastForwardStream(compute_stream);
    if (async) device->FastForwardStream(copy_stream);
  }
  const bool double_buffer_pool =
      async && options.write_strategy == WriteStrategy::kDynamicAlloc;
  const std::size_t writable_pool_bytes =
      double_buffer_pool ? options.pool_bytes / 2 : options.pool_bytes;

  MemoryPool pool(
      device,
      {.pool_bytes = options.pool_bytes,
       .block_bytes = std::min(options.block_bytes, writable_pool_bytes),
       .double_buffered = double_buffer_pool});
  const std::size_t pool_entries = options.pool_bytes / kEntryBytes;
  if (options.write_strategy == WriteStrategy::kPreAlloc &&
      worst_case_per_row > pool_entries) {
    return Status::DeviceOutOfMemory(
        "prealloc write strategy cannot fit one row's worst case (" +
        std::to_string(worst_case_per_row) + " results) in the device "
        "buffer");
  }
  if (options.write_strategy != WriteStrategy::kNaiveTwoPass) {
    // The count-then-write strategy needs no staging pool — its second
    // pass writes at exact offsets ("no extra space, double compute");
    // the other strategies reserve their device write buffer up front.
    Status reserve = pool.Reserve();
    if (!reserve.ok()) return reserve;
  }

  std::vector<Unit> new_units;
  std::vector<RowIndex> new_parents;
  std::vector<Emit> emitted;

  // Completion events for each buffer half's flush: chunk i must not start
  // writing into half (i % 2) before chunk i-2's flush of that half has
  // drained on the copy stream.
  gpusim::Event flush_done[2];

  // Group tasks into kernels of ~chunk_rows input rows.
  std::size_t t = 0;
  while (t < tasks.size()) {
    std::size_t chunk_begin = t;
    std::size_t rows_in_chunk = 0;
    std::size_t limit_rows = options.chunk_rows;
    if (options.write_strategy == WriteStrategy::kPreAlloc) {
      // Worst-case preallocation: shrink the kernel until rows x d_max
      // results fit in the buffer (GSI's "prealloc-combine").
      limit_rows = std::min(
          limit_rows, std::max<std::size_t>(
                          1, pool_entries / std::max<std::size_t>(
                                                1, worst_case_per_row)));
    }
    while (t < tasks.size() && rows_in_chunk < limit_rows) {
      rows_in_chunk += tasks[t].hi - tasks[t].lo;
      ++t;
    }
    std::size_t chunk_end = t;
    std::size_t chunk_tasks = chunk_end - chunk_begin;
    const std::size_t half = stats.chunks % 2;
    ++stats.chunks;
    if (async && flush_done[half].valid() &&
        !options.unsafe_skip_buffer_guard) {
      // The buffer half this chunk writes into is still flushing; the
      // compute stream stalls until the copy stream releases it.
      device->WaitEvent(compute_stream, flush_done[half]);
    }

    emitted.clear();
    std::size_t chunk_results = 0;

    if (options.count_only) {
      // Tally survivors without writing anything: single generation pass,
      // results reduced warp-locally and atomically added to one counter.
      // Each task writes only its own tally slot (kernel lambdas may run
      // concurrently); the reduction happens after the launch, ascending.
      std::vector<std::size_t> task_candidates(chunk_tasks, 0);
      std::vector<std::size_t> task_results(chunk_tasks, 0);
      stats.kernel_cycles += device->LaunchKernelAsync(
          compute_stream, chunk_tasks,
          [&](gpusim::WarpCtx& w, std::size_t i) {
            const WarpTask& task = tasks[chunk_begin + i];
            std::vector<Emit> local;
            task_candidates[i] = generate(w, task.lo, task.hi, &local);
            w.ChargeWarpScan();
            w.ChargeAtomic();
            task_results[i] = local.size();
          },
          "extension-count-only");
      for (std::size_t i = 0; i < chunk_tasks; ++i) {
        stats.candidates += task_candidates[i];
        stats.results += task_results[i];
      }
      continue;
    }
    switch (options.write_strategy) {
      case WriteStrategy::kDynamicAlloc: {
        // One cursor per resident warp slot: a warp keeps filling its
        // current block across the group tasks it processes ("the results
        // are collected in the same memory block").
        std::vector<MemoryPool::WarpCursor> cursors(
            std::max(1, device->params().num_warp_slots));
        // Task-local accumulation: every task owns its tally slot and emit
        // buffer; the pool write defers its own shared-state bookkeeping
        // when recording. Reduction and the ordered emit merge (ascending
        // task id = the serial schedule) happen after the launch.
        std::vector<std::size_t> task_candidates(chunk_tasks, 0);
        std::vector<std::vector<Emit>> task_emits(chunk_tasks);
        stats.kernel_cycles += device->LaunchKernelAsync(
            compute_stream, chunk_tasks,
            [&](gpusim::WarpCtx& w, std::size_t i) {
              const WarpTask& task = tasks[chunk_begin + i];
              std::vector<Emit>& local = task_emits[i];
              task_candidates[i] = generate(w, task.lo, task.hi, &local);
              pool.WarpWrite(w, &cursors[i % cursors.size()], local.size(),
                             kEntryBytes);
            },
            "extension-dynamic");
        for (std::size_t i = 0; i < chunk_tasks; ++i) {
          stats.candidates += task_candidates[i];
          emitted.insert(emitted.end(), task_emits[i].begin(),
                         task_emits[i].end());
        }
        for (auto& cursor : cursors) pool.EndWarpTask(&cursor);
        chunk_results = emitted.size();
        if (async) {
          // The flush reads what the kernel wrote: order it after the
          // compute stream's position, then drain on the copy stream.
          device->WaitEvent(copy_stream, device->RecordEvent(compute_stream));
        }
        pool.FlushToHost(copy_stream);
        break;
      }
      case WriteStrategy::kNaiveTwoPass: {
        // Pass 1: count only (full generation cost, results discarded).
        std::vector<std::size_t> counts(chunk_tasks, 0);
        std::vector<std::size_t> task_candidates(chunk_tasks, 0);
        stats.kernel_cycles += device->LaunchKernelAsync(
            compute_stream, chunk_tasks,
            [&](gpusim::WarpCtx& w, std::size_t i) {
              const WarpTask& task = tasks[chunk_begin + i];
              std::vector<Emit> local;
              task_candidates[i] = generate(w, task.lo, task.hi, &local);
              counts[i] = local.size();
              w.DeviceWrite(sizeof(uint32_t));  // per-task count
            },
            "extension-count");
        for (std::size_t i = 0; i < chunk_tasks; ++i) {
          stats.candidates += task_candidates[i];
        }
        // Scan of per-task counts to assign exact write offsets.
        stats.kernel_cycles += device->LaunchKernelAsync(
            compute_stream, 1, [&](gpusim::WarpCtx& w, std::size_t) {
              w.DeviceRead(chunk_tasks * sizeof(uint32_t));
              w.ChargeSimtWork(chunk_tasks);
              w.ChargeWarpScan();
              w.DeviceWrite(chunk_tasks * sizeof(uint32_t));
            },
            "extension-scan");
        // Pass 2: regenerate and write at exact offsets.
        std::vector<std::vector<Emit>> task_emits(chunk_tasks);
        stats.kernel_cycles += device->LaunchKernelAsync(
            compute_stream, chunk_tasks,
            [&](gpusim::WarpCtx& w, std::size_t i) {
              const WarpTask& task = tasks[chunk_begin + i];
              std::vector<Emit>& local = task_emits[i];
              generate(w, task.lo, task.hi, &local);
              w.DeviceWrite(local.size() * kEntryBytes);
            },
            "extension-write");
        for (std::size_t i = 0; i < chunk_tasks; ++i) {
          emitted.insert(emitted.end(), task_emits[i].begin(),
                         task_emits[i].end());
        }
        chunk_results = emitted.size();
        if (async) {
          device->WaitEvent(copy_stream, device->RecordEvent(compute_stream));
        }
        device->CopyDeviceToHostAsync(copy_stream,
                                      chunk_results * kEntryBytes);
        break;
      }
      case WriteStrategy::kPreAlloc: {
        std::vector<std::size_t> task_candidates(chunk_tasks, 0);
        std::vector<std::vector<Emit>> task_emits(chunk_tasks);
        stats.kernel_cycles += device->LaunchKernelAsync(
            compute_stream, chunk_tasks,
            [&](gpusim::WarpCtx& w, std::size_t i) {
              const WarpTask& task = tasks[chunk_begin + i];
              std::vector<Emit>& local = task_emits[i];
              task_candidates[i] = generate(w, task.lo, task.hi, &local);
              // Scattered writes into the worst-case slots.
              w.DeviceWrite(local.size() * kEntryBytes);
              w.DeviceWrite((task.hi - task.lo) * sizeof(uint32_t));
            },
            "extension-prealloc");
        for (std::size_t i = 0; i < chunk_tasks; ++i) {
          stats.candidates += task_candidates[i];
          emitted.insert(emitted.end(), task_emits[i].begin(),
                         task_emits[i].end());
        }
        chunk_results = emitted.size();
        // Combine step: compact the sparse buffer. Bandwidth is paid over
        // the whole preallocated span — that is the cost of overestimation.
        std::size_t alloc_entries =
            std::min(pool_entries, rows_in_chunk * worst_case_per_row);
        stats.kernel_cycles += device->LaunchKernelAsync(
            compute_stream, std::max<std::size_t>(1, chunk_tasks),
            [&](gpusim::WarpCtx& w, std::size_t i) {
              std::size_t share = alloc_entries / std::max<std::size_t>(
                                                      1, chunk_tasks);
              w.DeviceRead(share * kEntryBytes);
              w.ChargeWarpScan();
              w.DeviceWrite(chunk_results * kEntryBytes /
                            std::max<std::size_t>(1, chunk_tasks));
              (void)i;
            },
            "extension-combine");
        if (async) {
          device->WaitEvent(copy_stream, device->RecordEvent(compute_stream));
        }
        device->CopyDeviceToHostAsync(copy_stream,
                                      chunk_results * kEntryBytes);
        break;
      }
    }

    new_units.reserve(new_units.size() + emitted.size());
    new_parents.reserve(new_parents.size() + emitted.size());
    for (const Emit& e : emitted) {
      new_units.push_back(e.unit);
      new_parents.push_back(e.parent);
    }
    stats.results += chunk_results;
    // Host-side append of the flushed results into the new column follows
    // the flush — it lives on the copy stream, off the compute stream's
    // critical path.
    device->ChargeHostWork(static_cast<double>(chunk_results), copy_stream);
    if (async) flush_done[half] = device->RecordEvent(copy_stream);
  }

  if (use_worker_streams) {
    // The results are complete only once every pipeline leg drains (for
    // count-only, just the compute stream).
    device->Synchronize();
  }

  (void)accessor;
  if (!options.count_only) {
    Status append =
        table->AppendColumn(std::move(new_units), std::move(new_parents));
    if (!append.ok()) return append;
  }
  return stats;
}

// Splits [0, rows) into per-warp tasks; with `group_by_parent` the split
// follows runs of equal parent in the last column (Optimization 2's
// groups), otherwise fixed-size blocks.
std::vector<WarpTask> BuildTasks(const EmbeddingTable& table,
                                 bool group_by_parent,
                                 std::size_t rows_per_warp) {
  std::vector<WarpTask> tasks;
  const std::size_t rows = table.num_embeddings();
  if (rows == 0) return tasks;
  if (!group_by_parent) {
    for (std::size_t lo = 0; lo < rows; lo += rows_per_warp) {
      tasks.push_back({lo, std::min(rows, lo + rows_per_warp)});
    }
    return tasks;
  }
  const auto& parents = table.last_column().parents.host_data();
  // Oversized groups (hub parents) are split so that no single warp task
  // serializes thousands of rows; each shard still hoists its own prefix
  // intersection.
  const std::size_t max_group_rows = 4 * rows_per_warp;
  std::size_t lo = 0;
  for (std::size_t r = 1; r <= rows; ++r) {
    if (r == rows || parents[r] != parents[lo] ||
        r - lo >= max_group_rows) {
      tasks.push_back({lo, r});
      lo = r;
    }
  }
  return tasks;
}

}  // namespace

const char* WriteStrategyName(WriteStrategy strategy) {
  switch (strategy) {
    case WriteStrategy::kNaiveTwoPass:
      return "naive-two-pass";
    case WriteStrategy::kPreAlloc:
      return "prealloc";
    case WriteStrategy::kDynamicAlloc:
      return "dynamic-alloc";
  }
  return "?";
}

Result<ExtensionStats> VertexExtend(EmbeddingTable* table,
                                    GraphAccessor* accessor,
                                    const VertexExtensionSpec& spec,
                                    const ExtensionOptions& options) {
  GAMMA_CHECK(table->kind() == TableKind::kVertex)
      << "VertexExtend on " << KindName(table->kind()) << " table";
  GAMMA_CHECK(table->length() > 0) << "extension of uninitialized table";
  const int len = table->length();
  for (int p : spec.intersect_positions) {
    GAMMA_CHECK(p >= 0 && p < len) << "intersect position out of range";
  }

  const graph::Graph& g = accessor->graph();
  Flattened flat = Flatten(*table);

  // Positions actually used to produce candidates.
  std::vector<int> positions = spec.intersect_positions;
  const bool union_mode = positions.empty();
  if (union_mode) {
    positions.resize(len);
    for (int j = 0; j < len; ++j) positions[j] = j;
  }

  // Frontier for the self-adaptive planner: every adjacency list the
  // kernels will touch, with multiplicity.
  {
    std::unordered_map<VertexId, uint64_t> times;
    for (std::size_t r = 0; r < flat.rows; ++r) {
      std::span<const Unit> row = flat.row(r);
      for (int p : positions) ++times[row[p]];
    }
    std::vector<std::pair<VertexId, uint64_t>> frontier(times.begin(),
                                                        times.end());
    accessor->PlanExtension(frontier);
  }

  // Prefix positions are shared within a pre-merge group.
  std::vector<int> prefix_positions;
  bool last_included = false;
  for (int p : positions) {
    if (p == len - 1) {
      last_included = true;
    } else {
      prefix_positions.push_back(p);
    }
  }
  const bool grouped = options.pre_merge && !union_mode &&
                       !prefix_positions.empty() && len >= 2;

  std::vector<WarpTask> tasks =
      BuildTasks(*table, grouped, options.rows_per_warp);

  ExtensionStats group_stats;
  group_stats.groups = grouped ? tasks.size() : 0;

  // Per-candidate filtering shared by both paths. Returns survivors.
  auto filter_and_emit = [&](gpusim::WarpCtx& w, std::size_t row,
                             std::span<const Unit> emb,
                             const std::vector<VertexId>& cands,
                             std::vector<Emit>* out) {
    if (spec.enforce_injective || spec.require_ascending) {
      w.ChargeSimtWork(cands.size() * len, 0.5);
    }
    if (spec.candidate_label != graph::Pattern::kAnyLabel) {
      // Warp-coalesced label fetch for the whole candidate list.
      accessor->ChargeLabelsBatch(w, cands);
    }
    for (VertexId cand : cands) {
      if (spec.require_ascending) {
        bool ascending = true;
        for (Unit u : emb) {
          if (cand <= u) {
            ascending = false;
            break;
          }
        }
        if (!ascending) continue;
      }
      if (spec.enforce_injective) {
        bool distinct = true;
        for (Unit u : emb) {
          if (u == cand) {
            distinct = false;
            break;
          }
        }
        if (!distinct) continue;
      }
      if (spec.candidate_label != graph::Pattern::kAnyLabel &&
          g.label(cand) != spec.candidate_label) {
        continue;  // label traffic charged batched above
      }
      if (spec.post_filter) {
        w.ChargeCompute(options.post_filter_cycles);
        if (!spec.post_filter(emb, cand)) continue;
      }
      out->push_back({cand, static_cast<RowIndex>(row)});
    }
  };

  auto intersect = [&options](gpusim::WarpCtx& w,
                              std::span<const VertexId> a,
                              std::span<const VertexId> b,
                              std::vector<VertexId>* out) {
    if (options.adaptive_intersection) {
      IntersectAdaptive(w, a, b, out);
    } else {
      IntersectSorted(w, a, b, out);
    }
  };

  RowRangeGenerator generate = [&](gpusim::WarpCtx& w, std::size_t lo,
                                   std::size_t hi,
                                   std::vector<Emit>* out) -> std::size_t {
    std::size_t raw_candidates = 0;
    ChargeTableRead(w, *table, lo, hi);
    std::vector<VertexId> merged, scratch, cands;
    if (grouped) {
      // One warp per group: hoist the prefix intersection L_m.
      std::span<const Unit> prefix = flat.row(lo);
      bool first = true;
      for (int p : prefix_positions) {
        auto adj = accessor->ReadAdjacency(w, prefix[p]);
        if (first) {
          merged.assign(adj.begin(), adj.end());
          first = false;
        } else {
          intersect(w, merged, adj, &scratch);
          merged.swap(scratch);
        }
      }
      for (std::size_t r = lo; r < hi; ++r) {
        std::span<const Unit> emb = flat.row(r);
        if (last_included) {
          auto adj = accessor->ReadAdjacency(w, emb[len - 1]);
          intersect(w, merged, adj, &cands);
        } else {
          cands.assign(merged.begin(), merged.end());
          w.ChargeSimtWork(merged.size(), 0.25);
        }
        raw_candidates += cands.size();
        filter_and_emit(w, r, emb, cands, out);
      }
    } else {
      for (std::size_t r = lo; r < hi; ++r) {
        std::span<const Unit> emb = flat.row(r);
        bool first = true;
        for (int p : positions) {
          auto adj = accessor->ReadAdjacency(w, emb[p]);
          if (first) {
            merged.assign(adj.begin(), adj.end());
            first = false;
            continue;
          }
          if (union_mode) {
            UnionSorted(w, merged, adj, &scratch);
          } else {
            intersect(w, merged, adj, &scratch);
          }
          merged.swap(scratch);
        }
        raw_candidates += merged.size();
        filter_and_emit(w, r, emb, merged, out);
      }
    }
    return raw_candidates;
  };

  auto result = RunExtension(table, accessor, options, tasks, generate,
                             g.max_degree());
  if (result.ok()) {
    result.value().groups = group_stats.groups;
  }
  return result;
}

bool IsCanonicalEdgeExtension(const graph::Graph& g,
                              std::span<const Unit> edges, Unit e) {
  // Canonical sequence of a connected edge set: start at the smallest edge
  // id; repeatedly append the smallest id adjacent (sharing a vertex) to
  // the prefix. The extension is canonical iff that sequence equals
  // (edges..., e).
  const std::size_t k = edges.size() + 1;
  std::vector<Unit> want(edges.begin(), edges.end());
  want.push_back(e);

  std::vector<Unit> pool = want;
  std::sort(pool.begin(), pool.end());
  if (pool.front() != want.front()) return false;

  auto touches = [&g](Unit edge_id, const std::vector<VertexId>& verts) {
    const graph::Edge& ed = g.edge_list()[edge_id];
    for (VertexId v : verts) {
      if (ed.u == v || ed.v == v) return true;
    }
    return false;
  };

  std::vector<VertexId> verts;
  std::vector<bool> used(k, false);
  // Seed with the smallest edge (must be want[0]).
  used[std::find(pool.begin(), pool.end(), want[0]) - pool.begin()] = true;
  verts.push_back(g.edge_list()[want[0]].u);
  verts.push_back(g.edge_list()[want[0]].v);

  for (std::size_t step = 1; step < k; ++step) {
    // Smallest unused edge adjacent to the prefix.
    Unit pick = graph::Graph::kInvalidEdge;
    std::size_t pick_idx = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (used[i]) continue;
      if (touches(pool[i], verts)) {
        pick = pool[i];
        pick_idx = i;
        break;  // pool is sorted, the first hit is the smallest.
      }
    }
    if (pick == graph::Graph::kInvalidEdge) return false;  // disconnected
    if (pick != want[step]) return false;
    used[pick_idx] = true;
    const graph::Edge& ed = g.edge_list()[pick];
    if (std::find(verts.begin(), verts.end(), ed.u) == verts.end())
      verts.push_back(ed.u);
    if (std::find(verts.begin(), verts.end(), ed.v) == verts.end())
      verts.push_back(ed.v);
  }
  return true;
}

Result<ExtensionStats> EdgeExtend(EmbeddingTable* table,
                                  GraphAccessor* accessor,
                                  const EdgeExtensionSpec& spec,
                                  const ExtensionOptions& options) {
  GAMMA_CHECK(table->kind() == TableKind::kEdge)
      << "EdgeExtend on " << KindName(table->kind()) << " table";
  GAMMA_CHECK(table->length() > 0) << "extension of uninitialized table";
  const graph::Graph& g = accessor->graph();
  GAMMA_CHECK(!g.edge_list().empty()) << "edge index required";
  const int len = table->length();

  Flattened flat = Flatten(*table);

  // Vertex set of each embedding (host-side truth; charged reads happen in
  // the kernel via ReadEdgeEndpoints).
  auto verts_of = [&g](std::span<const Unit> edges,
                       std::vector<VertexId>* out) {
    out->clear();
    for (Unit e : edges) {
      const graph::Edge& ed = g.edge_list()[e];
      if (std::find(out->begin(), out->end(), ed.u) == out->end())
        out->push_back(ed.u);
      if (std::find(out->begin(), out->end(), ed.v) == out->end())
        out->push_back(ed.v);
    }
  };

  // Frontier: adjacency of every embedding vertex.
  {
    std::unordered_map<VertexId, uint64_t> times;
    std::vector<VertexId> verts;
    for (std::size_t r = 0; r < flat.rows; ++r) {
      verts_of(flat.row(r), &verts);
      for (VertexId v : verts) ++times[v];
    }
    std::vector<std::pair<VertexId, uint64_t>> frontier(times.begin(),
                                                        times.end());
    accessor->PlanExtension(frontier);
  }

  const bool grouped = options.pre_merge && len >= 2;
  std::vector<WarpTask> tasks =
      BuildTasks(*table, grouped, options.rows_per_warp);

  auto filter_and_emit = [&](gpusim::WarpCtx& w, std::size_t row,
                             std::span<const Unit> emb,
                             const std::vector<graph::EdgeId>& cands,
                             std::vector<Emit>* out) {
    for (graph::EdgeId cand : cands) {
      bool fresh = true;
      for (Unit u : emb) {
        if (u == cand) {
          fresh = false;
          break;
        }
      }
      if (!fresh) continue;
      if (spec.canonical_only) {
        w.ChargeCompute(static_cast<double>(len * len));
        if (!IsCanonicalEdgeExtension(g, emb, cand)) continue;
      }
      if (spec.post_filter) {
        w.ChargeCompute(options.post_filter_cycles);
        if (!spec.post_filter(emb, cand)) continue;
      }
      out->push_back({cand, static_cast<RowIndex>(row)});
    }
  };

  // Gathers candidate edge ids adjacent to `verts` into `out` (sorted,
  // deduplicated), charging the adjacency reads.
  auto gather = [&](gpusim::WarpCtx& w, const std::vector<VertexId>& verts,
                    std::vector<graph::EdgeId>* out) {
    out->clear();
    for (VertexId v : verts) {
      auto [nbrs, eids] = accessor->ReadAdjacencyWithEids(w, v);
      (void)nbrs;
      out->insert(out->end(), eids.begin(), eids.end());
    }
    w.ChargeSimtWork(out->size() ? out->size() *
                                       static_cast<std::size_t>(std::log2(
                                           out->size() + 1))
                                 : 0,
                     0.25);
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
  };

  RowRangeGenerator generate = [&](gpusim::WarpCtx& w, std::size_t lo,
                                   std::size_t hi,
                                   std::vector<Emit>* out) -> std::size_t {
    std::size_t raw_candidates = 0;
    ChargeTableRead(w, *table, lo, hi);
    std::vector<VertexId> verts, last_verts;
    std::vector<graph::EdgeId> base, extra, cands;
    if (grouped) {
      // Hoist the shared prefix's incident edges.
      std::span<const Unit> prefix = flat.row(lo);
      verts_of(prefix.subspan(0, len - 1), &verts);
      for (int j = 0; j + 1 < len; ++j) {
        (void)accessor->ReadEdgeEndpoints(w, prefix[j]);
      }
      gather(w, verts, &base);
      for (std::size_t r = lo; r < hi; ++r) {
        std::span<const Unit> emb = flat.row(r);
        const graph::Edge& last = g.edge_list()[emb[len - 1]];
        (void)accessor->ReadEdgeEndpoints(w, emb[len - 1]);
        last_verts.clear();
        if (std::find(verts.begin(), verts.end(), last.u) == verts.end())
          last_verts.push_back(last.u);
        if (std::find(verts.begin(), verts.end(), last.v) == verts.end())
          last_verts.push_back(last.v);
        gather(w, last_verts, &extra);
        cands.clear();
        cands.reserve(base.size() + extra.size());
        std::set_union(base.begin(), base.end(), extra.begin(), extra.end(),
                       std::back_inserter(cands));
        w.ChargeSimtWork(base.size() + extra.size(), 0.25);
        raw_candidates += cands.size();
        filter_and_emit(w, r, emb, cands, out);
      }
    } else {
      for (std::size_t r = lo; r < hi; ++r) {
        std::span<const Unit> emb = flat.row(r);
        accessor->ChargeEdgeEndpointsBatch(w, emb[0], emb.size());
        verts_of(emb, &verts);
        gather(w, verts, &cands);
        raw_candidates += cands.size();
        filter_and_emit(w, r, emb, cands, out);
      }
    }
    return raw_candidates;
  };

  // Worst case new edges per row: every incident edge of every endpoint.
  std::size_t worst = static_cast<std::size_t>(g.max_degree()) *
                      static_cast<std::size_t>(len + 1);
  auto result = RunExtension(table, accessor, options, tasks, generate,
                             std::max<std::size_t>(1, worst));
  if (result.ok() && grouped) result.value().groups = tasks.size();
  return result;
}

}  // namespace gpm::core
