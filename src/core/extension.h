#ifndef GAMMA_CORE_EXTENSION_H_
#define GAMMA_CORE_EXTENSION_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/adaptive_access.h"
#include "core/embedding_table.h"
#include "core/memory_pool.h"
#include "graph/pattern.h"

namespace gpm::core {

/// How a kernel resolves the parallel-write conflict (§V-B, Challenge 1).
enum class WriteStrategy : uint8_t {
  /// Pangolin: run the extension twice — count, scan, then re-extend and
  /// write at exact offsets. No extra space, double compute.
  kNaiveTwoPass,
  /// GSI: preallocate worst-case space (rows x d_max) per kernel; chunks
  /// shrink to fit, wasting bandwidth on the sparse result buffer, and the
  /// kernel fails outright when even one row's worst case does not fit.
  kPreAlloc,
  /// GAMMA Optimization 1: warp-owned blocks from a device memory pool.
  kDynamicAlloc,
};

const char* WriteStrategyName(WriteStrategy strategy);

/// Tuning knobs shared by both extension primitives.
struct ExtensionOptions {
  WriteStrategy write_strategy = WriteStrategy::kDynamicAlloc;
  /// Optimization 2: group embeddings sharing a parent and hoist the
  /// prefix adjacency intersection out of the per-row loop.
  bool pre_merge = true;
  /// Rows per warp task when not grouping by prefix. Fine granularity
  /// keeps the warp-slot makespan balanced on skewed graphs (hub rows
  /// cluster together in the table).
  std::size_t rows_per_warp = 16;
  /// Embedding rows processed per kernel launch (out-of-core chunking).
  std::size_t chunk_rows = 1 << 16;
  /// Execution streams for the chunk pipeline. 1 = the historical fully
  /// synchronous path (bit-identical cycle totals). >= 2 enables the
  /// double-buffered pipeline: chunk i+1's extension kernels run on a
  /// compute stream while chunk i's column flush (and host append) drains
  /// on a copy stream, with events guarding buffer-half reuse. Functional
  /// results are identical either way; only the simulated timeline
  /// changes.
  std::size_t num_streams = 1;
  /// Device write buffer (the memory pool).
  std::size_t pool_bytes = 4ull << 20;
  /// Pool block size (paper: 8 KB).
  std::size_t block_bytes = 8192;
  /// Cycles charged per post_filter invocation.
  double post_filter_cycles = 4.0;
  /// Adaptive list intersection: gallop (binary-search the larger list)
  /// when list sizes are lopsided, merge otherwise. Disable to force
  /// merge-only intersection (ablation).
  bool adaptive_intersection = true;
  /// Count-only mode: the extension tallies surviving candidates but
  /// materializes no new column (no pool traffic, no flush). The standard
  /// final-level optimization for counting workloads — the paper's
  /// embedding table is only needed when a further extension or
  /// aggregation will read it.
  bool count_only = false;
  /// Fault injection for the sanitizer's racecheck tests: skips the event
  /// wait that guards buffer-half reuse in the double-buffered pipeline,
  /// recreating the bug class the guard exists to prevent (compute stream
  /// writes a half whose flush is still in flight on the copy stream).
  /// Never set outside tests; results stay correct (the simulation is
  /// functional), only the simulated ordering becomes unsound.
  bool unsafe_skip_buffer_guard = false;
};

/// Outcome of one extension primitive call.
struct ExtensionStats {
  std::size_t input_rows = 0;
  std::size_t candidates = 0;  ///< before filtering
  std::size_t results = 0;     ///< rows appended
  std::size_t chunks = 0;      ///< kernel launches
  std::size_t groups = 0;      ///< pre-merge groups processed
  double kernel_cycles = 0;
};

/// Candidate specification for vertex extension (v-ET).
struct VertexExtensionSpec {
  /// Columns whose data vertices' adjacency lists are intersected to form
  /// the candidate set. Empty => union of all columns' neighborhoods
  /// (Definition 3.1's N_v(M)) instead of an intersection.
  std::vector<int> intersect_positions;
  /// Candidate must carry this label (kAnyLabel = no constraint).
  graph::Label candidate_label = graph::Pattern::kAnyLabel;
  /// Candidate id must exceed every matched vertex (clique orientation).
  bool require_ascending = false;
  /// Candidate must differ from every matched vertex.
  bool enforce_injective = true;
  /// Optional extra predicate over (embedding, candidate); charged
  /// `post_filter_cycles` per call.
  std::function<bool(std::span<const Unit>, Unit)> post_filter;
};

/// Candidate specification for edge extension (e-ET).
struct EdgeExtensionSpec {
  /// Keep only canonical insertion sequences, so every connected edge set
  /// is produced exactly once (Arabesque-style canonicality).
  bool canonical_only = true;
  /// Optional extra predicate over (embedding edge ids, candidate edge id).
  std::function<bool(std::span<const Unit>, Unit)> post_filter;
};

/// Extends every embedding of the v-ET by one vertex (Ext_v, Def. 3.1) and
/// appends the new column. Fails with kDeviceOutOfMemory when the write
/// strategy cannot reserve its device buffers.
Result<ExtensionStats> VertexExtend(EmbeddingTable* table,
                                    GraphAccessor* accessor,
                                    const VertexExtensionSpec& spec,
                                    const ExtensionOptions& options);

/// Extends every embedding of the e-ET by one adjacent edge (Ext_e) and
/// appends the new column. Requires the graph's edge index.
Result<ExtensionStats> EdgeExtend(EmbeddingTable* table,
                                  GraphAccessor* accessor,
                                  const EdgeExtensionSpec& spec,
                                  const ExtensionOptions& options);

/// True when appending edge `e` to the (canonical) insertion sequence
/// `edges` yields the canonical sequence of the extended edge set. Exposed
/// for tests; EdgeExtend applies it when `canonical_only` is set.
bool IsCanonicalEdgeExtension(const graph::Graph& g,
                              std::span<const Unit> edges, Unit e);

}  // namespace gpm::core

#endif  // GAMMA_CORE_EXTENSION_H_
