#include "core/filtering.h"

#include <unordered_set>

#include "common/logging.h"
#include "gpusim/device.h"

namespace gpm::core {
namespace {

constexpr std::size_t kRowsPerWarp = 256;

FilterStats MarkAndCompact(EmbeddingTable* table,
                           const std::vector<uint8_t>& keep,
                           std::size_t predicate_rows, double mark_cycles,
                           const FilterOptions& options) {
  FilterStats stats;
  stats.checked = predicate_rows;
  for (uint8_t k : keep) {
    if (!k) ++stats.removed;
  }
  stats.kernel_cycles = mark_cycles;
  if (options.compress) {
    stats.compaction =
        CompactTable(table, keep, options.prune_ancestors);
    stats.kernel_cycles += stats.compaction.kernel_cycles;
  } else if (stats.removed > 0) {
    // Without compression the invalid rows stay as holes; model the flag
    // column that downstream kernels must consult.
    std::vector<uint8_t> dense(keep);
    (void)dense;
  }
  return stats;
}

}  // namespace

FilterStats FilterEmbeddings(
    EmbeddingTable* table,
    const std::function<bool(std::span<const Unit>)>& keep,
    const FilterOptions& options) {
  const std::size_t rows = table->num_embeddings();
  const int len = table->length();
  std::vector<uint8_t> marks(rows, 1);
  gpusim::Device* device = table->device();

  double cycles = 0;
  if (rows > 0) {
    std::size_t tasks = (rows + kRowsPerWarp - 1) / kRowsPerWarp;
    cycles = device->LaunchKernel(tasks, [&](gpusim::WarpCtx& w,
                                             std::size_t t) {
      std::size_t lo = t * kRowsPerWarp;
      std::size_t hi = std::min(rows, lo + kRowsPerWarp);
      table->ChargeColumnRead(w, len - 1, lo, hi - lo);
      w.ChargeSimtWork(hi - lo, options.predicate_cycles);
      for (std::size_t r = lo; r < hi; ++r) {
        std::vector<Unit> emb =
            table->GetEmbedding(len - 1, static_cast<RowIndex>(r));
        marks[r] = keep(emb) ? 1 : 0;
      }
      w.DeviceWrite(hi - lo);
    },
    "filter-mark");
  }
  return MarkAndCompact(table, marks, rows, cycles, options);
}

FilterStats FilterByPattern(EmbeddingTable* table,
                            const std::vector<uint64_t>& codes,
                            const PatternTable& pt,
                            const FilterOptions& options) {
  GAMMA_CHECK(codes.size() == table->num_embeddings())
      << "codes misaligned with table";
  std::unordered_set<uint64_t> invalid = pt.InvalidCodes();
  const std::size_t rows = codes.size();
  std::vector<uint8_t> marks(rows, 1);
  gpusim::Device* device = table->device();

  double cycles = 0;
  if (rows > 0 && !invalid.empty()) {
    std::size_t tasks = (rows + kRowsPerWarp - 1) / kRowsPerWarp;
    cycles = device->LaunchKernel(tasks, [&](gpusim::WarpCtx& w,
                                             std::size_t t) {
      std::size_t lo = t * kRowsPerWarp;
      std::size_t hi = std::min(rows, lo + kRowsPerWarp);
      w.DeviceRead((hi - lo) * sizeof(uint64_t));
      w.ChargeSimtWork(hi - lo, options.predicate_cycles);
      for (std::size_t r = lo; r < hi; ++r) {
        marks[r] = invalid.count(codes[r]) ? 0 : 1;
      }
      w.DeviceWrite(hi - lo);
    },
    "filter-mark-pattern");
  }
  return MarkAndCompact(table, marks, rows, cycles, options);
}

}  // namespace gpm::core
