#ifndef GAMMA_CORE_FILTERING_H_
#define GAMMA_CORE_FILTERING_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/compaction.h"
#include "core/embedding_table.h"
#include "core/pattern_table.h"

namespace gpm::core {

struct FilterStats {
  std::size_t checked = 0;
  std::size_t removed = 0;
  double kernel_cycles = 0;
  CompactionResult compaction;
};

struct FilterOptions {
  /// Compress the table after marking (Fig. 6(c)); GAMMA always does, the
  /// ablation baselines may skip it.
  bool compress = true;
  /// Also drop ancestor rows that lost every descendant.
  bool prune_ancestors = true;
  /// Cycles charged per predicate evaluation.
  double predicate_cycles = 4.0;
};

/// The filtering primitive over embeddings: marks rows failing `keep`,
/// then compresses the table. `keep` sees the fully reconstructed
/// embedding (oldest unit first).
FilterStats FilterEmbeddings(
    EmbeddingTable* table,
    const std::function<bool(std::span<const Unit>)>& keep,
    const FilterOptions& options);

/// FPM-style filtering: drops embeddings whose pattern (per `codes`, as
/// returned by Aggregate) is invalid in `pt` (Algorithm 2, line 4).
FilterStats FilterByPattern(EmbeddingTable* table,
                            const std::vector<uint64_t>& codes,
                            const PatternTable& pt,
                            const FilterOptions& options);

}  // namespace gpm::core

#endif  // GAMMA_CORE_FILTERING_H_
