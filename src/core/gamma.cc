#include "core/gamma.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "gpusim/profile.h"

namespace gpm::core {

namespace {

// Phase names used for RunProfile attribution. Every primitive call on the
// engine lands in exactly one of these, so the per-phase counter deltas sum
// (with "prepare"/"init-table") to the run totals.
constexpr char kPhasePrepare[] = "prepare";
constexpr char kPhaseInitTable[] = "init-table";
constexpr char kPhaseVertexExtension[] = "vertex-extension";
constexpr char kPhaseEdgeExtension[] = "edge-extension";
constexpr char kPhaseAggregation[] = "aggregation";
constexpr char kPhaseFiltering[] = "filtering";

}  // namespace

GammaEngine::GammaEngine(gpusim::Device* device, const graph::Graph* graph,
                         const GammaOptions& options)
    : device_(device),
      graph_(graph),
      options_(options),
      accessor_(device, graph, options.access) {
  const GraphPlacement placement = options_.access.placement;
  const bool host_resident = placement == GraphPlacement::kHybridAdaptive ||
                             placement == GraphPlacement::kUnifiedOnly ||
                             placement == GraphPlacement::kZeroCopyOnly;
  if (options_.adaptivity_audit && host_resident) {
    audit_ = std::make_unique<AdaptivityAudit>(device_, placement);
    device_->set_access_observer(audit_.get());
    accessor_.set_audit(audit_.get());
  }
  if (options_.plan_profile) {
    plan_profiler_ = std::make_unique<PlanProfiler>();
  }
}

Status GammaEngine::Prepare() {
  GAMMA_CHECK(!prepared_) << "Prepare called twice";
  gpusim::PhaseScope phase(device_, &device_->profile(), kPhasePrepare);
  Status st = accessor_.Prepare();
  if (!st.ok()) return st;
  prepared_ = true;
  return Status::Ok();
}

Result<std::unique_ptr<EmbeddingTable>> GammaEngine::InitVertexTable(
    graph::Label label) {
  GAMMA_CHECK(prepared_) << "engine not prepared";
  gpusim::PhaseScope phase(device_, &device_->profile(), kPhaseInitTable);
  auto table = std::make_unique<EmbeddingTable>(
      device_, TableKind::kVertex, options_.device_resident_tables);
  std::vector<Unit> units;
  const std::size_t n = graph_->num_vertices();
  // Scan kernel over the label array: mark, scan, scatter matching ids.
  device_->LaunchKernel(
      std::max<std::size_t>(1, n / 4096),
      [&](gpusim::WarpCtx& w, std::size_t) {
        w.ZeroCopyRead(4096 * sizeof(graph::Label));
        w.ChargeSimtWork(4096);
        w.ChargeWarpScan();
      },
      "init-vertex-scan");
  for (graph::VertexId v = 0; v < n; ++v) {
    if (label == graph::Pattern::kAnyLabel || graph_->label(v) == label) {
      units.push_back(v);
    }
  }
  device_->CopyDeviceToHost(units.size() * sizeof(Unit));
  Status st = table->InitFirstColumn(std::move(units));
  if (!st.ok()) return st;
  return table;
}

Result<std::unique_ptr<EmbeddingTable>> GammaEngine::InitEdgeTable() {
  GAMMA_CHECK(prepared_) << "engine not prepared";
  gpusim::PhaseScope phase(device_, &device_->profile(), kPhaseInitTable);
  if (graph_->edge_list().empty()) {
    return Status::FailedPrecondition(
        "edge table requires the graph's edge index (EnsureEdgeIndex)");
  }
  auto table = std::make_unique<EmbeddingTable>(
      device_, TableKind::kEdge, options_.device_resident_tables);
  std::vector<Unit> units(graph_->edge_list().size());
  for (std::size_t e = 0; e < units.size(); ++e) {
    units[e] = static_cast<Unit>(e);
  }
  device_->ChargeHostWork(static_cast<double>(units.size()));
  Status st = table->InitFirstColumn(std::move(units));
  if (!st.ok()) return st;
  return table;
}

Result<std::unique_ptr<EmbeddingTable>> GammaEngine::InitVertexPairTable(
    graph::Label first_label, graph::Label second_label, bool ascending) {
  GAMMA_CHECK(prepared_) << "engine not prepared";
  gpusim::PhaseScope phase(device_, &device_->profile(), kPhaseInitTable);
  if (graph_->edge_list().empty()) {
    return Status::FailedPrecondition(
        "vertex pair table requires the graph's edge index "
        "(EnsureEdgeIndex)");
  }
  auto table = std::make_unique<EmbeddingTable>(
      device_, TableKind::kVertex, options_.device_resident_tables);
  const std::size_t m = graph_->edge_list().size();
  // Scan kernel over the edge list: mark matching pairs, scan, scatter.
  device_->LaunchKernel(
      std::max<std::size_t>(1, m / 4096),
      [&](gpusim::WarpCtx& w, std::size_t) {
        w.ZeroCopyRead(4096 * sizeof(graph::Edge));
        w.ChargeSimtWork(4096);
        w.ChargeWarpScan();
      },
      "init-vertex-pair-scan");
  auto label_ok = [&](graph::VertexId v, graph::Label want) {
    return want == graph::Pattern::kAnyLabel || graph_->label(v) == want;
  };
  std::vector<Unit> first;
  std::vector<Unit> second;
  for (const graph::Edge& e : graph_->edge_list()) {
    const graph::VertexId lo = std::min(e.u, e.v);
    const graph::VertexId hi = std::max(e.u, e.v);
    if (label_ok(lo, first_label) && label_ok(hi, second_label)) {
      first.push_back(lo);
      second.push_back(hi);
    }
    if (ascending) continue;
    if (label_ok(hi, first_label) && label_ok(lo, second_label)) {
      first.push_back(hi);
      second.push_back(lo);
    }
  }
  std::vector<RowIndex> parents(second.size());
  for (std::size_t i = 0; i < parents.size(); ++i) {
    parents[i] = static_cast<RowIndex>(i);
  }
  device_->CopyDeviceToHost((first.size() + second.size()) * sizeof(Unit));
  Status st = table->InitFirstColumn(std::move(first));
  if (!st.ok()) return st;
  st = table->AppendColumn(std::move(second), std::move(parents));
  if (!st.ok()) return st;
  return table;
}

Result<ExtensionStats> GammaEngine::VertexExtension(
    EmbeddingTable* et, const VertexExtensionSpec& spec) {
  GAMMA_CHECK(prepared_) << "engine not prepared";
  gpusim::PhaseScope phase(device_, &device_->profile(),
                           kPhaseVertexExtension);
  return VertexExtend(et, &accessor_, spec, options_.extension);
}

Result<ExtensionStats> GammaEngine::EdgeExtension(
    EmbeddingTable* et, const EdgeExtensionSpec& spec) {
  GAMMA_CHECK(prepared_) << "engine not prepared";
  gpusim::PhaseScope phase(device_, &device_->profile(), kPhaseEdgeExtension);
  return EdgeExtend(et, &accessor_, spec, options_.extension);
}

Result<AggregationResult> GammaEngine::Aggregation(const EmbeddingTable& et,
                                                   PatternTable* pt) {
  GAMMA_CHECK(prepared_) << "engine not prepared";
  gpusim::PhaseScope phase(device_, &device_->profile(), kPhaseAggregation);
  return Aggregate(et, &accessor_, pt, options_.aggregation);
}

FilterStats GammaEngine::Filtering(
    EmbeddingTable* et,
    const std::function<bool(std::span<const Unit>)>& constraint) {
  GAMMA_CHECK(prepared_) << "engine not prepared";
  gpusim::PhaseScope phase(device_, &device_->profile(), kPhaseFiltering);
  return FilterEmbeddings(et, constraint, options_.filter);
}

FilterStats GammaEngine::Filtering(EmbeddingTable* et,
                                   const std::vector<uint64_t>& codes,
                                   const PatternTable& pt) {
  GAMMA_CHECK(prepared_) << "engine not prepared";
  gpusim::PhaseScope phase(device_, &device_->profile(), kPhaseFiltering);
  return FilterByPattern(et, codes, pt, options_.filter);
}

std::string GammaEngine::OutputResults(const EmbeddingTable* et,
                                       const PatternTable* pt) const {
  std::ostringstream os;
  if (et != nullptr) {
    os << et->num_embeddings() << " embeddings of length " << et->length();
  }
  if (pt != nullptr) {
    if (et != nullptr) os << "; ";
    os << pt->DebugString();
  }
  return os.str();
}

}  // namespace gpm::core
