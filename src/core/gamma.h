#ifndef GAMMA_CORE_GAMMA_H_
#define GAMMA_CORE_GAMMA_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/adaptive_access.h"
#include "core/adaptivity_audit.h"
#include "core/aggregation.h"
#include "core/extension.h"
#include "core/filtering.h"
#include "core/pattern_table.h"
#include "core/plan_profiler.h"
#include "gpusim/device.h"
#include "graph/csr.h"

namespace gpm::core {

/// End-to-end configuration of a GAMMA run.
struct GammaOptions {
  GraphAccessor::Options access;
  ExtensionOptions extension;
  AggregationOptions aggregation;
  FilterOptions filter;
  /// In-core mode: embedding tables live in device memory and runs fail
  /// with kDeviceOutOfMemory when they outgrow it (baseline behaviour).
  bool device_resident_tables = false;
  /// Attaches a core::AdaptivityAudit for the run: per-extension decision
  /// records plus counterfactual unified-only/zero-copy-only shadow
  /// costing (gamma.adaptivity.v1). Only meaningful for the host-resident
  /// placements (hybrid/unified/zero-copy); ignored otherwise. Off by
  /// default — observing is read-only, but the shadow replay costs real
  /// wall-clock time.
  bool adaptivity_audit = false;
  /// Attaches a core::PlanProfiler for the run: per-level estimate-vs-
  /// actual rows with Q-error, strategy provenance, resource-class
  /// attribution, and warp-slot load imbalance (gamma.planprof.v1).
  /// Observation only — a profiled run is bit-identical in cycles and
  /// DeviceStats to an unprofiled one. Attribution and slot histograms
  /// additionally need DeviceParams::record_commands.
  bool plan_profile = false;
};

/// The user-facing GAMMA framework façade (Fig. 3).
///
/// Owns the graph accessor and exposes the primitives —
/// VertexExtension / EdgeExtension / Aggregation / Filtering /
/// output_results — configured once through GammaOptions, so algorithm code
/// (Algorithms 1 and 2, kCL, ...) reads like the paper's pseudocode and
/// never touches host-memory access modes, intermediate-result management,
/// or the primitive optimizations.
class GammaEngine {
 public:
  GammaEngine(gpusim::Device* device, const graph::Graph* graph,
              const GammaOptions& options);

  GammaEngine(const GammaEngine&) = delete;
  GammaEngine& operator=(const GammaEngine&) = delete;

  /// Stages the graph on the platform. Must be called once before use.
  Status Prepare();

  // -- Embedding-table construction -----------------------------------------

  /// v-ET seeded with every vertex carrying `label` (kAnyLabel = all
  /// vertices). Charged as a scan kernel over the label array.
  Result<std::unique_ptr<EmbeddingTable>> InitVertexTable(
      graph::Label label = graph::Pattern::kAnyLabel);

  /// e-ET seeded with every undirected edge (all length-1 embeddings,
  /// Algorithm 2 line 1). Requires the graph's edge index.
  Result<std::unique_ptr<EmbeddingTable>> InitEdgeTable();

  /// v-ET seeded with the first two columns from one edge-list scan: every
  /// adjacent (u, v) pair whose endpoints carry `first_label` /
  /// `second_label` (kAnyLabel = all), both orientations unless
  /// `ascending` keeps only u < v (a folded (0,1) symmetry restriction).
  /// The edge-parallel start mode of compiled plans — it replaces the
  /// depth-1 vertex extension. Requires the graph's edge index.
  Result<std::unique_ptr<EmbeddingTable>> InitVertexPairTable(
      graph::Label first_label, graph::Label second_label, bool ascending);

  // -- Primitives (Fig. 3 interfaces) ---------------------------------------

  Result<ExtensionStats> VertexExtension(EmbeddingTable* et,
                                         const VertexExtensionSpec& spec);
  Result<ExtensionStats> EdgeExtension(EmbeddingTable* et,
                                       const EdgeExtensionSpec& spec);
  Result<AggregationResult> Aggregation(const EmbeddingTable& et,
                                        PatternTable* pt);
  FilterStats Filtering(EmbeddingTable* et,
                        const std::function<bool(std::span<const Unit>)>&
                            constraint);
  FilterStats Filtering(EmbeddingTable* et,
                        const std::vector<uint64_t>& codes,
                        const PatternTable& pt);

  /// Renders results for the user (embedding count or pattern supports).
  std::string OutputResults(const EmbeddingTable* et,
                            const PatternTable* pt) const;

  gpusim::Device* device() { return device_; }
  /// Per-phase time/traffic attribution of every primitive call made
  /// through this engine (lives on the device; see gpusim::RunProfile).
  const gpusim::RunProfile& profile() const { return device_->profile(); }
  const graph::Graph& graph() const { return *graph_; }
  GraphAccessor& accessor() { return accessor_; }
  const GammaOptions& options() const { return options_; }
  GammaOptions& mutable_options() { return options_; }

  /// The run's adaptivity audit, or nullptr when GammaOptions did not
  /// enable one (or the placement has no host-memory traffic to audit).
  AdaptivityAudit* audit() { return audit_.get(); }

  /// The run's plan profiler, or nullptr when GammaOptions did not enable
  /// one. CompiledEngine::Run brackets every plan level through it.
  PlanProfiler* plan_profiler() { return plan_profiler_.get(); }

 private:
  gpusim::Device* device_;
  const graph::Graph* graph_;
  GammaOptions options_;
  GraphAccessor accessor_;
  // Destroyed before accessor_/device_ users run down; the audit detaches
  // itself from the device on destruction.
  std::unique_ptr<AdaptivityAudit> audit_;
  std::unique_ptr<PlanProfiler> plan_profiler_;
  bool prepared_ = false;
};

}  // namespace gpm::core

#endif  // GAMMA_CORE_GAMMA_H_
