#include "core/intersection.h"

#include <algorithm>
#include <cmath>

namespace gpm::core {

void IntersectSorted(gpusim::WarpCtx& warp,
                     std::span<const graph::VertexId> a,
                     std::span<const graph::VertexId> b,
                     std::vector<graph::VertexId>* out) {
  out->clear();
  warp.ChargeSimtWork(a.size() + b.size());
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(*out));
}

void UnionSorted(gpusim::WarpCtx& warp, std::span<const graph::VertexId> a,
                 std::span<const graph::VertexId> b,
                 std::vector<graph::VertexId>* out) {
  out->clear();
  warp.ChargeSimtWork(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(*out));
}

void IntersectGalloping(gpusim::WarpCtx& warp,
                        std::span<const graph::VertexId> a,
                        std::span<const graph::VertexId> b,
                        std::vector<graph::VertexId>* out) {
  out->clear();
  std::span<const graph::VertexId> small = a.size() <= b.size() ? a : b;
  std::span<const graph::VertexId> large = a.size() <= b.size() ? b : a;
  double probes =
      large.empty() ? 1.0 : std::log2(static_cast<double>(large.size()) + 1);
  warp.ChargeSimtWork(small.size(), probes);
  for (graph::VertexId x : small) {
    if (std::binary_search(large.begin(), large.end(), x)) {
      out->push_back(x);
    }
  }
}

void IntersectAdaptive(gpusim::WarpCtx& warp,
                       std::span<const graph::VertexId> a,
                       std::span<const graph::VertexId> b,
                       std::vector<graph::VertexId>* out) {
  std::size_t small = std::min(a.size(), b.size());
  std::size_t large = std::max(a.size(), b.size());
  if (small == 0) {
    out->clear();
    return;
  }
  if (large / small >= kGallopRatio) {
    IntersectGalloping(warp, a, b, out);
  } else {
    IntersectSorted(warp, a, b, out);
  }
}

bool BinaryContains(gpusim::WarpCtx& warp,
                    std::span<const graph::VertexId> list,
                    graph::VertexId x) {
  double probes =
      list.empty() ? 1.0 : std::log2(static_cast<double>(list.size()) + 1);
  warp.ChargeCompute(probes);
  return std::binary_search(list.begin(), list.end(), x);
}

}  // namespace gpm::core
