#ifndef GAMMA_CORE_INTERSECTION_H_
#define GAMMA_CORE_INTERSECTION_H_

#include <span>
#include <vector>

#include "gpusim/warp.h"
#include "graph/csr.h"

namespace gpm::core {

/// Warp-parallel sorted-list primitives. Each helper both computes the
/// functional result and charges the calling warp with the SIMT cost of the
/// operation (merge-style intersection: one step per element pair scanned;
/// binary-search probes: log2 of the searched list per probe).

/// out = a ∩ b (both sorted ascending). Charged as a warp merge.
void IntersectSorted(gpusim::WarpCtx& warp,
                     std::span<const graph::VertexId> a,
                     std::span<const graph::VertexId> b,
                     std::vector<graph::VertexId>* out);

/// out = a ∩ b via galloping: every element of the smaller list binary-
/// searches the larger one. Charged |small| x log2(|large|) — the right
/// primitive when the lists are very different sizes (hub adjacency vs a
/// short intersection prefix).
void IntersectGalloping(gpusim::WarpCtx& warp,
                        std::span<const graph::VertexId> a,
                        std::span<const graph::VertexId> b,
                        std::vector<graph::VertexId>* out);

/// Picks merge vs galloping by size ratio (gallop when the larger list is
/// >= kGallopRatio times the smaller; the classic adaptive intersection).
inline constexpr std::size_t kGallopRatio = 16;
void IntersectAdaptive(gpusim::WarpCtx& warp,
                       std::span<const graph::VertexId> a,
                       std::span<const graph::VertexId> b,
                       std::vector<graph::VertexId>* out);

/// out = a ∪ b (both sorted ascending, dedup). Charged as a warp merge.
void UnionSorted(gpusim::WarpCtx& warp, std::span<const graph::VertexId> a,
                 std::span<const graph::VertexId> b,
                 std::vector<graph::VertexId>* out);

/// True iff `x` is in sorted `list`; charged as one binary-search probe.
bool BinaryContains(gpusim::WarpCtx& warp,
                    std::span<const graph::VertexId> list,
                    graph::VertexId x);

}  // namespace gpm::core

#endif  // GAMMA_CORE_INTERSECTION_H_
