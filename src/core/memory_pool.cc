#include "core/memory_pool.h"

#include "common/logging.h"
#include "gpusim/sanitizer.h"

namespace gpm::core {

MemoryPool::MemoryPool(gpusim::Device* device, const Options& options)
    : device_(device), options_(options) {
  writable_bytes_ =
      options_.double_buffered ? options_.pool_bytes / 2 : options_.pool_bytes;
  GAMMA_CHECK(options_.block_bytes > 0 &&
              writable_bytes_ >= options_.block_bytes)
      << "pool must hold at least one block";
  blocks_total_ = writable_bytes_ / options_.block_bytes;
}

Status MemoryPool::Reserve() {
  auto buf = gpusim::DeviceBuffer::Make(&device_->memory(),
                                        options_.pool_bytes);
  if (!buf.ok()) return buf.status();
  reservation_ = std::move(buf).value();
  if (gpusim::Sanitizer* san = device_->sanitizer()) {
    san->LabelObject(reservation_.id(), "memory-pool");
  }
  return Status::Ok();
}

void MemoryPool::GrabBlock(gpusim::WarpCtx& warp, WarpCursor* cursor,
                           std::size_t entry_bytes) {
  // Global atomic on the pool's allocation counter.
  warp.ChargeAtomic();
  ++device_->stats().pool_block_requests;
  if (blocks_handed_out_ >= blocks_total_) {
    // Pool exhausted mid-kernel: drain everything to host and restart the
    // allocation counter. The drain itself overlaps with other warps'
    // compute (it is PCIe traffic, folded into the kernel's link term);
    // the requesting warp pays the synchronization latency.
    std::size_t bytes = dirty_bytes_;
    if (gpusim::Sanitizer* san = device_->sanitizer();
        san != nullptr && reservation_.valid()) {
      // The drain reads every handed-out block of the writable half, from
      // inside the running kernel (shares its stream/epoch).
      san->OnKernelBulkAccess(reservation_.id(), ActiveHalfBase(),
                              blocks_handed_out_ * options_.block_bytes,
                              /*is_write=*/false, "pool-drain");
    }
    device_->stats().explicit_d2h_bytes += bytes;
    warp.ChargeCompute(device_->params().pcie_latency_cycles);
    warp.ChargeBlockSync();
    warp.AddPcieBytes(bytes);
    dirty_bytes_ = 0;
    blocks_handed_out_ = 0;
    ++mid_kernel_flushes_;
  }
  cursor->write_offset =
      ActiveHalfBase() + blocks_handed_out_ * options_.block_bytes;
  ++blocks_handed_out_;
  cursor->remaining_entries = options_.block_bytes / entry_bytes;
  cursor->owns_block = true;
}

void MemoryPool::WarpWrite(gpusim::WarpCtx& warp, WarpCursor* cursor,
                           std::size_t count, std::size_t entry_bytes) {
  if (warp.recording()) {
    // Block grabbing, drain decisions, and cursor arithmetic all read and
    // mutate pool state shared across warp tasks — re-run the whole write
    // during the ordered replay, where the context is immediate and task
    // order matches the serial schedule. Keeps every call site oblivious
    // to the execution mode.
    warp.Defer([this, cursor, count, entry_bytes](gpusim::WarpCtx& rw) {
      WarpWrite(rw, cursor, count, entry_bytes);
    });
    return;
  }
  while (count > 0) {
    if (cursor->remaining_entries == 0) {
      GrabBlock(warp, cursor, entry_bytes);
    }
    std::size_t take = std::min(count, cursor->remaining_entries);
    // Intra-warp positions come from a warp-level prefix scan (free SIMT
    // sync); the write itself is coalesced into the block.
    warp.ChargeWarpScan();
    warp.DeviceWrite(reservation_.id(), cursor->write_offset,
                     take * entry_bytes);
    cursor->write_offset += take * entry_bytes;
    dirty_bytes_ += take * entry_bytes;
    cursor->remaining_entries -= take;
    count -= take;
  }
}

void MemoryPool::EndWarpTask(WarpCursor* cursor) {
  if (cursor->owns_block && cursor->remaining_entries > 0) {
    ++device_->stats().pool_blocks_wasted;
  }
  cursor->remaining_entries = 0;
  cursor->owns_block = false;
}

std::size_t MemoryPool::FlushToHost(gpusim::StreamId stream) {
  std::size_t bytes = dirty_bytes_;
  if (bytes > 0) {
    if (gpusim::Sanitizer* san = device_->sanitizer();
        san != nullptr && reservation_.valid()) {
      // The flush reads the handed-out blocks of the half being flushed —
      // this is the access the racecheck compares against the next chunk's
      // writes when the pipeline reuses the half too early.
      san->OnBulkAccess(stream, reservation_.id(), ActiveHalfBase(),
                        blocks_handed_out_ * options_.block_bytes,
                        /*is_write=*/false, "pool-flush");
    }
    device_->CopyDeviceToHostAsync(stream, bytes);
  }
  dirty_bytes_ = 0;
  blocks_handed_out_ = 0;
  // The flushed half now belongs to the in-flight copy; new blocks come
  // from the other half until the next flush.
  if (options_.double_buffered) active_half_ ^= 1;
  return bytes;
}

}  // namespace gpm::core
