#ifndef GAMMA_CORE_MEMORY_POOL_H_
#define GAMMA_CORE_MEMORY_POOL_H_

#include <cstddef>

#include "common/status.h"
#include "gpusim/device.h"

namespace gpm::core {

/// Device write-buffer pool for extension results (Optimization 1, §V-B).
///
/// The available device write buffer is divided into fixed-size blocks; each
/// warp owns one block at a time and requests a fresh one (a global atomic)
/// when it fills. This removes the write conflict between warps without
/// Pangolin's count-then-write second pass or GSI's worst-case
/// preallocation. When every block is handed out mid-kernel, the pool is
/// flushed to host memory (all blocks drained over PCIe) and reused — this
/// is what lets a bounded device buffer absorb an unbounded result stream.
class MemoryPool {
 public:
  struct Options {
    std::size_t pool_bytes = 4ull << 20;  ///< total device buffer
    std::size_t block_bytes = 8192;       ///< paper's 8 KB blocks
    /// Double-buffered mode for the async extension pipeline: only half of
    /// the reserved pool is writable at a time — the other half belongs to
    /// the chunk whose flush is still in flight on the copy stream — so
    /// block capacity (and hence mid-kernel flush pressure) is halved.
    bool double_buffered = false;
  };

  MemoryPool(gpusim::Device* device, const Options& options);

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  /// Allocates the pool from device memory.
  Status Reserve();

  /// Per-warp cursor over the warp's current block.
  struct WarpCursor {
    std::size_t remaining_entries = 0;
    bool owns_block = false;
    /// Byte offset within the pool reservation where the warp's next write
    /// lands. Pure sanitizer attribution — maintained, never charged.
    std::size_t write_offset = 0;
  };

  /// Simulates the warp writing `count` entries of `entry_bytes` each.
  /// Grabs new blocks (atomic + possible pool flush) as needed.
  void WarpWrite(gpusim::WarpCtx& warp, WarpCursor* cursor,
                 std::size_t count, std::size_t entry_bytes);

  /// Marks the end of a warp task: a partially used block is waste the
  /// paper bounds by (#warps x block size).
  void EndWarpTask(WarpCursor* cursor);

  /// Drains all dirty blocks to host memory after a kernel; returns the
  /// flushed byte count. Charged as an explicit D2H copy ordered on
  /// `stream` (default: the synchronous timeline).
  std::size_t FlushToHost(gpusim::StreamId stream = gpusim::kDefaultStream);

  std::size_t blocks_total() const { return blocks_total_; }
  std::size_t mid_kernel_flushes() const { return mid_kernel_flushes_; }

  /// Which half of a double-buffered pool is writable right now (always 0
  /// when not double-buffered). FlushToHost hands the flushed half to the
  /// copy stream and toggles.
  std::size_t active_half() const { return active_half_; }

 private:
  void GrabBlock(gpusim::WarpCtx& warp, WarpCursor* cursor,
                 std::size_t entry_bytes);
  /// Byte offset of the writable half within the reservation.
  std::size_t ActiveHalfBase() const { return active_half_ * writable_bytes_; }

  gpusim::Device* device_;
  Options options_;
  gpusim::DeviceBuffer reservation_;
  std::size_t writable_bytes_ = 0;
  std::size_t blocks_total_ = 0;
  std::size_t blocks_handed_out_ = 0;  // since last flush
  std::size_t dirty_bytes_ = 0;        // written since last flush
  std::size_t mid_kernel_flushes_ = 0;
  std::size_t active_half_ = 0;
};

}  // namespace gpm::core

#endif  // GAMMA_CORE_MEMORY_POOL_H_
