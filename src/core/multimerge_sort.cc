#include "core/multimerge_sort.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"
#include "gpusim/sanitizer.h"

namespace gpm::core {
namespace {

constexpr std::size_t kKeyBytes = sizeof(uint64_t);
// Host sorts have no 10k-thread parallelism; cycles per compare-move step.
constexpr double kCpuCyclesPerStep = 12.0;

double Log2Of(std::size_t n) {
  return std::log2(static_cast<double>(n) + 2.0);
}

// In-core sort of one segment: H2D, bitonic-style kernel, D2H, all ordered
// on `stream` (default stream = the historical synchronous path).
double ChargeSegmentSort(gpusim::Device* device, std::size_t elems,
                         gpusim::StreamId stream = gpusim::kDefaultStream) {
  if (elems == 0) return 0;
  double cycles = 0;
  // The staging buffer is charged conceptually (the simulator holds the
  // keys in host vectors); a shadow-only scratch gives the sanitizer an
  // allocation to bounds-check the kernel's accesses against. No-op when
  // no sanitizer is attached.
  gpusim::SanitizerScratch scratch(device, "sort-segment-buffer",
                                   elems * kKeyBytes);
  if (gpusim::Sanitizer* san = device->sanitizer()) {
    san->OnBulkAccess(stream, scratch.handle(), 0, elems * kKeyBytes,
                      /*is_write=*/true, "sort-h2d");
  }
  cycles += device->CopyHostToDeviceAsync(stream, elems * kKeyBytes);
  const std::size_t kElemsPerTask = 4096;
  std::size_t tasks = (elems + kElemsPerTask - 1) / kElemsPerTask;
  double log_n = Log2Of(elems);
  cycles += device->LaunchKernelAsync(stream, tasks,
                                      [&](gpusim::WarpCtx& w, std::size_t t) {
    std::size_t lo = t * kElemsPerTask;
    std::size_t n = std::min(elems, lo + kElemsPerTask) - lo;
    w.DeviceRead(scratch.handle(), lo * kKeyBytes, n * kKeyBytes);
    // Bitonic/merge network: log^2(n) passes over the task's share.
    w.ChargeSimtWork(n, log_n * log_n * 0.5);
    w.DeviceWrite(scratch.handle(), lo * kKeyBytes, n * kKeyBytes);
  },
  "sort-segment");
  if (gpusim::Sanitizer* san = device->sanitizer()) {
    san->OnBulkAccess(stream, scratch.handle(), 0, elems * kKeyBytes,
                      /*is_write=*/false, "sort-d2h");
  }
  cycles += device->CopyDeviceToHostAsync(stream, elems * kKeyBytes);
  return cycles;
}

// Multi-merge of sorted segments (Algorithm 3), shared by the GAMMA and
// naive methods; `halved_searches` applies Optimization 3's ordered-pair +
// prefix-sum saving.
SortStats MultiMerge(gpusim::Device* device,
                     std::vector<std::vector<uint64_t>>* segments,
                     std::vector<uint64_t>* out, std::size_t p_size,
                     bool halved_searches) {
  SortStats stats;
  const std::size_t n = segments->size();

  // Collect checkpoints: every p_size-th element of each segment.
  std::vector<uint64_t> checkpoints;
  for (const auto& seg : *segments) {
    for (std::size_t i = p_size; i < seg.size(); i += p_size) {
      checkpoints.push_back(seg[i]);
    }
  }
  std::sort(checkpoints.begin(), checkpoints.end());
  checkpoints.erase(std::unique(checkpoints.begin(), checkpoints.end()),
                    checkpoints.end());

  // Matched indices of every checkpoint in every segment (block-wise
  // parallel on device; charged as one kernel).
  std::vector<std::vector<std::size_t>> splits(n);
  double log_seg = 0;
  for (const auto& seg : *segments) log_seg = std::max(log_seg, Log2Of(seg.size()));
  stats.cycles += device->LaunchKernel(
      std::max<std::size_t>(1, n), [&](gpusim::WarpCtx& w, std::size_t i) {
        const auto& seg = (*segments)[i];
        w.ZeroCopyRead(checkpoints.size() * kKeyBytes);
        w.ChargeSimtWork(checkpoints.size(), log_seg);
        splits[i].reserve(checkpoints.size() + 2);
        splits[i].push_back(0);
        for (uint64_t c : checkpoints) {
          splits[i].push_back(MatchedIndex(seg, c));
        }
        splits[i].push_back(seg.size());
      },
      "sort-matched-index");

  // One merge subtask per checkpoint interval; warp-wise merging.
  const std::size_t num_subtasks = checkpoints.size() + 1;
  stats.subtasks = num_subtasks;
  std::vector<std::vector<uint64_t>> merged(num_subtasks);
  stats.cycles += device->LaunchKernel(
      num_subtasks, [&](gpusim::WarpCtx& w, std::size_t o) {
        // Gather the o-th slice of every segment.
        std::size_t m = 0;
        std::vector<std::pair<const uint64_t*, const uint64_t*>> slices;
        for (std::size_t i = 0; i < n; ++i) {
          const auto& seg = (*segments)[i];
          std::size_t lo = splits[i][o];
          std::size_t hi = splits[i][o + 1];
          slices.emplace_back(seg.data() + lo, seg.data() + hi);
          m += hi - lo;
        }
        // The slices live in host memory (segments were written back after
        // the in-core sorts); read them in and write the merged run out.
        w.ZeroCopyRead(m * kKeyBytes);
        // Searches run one element per SIMT lane (thread-wise searching
        // in Algorithm 3), log2(p_size) steps each.
        std::size_t searches = m * (n > 0 ? n - 1 : 0);
        if (halved_searches) {
          // Only S_j over S_k for j > k; the reverse direction comes from
          // the prefix-sum over matched counts (Fig. 9(c)).
          w.ChargeSimtWork(searches / 2, Log2Of(p_size));
          w.ChargeSimtWork(searches / 2, 0.25);  // prefix-sum passes
          w.ChargeWarpScan();
        } else {
          w.ChargeSimtWork(searches, Log2Of(p_size));
        }
        w.ZeroCopyWrite(m * kKeyBytes);

        // Functional n-way merge of the slices.
        auto& out_run = merged[o];
        out_run.reserve(m);
        using HeapItem = std::pair<uint64_t, std::size_t>;
        std::priority_queue<HeapItem, std::vector<HeapItem>,
                            std::greater<HeapItem>>
            heap;
        auto cursors = slices;
        for (std::size_t i = 0; i < cursors.size(); ++i) {
          if (cursors[i].first != cursors[i].second) {
            heap.emplace(*cursors[i].first, i);
          }
        }
        while (!heap.empty()) {
          auto [v, i] = heap.top();
          heap.pop();
          out_run.push_back(v);
          ++cursors[i].first;
          if (cursors[i].first != cursors[i].second) {
            heap.emplace(*cursors[i].first, i);
          }
        }
            },
      "sort-merge");

  out->clear();
  for (auto& run : merged) {
    out->insert(out->end(), run.begin(), run.end());
  }
  return stats;
}

}  // namespace

const char* SortMethodName(SortMethod method) {
  switch (method) {
    case SortMethod::kGammaMultiMerge:
      return "gamma-multimerge";
    case SortMethod::kNaiveMerge:
      return "naive-merge";
    case SortMethod::kXtr2Sort:
      return "xtr2sort";
    case SortMethod::kCpuSort:
      return "cpu-sort";
  }
  return "?";
}

std::size_t MatchedIndex(const std::vector<uint64_t>& s, uint64_t x) {
  return static_cast<std::size_t>(
      std::lower_bound(s.begin(), s.end(), x) - s.begin());
}

Result<SortStats> SortKeys(gpusim::Device* device,
                           std::vector<uint64_t>* keys,
                           const SortOptions& options) {
  SortStats stats;
  stats.keys = keys->size();
  const std::size_t n = keys->size();
  if (n <= 1) return stats;

  // gamma-prof: everything charged under the sort subtree (partition /
  // segment / merge kernels and host merges) is attributed to the kSort
  // resource class; memory traffic keeps its memory class.
  gpusim::SortActivityScope sort_activity(device);

  if (options.method == SortMethod::kCpuSort) {
    double log_n = Log2Of(n);
    device->ChargeHostWork(static_cast<double>(n) * log_n *
                           kCpuCyclesPerStep);
    std::sort(keys->begin(), keys->end());
    stats.segments = 1;
    return stats;
  }

  std::size_t segment_bytes = options.segment_bytes;
  if (segment_bytes == 0) {
    segment_bytes = device->memory().available_bytes() / 2;
  }
  if (segment_bytes < 4096) {
    return Status::DeviceOutOfMemory(
        "not enough device memory for a sort segment");
  }
  const std::size_t seg_elems = segment_bytes / kKeyBytes;
  if (options.in_core_only && n > seg_elems) {
    return Status::DeviceOutOfMemory(
        "in-core sort of " + std::to_string(n * kKeyBytes) +
        " bytes exceeds the device sort buffer (" +
        std::to_string(segment_bytes) + " bytes)");
  }

  if (options.method == SortMethod::kXtr2Sort) {
    // Sample splitters from the unsorted input (stride sample), partition
    // every key over the link, then sort each bucket in core. Bucket skew
    // is whatever the sample produces — that is xtr2sort's weakness.
    std::size_t num_buckets =
        std::max<std::size_t>(1, (n + seg_elems - 1) / seg_elems);
    std::vector<uint64_t> sample;
    std::size_t stride = std::max<std::size_t>(1, n / (num_buckets * 32));
    for (std::size_t i = 0; i < n; i += stride) sample.push_back((*keys)[i]);
    std::sort(sample.begin(), sample.end());
    std::vector<uint64_t> splitters;
    for (std::size_t b = 1; b < num_buckets; ++b) {
      splitters.push_back(sample[b * sample.size() / num_buckets]);
    }
    // Partition pass: read all keys, write them into buckets (host side).
    stats.cycles += device->LaunchKernel(
        std::max<std::size_t>(1, n / 4096),
        [&](gpusim::WarpCtx& w, std::size_t) {
          std::size_t share = 4096;
          w.ZeroCopyRead(share * kKeyBytes);
          w.ChargeSimtWork(share, Log2Of(splitters.size()));
          w.ZeroCopyWrite(share * kKeyBytes);
        });
    std::vector<std::vector<uint64_t>> buckets(num_buckets);
    for (uint64_t k : *keys) {
      std::size_t b = static_cast<std::size_t>(
          std::upper_bound(splitters.begin(), splitters.end(), k) -
          splitters.begin());
      buckets[b].push_back(k);
    }
    keys->clear();
    for (auto& bucket : buckets) {
      // Oversized buckets need multiple in-core rounds (extra passes).
      std::size_t rounds = std::max<std::size_t>(
          1, (bucket.size() + seg_elems - 1) / seg_elems);
      for (std::size_t r = 0; r < rounds; ++r) {
        std::size_t lo = r * bucket.size() / rounds;
        std::size_t hi = (r + 1) * bucket.size() / rounds;
        stats.cycles += ChargeSegmentSort(device, hi - lo);
      }
      if (rounds > 1) {
        // Merge the rounds on the host (penalty for the imbalance).
        device->ChargeHostWork(static_cast<double>(bucket.size()) * 4);
      }
      std::sort(bucket.begin(), bucket.end());
      keys->insert(keys->end(), bucket.begin(), bucket.end());
      ++stats.segments;
    }
    return stats;
  }

  // Segment phase shared by the multi-merge methods. With num_streams >= 2
  // the in-core sorts round-robin over worker streams: segment i+1's H2D
  // upload queues behind (rather than after the completion of) segment i's
  // write-back on the shared link, and the sort kernels themselves overlap
  // freely. The phase is then accounted by its joined elapsed time.
  const std::size_t sort_streams =
      std::max<std::size_t>(1, options.num_streams);
  const bool overlap_segments = sort_streams >= 2 && n > seg_elems;
  const double segment_phase_start =
      overlap_segments ? device->Synchronize() : 0.0;
  std::vector<std::vector<uint64_t>> segments;
  std::size_t seg_idx = 0;
  for (std::size_t lo = 0; lo < n; lo += seg_elems) {
    std::size_t hi = std::min(n, lo + seg_elems);
    segments.emplace_back(keys->begin() + lo, keys->begin() + hi);
    std::sort(segments.back().begin(), segments.back().end());
    if (overlap_segments) {
      gpusim::StreamId stream =
          device->WorkerStream(static_cast<int>(seg_idx % sort_streams));
      ChargeSegmentSort(device, hi - lo, stream);
    } else {
      stats.cycles += ChargeSegmentSort(device, hi - lo);
    }
    ++seg_idx;
  }
  if (overlap_segments) {
    // Checkpoint collection (and the merge kernels after it) read every
    // sorted segment: join all streams before leaving the phase.
    stats.cycles += device->Synchronize() - segment_phase_start;
  }
  stats.segments = segments.size();
  if (segments.size() == 1) {
    *keys = std::move(segments.front());
    return stats;
  }

  SortStats merge = MultiMerge(
      device, &segments, keys, options.p_size,
      /*halved_searches=*/options.method == SortMethod::kGammaMultiMerge);
  stats.cycles += merge.cycles;
  stats.subtasks = merge.subtasks;
  return stats;
}

}  // namespace gpm::core
