#ifndef GAMMA_CORE_MULTIMERGE_SORT_H_
#define GAMMA_CORE_MULTIMERGE_SORT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "gpusim/device.h"

namespace gpm::core {

/// Out-of-core GPU sorting method (Fig. 19 / Table III competitors).
enum class SortMethod : uint8_t {
  /// Optimization 3: in-core segment sorts + checkpoint-partitioned
  /// multi-merge with matched indices; redundant searches halved by the
  /// prefix-sum trick (Algorithm 3).
  kGammaMultiMerge,
  /// Same segmentation, but the merge searches every element of every list
  /// against every other list (no ordering/prefix-sum saving).
  kNaiveMerge,
  /// xtr2sort-style: sample splitters, partition all keys over PCIe into
  /// buckets, then sort each bucket in core. Pays a full extra pass and
  /// suffers bucket imbalance.
  kXtr2Sort,
  /// Host-only std::sort (no GPU), the Table III CPU baseline.
  kCpuSort,
};

const char* SortMethodName(SortMethod method);

struct SortOptions {
  SortMethod method = SortMethod::kGammaMultiMerge;
  /// Per-segment device budget; 0 = use half the free device memory.
  std::size_t segment_bytes = 0;
  /// Checkpoint spacing within a segment (elements). Bounds every merge
  /// subtask to at most p_size elements per list (Definition 5.1 ff).
  std::size_t p_size = 1 << 14;
  /// In-core frameworks (Pangolin) can only sort what fits on the device:
  /// fail with kDeviceOutOfMemory instead of segmenting.
  bool in_core_only = false;
  /// Execution streams for the segment phase. 1 = the historical
  /// synchronous path (bit-identical cycle totals). >= 2 round-robins the
  /// in-core segment sorts over worker streams, so segment i+1's H2D
  /// upload contends on the PCIe link with (instead of waiting for)
  /// segment i's sort kernel and write-back; `cycles` then accounts the
  /// phase's joined elapsed time rather than the serial per-op sum.
  std::size_t num_streams = 1;
};

struct SortStats {
  std::size_t keys = 0;
  std::size_t segments = 0;
  std::size_t subtasks = 0;  ///< merge subtasks (multi-merge methods)
  double cycles = 0;         ///< simulated cycles spent sorting
};

/// Sorts `keys` ascending with the chosen method, charging `device`.
/// The GAMMA path actually executes Algorithm 3 (segment sort, checkpoint
/// collection, matched-index partitioning, per-subtask merges) on the host
/// data, so tests validate the algorithm, not just the cost model.
Result<SortStats> SortKeys(gpusim::Device* device,
                           std::vector<uint64_t>* keys,
                           const SortOptions& options);

/// The matched index of `x` in sorted `s` (Definition 5.1): the smallest
/// index i with x <= s[i], or |s| when x exceeds every element.
std::size_t MatchedIndex(const std::vector<uint64_t>& s, uint64_t x);

}  // namespace gpm::core

#endif  // GAMMA_CORE_MULTIMERGE_SORT_H_
