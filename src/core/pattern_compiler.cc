#include "core/pattern_compiler.h"

#include <algorithm>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"
#include "graph/isomorphism.h"

namespace gpm::core {
namespace {

using graph::Label;
using graph::Pattern;

// Restrictions that constrain the vertex matched at depth `d` given the
// already-matched prefix — exactly the per-level selection the legacy
// symmetric matcher performed inline (same iteration order, so compiled
// post-filters evaluate restrictions in the same sequence).
std::vector<SymmetryRestriction> ApplicableAt(
    const std::vector<SymmetryRestriction>& restrictions, int d) {
  std::vector<SymmetryRestriction> applicable;
  for (const SymmetryRestriction& r : restrictions) {
    if (r.larger_pos == d && r.smaller_pos < d) applicable.push_back(r);
    if (r.smaller_pos == d && r.larger_pos < d) applicable.push_back(r);
  }
  return applicable;
}

// True when `applicable` is exactly the full ascending chain at depth d:
// {(j, d) : j = 0..d-1}. Only then can the post-filter be folded into the
// extension's require_ascending flag without changing semantics.
bool IsFullAscendingChain(const std::vector<SymmetryRestriction>& applicable,
                          int d) {
  if (static_cast<int>(applicable.size()) != d) return false;
  std::vector<bool> seen(d, false);
  for (const SymmetryRestriction& r : applicable) {
    if (r.larger_pos != d) return false;
    if (r.smaller_pos < 0 || r.smaller_pos >= d) return false;
    if (seen[r.smaller_pos]) return false;
    seen[r.smaller_pos] = true;
  }
  return true;
}

void WriteLabel(JsonWriter& w, Label label) {
  if (label == Pattern::kAnyLabel) {
    w.Value("*");
  } else {
    w.Value(label);
  }
}

}  // namespace

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSubgraphMatch:
      return "subgraph-match";
    case PlanKind::kMotifCensus:
      return "motif-census";
    case PlanKind::kFrequentMining:
      return "frequent-mining";
    case PlanKind::kEdgeJoin:
      return "edge-join";
  }
  return "?";
}

const char* StartModeName(StartMode mode) {
  switch (mode) {
    case StartMode::kVertexParallel:
      return "vertex-parallel";
    case StartMode::kEdgeParallel:
      return "edge-parallel";
  }
  return "?";
}

PlanSummary CompiledPlan::Summary() const {
  PlanSummary s;
  s.enabled = true;
  s.kind = PlanKindName(kind);
  s.order = order;
  switch (kind) {
    case PlanKind::kSubgraphMatch:
    case PlanKind::kMotifCensus:
      s.levels = static_cast<int>(levels.size());
      break;
    case PlanKind::kFrequentMining:
      s.levels = max_edges > 0 ? max_edges - 1 : 0;
      break;
    case PlanKind::kEdgeJoin:
      s.levels = edge_order.empty()
                     ? 0
                     : static_cast<int>(edge_order.size()) - 1;
      break;
  }
  s.symmetry_broken = symmetry_broken;
  return s;
}

std::string CompiledPlan::DebugString() const {
  std::ostringstream os;
  os << "CompiledPlan(" << PlanKindName(kind);
  if (!order.empty()) {
    os << ", order=[";
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i > 0) os << ",";
      os << order[i];
    }
    os << "]";
  }
  os << ", start=" << StartModeName(start)
     << ", levels=" << levels.size();
  if (symmetry_broken) os << ", symmetry-broken";
  if (kind == PlanKind::kFrequentMining) {
    os << ", max_edges=" << max_edges << ", min_support=" << min_support;
  }
  os << ")";
  return os.str();
}

std::string CompiledPlan::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema").Value("gamma.plan.v1");
  w.Key("kind").Value(PlanKindName(kind));
  if (kind == PlanKind::kSubgraphMatch || kind == PlanKind::kEdgeJoin) {
    w.Key("pattern").BeginObject();
    w.Key("num_vertices").Value(pattern.num_vertices());
    w.Key("edges").BeginArray();
    for (auto [a, b] : pattern.EdgeList()) {
      w.BeginArray().Value(a).Value(b).EndArray();
    }
    w.EndArray();
    w.Key("labels").BeginArray();
    for (int i = 0; i < pattern.num_vertices(); ++i) {
      WriteLabel(w, pattern.label(i));
    }
    w.EndArray();
    w.EndObject();
  }
  if (kind == PlanKind::kSubgraphMatch || kind == PlanKind::kMotifCensus) {
    w.Key("order").BeginArray();
    for (int v : order) w.Value(v);
    w.EndArray();
    w.Key("start").BeginObject();
    w.Key("mode").Value(StartModeName(start));
    w.Key("label");
    WriteLabel(w, start_label);
    if (start == StartMode::kEdgeParallel) {
      w.Key("second_label");
      WriteLabel(w, second_label);
    }
    w.Key("ascending").Value(start_ascending);
    // Why this start mode: the raw estimates the input-aware rule
    // compares, recorded even when input_aware was off (the choice is
    // then "inherit the preset's vertex-parallel start").
    w.Key("rationale").BeginObject();
    w.Key("input_aware").Value(input_aware);
    w.Key("est_start_rows").Value(est_start_rows);
    w.Key("est_pair_rows").Value(est_pair_rows);
    w.Key("edge_parallel_foldable").Value(edge_parallel_foldable);
    w.Key("edge_parallel_profitable")
        .Value(edge_parallel_foldable && est_pair_rows >= est_start_rows);
    w.EndObject();
    w.EndObject();
    w.Key("levels").BeginArray();
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const CompiledLevel& level = levels[i];
      w.BeginObject();
      w.Key("depth").Value(first_depth() + static_cast<int>(i));
      w.Key("intersect").BeginArray();
      for (int p : level.intersect_positions) w.Value(p);
      w.EndArray();
      w.Key("label");
      WriteLabel(w, level.candidate_label);
      w.Key("require_ascending").Value(level.require_ascending);
      w.Key("enforce_injective").Value(level.enforce_injective);
      w.Key("restrictions").BeginArray();
      for (const SymmetryRestriction& r : level.restrictions) {
        w.BeginObject();
        w.Key("smaller_pos").Value(r.smaller_pos);
        w.Key("larger_pos").Value(r.larger_pos);
        w.EndObject();
      }
      w.EndArray();
      w.Key("count_only").Value(level.count_only);
      w.Key("write_strategy")
          .Value(level.write_strategy ? WriteStrategyName(*level.write_strategy)
                                      : "inherit");
      if (level.pre_merge) {
        w.Key("pre_merge").Value(*level.pre_merge);
      } else {
        w.Key("pre_merge").Value("inherit");
      }
      w.Key("est_rows").Value(level.est_rows);
      // Why these strategy choices: the inputs the input-aware rules
      // compare. "inherit" = the plan did not override the engine option.
      w.Key("rationale").BeginObject();
      w.Key("intersect_width")
          .Value(level.intersect_positions.size());
      w.Key("prealloc_threshold").Value(kPreAllocRowsThreshold);
      w.Key("write_strategy_rule")
          .Value(!level.write_strategy ? "inherit"
                 : level.est_rows >= kPreAllocRowsThreshold
                     ? "est_rows>=threshold"
                     : "est_rows<threshold");
      w.Key("pre_merge_rule")
          .Value(!level.pre_merge                     ? "inherit"
                 : level.intersect_positions.size() >= 2
                     ? "intersect_width>=2"
                     : "intersect_width<2");
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
  }
  if (kind == PlanKind::kEdgeJoin) {
    w.Key("edge_order").BeginArray();
    for (auto [a, b] : edge_order) {
      w.BeginArray().Value(a).Value(b).EndArray();
    }
    w.EndArray();
  }
  if (kind == PlanKind::kFrequentMining) {
    w.Key("fpm").BeginObject();
    w.Key("max_edges").Value(max_edges);
    w.Key("min_support").Value(min_support);
    w.EndObject();
  }
  w.Key("symmetry_broken").Value(symmetry_broken);
  w.Key("automorphisms").Value(automorphisms);
  w.Key("estimated_cost").Value(estimated_cost);
  w.EndObject();
  os << "\n";
  return os.str();
}

Result<CompiledPlan> PatternCompiler::CompileMatch(
    const graph::Pattern& query, const CompileOptions& options) const {
  if (query.num_vertices() < 1) {
    return Status::InvalidArgument("cannot compile an empty pattern");
  }
  // BuildWojPlan aborts on disconnected queries; reject them up front so
  // untrusted patterns fail as a structured error.
  if (!query.ConnectedPrefix(query.DefaultMatchingOrder())) {
    return Status::InvalidArgument(
        "pattern graph is not connected: " + query.DebugString());
  }
  return CompileMatchWithPlan(
      query, BuildWojPlan(*g_, query, options.plan_strategy), options);
}

Result<CompiledPlan> PatternCompiler::CompileMatchWithPlan(
    const graph::Pattern& query, const WojPlan& woj,
    const CompileOptions& options) const {
  if (query.num_vertices() < 1) {
    return Status::InvalidArgument("cannot compile an empty pattern");
  }
  if (static_cast<int>(woj.order.size()) != query.num_vertices()) {
    return Status::InvalidArgument(
        "plan order has " + std::to_string(woj.order.size()) +
        " entries for a " + std::to_string(query.num_vertices()) +
        "-vertex pattern");
  }
  const int k = query.num_vertices();

  CompiledPlan plan;
  plan.kind = PlanKind::kSubgraphMatch;
  plan.pattern = query;
  plan.automorphisms = static_cast<uint64_t>(query.CountAutomorphisms());
  plan.order = woj.order;
  plan.estimated_cost = woj.estimated_cost;
  plan.start_label = query.label(plan.order[0]);

  std::vector<SymmetryRestriction> restrictions;
  if (options.break_symmetry) {
    restrictions = BreakSymmetry(query, plan.order);
    plan.symmetry_broken = true;
  }

  for (int d = 1; d < k; ++d) {
    CompiledLevel level;
    // Derived from the query rather than copied from woj.backward so
    // caller-supplied plans with only an order still compile.
    for (int j = 0; j < d; ++j) {
      if (query.HasEdge(plan.order[d], plan.order[j])) {
        level.intersect_positions.push_back(j);
      }
    }
    if (level.intersect_positions.empty()) {
      return Status::InvalidArgument(
          "matching order prefix not connected at depth " +
          std::to_string(d) + " (vertex " + std::to_string(plan.order[d]) +
          " has no matched neighbor)");
    }
    level.candidate_label = query.label(plan.order[d]);
    level.enforce_injective = true;
    level.restrictions = ApplicableAt(restrictions, d);
    if (options.fold_ascending &&
        IsFullAscendingChain(level.restrictions, d)) {
      level.require_ascending = true;
      level.restrictions.clear();
    }
    level.count_only = options.count_only_last && d == k - 1;
    level.est_rows = EstimateCardinality(*g_, query, plan.order, d);
    plan.levels.push_back(std::move(level));
  }

  // Rationale fields are filled whether or not input_aware acts on them
  // (compiling is pure host analysis), so every plan document carries the
  // estimates an input-aware compile would have decided from.
  plan.input_aware = options.input_aware;
  plan.est_start_rows = EstimateCardinality(*g_, query, plan.order, 0);
  if (k >= 2) {
    const CompiledLevel& l1 = plan.levels.front();
    plan.est_pair_rows = l1.est_rows;
    plan.edge_parallel_foldable =
        l1.restrictions.empty() ||
        (l1.restrictions.size() == 1 &&
         l1.restrictions[0].smaller_pos == 0 &&
         l1.restrictions[0].larger_pos == 1) ||
        l1.require_ascending;
  }

  if (options.input_aware) {
    // Input-aware strategy selection (documented in DESIGN.md):
    //
    // Start mode. An edge-parallel start seeds the first two columns from
    // one edge-list scan, eliminating the depth-1 extension pass. It is
    // legal when the plan has >= 2 vertices and the depth-1 restrictions
    // are absent or exactly the single (0,1) pair (foldable into an
    // ascending pair scan); it is chosen when the estimated pair count is
    // at least the start-vertex candidate count, i.e. the scan replaces an
    // extension over a table no smaller than itself.
    if (k >= 2) {
      const CompiledLevel& l1 = plan.levels.front();
      if (plan.edge_parallel_foldable &&
          plan.est_pair_rows >= plan.est_start_rows) {
        plan.start = StartMode::kEdgeParallel;
        plan.second_label = l1.candidate_label;
        plan.start_ascending =
            l1.require_ascending || !l1.restrictions.empty();
        plan.levels.erase(plan.levels.begin());
      }
    }
    // Write strategy. Two-pass pre-allocation amortizes well on large
    // intermediate tables; dynamic allocation wins when a level is
    // expected to stay small (chunk setup dominates). Grouped
    // intersection (pre_merge) pays off once a level intersects >= 2
    // matched adjacency lists.
    for (CompiledLevel& level : plan.levels) {
      level.write_strategy = level.est_rows >= kPreAllocRowsThreshold
                                 ? WriteStrategy::kPreAlloc
                                 : WriteStrategy::kDynamicAlloc;
      level.pre_merge = level.intersect_positions.size() >= 2;
    }
  }

  return plan;
}

Result<CompiledPlan> PatternCompiler::CompileKClique(
    int k, bool count_only_last) const {
  if (k < 2) {
    return Status::InvalidArgument("k-clique needs k >= 2, got " +
                                   std::to_string(k));
  }
  CompileOptions options;
  options.plan_strategy = PlanStrategy::kStructural;
  options.break_symmetry = true;
  options.fold_ascending = true;
  options.count_only_last = count_only_last;
  Result<CompiledPlan> plan = CompileMatch(Pattern::Clique(k), options);
  if (!plan.ok()) return plan;
  // The clique's full automorphism group folds into ascending-id
  // extensions at every level; the compiled spec is then field-identical
  // to the legacy hand-written one.
  for (const CompiledLevel& level : plan.value().levels) {
    if (!level.require_ascending || !level.restrictions.empty()) {
      return Status::Internal("clique restrictions did not fold");
    }
  }
  return plan;
}

Result<CompiledPlan> PatternCompiler::CompileMotifCensus(int k) const {
  if (k < 2 || k > 5) {
    return Status::InvalidArgument(
        "motif census supports k in [2,5], got " + std::to_string(k));
  }
  CompiledPlan plan;
  plan.kind = PlanKind::kMotifCensus;
  plan.pattern = Pattern(k);
  plan.order.resize(k);
  for (int i = 0; i < k; ++i) plan.order[i] = i;
  for (int d = 1; d < k; ++d) {
    CompiledLevel level;  // empty intersect set = union extension
    level.enforce_injective = true;
    plan.levels.push_back(std::move(level));
  }
  return plan;
}

Result<CompiledPlan> PatternCompiler::CompileFpm(int max_edges,
                                                 uint64_t min_support) const {
  if (max_edges < 1) {
    return Status::InvalidArgument("max_edges must be >= 1, got " +
                                   std::to_string(max_edges));
  }
  CompiledPlan plan;
  plan.kind = PlanKind::kFrequentMining;
  plan.max_edges = max_edges;
  plan.min_support = min_support;
  return plan;
}

Result<CompiledPlan> PatternCompiler::CompileEdgeJoin(
    const graph::Pattern& query) const {
  if (query.num_vertices() < 2 || query.num_edges() < 1) {
    return Status::InvalidArgument(
        "edge join needs a pattern with at least one edge");
  }
  // ConnectedEdgeOrder aborts on disconnected queries; reject them first.
  if (!query.ConnectedPrefix(query.DefaultMatchingOrder())) {
    return Status::InvalidArgument(
        "pattern graph is not connected: " + query.DebugString());
  }
  CompiledPlan plan;
  plan.kind = PlanKind::kEdgeJoin;
  plan.pattern = query;
  plan.automorphisms = static_cast<uint64_t>(query.CountAutomorphisms());
  plan.edge_order = graph::ConnectedEdgeOrder(query);
  return plan;
}

}  // namespace gpm::core
