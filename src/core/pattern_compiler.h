#ifndef GAMMA_CORE_PATTERN_COMPILER_H_
#define GAMMA_CORE_PATTERN_COMPILER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/extension.h"
#include "core/plan.h"
#include "core/symmetry.h"
#include "graph/csr.h"
#include "graph/pattern.h"

namespace gpm::core {

/// What a compiled plan computes. All four of the repo's mining workloads
/// lower to one of these shapes over the same engine primitives.
enum class PlanKind : uint8_t {
  kSubgraphMatch,   ///< v-ET, one WOJ vertex extension per level
  kMotifCensus,     ///< v-ET union extensions + shape aggregation
  kFrequentMining,  ///< e-ET aggregate/filter/extend loop (Algorithm 2)
  kEdgeJoin,        ///< e-ET query-edge-at-a-time binary join
};

const char* PlanKindName(PlanKind kind);

/// How the first embedding-table column is produced.
enum class StartMode : uint8_t {
  kVertexParallel,  ///< label-selective vertex scan (one column)
  kEdgeParallel,    ///< edge-list scan seeding the first two columns
};

const char* StartModeName(StartMode mode);

/// Input-aware write-strategy cutover: levels whose estimated row count
/// reaches this threshold pre-allocate (two-pass); smaller levels allocate
/// dynamically. Serialized into gamma.plan.v1 rationale objects so plan
/// documents stay auditable if the cutover moves.
inline constexpr double kPreAllocRowsThreshold = 1e5;

/// One vertex-extension step of a compiled plan. Everything the engine
/// needs to build the VertexExtensionSpec, plus optional per-level
/// strategy overrides (unset = inherit the engine's ExtensionOptions, the
/// bit-compatible preset mode).
struct CompiledLevel {
  /// Matched positions whose adjacency lists are intersected; empty means
  /// union-neighborhood extension (motif census).
  std::vector<int> intersect_positions;
  graph::Label candidate_label = graph::Pattern::kAnyLabel;
  /// Folded full-chain symmetry restriction: candidate id must exceed
  /// every matched vertex.
  bool require_ascending = false;
  bool enforce_injective = true;
  /// Symmetry-breaking restrictions applied as a post-filter at this
  /// level (both directions: the candidate may be the smaller or the
  /// larger side). Empty when folded into require_ascending or when the
  /// plan does not break symmetry.
  std::vector<SymmetryRestriction> restrictions;
  /// Count-only final level: tally results without materializing the
  /// column.
  bool count_only = false;
  /// Input-aware strategy choices; nullopt inherits the engine options.
  std::optional<WriteStrategy> write_strategy;
  std::optional<bool> pre_merge;
  /// Estimated rows after this level (planner cardinality model).
  double est_rows = 0;
};

/// Compact per-run plan descriptor embedded in gamma.bench.v1 documents.
struct PlanSummary {
  bool enabled = false;
  std::string kind;
  std::vector<int> order;
  int levels = 0;
  bool symmetry_broken = false;
};

/// A complete, data-only execution plan for one mining workload: matching
/// order, per-level intersection sets and filters, automatically derived
/// symmetry restrictions, and strategy choices. CompiledEngine::Run
/// interprets it over GammaEngine primitives; ToJson() serializes it as a
/// `gamma.plan.v1` document.
struct CompiledPlan {
  PlanKind kind = PlanKind::kSubgraphMatch;
  /// The query (subgraph match / edge join). Unused for the motif census
  /// (which aggregates every shape) and FPM.
  graph::Pattern pattern;
  /// Vertex matching order (vertex plans); order[d] is the query vertex
  /// matched at depth d.
  std::vector<int> order;
  StartMode start = StartMode::kVertexParallel;
  graph::Label start_label = graph::Pattern::kAnyLabel;
  /// Edge-parallel start only: label filter for the second column and
  /// whether the seeded pairs are ascending (folded (0,1) restriction).
  graph::Label second_label = graph::Pattern::kAnyLabel;
  bool start_ascending = false;
  /// One entry per extension step. Vertex plans: depth = first_depth + i
  /// where first_depth is 1 (vertex-parallel) or 2 (edge-parallel).
  std::vector<CompiledLevel> levels;
  /// Connected query-edge order (kEdgeJoin).
  std::vector<std::pair<int, int>> edge_order;
  bool symmetry_broken = false;
  uint64_t automorphisms = 1;
  double estimated_cost = 0;
  /// kFrequentMining parameters.
  int max_edges = 0;
  uint64_t min_support = 0;

  /// Planner rationale (audit fields; gamma.plan.v1 "rationale" objects).
  /// The raw cardinality estimates that drove — or, with input_aware off,
  /// would have driven — the start-mode decision, so plan documents are
  /// auditable without a run. Zero for kinds without a cardinality model.
  bool input_aware = false;
  double est_start_rows = 0;  ///< estimated start-vertex candidates
  double est_pair_rows = 0;   ///< estimated depth-1 (pair) rows
  /// Depth-1 restrictions were absent or exactly the foldable (0,1) pair,
  /// making an edge-parallel start legal.
  bool edge_parallel_foldable = false;

  /// Depth of the first extension level (vertex plans).
  int first_depth() const {
    return start == StartMode::kEdgeParallel ? 2 : 1;
  }

  PlanSummary Summary() const;
  std::string DebugString() const;
  /// Serializes the full plan as a `gamma.plan.v1` JSON document.
  std::string ToJson() const;
};

/// Compiler configuration. The defaults reproduce the legacy
/// hand-specialized algorithms bit-for-bit (structural order, engine-
/// inherited strategies); `input_aware` turns on statistics-driven
/// selection for user-supplied patterns.
struct CompileOptions {
  PlanStrategy plan_strategy = PlanStrategy::kStructural;
  /// Derive symmetry-breaking restrictions from the pattern's
  /// automorphisms (one embedding-table row per instance).
  bool break_symmetry = false;
  /// When a level's applicable restrictions form the full ascending chain
  /// {M_j < M_d for all j < d}, fold them into the extension's
  /// require_ascending flag instead of a per-candidate post-filter. The
  /// k-clique preset requires this (it reproduces the hand-written spec
  /// exactly); the legacy symmetric-SM preset leaves it off because the
  /// hand path always used a post-filter.
  bool fold_ascending = false;
  /// Count-only final extension (counting workloads never read the last
  /// column).
  bool count_only_last = false;
  /// Choose start mode, write strategy, and grouped intersection per
  /// level from pattern + input-graph statistics instead of inheriting
  /// the engine's options (see docs: strategy selection rules).
  bool input_aware = false;
};

/// Pattern compiler: arbitrary (optionally labeled) pattern in, complete
/// CompiledPlan out. Pure host-side analysis — compiling charges no
/// simulated cycles. Invalid inputs (empty/disconnected patterns, bad
/// parameter ranges) return kInvalidArgument instead of aborting, so
/// untrusted queries fail as structured errors.
class PatternCompiler {
 public:
  explicit PatternCompiler(const graph::Graph* g) : g_(g) {}

  /// WOJ subgraph matching over `query` (<= Pattern::kMaxVertices
  /// vertices, connected, optional labels).
  Result<CompiledPlan> CompileMatch(const graph::Pattern& query,
                                    const CompileOptions& options) const;

  /// CompileMatch with a caller-supplied matching order (bypasses
  /// BuildWojPlan; the explicit-plan entry point of MatchWojWithPlan).
  Result<CompiledPlan> CompileMatchWithPlan(
      const graph::Pattern& query, const WojPlan& plan,
      const CompileOptions& options) const;

  /// k-clique counting: CompileMatch over Clique(k) with symmetry folding
  /// (reproduces the hand-written ascending-intersection spec).
  Result<CompiledPlan> CompileKClique(int k, bool count_only_last) const;

  /// k-vertex motif census: union extensions + unlabeled-shape
  /// aggregation.
  Result<CompiledPlan> CompileMotifCensus(int k) const;

  /// Frequent pattern mining (Algorithm 2) parameters.
  Result<CompiledPlan> CompileFpm(int max_edges, uint64_t min_support) const;

  /// Binary-join matching: one query edge per extension.
  Result<CompiledPlan> CompileEdgeJoin(const graph::Pattern& query) const;

 private:
  const graph::Graph* g_;
};

}  // namespace gpm::core

#endif  // GAMMA_CORE_PATTERN_COMPILER_H_
