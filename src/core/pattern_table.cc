#include "core/pattern_table.h"

#include <algorithm>
#include <sstream>

namespace gpm::core {

void PatternTable::Accumulate(uint64_t code, const graph::Pattern& exemplar,
                              uint64_t count) {
  auto it = index_.find(code);
  if (it == index_.end()) {
    index_.emplace(code, entries_.size());
    entries_.push_back({code, exemplar, count, true});
  } else {
    entries_[it->second].support += count;
  }
}

void PatternTable::SetSupport(uint64_t code, const graph::Pattern& exemplar,
                              uint64_t support) {
  auto it = index_.find(code);
  if (it == index_.end()) {
    index_.emplace(code, entries_.size());
    entries_.push_back({code, exemplar, support, true});
  } else {
    entries_[it->second].support = support;
  }
}

const PatternEntry* PatternTable::Find(uint64_t code) const {
  auto it = index_.find(code);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

std::size_t PatternTable::InvalidateBelow(uint64_t min_support) {
  std::size_t invalidated = 0;
  for (PatternEntry& e : entries_) {
    if (e.valid && e.support < min_support) {
      e.valid = false;
      ++invalidated;
    }
  }
  return invalidated;
}

std::unordered_set<uint64_t> PatternTable::InvalidCodes() const {
  std::unordered_set<uint64_t> codes;
  for (const PatternEntry& e : entries_) {
    if (!e.valid) codes.insert(e.code);
  }
  return codes;
}

void PatternTable::EraseInvalid() {
  std::vector<PatternEntry> kept;
  kept.reserve(entries_.size());
  for (PatternEntry& e : entries_) {
    if (e.valid) kept.push_back(std::move(e));
  }
  entries_ = std::move(kept);
  index_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    index_.emplace(entries_[i].code, i);
  }
}

std::vector<PatternEntry> PatternTable::TopPatterns() const {
  std::vector<PatternEntry> out;
  for (const PatternEntry& e : entries_) {
    if (e.valid) out.push_back(e);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PatternEntry& a, const PatternEntry& b) {
                     return a.support > b.support;
                   });
  return out;
}

std::vector<PatternEntry> PatternTable::MaximalPatterns() const {
  std::vector<PatternEntry> valid;
  for (const PatternEntry& e : entries_) {
    if (e.valid) valid.push_back(e);
  }
  std::vector<PatternEntry> maximal;
  for (const PatternEntry& e : valid) {
    bool contained = false;
    for (const PatternEntry& other : valid) {
      if (other.code == e.code) continue;
      if (e.exemplar.ContainedIn(other.exemplar)) {
        contained = true;
        break;
      }
    }
    if (!contained) maximal.push_back(e);
  }
  return maximal;
}

std::size_t PatternTable::StorageBytes() const {
  return entries_.size() * sizeof(PatternEntry);
}

std::string PatternTable::DebugString() const {
  std::ostringstream os;
  os << "PatternTable(" << entries_.size() << " patterns:";
  for (const PatternEntry& e : entries_) {
    os << " [sup=" << e.support << (e.valid ? "" : " invalid") << " "
       << e.exemplar.DebugString() << "]";
  }
  os << ")";
  return os.str();
}

}  // namespace gpm::core
