#ifndef GAMMA_CORE_PATTERN_TABLE_H_
#define GAMMA_CORE_PATTERN_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/pattern.h"

namespace gpm::core {

/// One aggregated pattern: canonical code, an exemplar shape, and support.
struct PatternEntry {
  uint64_t code = 0;
  graph::Pattern exemplar;
  uint64_t support = 0;
  bool valid = true;
};

/// The pattern table PT (§III-B2): embeddings map to canonical pattern
/// codes; the table accumulates per-pattern support across iterations and
/// records which patterns survive the support threshold.
class PatternTable {
 public:
  PatternTable() = default;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Adds `count` to `code`'s support, creating the entry (with `exemplar`)
  /// on first sight.
  void Accumulate(uint64_t code, const graph::Pattern& exemplar,
                  uint64_t count);

  /// Overwrites `code`'s support (used by MNI-style measures that are not
  /// additive across batches).
  void SetSupport(uint64_t code, const graph::Pattern& exemplar,
                  uint64_t support);

  const PatternEntry* Find(uint64_t code) const;

  /// Marks entries with support < `min_support` invalid; returns how many
  /// were invalidated.
  std::size_t InvalidateBelow(uint64_t min_support);

  /// Codes currently invalid (used to filter their instances out of ET).
  std::unordered_set<uint64_t> InvalidCodes() const;

  /// Drops invalid entries from the table.
  void EraseInvalid();

  const std::vector<PatternEntry>& entries() const { return entries_; }

  /// Valid entries sorted by descending support (stable for ties).
  std::vector<PatternEntry> TopPatterns() const;

  /// Valid entries whose exemplar is not contained in any other valid
  /// entry's exemplar — the maximal frequent patterns (a standard compact
  /// FPM output; an extension beyond the paper's interface).
  std::vector<PatternEntry> MaximalPatterns() const;

  /// Total bytes of the table (for peak-memory accounting).
  std::size_t StorageBytes() const;

  std::string DebugString() const;

 private:
  std::vector<PatternEntry> entries_;
  std::unordered_map<uint64_t, std::size_t> index_;
};

}  // namespace gpm::core

#endif  // GAMMA_CORE_PATTERN_TABLE_H_
