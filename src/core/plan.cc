#include "core/plan.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace gpm::core {
namespace {

using graph::Label;
using graph::Pattern;
using graph::VertexId;

// Per-label vertex counts of the data graph, computed once per plan build
// (the greedy planner evaluates O(k^3) candidate prefixes; scanning the
// label array for each would be O(k^3 * V)).
class LabelStats {
 public:
  explicit LabelStats(const graph::Graph& g) : g_(g) {
    if (!g.labeled()) return;
    counts_.assign(g.num_labels(), 0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      Label l = g.label(v);
      if (l >= counts_.size()) counts_.resize(l + 1, 0);
      ++counts_[l];
    }
  }

  // Fraction of data vertices carrying `label` (1.0 for wildcards). A
  // concrete query label uses the per-label frequency, never the global
  // vertex count: on an unlabeled graph every vertex carries label 0, so
  // any other label matches nothing and must estimate to zero rather than
  // the full |V| the old blanket `!labeled()` early-return produced.
  double Selectivity(Label label) const {
    if (label == Pattern::kAnyLabel) return 1.0;
    if (g_.num_vertices() == 0) return 0.0;
    if (!g_.labeled()) return label == 0 ? 1.0 : 0.0;
    const std::size_t count =
        label < counts_.size() ? counts_[label] : 0;
    return static_cast<double>(count) /
           static_cast<double>(g_.num_vertices());
  }

 private:
  const graph::Graph& g_;
  std::vector<std::size_t> counts_;
};

double EstimateWithStats(const graph::Graph& g, const LabelStats& stats,
                         const graph::Pattern& query,
                         const std::vector<int>& order, int depth) {
  GAMMA_CHECK(depth >= 0 && depth < static_cast<int>(order.size()))
      << "depth out of range";
  const double n = static_cast<double>(g.num_vertices());
  const double avg_deg = g.average_degree();

  // Start: candidates for the first vertex = label-selective vertex scan.
  double card = n * stats.Selectivity(query.label(order[0]));
  for (int d = 1; d <= depth; ++d) {
    int backs = 0;
    for (int j = 0; j < d; ++j) {
      if (query.HasEdge(order[d], order[j])) ++backs;
    }
    GAMMA_CHECK(backs >= 1) << "order prefix not connected";
    // One backward edge multiplies by the average fan-out; every further
    // backward edge behaves like an adjacency test with probability
    // avg_deg / n of succeeding (independence assumption).
    double fanout = avg_deg * stats.Selectivity(query.label(order[d]));
    for (int e = 1; e < backs; ++e) {
      fanout *= std::min(1.0, avg_deg / std::max(1.0, n));
    }
    card *= std::max(fanout, 1e-12);
  }
  return card;
}

// Deterministic cost comparison for the greedy planner: costs within a
// relative epsilon are ties (floating-point arithmetic may round the same
// estimate differently across compilers/architectures — FMA contraction,
// libm — and a strict `<` would then pick different vertices on different
// platforms). Ties fall through to the caller's structural tie-break.
bool CostStrictlyLess(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return a < b - 1e-9 * scale;
}

}  // namespace

std::string WojPlan::DebugString() const {
  std::ostringstream os;
  os << "WojPlan(order=[";
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0) os << ",";
    os << order[i];
  }
  os << "], cost=" << estimated_cost << ")";
  return os.str();
}

double EstimateCardinality(const graph::Graph& g,
                           const graph::Pattern& query,
                           const std::vector<int>& order, int depth) {
  return EstimateWithStats(g, LabelStats(g), query, order, depth);
}

WojPlan BuildWojPlan(const graph::Graph& g, const graph::Pattern& query,
                     PlanStrategy strategy) {
  WojPlan plan;
  const int k = query.num_vertices();
  const LabelStats stats(g);

  if (strategy == PlanStrategy::kStructural) {
    plan.order = query.DefaultMatchingOrder();
  } else {
    // Greedy: start at the most selective (label frequency x degree rank)
    // vertex; at each step append the connected vertex minimizing the
    // estimated cardinality of the extended prefix. Tie-breaking is fully
    // deterministic so compiled plans reproduce across platforms: equal
    // scores prefer the higher-degree vertex, then the smaller index.
    std::vector<bool> used(k, false);
    int best0 = 0;
    double best0_score = 1e300;
    for (int i = 0; i < k; ++i) {
      double score = stats.Selectivity(query.label(i)) /
                     std::max(1, query.degree(i));
      if (CostStrictlyLess(score, best0_score) ||
          (!CostStrictlyLess(best0_score, score) &&
           query.degree(i) > query.degree(best0))) {
        best0_score = score;
        best0 = i;
      }
    }
    plan.order.push_back(best0);
    used[best0] = true;
    while (static_cast<int>(plan.order.size()) < k) {
      int best = -1;
      double best_cost = 1e300;
      int best_backs = -1;
      for (int cand = 0; cand < k; ++cand) {
        if (used[cand]) continue;
        int backs = 0;
        for (int j : plan.order) {
          if (query.HasEdge(cand, j)) ++backs;
        }
        if (backs == 0) continue;
        std::vector<int> tentative = plan.order;
        tentative.push_back(cand);
        double cost = EstimateWithStats(
            g, stats, query, tentative,
            static_cast<int>(tentative.size()) - 1);
        // Equal-cost ties prefer the candidate with more backward edges
        // (tighter intersections downstream), then the smaller index.
        const bool better =
            best < 0 || CostStrictlyLess(cost, best_cost) ||
            (!CostStrictlyLess(best_cost, cost) && backs > best_backs);
        if (better) {
          best_cost = cost;
          best = cand;
          best_backs = backs;
        }
      }
      GAMMA_CHECK(best >= 0) << "query graph not connected";
      plan.order.push_back(best);
      used[best] = true;
    }
  }

  // Backward positions and total cost.
  plan.backward.resize(k);
  for (int d = 1; d < k; ++d) {
    for (int j = 0; j < d; ++j) {
      if (query.HasEdge(plan.order[d], plan.order[j])) {
        plan.backward[d].push_back(j);
      }
    }
  }
  for (int d = 0; d < k; ++d) {
    plan.estimated_cost +=
        EstimateWithStats(g, stats, query, plan.order, d);
  }
  return plan;
}

}  // namespace gpm::core
