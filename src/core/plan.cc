#include "core/plan.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace gpm::core {
namespace {

using graph::Label;
using graph::Pattern;
using graph::VertexId;

// Fraction of data vertices carrying `label` (1.0 for wildcards).
double LabelSelectivity(const graph::Graph& g, Label label) {
  if (label == Pattern::kAnyLabel || !g.labeled()) return 1.0;
  std::size_t count = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.label(v) == label) ++count;
  }
  return g.num_vertices() == 0
             ? 0.0
             : static_cast<double>(count) /
                   static_cast<double>(g.num_vertices());
}

}  // namespace

std::string WojPlan::DebugString() const {
  std::ostringstream os;
  os << "WojPlan(order=[";
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0) os << ",";
    os << order[i];
  }
  os << "], cost=" << estimated_cost << ")";
  return os.str();
}

double EstimateCardinality(const graph::Graph& g,
                           const graph::Pattern& query,
                           const std::vector<int>& order, int depth) {
  GAMMA_CHECK(depth >= 0 &&
              depth < static_cast<int>(order.size()))
      << "depth out of range";
  const double n = static_cast<double>(g.num_vertices());
  const double avg_deg = g.average_degree();

  // Start: candidates for the first vertex = label-selective vertex scan.
  double card = n * LabelSelectivity(g, query.label(order[0]));
  for (int d = 1; d <= depth; ++d) {
    int backs = 0;
    for (int j = 0; j < d; ++j) {
      if (query.HasEdge(order[d], order[j])) ++backs;
    }
    GAMMA_CHECK(backs >= 1) << "order prefix not connected";
    // One backward edge multiplies by the average fan-out; every further
    // backward edge behaves like an adjacency test with probability
    // avg_deg / n of succeeding (independence assumption).
    double fanout = avg_deg * LabelSelectivity(g, query.label(order[d]));
    for (int e = 1; e < backs; ++e) {
      fanout *= std::min(1.0, avg_deg / std::max(1.0, n));
    }
    card *= std::max(fanout, 1e-12);
  }
  return card;
}

WojPlan BuildWojPlan(const graph::Graph& g, const graph::Pattern& query,
                     PlanStrategy strategy) {
  WojPlan plan;
  const int k = query.num_vertices();

  if (strategy == PlanStrategy::kStructural) {
    plan.order = query.DefaultMatchingOrder();
  } else {
    // Greedy: start at the most selective (label frequency x degree rank)
    // vertex; at each step append the connected vertex minimizing the
    // estimated cardinality of the extended prefix.
    std::vector<bool> used(k, false);
    int best0 = 0;
    double best0_score = 1e300;
    for (int i = 0; i < k; ++i) {
      double score = LabelSelectivity(g, query.label(i)) /
                     std::max(1, query.degree(i));
      if (score < best0_score) {
        best0_score = score;
        best0 = i;
      }
    }
    plan.order.push_back(best0);
    used[best0] = true;
    while (static_cast<int>(plan.order.size()) < k) {
      int best = -1;
      double best_cost = 1e300;
      for (int cand = 0; cand < k; ++cand) {
        if (used[cand]) continue;
        bool connected = false;
        for (int j : plan.order) {
          if (query.HasEdge(cand, j)) connected = true;
        }
        if (!connected) continue;
        std::vector<int> tentative = plan.order;
        tentative.push_back(cand);
        double cost = EstimateCardinality(
            g, query, tentative, static_cast<int>(tentative.size()) - 1);
        if (cost < best_cost) {
          best_cost = cost;
          best = cand;
        }
      }
      GAMMA_CHECK(best >= 0) << "query graph not connected";
      plan.order.push_back(best);
      used[best] = true;
    }
  }

  // Backward positions and total cost.
  plan.backward.resize(k);
  for (int d = 1; d < k; ++d) {
    for (int j = 0; j < d; ++j) {
      if (query.HasEdge(plan.order[d], plan.order[j])) {
        plan.backward[d].push_back(j);
      }
    }
  }
  for (int d = 0; d < k; ++d) {
    plan.estimated_cost += EstimateCardinality(g, query, plan.order, d);
  }
  return plan;
}

}  // namespace gpm::core
