#ifndef GAMMA_CORE_PLAN_H_
#define GAMMA_CORE_PLAN_H_

#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/pattern.h"

namespace gpm::core {

/// A worst-case-optimal-join plan for one query: the vertex matching order
/// plus, per step, the embedding positions whose adjacency lists are
/// intersected (the matched backward neighbors).
struct WojPlan {
  std::vector<int> order;  ///< query vertices in matching order
  /// backward[d] = positions (depths < d) adjacent to order[d].
  std::vector<std::vector<int>> backward;
  /// Estimated total intermediate-result cardinality (plan cost).
  double estimated_cost = 0;

  std::string DebugString() const;
};

/// How the planner picks the order.
enum class PlanStrategy {
  /// Pattern-only heuristic: max degree first, then most matched
  /// neighbors (the Pattern::DefaultMatchingOrder used by Algorithm 1).
  kStructural,
  /// Cardinality-based greedy: uses data-graph statistics (label
  /// frequencies, average degree) to keep intermediate results small —
  /// starts with the most selective vertex and grows by the cheapest
  /// estimated extension.
  kGreedyCardinality,
};

/// Builds a WOJ plan for `query` over `g`. Every prefix of the order is
/// connected (required by vertex extension).
WojPlan BuildWojPlan(const graph::Graph& g, const graph::Pattern& query,
                     PlanStrategy strategy);

/// Estimates the number of partial embeddings after matching the first
/// `depth + 1` vertices of `plan.order` — the quantity the greedy planner
/// minimizes. Exposed for tests.
double EstimateCardinality(const graph::Graph& g,
                           const graph::Pattern& query,
                           const std::vector<int>& order, int depth);

}  // namespace gpm::core

#endif  // GAMMA_CORE_PLAN_H_
