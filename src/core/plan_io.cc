#include "core/plan_io.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/json_reader.h"

namespace gpm::core {
namespace {

using gpm::minijson::Value;
using graph::Label;
using graph::Pattern;

Status Err(const std::string& m) {
  return Status::InvalidArgument("gamma.plan.v1: " + m);
}

Status GetNumber(const Value& obj, const char* key, double* out) {
  const Value* v = obj.Find(key);
  if (v == nullptr || v->type != Value::kNumber) {
    return Err(std::string("missing numeric field '") + key + "'");
  }
  *out = v->number;
  return Status();
}

Status GetInt(const Value& obj, const char* key, double lo, double hi,
              int64_t* out) {
  double d = 0;
  if (Status s = GetNumber(obj, key, &d); !s.ok()) return s;
  if (d != std::floor(d) || d < lo || d > hi) {
    return Err(std::string("field '") + key + "' must be an integer in [" +
               std::to_string(static_cast<int64_t>(lo)) + ", " +
               std::to_string(static_cast<int64_t>(hi)) + "]");
  }
  *out = static_cast<int64_t>(d);
  return Status();
}

Status GetBool(const Value& obj, const char* key, bool* out) {
  const Value* v = obj.Find(key);
  if (v == nullptr || v->type != Value::kBool) {
    return Err(std::string("missing boolean field '") + key + "'");
  }
  *out = v->boolean;
  return Status();
}

Status GetString(const Value& obj, const char* key, std::string* out) {
  const Value* v = obj.Find(key);
  if (v == nullptr || v->type != Value::kString) {
    return Err(std::string("missing string field '") + key + "'");
  }
  *out = v->str;
  return Status();
}

Status GetArray(const Value& obj, const char* key, const Value** out) {
  const Value* v = obj.Find(key);
  if (v == nullptr || v->type != Value::kArray) {
    return Err(std::string("missing array field '") + key + "'");
  }
  *out = v;
  return Status();
}

Status GetObject(const Value& obj, const char* key, const Value** out) {
  const Value* v = obj.Find(key);
  if (v == nullptr || v->type != Value::kObject) {
    return Err(std::string("missing object field '") + key + "'");
  }
  *out = v;
  return Status();
}

// Labels serialize as the string "*" (wildcard) or a plain non-negative
// integer. The numeric value of the wildcard sentinel itself is rejected:
// it would re-serialize as "*" and silently change the document.
Status ParseLabel(const Value& v, const char* what, Label* out) {
  if (v.type == Value::kString) {
    if (v.str == "*") {
      *out = Pattern::kAnyLabel;
      return Status();
    }
    return Err(std::string(what) + ": label must be \"*\" or an integer");
  }
  if (v.type != Value::kNumber || v.number != std::floor(v.number) ||
      v.number < 0 || v.number >= static_cast<double>(Pattern::kAnyLabel)) {
    return Err(std::string(what) +
               ": label must be \"*\" or an integer in [0, 2^32-2]");
  }
  *out = static_cast<Label>(v.number);
  return Status();
}

Status ParseLabelField(const Value& obj, const char* key, Label* out) {
  const Value* v = obj.Find(key);
  if (v == nullptr) {
    return Err(std::string("missing label field '") + key + "'");
  }
  return ParseLabel(*v, key, out);
}

Status ParseKind(const std::string& name, PlanKind* out) {
  for (PlanKind k : {PlanKind::kSubgraphMatch, PlanKind::kMotifCensus,
                     PlanKind::kFrequentMining, PlanKind::kEdgeJoin}) {
    if (name == PlanKindName(k)) {
      *out = k;
      return Status();
    }
  }
  return Err("unknown plan kind '" + name + "'");
}

Status ParsePatternObject(const Value& doc, Pattern* out) {
  const Value* pat = nullptr;
  if (Status s = GetObject(doc, "pattern", &pat); !s.ok()) return s;
  int64_t n = 0;
  if (Status s = GetInt(*pat, "num_vertices", 1, Pattern::kMaxVertices, &n);
      !s.ok()) {
    return s;
  }
  Pattern p(static_cast<int>(n));
  const Value* edges = nullptr;
  if (Status s = GetArray(*pat, "edges", &edges); !s.ok()) return s;
  for (const Value& e : edges->array) {
    if (e.type != Value::kArray || e.array.size() != 2 ||
        e.array[0].type != Value::kNumber ||
        e.array[1].type != Value::kNumber) {
      return Err("pattern edges must be [a, b] integer pairs");
    }
    const double da = e.array[0].number, db = e.array[1].number;
    if (da != std::floor(da) || db != std::floor(db) || da < 0 || db < 0 ||
        da >= n || db >= n) {
      return Err("pattern edge endpoint out of range [0, " +
                 std::to_string(n - 1) + "]");
    }
    const int a = static_cast<int>(da), b = static_cast<int>(db);
    if (a == b) return Err("pattern edge (" + std::to_string(a) + "," +
                           std::to_string(b) + ") is a self-loop");
    if (p.HasEdge(a, b)) {
      return Err("duplicate pattern edge (" + std::to_string(a) + "," +
                 std::to_string(b) + ")");
    }
    p.AddEdge(a, b);
  }
  const Value* labels = nullptr;
  if (Status s = GetArray(*pat, "labels", &labels); !s.ok()) return s;
  if (static_cast<int64_t>(labels->array.size()) != n) {
    return Err("pattern labels must list one label per vertex");
  }
  for (std::size_t i = 0; i < labels->array.size(); ++i) {
    Label l = Pattern::kAnyLabel;
    if (Status s = ParseLabel(labels->array[i], "pattern labels", &l);
        !s.ok()) {
      return s;
    }
    p.SetLabel(static_cast<int>(i), l);
  }
  *out = p;
  return Status();
}

Status ParseIntArray(const Value& arr, const char* what, double lo, double hi,
                     std::vector<int>* out) {
  for (const Value& v : arr.array) {
    if (v.type != Value::kNumber || v.number != std::floor(v.number) ||
        v.number < lo || v.number > hi) {
      return Err(std::string(what) + " entries must be integers in [" +
                 std::to_string(static_cast<int64_t>(lo)) + ", " +
                 std::to_string(static_cast<int64_t>(hi)) + "]");
    }
    out->push_back(static_cast<int>(v.number));
  }
  return Status();
}

Status ParseStart(const Value& doc, CompiledPlan* plan) {
  const Value* start = nullptr;
  if (Status s = GetObject(doc, "start", &start); !s.ok()) return s;
  std::string mode;
  if (Status s = GetString(*start, "mode", &mode); !s.ok()) return s;
  if (mode == StartModeName(StartMode::kVertexParallel)) {
    plan->start = StartMode::kVertexParallel;
  } else if (mode == StartModeName(StartMode::kEdgeParallel)) {
    plan->start = StartMode::kEdgeParallel;
  } else {
    return Err("unknown start mode '" + mode + "'");
  }
  if (Status s = ParseLabelField(*start, "label", &plan->start_label);
      !s.ok()) {
    return s;
  }
  if (plan->start == StartMode::kEdgeParallel) {
    if (Status s = ParseLabelField(*start, "second_label",
                                   &plan->second_label);
        !s.ok()) {
      return s;
    }
  }
  if (Status s = GetBool(*start, "ascending", &plan->start_ascending);
      !s.ok()) {
    return s;
  }
  const Value* rat = nullptr;
  if (Status s = GetObject(*start, "rationale", &rat); !s.ok()) return s;
  if (Status s = GetBool(*rat, "input_aware", &plan->input_aware); !s.ok()) {
    return s;
  }
  if (Status s = GetNumber(*rat, "est_start_rows", &plan->est_start_rows);
      !s.ok()) {
    return s;
  }
  if (Status s = GetNumber(*rat, "est_pair_rows", &plan->est_pair_rows);
      !s.ok()) {
    return s;
  }
  // edge_parallel_profitable is derived from the two estimates on emit.
  return GetBool(*rat, "edge_parallel_foldable",
                 &plan->edge_parallel_foldable);
}

Status ParseLevels(const Value& doc, CompiledPlan* plan) {
  const Value* levels = nullptr;
  if (Status s = GetArray(doc, "levels", &levels); !s.ok()) return s;
  for (std::size_t i = 0; i < levels->array.size(); ++i) {
    const Value& lv = levels->array[i];
    if (lv.type != Value::kObject) return Err("levels must be objects");
    const int expected_depth = plan->first_depth() + static_cast<int>(i);
    int64_t depth = 0;
    if (Status s = GetInt(lv, "depth", 0, Pattern::kMaxVertices, &depth);
        !s.ok()) {
      return s;
    }
    if (depth != expected_depth) {
      return Err("level " + std::to_string(i) + " has depth " +
                 std::to_string(depth) + "; a " +
                 StartModeName(plan->start) + " plan's level " +
                 std::to_string(i) + " runs at depth " +
                 std::to_string(expected_depth));
    }
    CompiledLevel level;
    const Value* intersect = nullptr;
    if (Status s = GetArray(lv, "intersect", &intersect); !s.ok()) return s;
    if (Status s = ParseIntArray(*intersect, "intersect", 0,
                                 Pattern::kMaxVertices - 1,
                                 &level.intersect_positions);
        !s.ok()) {
      return s;
    }
    if (Status s = ParseLabelField(lv, "label", &level.candidate_label);
        !s.ok()) {
      return s;
    }
    if (Status s =
            GetBool(lv, "require_ascending", &level.require_ascending);
        !s.ok()) {
      return s;
    }
    if (Status s = GetBool(lv, "enforce_injective", &level.enforce_injective);
        !s.ok()) {
      return s;
    }
    const Value* restrictions = nullptr;
    if (Status s = GetArray(lv, "restrictions", &restrictions); !s.ok()) {
      return s;
    }
    for (const Value& rv : restrictions->array) {
      if (rv.type != Value::kObject) {
        return Err("restrictions must be objects");
      }
      int64_t smaller = 0, larger = 0;
      if (Status s = GetInt(rv, "smaller_pos", 0, Pattern::kMaxVertices - 1,
                            &smaller);
          !s.ok()) {
        return s;
      }
      if (Status s =
              GetInt(rv, "larger_pos", 0, Pattern::kMaxVertices - 1, &larger);
          !s.ok()) {
        return s;
      }
      level.restrictions.push_back({static_cast<int>(smaller),
                                    static_cast<int>(larger)});
    }
    if (Status s = GetBool(lv, "count_only", &level.count_only); !s.ok()) {
      return s;
    }
    std::string strategy;
    if (Status s = GetString(lv, "write_strategy", &strategy); !s.ok()) {
      return s;
    }
    if (strategy != "inherit") {
      bool known = false;
      for (WriteStrategy w :
           {WriteStrategy::kNaiveTwoPass, WriteStrategy::kPreAlloc,
            WriteStrategy::kDynamicAlloc}) {
        if (strategy == WriteStrategyName(w)) {
          level.write_strategy = w;
          known = true;
          break;
        }
      }
      if (!known) return Err("unknown write strategy '" + strategy + "'");
    }
    const Value* pm = lv.Find("pre_merge");
    if (pm == nullptr) return Err("missing field 'pre_merge'");
    if (pm->type == Value::kBool) {
      level.pre_merge = pm->boolean;
    } else if (pm->type != Value::kString || pm->str != "inherit") {
      return Err("pre_merge must be a boolean or \"inherit\"");
    }
    if (Status s = GetNumber(lv, "est_rows", &level.est_rows); !s.ok()) {
      return s;
    }
    // The level rationale block is fully derived (intersect width,
    // threshold constant, rule names); it is recomputed on emit.
    plan->levels.push_back(std::move(level));
  }
  return Status();
}

}  // namespace

Result<CompiledPlan> ParsePlanJson(const std::string& text) {
  Value doc;
  if (!minijson::Parse(text, &doc) || doc.type != Value::kObject) {
    return Err("not a JSON object");
  }
  std::string schema;
  if (Status s = GetString(doc, "schema", &schema); !s.ok()) return s;
  if (schema != "gamma.plan.v1") {
    return Err("unsupported schema '" + schema + "'");
  }
  CompiledPlan plan;
  std::string kind;
  if (Status s = GetString(doc, "kind", &kind); !s.ok()) return s;
  if (Status s = ParseKind(kind, &plan.kind); !s.ok()) return s;

  if (plan.kind == PlanKind::kSubgraphMatch ||
      plan.kind == PlanKind::kEdgeJoin) {
    if (Status s = ParsePatternObject(doc, &plan.pattern); !s.ok()) return s;
  }
  if (plan.kind == PlanKind::kSubgraphMatch ||
      plan.kind == PlanKind::kMotifCensus) {
    const Value* order = nullptr;
    if (Status s = GetArray(doc, "order", &order); !s.ok()) return s;
    if (Status s = ParseIntArray(*order, "order", 0,
                                 Pattern::kMaxVertices - 1, &plan.order);
        !s.ok()) {
      return s;
    }
    if (Status s = ParseStart(doc, &plan); !s.ok()) return s;
    if (Status s = ParseLevels(doc, &plan); !s.ok()) return s;
  }
  if (plan.kind == PlanKind::kEdgeJoin) {
    const Value* edge_order = nullptr;
    if (Status s = GetArray(doc, "edge_order", &edge_order); !s.ok()) {
      return s;
    }
    for (const Value& e : edge_order->array) {
      if (e.type != Value::kArray || e.array.size() != 2 ||
          e.array[0].type != Value::kNumber ||
          e.array[1].type != Value::kNumber ||
          e.array[0].number != std::floor(e.array[0].number) ||
          e.array[1].number != std::floor(e.array[1].number) ||
          e.array[0].number < 0 || e.array[1].number < 0 ||
          e.array[0].number >= Pattern::kMaxVertices ||
          e.array[1].number >= Pattern::kMaxVertices) {
        return Err("edge_order must be [a, b] integer pairs in range");
      }
      plan.edge_order.emplace_back(static_cast<int>(e.array[0].number),
                                   static_cast<int>(e.array[1].number));
    }
  }
  if (plan.kind == PlanKind::kFrequentMining) {
    const Value* fpm = nullptr;
    if (Status s = GetObject(doc, "fpm", &fpm); !s.ok()) return s;
    int64_t max_edges = 0;
    if (Status s = GetInt(*fpm, "max_edges", 0, 1 << 20, &max_edges);
        !s.ok()) {
      return s;
    }
    plan.max_edges = static_cast<int>(max_edges);
    double min_support = 0;
    if (Status s = GetNumber(*fpm, "min_support", &min_support); !s.ok()) {
      return s;
    }
    if (min_support != std::floor(min_support) || min_support < 0) {
      return Err("min_support must be a non-negative integer");
    }
    plan.min_support = static_cast<uint64_t>(min_support);
  }
  if (Status s = GetBool(doc, "symmetry_broken", &plan.symmetry_broken);
      !s.ok()) {
    return s;
  }
  int64_t automorphisms = 0;
  if (Status s = GetInt(doc, "automorphisms", 0,
                        static_cast<double>(
                            std::numeric_limits<int64_t>::max()),
                        &automorphisms);
      !s.ok()) {
    return s;
  }
  plan.automorphisms = static_cast<uint64_t>(automorphisms);
  if (Status s = GetNumber(doc, "estimated_cost", &plan.estimated_cost);
      !s.ok()) {
    return s;
  }
  return plan;
}

}  // namespace gpm::core
