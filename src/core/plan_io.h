#ifndef GAMMA_CORE_PLAN_IO_H_
#define GAMMA_CORE_PLAN_IO_H_

#include <string>

#include "common/status.h"
#include "core/pattern_compiler.h"

namespace gpm::core {

/// Parses a `gamma.plan.v1` document (the format CompiledPlan::ToJson
/// emits) back into a CompiledPlan. Strict on shape and types: unknown
/// kinds or strategy names, malformed patterns (self-loops, duplicate
/// edges, out-of-range vertex ids, bad labels), non-integer numeric
/// fields, and level lists whose depths do not line up are rejected with
/// kInvalidArgument. Derived rationale fields (edge_parallel_profitable,
/// write_strategy_rule, ...) are recomputed on re-serialization, so a
/// compiler-emitted document round-trips byte-identically:
///
///   ParsePlanJson(plan.ToJson()).value().ToJson() == plan.ToJson()
///
/// Parsing establishes shape, not soundness — load-path callers must still
/// gate the result through the PlanVerifier (CompiledEngine does so
/// unconditionally).
Result<CompiledPlan> ParsePlanJson(const std::string& text);

}  // namespace gpm::core

#endif  // GAMMA_CORE_PLAN_IO_H_
