#include "core/plan_profiler.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"
#include "gpusim/critpath.h"

namespace gpm::core {
namespace {

// Process-wide marker-name sequence: several runs may share one device
// command log (benches reuse a device across iterations), and the critpath
// analyzer accumulates same-named phase instances, so every run's markers
// get a fresh prefix.
std::atomic<uint64_t> g_planprof_seq{0};

// Q-error with both sides clamped at one row, so empty levels and
// sub-row estimates stay finite and hand-computable: q(est, act) =
// max(est', act') / min(est', act') >= 1.
double QError(double est_rows, uint64_t rows) {
  const double e = std::max(est_rows, 1.0);
  const double r = std::max(static_cast<double>(rows), 1.0);
  return std::max(e / r, r / e);
}

// Canonical left-to-right fold, mirrored by tools/validate_bench_json.py.
double FoldSum(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

// max/mean over a slot histogram; 0 when the histogram carries no work.
double Imbalance(const std::vector<double>& hist, double* max_out,
                 double* mean_out) {
  *max_out = 0.0;
  *mean_out = 0.0;
  if (hist.empty()) return 0.0;
  double max = 0.0;
  for (double v : hist) max = std::max(max, v);
  const double mean = FoldSum(hist) / static_cast<double>(hist.size());
  *max_out = max;
  *mean_out = mean;
  if (max <= 0.0 || mean <= 0.0) return 0.0;
  return max / mean;
}

std::string MarkerName(uint64_t seq, const std::string& label) {
  std::ostringstream os;
  os << "planprof/" << seq << "/" << label;
  return os.str();
}

void WriteCounters(JsonWriter& w, const gpusim::DeviceStats& counters) {
  w.BeginObject();
  for (const auto& f : gpusim::DeviceStats::Fields()) {
    w.Key(f.name).Value(counters.*(f.member));
  }
  w.EndObject();
}

void WriteAttribution(JsonWriter& w,
                      const gpusim::ResourceCycles& attribution) {
  w.BeginObject();
  for (int c = 0; c < gpusim::kNumResourceClasses; ++c) {
    w.Key(gpusim::ResourceClassName(static_cast<gpusim::ResourceClass>(c)))
        .Value(attribution[static_cast<std::size_t>(c)]);
  }
  w.EndObject();
}

}  // namespace

void PlanProfiler::BeginRun(const CompiledPlan& plan,
                            gpusim::Device* device) {
  device_ = device;
  kind_ = PlanKindName(plan.kind);
  start_mode_ = plan.kind == PlanKind::kSubgraphMatch ||
                        plan.kind == PlanKind::kMotifCensus
                    ? StartModeName(plan.start)
                    : "edge-table";
  order_ = plan.order;
  segments_.clear();
  run_seq_ = g_planprof_seq.fetch_add(1, std::memory_order_relaxed);
  in_run_ = true;
  finished_ = false;
  attribution_available_ = false;
  partial_ = false;
  dropped_commands_ = 0;
  segment_open_ = false;
  run_begin_cycles_ = device_->now_cycles();
  total_cycles_ = 0;
}

void PlanProfiler::BeginSegment(PlanProfLevelInput input) {
  GAMMA_CHECK(in_run_) << "BeginSegment outside a run";
  GAMMA_CHECK(!segment_open_) << "nested planprof segments";
  PlanProfSegment seg;
  seg.label = std::move(input.label);
  seg.depth = input.depth;
  seg.has_estimate = input.has_estimate;
  seg.est_rows = input.est_rows;
  seg.intersect_width = input.intersect_width;
  seg.union_extension = input.union_extension;
  seg.has_strategy = input.has_strategy;
  seg.strategy = std::move(input.strategy);
  segments_.push_back(std::move(seg));
  segment_open_ = true;
  // The marker carries no clock edge and is skipped by the critpath
  // replay; it only lets the analyzer window this segment's commands.
  device_->BeginPhaseMark(MarkerName(run_seq_, segments_.back().label));
  seg_begin_cycles_ = device_->now_cycles();
  seg_begin_stats_ = device_->stats().Snapshot();
  seg_cmd_begin_ = device_->critpath().commands().size();
}

void PlanProfiler::EndSegment(uint64_t input_rows, uint64_t candidates,
                              uint64_t rows) {
  GAMMA_CHECK(segment_open_) << "EndSegment without BeginSegment";
  PlanProfSegment& seg = segments_.back();
  seg.cycles = device_->now_cycles() - seg_begin_cycles_;
  seg.counters = device_->stats().Diff(seg_begin_stats_);
  const std::size_t cmd_end = device_->critpath().commands().size();
  device_->EndPhaseMark();
  segment_open_ = false;

  seg.input_rows = input_rows;
  seg.candidates = candidates;
  seg.rows = rows;
  seg.q_error = seg.has_estimate ? QError(seg.est_rows, rows) : 0.0;
  seg.selectivity = candidates > 0 ? static_cast<double>(rows) /
                                         static_cast<double>(candidates)
                                   : 0.0;

  // Per-warp-slot histogram over the window's kernel records.
  const auto& cmds = device_->critpath().commands();
  for (std::size_t i = seg_cmd_begin_; i < cmd_end; ++i) {
    const prof::CommandRecord& rec = cmds[i];
    if (rec.kind != prof::CommandRecord::Kind::kKernel) continue;
    ++seg.kernels;
    seg.tasks += rec.tasks;
    seg.task_max_cycles = std::max(seg.task_max_cycles, rec.task_max_cycles);
    seg.task_total_cycles += rec.task_total_cycles;
    if (seg.slot_busy_cycles.size() < rec.slot_busy_cycles.size()) {
      seg.slot_busy_cycles.resize(rec.slot_busy_cycles.size(), 0.0);
    }
    for (std::size_t s = 0; s < rec.slot_busy_cycles.size(); ++s) {
      seg.slot_busy_cycles[s] += rec.slot_busy_cycles[s];
    }
  }
  seg.imbalance = Imbalance(seg.slot_busy_cycles, &seg.slot_max_cycles,
                            &seg.slot_mean_cycles);
}

void PlanProfiler::CloseOpenSegment() {
  if (!segment_open_) return;
  device_->EndPhaseMark();
  segment_open_ = false;
}

void PlanProfiler::AbortRun() {
  if (!in_run_) return;
  CloseOpenSegment();
  in_run_ = false;
  finished_ = false;
  segments_.clear();
}

void PlanProfiler::FinishRun() {
  GAMMA_CHECK(in_run_) << "FinishRun outside a run";
  GAMMA_CHECK(!segment_open_) << "FinishRun with an open segment";
  in_run_ = false;
  finished_ = true;
  total_cycles_ = device_->now_cycles() - run_begin_cycles_;
  dropped_commands_ =
      device_->critpath().dropped() + device_->dropped_kernel_records();
  partial_ = dropped_commands_ > 0;
  if (!device_->critpath().enabled()) return;

  // Windowed resource attribution: the critpath analyzer replays the
  // whole log (bit-exact) and attributes each marker-bracketed window;
  // the fold over classes equals the window's cycles exactly.
  auto report = prof::Analyze(*device_);
  if (!report.ok()) return;
  attribution_available_ = true;
  partial_ = partial_ || report.value().partial;
  for (PlanProfSegment& seg : segments_) {
    const prof::PhaseBottleneck* ph =
        report.value().FindPhase(MarkerName(run_seq_, seg.label));
    if (ph == nullptr) continue;
    seg.attributed = true;
    seg.attribution = ph->attribution;
    seg.binding = ph->binding;
  }
}

PlanProfSummary PlanProfiler::Summary() const {
  PlanProfSummary s;
  if (!finished_) return s;
  s.enabled = true;
  std::vector<double> run_hist;
  for (const PlanProfSegment& seg : segments_) {
    if (seg.has_estimate && seg.q_error > s.worst_q_error) {
      s.worst_q_error = seg.q_error;
      s.worst_q_error_depth = seg.depth;
    }
    if (run_hist.size() < seg.slot_busy_cycles.size()) {
      run_hist.resize(seg.slot_busy_cycles.size(), 0.0);
    }
    for (std::size_t i = 0; i < seg.slot_busy_cycles.size(); ++i) {
      run_hist[i] += seg.slot_busy_cycles[i];
    }
    PlanProfSummary::Level level;
    level.label = seg.label;
    level.depth = seg.depth;
    level.has_estimate = seg.has_estimate;
    level.est_rows = seg.est_rows;
    level.rows = seg.rows;
    level.q_error = seg.q_error;
    s.levels.push_back(std::move(level));
  }
  double max = 0.0;
  double mean = 0.0;
  s.imbalance = Imbalance(run_hist, &max, &mean);
  return s;
}

std::string PlanProfiler::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema").Value("gamma.planprof.v1");
  w.Key("kind").Value(kind_);
  w.Key("start_mode").Value(start_mode_);
  w.Key("order").BeginArray();
  for (int v : order_) w.Value(v);
  w.EndArray();
  w.Key("finished").Value(finished_);
  w.Key("partial").Value(partial_);
  w.Key("dropped_commands").Value(dropped_commands_);
  w.Key("attribution_available").Value(attribution_available_);
  w.Key("total_cycles").Value(total_cycles_);
  w.Key("levels").BeginArray();
  for (const PlanProfSegment& seg : segments_) {
    w.BeginObject();
    w.Key("label").Value(seg.label);
    w.Key("depth").Value(seg.depth);
    w.Key("has_estimate").Value(seg.has_estimate);
    w.Key("est_rows").Value(seg.est_rows);
    w.Key("input_rows").Value(seg.input_rows);
    w.Key("candidates").Value(seg.candidates);
    w.Key("rows").Value(seg.rows);
    w.Key("q_error").Value(seg.q_error);
    w.Key("selectivity").Value(seg.selectivity);
    w.Key("intersect_width").Value(seg.intersect_width);
    w.Key("union_extension").Value(seg.union_extension);
    if (seg.has_strategy) {
      w.Key("strategy").BeginObject();
      w.Key("write_strategy").Value(seg.strategy.write_strategy);
      w.Key("write_strategy_source")
          .Value(seg.strategy.write_strategy_from_plan ? "plan" : "inherit");
      w.Key("pre_merge").Value(seg.strategy.pre_merge);
      w.Key("pre_merge_source")
          .Value(seg.strategy.pre_merge_from_plan ? "plan" : "inherit");
      w.Key("count_only").Value(seg.strategy.count_only);
      w.EndObject();
    }
    w.Key("cycles").Value(seg.cycles);
    w.Key("counters");
    WriteCounters(w, seg.counters);
    if (seg.attributed) {
      w.Key("attribution");
      WriteAttribution(w, seg.attribution);
      w.Key("binding").Value(gpusim::ResourceClassName(seg.binding));
    }
    w.Key("kernels").Value(seg.kernels);
    w.Key("tasks").Value(seg.tasks);
    w.Key("task_max_cycles").Value(seg.task_max_cycles);
    w.Key("task_total_cycles").Value(seg.task_total_cycles);
    w.Key("slots").BeginObject();
    w.Key("count").Value(seg.slot_busy_cycles.size());
    w.Key("busy_cycles").BeginArray();
    for (double v : seg.slot_busy_cycles) w.Value(v);
    w.EndArray();
    w.Key("max").Value(seg.slot_max_cycles);
    w.Key("mean").Value(seg.slot_mean_cycles);
    w.Key("imbalance").Value(seg.imbalance);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  const PlanProfSummary summary = Summary();
  w.Key("summary").BeginObject();
  w.Key("worst_q_error").Value(summary.worst_q_error);
  w.Key("worst_q_error_depth").Value(summary.worst_q_error_depth);
  w.Key("imbalance").Value(summary.imbalance);
  w.Key("levels").BeginArray();
  for (const PlanProfSummary::Level& level : summary.levels) {
    w.BeginObject();
    w.Key("label").Value(level.label);
    w.Key("depth").Value(level.depth);
    w.Key("has_estimate").Value(level.has_estimate);
    w.Key("est_rows").Value(level.est_rows);
    w.Key("rows").Value(level.rows);
    w.Key("q_error").Value(level.q_error);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  os << "\n";
  return os.str();
}

}  // namespace gpm::core
