#ifndef GAMMA_CORE_PLAN_PROFILER_H_
#define GAMMA_CORE_PLAN_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/pattern_compiler.h"
#include "gpusim/device.h"
#include "gpusim/resource_class.h"
#include "gpusim/stats.h"

namespace gpm::core {

/// The strategy actually in effect while one plan level executed: the
/// plan's per-level override when present, otherwise the engine option it
/// inherited. `*_from_plan` records which of the two it was.
struct PlanProfStrategy {
  std::string write_strategy;
  bool write_strategy_from_plan = false;
  bool pre_merge = false;
  bool pre_merge_from_plan = false;
  bool count_only = false;
};

/// Planner-side inputs for one profiled segment, passed by CompiledEngine
/// when it opens the segment's bracket.
struct PlanProfLevelInput {
  std::string label;  ///< "L<depth>" / "it<i>" / "e<k>" / "start"
  int depth = 0;
  bool has_estimate = false;  ///< the planner's model covers this segment
  double est_rows = 0;        ///< estimated rows after the segment
  int intersect_width = 0;    ///< matched adjacency lists intersected
  bool union_extension = false;
  bool has_strategy = false;  ///< vertex levels carry strategy choices
  PlanProfStrategy strategy;
};

/// One profiled segment of a CompiledEngine::Run — the start-table build
/// or one extension level/iteration — with estimate-vs-actual counts, the
/// execution window's counter deltas, the per-warp-slot work histogram,
/// and (when the command log was recording) critpath resource attribution.
struct PlanProfSegment {
  // Planner side (copied from PlanProfLevelInput).
  std::string label;
  int depth = 0;
  bool has_estimate = false;
  double est_rows = 0;
  int intersect_width = 0;
  bool union_extension = false;
  bool has_strategy = false;
  PlanProfStrategy strategy;

  // Actuals.
  uint64_t input_rows = 0;
  uint64_t candidates = 0;
  uint64_t rows = 0;  ///< rows after the segment (or count-only tally)
  /// max(est', act') / min(est', act') with both clamped at 1; always
  /// >= 1 when has_estimate, 0 otherwise.
  double q_error = 0;
  double selectivity = 0;  ///< rows / candidates (0 when no candidates)

  // Execution window.
  double cycles = 0;
  gpusim::DeviceStats counters;  ///< DeviceStats delta over the window

  // Per-warp-slot work histogram, summed over the window's kernels.
  // imbalance = max / mean busy cycles across slots (>= 1; 0 = no work).
  std::vector<double> slot_busy_cycles;
  uint64_t kernels = 0;
  uint64_t tasks = 0;
  double task_max_cycles = 0;
  double task_total_cycles = 0;
  double slot_max_cycles = 0;
  double slot_mean_cycles = 0;
  double imbalance = 0;

  // Critpath resource attribution of the window's phase (fold-exact to
  // `cycles`); only valid when `attributed`.
  bool attributed = false;
  gpusim::ResourceCycles attribution{};
  gpusim::ResourceClass binding = gpusim::ResourceClass::kSyncIdle;
};

/// Compact per-run digest embedded in gamma.bench.v1 documents.
struct PlanProfSummary {
  bool enabled = false;
  double worst_q_error = 0;  ///< 0 when no segment had an estimate
  int worst_q_error_depth = -1;
  double imbalance = 0;  ///< max/mean over the run-total slot histogram
  struct Level {
    std::string label;
    int depth = 0;
    bool has_estimate = false;
    double est_rows = 0;
    uint64_t rows = 0;
    double q_error = 0;
  };
  std::vector<Level> levels;  ///< start segment first, then each level
};

/// Per-level estimate-vs-actual audit of one CompiledEngine::Run: Q-error
/// against the planner's cardinality model, the strategy in effect and the
/// inputs that drove it, per-level resource-class attribution (via
/// critpath phase markers), and a per-warp-slot load-imbalance histogram.
///
/// Observation only: the profiler reads the clock, counter snapshots, and
/// the command log, and brackets each level with phase markers — none of
/// which carries a clock edge — so a profiled run is bit-identical in
/// cycles and DeviceStats to an unprofiled one (enforced by
/// planprof_test). Attribution and slot histograms additionally need
/// DeviceParams::record_commands; without it the run still profiles rows,
/// Q-error, cycles, and counters.
class PlanProfiler {
 public:
  // -- Hooks driven by CompiledEngine ---------------------------------------

  /// Starts a fresh audit (discarding any previous run's data).
  void BeginRun(const CompiledPlan& plan, gpusim::Device* device);
  /// Opens one segment bracket; every Begin must be closed by EndSegment
  /// (success) or AbortRun (error path) before the next Begin.
  void BeginSegment(PlanProfLevelInput input);
  void EndSegment(uint64_t input_rows, uint64_t candidates, uint64_t rows);
  /// Closes any open bracket and invalidates the run (error path).
  void AbortRun();
  /// Collects attribution and totals; the run becomes readable.
  void FinishRun();

  // -- Results --------------------------------------------------------------

  bool has_run() const { return finished_; }
  const std::vector<PlanProfSegment>& segments() const { return segments_; }
  PlanProfSummary Summary() const;
  /// gamma.planprof.v1 JSON document (empty run => minimal document).
  std::string ToJson() const;

 private:
  void CloseOpenSegment();

  gpusim::Device* device_ = nullptr;
  std::string kind_;
  std::string start_mode_;
  std::vector<int> order_;
  std::vector<PlanProfSegment> segments_;
  /// Unique per-process prefix for marker names, so repeated runs on one
  /// device log never alias phase instances in the analyzer.
  uint64_t run_seq_ = 0;

  bool in_run_ = false;
  bool finished_ = false;
  bool attribution_available_ = false;
  bool partial_ = false;
  uint64_t dropped_commands_ = 0;
  double run_begin_cycles_ = 0;
  double total_cycles_ = 0;

  // Open-segment bookkeeping.
  bool segment_open_ = false;
  double seg_begin_cycles_ = 0;
  gpusim::DeviceStats seg_begin_stats_;
  std::size_t seg_cmd_begin_ = 0;
};

}  // namespace gpm::core

#endif  // GAMMA_CORE_PLAN_PROFILER_H_
