#include "core/plan_verifier.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <numeric>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace gpm::core {
namespace {

using graph::Pattern;

// Mirrors the (file-local) constant in extension.cc: one embedding-table
// entry is a candidate unit plus its parent row index.
constexpr std::size_t kEntryBytes = sizeof(Unit) + sizeof(RowIndex);

std::string VecToString(const std::vector<int>& v) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ",";
    os << v[i];
  }
  os << "]";
  return os.str();
}

bool PatternConnected(const Pattern& p) {
  const int n = p.num_vertices();
  if (n <= 1) return true;
  std::array<bool, Pattern::kMaxVertices> seen{};
  std::vector<int> stack = {0};
  seen[0] = true;
  int reached = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int w = 0; w < n; ++w) {
      if (!seen[w] && p.HasEdge(v, w)) {
        seen[w] = true;
        ++reached;
        stack.push_back(w);
      }
    }
  }
  return reached == n;
}

// Independent automorphism enumeration: label- and degree-pruned
// backtracking over partial vertex images. Deliberately a different
// algorithm from symmetry.cc's next_permutation sweep (and from
// Pattern::CountAutomorphisms), so the verifier is not the compiler
// checking itself.
void AutomorphismBacktrack(const Pattern& p, std::vector<int>* sigma,
                           std::array<bool, Pattern::kMaxVertices>* used,
                           int i, std::vector<std::vector<int>>* out) {
  const int n = p.num_vertices();
  if (i == n) {
    out->push_back(*sigma);
    return;
  }
  for (int w = 0; w < n; ++w) {
    if ((*used)[w]) continue;
    if (p.label(i) != p.label(w)) continue;
    if (p.degree(i) != p.degree(w)) continue;
    bool consistent = true;
    for (int j = 0; j < i; ++j) {
      if (p.HasEdge(i, j) != p.HasEdge(w, (*sigma)[j])) {
        consistent = false;
        break;
      }
    }
    if (!consistent) continue;
    (*sigma)[i] = w;
    (*used)[w] = true;
    AutomorphismBacktrack(p, sigma, used, i + 1, out);
    (*used)[w] = false;
  }
}

std::vector<std::vector<int>> EnumerateAutomorphisms(const Pattern& p) {
  std::vector<std::vector<int>> out;
  std::vector<int> sigma(p.num_vertices());
  std::array<bool, Pattern::kMaxVertices> used{};
  AutomorphismBacktrack(p, &sigma, &used, 0, &out);
  return out;
}

// Lexicographic index of a permutation of 0..k-1 (Lehmer code), used to
// bucket the k! candidate rank orders during the orbit sweep.
uint32_t LehmerIndex(const std::vector<int>& p) {
  const int k = static_cast<int>(p.size());
  uint32_t idx = 0;
  for (int i = 0; i < k; ++i) {
    int smaller = 0;
    for (int j = i + 1; j < k; ++j) {
      if (p[j] < p[i]) ++smaller;
    }
    idx = idx * static_cast<uint32_t>(k - i) + static_cast<uint32_t>(smaller);
  }
  return idx;
}

uint32_t Factorial(int k) {
  uint32_t f = 1;
  for (int i = 2; i <= k; ++i) f *= static_cast<uint32_t>(i);
  return f;
}

// All ordering constraints the plan imposes across matching-order
// positions, normalized to (a, b) meaning "the data vertex at position a
// has a smaller id than the one at position b": folded ascending chains,
// the edge-parallel ascending pair scan, and explicit restrictions.
std::vector<std::pair<int, int>> EffectiveRestrictions(
    const CompiledPlan& plan) {
  std::vector<std::pair<int, int>> all;
  if (plan.start == StartMode::kEdgeParallel && plan.start_ascending) {
    all.emplace_back(0, 1);
  }
  for (std::size_t i = 0; i < plan.levels.size(); ++i) {
    const CompiledLevel& level = plan.levels[i];
    const int d = plan.first_depth() + static_cast<int>(i);
    if (level.require_ascending) {
      for (int j = 0; j < d; ++j) all.emplace_back(j, d);
    }
    for (const SymmetryRestriction& r : level.restrictions) {
      all.emplace_back(r.smaller_pos, r.larger_pos);
    }
  }
  return all;
}

class Checker {
 public:
  Checker(const CompiledPlan& plan, const VerifyOptions& options,
          VerifyReport* report)
      : plan_(plan), options_(options), report_(report) {}

  void Run() {
    report_->kind = PlanKindName(plan_.kind);
    report_->structural_checked = true;
    Structural();
    // A structurally broken plan (order not a permutation, columns out of
    // bounds) makes the semantic machinery itself unsound to run; the
    // structural refutation is final.
    if (report_->structural_passed) {
      switch (plan_.kind) {
        case PlanKind::kSubgraphMatch:
          SemanticMatch();
          break;
        case PlanKind::kEdgeJoin:
          SemanticEdgeJoin();
          break;
        case PlanKind::kMotifCensus:
        case PlanKind::kFrequentMining:
          break;  // no pattern: nothing semantic beyond the shape checks
      }
      Resources();
    }
    report_->verified = report_->errors == 0;
  }

 private:
  enum Tier { kStructural, kSemantic, kResources };

  bool Require(Tier tier, bool ok, const char* obligation, int depth,
               std::string message,
               VerifySeverity severity = VerifySeverity::kError) {
    ++report_->obligations_checked;
    if (ok) return true;
    VerifyFinding f;
    f.obligation = obligation;
    f.severity = severity;
    f.depth = depth;
    f.message = std::move(message);
    report_->findings.push_back(std::move(f));
    if (severity == VerifySeverity::kError) {
      ++report_->errors;
      switch (tier) {
        case kStructural:
          report_->structural_passed = false;
          break;
        case kSemantic:
          report_->semantic_passed = false;
          break;
        case kResources:
          report_->resources_passed = false;
          break;
      }
    } else {
      ++report_->warnings;
    }
    return false;
  }

  // -- Tier 1: structural well-formedness ---------------------------------

  void Structural() {
    switch (plan_.kind) {
      case PlanKind::kSubgraphMatch:
        StructuralVertex(/*motif=*/false);
        break;
      case PlanKind::kMotifCensus:
        StructuralVertex(/*motif=*/true);
        break;
      case PlanKind::kFrequentMining:
        StructuralFpm();
        break;
      case PlanKind::kEdgeJoin:
        StructuralEdgeJoin();
        break;
    }
  }

  void StructuralVertex(bool motif) {
    const std::vector<int>& order = plan_.order;
    const int k = static_cast<int>(order.size());
    if (!Require(kStructural, k >= 1 && k <= Pattern::kMaxVertices,
                 "order-permutation", -1,
                 "matching order must have 1.." +
                     std::to_string(Pattern::kMaxVertices) +
                     " entries, has " + std::to_string(k))) {
      return;
    }
    std::array<bool, Pattern::kMaxVertices> seen{};
    bool perm = true;
    for (int v : order) {
      if (v < 0 || v >= k || seen[v]) {
        perm = false;
        break;
      }
      seen[v] = true;
    }
    if (!Require(kStructural, perm, "order-permutation", -1,
                 "matching order " + VecToString(order) +
                     " is not a permutation of 0.." + std::to_string(k - 1))) {
      return;
    }
    const Pattern& p = plan_.pattern;
    if (!motif) {
      if (!Require(kStructural, p.num_vertices() == k, "order-permutation",
                   -1,
                   "matching order covers " + std::to_string(k) +
                       " vertices but the pattern has " +
                       std::to_string(p.num_vertices()))) {
        return;
      }
      Require(kStructural, PatternConnected(p), "pattern-connected", -1,
              "pattern graph is not connected");
    }

    const bool ep = plan_.start == StartMode::kEdgeParallel;
    if (ep) {
      if (!Require(kStructural, k >= 2, "start-edge", -1,
                   "edge-parallel start needs at least two pattern "
                   "vertices")) {
        return;
      }
      if (!motif) {
        Require(kStructural, p.HasEdge(order[0], order[1]), "start-edge", 1,
                "edge-parallel start requires a pattern edge between "
                "order[0]=" + std::to_string(order[0]) + " and order[1]=" +
                    std::to_string(order[1]));
      }
    }
    if (motif) {
      Require(kStructural, !ep, "motif-shape", -1,
              "motif census requires a vertex-parallel start");
      Require(kStructural,
              plan_.start_label == Pattern::kAnyLabel && !plan_.symmetry_broken,
              "motif-shape", -1,
              "motif census is unlabeled and never breaks symmetry "
              "(supports divide by connected-ordering multiplicity "
              "instead)");
      Require(kStructural, plan_.edge_order.empty(), "motif-shape", -1,
              "motif census plans carry no edge order");
    } else {
      Require(kStructural, plan_.start_label == p.label(order[0]),
              "label-consistent", 0,
              "start label does not match the pattern label of order[0]=" +
                  std::to_string(order[0]));
      if (ep && k >= 2) {
        Require(kStructural, plan_.second_label == p.label(order[1]),
                "label-consistent", 1,
                "second start label does not match the pattern label of "
                "order[1]=" + std::to_string(order[1]));
      }
    }

    const int fd = plan_.first_depth();
    if (!Require(kStructural, static_cast<int>(plan_.levels.size()) == k - fd,
                 "level-count", -1,
                 "plan has " + std::to_string(plan_.levels.size()) +
                     " levels; a " + std::to_string(k) + "-vertex " +
                     StartModeName(plan_.start) + " plan needs " +
                     std::to_string(k - fd))) {
      return;
    }

    for (std::size_t i = 0; i < plan_.levels.size(); ++i) {
      const CompiledLevel& level = plan_.levels[i];
      const int d = fd + static_cast<int>(i);
      std::array<bool, Pattern::kMaxVertices> used{};
      for (int pos : level.intersect_positions) {
        if (!Require(kStructural, pos >= 0 && pos < d, "intersect-bounds", d,
                     "intersect position " + std::to_string(pos) +
                         " does not reference an already-bound column "
                         "(depth " + std::to_string(d) + ")")) {
          continue;
        }
        Require(kStructural, !used[pos], "intersect-bounds", d,
                "intersect position " + std::to_string(pos) +
                    " listed twice");
        used[pos] = true;
      }
      if (motif) {
        Require(kStructural, level.intersect_positions.empty(), "motif-shape",
                d,
                "motif census levels extend over the union neighborhood "
                "(no intersect set)");
        Require(kStructural, level.candidate_label == Pattern::kAnyLabel,
                "motif-shape", d, "motif census levels are unlabeled");
        Require(kStructural,
                level.restrictions.empty() && !level.require_ascending,
                "motif-shape", d,
                "motif census levels carry no symmetry restrictions");
        Require(kStructural, level.enforce_injective, "motif-shape", d,
                "motif census levels must enforce injectivity");
      } else {
        Require(kStructural, !level.intersect_positions.empty(),
                "prefix-connected", d,
                "level has an empty intersect set: the matching-order "
                "prefix through depth " + std::to_string(d) +
                    " is not connected");
        Require(kStructural, level.candidate_label == p.label(order[d]),
                "label-consistent", d,
                "candidate label does not match the pattern label of "
                "order[" + std::to_string(d) + "]=" +
                    std::to_string(order[d]));
      }
      for (const SymmetryRestriction& r : level.restrictions) {
        const bool anchored =
            (r.larger_pos == d && r.smaller_pos >= 0 && r.smaller_pos < d) ||
            (r.smaller_pos == d && r.larger_pos >= 0 && r.larger_pos < d);
        Require(kStructural, anchored, "restriction-bounds", d,
                "restriction (" + std::to_string(r.smaller_pos) + " < " +
                    std::to_string(r.larger_pos) +
                    ") must pair the level's own position " +
                    std::to_string(d) + " with an already-bound column");
      }
      Require(kStructural,
              !level.count_only || (!motif && i + 1 == plan_.levels.size()),
              "count-only-last", d,
              motif ? "motif census aggregation reads the full table; no "
                      "level may be count-only"
                    : "count-only is only legal on the final level (later "
                      "levels would read a column that was never "
                      "materialized)");
      if (level.pre_merge.has_value() && *level.pre_merge) {
        Require(kStructural, level.intersect_positions.size() >= 2,
                "pre-merge-width", d,
                "pre_merge pinned on with fewer than two intersect columns "
                "(grouped intersection has no prefix work to hoist)",
                VerifySeverity::kWarning);
      }
    }
  }

  void StructuralFpm() {
    Require(kStructural, plan_.max_edges >= 1, "fpm-params", -1,
            "frequent mining needs max_edges >= 1");
    Require(kStructural,
            plan_.order.empty() && plan_.levels.empty() &&
                plan_.edge_order.empty(),
            "fpm-params", -1,
            "frequent mining is driven by max_edges; the plan carries no "
            "matching order, vertex levels, or edge order");
    Require(kStructural, plan_.start == StartMode::kVertexParallel,
            "fpm-params", -1,
            "frequent mining seeds from the edge table; start mode must "
            "stay vertex-parallel (default)");
  }

  void StructuralEdgeJoin() {
    const Pattern& p = plan_.pattern;
    if (!Require(kStructural, p.num_vertices() >= 2, "edge-order", -1,
                 "edge join needs a pattern with at least one edge")) {
      return;
    }
    Require(kStructural, PatternConnected(p), "pattern-connected", -1,
            "pattern graph is not connected");
    Require(kStructural, plan_.order.empty() && plan_.levels.empty(),
            "edge-order", -1,
            "edge-join plans carry no vertex matching order or levels");

    const auto edges = p.EdgeList();
    if (!Require(kStructural, plan_.edge_order.size() == edges.size(),
                 "edge-order", -1,
                 "edge order lists " + std::to_string(plan_.edge_order.size()) +
                     " edges; the pattern has " +
                     std::to_string(edges.size()))) {
      return;
    }
    std::array<std::array<bool, Pattern::kMaxVertices>,
               Pattern::kMaxVertices>
        covered{};
    std::array<bool, Pattern::kMaxVertices> bound{};
    for (std::size_t i = 0; i < plan_.edge_order.size(); ++i) {
      auto [a, b] = plan_.edge_order[i];
      const int step = static_cast<int>(i);
      if (!Require(kStructural,
                   a >= 0 && b >= 0 && a < p.num_vertices() &&
                       b < p.num_vertices() && a != b && p.HasEdge(a, b),
                   "edge-order", step,
                   "edge order entry (" + std::to_string(a) + "," +
                       std::to_string(b) + ") is not a pattern edge")) {
        continue;
      }
      const int lo = std::min(a, b), hi = std::max(a, b);
      Require(kStructural, !covered[lo][hi], "edge-order", step,
              "edge (" + std::to_string(lo) + "," + std::to_string(hi) +
                  ") appears twice in the edge order");
      covered[lo][hi] = true;
      Require(kStructural, i == 0 || bound[a] || bound[b], "edge-order",
              step,
              "edge (" + std::to_string(a) + "," + std::to_string(b) +
                  ") shares no vertex with the edges before it (prefix "
                  "not connected)");
      bound[a] = bound[b] = true;
    }
  }

  // -- Tier 2: semantic soundness ------------------------------------------

  void SemanticMatch() {
    report_->semantic_checked = true;
    const Pattern& p = plan_.pattern;
    const std::vector<int>& order = plan_.order;
    const int k = static_cast<int>(order.size());

    const std::vector<std::vector<int>> autos = EnumerateAutomorphisms(p);
    report_->automorphisms = autos.size();
    Require(kSemantic, plan_.automorphisms == autos.size(),
            "automorphism-count", -1,
            "plan claims " + std::to_string(plan_.automorphisms) +
                " automorphisms; independent enumeration finds " +
                std::to_string(autos.size()));

    CheckEdgeCoverage();
    CheckInjectivity();

    // Orbit analysis of the restriction set. An adversarial data graph can
    // realize any relative id order of the k matched vertices, and the
    // embeddings of one instance form exactly one orbit of rank orders
    // under the automorphism group's action on positions. Soundness /
    // completeness therefore reduce to: every orbit keeps >= 1 / exactly 1
    // rank order satisfying the restrictions.
    const std::vector<std::pair<int, int>> effective =
        EffectiveRestrictions(plan_);
    if (!plan_.symmetry_broken) {
      // Without the symmetry-broken claim the engine divides embeddings by
      // |Aut|, which is only correct when no embedding is ever filtered.
      Require(kSemantic, effective.empty(), "restriction-unclaimed", -1,
              "plan filters embeddings through " +
                  std::to_string(effective.size()) +
                  " ordering restriction(s) without claiming "
                  "symmetry_broken; dividing by |Aut| would undercount");
      return;
    }

    // pos_of[v] = position of pattern vertex v in the matching order;
    // pis[s][d] = position that automorphism s maps position d onto.
    std::array<int, Pattern::kMaxVertices> pos_of{};
    for (int d = 0; d < k; ++d) pos_of[order[d]] = d;
    std::vector<std::vector<int>> pis;
    pis.reserve(autos.size());
    for (const std::vector<int>& sigma : autos) {
      std::vector<int> pi(k);
      for (int d = 0; d < k; ++d) pi[d] = pos_of[sigma[order[d]]];
      pis.push_back(std::move(pi));
    }

    const uint32_t kfact = Factorial(k);
    std::vector<uint8_t> visited(kfact, 0);
    std::vector<int> r(k), image(k);
    std::iota(r.begin(), r.end(), 0);
    int orbits_empty = 0, orbits_multi = 0;
    std::string example_empty, example_multi;
    do {
      if (visited[LehmerIndex(r)]) continue;
      int satisfying = 0;
      for (const std::vector<int>& pi : pis) {
        for (int d = 0; d < k; ++d) image[d] = r[pi[d]];
        const uint32_t idx = LehmerIndex(image);
        if (visited[idx]) continue;  // group action is free; first touch
        visited[idx] = 1;
        bool ok = true;
        for (auto [a, b] : effective) {
          if (image[a] >= image[b]) {
            ok = false;
            break;
          }
        }
        if (ok) ++satisfying;
      }
      if (satisfying == 0 && ++orbits_empty == 1) {
        example_empty = VecToString(r);
      }
      if (satisfying > 1 && ++orbits_multi == 1) {
        example_multi = VecToString(r);
      }
    } while (std::next_permutation(r.begin(), r.end()));

    Require(kSemantic, orbits_empty == 0, "restriction-sound", -1,
            "restrictions eliminate every representative of " +
                std::to_string(orbits_empty) +
                " automorphism orbit(s); instances matching rank order " +
                example_empty + " would never be counted");
    Require(kSemantic, orbits_multi == 0, "restriction-complete", -1,
            "restrictions keep multiple representatives in " +
                std::to_string(orbits_multi) +
                " automorphism orbit(s); instances matching rank order " +
                example_multi + " would be counted more than once");
  }

  void CheckEdgeCoverage() {
    const Pattern& p = plan_.pattern;
    const std::vector<int>& order = plan_.order;
    std::array<std::array<int, Pattern::kMaxVertices>, Pattern::kMaxVertices>
        cover{};
    auto add = [&cover](int u, int v) {
      ++cover[std::min(u, v)][std::max(u, v)];
    };
    if (plan_.start == StartMode::kEdgeParallel) {
      add(order[0], order[1]);
    }
    const int fd = plan_.first_depth();
    for (std::size_t i = 0; i < plan_.levels.size(); ++i) {
      const int d = fd + static_cast<int>(i);
      for (int pos : plan_.levels[i].intersect_positions) {
        const int u = order[pos], v = order[d];
        if (!Require(kSemantic, p.HasEdge(u, v), "edge-coverage", d,
                     "level intersects position " + std::to_string(pos) +
                         " but the pattern has no edge (" +
                         std::to_string(u) + "," + std::to_string(v) +
                         "); the intersection would drop valid "
                         "embeddings")) {
          continue;
        }
        add(u, v);
      }
    }
    for (auto [u, v] : p.EdgeList()) {
      const int n = cover[u][v];
      Require(kSemantic, n == 1, "edge-coverage", -1,
              "pattern edge (" + std::to_string(u) + "," +
                  std::to_string(v) + ") is checked " + std::to_string(n) +
                  " times across the plan's intersections; every query "
                  "edge must be enforced exactly once");
    }
  }

  void CheckInjectivity() {
    // enforce_injective=false is sound only when every earlier position is
    // already ordered against the level's position by the transitive
    // closure of the restrictions (a chain of strict id inequalities
    // implies distinctness).
    const int k = static_cast<int>(plan_.order.size());
    std::array<std::array<bool, Pattern::kMaxVertices>,
               Pattern::kMaxVertices>
        reach{};
    for (auto [a, b] : EffectiveRestrictions(plan_)) reach[a][b] = true;
    for (int m = 0; m < k; ++m) {
      for (int a = 0; a < k; ++a) {
        if (!reach[a][m]) continue;
        for (int b = 0; b < k; ++b) {
          if (reach[m][b]) reach[a][b] = true;
        }
      }
    }
    const int fd = plan_.first_depth();
    for (std::size_t i = 0; i < plan_.levels.size(); ++i) {
      if (plan_.levels[i].enforce_injective) continue;
      const int d = fd + static_cast<int>(i);
      bool implied = true;
      for (int j = 0; j < d && implied; ++j) {
        implied = reach[j][d] || reach[d][j];
      }
      Require(kSemantic, implied, "injective-required", d,
              "level disables the injectivity filter but the restrictions "
              "do not order every earlier position against depth " +
                  std::to_string(d) +
                  "; a data vertex could be matched twice");
    }
  }

  void SemanticEdgeJoin() {
    report_->semantic_checked = true;
    const std::vector<std::vector<int>> autos =
        EnumerateAutomorphisms(plan_.pattern);
    report_->automorphisms = autos.size();
    Require(kSemantic, plan_.automorphisms == autos.size(),
            "automorphism-count", -1,
            "plan claims " + std::to_string(plan_.automorphisms) +
                " automorphisms; independent enumeration finds " +
                std::to_string(autos.size()));
  }

  // -- Tier 3: bounded abstract interpretation over resources --------------

  void Resources() {
    if (options_.graph == nullptr) return;
    report_->resources_checked = true;
    const graph::Graph& g = *options_.graph;
    const ExtensionOptions* eng = options_.engine_extension;
    const std::size_t pool_bytes =
        eng != nullptr ? eng->pool_bytes : ExtensionOptions{}.pool_bytes;
    const uint64_t pool_entries = pool_bytes / kEntryBytes;
    const double max_deg = static_cast<double>(g.max_degree());

    auto check_prealloc = [&](bool prealloc, uint64_t worst, int depth,
                              VerifyAbstractLevel* a) {
      a->pool_entries = pool_entries;
      if (!prealloc) return;
      a->prealloc_entries = worst;
      Require(kResources, worst <= pool_entries, "prealloc-overflow", depth,
              "prealloc write strategy cannot fit one row's worst case (" +
                  std::to_string(worst) + " results) in the " +
                  std::to_string(pool_bytes) +
                  "-byte device pool; the extension would fail with "
                  "device-out-of-memory",
              VerifySeverity::kWarning);
    };

    switch (plan_.kind) {
      case PlanKind::kSubgraphMatch:
      case PlanKind::kMotifCensus: {
        const int fd = plan_.first_depth();
        double rows =
            plan_.start == StartMode::kEdgeParallel
                ? static_cast<double>(g.num_edges()) *
                      (plan_.start_ascending ? 1.0 : 2.0)
                : StartVertexBound(g);
        VerifyAbstractLevel start;
        start.depth = fd - 1;
        start.rows_hi = rows;
        start.width = fd;
        start.pool_entries = pool_entries;
        report_->abstract_levels.push_back(start);
        for (std::size_t i = 0; i < plan_.levels.size(); ++i) {
          const CompiledLevel& level = plan_.levels[i];
          const int d = fd + static_cast<int>(i);
          // Intersections are bounded by one adjacency list; union
          // extension by the prefix's combined neighborhoods.
          const double cap = level.intersect_positions.empty()
                                 ? static_cast<double>(d) * max_deg
                                 : max_deg;
          rows = std::min(rows * cap, 1e300);
          VerifyAbstractLevel a;
          a.depth = d;
          a.rows_hi = rows;
          a.width = d + 1;
          const bool prealloc =
              level.write_strategy.has_value()
                  ? *level.write_strategy == WriteStrategy::kPreAlloc
                  : eng != nullptr &&
                        eng->write_strategy == WriteStrategy::kPreAlloc;
          check_prealloc(prealloc, g.max_degree(), d, &a);
          report_->abstract_levels.push_back(a);
        }
        break;
      }
      case PlanKind::kFrequentMining:
      case PlanKind::kEdgeJoin: {
        const bool inherited_prealloc =
            eng != nullptr &&
            eng->write_strategy == WriteStrategy::kPreAlloc;
        const int steps = plan_.kind == PlanKind::kFrequentMining
                              ? plan_.max_edges - 1
                              : static_cast<int>(plan_.edge_order.size()) - 1;
        double rows = static_cast<double>(g.num_edges());
        VerifyAbstractLevel start;
        start.depth = 1;
        start.rows_hi = rows;
        start.width = 1;
        start.pool_entries = pool_entries;
        report_->abstract_levels.push_back(start);
        for (int i = 1; i <= steps; ++i) {
          // An i-edge embedding touches at most i+1 vertices; each
          // contributes at most one adjacency list of candidate edges.
          const uint64_t worst =
              static_cast<uint64_t>(g.max_degree()) *
              static_cast<uint64_t>(i + 1);
          rows = std::min(rows * static_cast<double>(worst), 1e300);
          VerifyAbstractLevel a;
          a.depth = i + 1;
          a.rows_hi = rows;
          a.width = i + 1;
          check_prealloc(inherited_prealloc, worst, i + 1, &a);
          report_->abstract_levels.push_back(a);
        }
        break;
      }
    }
  }

  double StartVertexBound(const graph::Graph& g) const {
    if (plan_.start_label == Pattern::kAnyLabel || !g.labeled()) {
      return static_cast<double>(g.num_vertices());
    }
    std::size_t n = 0;
    for (graph::Label l : g.labels()) {
      if (l == plan_.start_label) ++n;
    }
    return static_cast<double>(n);
  }

  const CompiledPlan& plan_;
  const VerifyOptions& options_;
  VerifyReport* report_;
};

}  // namespace

const char* VerifySeverityName(VerifySeverity severity) {
  switch (severity) {
    case VerifySeverity::kWarning:
      return "warning";
    case VerifySeverity::kError:
      return "error";
  }
  return "error";
}

VerifyReport PlanVerifier::Verify(const CompiledPlan& plan) const {
  VerifyReport report;
  Checker(plan, options_, &report).Run();
  return report;
}

std::string VerifyReport::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema").Value("gamma.verify.v1");
  w.Key("kind").Value(kind);
  w.Key("verified").Value(verified);
  w.Key("obligations_checked").Value(obligations_checked);
  w.Key("errors").Value(errors);
  w.Key("warnings").Value(warnings);
  w.Key("automorphisms").Value(automorphisms);
  w.Key("tiers").BeginObject();
  const struct {
    const char* name;
    bool checked;
    bool passed;
  } tiers[] = {
      {"structural", structural_checked, structural_passed},
      {"semantic", semantic_checked, semantic_passed},
      {"resources", resources_checked, resources_passed},
  };
  for (const auto& t : tiers) {
    w.Key(t.name).BeginObject();
    w.Key("checked").Value(t.checked);
    w.Key("passed").Value(t.passed);
    w.EndObject();
  }
  w.EndObject();
  w.Key("abstract").BeginArray();
  for (const VerifyAbstractLevel& a : abstract_levels) {
    w.BeginObject();
    w.Key("depth").Value(a.depth);
    w.Key("rows_hi").Value(a.rows_hi);
    w.Key("width").Value(a.width);
    w.Key("prealloc_entries").Value(a.prealloc_entries);
    w.Key("pool_entries").Value(a.pool_entries);
    w.EndObject();
  }
  w.EndArray();
  w.Key("findings").BeginArray();
  for (const VerifyFinding& f : findings) {
    w.BeginObject();
    w.Key("obligation").Value(f.obligation);
    w.Key("severity").Value(VerifySeverityName(f.severity));
    w.Key("depth").Value(f.depth);
    w.Key("message").Value(f.message);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
  return os.str();
}

std::string VerifyReport::ReportText() const {
  std::ostringstream os;
  os << (verified ? "VERIFIED" : "REFUTED") << " " << kind << " plan: "
     << obligations_checked << " obligation(s) checked, " << errors
     << " error(s), " << warnings << " warning(s)\n";
  for (const VerifyFinding& f : findings) {
    os << "  [" << VerifySeverityName(f.severity) << "] " << f.obligation;
    if (f.depth >= 0) os << " @depth " << f.depth;
    os << ": " << f.message << "\n";
  }
  return os.str();
}

Result<VerifiedPlan> VerifiedPlan::Make(CompiledPlan plan,
                                        const VerifyOptions& options) {
  VerifyReport report = PlanVerifier(options).Verify(plan);
  if (!report.verified) {
    std::string msg = "plan refuted by static verifier: ";
    for (const VerifyFinding& f : report.findings) {
      if (f.severity == VerifySeverity::kError) {
        msg += f.obligation + ": " + f.message;
        break;
      }
    }
    return Status::FailedPrecondition(std::move(msg));
  }
  return VerifiedPlan(std::move(plan), std::move(report));
}

}  // namespace gpm::core
