#ifndef GAMMA_CORE_PLAN_VERIFIER_H_
#define GAMMA_CORE_PLAN_VERIFIER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/extension.h"
#include "core/pattern_compiler.h"
#include "graph/csr.h"

namespace gpm::core {

/// Severity of one verifier finding. Errors refute the plan (the engine
/// gate refuses to run it, `gamma_cli --verify-plan` exits 2); warnings
/// are advisory (e.g. a prealloc reservation the runtime would reject with
/// a clean kDeviceOutOfMemory anyway).
enum class VerifySeverity : uint8_t { kWarning, kError };

const char* VerifySeverityName(VerifySeverity severity);

/// One violated (or advisory) proof obligation. `obligation` names the
/// entry of the catalog in docs/VERIFIER.md; `depth` is the matching-order
/// depth the finding anchors to, or -1 for plan-wide findings.
struct VerifyFinding {
  std::string obligation;
  VerifySeverity severity = VerifySeverity::kError;
  int depth = -1;
  std::string message;
};

/// Per-level result of the bounded abstract interpretation (tier 3): row
/// counts as intervals, column widths, and the MemoryPool reservation the
/// level's resolved write strategy would make.
struct VerifyAbstractLevel {
  int depth = 0;
  double rows_hi = 0;          ///< upper bound on rows after the level
  int width = 0;               ///< embedding-table columns after the level
  /// Worst-case results one input row can produce (what kPreAlloc must fit
  /// in the pool) and the pool's capacity in table entries. Zero when the
  /// level's strategy makes no up-front reservation.
  uint64_t prealloc_entries = 0;
  uint64_t pool_entries = 0;
};

/// Structured outcome of PlanVerifier::Verify: the findings plus per-tier
/// pass/fail. `verified` is true iff no error-severity finding exists.
struct VerifyReport {
  std::string kind;
  bool verified = false;
  int obligations_checked = 0;
  int errors = 0;
  int warnings = 0;
  bool structural_checked = false, structural_passed = true;
  bool semantic_checked = false, semantic_passed = true;
  bool resources_checked = false, resources_passed = true;
  /// |Aut(pattern)| recomputed by the verifier's own enumerator (0 when
  /// the plan kind carries no pattern).
  uint64_t automorphisms = 0;
  std::vector<VerifyAbstractLevel> abstract_levels;
  std::vector<VerifyFinding> findings;

  /// Serializes as a `gamma.verify.v1` JSON document.
  std::string ToJson() const;
  /// One line per finding, human-readable.
  std::string ReportText() const;
};

/// Verifier configuration. The graph and engine options enable the
/// resource tier (tier 3); without them verification is pattern-only
/// (tiers 1 and 2), which is still sufficient to refute every
/// count-changing plan corruption.
struct VerifyOptions {
  /// Data graph the plan will run against (max degree / vertex / edge
  /// counts feed the abstract interpretation). nullptr skips tier 3.
  const graph::Graph* graph = nullptr;
  /// Engine options levels inherit when they do not pin a strategy
  /// (pool sizing, inherited write strategy). nullptr resolves inherited
  /// strategies as unknown and skips their reservation checks.
  const ExtensionOptions* engine_extension = nullptr;
};

/// Static soundness verifier for CompiledPlan documents — a pure host-side
/// analysis (no simulator, no execution, no simulated cycles) that
/// re-derives every proof obligation from the pattern and refutes plans
/// violating one:
///
///   tier 1 (structural): matching order is a permutation, intersect and
///     restriction columns reference already-bound positions, every order
///     prefix is connected, label filters match the pattern, strategy
///     fields are in legal combinations;
///   tier 2 (semantic): the pattern's automorphism group is recomputed by
///     an independent backtracking enumerator (not the compiler's), and
///     the plan's symmetry restrictions are proven sound (no embedding
///     orbit eliminated) and complete (exactly one canonical
///     representative per orbit), injectivity is enforced or implied, and
///     the per-level intersections cover every query edge exactly once;
///   tier 3 (resources): a bounded abstract interpretation over row-count
///     intervals, column widths, and MemoryPool reservations flags plans
///     whose prealloc strategy cannot fit the pool (advisory: the runtime
///     fails those safely with kDeviceOutOfMemory).
///
/// See docs/VERIFIER.md for the obligation catalog and the soundness /
/// completeness definitions.
class PlanVerifier {
 public:
  explicit PlanVerifier(VerifyOptions options = {})
      : options_(options) {}

  VerifyReport Verify(const CompiledPlan& plan) const;

 private:
  VerifyOptions options_;
};

/// Witness that a plan passed verification. CompiledEngine's interpreter
/// only accepts a VerifiedPlan, so an unverified (or refuted) plan cannot
/// reach execution; construction goes through Make(), which runs the
/// verifier and fails with kFailedPrecondition on refutation.
class VerifiedPlan {
 public:
  static Result<VerifiedPlan> Make(CompiledPlan plan,
                                   const VerifyOptions& options);

  const CompiledPlan& plan() const { return plan_; }
  const VerifyReport& report() const { return report_; }

 private:
  VerifiedPlan(CompiledPlan plan, VerifyReport report)
      : plan_(std::move(plan)), report_(std::move(report)) {}
  // Error-state Result<VerifiedPlan> storage only; unreachable otherwise.
  VerifiedPlan() = default;
  friend class gpm::Result<VerifiedPlan>;

  CompiledPlan plan_;
  VerifyReport report_;
};

}  // namespace gpm::core

#endif  // GAMMA_CORE_PLAN_VERIFIER_H_
