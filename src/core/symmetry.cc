#include "core/symmetry.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/logging.h"

namespace gpm::core {
namespace {

// All label-preserving automorphisms of `p` (each perm maps vertex i to
// perm[i]). Patterns are tiny, so brute force over permutations is fine.
std::vector<std::vector<int>> Automorphisms(const graph::Pattern& p) {
  const int n = p.num_vertices();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<std::vector<int>> autos;
  do {
    bool ok = true;
    for (int i = 0; i < n && ok; ++i) {
      if (p.label(perm[i]) != p.label(i)) ok = false;
      for (int j = i + 1; j < n && ok; ++j) {
        if (p.HasEdge(i, j) != p.HasEdge(perm[i], perm[j])) ok = false;
      }
    }
    if (ok) autos.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return autos;
}

}  // namespace

std::vector<SymmetryRestriction> BreakSymmetry(
    const graph::Pattern& query, const std::vector<int>& order) {
  const int n = query.num_vertices();
  GAMMA_CHECK(static_cast<int>(order.size()) == n) << "order size";
  std::vector<int> pos_of(n);  // pattern vertex -> order position
  for (int d = 0; d < n; ++d) pos_of[order[d]] = d;

  std::vector<std::vector<int>> active = Automorphisms(query);
  std::vector<SymmetryRestriction> restrictions;

  for (int d = 0; d < n && active.size() > 1; ++d) {
    const int v = order[d];
    // Restrict v to the minimum of its orbit under the active group:
    // M(v) < M(sigma(v)) for every sigma moving v.
    bool moved = false;
    for (const auto& sigma : active) {
      if (sigma[v] == v) continue;
      moved = true;
      SymmetryRestriction r{d, pos_of[sigma[v]]};
      bool duplicate = false;
      for (const auto& existing : restrictions) {
        if (existing.smaller_pos == r.smaller_pos &&
            existing.larger_pos == r.larger_pos) {
          duplicate = true;
        }
      }
      if (!duplicate) restrictions.push_back(r);
    }
    if (!moved) continue;
    // Keep only automorphisms fixing v (the stabilizer).
    std::vector<std::vector<int>> stabilizer;
    for (auto& sigma : active) {
      if (sigma[v] == v) stabilizer.push_back(std::move(sigma));
    }
    active = std::move(stabilizer);
  }
  return restrictions;
}

std::string RestrictionsDebugString(
    const std::vector<SymmetryRestriction>& restrictions) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < restrictions.size(); ++i) {
    if (i > 0) os << ", ";
    os << "M" << restrictions[i].smaller_pos << "<M"
       << restrictions[i].larger_pos;
  }
  os << "]";
  return os.str();
}

}  // namespace gpm::core
