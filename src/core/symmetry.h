#ifndef GAMMA_CORE_SYMMETRY_H_
#define GAMMA_CORE_SYMMETRY_H_

#include <string>
#include <vector>

#include "graph/pattern.h"

namespace gpm::core {

/// A symmetry-breaking restriction over matching-order positions: the data
/// vertex matched at `smaller_pos` must have a smaller id than the one at
/// `larger_pos`.
struct SymmetryRestriction {
  int smaller_pos;
  int larger_pos;
};

/// Computes ordering restrictions that break all automorphisms of `query`
/// under matching order `order`: with the restrictions applied, every
/// instance is enumerated exactly once (embeddings = instances).
///
/// Classic construction: process automorphisms of the pattern; for the
/// first order-position where an automorphism moves the vertex, impose
/// "position of v < position of sigma(v)" and keep only automorphisms
/// fixing that vertex; repeat until only the identity survives.
std::vector<SymmetryRestriction> BreakSymmetry(
    const graph::Pattern& query, const std::vector<int>& order);

std::string RestrictionsDebugString(
    const std::vector<SymmetryRestriction>& restrictions);

}  // namespace gpm::core

#endif  // GAMMA_CORE_SYMMETRY_H_
