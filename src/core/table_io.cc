#include "core/table_io.h"

#include <cstdint>
#include <fstream>
#include <vector>

namespace gpm::core {
namespace {

constexpr uint64_t kTableMagic = 0x47414d4d41455431ull;  // "GAMMAET1"

}  // namespace

Status SaveTable(const EmbeddingTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  auto put = [&out](const void* p, std::size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  };
  uint64_t magic = kTableMagic;
  uint64_t kind = table.kind() == TableKind::kVertex ? 0 : 1;
  uint64_t ncols = table.length();
  put(&magic, sizeof magic);
  put(&kind, sizeof kind);
  put(&ncols, sizeof ncols);
  for (int j = 0; j < table.length(); ++j) {
    const auto& col = table.column(j);
    uint64_t rows = col.size();
    put(&rows, sizeof rows);
    put(col.units.host_data().data(), rows * sizeof(Unit));
    put(col.parents.host_data().data(), rows * sizeof(RowIndex));
  }
  return out ? Status::Ok() : Status::Internal("write failed: " + path);
}

Result<std::unique_ptr<EmbeddingTable>> LoadTable(gpusim::Device* device,
                                                  const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  auto get = [&in](void* p, std::size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    return static_cast<bool>(in);
  };
  uint64_t magic = 0, kind = 0, ncols = 0;
  if (!get(&magic, sizeof magic) || magic != kTableMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (!get(&kind, sizeof kind) || kind > 1 ||
      !get(&ncols, sizeof ncols) || ncols > 64) {
    return Status::InvalidArgument("corrupt header in " + path);
  }
  auto table = std::make_unique<EmbeddingTable>(
      device, kind == 0 ? TableKind::kVertex : TableKind::kEdge);
  for (uint64_t j = 0; j < ncols; ++j) {
    uint64_t rows = 0;
    if (!get(&rows, sizeof rows)) {
      return Status::InvalidArgument("truncated column header in " + path);
    }
    std::vector<Unit> units(rows);
    std::vector<RowIndex> parents(rows);
    if ((rows > 0 && !get(units.data(), rows * sizeof(Unit))) ||
        (rows > 0 && !get(parents.data(), rows * sizeof(RowIndex)))) {
      return Status::InvalidArgument("truncated column body in " + path);
    }
    // Validate parent pointers before handing to AppendColumn (which
    // treats violations as programmer errors and aborts).
    for (RowIndex p : parents) {
      bool ok = j == 0 ? p == kNoParent : p < table->column(j - 1).size();
      if (!ok) {
        return Status::InvalidArgument("corrupt parent pointer in " + path);
      }
    }
    Status st = table->AppendColumn(std::move(units), std::move(parents));
    if (!st.ok()) return st;
  }
  return table;
}

}  // namespace gpm::core
