#ifndef GAMMA_CORE_TABLE_IO_H_
#define GAMMA_CORE_TABLE_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/embedding_table.h"

namespace gpm::core {

/// Disk spill for embedding tables — one step beyond the paper's
/// host-memory residency: when even host memory is tight (the paper's runs
/// peak at 310 GB), intermediate tables can be checkpointed to disk
/// between iterations and restored later. The format is self-describing
/// and round-trips exactly.
Status SaveTable(const EmbeddingTable& table, const std::string& path);

/// Restores a table written by SaveTable onto `device`. The table is
/// recreated host-resident (spilling device-resident tables converts them;
/// in-core systems have nothing to spill to).
Result<std::unique_ptr<EmbeddingTable>> LoadTable(gpusim::Device* device,
                                                  const std::string& path);

}  // namespace gpm::core

#endif  // GAMMA_CORE_TABLE_IO_H_
