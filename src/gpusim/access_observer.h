#ifndef GAMMA_GPUSIM_ACCESS_OBSERVER_H_
#define GAMMA_GPUSIM_ACCESS_OBSERVER_H_

#include <cstddef>
#include <cstdint>

namespace gpm::gpusim {

/// Read-only tap on the device's host-memory access stream.
///
/// An observer attached via `Device::set_access_observer` is notified of
/// every charged unified-memory access, every zero-copy charge, and every
/// region lifecycle event that drops buffered pages. Observers never feed
/// anything back into the cost model — the simulated cycle totals and
/// counters are bit-identical whether an observer is attached or not —
/// which is what lets `core::AdaptivityAudit` replay the same stream
/// through counterfactual shadow models while the real run proceeds.
///
/// Notifications carry the charge the real access produced so an observer
/// can accumulate actual access cycles without re-deriving the cost model;
/// shadow replays instead recompute charges from their own buffer state.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// One completed unified-memory access of `[offset, offset + bytes)` in
  /// `region` (zero-byte accesses are not reported). `cycles` is the warp
  /// stall the access charged (fault/hit mix over the touched pages).
  virtual void OnUnifiedAccess(uint32_t region, std::size_t offset,
                               std::size_t bytes, double cycles) = 0;

  /// One completed zero-copy charge of `bytes` (zero-byte charges are not
  /// reported). `cycles` is the warp stall charged for the rounded-up
  /// 128 B transactions.
  virtual void OnZeroCopy(std::size_t bytes, double cycles) = 0;

  /// `region` was resized from `old_bytes` to `new_bytes`; pages past the
  /// new size were dropped from the page buffer. Shadow buffers must drop
  /// the same pages to stay coherent with the real LRU.
  virtual void OnRegionResized(uint32_t region, std::size_t old_bytes,
                               std::size_t new_bytes) = 0;

  /// Every buffered page of `region` was dropped (host rewrote the data).
  virtual void OnRegionInvalidated(uint32_t region) = 0;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_ACCESS_OBSERVER_H_
