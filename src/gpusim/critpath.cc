#include "gpusim/critpath.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "gpusim/device.h"

namespace gpm::prof {
namespace {

using gpusim::kNumResourceClasses;
using gpusim::ResourceClass;
using gpusim::ResourceClassName;
using gpusim::ResourceCycles;
using gpusim::StreamId;

constexpr std::size_t Idx(ResourceClass c) {
  return static_cast<std::size_t>(c);
}

using Factors = std::array<double, kNumResourceClasses>;

Factors UnitFactors() {
  Factors f;
  f.fill(1.0);
  return f;
}

/// Left-to-right fold in class order; the canonical summation order every
/// exact-sum check in this file (and the Python validator) uses.
double FoldSum(const ResourceCycles& a) {
  double s = 0.0;
  for (int c = 0; c < kNumResourceClasses; ++c) s += a[static_cast<std::size_t>(c)];
  return s;
}

/// Nudges the sync-idle residual until the fold-sum of `a` equals `total`
/// bit-exactly. One compensation step usually lands it; the loop bounds the
/// rare cases where the first correction itself rounds.
void CloseResidual(ResourceCycles* a, double total) {
  for (int iter = 0; iter < 16; ++iter) {
    const double sum = FoldSum(*a);
    if (sum == total) return;
    (*a)[Idx(ResourceClass::kSyncIdle)] += total - sum;
  }
}

const char* KindName(CommandRecord::Kind kind) {
  switch (kind) {
    case CommandRecord::Kind::kKernel:
      return "kernel";
    case CommandRecord::Kind::kCopy:
      return "copy";
    case CommandRecord::Kind::kHostWork:
      return "host-work";
    case CommandRecord::Kind::kEventWait:
      return "wait-event";
    case CommandRecord::Kind::kSynchronize:
      return "synchronize";
    case CommandRecord::Kind::kFastForward:
      return "fast-forward";
    case CommandRecord::Kind::kCreateStream:
      return "create-stream";
    case CommandRecord::Kind::kPhaseBegin:
      return "phase-begin";
    case CommandRecord::Kind::kPhaseEnd:
      return "phase-end";
  }
  return "?";
}

bool IsJoinKind(CommandRecord::Kind kind) {
  return kind == CommandRecord::Kind::kEventWait ||
         kind == CommandRecord::Kind::kSynchronize ||
         kind == CommandRecord::Kind::kFastForward ||
         kind == CommandRecord::Kind::kCreateStream;
}

bool IsMarker(CommandRecord::Kind kind) {
  return kind == CommandRecord::Kind::kPhaseBegin ||
         kind == CommandRecord::Kind::kPhaseEnd;
}

/// One replayed timeline node. Internal times mirror the simulator's
/// decomposition so the attribution walk and the slack pass can reason
/// about which sub-path (compute, link, dependency) carried the end time.
struct Node {
  bool real = false;  // false for phase markers (no clock edge)
  double start = 0;
  double end = 0;
  // Kernel decomposition.
  double work_start = 0;
  double compute_end = 0;
  // Link window (kernels with traffic, all copies).
  bool has_link = false;
  double ready = 0;
  double link_free_before = 0;  // link head before this window's acquire
  double link_start = 0;
  double link_end = 0;
  // Dependency that determined `end`.
  int32_t binding_pred = -1;
  BindingEdge binding_edge = BindingEdge::kNone;
  // True when the link window started behind the previous window
  // (free > ready): the chain continues through link_pred.
  bool link_from_pred = false;
  // First-order slack edges: (pred node, headroom before a shift of the
  // pred's end moves this node's end).
  std::vector<std::pair<int32_t, double>> in_edges;
};

struct Replay {
  std::vector<Node> nodes;  // aligned with the command array
  double total = 0;         // join of all replayed stream clocks
  int streams = 0;
};

/// Deterministically replays the command log with per-class cost factors.
///
/// The replay mirrors the simulator's own arithmetic on the recorded
/// charge values — the same `clock + charge`, `max(ready, free) + transfer`
/// and `work_start + makespan` expressions in the same order — so with all
/// factors at 1.0 every node end (and the join) is bit-identical to the
/// recorded run. Kernel makespans rescale via the delta trick
/// `makespan + (fold(busy*f) - fold(busy))`, which is exactly zero at
/// factor 1 because `x * 1.0 == x` bit-exactly.
///
/// `use_recorded_bases` seeds each stream's clock from its first record's
/// recorded start (exact even for logs enabled mid-run); the what-if
/// replays derive every base instead so projections are not anchored to
/// recorded absolute times.
Replay ReplayTimeline(const std::vector<CommandRecord>& cmds,
                      const Factors& f, bool use_recorded_bases,
                      bool collect_edges) {
  Replay r;
  r.nodes.resize(cmds.size());
  std::vector<double> clock;
  std::vector<char> inited;
  std::vector<int32_t> last_node;
  double link_free = 0.0;
  int32_t last_link_node = -1;

  auto ensure = [&](StreamId s) {
    const auto n = static_cast<std::size_t>(s) + 1;
    if (clock.size() < n) {
      clock.resize(n, 0.0);
      inited.resize(n, 0);
      last_node.resize(n, -1);
    }
  };
  auto touch = [&](StreamId s, double fallback) {
    ensure(s);
    const auto si = static_cast<std::size_t>(s);
    if (!inited[si]) {
      // Recorded mode seeds from the record's own start (exact even for
      // logs enabled mid-run). Derived mode starts the default stream at
      // device construction (clock 0); a non-default stream seen without a
      // create record predates the log, so its recorded start is the only
      // available base.
      clock[si] = (use_recorded_bases || s != gpusim::kDefaultStream)
                      ? fallback
                      : 0.0;
      inited[si] = 1;
    }
  };
  auto joined = [&]() {
    double m = 0.0;
    for (std::size_t s = 0; s < clock.size(); ++s) {
      if (inited[s]) m = std::max(m, clock[s]);
    }
    return m;
  };
  auto argmax_stream = [&]() {
    int32_t best = -1;
    double best_clock = -1.0;
    for (std::size_t s = 0; s < clock.size(); ++s) {
      if (inited[s] && clock[s] > best_clock) {
        best_clock = clock[s];
        best = last_node[s];
      }
    }
    return best;
  };

  const double f_compute = f[Idx(ResourceClass::kCompute)];
  const double f_pcie = f[Idx(ResourceClass::kPcie)];

  for (std::size_t i = 0; i < cmds.size(); ++i) {
    const CommandRecord& rec = cmds[i];
    if (IsMarker(rec.kind)) continue;
    Node& n = r.nodes[i];
    n.real = true;
    const int32_t idx = static_cast<int32_t>(i);
    touch(rec.stream, rec.start);
    const auto si = static_cast<std::size_t>(rec.stream);

    switch (rec.kind) {
      case CommandRecord::Kind::kKernel: {
        n.start = clock[si];
        n.work_start = n.start + rec.launch_cycles * f_compute;
        double busy_raw = 0.0, busy_scaled = 0.0;
        for (int c = 0; c < kNumResourceClasses; ++c) {
          const auto ci = static_cast<std::size_t>(c);
          busy_raw += rec.busy[ci];
          busy_scaled += rec.busy[ci] * f[ci];
        }
        n.compute_end = n.work_start +
                        (rec.makespan + (busy_scaled - busy_raw));
        n.end = n.compute_end;
        if (rec.link_transfer > 0) {
          n.has_link = true;
          n.ready = n.work_start;
          n.link_free_before = link_free;
          n.link_start = std::max(n.ready, link_free);
          n.link_end = n.link_start + rec.link_transfer * f_pcie;
          n.link_from_pred = n.link_free_before > n.ready;
          link_free = n.link_end;
          n.end = std::max(n.end, n.link_end);
        }
        const int32_t stream_pred = last_node[si];
        if (n.has_link && n.end == n.link_end && n.end > n.compute_end) {
          if (n.link_from_pred) {
            n.binding_pred = last_link_node;
            n.binding_edge = n.binding_pred >= 0 ? BindingEdge::kLink
                                                 : BindingEdge::kNone;
          } else {
            n.binding_pred = stream_pred;
            n.binding_edge = stream_pred >= 0 ? BindingEdge::kStream
                                              : BindingEdge::kNone;
          }
        } else {
          n.binding_pred = stream_pred;
          n.binding_edge = stream_pred >= 0 ? BindingEdge::kStream
                                            : BindingEdge::kNone;
        }
        if (collect_edges) {
          if (stream_pred >= 0) {
            double h = n.end - n.compute_end;
            if (n.has_link) {
              const double h_link =
                  std::max(0.0, n.link_free_before - n.ready) +
                  (n.end - n.link_end);
              h = std::min(h, h_link);
            }
            n.in_edges.push_back({stream_pred, h});
          }
          if (n.has_link && last_link_node >= 0) {
            n.in_edges.push_back(
                {last_link_node,
                 std::max(0.0, n.ready - n.link_free_before) +
                     (n.end - n.link_end)});
          }
        }
        if (n.has_link) last_link_node = idx;
        clock[si] = n.end;
        last_node[si] = idx;
        break;
      }
      case CommandRecord::Kind::kCopy: {
        n.start = clock[si];
        n.has_link = true;
        n.ready = n.start + rec.latency;
        n.link_free_before = link_free;
        n.link_start = std::max(n.ready, link_free);
        n.link_end = n.link_start + rec.link_transfer * f_pcie;
        n.link_from_pred = n.link_free_before > n.ready;
        link_free = n.link_end;
        n.end = n.link_end;
        const int32_t stream_pred = last_node[si];
        if (n.link_from_pred && last_link_node >= 0) {
          n.binding_pred = last_link_node;
          n.binding_edge = BindingEdge::kLink;
        } else {
          n.binding_pred = stream_pred;
          n.binding_edge = stream_pred >= 0 ? BindingEdge::kStream
                                            : BindingEdge::kNone;
        }
        if (collect_edges) {
          if (stream_pred >= 0) {
            n.in_edges.push_back(
                {stream_pred, std::max(0.0, n.link_free_before - n.ready)});
          }
          if (last_link_node >= 0) {
            n.in_edges.push_back(
                {last_link_node,
                 std::max(0.0, n.ready - n.link_free_before)});
          }
        }
        last_link_node = idx;
        clock[si] = n.end;
        last_node[si] = idx;
        break;
      }
      case CommandRecord::Kind::kHostWork: {
        n.start = clock[si];
        n.end = n.start +
                rec.charge * f[static_cast<std::size_t>(rec.host_class)];
        const int32_t stream_pred = last_node[si];
        n.binding_pred = stream_pred;
        n.binding_edge =
            stream_pred >= 0 ? BindingEdge::kStream : BindingEdge::kNone;
        if (collect_edges && stream_pred >= 0) {
          n.in_edges.push_back({stream_pred, 0.0});
        }
        clock[si] = n.end;
        last_node[si] = idx;
        break;
      }
      case CommandRecord::Kind::kEventWait: {
        n.start = clock[si];
        const double dep = rec.wait_pred >= 0
                               ? r.nodes[static_cast<std::size_t>(
                                             rec.wait_pred)].end
                               : rec.wait_cycles;
        n.end = std::max(n.start, dep);
        const int32_t stream_pred = last_node[si];
        if (dep > n.start) {
          n.binding_pred = rec.wait_pred;
          n.binding_edge = rec.wait_pred >= 0 ? BindingEdge::kWait
                                              : BindingEdge::kNone;
        } else {
          n.binding_pred = stream_pred;
          n.binding_edge = stream_pred >= 0 ? BindingEdge::kStream
                                            : BindingEdge::kNone;
        }
        if (collect_edges) {
          if (stream_pred >= 0) {
            n.in_edges.push_back({stream_pred, n.end - n.start});
          }
          if (rec.wait_pred >= 0) {
            n.in_edges.push_back({rec.wait_pred, n.end - dep});
          }
        }
        clock[si] = n.end;
        last_node[si] = idx;
        break;
      }
      case CommandRecord::Kind::kSynchronize: {
        const double join = joined();
        n.start = n.end = join;
        n.binding_pred = argmax_stream();
        n.binding_edge =
            n.binding_pred >= 0 ? BindingEdge::kWait : BindingEdge::kNone;
        if (collect_edges) {
          for (std::size_t s = 0; s < clock.size(); ++s) {
            if (inited[s] && last_node[s] >= 0) {
              n.in_edges.push_back({last_node[s], join - clock[s]});
            }
          }
        }
        for (std::size_t s = 0; s < clock.size(); ++s) {
          if (inited[s]) {
            clock[s] = join;
            last_node[s] = idx;
          }
        }
        break;
      }
      case CommandRecord::Kind::kFastForward: {
        n.start = clock[si];
        const double join = joined();
        n.end = std::max(n.start, join);
        n.binding_pred = argmax_stream();
        n.binding_edge =
            n.binding_pred >= 0 ? BindingEdge::kWait : BindingEdge::kNone;
        if (collect_edges) {
          for (std::size_t s = 0; s < clock.size(); ++s) {
            if (inited[s] && last_node[s] >= 0) {
              n.in_edges.push_back({last_node[s], n.end - clock[s]});
            }
          }
        }
        clock[si] = n.end;
        last_node[si] = idx;
        break;
      }
      case CommandRecord::Kind::kCreateStream: {
        // touch() already seeded the clock (recorded base); in derived
        // mode the stream is born at the replayed join point, like
        // StreamSet::CreateStream.
        if (!use_recorded_bases) {
          double join = 0.0;
          for (std::size_t s = 0; s < clock.size(); ++s) {
            if (inited[s] && s != si) join = std::max(join, clock[s]);
          }
          clock[si] = join;
        }
        n.start = n.end = clock[si];
        n.binding_pred = -1;
        n.binding_edge = BindingEdge::kNone;
        if (collect_edges) {
          for (std::size_t s = 0; s < clock.size(); ++s) {
            if (s != si && inited[s] && last_node[s] >= 0) {
              n.in_edges.push_back({last_node[s], n.end - clock[s]});
            }
          }
        }
        last_node[si] = idx;
        break;
      }
      case CommandRecord::Kind::kPhaseBegin:
      case CommandRecord::Kind::kPhaseEnd:
        break;
    }
  }

  r.total = joined();
  for (std::size_t s = 0; s < inited.size(); ++s) {
    if (inited[s]) ++r.streams;
  }
  return r;
}

ResourceClass DominantClass(const CommandRecord& rec) {
  switch (rec.kind) {
    case CommandRecord::Kind::kKernel: {
      std::size_t best = Idx(ResourceClass::kCompute);
      for (std::size_t c = 0; c < static_cast<std::size_t>(kNumResourceClasses);
           ++c) {
        if (rec.busy[c] > rec.busy[best]) best = c;
      }
      return static_cast<ResourceClass>(best);
    }
    case CommandRecord::Kind::kCopy:
      return ResourceClass::kPcie;
    case CommandRecord::Kind::kHostWork:
      return static_cast<ResourceClass>(rec.host_class);
    default:
      return ResourceClass::kSyncIdle;
  }
}

/// Walks the binding chain backwards from `sink`, attributing the wall
/// interval [lo, hi] to resource classes. Dependency gaps and stalls land
/// in sync_idle; the caller closes the residual so the fold-sum equals the
/// window exactly. When `chain` is non-null, visited node indices are
/// collected (descending).
void AttributeWindow(const std::vector<CommandRecord>& cmds,
                     const std::vector<Node>& nodes, int32_t sink, double lo,
                     double hi, ResourceCycles* attr,
                     std::vector<int32_t>* chain) {
  auto idle = [&](double amount) {
    if (amount > 0) (*attr)[Idx(ResourceClass::kSyncIdle)] += amount;
  };
  double cursor = hi;
  int32_t node = sink;
  bool via_link = false;
  while (node >= 0 && cursor > lo) {
    const Node& n = nodes[static_cast<std::size_t>(node)];
    const CommandRecord& rec = cmds[static_cast<std::size_t>(node)];
    if (chain != nullptr) chain->push_back(node);

    if (via_link) {
      // Chain entered at this node's link-window end.
      const double w_lo = std::max(lo, n.link_start);
      const double w_hi = std::min(cursor, n.link_end);
      if (w_hi > w_lo) (*attr)[Idx(ResourceClass::kPcie)] += w_hi - w_lo;
      cursor = std::max(lo, n.link_start);
      if (n.link_from_pred) {
        // The window started behind the previous link window: keep
        // following the link chain through the raw predecessor recorded
        // at submission.
        node = rec.link_pred;
        via_link = true;
      } else {
        // The window started at `ready`, which derives from this node's
        // own start: attribute the pre-link lead-in and continue on the
        // node's stream.
        if (rec.kind == CommandRecord::Kind::kCopy) {
          const double l_lo = std::max(lo, n.start);
          const double l_hi = std::min(cursor, n.ready);
          if (l_hi > l_lo) (*attr)[Idx(ResourceClass::kPcie)] += l_hi - l_lo;
        } else {
          const double l_lo = std::max(lo, n.start);
          const double l_hi = std::min(cursor, n.work_start);
          if (l_hi > l_lo) {
            (*attr)[Idx(ResourceClass::kCompute)] += l_hi - l_lo;
          }
        }
        cursor = std::max(lo, n.start);
        // The stream predecessor is not stored for link entries; end the
        // chain here — the remaining window closes to sync_idle below.
        node = -1;
        via_link = false;
      }
      continue;
    }

    // Chain entered at this node's end: close any gap above it first.
    if (cursor > n.end) {
      idle(cursor - n.end);
      cursor = n.end;
    }
    if (cursor <= lo) break;

    if (IsJoinKind(rec.kind)) {
      if (n.binding_edge == BindingEdge::kWait && n.binding_pred >= 0) {
        // The wall interval belongs to the dependency's activity.
        node = n.binding_pred;
        continue;
      }
      const double w_lo = std::max(lo, n.start);
      idle(cursor - w_lo);
      cursor = w_lo;
      node = n.binding_edge == BindingEdge::kStream ? n.binding_pred : -1;
      continue;
    }

    const double w_lo = std::max(lo, n.start);
    const bool full = n.start >= lo && cursor >= n.end;
    switch (rec.kind) {
      case CommandRecord::Kind::kKernel:
        if (full) {
          (*attr)[Idx(ResourceClass::kCompute)] += rec.launch_cycles;
          for (std::size_t c = 0;
               c < static_cast<std::size_t>(kNumResourceClasses); ++c) {
            (*attr)[c] += rec.busy[c];
          }
          if (n.end > n.compute_end) {
            (*attr)[Idx(ResourceClass::kPcie)] += n.end - n.compute_end;
          }
        } else {
          (*attr)[Idx(DominantClass(rec))] += cursor - w_lo;
        }
        break;
      case CommandRecord::Kind::kCopy:
        if (full) {
          (*attr)[Idx(ResourceClass::kPcie)] += rec.latency;
          (*attr)[Idx(ResourceClass::kPcie)] += n.link_end - n.link_start;
          idle(n.link_start - n.ready);
        } else {
          (*attr)[Idx(ResourceClass::kPcie)] += cursor - w_lo;
        }
        break;
      case CommandRecord::Kind::kHostWork:
        if (full) {
          (*attr)[static_cast<std::size_t>(rec.host_class)] += rec.charge;
        } else {
          (*attr)[static_cast<std::size_t>(rec.host_class)] += cursor - w_lo;
        }
        break;
      default:
        idle(cursor - w_lo);
        break;
    }
    cursor = w_lo;
    if (n.binding_edge == BindingEdge::kLink) {
      cursor = std::max(lo, n.link_start);
      node = n.binding_pred;
      via_link = true;
    } else {
      node = n.binding_edge == BindingEdge::kStream ? n.binding_pred : -1;
      via_link = false;
    }
  }
  if (cursor > lo) idle(cursor - lo);
}

struct PhaseInstance {
  std::string name;
  std::size_t begin_idx = 0;
  std::size_t end_idx = 0;
  double begin_cycles = 0;
  double end_cycles = 0;
};

int32_t SinkBefore(const std::vector<Node>& nodes, std::size_t limit) {
  int32_t sink = -1;
  double best = -1.0;
  for (std::size_t i = 0; i < std::min(limit, nodes.size()); ++i) {
    if (nodes[i].real && nodes[i].end >= best) {
      best = nodes[i].end;
      sink = static_cast<int32_t>(i);
    }
  }
  return sink;
}

ResourceClass ArgmaxClass(const ResourceCycles& a) {
  std::size_t best = 0;
  for (std::size_t c = 1; c < static_cast<std::size_t>(kNumResourceClasses);
       ++c) {
    if (a[c] > a[best]) best = c;
  }
  return static_cast<ResourceClass>(best);
}

void WriteResourceCycles(JsonWriter& w, const ResourceCycles& a) {
  w.BeginObject();
  for (int c = 0; c < kNumResourceClasses; ++c) {
    w.Key(ResourceClassName(static_cast<ResourceClass>(c)))
        .Value(a[static_cast<std::size_t>(c)]);
  }
  w.EndObject();
}

}  // namespace

Result<CritpathReport> Analyze(const CommandLog& log,
                               const AnalyzeOptions& options) {
  const std::vector<CommandRecord>& cmds = log.commands();

  // -- Validation: the recorded structure must be a DAG with balanced
  // phase markers; reject malformed hand-built logs loudly instead of
  // producing a silently wrong report.
  std::vector<std::pair<std::string, std::pair<std::size_t, double>>>
      open_phases;
  std::vector<PhaseInstance> instances;
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    const CommandRecord& rec = cmds[i];
    const auto idx = static_cast<int32_t>(i);
    if (rec.wait_pred >= idx) {
      return Status::InvalidArgument(
          "critpath: command " + std::to_string(i) +
          " has wait_pred " + std::to_string(rec.wait_pred) +
          " pointing forward — dependency edges must reference earlier "
          "commands (a forward edge would make the DAG cyclic)");
    }
    if (rec.link_pred >= idx) {
      return Status::InvalidArgument(
          "critpath: command " + std::to_string(i) +
          " has link_pred " + std::to_string(rec.link_pred) +
          " pointing forward — dependency edges must reference earlier "
          "commands (a forward edge would make the DAG cyclic)");
    }
    if (rec.kind == CommandRecord::Kind::kPhaseBegin) {
      open_phases.push_back({rec.name, {i, rec.start}});
    } else if (rec.kind == CommandRecord::Kind::kPhaseEnd) {
      if (open_phases.empty()) {
        return Status::InvalidArgument(
            "critpath: phase-end marker \"" + rec.name +
            "\" at command " + std::to_string(i) +
            " has no matching phase-begin (unbalanced markers)");
      }
      if (open_phases.back().first != rec.name) {
        return Status::InvalidArgument(
            "critpath: phase-end marker \"" + rec.name +
            "\" at command " + std::to_string(i) +
            " closes phase \"" + open_phases.back().first +
            "\" (markers must nest)");
      }
      PhaseInstance inst;
      inst.name = rec.name;
      inst.begin_idx = open_phases.back().second.first;
      inst.begin_cycles = open_phases.back().second.second;
      inst.end_idx = i;
      inst.end_cycles = rec.start;
      instances.push_back(std::move(inst));
      open_phases.pop_back();
    }
  }
  if (!open_phases.empty()) {
    return Status::InvalidArgument(
        "critpath: phase-begin marker \"" + open_phases.back().first +
        "\" is never closed (unbalanced markers)");
  }

  CritpathReport report;
  report.dropped_commands = log.dropped() + options.extra_dropped;
  report.partial = report.dropped_commands > 0;
  report.commands = cmds.size();

  // -- Exact replay: factor 1.0, recorded stream bases, slack edges on.
  Replay replay = ReplayTimeline(cmds, UnitFactors(),
                                 /*use_recorded_bases=*/true,
                                 /*collect_edges=*/true);
  report.critical_path_cycles = replay.total;
  report.streams = replay.streams;
  report.total_cycles =
      options.total_cycles > 0 ? options.total_cycles : replay.total;
  if (report.total_cycles > 0) {
    report.pcie_link_utilization =
        options.link_busy_cycles / report.total_cycles;
  }

  // -- First-order slack: reverse CPM over the collected edges. A node
  // with no successors can slip to the end of the run; everyone else is
  // bounded by the tightest (headroom + successor slack) chain.
  std::vector<double> slack(cmds.size(), 0.0);
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    if (replay.nodes[i].real) slack[i] = replay.total - replay.nodes[i].end;
  }
  for (std::size_t j = cmds.size(); j-- > 0;) {
    if (!replay.nodes[j].real) continue;
    for (const auto& [pred, headroom] : replay.nodes[j].in_edges) {
      const auto pi = static_cast<std::size_t>(pred);
      slack[pi] = std::min(slack[pi], headroom + slack[j]);
    }
  }

  for (std::size_t i = 0; i < cmds.size(); ++i) {
    if (!replay.nodes[i].real) continue;
    SpanInfo info;
    info.index = static_cast<int32_t>(i);
    info.kind = cmds[i].kind;
    info.name = cmds[i].name;
    info.phase = cmds[i].phase;
    info.stream = cmds[i].stream;
    info.start = replay.nodes[i].start;
    info.end = replay.nodes[i].end;
    info.binding_pred = replay.nodes[i].binding_pred;
    info.binding_edge = replay.nodes[i].binding_edge;
    info.slack = slack[i];
    report.spans.push_back(info);
  }

  // -- Whole-run attribution along the binding chain, closed to the
  // replayed end-to-end time.
  const int32_t sink = SinkBefore(replay.nodes, replay.nodes.size());
  if (sink >= 0) {
    std::vector<int32_t> chain;
    AttributeWindow(cmds, replay.nodes, sink, 0.0, replay.total,
                    &report.resource_cycles, &chain);
    std::reverse(chain.begin(), chain.end());
    report.critical_path = std::move(chain);
  }
  CloseResidual(&report.resource_cycles, report.critical_path_cycles);
  report.binding = ArgmaxClass(report.resource_cycles);

  // -- Per-phase attribution: each instance window walked independently;
  // same-named instances accumulate (RunProfile semantics). The phase
  // wall is accumulated with the same `end - begin` additions in the same
  // order as RunProfile::Record, and the residual closes attribution to
  // it bit-exactly.
  for (const PhaseInstance& inst : instances) {
    PhaseBottleneck* ph = nullptr;
    for (PhaseBottleneck& existing : report.phases) {
      if (existing.name == inst.name) {
        ph = &existing;
        break;
      }
    }
    if (ph == nullptr) {
      report.phases.emplace_back();
      ph = &report.phases.back();
      ph->name = inst.name;
    }
    ++ph->invocations;
    ph->cycles += inst.end_cycles - inst.begin_cycles;
    const int32_t phase_sink = SinkBefore(replay.nodes, inst.end_idx);
    if (phase_sink >= 0 && inst.end_cycles > inst.begin_cycles) {
      AttributeWindow(cmds, replay.nodes, phase_sink, inst.begin_cycles,
                      inst.end_cycles, &ph->attribution, nullptr);
    }
  }
  for (PhaseBottleneck& ph : report.phases) {
    CloseResidual(&ph.attribution, ph.cycles);
    ph.binding = ArgmaxClass(ph.attribution);
  }

  // -- What-if panel: suppressed on partial logs (projecting from a
  // truncated DAG would silently understate everything). The identity row
  // (factor 1.0) doubles as the calibration proof: its projection must
  // equal the actual total bit-exactly.
  if (!report.partial) {
    std::vector<WhatIf> panel = options.whatifs;
    if (panel.empty()) {
      for (ResourceClass cls :
           {ResourceClass::kCompute, ResourceClass::kDram,
            ResourceClass::kPcie, ResourceClass::kUm, ResourceClass::kSort}) {
        WhatIf wi;
        wi.resource = cls;
        wi.cost_factor = 0.5;
        panel.push_back(wi);
      }
    }
    WhatIf identity;
    identity.resource = ResourceClass::kCompute;
    identity.cost_factor = 1.0;
    panel.insert(panel.begin(), identity);
    for (WhatIf wi : panel) {
      Factors f = UnitFactors();
      f[Idx(wi.resource)] = wi.cost_factor;
      Replay projected = ReplayTimeline(cmds, f, /*use_recorded_bases=*/false,
                                        /*collect_edges=*/false);
      wi.projected_cycles = projected.total;
      wi.speedup = projected.total > 0
                       ? report.critical_path_cycles / projected.total
                       : 1.0;
      report.whatifs.push_back(wi);
    }
  }

  return report;
}

Result<CritpathReport> Analyze(const gpusim::Device& device) {
  AnalyzeOptions options;
  options.total_cycles = device.now_cycles();
  options.link_busy_cycles = device.streams().link_busy_cycles();
  options.extra_dropped = device.dropped_kernel_records();
  return Analyze(device.critpath(), options);
}

std::string CritpathReport::ToJson() const {
  // How many critical-path entries the export keeps; deep chains are
  // elided from the middle (the report flags the truncation) so the
  // document stays reviewable.
  constexpr std::size_t kMaxPathEntries = 500;
  constexpr std::size_t kTopSlack = 20;

  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema").Value("gamma.critpath.v1");
  w.Key("partial").Value(partial);
  w.Key("dropped_commands").Value(dropped_commands);
  w.Key("total_cycles").Value(total_cycles);
  w.Key("critical_path_cycles").Value(critical_path_cycles);
  w.Key("commands").Value(commands);
  w.Key("streams").Value(streams);
  w.Key("pcie_link_utilization").Value(pcie_link_utilization);
  w.Key("binding").Value(ResourceClassName(binding));
  w.Key("resource_cycles");
  WriteResourceCycles(w, resource_cycles);

  w.Key("phases").BeginArray();
  for (const PhaseBottleneck& ph : phases) {
    w.BeginObject();
    w.Key("name").Value(ph.name);
    w.Key("invocations").Value(ph.invocations);
    w.Key("cycles").Value(ph.cycles);
    w.Key("binding").Value(ResourceClassName(ph.binding));
    w.Key("attribution");
    WriteResourceCycles(w, ph.attribution);
    w.EndObject();
  }
  w.EndArray();

  // Spans indexed by command id; the critical path lists ids into it.
  std::vector<const SpanInfo*> by_index(commands, nullptr);
  for (const SpanInfo& s : spans) {
    if (s.index >= 0 && static_cast<std::size_t>(s.index) < by_index.size()) {
      by_index[static_cast<std::size_t>(s.index)] = &s;
    }
  }
  auto write_span = [&](const SpanInfo& s) {
    w.BeginObject();
    w.Key("index").Value(s.index);
    w.Key("kind").Value(KindName(s.kind));
    w.Key("name").Value(s.name);
    w.Key("phase").Value(s.phase);
    w.Key("stream").Value(s.stream);
    w.Key("start").Value(s.start);
    w.Key("end").Value(s.end);
    w.Key("slack").Value(s.slack);
    w.EndObject();
  };
  auto write_path_entry = [&](int32_t idx) {
    const SpanInfo* info =
        idx >= 0 && static_cast<std::size_t>(idx) < by_index.size()
            ? by_index[static_cast<std::size_t>(idx)]
            : nullptr;
    if (info != nullptr) {
      write_span(*info);
    } else {
      w.BeginObject();
      w.Key("index").Value(idx);
      w.EndObject();
    }
  };
  const bool truncated = critical_path.size() > kMaxPathEntries;
  w.Key("critical_path_truncated").Value(truncated);
  w.Key("critical_path").BeginArray();
  if (truncated) {
    for (std::size_t i = 0; i < kMaxPathEntries / 2; ++i) {
      write_path_entry(critical_path[i]);
    }
    for (std::size_t i = critical_path.size() - kMaxPathEntries / 2;
         i < critical_path.size(); ++i) {
      write_path_entry(critical_path[i]);
    }
  } else {
    for (int32_t idx : critical_path) write_path_entry(idx);
  }
  w.EndArray();

  // The spans with the most headroom: candidates for overlapping with the
  // critical chain (or evidence that a stream is underutilized).
  std::vector<const SpanInfo*> by_slack;
  by_slack.reserve(spans.size());
  for (const SpanInfo& s : spans) by_slack.push_back(&s);
  std::stable_sort(by_slack.begin(), by_slack.end(),
                   [](const SpanInfo* a, const SpanInfo* b) {
                     return a->slack > b->slack;
                   });
  w.Key("top_slack").BeginArray();
  for (std::size_t i = 0; i < std::min(kTopSlack, by_slack.size()); ++i) {
    write_span(*by_slack[i]);
  }
  w.EndArray();

  w.Key("whatif").BeginArray();
  for (const WhatIf& wi : whatifs) {
    w.BeginObject();
    w.Key("resource").Value(ResourceClassName(wi.resource));
    w.Key("cost_factor").Value(wi.cost_factor);
    w.Key("projected_cycles").Value(wi.projected_cycles);
    w.Key("speedup").Value(wi.speedup);
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  os << '\n';
  return os.str();
}

}  // namespace gpm::prof
