#ifndef GAMMA_GPUSIM_CRITPATH_H_
#define GAMMA_GPUSIM_CRITPATH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "gpusim/resource_class.h"
#include "gpusim/stream.h"

namespace gpm::gpusim {
class Device;
}  // namespace gpm::gpusim

/// gamma-prof: critical-path and resource-bottleneck analysis over the
/// simulated stream/event/kernel timeline.
///
/// The Device records one CommandRecord per timeline command (kernel
/// launch, explicit copy, host work, event wait, synchronize, ...) into a
/// CommandLog when enabled. `Analyze` rebuilds the dependency DAG from the
/// log — stream order, event edges, PCIe-link serialization — and computes
/// the critical path, per-span slack, per-phase binding resource, and
/// what-if projections that rescale one resource class and replay the DAG.
///
/// Exactness contract: the replay reuses the simulator's own arithmetic
/// (the same `max(ready, link_free) + transfer` / `work_start + makespan`
/// expressions on the same recorded doubles), so with all factors at 1.0
/// it reproduces every command end time — and the end-to-end total —
/// bit-exactly. Critical-path length is the replayed end-to-end time, so
/// on a complete single-stream log it equals the device clock with
/// tolerance zero.
namespace gpm::prof {

/// One command on the simulated timeline, captured at submission with the
/// cost decomposition the replay needs. Records are plain data so tests
/// can hand-build logs; `Analyze` validates the dependency indices.
struct CommandRecord {
  enum class Kind : uint8_t {
    kKernel,        // LaunchKernelAsync: launch + makespan + link window
    kCopy,          // explicit H2D/D2H transfer
    kHostWork,      // ChargeHostWork
    kEventWait,     // WaitEvent: max-join with a recorded event
    kSynchronize,   // device-wide join of all stream clocks
    kFastForward,   // FastForwardStream: max-join with "now"
    kCreateStream,  // stream creation (clock starts at the join point)
    kPhaseBegin,    // PhaseScope open marker (zero duration)
    kPhaseEnd,      // PhaseScope close marker (zero duration)
  };

  Kind kind = Kind::kHostWork;
  gpusim::StreamId stream = gpusim::kDefaultStream;
  std::string name;
  /// Innermost open phase at submission ("" outside every phase).
  std::string phase;
  double start = 0;
  double end = 0;

  // Kernel decomposition.
  double launch_cycles = 0;  // fixed dispatch overhead (compute class)
  double makespan = 0;       // greedy-list-scheduling makespan over slots
  /// Per-class cycle sums of the *busiest* warp slot — the slot whose
  /// finish time is the makespan. Scaling these (against the recorded
  /// makespan) is what a what-if does to kernel compute time.
  gpusim::ResourceCycles busy{};

  // Host-work decomposition.
  double charge = 0;    // the exact cycles argument, for replay
  int8_t host_class =
      static_cast<int8_t>(gpusim::ResourceClass::kCompute);

  // Shared-link window (kernels with folded traffic, and copies).
  double latency = 0;        // copy pre-link latency (pcie_latency_cycles)
  double link_transfer = 0;  // transfer cycles on the link (0 = no window)
  double link_ready = 0;     // when the window could start
  double link_start = 0;     // when it did start (after contention)
  double link_end = 0;
  int32_t link_pred = -1;    // previous link-window command, -1 = none

  // Event-wait edge.
  int32_t wait_pred = -1;   // command whose completion the event marks
  double wait_cycles = 0;   // raw event timestamp (fallback when pred -1)

  // Per-slot work distribution (kernels only). slot_busy_cycles[s] is the
  // total busy cycles of warp slot s (folded over resource classes), one
  // entry per resident-warp slot; the per-task extremes feed the plan
  // profiler's load-imbalance histogram. Observation only: `Analyze`
  // replays the timeline from the fields above and never reads these.
  std::vector<double> slot_busy_cycles;
  uint64_t tasks = 0;
  double task_max_cycles = 0;
  double task_total_cycles = 0;
};

/// Bounded recorder for CommandRecords, owned by the Device. Appends are
/// O(1); overflow is counted (not silently truncated) and marks every
/// later analysis `partial`. Pure observation: recording never changes
/// simulated results, and the records are bit-identical across host-thread
/// counts (ordered replay fills them on the launching thread).
class CommandLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  std::size_t capacity() const { return capacity_; }

  const std::vector<CommandRecord>& commands() const { return commands_; }
  uint64_t dropped() const { return dropped_; }

  void Clear() {
    commands_.clear();
    last_on_stream_.clear();
    last_sync_ = -1;
    last_link_ = -1;
    dropped_ = 0;
  }

  /// Index of the last command that advanced `stream`'s clock (possibly a
  /// device-wide synchronize), or -1. This is what an event recorded on
  /// the stream depends on.
  int32_t last_on_stream(gpusim::StreamId stream) const {
    int32_t last = -1;
    if (stream >= 0 &&
        static_cast<std::size_t>(stream) < last_on_stream_.size()) {
      last = last_on_stream_[static_cast<std::size_t>(stream)];
    }
    return std::max(last, last_sync_);
  }

  /// Index of the last command holding a link window, or -1.
  int32_t last_link() const { return last_link_; }

  /// Appends `rec` and updates the per-stream / link bookkeeping. Returns
  /// the record's index, or -1 when the log is full (counted as dropped).
  int32_t Append(CommandRecord rec) {
    if (!enabled_) return -1;
    if (commands_.size() >= capacity_) {
      ++dropped_;
      return -1;
    }
    const int32_t idx = static_cast<int32_t>(commands_.size());
    switch (rec.kind) {
      case CommandRecord::Kind::kSynchronize:
        last_sync_ = idx;
        break;
      case CommandRecord::Kind::kPhaseBegin:
      case CommandRecord::Kind::kPhaseEnd:
        break;  // markers never carry a clock edge
      default: {
        const auto s = static_cast<std::size_t>(rec.stream);
        if (last_on_stream_.size() <= s) {
          last_on_stream_.resize(s + 1, -1);
        }
        last_on_stream_[s] = idx;
        break;
      }
    }
    // Copies always pass through AcquireLink (even zero-byte ones advance
    // the link head); kernels only do when they have folded traffic.
    if (rec.kind == CommandRecord::Kind::kCopy || rec.link_transfer > 0) {
      last_link_ = idx;
    }
    commands_.push_back(std::move(rec));
    return idx;
  }

 private:
  bool enabled_ = false;
  std::size_t capacity_ = kDefaultCapacity;
  std::vector<CommandRecord> commands_;
  std::vector<int32_t> last_on_stream_;
  int32_t last_sync_ = -1;
  int32_t last_link_ = -1;
  uint64_t dropped_ = 0;
};

/// How one replayed command's end time was determined.
enum class BindingEdge : int8_t {
  kNone = 0,   // external: the command's own recorded start (log prefix)
  kStream,     // program order on its stream
  kWait,       // an event-wait dependency
  kLink,       // serialization behind the previous PCIe-link window
};

/// One analyzed timeline node: actual times plus the dependency that bound
/// it and its first-order slack (how far its end could slip before some
/// successor chain pushes the end-to-end total).
struct SpanInfo {
  int32_t index = -1;
  CommandRecord::Kind kind = CommandRecord::Kind::kHostWork;
  std::string name;
  std::string phase;
  gpusim::StreamId stream = gpusim::kDefaultStream;
  double start = 0;
  double end = 0;
  int32_t binding_pred = -1;
  BindingEdge binding_edge = BindingEdge::kNone;
  double slack = 0;
};

/// Per-phase attribution: class cycles fold-sum exactly to `cycles` (the
/// sync-idle residual closes the decomposition), and `binding` is the
/// class holding the largest share.
struct PhaseBottleneck {
  std::string name;
  uint64_t invocations = 0;
  double cycles = 0;
  gpusim::ResourceCycles attribution{};
  gpusim::ResourceClass binding = gpusim::ResourceClass::kSyncIdle;
};

/// One what-if projection: every charge of `resource` rescaled by
/// `cost_factor` (0.5 = "twice as fast") and the DAG replayed. The
/// projection is a lower bound: it keeps the recorded schedule shape
/// (slot assignment, link grant order) and only shrinks/stretches costs.
struct WhatIf {
  gpusim::ResourceClass resource = gpusim::ResourceClass::kCompute;
  double cost_factor = 1.0;
  double projected_cycles = 0;
  double speedup = 1.0;
};

struct CritpathReport {
  /// True when the command log (or the device's kernel-record list)
  /// overflowed: the DAG is a prefix of the run, the identity between
  /// critical path and end-to-end time no longer holds, and what-if
  /// projections are suppressed rather than computed from a truncated DAG.
  bool partial = false;
  uint64_t dropped_commands = 0;

  double total_cycles = 0;          // device end-to-end simulated time
  double critical_path_cycles = 0;  // replayed DAG end time (== total
                                    // bit-exactly on complete logs)
  std::size_t commands = 0;
  int streams = 0;

  /// Whole-run attribution along the critical chain (residual in
  /// sync_idle); folds exactly to `critical_path_cycles`.
  gpusim::ResourceCycles resource_cycles{};
  gpusim::ResourceClass binding = gpusim::ResourceClass::kSyncIdle;
  double pcie_link_utilization = 0;

  /// Every non-marker node with its binding edge and slack, in log order.
  std::vector<SpanInfo> spans;
  /// Node indices on the critical chain, source to sink.
  std::vector<int32_t> critical_path;

  std::vector<PhaseBottleneck> phases;
  std::vector<WhatIf> whatifs;  // empty when partial

  const PhaseBottleneck* FindPhase(const std::string& name) const {
    for (const PhaseBottleneck& ph : phases) {
      if (ph.name == name) return &ph;
    }
    return nullptr;
  }

  /// gamma.critpath.v1 JSON document.
  std::string ToJson() const;
};

struct AnalyzeOptions {
  double total_cycles = 0;       // device end-to-end clock
  double link_busy_cycles = 0;   // for the link-utilization gauge
  uint64_t extra_dropped = 0;    // e.g. Device::dropped_kernel_records()
  /// Cost factors applied per class for the what-if panel, in addition to
  /// the always-present factor-1.0 identity row. Empty = default panel
  /// (each scalable class at 0.5).
  std::vector<WhatIf> whatifs;
};

/// Rebuilds the dependency DAG from `log` and analyzes it. Fails with
/// InvalidArgument on malformed input: unbalanced phase begin/end markers
/// or dependency indices that point forward (which would make the "DAG"
/// cyclic).
Result<CritpathReport> Analyze(const CommandLog& log,
                               const AnalyzeOptions& options);

/// Convenience overload pulling log, clock, link occupancy, and drop
/// counters from a finished device.
Result<CritpathReport> Analyze(const gpusim::Device& device);

}  // namespace gpm::prof

#endif  // GAMMA_GPUSIM_CRITPATH_H_
