#include "gpusim/device.h"

#include "common/logging.h"

namespace gpm::gpusim {

Device::Device(SimParams params)
    : params_(params),
      memory_(params.device_memory_bytes),
      unified_(params_, &stats_) {
  // Page-level fault/hit/eviction events land on the timeline recorder,
  // stamped with the device clock (kernel-boundary resolution).
  unified_.BindTrace(&trace_recorder_, &clock_cycles_);
  // The unified-memory page buffer is carved out of device memory so that
  // in-core data structures compete with it for space, like on real
  // hardware.
  if (params_.um_device_buffer_bytes > 0) {
    auto buf = DeviceBuffer::Make(&memory_, params_.um_device_buffer_bytes);
    GAMMA_CHECK(buf.ok())
        << "UM page buffer does not fit in device memory: "
        << buf.status().ToString();
    um_buffer_reservation_ = std::move(buf).value();
  }
}

double Device::CopyHostToDevice(std::size_t bytes) {
  stats_.explicit_h2d_bytes += bytes;
  double cycles = params_.pcie_latency_cycles +
                  static_cast<double>(bytes) / params_.pcie_bytes_per_cycle;
  clock_cycles_ += cycles;
  metrics_.MaybeSample(*this);
  return cycles;
}

double Device::CopyDeviceToHost(std::size_t bytes) {
  stats_.explicit_d2h_bytes += bytes;
  double cycles = params_.pcie_latency_cycles +
                  static_cast<double>(bytes) / params_.pcie_bytes_per_cycle;
  clock_cycles_ += cycles;
  metrics_.MaybeSample(*this);
  return cycles;
}

}  // namespace gpm::gpusim
