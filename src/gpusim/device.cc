#include "gpusim/device.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace gpm::gpusim {

Device::Device(SimParams params)
    : params_(params),
      memory_(params.device_memory_bytes),
      unified_(params_, &stats_) {
  // Page-level fault/hit/eviction events land on the timeline recorder,
  // stamped with the device clock (kernel-boundary resolution).
  unified_.BindTrace(&trace_recorder_, &clock_cycles_);
  // Observability armed from params so harnesses that construct the
  // Device behind a helper (benches) can opt in without plumbing calls.
  if (params_.record_commands) critpath_.set_enabled(true);
  if (params_.record_timeline) {
    trace_enabled_ = true;
    trace_recorder_.set_enabled(true);
  }
  // host_threads is a wall-clock knob only: the pool runs kernel record
  // phases, and ordered replay keeps results bit-identical to serial.
  if (params_.host_threads > 1) {
    executor_ = std::make_unique<HostExecutor>(params_.host_threads);
  }
  // The unified-memory page buffer is carved out of device memory so that
  // in-core data structures compete with it for space, like on real
  // hardware.
  if (params_.um_device_buffer_bytes > 0) {
    auto buf = DeviceBuffer::Make(&memory_, params_.um_device_buffer_bytes);
    GAMMA_CHECK(buf.ok())
        << "UM page buffer does not fit in device memory: "
        << buf.status().ToString();
    um_buffer_reservation_ = std::move(buf).value();
  }
  // GPUSIM_CHECK=1 (or a memcheck,initcheck,racecheck subset) arms the
  // sanitizer on every Device, with abort-on-finding so whole test suites
  // fail loudly under it. Enabled last so the UM page-buffer reservation is
  // baseline state, not a reportable leak.
  if (const char* env = std::getenv("GPUSIM_CHECK");
      env != nullptr && env[0] != '\0') {
    Sanitizer::Options opts;
    if (Sanitizer::ParseCheckList(env, &opts)) {
      opts.abort_on_finding = true;
      EnableSanitizer(opts);
    } else {
      std::fprintf(stderr,
                   "gpusim-check: ignoring unparsable GPUSIM_CHECK=\"%s\"\n",
                   env);
    }
  }
}

Device::~Device() {
  if (sanitizer_ == nullptr) return;
  // Last chance to sweep for leaks (idempotent if the CLI already ran it).
  // Whatever this Device still owns itself is baseline, so only buffers the
  // engine/user code failed to release are reported.
  sanitizer_->FinalizeLeakCheck();
  if (!sanitizer_->findings().empty() &&
      sanitizer_->options().abort_on_finding) {
    std::fputs(sanitizer_->ReportText().c_str(), stderr);
    std::abort();
  }
  // Detach before members are destroyed: the UM reservation frees itself
  // through memory_ after this body runs.
  memory_.set_sanitizer(nullptr);
  unified_.set_sanitizer(nullptr);
  sanitizer_.reset();
}

void Device::EnableSanitizer(Sanitizer::Options options) {
  sanitizer_ = std::make_unique<Sanitizer>(options);
  sanitizer_->BindClock(&clock_cycles_);
  memory_.set_sanitizer(sanitizer_.get());
  unified_.set_sanitizer(sanitizer_.get());
  // Everything that predates the sanitizer is baseline: treated as
  // initialized (we never saw the writes) and exempt from the leak sweep
  // (we cannot tell who owns it).
  for (const auto& [id, bytes] : memory_.allocations()) {
    sanitizer_->OnAlloc(id, bytes, /*baseline=*/true);
  }
  for (const auto& [region, bytes] : unified_.region_sizes()) {
    sanitizer_->OnRegionRegister(region, bytes, /*baseline=*/true);
  }
  if (um_buffer_reservation_.valid()) {
    sanitizer_->LabelObject(um_buffer_reservation_.id(), "um-page-buffer");
  }
}

StreamId Device::WorkerStream(int i) {
  GAMMA_CHECK(i >= 0) << "negative worker stream index";
  while (static_cast<int>(worker_streams_.size()) <= i) {
    // Route through Device::CreateStream so the command log sees the
    // stream's birth (its clock base) like any explicitly created stream.
    worker_streams_.push_back(CreateStream());
  }
  return worker_streams_[static_cast<std::size_t>(i)];
}

double Device::CopyHostToDeviceAsync(StreamId stream, std::size_t bytes) {
  stats_.explicit_h2d_bytes += bytes;
  return CopyAsync(stream, bytes, "copy-h2d");
}

double Device::CopyDeviceToHostAsync(StreamId stream, std::size_t bytes) {
  stats_.explicit_d2h_bytes += bytes;
  return CopyAsync(stream, bytes, "copy-d2h");
}

double Device::CopyAsync(StreamId stream, std::size_t bytes,
                         const char* name) {
  if (sanitizer_ != nullptr) sanitizer_->OnCommand(stream);
  const double start = streams_.cycles(stream);
  const double ready = start + params_.pcie_latency_cycles;
  const double transfer =
      static_cast<double>(bytes) / params_.pcie_bytes_per_cycle;
  // Snapshot link state before acquiring so the command record carries the
  // exact window-start arithmetic (max(ready, free) + transfer).
  const bool record_cmds = critpath_.enabled();
  const double link_free_before =
      record_cmds ? streams_.link_free_cycles() : 0.0;
  const int32_t link_pred = record_cmds ? critpath_.last_link() : -1;
  const double end = streams_.AcquireLink(ready, transfer);
  streams_.set_cycles(stream, end);
  clock_cycles_ = streams_.now_cycles();
  if (trace_recorder_.enabled()) {
    trace_recorder_.RecordSpan(TraceRecorder::Kind::kCopy, name, start, end,
                               stream);
  }
  if (record_cmds) {
    prof::CommandRecord rec;
    rec.kind = prof::CommandRecord::Kind::kCopy;
    rec.stream = stream;
    rec.name = name;
    rec.phase = current_phase();
    rec.start = start;
    rec.end = end;
    rec.latency = params_.pcie_latency_cycles;
    rec.link_transfer = transfer;
    rec.link_ready = ready;
    rec.link_start = std::max(ready, link_free_before);
    rec.link_end = end;
    rec.link_pred = link_pred;
    critpath_.Append(std::move(rec));
  }
  metrics_.MaybeSample(*this);
  return end - start;
}

}  // namespace gpm::gpusim
