#include "gpusim/device.h"

#include "common/logging.h"

namespace gpm::gpusim {

Device::Device(SimParams params)
    : params_(params),
      memory_(params.device_memory_bytes),
      unified_(params_, &stats_) {
  // Page-level fault/hit/eviction events land on the timeline recorder,
  // stamped with the device clock (kernel-boundary resolution).
  unified_.BindTrace(&trace_recorder_, &clock_cycles_);
  // The unified-memory page buffer is carved out of device memory so that
  // in-core data structures compete with it for space, like on real
  // hardware.
  if (params_.um_device_buffer_bytes > 0) {
    auto buf = DeviceBuffer::Make(&memory_, params_.um_device_buffer_bytes);
    GAMMA_CHECK(buf.ok())
        << "UM page buffer does not fit in device memory: "
        << buf.status().ToString();
    um_buffer_reservation_ = std::move(buf).value();
  }
}

StreamId Device::WorkerStream(int i) {
  GAMMA_CHECK(i >= 0) << "negative worker stream index";
  while (static_cast<int>(worker_streams_.size()) <= i) {
    worker_streams_.push_back(streams_.CreateStream());
  }
  return worker_streams_[static_cast<std::size_t>(i)];
}

double Device::CopyHostToDeviceAsync(StreamId stream, std::size_t bytes) {
  stats_.explicit_h2d_bytes += bytes;
  const double start = streams_.cycles(stream);
  const double ready = start + params_.pcie_latency_cycles;
  const double end = streams_.AcquireLink(
      ready, static_cast<double>(bytes) / params_.pcie_bytes_per_cycle);
  streams_.set_cycles(stream, end);
  clock_cycles_ = streams_.now_cycles();
  if (trace_recorder_.enabled()) {
    trace_recorder_.RecordSpan(TraceRecorder::Kind::kCopy, "copy-h2d", start,
                               end, stream);
  }
  metrics_.MaybeSample(*this);
  return end - start;
}

double Device::CopyDeviceToHostAsync(StreamId stream, std::size_t bytes) {
  stats_.explicit_d2h_bytes += bytes;
  const double start = streams_.cycles(stream);
  const double ready = start + params_.pcie_latency_cycles;
  const double end = streams_.AcquireLink(
      ready, static_cast<double>(bytes) / params_.pcie_bytes_per_cycle);
  streams_.set_cycles(stream, end);
  clock_cycles_ = streams_.now_cycles();
  if (trace_recorder_.enabled()) {
    trace_recorder_.RecordSpan(TraceRecorder::Kind::kCopy, "copy-d2h", start,
                               end, stream);
  }
  metrics_.MaybeSample(*this);
  return end - start;
}

}  // namespace gpm::gpusim
