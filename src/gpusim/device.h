#ifndef GAMMA_GPUSIM_DEVICE_H_
#define GAMMA_GPUSIM_DEVICE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/access_observer.h"
#include "gpusim/critpath.h"
#include "gpusim/device_memory.h"
#include "gpusim/host_executor.h"
#include "gpusim/metrics.h"
#include "gpusim/profile.h"
#include "gpusim/resource_class.h"
#include "gpusim/sanitizer.h"
#include "gpusim/sim_params.h"
#include "gpusim/stats.h"
#include "gpusim/stream.h"
#include "gpusim/trace.h"
#include "gpusim/unified_memory.h"
#include "gpusim/warp.h"

namespace gpm::gpusim {

/// The simulated CPU-GPU heterogeneous platform.
///
/// A Device owns: a capacity-enforcing device-memory allocator, the unified
/// memory subsystem (page buffer carved out of device memory at
/// construction), hardware counters, a host-memory footprint tracker, a set
/// of execution streams sharing one PCIe link, and a simulated clock that is
/// the join of all stream clocks. Kernels execute warp tasks functionally on
/// the host while accumulating simulated cycles; kernel latency is the
/// makespan of warp tasks over `num_warp_slots` concurrent slots, overlapped
/// with the PCIe traffic the kernel generated (threads waiting on host
/// memory are switched out, §II-B).
///
/// The synchronous APIs (`LaunchKernel`, `CopyHostToDevice`, ...) are thin
/// wrappers over the default stream and behave exactly like the historical
/// single-clock model; the `*Async` APIs schedule on an explicit stream so
/// engine code can overlap compute with transfers (see StreamSet for the
/// contention rules).
class Device {
 public:
  explicit Device(SimParams params = SimParams());
  /// Runs the sanitizer's end-of-life leak sweep (and, in GPUSIM_CHECK
  /// abort-on-finding mode, prints the report and aborts on any finding).
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const SimParams& params() const { return params_; }
  DeviceMemory& memory() { return memory_; }
  const DeviceMemory& memory() const { return memory_; }
  UnifiedMemory& unified() { return unified_; }
  const UnifiedMemory& unified() const { return unified_; }
  DeviceStats& stats() { return stats_; }
  const DeviceStats& stats() const { return stats_; }
  HostMemoryTracker& host_tracker() { return host_tracker_; }
  const HostMemoryTracker& host_tracker() const { return host_tracker_; }

  /// Per-run phase attribution, filled by PhaseScope (the engine opens one
  /// per primitive call). Lives on the device so that any component that
  /// can charge traffic can also be profiled against it.
  RunProfile& profile() { return profile_; }
  const RunProfile& profile() const { return profile_; }

  /// Timeline recorder (kernel/copy/phase/warp-slot spans, UM page events).
  /// Disabled by default; see TraceRecorder for the Chrome-trace export.
  TraceRecorder& trace() { return trace_recorder_; }
  const TraceRecorder& trace() const { return trace_recorder_; }

  /// Periodic DeviceStats/occupancy sampler (gamma.metrics.v1 export).
  /// Disabled until an interval is set; fed on every clock advance.
  MetricsSampler& metrics() { return metrics_; }
  const MetricsSampler& metrics() const { return metrics_; }

  /// Attaches a read-only tap on every unified-memory / zero-copy charge
  /// (see AccessObserver); nullptr detaches. One observer at a time; the
  /// adaptivity audit uses this to run counterfactual shadow models
  /// alongside the real charges without perturbing them.
  void set_access_observer(AccessObserver* observer) {
    access_observer_ = observer;
    unified_.set_observer(observer);
  }
  AccessObserver* access_observer() const { return access_observer_; }

  /// Attaches a gpusim-check sanitizer (memcheck/initcheck/racecheck; see
  /// docs/SANITIZER.md), replacing any previous one — including the
  /// GPUSIM_CHECK env-var instance, whose abort-on-finding mode is thereby
  /// cleared for tests that inject faults deliberately. Everything already
  /// allocated is shadowed as baseline state: treated as initialized and
  /// exempt from the leak sweep. The sanitizer is pure shadow state and
  /// never perturbs cycles or DeviceStats.
  void EnableSanitizer(Sanitizer::Options options);

  /// The attached checker, or nullptr (the common case: zero overhead when
  /// off beyond this pointer test at attributed call sites).
  Sanitizer* sanitizer() const { return sanitizer_.get(); }

  /// Latest adaptivity readings, sampled into gamma.metrics.v1 as the
  /// `unified_page_count` / `adaptivity_regret_cycles` gauges. The hybrid
  /// accessor updates the page count at every plan; the audit (when
  /// attached) updates the cumulative regret as records close. Both stay
  /// zero for pure placements or when the machinery is off.
  struct AdaptivityGauges {
    std::size_t unified_page_count = 0;
    double regret_cycles = 0;
  };
  AdaptivityGauges& adaptivity_gauges() { return adaptivity_gauges_; }
  const AdaptivityGauges& adaptivity_gauges() const {
    return adaptivity_gauges_;
  }

  // -- gamma-prof -------------------------------------------------------------

  /// Command log for critical-path analysis (see gpusim/critpath.h).
  /// Disabled by default; `SimParams::record_commands` or
  /// `critpath().set_enabled(true)` turns it on. Recording is pure
  /// observation — simulated results are identical with it on or off.
  prof::CommandLog& critpath() { return critpath_; }
  const prof::CommandLog& critpath() const { return critpath_; }

  /// Resource class a generic compute charge lands in right now: kCompute
  /// normally, kSort inside a SortActivityScope. Memory classes pass
  /// through unchanged so link/DRAM accounting stays honest during sorts.
  ResourceClass EffectiveClass(ResourceClass cls) const {
    if (sort_depth_ > 0 && cls == ResourceClass::kCompute) {
      return ResourceClass::kSort;
    }
    return cls;
  }

  /// Sort-activity bracket (see SortActivityScope): while open, compute
  /// charges are attributed to kSort. Nestable.
  void BeginSortActivity() { ++sort_depth_; }
  void EndSortActivity() { --sort_depth_; }

  /// Phase bracket, driven by PhaseScope. The stack is always maintained
  /// (cheap); begin/end marker records are appended only while the command
  /// log is enabled, so the analyzer can attribute spans to phases.
  void BeginPhaseMark(const std::string& name) {
    phase_stack_.push_back(name);
    if (critpath_.enabled()) {
      prof::CommandRecord rec;
      rec.kind = prof::CommandRecord::Kind::kPhaseBegin;
      rec.name = name;
      rec.start = rec.end = clock_cycles_;
      critpath_.Append(std::move(rec));
    }
  }
  void EndPhaseMark() {
    if (phase_stack_.empty()) return;
    if (critpath_.enabled()) {
      prof::CommandRecord rec;
      rec.kind = prof::CommandRecord::Kind::kPhaseEnd;
      rec.name = phase_stack_.back();
      rec.start = rec.end = clock_cycles_;
      critpath_.Append(std::move(rec));
    }
    phase_stack_.pop_back();
  }

  /// Innermost open phase name, or "" outside every phase.
  const std::string& current_phase() const {
    static const std::string kEmpty;
    return phase_stack_.empty() ? kEmpty : phase_stack_.back();
  }

  // -- Streams and events -----------------------------------------------------

  /// The stream timelines and the shared PCIe link.
  const StreamSet& streams() const { return streams_; }

  /// Creates a new stream whose clock starts at the current join point.
  StreamId CreateStream() {
    StreamId id = streams_.CreateStream();
    if (critpath_.enabled()) {
      prof::CommandRecord rec;
      rec.kind = prof::CommandRecord::Kind::kCreateStream;
      rec.stream = id;
      rec.name = "create-stream";
      rec.phase = current_phase();
      rec.start = rec.end = streams_.cycles(id);
      critpath_.Append(std::move(rec));
    }
    return id;
  }

  /// Persistent worker stream `i` (0-based), created on first use. Engine
  /// primitives reuse these across calls instead of growing the stream set
  /// on every invocation.
  StreamId WorkerStream(int i);

  /// The host thread pool running kernel record phases, or nullptr when
  /// `SimParams::host_threads` <= 1 (serial execution).
  HostExecutor* host_executor() const { return executor_.get(); }

  /// When the stream's last command finished (its clock).
  double stream_cycles(StreamId stream) const {
    return streams_.cycles(stream);
  }

  /// Captures `stream`'s current position as a joinable timestamp.
  Event RecordEvent(StreamId stream) {
    Event e = streams_.Record(stream);
    if (sanitizer_ != nullptr) e.san_seq_ = sanitizer_->OnEventRecord(stream);
    if (critpath_.enabled()) e.cp_cmd_ = critpath_.last_on_stream(stream);
    return e;
  }

  /// Stalls `stream` until `event` (no-op for never-recorded events).
  void WaitEvent(StreamId stream, const Event& event) {
    const bool log = critpath_.enabled() && event.valid();
    const double before = log ? streams_.cycles(stream) : 0.0;
    streams_.Wait(stream, event);
    clock_cycles_ = streams_.now_cycles();
    if (sanitizer_ != nullptr) sanitizer_->OnEventWait(stream, event.san_seq_);
    if (log) {
      prof::CommandRecord rec;
      rec.kind = prof::CommandRecord::Kind::kEventWait;
      rec.stream = stream;
      rec.name = "wait-event";
      rec.phase = current_phase();
      rec.start = before;
      rec.end = streams_.cycles(stream);
      rec.wait_pred = event.cp_cmd_;
      rec.wait_cycles = event.cycles();
      critpath_.Append(std::move(rec));
    }
  }

  /// Joins every stream (cudaDeviceSynchronize); returns the join point.
  double Synchronize() {
    clock_cycles_ = streams_.Synchronize();
    metrics_.MaybeSample(*this);
    if (sanitizer_ != nullptr) sanitizer_->OnSynchronize();
    if (critpath_.enabled()) {
      prof::CommandRecord rec;
      rec.kind = prof::CommandRecord::Kind::kSynchronize;
      rec.name = "synchronize";
      rec.phase = current_phase();
      rec.start = rec.end = clock_cycles_;
      critpath_.Append(std::move(rec));
    }
    return clock_cycles_;
  }

  /// Advances an idle stream to "now" so its next command follows
  /// everything already submitted (start of an async phase).
  void FastForwardStream(StreamId stream) {
    const bool log = critpath_.enabled();
    const double before = log ? streams_.cycles(stream) : 0.0;
    streams_.FastForward(stream);
    if (sanitizer_ != nullptr) sanitizer_->OnFastForward(stream);
    if (log) {
      prof::CommandRecord rec;
      rec.kind = prof::CommandRecord::Kind::kFastForward;
      rec.stream = stream;
      rec.name = "fast-forward";
      rec.phase = current_phase();
      rec.start = before;
      rec.end = streams_.cycles(stream);
      critpath_.Append(std::move(rec));
    }
  }

  /// Total simulated time since construction (cycles / seconds / ms): the
  /// join of all stream clocks.
  double now_cycles() const { return clock_cycles_; }
  double ElapsedSeconds() const {
    return params_.CyclesToSeconds(clock_cycles_);
  }
  double ElapsedMillis() const {
    return params_.CyclesToMillis(clock_cycles_);
  }

  /// Rewinds the whole timeline to zero: every stream clock, the PCIe-link
  /// state, and all time-derived observability state (kernel records,
  /// timeline events, metrics samples) reset together. A partial rewind —
  /// the old `clock_cycles_ = 0` — would leave recorder/sampler state
  /// stamped with timestamps from the abandoned timeline and let them emit
  /// non-monotonic series afterwards.
  void ResetClock() {
    streams_.Reset();
    clock_cycles_ = 0;
    trace_recorder_.Clear();
    metrics_.Clear();
    ClearTrace();
  }

  /// Adds host-side (CPU) work to the simulated timeline, e.g. flushing and
  /// reorganizing buffers between kernels. `stream` orders the work against
  /// that stream's commands (default: the synchronous timeline).
  void ChargeHostWork(double cycles, StreamId stream = kDefaultStream) {
    const bool log = critpath_.enabled();
    const double before = log ? streams_.cycles(stream) : 0.0;
    streams_.set_cycles(stream, streams_.cycles(stream) + cycles);
    clock_cycles_ = streams_.now_cycles();
    metrics_.MaybeSample(*this);
    if (log) {
      prof::CommandRecord rec;
      rec.kind = prof::CommandRecord::Kind::kHostWork;
      rec.stream = stream;
      rec.name = "host-work";
      rec.phase = current_phase();
      rec.start = before;
      rec.end = streams_.cycles(stream);
      rec.charge = cycles;
      rec.host_class =
          static_cast<int8_t>(EffectiveClass(ResourceClass::kCompute));
      critpath_.Append(std::move(rec));
    }
  }

  /// Explicit cudaMemcpy-style transfer on the default stream; advances the
  /// clock and returns the cycles spent. Used by baselines with explicit
  /// data movement.
  double CopyHostToDevice(std::size_t bytes) {
    return CopyHostToDeviceAsync(kDefaultStream, bytes);
  }
  double CopyDeviceToHost(std::size_t bytes) {
    return CopyDeviceToHostAsync(kDefaultStream, bytes);
  }

  /// Explicit transfer ordered on `stream`. The transfer occupies the
  /// shared PCIe link: it starts once the stream reaches it (plus link
  /// latency) *and* the link is free, so concurrent streams contend instead
  /// of double-counting bandwidth. Returns the cycles the stream advanced
  /// (including any stall waiting for the link).
  double CopyHostToDeviceAsync(StreamId stream, std::size_t bytes);
  double CopyDeviceToHostAsync(StreamId stream, std::size_t bytes);

  /// Peak device-memory usage including the UM page buffer reservation.
  std::size_t PeakDeviceBytes() const { return memory_.peak_used_bytes(); }

  /// One completed kernel in the (optional) trace.
  struct KernelRecord {
    std::string name;
    std::size_t tasks = 0;
    double compute_makespan_cycles = 0;
    double pcie_cycles = 0;
    double total_cycles = 0;
  };

  /// Enables per-kernel record keeping (off by default). Records are
  /// bounded by `trace_capacity()`; overflow is counted in
  /// `dropped_kernel_records()` rather than growing without limit.
  void set_trace_enabled(bool enabled) { trace_enabled_ = enabled; }
  const std::vector<KernelRecord>& kernel_trace() const { return trace_; }
  uint64_t dropped_kernel_records() const { return dropped_kernel_records_; }

  /// Clears every recorded trace artifact: the kernel-record list, the
  /// timeline recorder's events, and the gamma-prof command log together,
  /// so the three views of the same timeline cannot diverge after a
  /// partial clear.
  void ClearTrace() {
    trace_.clear();
    dropped_kernel_records_ = 0;
    trace_recorder_.Clear();
    critpath_.Clear();
  }

  /// Caps the kernel-record list, the timeline recorder's event buffer,
  /// and the gamma-prof command log at `capacity` entries each.
  void set_trace_capacity(std::size_t capacity) {
    trace_capacity_ = capacity;
    trace_recorder_.set_capacity(capacity);
    critpath_.set_capacity(capacity);
  }
  std::size_t trace_capacity() const { return trace_capacity_; }

  /// Runs `num_tasks` warp tasks through `fn(WarpCtx&, task_id)` on the
  /// default stream. Returns the kernel's simulated cycles (also added to
  /// the clock). `name` labels the kernel in the trace.
  template <typename Fn>
  double LaunchKernel(std::size_t num_tasks, Fn&& fn,
                      const char* name = "kernel") {
    return LaunchKernelAsync(kDefaultStream, num_tasks,
                             std::forward<Fn>(fn), name);
  }

  /// Runs a kernel ordered on `stream`: it starts at the stream's clock and
  /// advances only that stream. The kernel's folded PCIe traffic (zero-copy
  /// transactions, UM migrations, mid-kernel pool drains — summed per
  /// launch from each warp task) reserves a window on the shared link, so
  /// transfers on other streams contend with it; the kernel completes when
  /// both its compute makespan and its link window have finished.
  template <typename Fn>
  double LaunchKernelAsync(StreamId stream, std::size_t num_tasks, Fn&& fn,
                           const char* name = "kernel") {
    ++stats_.kernel_launches;
    stats_.warp_tasks += num_tasks;
    // The kernel is one command on `stream`: the sanitizer bumps the
    // stream's epoch and attributes warp accesses to this kernel until
    // EndKernel.
    if (sanitizer_ != nullptr) sanitizer_->BeginKernel(stream, name);
    const double start_cycles = streams_.cycles(stream);

    const int slots = std::max(1, params_.num_warp_slots);
    // Min-heap of (finish time, slot) pairs: greedy list scheduling gives
    // the makespan of the warp tasks over the resident-warp slots; the
    // slot index lets the timeline recorder draw per-slot occupancy.
    using SlotTime = std::pair<double, int>;
    std::priority_queue<SlotTime, std::vector<SlotTime>,
                        std::greater<SlotTime>>
        finish;
    for (int i = 0; i < slots; ++i) finish.push({0.0, i});
    const bool record_slots = trace_recorder_.enabled();
    // Per-slot busy intervals, coalesced: adjacent tasks merge into one
    // run, but a gap (a slot idle between tasks) starts a new run, so the
    // exported occupancy never paints idle time as busy.
    std::vector<std::vector<std::pair<double, double>>> slot_runs;
    if (record_slots) slot_runs.resize(static_cast<std::size_t>(slots));
    const bool record_cmds = critpath_.enabled();
    // Per-slot stall cycles split by resource class; the busiest slot's
    // split becomes the kernel's what-if handle (scaling it is scaling the
    // makespan).
    std::vector<ResourceCycles> slot_busy;
    if (record_cmds) slot_busy.resize(static_cast<std::size_t>(slots));
    double task_max = 0.0;
    double task_total = 0.0;
    std::size_t launch_pcie_bytes = 0;
    // With a host executor, kernel execution is two-phase: first every task
    // function runs on the thread pool with a *recording* context (charges
    // append to a private log; shared simulator state is untouched), then
    // this thread replays the logs in ascending task order through the
    // immediate-mode charge implementations. Identical functions applied to
    // identical state in the serial order make every simulated quantity —
    // stats, doubles, UM pages, traces, sanitizer epochs — bit-identical to
    // a serial run, whatever schedule the pool picked.
    const bool parallel = executor_ != nullptr && num_tasks > 1;
    std::vector<WarpTaskLog> logs;
    if (parallel) {
      logs.resize(num_tasks);
      executor_->ParallelFor(num_tasks, [this, &logs, &fn](std::size_t t) {
        WarpCtx warp(this, t, &logs[t]);
        fn(warp, t);
      });
    }
    for (std::size_t t = 0; t < num_tasks; ++t) {
      WarpCtx warp(this, t);
      if (parallel) {
        warp.Replay(logs[t]);
      } else {
        fn(warp, t);
      }
      launch_pcie_bytes += warp.pcie_bytes();
      auto [start, slot] = finish.top();
      finish.pop();
      double end = start + warp.cycles();
      finish.push({end, slot});
      if (record_cmds) {
        auto& busy = slot_busy[static_cast<std::size_t>(slot)];
        const ResourceCycles& task = warp.class_cycles();
        for (int c = 0; c < kNumResourceClasses; ++c) busy[c] += task[c];
        const double task_cycles = warp.cycles();
        task_max = std::max(task_max, task_cycles);
        task_total += task_cycles;
      }
      if (record_slots && end > start) {
        auto& runs = slot_runs[static_cast<std::size_t>(slot)];
        if (!runs.empty() && runs.back().second == start) {
          runs.back().second = end;
        } else {
          runs.push_back({start, end});
        }
      }
    }
    if (sanitizer_ != nullptr) sanitizer_->EndKernel();
    double makespan = 0.0;
    int busiest_slot = 0;
    while (!finish.empty()) {
      makespan = finish.top().first;
      busiest_slot = finish.top().second;
      finish.pop();
    }
    const double work_start = start_cycles + params_.kernel_launch_cycles;
    double pcie_cycles = static_cast<double>(launch_pcie_bytes) /
                         params_.pcie_bytes_per_cycle;
    double end_cycles = work_start + makespan;
    // Snapshot link state before acquiring so the command record carries
    // the exact window-start arithmetic (max(ready, free) + transfer).
    const double link_free_before =
        record_cmds ? streams_.link_free_cycles() : 0.0;
    const int32_t link_pred = record_cmds ? critpath_.last_link() : -1;
    double pcie_end = 0.0;
    if (pcie_cycles > 0) {
      // The kernel's link traffic starts once the kernel does and must
      // fit behind transfers already on the link.
      pcie_end = streams_.AcquireLink(work_start, pcie_cycles);
      end_cycles = std::max(end_cycles, pcie_end);
    }
    streams_.set_cycles(stream, end_cycles);
    clock_cycles_ = streams_.now_cycles();
    const double kernel_cycles = end_cycles - start_cycles;
    if (record_cmds) {
      prof::CommandRecord rec;
      rec.kind = prof::CommandRecord::Kind::kKernel;
      rec.stream = stream;
      rec.name = name;
      rec.phase = current_phase();
      rec.start = start_cycles;
      rec.end = end_cycles;
      rec.launch_cycles = params_.kernel_launch_cycles;
      rec.makespan = makespan;
      rec.busy = slot_busy[static_cast<std::size_t>(busiest_slot)];
      rec.slot_busy_cycles.reserve(slot_busy.size());
      for (const ResourceCycles& busy : slot_busy) {
        double total = 0.0;
        for (int c = 0; c < kNumResourceClasses; ++c) total += busy[c];
        rec.slot_busy_cycles.push_back(total);
      }
      rec.tasks = num_tasks;
      rec.task_max_cycles = task_max;
      rec.task_total_cycles = task_total;
      if (pcie_cycles > 0) {
        rec.link_transfer = pcie_cycles;
        rec.link_ready = work_start;
        rec.link_start = std::max(work_start, link_free_before);
        rec.link_end = pcie_end;
        rec.link_pred = link_pred;
      }
      critpath_.Append(std::move(rec));
    }
    if (trace_enabled_) {
      if (trace_.size() < trace_capacity_) {
        trace_.push_back(
            {name, num_tasks, makespan, pcie_cycles, kernel_cycles});
      } else {
        ++dropped_kernel_records_;
      }
    }
    if (record_slots) {
      trace_recorder_.RecordSpan(TraceRecorder::Kind::kKernel, name,
                                 start_cycles, end_cycles, stream);
      // Slot busy runs start after the launch overhead; they always nest
      // inside the kernel span.
      for (int slot = 0; slot < slots; ++slot) {
        for (const auto& [lo, hi] : slot_runs[static_cast<std::size_t>(slot)]) {
          trace_recorder_.RecordSpan(TraceRecorder::Kind::kWarpSlot, name,
                                     work_start + lo, work_start + hi, slot);
        }
      }
    }
    metrics_.MaybeSample(*this);
    return kernel_cycles;
  }

 private:
  /// Shared body of the explicit-transfer APIs: link acquisition, clock
  /// advance, trace span, and the gamma-prof command record.
  double CopyAsync(StreamId stream, std::size_t bytes, const char* name);

  SimParams params_;
  DeviceMemory memory_;
  DeviceStats stats_;
  UnifiedMemory unified_;
  HostMemoryTracker host_tracker_;
  RunProfile profile_;
  TraceRecorder trace_recorder_;
  MetricsSampler metrics_;
  DeviceBuffer um_buffer_reservation_;
  std::unique_ptr<HostExecutor> executor_;
  std::unique_ptr<Sanitizer> sanitizer_;
  AccessObserver* access_observer_ = nullptr;
  AdaptivityGauges adaptivity_gauges_;
  StreamSet streams_;
  std::vector<StreamId> worker_streams_;
  // Cached join of all stream clocks; UnifiedMemory::BindTrace holds a
  // pointer to it for stamping page events.
  double clock_cycles_ = 0;
  bool trace_enabled_ = false;
  std::size_t trace_capacity_ = TraceRecorder::kDefaultCapacity;
  uint64_t dropped_kernel_records_ = 0;
  std::vector<KernelRecord> trace_;
  prof::CommandLog critpath_;
  int sort_depth_ = 0;
  std::vector<std::string> phase_stack_;
};

/// RAII bracket marking a sort subtree (multi-merge sort and friends):
/// compute charges made while one is open are attributed to the kSort
/// resource class. Attribution-only — never perturbs charges.
class SortActivityScope {
 public:
  explicit SortActivityScope(Device* device) : device_(device) {
    device_->BeginSortActivity();
  }
  ~SortActivityScope() { device_->EndSortActivity(); }

  SortActivityScope(const SortActivityScope&) = delete;
  SortActivityScope& operator=(const SortActivityScope&) = delete;

 private:
  Device* device_;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_DEVICE_H_
