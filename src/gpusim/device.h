#ifndef GAMMA_GPUSIM_DEVICE_H_
#define GAMMA_GPUSIM_DEVICE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/device_memory.h"
#include "gpusim/metrics.h"
#include "gpusim/profile.h"
#include "gpusim/sim_params.h"
#include "gpusim/stats.h"
#include "gpusim/trace.h"
#include "gpusim/unified_memory.h"
#include "gpusim/warp.h"

namespace gpm::gpusim {

/// The simulated CPU-GPU heterogeneous platform.
///
/// A Device owns: a capacity-enforcing device-memory allocator, the unified
/// memory subsystem (page buffer carved out of device memory at
/// construction), hardware counters, a host-memory footprint tracker, and a
/// simulated clock. Kernels execute warp tasks functionally on the host
/// while accumulating simulated cycles; kernel latency is the makespan of
/// warp tasks over `num_warp_slots` concurrent slots, overlapped with the
/// PCIe traffic the kernel generated (threads waiting on host memory are
/// switched out, §II-B).
class Device {
 public:
  explicit Device(SimParams params = SimParams());

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const SimParams& params() const { return params_; }
  DeviceMemory& memory() { return memory_; }
  const DeviceMemory& memory() const { return memory_; }
  UnifiedMemory& unified() { return unified_; }
  const UnifiedMemory& unified() const { return unified_; }
  DeviceStats& stats() { return stats_; }
  const DeviceStats& stats() const { return stats_; }
  HostMemoryTracker& host_tracker() { return host_tracker_; }
  const HostMemoryTracker& host_tracker() const { return host_tracker_; }

  /// Per-run phase attribution, filled by PhaseScope (the engine opens one
  /// per primitive call). Lives on the device so that any component that
  /// can charge traffic can also be profiled against it.
  RunProfile& profile() { return profile_; }
  const RunProfile& profile() const { return profile_; }

  /// Timeline recorder (kernel/phase/warp-slot spans, UM page events).
  /// Disabled by default; see TraceRecorder for the Chrome-trace export.
  TraceRecorder& trace() { return trace_recorder_; }
  const TraceRecorder& trace() const { return trace_recorder_; }

  /// Periodic DeviceStats/occupancy sampler (gamma.metrics.v1 export).
  /// Disabled until an interval is set; fed on every clock advance.
  MetricsSampler& metrics() { return metrics_; }
  const MetricsSampler& metrics() const { return metrics_; }

  /// Total simulated time since construction (cycles / seconds / ms).
  double now_cycles() const { return clock_cycles_; }
  double ElapsedSeconds() const {
    return params_.CyclesToSeconds(clock_cycles_);
  }
  double ElapsedMillis() const {
    return params_.CyclesToMillis(clock_cycles_);
  }
  void ResetClock() { clock_cycles_ = 0; }

  /// Adds host-side (CPU) work to the simulated timeline, e.g. flushing and
  /// reorganizing buffers between kernels.
  void ChargeHostWork(double cycles) {
    clock_cycles_ += cycles;
    metrics_.MaybeSample(*this);
  }

  /// Explicit cudaMemcpy-style transfer; advances the clock and returns the
  /// cycles spent. Used by baselines with explicit data movement.
  double CopyHostToDevice(std::size_t bytes);
  double CopyDeviceToHost(std::size_t bytes);

  /// Called by memory subsystems during a kernel to account link traffic.
  void AddKernelPcieBytes(std::size_t bytes) { kernel_pcie_bytes_ += bytes; }

  /// Peak device-memory usage including the UM page buffer reservation.
  std::size_t PeakDeviceBytes() const { return memory_.peak_used_bytes(); }

  /// One completed kernel in the (optional) trace.
  struct KernelRecord {
    std::string name;
    std::size_t tasks = 0;
    double compute_makespan_cycles = 0;
    double pcie_cycles = 0;
    double total_cycles = 0;
  };

  /// Enables per-kernel record keeping (off by default). Records are
  /// bounded by `trace_capacity()`; overflow is counted in
  /// `dropped_kernel_records()` rather than growing without limit.
  void set_trace_enabled(bool enabled) { trace_enabled_ = enabled; }
  const std::vector<KernelRecord>& kernel_trace() const { return trace_; }
  uint64_t dropped_kernel_records() const { return dropped_kernel_records_; }
  void ClearTrace() {
    trace_.clear();
    dropped_kernel_records_ = 0;
  }

  /// Caps both the kernel-record list and the timeline recorder's event
  /// buffer at `capacity` entries each.
  void set_trace_capacity(std::size_t capacity) {
    trace_capacity_ = capacity;
    trace_recorder_.set_capacity(capacity);
  }
  std::size_t trace_capacity() const { return trace_capacity_; }

  /// Runs `num_tasks` warp tasks through `fn(WarpCtx&, task_id)`.
  /// Returns the kernel's simulated cycles (also added to the clock).
  /// `name` labels the kernel in the trace.
  template <typename Fn>
  double LaunchKernel(std::size_t num_tasks, Fn&& fn,
                      const char* name = "kernel") {
    ++stats_.kernel_launches;
    stats_.warp_tasks += num_tasks;
    kernel_pcie_bytes_ = 0;
    const double start_cycles = clock_cycles_;

    const int slots = std::max(1, params_.num_warp_slots);
    // Min-heap of (finish time, slot) pairs: greedy list scheduling gives
    // the makespan of the warp tasks over the resident-warp slots; the
    // slot index lets the timeline recorder draw per-slot occupancy.
    using SlotTime = std::pair<double, int>;
    std::priority_queue<SlotTime, std::vector<SlotTime>,
                        std::greater<SlotTime>>
        finish;
    for (int i = 0; i < slots; ++i) finish.push({0.0, i});
    const bool record_slots = trace_recorder_.enabled();
    std::vector<double> slot_busy;
    if (record_slots) slot_busy.assign(static_cast<std::size_t>(slots), 0.0);
    for (std::size_t t = 0; t < num_tasks; ++t) {
      WarpCtx warp(this, t);
      fn(warp, t);
      auto [start, slot] = finish.top();
      finish.pop();
      double end = start + warp.cycles();
      finish.push({end, slot});
      if (record_slots) slot_busy[static_cast<std::size_t>(slot)] = end;
    }
    double makespan = 0.0;
    while (!finish.empty()) {
      makespan = finish.top().first;
      finish.pop();
    }
    double pcie_cycles =
        static_cast<double>(kernel_pcie_bytes_) / params_.pcie_bytes_per_cycle;
    double kernel_cycles =
        params_.kernel_launch_cycles + std::max(makespan, pcie_cycles);
    clock_cycles_ += kernel_cycles;
    if (trace_enabled_) {
      if (trace_.size() < trace_capacity_) {
        trace_.push_back(
            {name, num_tasks, makespan, pcie_cycles, kernel_cycles});
      } else {
        ++dropped_kernel_records_;
      }
    }
    if (trace_recorder_.enabled()) {
      trace_recorder_.RecordSpan(TraceRecorder::Kind::kKernel, name,
                                 start_cycles, clock_cycles_);
      // Slot busy intervals start after the launch overhead and end at the
      // slot's last task; they always nest inside the kernel span.
      const double work_start = start_cycles + params_.kernel_launch_cycles;
      for (int slot = 0; slot < slots; ++slot) {
        double busy = slot_busy[static_cast<std::size_t>(slot)];
        if (busy <= 0.0) continue;
        trace_recorder_.RecordSpan(TraceRecorder::Kind::kWarpSlot, name,
                                   work_start, work_start + busy, slot);
      }
    }
    metrics_.MaybeSample(*this);
    return kernel_cycles;
  }

 private:
  SimParams params_;
  DeviceMemory memory_;
  DeviceStats stats_;
  UnifiedMemory unified_;
  HostMemoryTracker host_tracker_;
  RunProfile profile_;
  TraceRecorder trace_recorder_;
  MetricsSampler metrics_;
  DeviceBuffer um_buffer_reservation_;
  double clock_cycles_ = 0;
  std::size_t kernel_pcie_bytes_ = 0;
  bool trace_enabled_ = false;
  std::size_t trace_capacity_ = TraceRecorder::kDefaultCapacity;
  uint64_t dropped_kernel_records_ = 0;
  std::vector<KernelRecord> trace_;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_DEVICE_H_
