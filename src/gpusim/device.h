#ifndef GAMMA_GPUSIM_DEVICE_H_
#define GAMMA_GPUSIM_DEVICE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/device_memory.h"
#include "gpusim/profile.h"
#include "gpusim/sim_params.h"
#include "gpusim/stats.h"
#include "gpusim/unified_memory.h"
#include "gpusim/warp.h"

namespace gpm::gpusim {

/// The simulated CPU-GPU heterogeneous platform.
///
/// A Device owns: a capacity-enforcing device-memory allocator, the unified
/// memory subsystem (page buffer carved out of device memory at
/// construction), hardware counters, a host-memory footprint tracker, and a
/// simulated clock. Kernels execute warp tasks functionally on the host
/// while accumulating simulated cycles; kernel latency is the makespan of
/// warp tasks over `num_warp_slots` concurrent slots, overlapped with the
/// PCIe traffic the kernel generated (threads waiting on host memory are
/// switched out, §II-B).
class Device {
 public:
  explicit Device(SimParams params = SimParams());

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const SimParams& params() const { return params_; }
  DeviceMemory& memory() { return memory_; }
  UnifiedMemory& unified() { return unified_; }
  DeviceStats& stats() { return stats_; }
  const DeviceStats& stats() const { return stats_; }
  HostMemoryTracker& host_tracker() { return host_tracker_; }
  const HostMemoryTracker& host_tracker() const { return host_tracker_; }

  /// Per-run phase attribution, filled by PhaseScope (the engine opens one
  /// per primitive call). Lives on the device so that any component that
  /// can charge traffic can also be profiled against it.
  RunProfile& profile() { return profile_; }
  const RunProfile& profile() const { return profile_; }

  /// Total simulated time since construction (cycles / seconds / ms).
  double now_cycles() const { return clock_cycles_; }
  double ElapsedSeconds() const {
    return params_.CyclesToSeconds(clock_cycles_);
  }
  double ElapsedMillis() const {
    return params_.CyclesToMillis(clock_cycles_);
  }
  void ResetClock() { clock_cycles_ = 0; }

  /// Adds host-side (CPU) work to the simulated timeline, e.g. flushing and
  /// reorganizing buffers between kernels.
  void ChargeHostWork(double cycles) { clock_cycles_ += cycles; }

  /// Explicit cudaMemcpy-style transfer; advances the clock and returns the
  /// cycles spent. Used by baselines with explicit data movement.
  double CopyHostToDevice(std::size_t bytes);
  double CopyDeviceToHost(std::size_t bytes);

  /// Called by memory subsystems during a kernel to account link traffic.
  void AddKernelPcieBytes(std::size_t bytes) { kernel_pcie_bytes_ += bytes; }

  /// Peak device-memory usage including the UM page buffer reservation.
  std::size_t PeakDeviceBytes() const { return memory_.peak_used_bytes(); }

  /// One completed kernel in the (optional) trace.
  struct KernelRecord {
    std::string name;
    std::size_t tasks = 0;
    double compute_makespan_cycles = 0;
    double pcie_cycles = 0;
    double total_cycles = 0;
  };

  /// Enables per-kernel tracing (off by default; the trace is unbounded,
  /// so enable it for diagnosis, not for long sweeps).
  void set_trace_enabled(bool enabled) { trace_enabled_ = enabled; }
  const std::vector<KernelRecord>& kernel_trace() const { return trace_; }
  void ClearTrace() { trace_.clear(); }

  /// Runs `num_tasks` warp tasks through `fn(WarpCtx&, task_id)`.
  /// Returns the kernel's simulated cycles (also added to the clock).
  /// `name` labels the kernel in the trace.
  template <typename Fn>
  double LaunchKernel(std::size_t num_tasks, Fn&& fn,
                      const char* name = "kernel") {
    ++stats_.kernel_launches;
    stats_.warp_tasks += num_tasks;
    kernel_pcie_bytes_ = 0;

    const int slots = std::max(1, params_.num_warp_slots);
    // Min-heap of slot finish times: greedy list scheduling gives the
    // makespan of the warp tasks over the resident-warp slots.
    std::priority_queue<double, std::vector<double>, std::greater<double>>
        finish;
    for (int i = 0; i < slots; ++i) finish.push(0.0);
    for (std::size_t t = 0; t < num_tasks; ++t) {
      WarpCtx warp(this, t);
      fn(warp, t);
      double start = finish.top();
      finish.pop();
      finish.push(start + warp.cycles());
    }
    double makespan = 0.0;
    while (!finish.empty()) {
      makespan = finish.top();
      finish.pop();
    }
    double pcie_cycles =
        static_cast<double>(kernel_pcie_bytes_) / params_.pcie_bytes_per_cycle;
    double kernel_cycles =
        params_.kernel_launch_cycles + std::max(makespan, pcie_cycles);
    clock_cycles_ += kernel_cycles;
    if (trace_enabled_) {
      trace_.push_back(
          {name, num_tasks, makespan, pcie_cycles, kernel_cycles});
    }
    return kernel_cycles;
  }

 private:
  SimParams params_;
  DeviceMemory memory_;
  DeviceStats stats_;
  UnifiedMemory unified_;
  HostMemoryTracker host_tracker_;
  RunProfile profile_;
  DeviceBuffer um_buffer_reservation_;
  double clock_cycles_ = 0;
  std::size_t kernel_pcie_bytes_ = 0;
  bool trace_enabled_ = false;
  std::vector<KernelRecord> trace_;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_DEVICE_H_
