#include "gpusim/device_memory.h"

#include <string>

#include "common/logging.h"
#include "gpusim/sanitizer.h"

namespace gpm::gpusim {

Result<DeviceMemory::AllocId> DeviceMemory::Allocate(std::size_t bytes) {
  if (used_ + bytes > capacity_) {
    return Status::DeviceOutOfMemory(
        "device allocation of " + std::to_string(bytes) + " bytes exceeds " +
        std::to_string(capacity_ - used_) + " available (capacity " +
        std::to_string(capacity_) + ")");
  }
  used_ += bytes;
  if (used_ > peak_used_) peak_used_ = used_;
  AllocId id = next_id_++;
  allocations_.emplace(id, bytes);
  if (sanitizer_ != nullptr) sanitizer_->OnAlloc(id, bytes);
  return id;
}

void DeviceMemory::Free(AllocId id) {
  auto it = allocations_.find(id);
  if (it == allocations_.end()) {
    if (sanitizer_ != nullptr) {
      // Recoverable under the checker: becomes a double-free finding.
      sanitizer_->OnBadFree(id);
      return;
    }
    GAMMA_CHECK(false) << "free of unknown device alloc";
  }
  used_ -= it->second;
  allocations_.erase(it);
  if (sanitizer_ != nullptr) sanitizer_->OnFree(id);
}

Status DeviceMemory::Resize(AllocId id, std::size_t new_bytes) {
  auto it = allocations_.find(id);
  GAMMA_CHECK(it != allocations_.end()) << "resize of unknown device alloc";
  std::size_t old_bytes = it->second;
  if (new_bytes > old_bytes) {
    std::size_t delta = new_bytes - old_bytes;
    if (used_ + delta > capacity_) {
      return Status::DeviceOutOfMemory("device resize exceeds capacity");
    }
    used_ += delta;
    if (used_ > peak_used_) peak_used_ = used_;
  } else {
    used_ -= old_bytes - new_bytes;
  }
  it->second = new_bytes;
  if (sanitizer_ != nullptr) sanitizer_->OnResize(id, new_bytes);
  return Status::Ok();
}

Result<DeviceBuffer> DeviceBuffer::Make(DeviceMemory* mem,
                                        std::size_t bytes) {
  auto id = mem->Allocate(bytes);
  if (!id.ok()) return id.status();
  return DeviceBuffer(mem, id.value(), bytes);
}

Status DeviceBuffer::Resize(std::size_t new_bytes) {
  GAMMA_CHECK(valid()) << "resize of empty DeviceBuffer";
  Status st = mem_->Resize(id_, new_bytes);
  if (st.ok()) bytes_ = new_bytes;
  return st;
}

}  // namespace gpm::gpusim
