#ifndef GAMMA_GPUSIM_DEVICE_MEMORY_H_
#define GAMMA_GPUSIM_DEVICE_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/status.h"

namespace gpm::gpusim {

class Sanitizer;

/// Capacity-enforcing device memory allocator.
///
/// The simulator does not keep a separate physical buffer for device memory
/// (data lives in ordinary host vectors owned by the data structures); this
/// class only models *capacity*: every simulated device allocation must fit
/// within `capacity_bytes`, and in-core baselines fail with
/// kDeviceOutOfMemory exactly where a real 16 GB card would.
class DeviceMemory {
 public:
  using AllocId = uint64_t;

  explicit DeviceMemory(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  DeviceMemory(const DeviceMemory&) = delete;
  DeviceMemory& operator=(const DeviceMemory&) = delete;

  /// Reserves `bytes` of device memory. Fails with kDeviceOutOfMemory when
  /// the request does not fit.
  Result<AllocId> Allocate(std::size_t bytes);

  /// Releases a prior allocation. CHECK-fails on unknown ids — unless a
  /// sanitizer is attached, which turns the bad free into a double-free /
  /// invalid-free finding instead of aborting, so fault-injection tests can
  /// observe it.
  void Free(AllocId id);

  /// Grows/shrinks an existing allocation in place (used by buffers that
  /// resize); fails with kDeviceOutOfMemory if the delta does not fit.
  Status Resize(AllocId id, std::size_t new_bytes);

  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t used_bytes() const { return used_; }
  std::size_t peak_used_bytes() const { return peak_used_; }
  std::size_t available_bytes() const { return capacity_ - used_; }
  void ResetPeak() { peak_used_ = used_; }

  /// Live allocations by id; Device::EnableSanitizer snapshots this to
  /// shadow allocations that predate the sanitizer as baseline state.
  const std::unordered_map<AllocId, std::size_t>& allocations() const {
    return allocations_;
  }

  /// Mirrors every alloc/free/resize into the checker; nullptr detaches.
  void set_sanitizer(Sanitizer* sanitizer) { sanitizer_ = sanitizer; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_used_ = 0;
  AllocId next_id_ = 1;
  std::unordered_map<AllocId, std::size_t> allocations_;
  Sanitizer* sanitizer_ = nullptr;
};

/// RAII handle for a device allocation; frees on destruction. Move-only.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceMemory* mem, DeviceMemory::AllocId id, std::size_t bytes)
      : mem_(mem), id_(id), bytes_(bytes) {}

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this == &other) return *this;
    Release();
    mem_ = other.mem_;
    id_ = other.id_;
    bytes_ = other.bytes_;
    other.mem_ = nullptr;
    other.id_ = 0;
    other.bytes_ = 0;
    return *this;
  }
  ~DeviceBuffer() { Release(); }

  /// Allocates `bytes` from `mem`; empty buffer (and error) when OOM.
  static Result<DeviceBuffer> Make(DeviceMemory* mem, std::size_t bytes);

  bool valid() const { return mem_ != nullptr; }
  std::size_t bytes() const { return bytes_; }

  /// The underlying allocation id, 0 for an empty/moved-from buffer. Used
  /// to attribute warp accesses to this allocation under the sanitizer
  /// (WarpCtx treats id 0 as "unattributed" and skips the check).
  DeviceMemory::AllocId id() const { return id_; }

  /// Resizes the underlying allocation.
  Status Resize(std::size_t new_bytes);

  void Release() {
    if (mem_ != nullptr) {
      mem_->Free(id_);
      mem_ = nullptr;
    }
    id_ = 0;
    bytes_ = 0;
  }

 private:
  DeviceMemory* mem_ = nullptr;
  DeviceMemory::AllocId id_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_DEVICE_MEMORY_H_
