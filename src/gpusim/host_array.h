#ifndef GAMMA_GPUSIM_HOST_ARRAY_H_
#define GAMMA_GPUSIM_HOST_ARRAY_H_

#include <cstddef>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/warp.h"

namespace gpm::gpusim {

/// A typed host-resident array addressable from simulated device code.
///
/// The payload lives in an ordinary std::vector (the functional truth);
/// `Read` charges the calling warp according to the chosen access mode and
/// returns a span over the actual data. A HostArray registers itself as a
/// unified-memory region, so unified reads share the device-wide page
/// buffer, and reports its footprint to the host-memory tracker for peak
/// memory accounting (Fig. 10).
template <typename T>
class HostArray {
 public:
  /// Creates an empty array bound to `device`.
  explicit HostArray(Device* device)
      : device_(device), region_(device->unified().Register(0)) {}

  HostArray(const HostArray&) = delete;
  HostArray& operator=(const HostArray&) = delete;

  ~HostArray() { device_->host_tracker().Sub(ByteSize()); }

  /// Replaces the contents; updates the UM region and host tracker.
  void Assign(std::vector<T> data) {
    device_->host_tracker().Sub(ByteSize());
    data_ = std::move(data);
    device_->host_tracker().Add(ByteSize());
    device_->unified().ResizeRegion(region_, ByteSize());
    device_->unified().InvalidateRegion(region_);
  }

  void Resize(std::size_t n) {
    device_->host_tracker().Sub(ByteSize());
    data_.resize(n);
    device_->host_tracker().Add(ByteSize());
    device_->unified().ResizeRegion(region_, ByteSize());
  }

  std::size_t size() const { return data_.size(); }
  std::size_t ByteSize() const { return data_.size() * sizeof(T); }
  bool empty() const { return data_.empty(); }

  /// Host-side (un-charged) views, used outside kernels.
  const std::vector<T>& host_data() const { return data_; }
  std::vector<T>& mutable_host_data() { return data_; }

  UnifiedMemory::RegionId region() const { return region_; }

  /// Reads `count` elements starting at `first` from device code, charging
  /// `warp` according to `mode`. Returns a span over the live data.
  std::span<const T> Read(WarpCtx& warp, std::size_t first,
                          std::size_t count, AccessMode mode) const {
    std::size_t bytes = count * sizeof(T);
    switch (mode) {
      case AccessMode::kDeviceResident:
        warp.DeviceRead(bytes);
        break;
      case AccessMode::kUnified:
        warp.UnifiedRead(region_, first * sizeof(T), bytes);
        break;
      case AccessMode::kZeroCopy:
        warp.ZeroCopyRead(bytes);
        break;
    }
    return std::span<const T>(data_.data() + first, count);
  }

  /// Single-element read.
  T ReadOne(WarpCtx& warp, std::size_t index, AccessMode mode) const {
    return Read(warp, index, 1, mode)[0];
  }

 private:
  Device* device_;
  std::vector<T> data_;
  UnifiedMemory::RegionId region_;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_HOST_ARRAY_H_
