#include "gpusim/host_executor.h"

#include <algorithm>

namespace gpm::gpusim {

HostExecutor::HostExecutor(int num_threads) {
  const int extra = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

HostExecutor::~HostExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void HostExecutor::ParallelFor(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    remaining_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  // The calling thread is a worker too.
  for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    fn(i);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void HostExecutor::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job;
    std::size_t n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this, seen] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
      n = job_n_;
    }
    for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
      (*job)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace gpm::gpusim
