#ifndef GAMMA_GPUSIM_HOST_EXECUTOR_H_
#define GAMMA_GPUSIM_HOST_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpm::gpusim {

/// A persistent pool of host threads running the record phase of a kernel
/// launch (`SimParams::host_threads`). `ParallelFor(n, fn)` calls `fn(i)`
/// exactly once for every i in [0, n), claiming indices from a shared atomic
/// counter (dynamic scheduling — warp tasks are heavily skewed), with the
/// calling thread participating as one worker.
///
/// The executor knows nothing about simulation state; determinism is the
/// caller's contract. Device::LaunchKernelAsync has each task record its
/// side effects into a private WarpTaskLog here, then replays the logs in
/// ascending task order on the launching thread — so the schedule this pool
/// picks can never leak into simulated results.
class HostExecutor {
 public:
  /// `num_threads` is the total parallelism including the calling thread;
  /// the pool spawns num_threads - 1 workers.
  explicit HostExecutor(int num_threads);
  ~HostExecutor();

  HostExecutor(const HostExecutor&) = delete;
  HostExecutor& operator=(const HostExecutor&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn(i)` for every i in [0, n); returns once all have completed.
  /// `fn` must be safe to call concurrently for distinct indices. Calls
  /// from inside a ParallelFor are not supported (kernels do not nest).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current job, published under mu_ and valid until remaining_ hits 0.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t remaining_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_HOST_EXECUTOR_H_
