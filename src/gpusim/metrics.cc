#include "gpusim/metrics.h"

#include <sstream>

#include "common/json.h"
#include "gpusim/device.h"

namespace gpm::gpusim {

namespace {

// Gauge columns preceding the DeviceStats counters in every sample row.
constexpr const char* kGaugeColumns[] = {
    "cycles",            "device_used_bytes",  "device_peak_bytes",
    "um_resident_pages", "um_capacity_pages",  "host_bytes",
    "streams",           "link_busy_cycles",   "unified_page_count",
    "adaptivity_regret_cycles",
};

}  // namespace

void MetricsSampler::MaybeSample(const Device& device) {
  if (!enabled()) return;
  if (device.now_cycles() < next_sample_cycles_) return;
  Take(device);
  next_sample_cycles_ = device.now_cycles() + interval_cycles_;
}

void MetricsSampler::ForceSample(const Device& device) {
  Take(device);
  if (enabled()) {
    next_sample_cycles_ = device.now_cycles() + interval_cycles_;
  }
}

void MetricsSampler::Take(const Device& device) {
  Sample s;
  s.cycles = device.now_cycles();
  s.device_used_bytes = device.memory().used_bytes();
  s.device_peak_bytes = device.memory().peak_used_bytes();
  s.um_resident_pages = device.unified().resident_pages();
  s.um_capacity_pages = device.unified().capacity_pages();
  s.host_bytes = device.host_tracker().current_bytes();
  s.streams = device.streams().num_streams();
  s.link_busy_cycles = device.streams().link_busy_cycles();
  s.unified_page_count = device.adaptivity_gauges().unified_page_count;
  s.adaptivity_regret_cycles = device.adaptivity_gauges().regret_cycles;
  s.counters = device.stats().Snapshot();
  samples_.push_back(std::move(s));
}

std::string MetricsSampler::ToJson(const Device& device) const {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema").Value("gamma.metrics.v1");
  w.Key("interval_cycles").Value(interval_cycles_);
  w.Key("clock_ghz").Value(device.params().clock_ghz);

  w.Key("columns").BeginArray();
  for (const char* name : kGaugeColumns) w.Value(name);
  for (const DeviceStats::Field& f : DeviceStats::Fields()) w.Value(f.name);
  w.EndArray();

  w.Key("samples").BeginArray();
  for (const Sample& s : samples_) {
    w.BeginArray();
    w.Value(s.cycles);
    w.Value(s.device_used_bytes);
    w.Value(s.device_peak_bytes);
    w.Value(s.um_resident_pages);
    w.Value(s.um_capacity_pages);
    w.Value(s.host_bytes);
    w.Value(s.streams);
    w.Value(s.link_busy_cycles);
    w.Value(s.unified_page_count);
    w.Value(s.adaptivity_regret_cycles);
    for (const DeviceStats::Field& f : DeviceStats::Fields()) {
      w.Value(s.counters.*f.member);
    }
    w.EndArray();
  }
  w.EndArray();

  w.EndObject();
  os << '\n';
  return os.str();
}

}  // namespace gpm::gpusim
