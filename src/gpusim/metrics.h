#ifndef GAMMA_GPUSIM_METRICS_H_
#define GAMMA_GPUSIM_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "gpusim/stats.h"

namespace gpm::gpusim {

class Device;

/// Periodic sampler of the device's observable state over simulated time.
///
/// Every `interval_cycles` of simulated time (checked whenever the clock
/// advances: kernel completion, explicit copies, host work), the sampler
/// snapshots every `DeviceStats` counter — via `DeviceStats::Fields()`, so
/// the series cannot drift from the struct — plus device-memory and
/// unified-page-buffer occupancy and the host footprint. The resulting
/// time-series (`gamma.metrics.v1` JSON via `ToJson()`) is what UM
/// residency heatmaps and the adaptive accessor's UM/ZC crossover plots
/// are drawn from.
///
/// The clock advances in discrete jumps (a whole kernel at a time), so
/// samples land on the first clock edge at or after each interval
/// boundary; consecutive samples are therefore *at least* one interval
/// apart. Disabled by default (interval 0); sampling costs one comparison
/// per clock advance when disabled.
class MetricsSampler {
 public:
  /// One snapshot of device state at `cycles` of simulated time.
  struct Sample {
    double cycles = 0;
    std::size_t device_used_bytes = 0;
    std::size_t device_peak_bytes = 0;
    std::size_t um_resident_pages = 0;
    std::size_t um_capacity_pages = 0;
    std::size_t host_bytes = 0;
    int streams = 0;                ///< stream count at the sample point
    double link_busy_cycles = 0;    ///< cumulative PCIe-link busy time
    /// Pages the hybrid plan currently flags for unified access (0 for
    /// pure placements / no engine).
    std::size_t unified_page_count = 0;
    /// Cumulative hybrid-vs-best-pure regret from the adaptivity audit
    /// (0 unless an audit is attached).
    double adaptivity_regret_cycles = 0;
    DeviceStats counters;
  };

  MetricsSampler() = default;
  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Enables sampling every `cycles` of simulated time (0 disables). The
  /// first sample lands on the first clock edge at or after one interval.
  void set_interval_cycles(double cycles) {
    interval_cycles_ = cycles;
    next_sample_cycles_ = cycles;
  }
  double interval_cycles() const { return interval_cycles_; }
  bool enabled() const { return interval_cycles_ > 0; }

  /// Samples if at least one interval elapsed since the last sample.
  /// Called by the Device after every clock advance.
  void MaybeSample(const Device& device);

  /// Unconditionally appends a sample at the current clock (e.g. to pin
  /// the final state of a run before export).
  void ForceSample(const Device& device);

  const std::vector<Sample>& samples() const { return samples_; }

  void Clear() {
    samples_.clear();
    next_sample_cycles_ = interval_cycles_;
  }

  /// Renders the series as a `gamma.metrics.v1` JSON document: a `columns`
  /// array naming every value (gauges first, then each DeviceStats field
  /// in `Fields()` order) and a row-per-sample `samples` array.
  std::string ToJson(const Device& device) const;

 private:
  void Take(const Device& device);

  double interval_cycles_ = 0;
  double next_sample_cycles_ = 0;
  std::vector<Sample> samples_;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_METRICS_H_
