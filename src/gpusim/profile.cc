#include "gpusim/profile.h"

#include <sstream>

#include "common/json.h"
#include "gpusim/device.h"

namespace gpm::gpusim {
namespace {

void WriteCounters(JsonWriter& w, const DeviceStats& stats) {
  w.Key("counters").BeginObject();
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    w.Key(f.name).Value(stats.*f.member);
  }
  w.EndObject();
}

}  // namespace

void RunProfile::Record(std::string_view name, double cycles,
                        const DeviceStats& delta) {
  PhaseRecord* rec = nullptr;
  for (PhaseRecord& ph : phases_) {
    if (ph.name == name) {
      rec = &ph;
      break;
    }
  }
  if (rec == nullptr) {
    phases_.emplace_back();
    rec = &phases_.back();
    rec->name = std::string(name);
  }
  ++rec->invocations;
  rec->cycles += cycles;
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    rec->delta.*f.member += delta.*f.member;
  }
}

const PhaseRecord* RunProfile::Find(std::string_view name) const {
  for (const PhaseRecord& ph : phases_) {
    if (ph.name == name) return &ph;
  }
  return nullptr;
}

std::string RunProfile::ToJson(const Device& device) const {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema").Value("gamma.profile.v1");

  w.Key("totals").BeginObject();
  w.Key("cycles").Value(device.now_cycles());
  w.Key("millis").Value(device.ElapsedMillis());
  w.Key("peak_device_bytes").Value(device.PeakDeviceBytes());
  w.Key("peak_host_bytes").Value(device.host_tracker().peak_bytes());
  WriteCounters(w, device.stats());
  w.EndObject();

  w.Key("phases").BeginArray();
  for (const PhaseRecord& ph : phases_) {
    w.BeginObject();
    w.Key("name").Value(ph.name);
    w.Key("invocations").Value(ph.invocations);
    w.Key("cycles").Value(ph.cycles);
    w.Key("millis").Value(device.params().CyclesToMillis(ph.cycles));
    WriteCounters(w, ph.delta);
    w.EndObject();
  }
  w.EndArray();

  w.Key("kernel_trace").BeginArray();
  for (const Device::KernelRecord& k : device.kernel_trace()) {
    w.BeginObject();
    w.Key("name").Value(k.name);
    w.Key("tasks").Value(k.tasks);
    w.Key("compute_makespan_cycles").Value(k.compute_makespan_cycles);
    w.Key("pcie_cycles").Value(k.pcie_cycles);
    w.Key("total_cycles").Value(k.total_cycles);
    w.EndObject();
  }
  w.EndArray();
  // Kernel records are bounded by Device::trace_capacity(); overflow is
  // counted, not silently truncated.
  w.Key("kernel_trace_dropped").Value(device.dropped_kernel_records());

  w.EndObject();
  os << '\n';
  return os.str();
}

PhaseScope::PhaseScope(Device* device, RunProfile* profile, std::string name)
    : device_(device),
      profile_(profile),
      name_(std::move(name)),
      start_cycles_(device->now_cycles()),
      start_stats_(device->stats().Snapshot()) {
  // The sanitizer attributes findings to the innermost open phase.
  if (Sanitizer* san = device_->sanitizer()) san->PushPhase(name_);
  // gamma-prof attributes command records to the innermost open phase;
  // the markers let the critpath analyzer rebuild the phase windows.
  device_->BeginPhaseMark(name_);
}

PhaseScope::~PhaseScope() {
  device_->EndPhaseMark();
  if (Sanitizer* san = device_->sanitizer()) san->PopPhase();
  // The timeline recorder gets the phase span even when no RunProfile is
  // attached — the two consumers are independent.
  if (device_->trace().enabled()) {
    device_->trace().RecordSpan(TraceRecorder::Kind::kPhase, name_,
                                start_cycles_, device_->now_cycles());
  }
  if (profile_ == nullptr) return;
  profile_->Record(name_, device_->now_cycles() - start_cycles_,
                   device_->stats().Diff(start_stats_));
}

}  // namespace gpm::gpusim
