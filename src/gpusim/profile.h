#ifndef GAMMA_GPUSIM_PROFILE_H_
#define GAMMA_GPUSIM_PROFILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/stats.h"

namespace gpm::gpusim {

class Device;

/// One named slice of a run: simulated cycles spent inside the phase and
/// the hardware-counter deltas (UM faults/hits, ZC transactions, pool
/// traffic, ...) attributed to it. Same-named scopes accumulate.
struct PhaseRecord {
  std::string name;
  uint64_t invocations = 0;
  double cycles = 0;
  DeviceStats delta;
};

/// Per-run attribution of simulated time and memory traffic to named
/// phases (extension / filtering / aggregation / ...).
///
/// GAMMA's claims are about memory traffic per phase — page faults vs
/// 128 B zero-copy transactions during extension, pool behaviour during
/// writes — so the engine records every primitive call here via PhaseScope,
/// and ToJson() exports the breakdown (plus run totals and the per-kernel
/// trace) for offline diffing.
class RunProfile {
 public:
  /// Merges `cycles` and `delta` into the phase named `name` (created on
  /// first use; insertion order is preserved).
  void Record(std::string_view name, double cycles, const DeviceStats& delta);

  const std::vector<PhaseRecord>& phases() const { return phases_; }

  /// The record for `name`, or nullptr if that phase never ran.
  const PhaseRecord* Find(std::string_view name) const;

  void Clear() { phases_.clear(); }

  /// Full JSON document: run totals (clock, counters, peak memory), the
  /// per-phase breakdown, and the per-kernel trace (empty unless tracing
  /// was enabled on `device`). Pass the device the phases ran on.
  std::string ToJson(const Device& device) const;

 private:
  std::vector<PhaseRecord> phases_;
};

/// RAII phase marker: snapshots the device clock and counters at
/// construction and attributes the difference to `name` in `profile` at
/// destruction. A null profile skips the RunProfile record; the device's
/// timeline recorder, when enabled, still gets the phase span either way.
class PhaseScope {
 public:
  PhaseScope(Device* device, RunProfile* profile, std::string name);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Device* device_;
  RunProfile* profile_;
  std::string name_;
  double start_cycles_ = 0;
  DeviceStats start_stats_;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_PROFILE_H_
