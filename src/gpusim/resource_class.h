#ifndef GAMMA_GPUSIM_RESOURCE_CLASS_H_
#define GAMMA_GPUSIM_RESOURCE_CLASS_H_

#include <array>
#include <cstdint>

namespace gpm::gpusim {

/// The resource-class taxonomy of gamma-prof: every cycle the simulator
/// charges is tagged with the resource that consumed it, at the call site
/// where the charge is made, so the critical-path analyzer can say *what
/// bound a run* instead of only how long it took.
///
///  - kCompute:  ALU/SIMT work, warp scans, block syncs, kernel launch
///               overhead, generic host work between kernels.
///  - kDram:     device-memory reads/writes, global atomics, and
///               unified-memory accesses that hit the page buffer.
///  - kPcie:     zero-copy transactions, explicit copies (latency and
///               transfer), and a kernel's folded link window.
///  - kUm:       unified-memory page-fault handling plus the migration
///               stall charged to the faulting warp.
///  - kSort:     compute-class charges made inside a SortActivityScope
///               (the multi-merge sort subtree); the sort's memory traffic
///               keeps its memory class so link accounting stays honest.
///  - kSyncIdle: event/stream stalls, dependency gaps, and the per-phase
///               attribution residual — defined so that per-class cycles
///               always sum exactly to the wall total they decompose.
enum class ResourceClass : uint8_t {
  kCompute = 0,
  kDram,
  kPcie,
  kUm,
  kSort,
  kSyncIdle,
};

inline constexpr int kNumResourceClasses = 6;

/// Per-class cycle accumulator, indexed by ResourceClass.
using ResourceCycles = std::array<double, kNumResourceClasses>;

inline const char* ResourceClassName(ResourceClass cls) {
  switch (cls) {
    case ResourceClass::kCompute:
      return "compute";
    case ResourceClass::kDram:
      return "dram";
    case ResourceClass::kPcie:
      return "pcie";
    case ResourceClass::kUm:
      return "um";
    case ResourceClass::kSort:
      return "sort";
    case ResourceClass::kSyncIdle:
      return "sync_idle";
  }
  return "?";
}

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_RESOURCE_CLASS_H_
