#include "gpusim/sanitizer.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/json.h"
#include "gpusim/device.h"

namespace gpm::gpusim {
namespace {

// Bound on remembered accesses per object. Racecheck compares each new
// access against this window; older records are evicted (and counted) like
// real racecheck's bounded shadow memory.
constexpr std::size_t kHistoryCap = 512;
// Adjacent same-epoch records coalesce against the most recent few entries,
// which keeps sequential fills (pool blocks, column writes) at O(1) records.
constexpr std::size_t kCoalesceWindow = 8;

}  // namespace

const char* Sanitizer::KindName(Kind kind) {
  switch (kind) {
    case Kind::kOutOfBounds:
      return "out-of-bounds";
    case Kind::kInvalidAccess:
      return "invalid-access";
    case Kind::kUninitRead:
      return "uninitialized-read";
    case Kind::kRace:
      return "race";
    case Kind::kLeak:
      return "leak";
    case Kind::kDoubleFree:
      return "double-free";
  }
  return "?";
}

const char* Sanitizer::CheckerName(Kind kind) {
  switch (kind) {
    case Kind::kOutOfBounds:
    case Kind::kInvalidAccess:
    case Kind::kLeak:
    case Kind::kDoubleFree:
      return "memcheck";
    case Kind::kUninitRead:
      return "initcheck";
    case Kind::kRace:
      return "racecheck";
  }
  return "?";
}

bool Sanitizer::ParseCheckList(std::string_view spec, Options* out) {
  Options opts;
  if (spec.empty() || spec == "1" || spec == "on" || spec == "true" ||
      spec == "all") {
    *out = opts;
    return true;
  }
  opts.memcheck = opts.initcheck = opts.racecheck = false;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    std::string_view tok =
        spec.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    if (tok == "memcheck") {
      opts.memcheck = true;
    } else if (tok == "initcheck") {
      opts.initcheck = true;
    } else if (tok == "racecheck") {
      opts.racecheck = true;
    } else if (!tok.empty()) {
      return false;
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (!opts.memcheck && !opts.initcheck && !opts.racecheck) return false;
  *out = opts;
  return true;
}

// -- Allocation lifetime -------------------------------------------------------

void Sanitizer::OnAlloc(uint64_t handle, std::size_t bytes, bool baseline) {
  if (handle == 0) return;
  ShadowObject& obj = objects_[handle];
  obj = ShadowObject();
  obj.handle = handle;
  obj.bytes = bytes;
  obj.baseline = baseline;
  if (baseline) obj.init.Add(0, bytes);
  if (!baseline) ++activity_.allocations;
}

void Sanitizer::OnFree(uint64_t handle) {
  ShadowObject* obj = FindObject(handle);
  if (obj == nullptr) return;
  obj->live = false;
  obj->history.clear();
  ++activity_.frees;
}

void Sanitizer::OnResize(uint64_t handle, std::size_t new_bytes) {
  ShadowObject* obj = FindObject(handle);
  if (obj == nullptr) return;
  obj->bytes = new_bytes;
}

void Sanitizer::OnBadFree(uint64_t handle) {
  ShadowObject* obj = FindObject(handle);
  if (obj != nullptr && !obj->live) {
    AddFinding(Kind::kDoubleFree, obj, /*context=*/"", /*task=*/0,
               kDefaultStream, 0, obj->bytes,
               "double free of " + ObjectName(obj));
  } else {
    AddFinding(Kind::kInvalidAccess, obj, /*context=*/"", /*task=*/0,
               kDefaultStream, 0, 0,
               "free of unknown device allocation handle " +
                   std::to_string(handle));
  }
}

void Sanitizer::OnRegionRegister(UnifiedMemory::RegionId region,
                                 std::size_t bytes, bool baseline) {
  uint64_t handle = RegionHandle(region);
  ShadowObject& obj = objects_[handle];
  obj = ShadowObject();
  obj.handle = handle;
  obj.bytes = bytes;
  obj.baseline = baseline;
  obj.is_region = true;
  obj.label = "region#" + std::to_string(region);
  // Regions are host arrays: their contents exist before device code runs.
  obj.init.Add(0, bytes);
}

void Sanitizer::OnRegionResize(UnifiedMemory::RegionId region,
                               std::size_t new_bytes) {
  ShadowObject* obj = FindObject(RegionHandle(region));
  if (obj == nullptr) return;
  obj->bytes = new_bytes;
  // Growth comes from a host-side Assign/Resize: initialized host data.
  obj->init.Add(0, new_bytes);
}

void Sanitizer::LabelObject(uint64_t handle, std::string label) {
  ShadowObject* obj = FindObject(handle);
  if (obj != nullptr) obj->label = std::move(label);
}

void Sanitizer::MarkInitialized(uint64_t handle) {
  ShadowObject* obj = FindObject(handle);
  if (obj != nullptr) obj->init.Add(0, obj->bytes);
}

uint64_t Sanitizer::RegisterScratch(std::string label, std::size_t bytes) {
  uint64_t handle = next_scratch_++;
  OnAlloc(handle, bytes);
  LabelObject(handle, std::move(label));
  return handle;
}

void Sanitizer::ReleaseScratch(uint64_t handle) { OnFree(handle); }

// -- Execution context ---------------------------------------------------------

void Sanitizer::EnsureStream(StreamId stream) {
  auto want = static_cast<std::size_t>(stream) + 1;
  if (vc_.size() >= want) return;
  for (auto& row : vc_) row.resize(want, 0);
  while (vc_.size() < want) vc_.emplace_back(want, 0);
}

bool Sanitizer::OrderedBefore(StreamId t, uint64_t k, StreamId s) const {
  if (t == s) return true;  // Same stream: program order.
  const auto& row = vc_[static_cast<std::size_t>(s)];
  uint64_t seen = static_cast<std::size_t>(t) < row.size()
                      ? row[static_cast<std::size_t>(t)]
                      : 0;
  return seen >= k;
}

void Sanitizer::BeginKernel(StreamId stream, const char* name) {
  EnsureStream(stream);
  ++vc_[static_cast<std::size_t>(stream)][static_cast<std::size_t>(stream)];
  in_kernel_ = true;
  kernel_stream_ = stream;
  kernel_name_ = name != nullptr ? name : "kernel";
}

void Sanitizer::EndKernel() {
  in_kernel_ = false;
  kernel_name_.clear();
  kernel_stream_ = kDefaultStream;
}

void Sanitizer::OnCommand(StreamId stream) {
  EnsureStream(stream);
  ++vc_[static_cast<std::size_t>(stream)][static_cast<std::size_t>(stream)];
}

uint64_t Sanitizer::OnEventRecord(StreamId stream) {
  EnsureStream(stream);
  ++activity_.events_recorded;
  event_snapshots_.emplace_back(stream, vc_[static_cast<std::size_t>(stream)]);
  return event_snapshots_.size();  // 1-based; 0 means "never recorded".
}

void Sanitizer::OnEventWait(StreamId stream, uint64_t seq) {
  if (seq == 0 || seq > event_snapshots_.size()) return;
  EnsureStream(stream);
  ++activity_.event_waits;
  const auto& snapshot = event_snapshots_[seq - 1].second;
  auto& row = vc_[static_cast<std::size_t>(stream)];
  for (std::size_t t = 0; t < snapshot.size(); ++t) {
    row[t] = std::max(row[t], snapshot[t]);
  }
}

void Sanitizer::OnSynchronize() {
  // Every stream joins every other: all rows become the pointwise max.
  if (vc_.empty()) return;
  std::vector<uint64_t> join(vc_.size(), 0);
  for (const auto& row : vc_) {
    for (std::size_t t = 0; t < row.size(); ++t) {
      join[t] = std::max(join[t], row[t]);
    }
  }
  for (auto& row : vc_) row = join;
}

void Sanitizer::OnFastForward(StreamId stream) {
  // FastForward places the stream after everything already submitted — the
  // same join as Synchronize, but only this stream's row learns it.
  EnsureStream(stream);
  auto& row = vc_[static_cast<std::size_t>(stream)];
  for (const auto& other : vc_) {
    for (std::size_t t = 0; t < other.size() && t < row.size(); ++t) {
      row[t] = std::max(row[t], other[t]);
    }
  }
}

// -- Accesses -------------------------------------------------------------------

void Sanitizer::OnWarpAccess(std::size_t task, uint64_t handle,
                             std::size_t offset, std::size_t bytes,
                             bool is_write) {
  if (handle == 0) return;
  ++activity_.device_accesses;
  StreamId stream = in_kernel_ ? kernel_stream_ : kDefaultStream;
  CheckAccess(handle, offset, bytes, is_write, /*check_init=*/true, stream,
              in_kernel_ ? kernel_name_ : std::string(), task);
}

void Sanitizer::OnUnifiedWarpAccess(std::size_t task,
                                    UnifiedMemory::RegionId region,
                                    std::size_t offset, std::size_t bytes) {
  ++activity_.unified_accesses;
  StreamId stream = in_kernel_ ? kernel_stream_ : kDefaultStream;
  CheckAccess(RegionHandle(region), offset, bytes, /*is_write=*/false,
              /*check_init=*/true, stream,
              in_kernel_ ? kernel_name_ : std::string(), task);
}

void Sanitizer::OnBulkAccess(StreamId stream, uint64_t handle,
                             std::size_t offset, std::size_t bytes,
                             bool is_write, const char* what) {
  // The transfer is its own command: bump the epoch *before* recording so
  // the access is not ordered before events recorded earlier on `stream`.
  OnCommand(stream);
  if (handle == 0) return;
  ++activity_.bulk_accesses;
  CheckAccess(handle, offset, bytes, is_write, /*check_init=*/false, stream,
              what != nullptr ? what : "copy", /*task=*/0);
}

void Sanitizer::OnKernelBulkAccess(uint64_t handle, std::size_t offset,
                                   std::size_t bytes, bool is_write,
                                   const char* what) {
  if (handle == 0) return;
  ++activity_.bulk_accesses;
  StreamId stream = in_kernel_ ? kernel_stream_ : kDefaultStream;
  CheckAccess(handle, offset, bytes, is_write, /*check_init=*/false, stream,
              what != nullptr ? what : "copy", /*task=*/0);
}

void Sanitizer::CheckAccess(uint64_t handle, std::size_t offset,
                            std::size_t bytes, bool is_write, bool check_init,
                            StreamId stream, const std::string& context,
                            std::size_t task) {
  ShadowObject* obj = FindObject(handle);
  const char* rw = is_write ? "write" : "read";
  if (options_.memcheck) {
    if (obj == nullptr) {
      AddFinding(Kind::kInvalidAccess, nullptr, context, task, stream, offset,
                 bytes,
                 std::string(rw) + " through unknown allocation handle " +
                     std::to_string(handle));
      return;
    }
    if (!obj->live) {
      AddFinding(Kind::kInvalidAccess, obj, context, task, stream, offset,
                 bytes,
                 std::string(rw) + " of freed allocation " + ObjectName(obj));
      return;
    }
    if (offset + bytes > obj->bytes) {
      AddFinding(Kind::kOutOfBounds, obj, context, task, stream, offset,
                 bytes,
                 std::string(rw) + " of [" + std::to_string(offset) + ", " +
                     std::to_string(offset + bytes) + ") overruns " +
                     ObjectName(obj) + " of " + std::to_string(obj->bytes) +
                     " bytes");
      return;
    }
  }
  if (obj == nullptr || !obj->live) return;
  // With memcheck off an out-of-range access must not corrupt the shadow.
  if (offset > obj->bytes) return;
  std::size_t end = std::min(offset + bytes, obj->bytes);
  if (options_.initcheck && check_init) {
    if (is_write) {
      obj->init.Add(offset, end);
    } else {
      std::size_t gap = obj->init.FirstGap(offset, end);
      if (gap < end) {
        AddFinding(Kind::kUninitRead, obj, context, task, stream, gap,
                   end - gap,
                   "read of never-written bytes of " + ObjectName(obj) +
                       " starting at offset " + std::to_string(gap));
        // Report each stale range once: later reads of the same bytes
        // dedupe anyway, and marking keeps the shadow cheap.
        obj->init.Add(offset, end);
      }
    }
  } else if (is_write) {
    obj->init.Add(offset, end);
  }
  if (options_.racecheck) {
    RecordAccess(obj, stream, offset, end, is_write, task, context);
  }
}

void Sanitizer::RecordAccess(ShadowObject* obj, StreamId stream,
                             std::size_t begin, std::size_t end,
                             bool is_write, std::size_t task,
                             const std::string& context) {
  EnsureStream(stream);
  uint64_t clock =
      vc_[static_cast<std::size_t>(stream)][static_cast<std::size_t>(stream)];
  for (const ShadowAccess& a : obj->history) {
    if (a.stream == stream) continue;
    if (!(a.is_write || is_write)) continue;
    if (a.end <= begin || end <= a.begin) continue;
    if (OrderedBefore(a.stream, a.clock, stream)) continue;
    std::ostringstream msg;
    msg << "unsynchronized " << (is_write ? "write" : "read")
        << " on stream " << stream << " overlaps "
        << (a.is_write ? "write" : "read") << " by '" << a.context
        << "' on stream " << a.stream << " in " << ObjectName(obj)
        << " (bytes [" << std::max(begin, a.begin) << ", "
        << std::min(end, a.end) << "))";
    AddFinding(Kind::kRace, obj, context, task, stream, begin, end - begin,
               msg.str(), /*extra_key=*/a.context);
    break;  // One finding per access; more pairs add nothing new.
  }
  // Coalesce into a recent record when this access extends it.
  std::size_t n = obj->history.size();
  for (std::size_t i = n; i-- > 0 && i + kCoalesceWindow >= n;) {
    ShadowAccess& r = obj->history[i];
    if (r.stream == stream && r.clock == clock && r.is_write == is_write &&
        r.context == context && begin <= r.end && end >= r.begin) {
      r.begin = std::min(r.begin, begin);
      r.end = std::max(r.end, end);
      return;
    }
  }
  if (obj->history.size() >= kHistoryCap) {
    std::size_t drop = kHistoryCap / 2;
    obj->history.erase(obj->history.begin(),
                       obj->history.begin() +
                           static_cast<std::ptrdiff_t>(drop));
    obj->history_dropped += drop;
  }
  ShadowAccess rec;
  rec.stream = stream;
  rec.clock = clock;
  rec.begin = begin;
  rec.end = end;
  rec.is_write = is_write;
  rec.task = task;
  rec.context = context;
  obj->history.push_back(std::move(rec));
}

// -- Reporting -------------------------------------------------------------------

void Sanitizer::FinalizeLeakCheck() {
  if (leak_check_done_ || !options_.memcheck) {
    leak_check_done_ = true;
    return;
  }
  leak_check_done_ = true;
  std::vector<const ShadowObject*> leaked;
  for (const auto& [handle, obj] : objects_) {
    if (obj.live && !obj.baseline && !obj.is_region) leaked.push_back(&obj);
  }
  std::sort(leaked.begin(), leaked.end(),
            [](const ShadowObject* a, const ShadowObject* b) {
              return a->handle < b->handle;
            });
  for (const ShadowObject* obj : leaked) {
    AddFinding(Kind::kLeak, obj, /*context=*/"", /*task=*/0, kDefaultStream,
               0, obj->bytes,
               "leaked device allocation " + ObjectName(obj) + " (" +
                   std::to_string(obj->bytes) + " bytes)");
  }
}

void Sanitizer::AddFinding(Kind kind, const ShadowObject* obj,
                           const std::string& context, std::size_t task,
                           StreamId stream, std::size_t offset,
                           std::size_t bytes, std::string message,
                           const std::string& extra_key) {
  ++total_occurrences_;
  std::string object = ObjectName(obj);
  std::string phase = CurrentPhase();
  std::string key = std::string(KindName(kind)) + '|' + object + '|' +
                    context + '|' + phase;
  if (!extra_key.empty()) key += '|' + extra_key;
  auto it = finding_index_.find(key);
  if (it != finding_index_.end()) {
    ++findings_[it->second].occurrences;
    return;
  }
  if (findings_.size() >= options_.max_findings) {
    ++dropped_findings_;
    return;
  }
  Finding f;
  f.kind = kind;
  f.message = std::move(message);
  f.object = std::move(object);
  f.kernel = context;
  f.phase = std::move(phase);
  f.task = task;
  f.stream = stream;
  f.offset = offset;
  f.bytes = bytes;
  f.first_cycles = now_cycles_ != nullptr ? *now_cycles_ : 0.0;
  finding_index_.emplace(std::move(key), findings_.size());
  findings_.push_back(std::move(f));
}

std::string Sanitizer::ObjectName(const ShadowObject* obj) const {
  if (obj == nullptr) return "<unknown>";
  if (!obj->label.empty()) return obj->label;
  return "alloc#" + std::to_string(obj->handle);
}

ShadowObject* Sanitizer::FindObject(uint64_t handle) {
  auto it = objects_.find(handle);
  return it != objects_.end() ? &it->second : nullptr;
}

void Sanitizer::TestOnlyPoison(uint64_t handle) {
  ShadowObject* obj = FindObject(handle);
  if (obj != nullptr) obj->init.Clear();
}

std::string Sanitizer::ReportText() const {
  std::ostringstream os;
  os << "gpusim-check: " << findings_.size() << " finding(s), "
     << total_occurrences_ << " occurrence(s)";
  if (dropped_findings_ > 0) os << ", " << dropped_findings_ << " dropped";
  os << '\n';
  for (const Finding& f : findings_) {
    os << "  [" << CheckerName(f.kind) << "] " << KindName(f.kind) << ": "
       << f.message;
    if (!f.kernel.empty()) os << " | kernel '" << f.kernel << "'";
    if (!f.phase.empty()) os << " | phase '" << f.phase << "'";
    os << " | task " << f.task << " stream " << f.stream;
    if (f.occurrences > 1) os << " | x" << f.occurrences;
    os << '\n';
  }
  return os.str();
}

std::string Sanitizer::ToJson() const {
  uint64_t per_checker[3] = {0, 0, 0};
  for (const Finding& f : findings_) {
    std::string_view checker = CheckerName(f.kind);
    if (checker == "memcheck") ++per_checker[0];
    if (checker == "initcheck") ++per_checker[1];
    if (checker == "racecheck") ++per_checker[2];
  }
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema").Value("gamma.check.v1");
  w.Key("checkers").BeginObject();
  w.Key("memcheck").Value(options_.memcheck);
  w.Key("initcheck").Value(options_.initcheck);
  w.Key("racecheck").Value(options_.racecheck);
  w.EndObject();
  w.Key("summary").BeginObject();
  w.Key("total").Value(findings_.size());
  w.Key("memcheck").Value(per_checker[0]);
  w.Key("initcheck").Value(per_checker[1]);
  w.Key("racecheck").Value(per_checker[2]);
  w.Key("occurrences").Value(total_occurrences_);
  w.Key("dropped_findings").Value(dropped_findings_);
  w.EndObject();
  w.Key("checked").BeginObject();
  w.Key("device_accesses").Value(activity_.device_accesses);
  w.Key("unified_accesses").Value(activity_.unified_accesses);
  w.Key("bulk_accesses").Value(activity_.bulk_accesses);
  w.Key("allocations").Value(activity_.allocations);
  w.Key("frees").Value(activity_.frees);
  w.Key("events_recorded").Value(activity_.events_recorded);
  w.Key("event_waits").Value(activity_.event_waits);
  w.EndObject();
  w.Key("findings").BeginArray();
  for (const Finding& f : findings_) {
    w.BeginObject();
    w.Key("kind").Value(KindName(f.kind));
    w.Key("checker").Value(CheckerName(f.kind));
    w.Key("message").Value(f.message);
    w.Key("object").Value(f.object);
    w.Key("kernel").Value(f.kernel);
    w.Key("phase").Value(f.phase);
    w.Key("task").Value(f.task);
    w.Key("stream").Value(f.stream);
    w.Key("offset").Value(f.offset);
    w.Key("bytes").Value(f.bytes);
    w.Key("occurrences").Value(f.occurrences);
    w.Key("first_cycles").Value(f.first_cycles);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
  return os.str();
}

SanitizerScratch::SanitizerScratch(Device* device, std::string label,
                                   std::size_t bytes) {
  sanitizer_ = device != nullptr ? device->sanitizer() : nullptr;
  if (sanitizer_ != nullptr) {
    handle_ = sanitizer_->RegisterScratch(std::move(label), bytes);
  }
}

SanitizerScratch::~SanitizerScratch() {
  if (sanitizer_ != nullptr && handle_ != 0) {
    sanitizer_->ReleaseScratch(handle_);
  }
}

}  // namespace gpm::gpusim
