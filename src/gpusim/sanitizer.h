#ifndef GAMMA_GPUSIM_SANITIZER_H_
#define GAMMA_GPUSIM_SANITIZER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "gpusim/shadow.h"
#include "gpusim/stream.h"
#include "gpusim/unified_memory.h"

namespace gpm::gpusim {

class Device;

/// compute-sanitizer analog for the simulated device.
///
/// An opt-in checker attached to a Device that validates every *attributed*
/// simulated memory operation as it happens, mirroring the three
/// compute-sanitizer tools:
///
///  - memcheck:  every access must land inside a live allocation (bounds,
///               use-after-free, unknown handles), plus leak and double-free
///               detection over DeviceBuffer/pool lifetimes.
///  - initcheck: per-byte shadow of which bytes were ever written; reads of
///               never-written device bytes are flagged.
///  - racecheck: a vector-clock happens-before graph over streams/events;
///               overlapping cross-stream accesses to the same object
///               without an ordering event (at least one a write) race.
///
/// The sanitizer is pure shadow state: it never charges cycles, never
/// touches DeviceStats, and never alters control flow, so cycle totals are
/// bit-identical with it on or off (test-enforced). Sites that cannot
/// attribute an access to an allocation pass handle 0 and are skipped.
class Sanitizer {
 public:
  struct Options {
    bool memcheck = true;
    bool initcheck = true;
    bool racecheck = true;
    /// Distinct findings kept; repeats of the same (kind, object, kernel,
    /// phase) dedupe into `Finding::occurrences`, further distinct findings
    /// beyond the cap are counted in `dropped_findings()`.
    std::size_t max_findings = 256;
    /// Print the report to stderr and abort when the Device is destroyed
    /// with findings outstanding. Set by the GPUSIM_CHECK env-var mode so
    /// whole test suites fail loudly under the sanitizer.
    bool abort_on_finding = false;
  };

  enum class Kind : uint8_t {
    kOutOfBounds,
    kInvalidAccess,
    kUninitRead,
    kRace,
    kLeak,
    kDoubleFree,
  };
  static const char* KindName(Kind kind);
  /// The compute-sanitizer tool the kind belongs to
  /// (memcheck / initcheck / racecheck).
  static const char* CheckerName(Kind kind);

  /// One deduplicated finding with its attribution at first occurrence.
  struct Finding {
    Kind kind = Kind::kOutOfBounds;
    std::string message;
    std::string object;  ///< allocation label, e.g. "memory-pool" or "alloc#3"
    std::string kernel;  ///< kernel name or copy tag; empty outside kernels
    std::string phase;   ///< innermost open PhaseScope, empty outside phases
    std::size_t task = 0;
    StreamId stream = kDefaultStream;
    std::size_t offset = 0;
    std::size_t bytes = 0;
    uint64_t occurrences = 1;
    double first_cycles = 0;
  };

  /// Work the sanitizer has validated, exported under "checked" so a clean
  /// report is distinguishable from a report that checked nothing.
  struct Activity {
    uint64_t device_accesses = 0;
    uint64_t unified_accesses = 0;
    uint64_t bulk_accesses = 0;
    uint64_t allocations = 0;
    uint64_t frees = 0;
    uint64_t events_recorded = 0;
    uint64_t event_waits = 0;
  };

  /// Handle namespaces: device allocations use their raw
  /// DeviceMemory::AllocId; UM regions and shadow-only scratch buffers are
  /// offset into disjoint ranges so one map shadows all three.
  static constexpr uint64_t kScratchHandleBase = uint64_t{1} << 61;
  static constexpr uint64_t kRegionHandleBase = uint64_t{1} << 62;
  static uint64_t RegionHandle(UnifiedMemory::RegionId region) {
    return kRegionHandleBase | region;
  }

  /// Parses a GPUSIM_CHECK / --check= checker list. Empty, "1", "on",
  /// "true", and "all" enable everything; otherwise a comma-separated
  /// subset of memcheck/initcheck/racecheck. Returns false (leaving *out
  /// untouched) on unknown tokens or an empty selection.
  static bool ParseCheckList(std::string_view spec, Options* out);

  explicit Sanitizer(Options options) : options_(options) {}

  Sanitizer(const Sanitizer&) = delete;
  Sanitizer& operator=(const Sanitizer&) = delete;

  const Options& options() const { return options_; }
  const Activity& activity() const { return activity_; }
  const std::vector<Finding>& findings() const { return findings_; }
  uint64_t total_occurrences() const { return total_occurrences_; }
  uint64_t dropped_findings() const { return dropped_findings_; }

  /// Stamps findings with the device clock at first occurrence (attribution
  /// only — the sanitizer never advances it). The pointer must outlive this
  /// object; Device::EnableSanitizer binds its own clock.
  void BindClock(const double* now_cycles) { now_cycles_ = now_cycles; }

  // -- Allocation lifetime (DeviceMemory / UnifiedMemory hooks) -------------

  void OnAlloc(uint64_t handle, std::size_t bytes, bool baseline = false);
  void OnFree(uint64_t handle);
  void OnResize(uint64_t handle, std::size_t new_bytes);
  /// Free of an id DeviceMemory does not know: double-free when the shadow
  /// saw it die, invalid free otherwise.
  void OnBadFree(uint64_t handle);
  void OnRegionRegister(UnifiedMemory::RegionId region, std::size_t bytes,
                        bool baseline = false);
  void OnRegionResize(UnifiedMemory::RegionId region, std::size_t new_bytes);

  /// Attaches a human-readable name ("memory-pool", "device-csr", ...) used
  /// in findings instead of "alloc#N". No-op for unknown handles.
  void LabelObject(uint64_t handle, std::string label);

  /// Marks the whole object as initialized *without* recording an access —
  /// for buffers whose contents are materialized at creation (device CSR
  /// copies, device-resident columns), where modelling the fill as a
  /// default-stream write would fabricate races against worker streams.
  void MarkInitialized(uint64_t handle);

  /// Shadow-only allocations for buffers the cost model charges
  /// conceptually without a DeviceMemory reservation (sort scratch).
  uint64_t RegisterScratch(std::string label, std::size_t bytes);
  void ReleaseScratch(uint64_t handle);

  // -- Execution context (Device hooks) --------------------------------------

  void BeginKernel(StreamId stream, const char* name);
  void EndKernel();
  void PushPhase(const std::string& name) { phase_stack_.push_back(name); }
  void PopPhase() {
    if (!phase_stack_.empty()) phase_stack_.pop_back();
  }

  /// A non-kernel command (explicit copy) was submitted on `stream`:
  /// advances the stream's vector-clock epoch.
  void OnCommand(StreamId stream);
  /// An event was recorded on `stream`; returns the sequence id the Event
  /// carries so a later OnEventWait can join against the snapshot.
  uint64_t OnEventRecord(StreamId stream);
  /// `stream` waited on the event with sequence id `seq` (0 = unrecorded
  /// event, a no-op like the simulator's own Wait).
  void OnEventWait(StreamId stream, uint64_t seq);
  /// Every stream joined (cudaDeviceSynchronize).
  void OnSynchronize();
  /// `stream` fast-forwarded to "now": ordered after everything submitted.
  void OnFastForward(StreamId stream);

  // -- Accesses ---------------------------------------------------------------

  /// A warp task inside the current kernel touched
  /// [offset, offset+bytes) of allocation `handle` (0 = unattributed, skip).
  void OnWarpAccess(std::size_t task, uint64_t handle, std::size_t offset,
                    std::size_t bytes, bool is_write);
  /// A warp task read [offset, offset+bytes) of UM region `region`.
  void OnUnifiedWarpAccess(std::size_t task, UnifiedMemory::RegionId region,
                           std::size_t offset, std::size_t bytes);
  /// A bulk transfer (H2D/D2H copy, pool flush) on `stream` touched the
  /// object. Counts as its own command (bumps the stream's epoch). Writes
  /// mark bytes initialized; reads skip initcheck — copies move whole
  /// buffers including legitimately-unwritten tails.
  void OnBulkAccess(StreamId stream, uint64_t handle, std::size_t offset,
                    std::size_t bytes, bool is_write, const char* what);
  /// Bulk transfer issued from inside the current kernel (mid-kernel pool
  /// drain): shares the kernel's stream and epoch.
  void OnKernelBulkAccess(uint64_t handle, std::size_t offset,
                          std::size_t bytes, bool is_write, const char* what);

  // -- Reporting ---------------------------------------------------------------

  /// Sweeps live non-baseline allocations into kLeak findings. Idempotent;
  /// call after the last owner released its buffers.
  void FinalizeLeakCheck();

  /// Human-readable report (one line per finding).
  std::string ReportText() const;

  /// Versioned gamma.check.v1 JSON document.
  std::string ToJson() const;

  /// Test hook: forgets that the object's bytes were ever written, so reads
  /// of host-initialized UM regions can exercise initcheck.
  void TestOnlyPoison(uint64_t handle);

 private:
  ShadowObject* FindObject(uint64_t handle);
  void EnsureStream(StreamId stream);
  /// True when the access recorded at (stream `t`, epoch `k`) happens
  /// before whatever stream `s` is doing now.
  bool OrderedBefore(StreamId t, uint64_t k, StreamId s) const;
  void CheckAccess(uint64_t handle, std::size_t offset, std::size_t bytes,
                   bool is_write, bool check_init, StreamId stream,
                   const std::string& context, std::size_t task);
  void RecordAccess(ShadowObject* obj, StreamId stream, std::size_t begin,
                    std::size_t end, bool is_write, std::size_t task,
                    const std::string& context);
  void AddFinding(Kind kind, const ShadowObject* obj,
                  const std::string& context, std::size_t task,
                  StreamId stream, std::size_t offset, std::size_t bytes,
                  std::string message, const std::string& extra_key = "");
  std::string ObjectName(const ShadowObject* obj) const;
  std::string CurrentPhase() const {
    return phase_stack_.empty() ? std::string() : phase_stack_.back();
  }

  Options options_;
  Activity activity_;
  const double* now_cycles_ = nullptr;

  std::unordered_map<uint64_t, ShadowObject> objects_;
  uint64_t next_scratch_ = kScratchHandleBase + 1;

  // Square vector-clock matrix: vc_[s][t] = the latest epoch of stream t
  // that stream s has synchronized with; vc_[s][s] is s's own epoch,
  // bumped once per submitted command.
  std::vector<std::vector<uint64_t>> vc_;
  // Event sequence ids -> vector-clock snapshot of the recording stream.
  std::vector<std::pair<StreamId, std::vector<uint64_t>>> event_snapshots_;

  bool in_kernel_ = false;
  StreamId kernel_stream_ = kDefaultStream;
  std::string kernel_name_;
  std::vector<std::string> phase_stack_;

  std::vector<Finding> findings_;
  std::unordered_map<std::string, std::size_t> finding_index_;
  uint64_t total_occurrences_ = 0;
  uint64_t dropped_findings_ = 0;
  bool leak_check_done_ = false;
};

/// RAII shadow-only allocation: registers a scratch object on the device's
/// sanitizer (when one is attached) and releases it on destruction. When no
/// sanitizer is attached, handle() is 0 and everything downstream is a
/// no-op — the pattern keeps call sites free of sanitizer conditionals.
class SanitizerScratch {
 public:
  SanitizerScratch(Device* device, std::string label, std::size_t bytes);
  ~SanitizerScratch();

  SanitizerScratch(const SanitizerScratch&) = delete;
  SanitizerScratch& operator=(const SanitizerScratch&) = delete;

  uint64_t handle() const { return handle_; }

 private:
  Sanitizer* sanitizer_ = nullptr;
  uint64_t handle_ = 0;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_SANITIZER_H_
