#include "gpusim/shadow.h"

#include <algorithm>

namespace gpm::gpusim {

void ByteIntervalSet::Add(std::size_t start, std::size_t end) {
  if (start >= end) return;
  auto it = spans_.upper_bound(start);
  if (it != spans_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      // Overlaps or touches the span ending at/after our start: absorb it.
      start = prev->first;
      end = std::max(end, prev->second);
      it = spans_.erase(prev);
    }
  }
  while (it != spans_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = spans_.erase(it);
  }
  spans_[start] = end;
}

std::size_t ByteIntervalSet::FirstGap(std::size_t start,
                                      std::size_t end) const {
  if (start >= end) return end;
  auto it = spans_.upper_bound(start);
  if (it == spans_.begin()) return start;
  auto prev = std::prev(it);
  if (prev->second <= start) return start;
  // `prev` covers `start`; spans are disjoint and non-adjacent, so the byte
  // right after it is uncovered unless it already reaches `end`.
  return std::min(prev->second, end);
}

}  // namespace gpm::gpusim
