#ifndef GAMMA_GPUSIM_SHADOW_H_
#define GAMMA_GPUSIM_SHADOW_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gpm::gpusim {

/// Coalescing set of half-open byte intervals [start, end).
///
/// The sanitizer's initcheck shadows which bytes of an allocation have ever
/// been written. Simulated allocations reach multiple gigabytes, so the
/// shadow is interval-based rather than a bitmap: writes are overwhelmingly
/// sequential block/column fills, which coalesce into a handful of spans.
class ByteIntervalSet {
 public:
  /// Marks [start, end) as covered, merging with adjacent/overlapping
  /// spans. Empty ranges are ignored.
  void Add(std::size_t start, std::size_t end);

  /// True when every byte of [start, end) is covered (empty ranges are).
  bool Covers(std::size_t start, std::size_t end) const {
    return FirstGap(start, end) == end;
  }

  /// First uncovered byte in [start, end), or `end` when fully covered.
  std::size_t FirstGap(std::size_t start, std::size_t end) const;

  void Clear() { spans_.clear(); }
  bool empty() const { return spans_.empty(); }
  std::size_t interval_count() const { return spans_.size(); }

 private:
  // start -> end, disjoint and non-adjacent (Add merges touching spans).
  std::map<std::size_t, std::size_t> spans_;
};

/// One remembered access to a shadowed object, for the racecheck's
/// happens-before comparison against later accesses from other streams.
struct ShadowAccess {
  int stream = 0;
  /// The issuing stream's vector-clock epoch at the time of the access.
  uint64_t clock = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  bool is_write = false;
  std::size_t task = 0;
  /// Kernel name, or a copy tag like "pool-flush" for bulk transfers.
  std::string context;
};

/// Shadow state of one simulated allocation, UM region, or scratch handle.
struct ShadowObject {
  uint64_t handle = 0;
  std::string label;
  std::size_t bytes = 0;
  bool live = true;
  /// Existed before the sanitizer attached: treated as initialized and
  /// exempt from the leak sweep (mirrors compute-sanitizer attach-time
  /// semantics).
  bool baseline = false;
  bool is_region = false;
  ByteIntervalSet init;
  std::vector<ShadowAccess> history;
  /// Accesses evicted from `history` once it hit its cap; races against
  /// evicted records can no longer be detected (best effort, like real
  /// racecheck's bounded shadow memory).
  std::size_t history_dropped = 0;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_SHADOW_H_
