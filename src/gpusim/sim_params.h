#ifndef GAMMA_GPUSIM_SIM_PARAMS_H_
#define GAMMA_GPUSIM_SIM_PARAMS_H_

#include <cstddef>
#include <cstdint>

namespace gpm::gpusim {

/// Cost-model parameters of the simulated CPU-GPU heterogeneous platform.
///
/// All latencies are expressed in simulated device cycles; the clock runs at
/// `clock_ghz`, so with the default 1 GHz one cycle equals one nanosecond.
/// Defaults are first-order approximations of a Tesla-V100-class device on
/// PCIe 3.0 x16, scaled so that the *relative* costs the paper exploits hold:
///  - a unified-memory page fault (fault handling + 4 KB migration) is two to
///    three orders of magnitude more expensive than a device-memory access;
///  - a zero-copy access pays per 128 B transaction but no fault and no
///    migration of unrequested bytes;
///  - device memory bandwidth is ~30x PCIe bandwidth.
struct SimParams {
  /// Clock rate used to convert cycles to seconds.
  double clock_ghz = 1.0;

  /// Threads per warp (SIMT width).
  int warp_size = 32;

  /// Number of warps resident on the device at once. Kernel latency is the
  /// makespan of warp tasks scheduled greedily onto this many slots.
  int num_warp_slots = 64;

  /// Fixed cost of launching a kernel (driver + dispatch).
  double kernel_launch_cycles = 2000.0;

  /// Host threads executing warp tasks. 1 = serial. With N > 1 the Device
  /// runs each kernel's task functions on a thread pool and then replays
  /// their recorded side effects in ascending task order on the launching
  /// thread, so every simulated quantity (cycles, DeviceStats, UM page
  /// state, traces, sanitizer findings) is bit-identical to the serial
  /// schedule. Purely a wall-clock knob; never changes simulation results.
  int host_threads = 1;

  // -- Device memory ------------------------------------------------------
  /// Total device ("global") memory. In-core systems must fit everything
  /// here; GAMMA only places write buffers and the UM page buffer here.
  std::size_t device_memory_bytes = 64ull << 20;  // 64 MiB

  /// Effective cost of one coalesced warp access to device memory. On a
  /// real device the ~400-cycle raw latency is hidden by warp-level
  /// parallelism and outstanding loads; the makespan model charges the
  /// *effective occupancy* of the access instead.
  double device_mem_latency_cycles = 40.0;

  /// Device memory streaming throughput in bytes per cycle (~512 GB/s).
  double device_bytes_per_cycle = 512.0;

  /// Per-thread-block synchronization cost (warp sync is free under SIMT).
  double block_sync_cycles = 100.0;

  /// Cost of one global atomic operation (memory-pool block grabbing).
  double atomic_cycles = 30.0;

  // -- PCIe link -----------------------------------------------------------
  /// Host-device link throughput in bytes per cycle (~16 GB/s).
  double pcie_bytes_per_cycle = 16.0;

  /// Effective per-request overhead on the link (first transaction of a
  /// zero-copy access; raw latency is partially hidden by outstanding
  /// requests).
  double pcie_latency_cycles = 250.0;

  // -- Unified memory ------------------------------------------------------
  /// Migration granularity on a page fault.
  std::size_t um_page_bytes = 4096;

  /// Page-fault handling cost (fault + driver + TLB shootdown), excluding
  /// the migration itself which is charged by size over the link.
  double page_fault_cycles = 20000.0;

  /// Device-side buffer for migrated pages (carved out of device memory by
  /// the Device at construction).
  std::size_t um_device_buffer_bytes = 8ull << 20;  // 8 MiB

  // -- Zero-copy memory ----------------------------------------------------
  /// Transaction granularity for zero-copy accesses.
  std::size_t zc_transaction_bytes = 128;

  /// Additional warp stall per zero-copy transaction beyond the first
  /// (transactions pipeline on the link).
  double zc_pipelined_cycles = 8.0;

  // -- Observability -------------------------------------------------------
  /// Arms the gamma-prof command log at construction (see
  /// gpusim/critpath.h). Pure observation: recording never changes
  /// simulated results.
  bool record_commands = false;

  /// Arms the timeline recorder and per-kernel records at construction
  /// (equivalent to set_trace_enabled(true) + trace().set_enabled(true)),
  /// so harnesses that build the Device behind a helper can export traces.
  bool record_timeline = false;

  double CyclesToSeconds(double cycles) const {
    return cycles * 1e-9 / clock_ghz;
  }
  double CyclesToMillis(double cycles) const {
    return CyclesToSeconds(cycles) * 1e3;
  }

  /// A Tesla-V100-class configuration (the paper's card): 16 GB device
  /// memory, a 1 GB managed-page buffer, 1024 resident warp slots. Use for
  /// full-scale runs; the benches use scaled-down proxies instead so that
  /// the data-to-device ratio matches the paper's at laptop scale.
  static SimParams V100() {
    SimParams p;
    p.device_memory_bytes = 16ull << 30;
    p.um_device_buffer_bytes = 1ull << 30;
    p.num_warp_slots = 1024;
    return p;
  }

  /// The bench-scale configuration: 4 MiB device, 256 KiB page buffer —
  /// the same ratios against the Table II proxies as V100-vs-paper-data.
  static SimParams BenchScale() {
    SimParams p;
    p.device_memory_bytes = 4ull << 20;
    p.um_device_buffer_bytes = 256ull << 10;
    return p;
  }
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_SIM_PARAMS_H_
