#include "gpusim/stats.h"

#include <sstream>

#include "common/json.h"

namespace gpm::gpusim {

std::span<const DeviceStats::Field> DeviceStats::Fields() {
  static constexpr Field kFields[] = {
      {"kernel_launches", &DeviceStats::kernel_launches},
      {"warp_tasks", &DeviceStats::warp_tasks},
      {"um_page_faults", &DeviceStats::um_page_faults},
      {"um_page_hits", &DeviceStats::um_page_hits},
      {"um_migrated_bytes", &DeviceStats::um_migrated_bytes},
      {"um_evictions", &DeviceStats::um_evictions},
      {"zc_transactions", &DeviceStats::zc_transactions},
      {"zc_bytes", &DeviceStats::zc_bytes},
      {"device_reads", &DeviceStats::device_reads},
      {"device_read_bytes", &DeviceStats::device_read_bytes},
      {"device_writes", &DeviceStats::device_writes},
      {"device_write_bytes", &DeviceStats::device_write_bytes},
      {"explicit_h2d_bytes", &DeviceStats::explicit_h2d_bytes},
      {"explicit_d2h_bytes", &DeviceStats::explicit_d2h_bytes},
      {"pool_block_requests", &DeviceStats::pool_block_requests},
      {"pool_blocks_wasted", &DeviceStats::pool_blocks_wasted},
  };
  return kFields;
}

DeviceStats DeviceStats::Diff(const DeviceStats& since) const {
  DeviceStats d;
  for (const Field& f : Fields()) {
    uint64_t now = this->*f.member;
    uint64_t was = since.*f.member;
    d.*f.member = now >= was ? now - was : 0;
  }
  return d;
}

std::string StatsJson(const DeviceStats& stats) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    w.Key(f.name).Value(stats.*f.member);
  }
  w.EndObject();
  return os.str();
}

std::string DeviceStats::ToString() const {
  std::ostringstream os;
  os << "kernels=" << kernel_launches << " warp_tasks=" << warp_tasks
     << " um_faults=" << um_page_faults << " um_hits=" << um_page_hits
     << " um_migrated=" << um_migrated_bytes << "B"
     << " um_evictions=" << um_evictions << " zc_tx=" << zc_transactions
     << " zc_bytes=" << zc_bytes << "B"
     << " dev_read=" << device_read_bytes << "B"
     << " dev_write=" << device_write_bytes << "B"
     << " h2d=" << explicit_h2d_bytes << "B d2h=" << explicit_d2h_bytes
     << "B pool_reqs=" << pool_block_requests
     << " pool_wasted=" << pool_blocks_wasted;
  return os.str();
}

}  // namespace gpm::gpusim
