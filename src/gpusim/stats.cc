#include "gpusim/stats.h"

#include <sstream>

namespace gpm::gpusim {

std::string DeviceStats::ToString() const {
  std::ostringstream os;
  os << "kernels=" << kernel_launches << " warp_tasks=" << warp_tasks
     << " um_faults=" << um_page_faults << " um_hits=" << um_page_hits
     << " um_migrated=" << um_migrated_bytes << "B"
     << " um_evictions=" << um_evictions << " zc_tx=" << zc_transactions
     << " zc_bytes=" << zc_bytes << "B"
     << " dev_read=" << device_read_bytes << "B"
     << " dev_write=" << device_write_bytes << "B"
     << " h2d=" << explicit_h2d_bytes << "B d2h=" << explicit_d2h_bytes
     << "B pool_reqs=" << pool_block_requests
     << " pool_wasted=" << pool_blocks_wasted;
  return os.str();
}

}  // namespace gpm::gpusim
