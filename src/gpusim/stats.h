#ifndef GAMMA_GPUSIM_STATS_H_
#define GAMMA_GPUSIM_STATS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace gpm::gpusim {

/// Hardware event counters accumulated over the lifetime of a Device.
/// Benches read these to report memory traffic and fault behaviour;
/// Snapshot()/Diff() attribute them to phases or code regions.
struct DeviceStats {
  uint64_t kernel_launches = 0;
  uint64_t warp_tasks = 0;

  // Unified memory.
  uint64_t um_page_faults = 0;
  uint64_t um_page_hits = 0;
  uint64_t um_migrated_bytes = 0;
  uint64_t um_evictions = 0;

  // Zero-copy memory.
  uint64_t zc_transactions = 0;
  uint64_t zc_bytes = 0;

  // Device memory traffic.
  uint64_t device_reads = 0;
  uint64_t device_read_bytes = 0;
  uint64_t device_writes = 0;
  uint64_t device_write_bytes = 0;

  // Explicit host<->device copies (cudaMemcpy-style, used by baselines).
  uint64_t explicit_h2d_bytes = 0;
  uint64_t explicit_d2h_bytes = 0;

  // Memory-pool behaviour (Optimization 1).
  uint64_t pool_block_requests = 0;
  uint64_t pool_blocks_wasted = 0;

  /// One named counter; Fields() enumerates every counter exactly once, so
  /// Diff(), StatsJson(), and the tests cannot drift from the struct.
  struct Field {
    const char* name;
    uint64_t DeviceStats::*member;
  };
  static std::span<const Field> Fields();

  /// Copy of the counters at this instant (the live object keeps
  /// accumulating).
  DeviceStats Snapshot() const { return *this; }

  /// Per-field difference `*this - since`, saturating at zero. Taking a
  /// Snapshot() before a region and Diff()ing after it yields the traffic
  /// attributable to that region.
  DeviceStats Diff(const DeviceStats& since) const;

  void Reset() { *this = DeviceStats(); }
  std::string ToString() const;
};

/// Renders every DeviceStats counter as one JSON object.
std::string StatsJson(const DeviceStats& stats);

/// Tracks simulated host-memory footprint (embedding tables, graph copies).
/// Fig. 10 reports peak host+device memory; device peak comes from the
/// DeviceMemory allocator, host peak from this tracker.
class HostMemoryTracker {
 public:
  void Add(std::size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }
  void Sub(std::size_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  std::size_t current_bytes() const { return current_; }
  std::size_t peak_bytes() const { return peak_; }
  void ResetPeak() { peak_ = current_; }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_STATS_H_
