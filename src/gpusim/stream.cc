#include "gpusim/stream.h"

#include <algorithm>

#include "common/logging.h"

namespace gpm::gpusim {

StreamId StreamSet::CreateStream() {
  cycles_.push_back(now_cycles());
  return static_cast<StreamId>(cycles_.size() - 1);
}

double StreamSet::cycles(StreamId stream) const {
  GAMMA_CHECK(valid(stream)) << "unknown stream " << stream;
  return cycles_[static_cast<std::size_t>(stream)];
}

void StreamSet::set_cycles(StreamId stream, double cycles) {
  GAMMA_CHECK(valid(stream)) << "unknown stream " << stream;
  cycles_[static_cast<std::size_t>(stream)] = cycles;
}

double StreamSet::now_cycles() const {
  return *std::max_element(cycles_.begin(), cycles_.end());
}

double StreamSet::AcquireLink(double ready_cycles, double link_cycles) {
  double start = std::max(ready_cycles, link_free_cycles_);
  link_free_cycles_ = start + link_cycles;
  link_busy_cycles_ += link_cycles;
  return link_free_cycles_;
}

void StreamSet::Wait(StreamId stream, const Event& event) {
  if (!event.valid()) return;
  std::size_t i = static_cast<std::size_t>(stream);
  GAMMA_CHECK(valid(stream)) << "unknown stream " << stream;
  cycles_[i] = std::max(cycles_[i], event.cycles());
}

double StreamSet::Synchronize() {
  double join = now_cycles();
  std::fill(cycles_.begin(), cycles_.end(), join);
  return join;
}

void StreamSet::FastForward(StreamId stream) {
  std::size_t i = static_cast<std::size_t>(stream);
  GAMMA_CHECK(valid(stream)) << "unknown stream " << stream;
  cycles_[i] = std::max(cycles_[i], now_cycles());
}

void StreamSet::Reset() {
  std::fill(cycles_.begin(), cycles_.end(), 0.0);
  link_free_cycles_ = 0;
  link_busy_cycles_ = 0;
}

}  // namespace gpm::gpusim
