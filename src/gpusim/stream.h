#ifndef GAMMA_GPUSIM_STREAM_H_
#define GAMMA_GPUSIM_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpm::gpusim {

/// Identifies one stream of a StreamSet. Stream 0 (the default stream)
/// always exists; synchronous Device APIs are thin wrappers over it.
using StreamId = int;
constexpr StreamId kDefaultStream = 0;

/// A joinable timestamp on a stream's timeline (CUDA-event style).
///
/// `Record` captures the recording stream's current clock; `Wait` makes
/// another stream's clock at least that value. A default-constructed event
/// was never recorded and waiting on it is a no-op (CUDA semantics: an
/// unrecorded event is considered complete).
class Event {
 public:
  Event() = default;

  bool valid() const { return valid_; }
  double cycles() const { return cycles_; }

 private:
  friend class StreamSet;
  friend class Device;
  explicit Event(double cycles) : cycles_(cycles), valid_(true) {}

  double cycles_ = 0;
  bool valid_ = false;
  // Sanitizer bookkeeping: sequence id of the vector-clock snapshot taken
  // when the event was recorded (0 = recorded without a sanitizer attached).
  // Stamped by Device::RecordEvent; carries no timing information.
  uint64_t san_seq_ = 0;
  // gamma-prof bookkeeping: index of the command-log entry whose completion
  // this event marks (-1 = recorded with logging off or on an empty
  // stream). Stamped by Device::RecordEvent; carries no timing information.
  int32_t cp_cmd_ = -1;
};

/// Per-stream clocks plus the shared PCIe link of the simulated device.
///
/// Each stream is an ordered command timeline: work submitted to stream s
/// starts no earlier than the stream's clock and advances only that clock.
/// `now_cycles()` — the device-wide notion of "now" — is the *join* (max)
/// of all stream clocks: simulated wall-clock time is over only when every
/// stream has drained.
///
/// The PCIe link is a single shared resource. Every transfer (explicit
/// copy or a kernel's folded zero-copy/UM traffic) reserves an exclusive
/// busy window on the link via `AcquireLink`; concurrent streams therefore
/// *contend* for link bandwidth — their transfers serialize — instead of
/// each stream double-counting the full link for itself. Windows are
/// granted in submission order (the simulation is constructed in program
/// order), which is deterministic: the same command sequence and stream
/// assignment always yields identical cycle totals.
///
/// With only the default stream in use, the link is always free by the
/// time a command needs it (every previous window ended at or before the
/// stream clock), so the async formulas reduce exactly to the original
/// synchronous single-clock model — sync wrappers stay bit-identical.
class StreamSet {
 public:
  StreamSet() : cycles_(1, 0.0) {}

  StreamSet(const StreamSet&) = delete;
  StreamSet& operator=(const StreamSet&) = delete;

  int num_streams() const { return static_cast<int>(cycles_.size()); }

  /// Creates a stream whose clock starts at the current join point: new
  /// streams begin "now", never in the simulated past.
  StreamId CreateStream();

  bool valid(StreamId stream) const {
    return stream >= 0 && stream < num_streams();
  }

  /// The stream's clock: when its last submitted command finishes.
  double cycles(StreamId stream) const;
  void set_cycles(StreamId stream, double cycles);

  /// Device-wide "now": the join (max) of all stream clocks.
  double now_cycles() const;

  /// Reserves an exclusive link window of `link_cycles`, starting no
  /// earlier than `ready_cycles` and no earlier than the previous window's
  /// end. Returns when the window ends.
  double AcquireLink(double ready_cycles, double link_cycles);

  /// Total cycles the link has spent busy (occupancy gauge).
  double link_busy_cycles() const { return link_busy_cycles_; }

  /// When the link next becomes free: the end of the last granted window.
  /// gamma-prof reads this *before* AcquireLink to reconstruct the exact
  /// window-start arithmetic.
  double link_free_cycles() const { return link_free_cycles_; }

  /// Captures the stream's current clock as a joinable event.
  Event Record(StreamId stream) const { return Event(cycles(stream)); }

  /// Stalls `stream` until `event`: its clock becomes at least the event's
  /// timestamp. No-op for never-recorded events.
  void Wait(StreamId stream, const Event& event);

  /// Joins every stream to the common completion point (all clocks become
  /// `now_cycles()`); returns it. cudaDeviceSynchronize analogue.
  double Synchronize();

  /// Advances `stream` to the current join point if it lags behind; used
  /// when an idle stream picks up work that logically follows everything
  /// already submitted.
  void FastForward(StreamId stream);

  /// Rewinds the whole timeline: every stream clock and the link state go
  /// back to zero. Streams themselves survive (ids stay valid).
  void Reset();

 private:
  std::vector<double> cycles_;
  double link_free_cycles_ = 0;
  double link_busy_cycles_ = 0;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_STREAM_H_
