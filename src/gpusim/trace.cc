#include "gpusim/trace.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/json.h"

namespace gpm::gpusim {

namespace {

// Track layout of the exported trace. Device-level tracks share one
// "process"; warp slots get their own so Perfetto collapses them together.
// Kernel/copy spans from the default stream keep the classic "kernels"
// thread; each additional stream renders as its own thread starting at
// kStreamTidBase + stream, so overlapped streams appear as parallel lanes.
constexpr int kDevicePid = 1;
constexpr int kKernelTid = 1;
constexpr int kPhaseTid = 2;
constexpr int kUmTid = 3;
constexpr int kStreamTidBase = 3;  // stream s >= 1 -> tid kStreamTidBase + s
constexpr int kWarpSlotPid = 2;
// Adaptivity decisions get their own process: stream tids are unbounded
// within kDevicePid, so a fixed device-side tid could collide with one.
constexpr int kAdaptivityPid = 3;
constexpr int kAdaptivityTid = 1;

int StreamTid(int stream) {
  return stream == 0 ? kKernelTid : kStreamTidBase + stream;
}

bool IsSpan(TraceRecorder::Kind kind) {
  return kind == TraceRecorder::Kind::kKernel ||
         kind == TraceRecorder::Kind::kCopy ||
         kind == TraceRecorder::Kind::kPhase ||
         kind == TraceRecorder::Kind::kWarpSlot;
}

const char* Category(TraceRecorder::Kind kind) {
  switch (kind) {
    case TraceRecorder::Kind::kKernel:
      return "kernel";
    case TraceRecorder::Kind::kCopy:
      return "copy";
    case TraceRecorder::Kind::kPhase:
      return "phase";
    case TraceRecorder::Kind::kWarpSlot:
      return "warp-slot";
    case TraceRecorder::Kind::kAdaptivity:
      return "adaptivity";
    default:
      return "um";
  }
}

// One emitted Chrome event ("B", "E", or "i") awaiting per-track ordering.
struct EmitEvent {
  double ts;
  // Order among equal timestamps: a closing "E" precedes the "B" that
  // starts the next span (adjacent kernels share a boundary), except that
  // a zero-length span keeps its own "B" first so pairs stay balanced.
  int rank;
  // Tie-break among same-ts "B"s (enclosing span first) and "E"s
  // (innermost span first).
  double tie;
  char ph;
  const TraceRecorder::Event* event;
};

bool EmitOrder(const EmitEvent& a, const EmitEvent& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.tie < b.tie;
}

}  // namespace

const char* TraceKindName(TraceRecorder::Kind kind) {
  switch (kind) {
    case TraceRecorder::Kind::kKernel:
      return "kernel";
    case TraceRecorder::Kind::kCopy:
      return "copy";
    case TraceRecorder::Kind::kPhase:
      return "phase";
    case TraceRecorder::Kind::kWarpSlot:
      return "warp-slot";
    case TraceRecorder::Kind::kUmFault:
      return "um-fault";
    case TraceRecorder::Kind::kUmHit:
      return "um-hit";
    case TraceRecorder::Kind::kUmEviction:
      return "um-evict";
    case TraceRecorder::Kind::kUmPrefetch:
      return "um-prefetch";
    case TraceRecorder::Kind::kAdaptivity:
      return "adaptivity-plan";
  }
  return "?";
}

bool TraceRecorder::Admit() {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  return true;
}

void TraceRecorder::RecordSpan(Kind kind, std::string_view name,
                               double begin_cycles, double end_cycles,
                               int track) {
  if (!enabled_ || !Admit()) return;
  events_.push_back(Event{kind, std::string(name), begin_cycles,
                          end_cycles, track, 0, 0});
}

void TraceRecorder::RecordUmEvent(Kind kind, double ts_cycles,
                                  uint32_t region, uint64_t page) {
  if (!enabled_ || !Admit()) return;
  events_.push_back(Event{kind, std::string(), ts_cycles, ts_cycles, 0,
                          region, page});
}

std::string TraceRecorder::ToChromeTraceJson(const SimParams& params) const {
  auto to_us = [&params](double cycles) {
    return params.CyclesToSeconds(cycles) * 1e6;
  };

  // Bucket events per (pid, tid) track, splitting spans into B/E pairs.
  std::map<std::pair<int, int>, std::vector<EmitEvent>> tracks;
  std::set<int> slot_tids;
  std::set<int> stream_tids;  // non-default streams needing a thread name
  bool has_adaptivity = false;
  for (const Event& ev : events_) {
    std::pair<int, int> track;
    switch (ev.kind) {
      case Kind::kKernel:
      case Kind::kCopy:
        track = {kDevicePid, StreamTid(ev.track)};
        if (ev.track != 0) stream_tids.insert(ev.track);
        break;
      case Kind::kPhase:
        track = {kDevicePid, kPhaseTid};
        break;
      case Kind::kWarpSlot:
        track = {kWarpSlotPid, ev.track};
        slot_tids.insert(ev.track);
        break;
      case Kind::kAdaptivity:
        track = {kAdaptivityPid, kAdaptivityTid};
        has_adaptivity = true;
        break;
      default:
        track = {kDevicePid, kUmTid};
        break;
    }
    std::vector<EmitEvent>& out = tracks[track];
    if (IsSpan(ev.kind)) {
      const bool zero_length = ev.end_cycles <= ev.begin_cycles;
      out.push_back({ev.begin_cycles, 2, -ev.end_cycles, 'B', &ev});
      out.push_back(
          {ev.end_cycles, zero_length ? 3 : 0, -ev.begin_cycles, 'E', &ev});
    } else {
      out.push_back({ev.begin_cycles, 1, 0.0, 'i', &ev});
    }
  }

  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("otherData").BeginObject();
  w.Key("schema").Value("gamma.trace.v1");
  w.Key("clock_ghz").Value(params.clock_ghz);
  w.Key("capacity").Value(capacity_);
  w.Key("dropped_events").Value(dropped_);
  w.EndObject();

  w.Key("traceEvents").BeginArray();

  auto meta = [&w](const char* what, int pid, int tid,
                   const std::string& name) {
    w.BeginObject();
    w.Key("ph").Value("M");
    w.Key("name").Value(what);
    w.Key("pid").Value(pid);
    w.Key("tid").Value(tid);
    w.Key("args").BeginObject().Key("name").Value(name).EndObject();
    w.EndObject();
  };
  meta("process_name", kDevicePid, 0, "gamma-sim");
  meta("thread_name", kDevicePid, kKernelTid, "kernels");
  meta("thread_name", kDevicePid, kPhaseTid, "phases");
  meta("thread_name", kDevicePid, kUmTid, "um-pages");
  for (int stream : stream_tids) {
    meta("thread_name", kDevicePid, StreamTid(stream),
         "stream " + std::to_string(stream));
  }
  if (!slot_tids.empty()) {
    meta("process_name", kWarpSlotPid, 0, "warp-slots");
    for (int slot : slot_tids) {
      meta("thread_name", kWarpSlotPid, slot,
           "slot " + std::to_string(slot));
    }
  }
  if (has_adaptivity) {
    meta("process_name", kAdaptivityPid, 0, "adaptivity");
    meta("thread_name", kAdaptivityPid, kAdaptivityTid, "decisions");
  }

  for (auto& [track, emits] : tracks) {
    std::stable_sort(emits.begin(), emits.end(), EmitOrder);
    for (const EmitEvent& e : emits) {
      const Event& ev = *e.event;
      w.BeginObject();
      w.Key("ph").Value(std::string_view(&e.ph, 1));
      w.Key("ts").Value(to_us(e.ts));
      w.Key("pid").Value(track.first);
      w.Key("tid").Value(track.second);
      if (e.ph != 'E') {
        w.Key("name").Value(e.ph == 'i' ? TraceKindName(ev.kind)
                                        : std::string_view(ev.name));
        w.Key("cat").Value(Category(ev.kind));
      }
      if (e.ph == 'i') {
        w.Key("s").Value("t");
        w.Key("args").BeginObject();
        if (ev.kind == Kind::kAdaptivity) {
          // The region/page slots carry the decision payload instead.
          w.Key("extension").Value(ev.region);
          w.Key("unified_pages").Value(ev.page);
        } else {
          w.Key("region").Value(ev.region);
          w.Key("page").Value(ev.page);
        }
        w.EndObject();
      }
      w.EndObject();
    }
  }

  w.EndArray();
  w.EndObject();
  os << '\n';
  return os.str();
}

}  // namespace gpm::gpusim
