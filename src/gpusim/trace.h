#ifndef GAMMA_GPUSIM_TRACE_H_
#define GAMMA_GPUSIM_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/sim_params.h"

namespace gpm::gpusim {

/// Bounded timeline recorder for the simulated device.
///
/// Where `DeviceStats` answers *how much* (aggregate counters) and
/// `RunProfile` answers *which phase* (per-phase deltas), the TraceRecorder
/// answers *when*: it records begin/end events in simulated cycles for
/// kernels, RunProfile phases, per-warp-slot occupancy, and unified-memory
/// page-buffer events (fault / hit / eviction / prefetch with page ids).
/// `ToChromeTraceJson()` renders the buffer as Chrome trace-event JSON,
/// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing, with
/// kernels, phases, UM page events, and each warp slot as separate tracks.
///
/// The buffer is bounded: once `capacity()` events are stored, further
/// events are dropped and counted in `dropped_events()` (the earliest
/// events win, so a truncated trace still starts at t=0 and every stored
/// span is complete). Recording is off by default; enabling it costs one
/// branch per event source when idle.
class TraceRecorder {
 public:
  /// Default event bound: enough for every kernel/phase/slot span plus the
  /// UM page events of a mid-sized run, ~10 MB worst case.
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  enum class Kind : uint8_t {
    kKernel,      // one kernel launch (span)
    kCopy,        // one explicit PCIe transfer (span)
    kPhase,       // one PhaseScope (span)
    kWarpSlot,    // one slot's busy interval inside a kernel (span)
    kUmFault,     // page fault + migration (instant, region/page)
    kUmHit,       // access to a resident page (instant, region/page)
    kUmEviction,  // LRU eviction from the page buffer (instant)
    kUmPrefetch,  // bulk migration without fault penalty (instant)
    kAdaptivity,  // one hybrid placement decision (instant; see below)
  };

  /// One recorded event. Spans use [begin_cycles, end_cycles]; instants
  /// have begin == end. `track` is the warp-slot index for kWarpSlot and
  /// the stream id for kKernel/kCopy (each stream renders as its own
  /// thread in the Chrome export); `region`/`page` identify the page for
  /// UM events.
  struct Event {
    Kind kind;
    std::string name;
    double begin_cycles = 0;
    double end_cycles = 0;
    int track = 0;
    uint32_t region = 0;
    uint64_t page = 0;
  };

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }

  const std::vector<Event>& events() const { return events_; }
  uint64_t dropped_events() const { return dropped_; }

  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Records a completed span. No-op (uncounted) while disabled; counted
  /// as dropped when the buffer is full.
  void RecordSpan(Kind kind, std::string_view name, double begin_cycles,
                  double end_cycles, int track = 0);

  /// Records an instantaneous unified-memory page event at `ts_cycles`.
  void RecordUmEvent(Kind kind, double ts_cycles, uint32_t region,
                     uint64_t page);

  /// Records one per-extension placement decision of the adaptive hybrid
  /// at `ts_cycles` on the dedicated "adaptivity" track: `extension` is
  /// the 1-based extension index, `unified_pages` the N_u pages the plan
  /// flagged for unified access. Reuses the Event region/page slots.
  void RecordAdaptivity(double ts_cycles, uint32_t extension,
                        uint64_t unified_pages) {
    RecordUmEvent(Kind::kAdaptivity, ts_cycles, extension, unified_pages);
  }

  /// Renders the buffer as a Chrome trace-event JSON document
  /// (`gamma.trace.v1`). Timestamps convert from cycles to microseconds
  /// via `params`; `dropped_events` and the capacity are reported in
  /// `otherData`. Kernel, copy, and phase spans are emitted as balanced
  /// "B"/"E" pairs per track, UM page events as instants with region/page
  /// args. Kernel/copy spans from the default stream land on the classic
  /// "kernels" track; each further stream gets its own "stream N" track,
  /// so overlapped work renders as parallel lanes in Perfetto.
  std::string ToChromeTraceJson(const SimParams& params) const;

 private:
  bool Admit();

  bool enabled_ = false;
  std::size_t capacity_;
  uint64_t dropped_ = 0;
  std::vector<Event> events_;
};

/// Human-readable name of an event kind ("kernel", "um-fault", ...).
const char* TraceKindName(TraceRecorder::Kind kind);

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_TRACE_H_
