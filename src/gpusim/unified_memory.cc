#include "gpusim/unified_memory.h"

#include <algorithm>

#include "common/logging.h"
#include "gpusim/access_observer.h"
#include "gpusim/sanitizer.h"
#include "gpusim/trace.h"

namespace gpm::gpusim {

namespace {

constexpr uint64_t kPageMask = (uint64_t{1} << 48) - 1;

// Emits one page-level timeline event when a recorder is bound and
// enabled. The timestamp has kernel-boundary resolution: all events of
// one kernel share its start time.
void TracePage(TraceRecorder* trace, const double* now_cycles,
               TraceRecorder::Kind kind, uint32_t region, uint64_t page) {
  if (trace == nullptr || !trace->enabled()) return;
  trace->RecordUmEvent(kind, now_cycles != nullptr ? *now_cycles : 0.0,
                       region, page);
}

}  // namespace

UnifiedMemory::RegionId UnifiedMemory::Register(std::size_t bytes) {
  RegionId id = next_region_++;
  region_bytes_.emplace(id, bytes);
  if (sanitizer_ != nullptr) sanitizer_->OnRegionRegister(id, bytes);
  return id;
}

void UnifiedMemory::ResizeRegion(RegionId region, std::size_t new_bytes) {
  auto it = region_bytes_.find(region);
  GAMMA_CHECK(it != region_bytes_.end()) << "resize of unknown UM region";
  std::size_t old_bytes = it->second;
  it->second = new_bytes;
  if (sanitizer_ != nullptr) sanitizer_->OnRegionResize(region, new_bytes);
  if (observer_ != nullptr) {
    observer_->OnRegionResized(region, old_bytes, new_bytes);
  }
  if (new_bytes < old_bytes) {
    uint64_t first_stale = (new_bytes + params_.um_page_bytes - 1) /
                           params_.um_page_bytes;
    uint64_t last = old_bytes / params_.um_page_bytes;
    for (uint64_t p = first_stale; p <= last; ++p) {
      auto rit = resident_.find(PageKey(region, p));
      if (rit != resident_.end()) {
        lru_.erase(rit->second);
        resident_.erase(rit);
      }
    }
  }
}

std::size_t UnifiedMemory::PrefetchPage(RegionId region,
                                        std::size_t offset) {
  uint64_t page = offset / params_.um_page_bytes;
  uint64_t key = PageKey(region, page);
  if (resident_.count(key) > 0) {
    Touch(key);
    return 0;
  }
  InsertPage(key);
  stats_->um_migrated_bytes += params_.um_page_bytes;
  TracePage(trace_, now_cycles_, TraceRecorder::Kind::kUmPrefetch, region,
            page);
  return params_.um_page_bytes;
}

void UnifiedMemory::InvalidateRegion(RegionId region) {
  if (observer_ != nullptr) observer_->OnRegionInvalidated(region);
  for (auto it = resident_.begin(); it != resident_.end();) {
    if ((it->first >> 48) == region) {
      lru_.erase(it->second);
      it = resident_.erase(it);
    } else {
      ++it;
    }
  }
}

bool UnifiedMemory::IsResident(RegionId region, std::size_t offset) const {
  return resident_.count(PageKey(region, offset / params_.um_page_bytes)) >
         0;
}

void UnifiedMemory::Touch(uint64_t key) {
  auto it = resident_.find(key);
  lru_.splice(lru_.begin(), lru_, it->second);
}

void UnifiedMemory::InsertPage(uint64_t key) {
  if (capacity_pages_ == 0) return;  // No buffer: behaves like re-faulting.
  while (lru_.size() >= capacity_pages_) {
    uint64_t victim = lru_.back();
    resident_.erase(victim);
    lru_.pop_back();
    ++stats_->um_evictions;
    TracePage(trace_, now_cycles_, TraceRecorder::Kind::kUmEviction,
              static_cast<RegionId>(victim >> 48), victim & kPageMask);
  }
  lru_.push_front(key);
  resident_.emplace(key, lru_.begin());
}

AccessCharge UnifiedMemory::Access(RegionId region, std::size_t offset,
                                   std::size_t bytes) {
  AccessCharge charge;
  if (bytes == 0) return charge;
  const std::size_t page_bytes = params_.um_page_bytes;
  uint64_t first_page = offset / page_bytes;
  uint64_t last_page = (offset + bytes - 1) / page_bytes;
  for (uint64_t p = first_page; p <= last_page; ++p) {
    uint64_t key = PageKey(region, p);
    std::size_t lo = std::max<std::size_t>(offset, p * page_bytes);
    std::size_t hi =
        std::min<std::size_t>(offset + bytes, (p + 1) * page_bytes);
    std::size_t span = hi - lo;
    auto it = resident_.find(key);
    if (it != resident_.end()) {
      // Buffered page: device-memory cost only.
      ++stats_->um_page_hits;
      charge.cycles += params_.device_mem_latency_cycles +
                       static_cast<double>(span) /
                           params_.device_bytes_per_cycle;
      charge.hit_cycles += params_.device_mem_latency_cycles +
                           static_cast<double>(span) /
                               params_.device_bytes_per_cycle;
      Touch(key);
      TracePage(trace_, now_cycles_, TraceRecorder::Kind::kUmHit, region, p);
    } else {
      // Page fault: fault handling plus whole-page migration.
      ++stats_->um_page_faults;
      stats_->um_migrated_bytes += page_bytes;
      charge.cycles += params_.page_fault_cycles +
                       static_cast<double>(page_bytes) /
                           params_.pcie_bytes_per_cycle;
      charge.fault_cycles += params_.page_fault_cycles +
                             static_cast<double>(page_bytes) /
                                 params_.pcie_bytes_per_cycle;
      charge.pcie_bytes += page_bytes;
      TracePage(trace_, now_cycles_, TraceRecorder::Kind::kUmFault, region,
                p);
      InsertPage(key);
    }
  }
  if (observer_ != nullptr) {
    observer_->OnUnifiedAccess(region, offset, bytes, charge.cycles);
  }
  return charge;
}

}  // namespace gpm::gpusim
