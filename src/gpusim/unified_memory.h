#ifndef GAMMA_GPUSIM_UNIFIED_MEMORY_H_
#define GAMMA_GPUSIM_UNIFIED_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "gpusim/sim_params.h"
#include "gpusim/stats.h"

namespace gpm::gpusim {

class AccessObserver;
class Sanitizer;
class TraceRecorder;

/// Charge produced by a memory access: warp stall cycles plus bytes that
/// must cross the PCIe link (added to the current kernel's link traffic).
///
/// `hit_cycles` and `fault_cycles` split `cycles` by resource class for
/// gamma-prof (page-buffer hits are device-memory time, faults are
/// migration time). They are accumulated with the same expressions in the
/// same order as `cycles`, so `hit_cycles + fault_cycles == cycles` holds
/// exactly whenever an access is all-hit or all-fault, and to within the
/// usual fold reordering otherwise; attribution closes any residual.
struct AccessCharge {
  double cycles = 0;
  std::size_t pcie_bytes = 0;
  double hit_cycles = 0;
  double fault_cycles = 0;
};

/// Simulated CUDA unified (managed) memory.
///
/// Host-resident regions are addressable from device code; the first access
/// to a page triggers a page fault and a 4 KB migration into a device-side
/// page buffer (LRU). Subsequent accesses to a buffered page cost only a
/// device-memory access. The buffer capacity models the portion of device
/// memory the runtime dedicates to migrated pages; pages persist across
/// kernels, which is what gives GAMMA's extensions their exploitable
/// temporal locality (paper Fig. 5).
class UnifiedMemory {
 public:
  using RegionId = uint32_t;

  UnifiedMemory(const SimParams& params, DeviceStats* stats)
      : params_(params),
        stats_(stats),
        capacity_pages_(params.um_device_buffer_bytes / params.um_page_bytes) {
  }

  UnifiedMemory(const UnifiedMemory&) = delete;
  UnifiedMemory& operator=(const UnifiedMemory&) = delete;

  /// Routes page-level fault/hit/eviction/prefetch events to `trace`,
  /// timestamped by `*now_cycles` (the owning device's clock). Both
  /// pointers must outlive this object; the Device wires this up at
  /// construction.
  void BindTrace(TraceRecorder* trace, const double* now_cycles) {
    trace_ = trace;
    now_cycles_ = now_cycles;
  }

  /// Attaches a read-only tap on the access stream (see AccessObserver);
  /// nullptr detaches. Set through `Device::set_access_observer`, which
  /// keeps the warp-level zero-copy tap in sync. Observers never alter
  /// charges or counters, so results are identical with one attached.
  void set_observer(AccessObserver* observer) { observer_ = observer; }
  AccessObserver* observer() const { return observer_; }

  /// Mirrors region register/resize into the checker so it can bounds-check
  /// unified reads; nullptr detaches. Like observers, the sanitizer never
  /// alters charges.
  void set_sanitizer(Sanitizer* sanitizer) { sanitizer_ = sanitizer; }

  /// Registered regions by id; Device::EnableSanitizer snapshots this to
  /// shadow regions that predate the sanitizer.
  const std::unordered_map<RegionId, std::size_t>& region_sizes() const {
    return region_bytes_;
  }

  /// Registers a managed region of `bytes` bytes; returns its id.
  RegionId Register(std::size_t bytes);

  /// Grows or shrinks a region. Shrinking invalidates buffered pages that
  /// fall beyond the new size.
  void ResizeRegion(RegionId region, std::size_t new_bytes);

  /// Simulates a device-side access of `[offset, offset + bytes)` within
  /// `region`. Faults and migrates non-resident pages.
  AccessCharge Access(RegionId region, std::size_t offset, std::size_t bytes);

  /// Prefetches the page holding `offset` into the device buffer
  /// (cudaMemPrefetchAsync-style: bulk migration, no per-page fault
  /// penalty). Returns the bytes that actually had to migrate (0 when the
  /// page was already resident). The caller charges the link transfer.
  std::size_t PrefetchPage(RegionId region, std::size_t offset);

  /// Drops every buffered page of `region` (e.g., data rewritten by host).
  void InvalidateRegion(RegionId region);

  /// True when the page holding `offset` is resident in the device buffer.
  bool IsResident(RegionId region, std::size_t offset) const;

  std::size_t resident_pages() const { return lru_.size(); }
  std::size_t capacity_pages() const { return capacity_pages_; }

  /// Overrides the buffer capacity (used when device memory pressure forces
  /// a smaller page buffer than the default).
  void set_capacity_pages(std::size_t pages) { capacity_pages_ = pages; }

 private:
  // Region id in the top 16 bits, page number in the low 48.
  static uint64_t PageKey(RegionId region, uint64_t page) {
    return (static_cast<uint64_t>(region) << 48) | page;
  }

  void Touch(uint64_t key);
  void InsertPage(uint64_t key);

  const SimParams& params_;
  DeviceStats* stats_;
  AccessObserver* observer_ = nullptr;
  Sanitizer* sanitizer_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  const double* now_cycles_ = nullptr;
  std::size_t capacity_pages_;
  RegionId next_region_ = 1;
  std::unordered_map<RegionId, std::size_t> region_bytes_;

  // LRU over resident pages: front = most recent.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> resident_;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_UNIFIED_MEMORY_H_
