#include "gpusim/warp.h"

#include <cmath>
#include <utility>

#include "gpusim/access_observer.h"
#include "gpusim/device.h"
#include "gpusim/sanitizer.h"

namespace gpm::gpusim {

const char* AccessModeName(AccessMode mode) {
  switch (mode) {
    case AccessMode::kDeviceResident:
      return "device";
    case AccessMode::kUnified:
      return "unified";
    case AccessMode::kZeroCopy:
      return "zero-copy";
  }
  return "?";
}

WarpCtx::WarpCtx(Device* device, std::size_t task_id)
    : device_(device), task_id_(task_id) {}

WarpCtx::WarpCtx(Device* device, std::size_t task_id, WarpTaskLog* log)
    : device_(device), task_id_(task_id), log_(log) {}

void WarpCtx::ChargeCompute(double cycles) {
  if (log_ != nullptr) {
    log_->ops.push_back({WarpOp::kChargeCompute, 0, 0, 0, cycles});
    return;
  }
  cycles_ += cycles;
  AddClassCycles(device_->EffectiveClass(ResourceClass::kCompute), cycles);
}

void WarpCtx::ChargeSimtWork(std::size_t elems, double cycles_per_step) {
  if (elems == 0) return;
  if (log_ != nullptr) {
    log_->ops.push_back({WarpOp::kChargeSimtWork, 0, elems, 0,
                         cycles_per_step});
    return;
  }
  const int w = device_->params().warp_size;
  std::size_t steps = (elems + w - 1) / w;
  const double charge = static_cast<double>(steps) * cycles_per_step;
  cycles_ += charge;
  AddClassCycles(device_->EffectiveClass(ResourceClass::kCompute), charge);
}

void WarpCtx::ChargeWarpScan() {
  if (log_ != nullptr) {
    log_->ops.push_back({WarpOp::kChargeWarpScan, 0, 0, 0, 0});
    return;
  }
  // log2(warp_size) shuffle rounds, one cycle each.
  const double charge =
      std::log2(static_cast<double>(device_->params().warp_size));
  cycles_ += charge;
  AddClassCycles(device_->EffectiveClass(ResourceClass::kCompute), charge);
}

void WarpCtx::ChargeAtomic() {
  if (log_ != nullptr) {
    log_->ops.push_back({WarpOp::kChargeAtomic, 0, 0, 0, 0});
    return;
  }
  cycles_ += device_->params().atomic_cycles;
  AddClassCycles(ResourceClass::kDram, device_->params().atomic_cycles);
}

void WarpCtx::ChargeBlockSync() {
  if (log_ != nullptr) {
    log_->ops.push_back({WarpOp::kChargeBlockSync, 0, 0, 0, 0});
    return;
  }
  cycles_ += device_->params().block_sync_cycles;
  AddClassCycles(device_->EffectiveClass(ResourceClass::kCompute),
                 device_->params().block_sync_cycles);
}

void WarpCtx::DeviceRead(std::size_t bytes) { DeviceRead(0, 0, bytes); }

void WarpCtx::DeviceWrite(std::size_t bytes) { DeviceWrite(0, 0, bytes); }

void WarpCtx::DeviceRead(DeviceMemory::AllocId alloc, std::size_t offset,
                         std::size_t bytes) {
  if (log_ != nullptr) {
    log_->ops.push_back({WarpOp::kDeviceRead, alloc, offset, bytes, 0});
    return;
  }
  const SimParams& p = device_->params();
  ++device_->stats().device_reads;
  device_->stats().device_read_bytes += bytes;
  const double charge = p.device_mem_latency_cycles +
                        static_cast<double>(bytes) / p.device_bytes_per_cycle;
  cycles_ += charge;
  AddClassCycles(ResourceClass::kDram, charge);
  if (alloc == 0) return;
  if (Sanitizer* san = device_->sanitizer()) {
    san->OnWarpAccess(task_id_, alloc, offset, bytes, /*is_write=*/false);
  }
}

void WarpCtx::DeviceWrite(DeviceMemory::AllocId alloc, std::size_t offset,
                          std::size_t bytes) {
  if (log_ != nullptr) {
    log_->ops.push_back({WarpOp::kDeviceWrite, alloc, offset, bytes, 0});
    return;
  }
  const SimParams& p = device_->params();
  ++device_->stats().device_writes;
  device_->stats().device_write_bytes += bytes;
  const double charge = p.device_mem_latency_cycles +
                        static_cast<double>(bytes) / p.device_bytes_per_cycle;
  cycles_ += charge;
  AddClassCycles(ResourceClass::kDram, charge);
  if (alloc == 0) return;
  if (Sanitizer* san = device_->sanitizer()) {
    san->OnWarpAccess(task_id_, alloc, offset, bytes, /*is_write=*/true);
  }
}

void WarpCtx::ZeroCopyRead(std::size_t bytes) {
  if (bytes == 0) return;
  if (log_ != nullptr) {
    log_->ops.push_back({WarpOp::kZeroCopyRead, 0, 0, bytes, 0});
    return;
  }
  const SimParams& p = device_->params();
  std::size_t ntx =
      (bytes + p.zc_transaction_bytes - 1) / p.zc_transaction_bytes;
  device_->stats().zc_transactions += ntx;
  device_->stats().zc_bytes += ntx * p.zc_transaction_bytes;
  // First transaction pays full link latency; the rest pipeline.
  const double charge = p.pcie_latency_cycles +
                        static_cast<double>(ntx - 1) * p.zc_pipelined_cycles;
  cycles_ += charge;
  AddClassCycles(ResourceClass::kPcie, charge);
  AddPcieBytes(ntx * p.zc_transaction_bytes);
  if (AccessObserver* obs = device_->access_observer()) {
    obs->OnZeroCopy(bytes, charge);
  }
}

void WarpCtx::ZeroCopyWrite(std::size_t bytes) {
  // Symmetric cost model for writes from device to host memory.
  ZeroCopyRead(bytes);
}

void WarpCtx::UnifiedRead(UnifiedMemory::RegionId region, std::size_t offset,
                          std::size_t bytes) {
  if (log_ != nullptr) {
    log_->ops.push_back({WarpOp::kUnifiedRead, region, offset, bytes, 0});
    return;
  }
  if (Sanitizer* san = device_->sanitizer()) {
    san->OnUnifiedWarpAccess(task_id_, region, offset, bytes);
  }
  AccessCharge charge = device_->unified().Access(region, offset, bytes);
  cycles_ += charge.cycles;
  AddClassCycles(ResourceClass::kDram, charge.hit_cycles);
  AddClassCycles(ResourceClass::kUm, charge.fault_cycles);
  if (charge.pcie_bytes > 0) AddPcieBytes(charge.pcie_bytes);
}

void WarpCtx::Defer(std::function<void(WarpCtx&)> fn) {
  if (log_ != nullptr) {
    log_->ops.push_back(
        {WarpOp::kCallback, 0, log_->callbacks.size(), 0, 0});
    log_->callbacks.push_back(std::move(fn));
    return;
  }
  fn(*this);
}

void WarpCtx::Replay(const WarpTaskLog& log) {
  for (const WarpOp& op : log.ops) {
    switch (op.kind) {
      case WarpOp::kChargeCompute:
        ChargeCompute(op.d);
        break;
      case WarpOp::kChargeSimtWork:
        ChargeSimtWork(op.a, op.d);
        break;
      case WarpOp::kChargeWarpScan:
        ChargeWarpScan();
        break;
      case WarpOp::kChargeAtomic:
        ChargeAtomic();
        break;
      case WarpOp::kChargeBlockSync:
        ChargeBlockSync();
        break;
      case WarpOp::kDeviceRead:
        DeviceRead(op.id, op.a, op.b);
        break;
      case WarpOp::kDeviceWrite:
        DeviceWrite(op.id, op.a, op.b);
        break;
      case WarpOp::kZeroCopyRead:
        ZeroCopyRead(op.b);
        break;
      case WarpOp::kUnifiedRead:
        UnifiedRead(static_cast<UnifiedMemory::RegionId>(op.id), op.a, op.b);
        break;
      case WarpOp::kAddPcieBytes:
        AddPcieBytes(op.b);
        break;
      case WarpOp::kCallback:
        log.callbacks[op.a](*this);
        break;
    }
  }
}

}  // namespace gpm::gpusim
