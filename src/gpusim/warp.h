#ifndef GAMMA_GPUSIM_WARP_H_
#define GAMMA_GPUSIM_WARP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "gpusim/device_memory.h"
#include "gpusim/resource_class.h"
#include "gpusim/sim_params.h"
#include "gpusim/unified_memory.h"

namespace gpm::gpusim {

class Device;
class WarpCtx;

/// One recorded side effect of a warp task. When a kernel executes its task
/// functions on the host thread pool, every charge is appended here instead
/// of touching simulator state; the launching thread then replays the logs
/// in ascending task order through the exact immediate-mode implementations,
/// so DeviceStats, cycle arithmetic (double addition is not associative —
/// ops are never coalesced), UM page state, traces, and sanitizer findings
/// are bit-identical to the serial schedule.
struct WarpOp {
  enum Kind : uint8_t {
    kChargeCompute,   // d = cycles
    kChargeSimtWork,  // a = elems, d = cycles_per_step
    kChargeWarpScan,
    kChargeAtomic,
    kChargeBlockSync,
    kDeviceRead,      // id = alloc (0 = unattributed), a = offset, b = bytes
    kDeviceWrite,     // id = alloc (0 = unattributed), a = offset, b = bytes
    kZeroCopyRead,    // b = bytes (writes share the symmetric cost model)
    kUnifiedRead,     // id = region, a = offset, b = bytes
    kAddPcieBytes,    // b = bytes
    kCallback,        // a = index into WarpTaskLog::callbacks
  };
  Kind kind;
  uint64_t id = 0;
  std::size_t a = 0;
  std::size_t b = 0;
  double d = 0;
};

/// The ordered side-effect log of one warp task: typed charges plus deferred
/// host callbacks (`WarpCtx::Defer`) interleaved in call order.
struct WarpTaskLog {
  std::vector<WarpOp> ops;
  std::vector<std::function<void(WarpCtx&)>> callbacks;
};

/// How device code reaches a host- or device-resident array.
///
/// GAMMA's self-adaptive strategy picks, per page and per extension, between
/// kUnified and kZeroCopy for host-resident graph data; data placed in
/// device memory uses kDeviceResident.
enum class AccessMode : uint8_t {
  kDeviceResident,
  kUnified,
  kZeroCopy,
};

const char* AccessModeName(AccessMode mode);

/// Execution context of one warp task inside a kernel.
///
/// Warps are the simulation granularity (paper §II-A: SIMT threads inside a
/// warp synchronize for free). Intra-warp data parallelism is modeled by
/// `ChargeSimtWork`, which charges ceil(n / warp_size) element-steps instead
/// of per-thread events. All memory traffic flows through the typed charge
/// methods so that the cost model stays in one place.
///
/// A context is either *immediate* (the historical mode: every charge lands
/// on the device at once) or *recording* (constructed with a WarpTaskLog:
/// charges append ops and mutate nothing — the mode parallel launches use
/// while task functions run concurrently). Task functions that need to
/// mutate host state the context cannot see route it through `Defer`, which
/// preserves the same record-then-ordered-replay discipline. While
/// recording, `cycles()` and `pcie_bytes()` stay 0 — kernels must not
/// branch on them mid-task.
class WarpCtx {
 public:
  WarpCtx(Device* device, std::size_t task_id);
  WarpCtx(Device* device, std::size_t task_id, WarpTaskLog* log);

  std::size_t task_id() const { return task_id_; }
  double cycles() const { return cycles_; }
  Device* device() { return device_; }

  /// True when charges are being recorded for later ordered replay instead
  /// of applied immediately. Components with side effects beyond the typed
  /// charges (e.g. MemoryPool) check this and defer themselves.
  bool recording() const { return log_ != nullptr; }

  /// Raw ALU work (already warp-parallel): adds `cycles` directly.
  void ChargeCompute(double cycles);

  /// Warp-parallel loop over `elems` elements at `cycles_per_step` per
  /// 32-wide step.
  void ChargeSimtWork(std::size_t elems, double cycles_per_step = 1.0);

  /// Warp-level inclusive/exclusive prefix scan over one value per thread
  /// (log2(warp_size) shuffle rounds).
  void ChargeWarpScan();

  /// One global-memory atomic (e.g., grabbing a memory-pool block).
  void ChargeAtomic();

  /// Thread-block barrier.
  void ChargeBlockSync();

  /// Coalesced read of `bytes` from device memory.
  void DeviceRead(std::size_t bytes);

  /// Coalesced write of `bytes` to device memory.
  void DeviceWrite(std::size_t bytes);

  /// Attributed variants: identical charge to the byte-only forms, plus —
  /// when a sanitizer is attached — validation of [offset, offset+bytes)
  /// against allocation `alloc`. `alloc` 0 means "unattributed" and skips
  /// the check (e.g. a DeviceBuffer::id() of an invalid buffer), so call
  /// sites never need their own sanitizer conditionals.
  void DeviceRead(DeviceMemory::AllocId alloc, std::size_t offset,
                  std::size_t bytes);
  void DeviceWrite(DeviceMemory::AllocId alloc, std::size_t offset,
                   std::size_t bytes);

  /// Read of `bytes` from host memory over zero-copy (128 B transactions).
  void ZeroCopyRead(std::size_t bytes);

  /// Write of `bytes` to host memory over zero-copy.
  void ZeroCopyWrite(std::size_t bytes);

  /// Read of `[offset, offset+bytes)` in a unified-memory region (page
  /// faults + migrations on miss, device cost on hit).
  void UnifiedRead(UnifiedMemory::RegionId region, std::size_t offset,
                   std::size_t bytes);

  /// Runs `fn(*this)` now in immediate mode, or records it for ordered
  /// replay on the launching thread when recording. This is the escape
  /// hatch for side effects the typed ops cannot express (memory-pool
  /// bookkeeping, audit span brackets); the callback executes interleaved
  /// with the replayed charges exactly where the call sat in the task.
  void Defer(std::function<void(WarpCtx&)> fn);

  /// Applies every op in `log` to this (immediate-mode) context, in order.
  /// Called by the launching thread once per task, ascending.
  void Replay(const WarpTaskLog& log);

  /// PCIe traffic this warp task generated (zero-copy transactions, UM
  /// migrations, mid-kernel pool drains). The kernel sums it per launch and
  /// overlaps the total with its compute makespan — scoping the accumulator
  /// to the task keeps interleaved transfers on other streams from being
  /// attributed to the wrong kernel's overlap credit.
  void AddPcieBytes(std::size_t bytes) {
    if (log_ != nullptr) {
      log_->ops.push_back({WarpOp::kAddPcieBytes, 0, 0, bytes, 0});
      return;
    }
    pcie_bytes_ += bytes;
  }
  std::size_t pcie_bytes() const { return pcie_bytes_; }

  /// gamma-prof: this task's stall cycles split by resource class. Each
  /// typed charge adds the exact amount it added to `cycles()` under the
  /// class consumed (compute charges follow the device's sort-activity
  /// remap); the kernel folds the per-slot sums into its command record.
  /// Like `cycles()`, stays 0 while recording — filled at replay.
  const ResourceCycles& class_cycles() const { return class_cycles_; }

 private:
  /// Tags `amount` stall cycles (already added to cycles_) with `cls`.
  void AddClassCycles(ResourceClass cls, double amount) {
    class_cycles_[static_cast<std::size_t>(cls)] += amount;
  }

  Device* device_;
  std::size_t task_id_;
  WarpTaskLog* log_ = nullptr;
  double cycles_ = 0;
  std::size_t pcie_bytes_ = 0;
  ResourceCycles class_cycles_{};
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_WARP_H_
