#ifndef GAMMA_GPUSIM_WARP_H_
#define GAMMA_GPUSIM_WARP_H_

#include <cstddef>
#include <cstdint>

#include "gpusim/device_memory.h"
#include "gpusim/sim_params.h"
#include "gpusim/unified_memory.h"

namespace gpm::gpusim {

class Device;

/// How device code reaches a host- or device-resident array.
///
/// GAMMA's self-adaptive strategy picks, per page and per extension, between
/// kUnified and kZeroCopy for host-resident graph data; data placed in
/// device memory uses kDeviceResident.
enum class AccessMode : uint8_t {
  kDeviceResident,
  kUnified,
  kZeroCopy,
};

const char* AccessModeName(AccessMode mode);

/// Execution context of one warp task inside a kernel.
///
/// Warps are the simulation granularity (paper §II-A: SIMT threads inside a
/// warp synchronize for free). Intra-warp data parallelism is modeled by
/// `ChargeSimtWork`, which charges ceil(n / warp_size) element-steps instead
/// of per-thread events. All memory traffic flows through the typed charge
/// methods so that the cost model stays in one place.
class WarpCtx {
 public:
  WarpCtx(Device* device, std::size_t task_id);

  std::size_t task_id() const { return task_id_; }
  double cycles() const { return cycles_; }
  Device* device() { return device_; }

  /// Raw ALU work (already warp-parallel): adds `cycles` directly.
  void ChargeCompute(double cycles) { cycles_ += cycles; }

  /// Warp-parallel loop over `elems` elements at `cycles_per_step` per
  /// 32-wide step.
  void ChargeSimtWork(std::size_t elems, double cycles_per_step = 1.0);

  /// Warp-level inclusive/exclusive prefix scan over one value per thread
  /// (log2(warp_size) shuffle rounds).
  void ChargeWarpScan();

  /// One global-memory atomic (e.g., grabbing a memory-pool block).
  void ChargeAtomic();

  /// Thread-block barrier.
  void ChargeBlockSync();

  /// Coalesced read of `bytes` from device memory.
  void DeviceRead(std::size_t bytes);

  /// Coalesced write of `bytes` to device memory.
  void DeviceWrite(std::size_t bytes);

  /// Attributed variants: identical charge to the byte-only forms, plus —
  /// when a sanitizer is attached — validation of [offset, offset+bytes)
  /// against allocation `alloc`. `alloc` 0 means "unattributed" and skips
  /// the check (e.g. a DeviceBuffer::id() of an invalid buffer), so call
  /// sites never need their own sanitizer conditionals.
  void DeviceRead(DeviceMemory::AllocId alloc, std::size_t offset,
                  std::size_t bytes);
  void DeviceWrite(DeviceMemory::AllocId alloc, std::size_t offset,
                   std::size_t bytes);

  /// Read of `bytes` from host memory over zero-copy (128 B transactions).
  void ZeroCopyRead(std::size_t bytes);

  /// Write of `bytes` to host memory over zero-copy.
  void ZeroCopyWrite(std::size_t bytes);

  /// Read of `[offset, offset+bytes)` in a unified-memory region (page
  /// faults + migrations on miss, device cost on hit).
  void UnifiedRead(UnifiedMemory::RegionId region, std::size_t offset,
                   std::size_t bytes);

  /// PCIe traffic this warp task generated (zero-copy transactions, UM
  /// migrations, mid-kernel pool drains). The kernel sums it per launch and
  /// overlaps the total with its compute makespan — scoping the accumulator
  /// to the task keeps interleaved transfers on other streams from being
  /// attributed to the wrong kernel's overlap credit.
  void AddPcieBytes(std::size_t bytes) { pcie_bytes_ += bytes; }
  std::size_t pcie_bytes() const { return pcie_bytes_; }

 private:
  Device* device_;
  std::size_t task_id_;
  double cycles_ = 0;
  std::size_t pcie_bytes_ = 0;
};

}  // namespace gpm::gpusim

#endif  // GAMMA_GPUSIM_WARP_H_
