#include "graph/canonical.h"

#include <algorithm>
#include <numeric>

#include "common/random.h"

namespace gpm::graph {
namespace {

// Encodes the pattern in its current vertex order: vertex count, labels,
// then the upper-triangle adjacency bits packed row-major.
std::vector<uint8_t> Encode(const Pattern& p) {
  const int n = p.num_vertices();
  std::vector<uint8_t> enc;
  enc.reserve(1 + n * 4 + (n * n + 7) / 8);
  enc.push_back(static_cast<uint8_t>(n));
  for (int i = 0; i < n; ++i) {
    Label l = p.label(i);
    enc.push_back(static_cast<uint8_t>(l >> 24));
    enc.push_back(static_cast<uint8_t>(l >> 16));
    enc.push_back(static_cast<uint8_t>(l >> 8));
    enc.push_back(static_cast<uint8_t>(l));
  }
  uint8_t acc = 0;
  int nbits = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      acc = static_cast<uint8_t>((acc << 1) | (p.HasEdge(i, j) ? 1 : 0));
      if (++nbits == 8) {
        enc.push_back(acc);
        acc = 0;
        nbits = 0;
      }
    }
  }
  if (nbits > 0) enc.push_back(static_cast<uint8_t>(acc << (8 - nbits)));
  return enc;
}

uint64_t HashBytes(const std::vector<uint8_t>& bytes) {
  // FNV-1a, then mixed — enough dispersion for the pattern-table key space.
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return Mix64(h);
}

}  // namespace

std::vector<uint8_t> CanonicalEncoding(const Pattern& p) {
  const int n = p.num_vertices();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<uint8_t> best;
  do {
    std::vector<uint8_t> enc = Encode(p.Permuted(perm));
    if (best.empty() || enc < best) best = std::move(enc);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

uint64_t CanonicalCode(const Pattern& p) {
  return HashBytes(CanonicalEncoding(p));
}

uint64_t RawCode(const Pattern& p) { return HashBytes(Encode(p)); }

}  // namespace gpm::graph
