#ifndef GAMMA_GRAPH_CANONICAL_H_
#define GAMMA_GRAPH_CANONICAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/pattern.h"

namespace gpm::graph {

/// Exact canonical byte encoding of a small labeled pattern: the
/// lexicographically smallest encoding over all vertex permutations.
/// Two patterns are isomorphic (label-preserving) iff their canonical
/// encodings are equal.
std::vector<uint8_t> CanonicalEncoding(const Pattern& p);

/// 64-bit hash of CanonicalEncoding — the canonical label used as the
/// aggregation key (§III-B2). Patterns are tiny (≤ 8 vertices), so the
/// permutation search is cheap; embedding-rate callers should memoize via
/// CanonicalCache.
uint64_t CanonicalCode(const Pattern& p);

/// Order-*dependent* 64-bit code of a pattern as currently numbered. Much
/// cheaper than CanonicalCode; two equal raw codes imply identical (not just
/// isomorphic) patterns.
uint64_t RawCode(const Pattern& p);

/// Memoizes raw code → canonical code. The aggregation primitive maps every
/// embedding to its pattern's canonical label; embeddings overwhelmingly
/// share a handful of shapes, so this cache reduces per-embedding cost to a
/// hash lookup.
class CanonicalCache {
 public:
  uint64_t Get(const Pattern& p) {
    uint64_t raw = RawCode(p);
    auto it = memo_.find(raw);
    if (it != memo_.end()) return it->second;
    uint64_t canon = CanonicalCode(p);
    memo_.emplace(raw, canon);
    return canon;
  }

  std::size_t size() const { return memo_.size(); }

 private:
  std::unordered_map<uint64_t, uint64_t> memo_;
};

}  // namespace gpm::graph

#endif  // GAMMA_GRAPH_CANONICAL_H_
