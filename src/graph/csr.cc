#include "graph/csr.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace gpm::graph {

Graph Graph::FromEdges(VertexId num_vertices, const std::vector<Edge>& edges,
                       const BuildOptions& options) {
  // Normalize to directed arcs in both directions.
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    GAMMA_CHECK(e.u < num_vertices && e.v < num_vertices)
        << "edge endpoint out of range: (" << e.u << "," << e.v << ")";
    if (options.remove_self_loops && e.u == e.v) continue;
    arcs.emplace_back(e.u, e.v);
    arcs.emplace_back(e.v, e.u);
  }
  std::sort(arcs.begin(), arcs.end());
  if (options.remove_duplicates) {
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  }

  Graph g;
  g.row_ptr_.assign(num_vertices + 1, 0);
  g.col_.resize(arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    ++g.row_ptr_[arcs[i].first + 1];
    g.col_[i] = arcs[i].second;
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.row_ptr_[v + 1] += g.row_ptr_[v];
    uint32_t d = static_cast<uint32_t>(g.row_ptr_[v + 1] - g.row_ptr_[v]);
    g.max_degree_ = std::max(g.max_degree_, d);
  }
  return g;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void Graph::SetLabels(std::vector<Label> labels) {
  GAMMA_CHECK(labels.size() == num_vertices())
      << "label vector size mismatch";
  labels_ = std::move(labels);
  num_labels_ = 0;
  for (Label l : labels_) num_labels_ = std::max(num_labels_, l + 1);
  if (num_labels_ == 0) num_labels_ = 1;
}

void Graph::EnsureEdgeIndex() {
  if (!edge_list_.empty() || col_.empty()) return;
  edge_list_.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : neighbors(u)) {
      if (u < v) edge_list_.push_back({u, v});
    }
  }
  // edge_list_ is already sorted by (u, v) because CSR rows are sorted.
  incident_ptr_.assign(num_vertices() + 1, 0);
  for (const Edge& e : edge_list_) {
    ++incident_ptr_[e.u + 1];
    ++incident_ptr_[e.v + 1];
  }
  for (std::size_t v = 0; v < num_vertices(); ++v) {
    incident_ptr_[v + 1] += incident_ptr_[v];
  }
  incident_.resize(col_.size());
  std::vector<uint64_t> cursor(incident_ptr_.begin(),
                               incident_ptr_.end() - 1);
  for (EdgeId id = 0; id < edge_list_.size(); ++id) {
    const Edge& e = edge_list_[id];
    incident_[cursor[e.u]++] = id;
    incident_[cursor[e.v]++] = id;
  }
  // Per-arc edge ids aligned with col_.
  arc_edge_ids_.resize(col_.size());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (uint64_t i = row_ptr_[u]; i < row_ptr_[u + 1]; ++i) {
      VertexId v = col_[i];
      EdgeId id = FindEdgeId(u, v);
      GAMMA_CHECK(id != kInvalidEdge) << "arc without edge id";
      arc_edge_ids_[i] = id;
    }
  }
}

EdgeId Graph::FindEdgeId(VertexId u, VertexId v) const {
  if (u > v) std::swap(u, v);
  Edge probe{u, v};
  auto it = std::lower_bound(edge_list_.begin(), edge_list_.end(), probe);
  if (it == edge_list_.end() || !(*it == probe)) return kInvalidEdge;
  return static_cast<EdgeId>(it - edge_list_.begin());
}

std::size_t Graph::StorageBytes() const {
  return row_ptr_.size() * sizeof(uint64_t) +
         col_.size() * sizeof(VertexId) + labels_.size() * sizeof(Label) +
         edge_list_.size() * sizeof(Edge) +
         incident_ptr_.size() * sizeof(uint64_t) +
         incident_.size() * sizeof(EdgeId);
}

std::string Graph::DebugString() const {
  std::ostringstream os;
  os << "Graph(|V|=" << num_vertices() << ", |E|=" << num_edges()
     << ", d_max=" << max_degree() << ", labels=" << num_labels_ << ")";
  return os.str();
}

}  // namespace gpm::graph
