#ifndef GAMMA_GRAPH_CSR_H_
#define GAMMA_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace gpm::graph {

using VertexId = uint32_t;
using EdgeId = uint32_t;
using Label = uint32_t;

/// An undirected edge as a (min, max) vertex pair.
struct Edge {
  VertexId u;
  VertexId v;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Labeled graph in Compressed Sparse Row form (§IV).
///
/// Adjacency lists are sorted, which enables binary-search adjacency tests
/// and merge-based intersection — both primitives GAMMA's extension step
/// relies on. The graph is stored undirected: each edge appears in both
/// endpoints' adjacency lists. An optional edge index assigns each
/// undirected edge a dense EdgeId and provides vertex→incident-edge lists
/// (needed by edge-extension / e-ET workloads such as FPM).
class Graph {
 public:
  struct BuildOptions {
    bool remove_self_loops = true;
    bool remove_duplicates = true;
  };

  Graph() = default;

  /// Builds an undirected CSR from an edge list. Vertices are
  /// [0, num_vertices); out-of-range endpoints are CHECK-failed.
  static Graph FromEdges(VertexId num_vertices,
                         const std::vector<Edge>& edges,
                         const BuildOptions& options);
  static Graph FromEdges(VertexId num_vertices,
                         const std::vector<Edge>& edges) {
    return FromEdges(num_vertices, edges, BuildOptions{});
  }

  std::size_t num_vertices() const {
    return row_ptr_.empty() ? 0 : row_ptr_.size() - 1;
  }
  /// Number of undirected edges.
  std::size_t num_edges() const { return col_.size() / 2; }
  /// Number of directed arcs (2x undirected edges).
  std::size_t num_arcs() const { return col_.size(); }

  uint32_t degree(VertexId v) const {
    return static_cast<uint32_t>(row_ptr_[v + 1] - row_ptr_[v]);
  }
  uint32_t max_degree() const { return max_degree_; }
  double average_degree() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_arcs()) / num_vertices();
  }

  /// Sorted neighbor list of `v`.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {col_.data() + row_ptr_[v],
            col_.data() + row_ptr_[v + 1]};
  }

  /// Byte offset of `v`'s adjacency list inside the column array — used by
  /// the page-level access-heat model.
  std::size_t adjacency_offset_bytes(VertexId v) const {
    return row_ptr_[v] * sizeof(VertexId);
  }
  std::size_t adjacency_bytes(VertexId v) const {
    return degree(v) * sizeof(VertexId);
  }

  /// Binary-search adjacency test.
  bool HasEdge(VertexId u, VertexId v) const;

  Label label(VertexId v) const {
    return labels_.empty() ? 0 : labels_[v];
  }
  void SetLabels(std::vector<Label> labels);
  uint32_t num_labels() const { return num_labels_; }
  bool labeled() const { return !labels_.empty(); }

  const std::vector<uint64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<VertexId>& col() const { return col_; }
  const std::vector<Label>& labels() const { return labels_; }

  // -- Undirected edge index ------------------------------------------------

  /// Builds (idempotently) the dense undirected-edge index.
  void EnsureEdgeIndex();
  bool has_edge_index() const { return !edge_list_.empty() || col_.empty(); }

  /// All undirected edges, Edge.u < Edge.v, sorted; EdgeId = position.
  const std::vector<Edge>& edge_list() const { return edge_list_; }

  /// Sorted ids of undirected edges incident to `v`.
  std::span<const EdgeId> incident_edges(VertexId v) const {
    return {incident_.data() + incident_ptr_[v],
            incident_.data() + incident_ptr_[v + 1]};
  }

  /// For each arc position in `col()`, the undirected EdgeId of that arc —
  /// i.e. arc_edge_ids()[i] is the edge {u, col()[i]} where i lies in u's
  /// row. Lets edge extension read candidate edge ids coalesced with the
  /// adjacency list.
  const std::vector<EdgeId>& arc_edge_ids() const { return arc_edge_ids_; }

  /// Edge ids aligned with neighbors(v).
  std::span<const EdgeId> neighbor_edge_ids(VertexId v) const {
    return {arc_edge_ids_.data() + row_ptr_[v],
            arc_edge_ids_.data() + row_ptr_[v + 1]};
  }

  /// Id of undirected edge {u, v}, or kInvalidEdge when absent.
  static constexpr EdgeId kInvalidEdge = 0xffffffffu;
  EdgeId FindEdgeId(VertexId u, VertexId v) const;

  /// Total bytes of the CSR arrays (structure + labels), for memory
  /// accounting: the paper notes a billion-edge graph takes 10-15 GB.
  std::size_t StorageBytes() const;

  std::string DebugString() const;

 private:
  std::vector<uint64_t> row_ptr_;
  std::vector<VertexId> col_;
  std::vector<Label> labels_;
  uint32_t num_labels_ = 1;
  uint32_t max_degree_ = 0;

  // Undirected edge index (built on demand).
  std::vector<Edge> edge_list_;
  std::vector<uint64_t> incident_ptr_;
  std::vector<EdgeId> incident_;
  std::vector<EdgeId> arc_edge_ids_;
};

}  // namespace gpm::graph

#endif  // GAMMA_GRAPH_CSR_H_
