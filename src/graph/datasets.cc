#include "graph/datasets.h"

#include "common/logging.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/upscale.h"

namespace gpm::graph {
namespace {

// R-MAT parameter presets per graph family. Citation graphs are mildly
// skewed; social/web graphs heavily so.
constexpr RmatParams kCitationSkew{0.45, 0.22, 0.22, 0.11};
constexpr RmatParams kSocialSkew{0.57, 0.19, 0.19, 0.05};
constexpr RmatParams kWebSkew{0.62, 0.18, 0.15, 0.05};

}  // namespace

const std::vector<DatasetInfo>& AllDatasets() {
  static const std::vector<DatasetInfo>* kDatasets =
      new std::vector<DatasetInfo>{
          {"CP", "cit-Patent", "citation", 6000000, 17000000, 1000.0, 8192,
           17000},
          {"CL", "com-lj", "social", 4000000, 34000000, 1000.0, 4096, 34000},
          {"CO", "com-orkut", "social", 3000000, 117000000, 2000.0, 3072,
           58000},
          {"EA", "email-EuAll", "email", 265000, 729000, 100.0, 2650, 7290},
          {"ER", "email-EuroII", "email", 37000, 368000, 100.0, 370, 3680},
          {"CL8", "com-lj*8", "synthetic", 32000000, 467000000, 1000.0,
           32768, 272000},
          {"SL5", "soc-Live*5", "synthetic", 24000000, 481000000, 1000.0,
           24000, 96000},
          {"UK", "uk2005", "web", 39000000, 1600000000, 4000.0, 32768,
           400000},
          {"IT", "it2004", "web", 41000000, 2100000000, 4000.0, 32768,
           525000},
          {"TW", "twitter_rv", "social", 62000000, 2400000000, 4000.0, 32768,
           600000},
      };
  return *kDatasets;
}

const DatasetInfo& DatasetByName(const std::string& name) {
  for (const DatasetInfo& d : AllDatasets()) {
    if (d.name == name) return d;
  }
  GAMMA_LOG(Fatal) << "unknown dataset: " << name;
  return AllDatasets().front();  // Unreachable.
}

Graph MakeDataset(const std::string& name, uint64_t seed,
                  uint32_t num_labels) {
  Rng rng(seed ^ Mix64(std::hash<std::string>{}(name)));
  Graph g;
  if (name == "CP") {
    g = Rmat(13, 17000, &rng, kCitationSkew);
  } else if (name == "CL") {
    g = Rmat(12, 34000, &rng, kSocialSkew);
  } else if (name == "CO") {
    g = Rmat(12, 58000, &rng, kSocialSkew);
  } else if (name == "EA") {
    g = PowerLaw(2650, 7290, 0.9, &rng);
  } else if (name == "ER") {
    g = PowerLaw(370, 3680, 0.7, &rng);
  } else if (name == "CL8") {
    Graph base = Rmat(12, 34000, &rng, kSocialSkew);
    g = Upscale(base, 8, &rng);
  } else if (name == "SL5") {
    Graph base = PowerLaw(4800, 19200, 0.8, &rng);
    g = Upscale(base, 5, &rng);
  } else if (name == "UK") {
    g = Rmat(15, 400000, &rng, kWebSkew);
  } else if (name == "IT") {
    g = Rmat(15, 525000, &rng, kWebSkew);
  } else if (name == "TW") {
    g = Rmat(15, 600000, &rng, kSocialSkew);
  } else {
    GAMMA_LOG(Fatal) << "unknown dataset: " << name;
  }
  AssignLabelsZipf(&g, num_labels, 0.5, &rng);
  return g;
}

}  // namespace gpm::graph
