#ifndef GAMMA_GRAPH_DATASETS_H_
#define GAMMA_GRAPH_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"

namespace gpm::graph {

/// Description of one proxy for a Table II dataset.
///
/// The original datasets (SNAP / LAW corpora up to 2.4 B edges) are not
/// available offline, so each is replaced by a synthetic proxy whose
/// generator and skew match the dataset family (citation / social / email /
/// web) and whose size is the original scaled down by `scale_divisor` —
/// chosen such that the proxy-to-device-memory ratio in the benches matches
/// the paper's graph-to-16 GB ratio regime. See DESIGN.md §1.
struct DatasetInfo {
  std::string name;        ///< Paper's short name (CP, CL, CO, ...).
  std::string full_name;   ///< e.g. "cit-Patent".
  std::string family;      ///< citation | social | email | web | synthetic.
  uint64_t paper_nodes;    ///< |V| in the paper's Table II.
  uint64_t paper_edges;    ///< |E| in the paper's Table II.
  double scale_divisor;    ///< proxy ≈ paper size / divisor.
  uint64_t proxy_nodes;    ///< Nominal proxy |V| (generator target).
  uint64_t proxy_edges;    ///< Nominal proxy |E| (generator target).
};

/// All ten Table II datasets, in the paper's order.
const std::vector<DatasetInfo>& AllDatasets();

/// Looks up a DatasetInfo by short name; CHECK-fails on unknown names.
const DatasetInfo& DatasetByName(const std::string& name);

/// Materializes the proxy graph for `name` (CP, CL, CO, EA, ER, CL8, SL5,
/// UK, IT, TW). Deterministic for a fixed seed. Labels are always assigned
/// (`num_labels` Zipf-skewed) so SM/FPM workloads can run on any dataset.
Graph MakeDataset(const std::string& name, uint64_t seed = 7,
                  uint32_t num_labels = 4);

}  // namespace gpm::graph

#endif  // GAMMA_GRAPH_DATASETS_H_
