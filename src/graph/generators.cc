#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace gpm::graph {
namespace {

uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

Graph ErdosRenyi(VertexId num_vertices, std::size_t num_edges, Rng* rng) {
  GAMMA_CHECK(num_vertices >= 2) << "need at least two vertices";
  std::unordered_set<uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  std::size_t max_possible =
      static_cast<std::size_t>(num_vertices) * (num_vertices - 1) / 2;
  num_edges = std::min(num_edges, max_possible);
  while (edges.size() < num_edges) {
    VertexId u = static_cast<VertexId>(rng->NextBounded(num_vertices));
    VertexId v = static_cast<VertexId>(rng->NextBounded(num_vertices));
    if (u == v) continue;
    if (seen.insert(EdgeKey(u, v)).second) {
      edges.push_back({std::min(u, v), std::max(u, v)});
    }
  }
  return Graph::FromEdges(num_vertices, edges);
}

Graph Rmat(int scale, std::size_t num_edges, Rng* rng,
           const RmatParams& params) {
  GAMMA_CHECK(scale >= 1 && scale <= 30) << "bad R-MAT scale";
  const VertexId n = static_cast<VertexId>(1u << scale);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (std::size_t e = 0; e < num_edges; ++e) {
    VertexId u = 0, v = 0;
    for (int level = 0; level < scale; ++level) {
      double r = rng->NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left: no bits set
      } else if (r < params.a + params.b) {
        v |= 1;
      } else if (r < params.a + params.b + params.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    edges.push_back({std::min(u, v), std::max(u, v)});
  }
  return Graph::FromEdges(n, edges);
}

Graph PowerLaw(VertexId num_vertices, std::size_t num_edges, double alpha,
               Rng* rng) {
  GAMMA_CHECK(num_vertices >= 2) << "need at least two vertices";
  // Cumulative weight table; endpoint sampled by binary search.
  std::vector<double> cdf(num_vertices);
  double total = 0;
  for (VertexId i = 0; i < num_vertices; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cdf[i] = total;
  }
  auto sample = [&]() {
    double r = rng->NextDouble() * total;
    auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    return static_cast<VertexId>(it - cdf.begin());
  };
  std::unordered_set<uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  std::size_t attempts = 0;
  const std::size_t max_attempts = num_edges * 50 + 1000;
  while (edges.size() < num_edges && attempts++ < max_attempts) {
    VertexId u = sample();
    VertexId v = sample();
    if (u == v) continue;
    if (seen.insert(EdgeKey(u, v)).second) {
      edges.push_back({std::min(u, v), std::max(u, v)});
    }
  }
  return Graph::FromEdges(num_vertices, edges);
}

void AssignLabelsZipf(Graph* g, uint32_t num_labels, double skew, Rng* rng) {
  GAMMA_CHECK(num_labels >= 1) << "need at least one label";
  std::vector<double> cdf(num_labels);
  double total = 0;
  for (uint32_t l = 0; l < num_labels; ++l) {
    total += std::pow(static_cast<double>(l + 1), -skew);
    cdf[l] = total;
  }
  std::vector<Label> labels(g->num_vertices());
  for (auto& l : labels) {
    double r = rng->NextDouble() * total;
    auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    l = static_cast<Label>(it - cdf.begin());
  }
  g->SetLabels(std::move(labels));
}

std::vector<Edge> EdgesOf(const Graph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  return edges;
}

}  // namespace gpm::graph
