#ifndef GAMMA_GRAPH_GENERATORS_H_
#define GAMMA_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/csr.h"

namespace gpm::graph {

/// Parameters of the R-MAT / Kronecker generator [38]. Defaults follow the
/// Graph500 convention (a=0.57, b=c=0.19, d=0.05), which yields the heavy
/// degree skew of social/web graphs.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
};

/// Erdős–Rényi G(n, m): `num_edges` distinct undirected edges.
Graph ErdosRenyi(VertexId num_vertices, std::size_t num_edges, Rng* rng);

/// R-MAT graph over 2^scale vertices with ~num_edges undirected edges
/// (duplicates and self loops removed, so the final count can be lower).
Graph Rmat(int scale, std::size_t num_edges, Rng* rng,
           const RmatParams& params = RmatParams());

/// Chung-Lu power-law graph: expected degree of vertex i proportional to
/// (i+1)^(-alpha), targeting `num_edges` undirected edges.
Graph PowerLaw(VertexId num_vertices, std::size_t num_edges, double alpha,
               Rng* rng);

/// Assigns `num_labels` vertex labels with a Zipf-like skew (`skew` = 0
/// means uniform). Labels correlate with vertex id hashing, so they are
/// reproducible.
void AssignLabelsZipf(Graph* g, uint32_t num_labels, double skew, Rng* rng);

/// Returns the edge list of `g` (u < v).
std::vector<Edge> EdgesOf(const Graph& g);

}  // namespace gpm::graph

#endif  // GAMMA_GRAPH_GENERATORS_H_
