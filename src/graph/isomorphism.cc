#include "graph/isomorphism.h"

#include <algorithm>

#include "common/logging.h"

namespace gpm::graph {
namespace {

bool LabelOk(const Graph& g, const Pattern& p, int pv, VertexId dv) {
  return p.label(pv) == Pattern::kAnyLabel || p.label(pv) == g.label(dv);
}

// Backtracking matcher over a connected matching order. Each recursion
// level extends the partial assignment by intersecting the candidate set
// implied by already-matched backward neighbors.
struct Matcher {
  const Graph& g;
  const Pattern& p;
  std::vector<int> order;
  std::vector<int> pos_in_order;  // pattern vertex -> depth
  std::vector<VertexId> assigned;
  uint64_t count = 0;
  std::vector<std::vector<VertexId>>* sink = nullptr;

  Matcher(const Graph& graph, const Pattern& pattern)
      : g(graph), p(pattern), order(pattern.DefaultMatchingOrder()) {
    pos_in_order.assign(p.num_vertices(), -1);
    for (std::size_t d = 0; d < order.size(); ++d)
      pos_in_order[order[d]] = static_cast<int>(d);
    assigned.assign(p.num_vertices(), 0);
  }

  void Run() {
    const int first = order[0];
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (!LabelOk(g, p, first, v)) continue;
      assigned[first] = v;
      Extend(1);
    }
  }

  void Extend(int depth) {
    if (depth == p.num_vertices()) {
      ++count;
      if (sink != nullptr) {
        std::vector<VertexId> emb(p.num_vertices());
        for (int i = 0; i < p.num_vertices(); ++i) emb[i] = assigned[i];
        sink->push_back(std::move(emb));
      }
      return;
    }
    const int pv = order[depth];
    // Candidates: neighbors of the matched backward neighbor with smallest
    // degree, then checked against the others.
    int anchor = -1;
    uint32_t anchor_deg = 0;
    std::vector<int> backs;
    for (int d = 0; d < depth; ++d) {
      int q = order[d];
      if (!p.HasEdge(pv, q)) continue;
      backs.push_back(q);
      uint32_t deg = g.degree(assigned[q]);
      if (anchor < 0 || deg < anchor_deg) {
        anchor = q;
        anchor_deg = deg;
      }
    }
    GAMMA_CHECK(anchor >= 0) << "matching order prefix not connected";
    for (VertexId cand : g.neighbors(assigned[anchor])) {
      if (!LabelOk(g, p, pv, cand)) continue;
      bool ok = true;
      for (int d = 0; d < depth && ok; ++d) {
        if (assigned[order[d]] == cand) ok = false;  // injectivity
      }
      for (int q : backs) {
        if (!ok) break;
        if (q == anchor) continue;
        if (!g.HasEdge(assigned[q], cand)) ok = false;
      }
      if (!ok) continue;
      assigned[pv] = cand;
      Extend(depth + 1);
    }
  }
};

}  // namespace

bool IsEmbedding(const Graph& g, const Pattern& p,
                 const std::vector<VertexId>& assignment) {
  if (assignment.size() != static_cast<std::size_t>(p.num_vertices()))
    return false;
  for (int i = 0; i < p.num_vertices(); ++i) {
    if (assignment[i] >= g.num_vertices()) return false;
    if (!LabelOk(g, p, i, assignment[i])) return false;
    for (int j = i + 1; j < p.num_vertices(); ++j) {
      if (assignment[i] == assignment[j]) return false;
      if (p.HasEdge(i, j) && !g.HasEdge(assignment[i], assignment[j]))
        return false;
    }
  }
  return true;
}

uint64_t CountEmbeddings(const Graph& g, const Pattern& p) {
  if (p.num_vertices() == 1) {
    if (!p.labeled()) return g.num_vertices();
    uint64_t c = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (LabelOk(g, p, 0, v)) ++c;
    }
    return c;
  }
  Matcher m(g, p);
  m.Run();
  return m.count;
}

uint64_t CountInstances(const Graph& g, const Pattern& p) {
  uint64_t embeddings = CountEmbeddings(g, p);
  return embeddings / static_cast<uint64_t>(p.CountAutomorphisms());
}

void EnumerateEmbeddings(const Graph& g, const Pattern& p,
                         std::vector<std::vector<VertexId>>* out) {
  out->clear();
  Matcher m(g, p);
  m.sink = out;
  m.Run();
}

Pattern PatternOfVertices(const Graph& g,
                          const std::vector<VertexId>& vertices,
                          bool use_labels) {
  Pattern p(static_cast<int>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    if (use_labels) p.SetLabel(static_cast<int>(i), g.label(vertices[i]));
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (g.HasEdge(vertices[i], vertices[j]))
        p.AddEdge(static_cast<int>(i), static_cast<int>(j));
    }
  }
  return p;
}

Pattern PatternOfEdges(const Graph& g, const std::vector<EdgeId>& edges,
                       bool use_labels) {
  std::vector<VertexId> verts;
  auto vertex_index = [&verts](VertexId v) {
    for (std::size_t i = 0; i < verts.size(); ++i) {
      if (verts[i] == v) return static_cast<int>(i);
    }
    verts.push_back(v);
    return static_cast<int>(verts.size() - 1);
  };
  std::vector<std::pair<int, int>> pattern_edges;
  for (EdgeId e : edges) {
    const Edge& edge = g.edge_list()[e];
    int a = vertex_index(edge.u);
    int b = vertex_index(edge.v);
    pattern_edges.emplace_back(a, b);
  }
  Pattern p(static_cast<int>(verts.size()));
  for (auto [a, b] : pattern_edges) p.AddEdge(a, b);
  if (use_labels) {
    for (std::size_t i = 0; i < verts.size(); ++i) {
      p.SetLabel(static_cast<int>(i), g.label(verts[i]));
    }
  }
  return p;
}

}  // namespace gpm::graph
