#include "graph/isomorphism.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace gpm::graph {
namespace {

bool LabelOk(const Graph& g, const Pattern& p, int pv, VertexId dv) {
  return p.label(pv) == Pattern::kAnyLabel || p.label(pv) == g.label(dv);
}

// Backtracking matcher over a connected matching order. Each recursion
// level extends the partial assignment by intersecting the candidate set
// implied by already-matched backward neighbors.
struct Matcher {
  const Graph& g;
  const Pattern& p;
  std::vector<int> order;
  std::vector<int> pos_in_order;  // pattern vertex -> depth
  std::vector<VertexId> assigned;
  uint64_t count = 0;
  std::vector<std::vector<VertexId>>* sink = nullptr;

  Matcher(const Graph& graph, const Pattern& pattern)
      : g(graph), p(pattern), order(pattern.DefaultMatchingOrder()) {
    pos_in_order.assign(p.num_vertices(), -1);
    for (std::size_t d = 0; d < order.size(); ++d)
      pos_in_order[order[d]] = static_cast<int>(d);
    assigned.assign(p.num_vertices(), 0);
  }

  void Run() {
    const int first = order[0];
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (!LabelOk(g, p, first, v)) continue;
      assigned[first] = v;
      Extend(1);
    }
  }

  void Extend(int depth) {
    if (depth == p.num_vertices()) {
      ++count;
      if (sink != nullptr) {
        std::vector<VertexId> emb(p.num_vertices());
        for (int i = 0; i < p.num_vertices(); ++i) emb[i] = assigned[i];
        sink->push_back(std::move(emb));
      }
      return;
    }
    const int pv = order[depth];
    // Candidates: neighbors of the matched backward neighbor with smallest
    // degree, then checked against the others.
    int anchor = -1;
    uint32_t anchor_deg = 0;
    std::vector<int> backs;
    for (int d = 0; d < depth; ++d) {
      int q = order[d];
      if (!p.HasEdge(pv, q)) continue;
      backs.push_back(q);
      uint32_t deg = g.degree(assigned[q]);
      if (anchor < 0 || deg < anchor_deg) {
        anchor = q;
        anchor_deg = deg;
      }
    }
    GAMMA_CHECK(anchor >= 0) << "matching order prefix not connected";
    for (VertexId cand : g.neighbors(assigned[anchor])) {
      if (!LabelOk(g, p, pv, cand)) continue;
      bool ok = true;
      for (int d = 0; d < depth && ok; ++d) {
        if (assigned[order[d]] == cand) ok = false;  // injectivity
      }
      for (int q : backs) {
        if (!ok) break;
        if (q == anchor) continue;
        if (!g.HasEdge(assigned[q], cand)) ok = false;
      }
      if (!ok) continue;
      assigned[pv] = cand;
      Extend(depth + 1);
    }
  }
};

}  // namespace

bool IsEmbedding(const Graph& g, const Pattern& p,
                 const std::vector<VertexId>& assignment) {
  if (assignment.size() != static_cast<std::size_t>(p.num_vertices()))
    return false;
  for (int i = 0; i < p.num_vertices(); ++i) {
    if (assignment[i] >= g.num_vertices()) return false;
    if (!LabelOk(g, p, i, assignment[i])) return false;
    for (int j = i + 1; j < p.num_vertices(); ++j) {
      if (assignment[i] == assignment[j]) return false;
      if (p.HasEdge(i, j) && !g.HasEdge(assignment[i], assignment[j]))
        return false;
    }
  }
  return true;
}

uint64_t CountEmbeddings(const Graph& g, const Pattern& p) {
  if (p.num_vertices() == 1) {
    if (!p.labeled()) return g.num_vertices();
    uint64_t c = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (LabelOk(g, p, 0, v)) ++c;
    }
    return c;
  }
  Matcher m(g, p);
  m.Run();
  return m.count;
}

uint64_t CountInstances(const Graph& g, const Pattern& p) {
  uint64_t embeddings = CountEmbeddings(g, p);
  return embeddings / static_cast<uint64_t>(p.CountAutomorphisms());
}

void EnumerateEmbeddings(const Graph& g, const Pattern& p,
                         std::vector<std::vector<VertexId>>* out) {
  out->clear();
  Matcher m(g, p);
  m.sink = out;
  m.Run();
}

Pattern PatternOfVertices(const Graph& g,
                          const std::vector<VertexId>& vertices,
                          bool use_labels) {
  Pattern p(static_cast<int>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    if (use_labels) p.SetLabel(static_cast<int>(i), g.label(vertices[i]));
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (g.HasEdge(vertices[i], vertices[j]))
        p.AddEdge(static_cast<int>(i), static_cast<int>(j));
    }
  }
  return p;
}

Pattern PatternOfEdges(const Graph& g, const std::vector<EdgeId>& edges,
                       bool use_labels) {
  std::vector<VertexId> verts;
  auto vertex_index = [&verts](VertexId v) {
    for (std::size_t i = 0; i < verts.size(); ++i) {
      if (verts[i] == v) return static_cast<int>(i);
    }
    verts.push_back(v);
    return static_cast<int>(verts.size() - 1);
  };
  std::vector<std::pair<int, int>> pattern_edges;
  for (EdgeId e : edges) {
    const Edge& edge = g.edge_list()[e];
    int a = vertex_index(edge.u);
    int b = vertex_index(edge.v);
    pattern_edges.emplace_back(a, b);
  }
  Pattern p(static_cast<int>(verts.size()));
  for (auto [a, b] : pattern_edges) p.AddEdge(a, b);
  if (use_labels) {
    for (std::size_t i = 0; i < verts.size(); ++i) {
      p.SetLabel(static_cast<int>(i), g.label(verts[i]));
    }
  }
  return p;
}

uint64_t CountConnectedOrderings(const Pattern& p) {
  const int n = p.num_vertices();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  uint64_t count = 0;
  do {
    if (p.ConnectedPrefix(perm)) ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return count;
}

std::vector<std::pair<int, int>> ConnectedEdgeOrder(const Pattern& p) {
  std::vector<std::pair<int, int>> remaining = p.EdgeList();
  std::vector<std::pair<int, int>> order;
  std::vector<bool> seen(p.num_vertices(), false);
  while (!remaining.empty()) {
    std::size_t pick = remaining.size();
    if (order.empty()) {
      pick = 0;
    } else {
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (seen[remaining[i].first] || seen[remaining[i].second]) {
          pick = i;
          break;
        }
      }
      GAMMA_CHECK(pick < remaining.size()) << "query graph not connected";
    }
    seen[remaining[pick].first] = true;
    seen[remaining[pick].second] = true;
    order.push_back(remaining[pick]);
    remaining.erase(remaining.begin() + pick);
  }
  return order;
}

namespace {

bool PrefixLabelOk(const Graph& g, const Pattern& q, int qv, VertexId dv) {
  return q.label(qv) == Pattern::kAnyLabel || q.label(qv) == g.label(dv);
}

// Backtracking assignment of query vertices to data vertices consistent
// with the edge sequence; both orientations of each data edge are tried.
bool TryAssign(const Graph& g, const std::vector<EdgeId>& edges,
               const Pattern& query,
               const std::vector<std::pair<int, int>>& query_edges,
               std::size_t idx, std::vector<int>& qv_to_dv,
               std::vector<int>& dv_owner_qv,
               std::vector<VertexId>& bound_dvs) {
  if (idx == edges.size()) return true;
  auto [qa, qb] = query_edges[idx];
  const Edge& e = g.edge_list()[edges[idx]];
  const VertexId ends[2] = {e.u, e.v};
  for (int o = 0; o < 2; ++o) {
    VertexId da = ends[o];
    VertexId db = ends[1 - o];
    if (!PrefixLabelOk(g, query, qa, da) ||
        !PrefixLabelOk(g, query, qb, db)) {
      continue;
    }
    // Binding checks: each query vertex maps to one data vertex and
    // vice versa (injective).
    auto find_owner = [&](VertexId dv) {
      for (std::size_t i = 0; i < bound_dvs.size(); ++i) {
        if (bound_dvs[i] == dv) return dv_owner_qv[i];
      }
      return -1;
    };
    int owner_a = find_owner(da);
    int owner_b = find_owner(db);
    if (qv_to_dv[qa] >= 0 && qv_to_dv[qa] != static_cast<int>(da)) continue;
    if (qv_to_dv[qb] >= 0 && qv_to_dv[qb] != static_cast<int>(db)) continue;
    if (owner_a >= 0 && owner_a != qa) continue;
    if (owner_b >= 0 && owner_b != qb) continue;
    // Bind (remember what we added to undo on backtrack).
    int added = 0;
    int prev_a = qv_to_dv[qa];
    int prev_b = qv_to_dv[qb];
    if (qv_to_dv[qa] < 0) {
      qv_to_dv[qa] = static_cast<int>(da);
      dv_owner_qv.push_back(qa);
      bound_dvs.push_back(da);
      ++added;
    }
    if (qv_to_dv[qb] < 0) {
      qv_to_dv[qb] = static_cast<int>(db);
      dv_owner_qv.push_back(qb);
      bound_dvs.push_back(db);
      ++added;
    }
    if (TryAssign(g, edges, query, query_edges, idx + 1, qv_to_dv,
                  dv_owner_qv, bound_dvs)) {
      return true;
    }
    for (int i = 0; i < added; ++i) {
      dv_owner_qv.pop_back();
      bound_dvs.pop_back();
    }
    qv_to_dv[qa] = prev_a;
    qv_to_dv[qb] = prev_b;
  }
  return false;
}

}  // namespace

bool MatchesQueryPrefix(const Graph& g, const std::vector<EdgeId>& edges,
                        const Pattern& query,
                        const std::vector<std::pair<int, int>>& query_edges) {
  GAMMA_CHECK(edges.size() <= query_edges.size()) << "prefix too long";
  std::vector<int> qv_to_dv(query.num_vertices(), -1);
  std::vector<int> dv_owner;
  std::vector<VertexId> bound;
  return TryAssign(g, edges, query, query_edges, 0, qv_to_dv, dv_owner,
                   bound);
}

}  // namespace gpm::graph
