#ifndef GAMMA_GRAPH_ISOMORPHISM_H_
#define GAMMA_GRAPH_ISOMORPHISM_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/pattern.h"

namespace gpm::graph {

/// True when `assignment` (pattern vertex i → data vertex assignment[i]) is
/// an injective, label- and edge-preserving embedding of `p` in `g`
/// (subgraph isomorphism; non-induced).
bool IsEmbedding(const Graph& g, const Pattern& p,
                 const std::vector<VertexId>& assignment);

/// Counts all embeddings (ordered, injective maps) of `p` in `g` with a
/// straightforward backtracking search. Reference oracle for tests and the
/// functional core of the CPU baselines.
uint64_t CountEmbeddings(const Graph& g, const Pattern& p);

/// Counts instances: embeddings divided by |Aut(p)|.
uint64_t CountInstances(const Graph& g, const Pattern& p);

/// Enumerates all embeddings into `out` (ordered by matching order); for
/// small test graphs only.
void EnumerateEmbeddings(const Graph& g, const Pattern& p,
                         std::vector<std::vector<VertexId>>* out);

/// Builds the pattern induced by `vertices` of `g` restricted to the edges
/// among them that are present in g (with data labels when `use_labels`).
/// This is the map_function of FPM aggregation: an embedding's shape.
Pattern PatternOfVertices(const Graph& g,
                          const std::vector<VertexId>& vertices,
                          bool use_labels);

/// Builds the pattern spanned by a set of undirected edge ids of `g` (the
/// e-ET variant used by edge extension). Vertices are numbered in first-seen
/// order; labels taken from `g` when `use_labels`.
Pattern PatternOfEdges(const Graph& g, const std::vector<EdgeId>& edges,
                       bool use_labels);

/// Number of vertex orderings of `p` whose every prefix is connected — the
/// per-instance multiplicity of union-neighborhood vertex extension (motif
/// census post-processing divides by it).
uint64_t CountConnectedOrderings(const Pattern& p);

/// A connected ordering of `p`'s edges: every edge after the first shares a
/// vertex with an earlier one (the prefix constraint edge-at-a-time matching
/// plans need).
std::vector<std::pair<int, int>> ConnectedEdgeOrder(const Pattern& p);

/// True when the edge-id sequence `edges` (in order) can be mapped to the
/// first `edges.size()` edges of `query_edges` (pairs over query vertices,
/// with `query` supplying labels) by a consistent injective vertex
/// assignment. The per-prefix constraint of binary-join matching.
bool MatchesQueryPrefix(const Graph& g, const std::vector<EdgeId>& edges,
                        const Pattern& query,
                        const std::vector<std::pair<int, int>>& query_edges);

}  // namespace gpm::graph

#endif  // GAMMA_GRAPH_ISOMORPHISM_H_
