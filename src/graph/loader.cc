#include "graph/loader.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "graph/generators.h"

namespace gpm::graph {

namespace {
constexpr uint64_t kBinaryMagic = 0x47414d4d41475231ull;  // "GAMMAGR1"
}  // namespace

Result<Graph> LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::unordered_map<uint64_t, VertexId> remap;
  auto intern = [&remap](uint64_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  std::vector<Edge> edges;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t a, b;
    if (!(ls >> a >> b)) {
      return Status::InvalidArgument("malformed edge line: " + line);
    }
    VertexId u = intern(a);
    VertexId v = intern(b);
    if (u == v) continue;
    edges.push_back({std::min(u, v), std::max(u, v)});
  }
  return Graph::FromEdges(static_cast<VertexId>(remap.size()), edges);
}

Status SaveEdgeListText(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  out << "# gamma edge list |V|=" << g.num_vertices()
      << " |E|=" << g.num_edges() << "\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) out << u << " " << v << "\n";
    }
  }
  return out ? Status::Ok() : Status::Internal("write failed: " + path);
}

Status SaveBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  auto put = [&out](const void* p, std::size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  };
  uint64_t magic = kBinaryMagic;
  uint64_t nv = g.num_vertices();
  uint64_t arcs = g.num_arcs();
  uint64_t nlabels = g.labels().size();
  put(&magic, sizeof magic);
  put(&nv, sizeof nv);
  put(&arcs, sizeof arcs);
  put(&nlabels, sizeof nlabels);
  put(g.row_ptr().data(), g.row_ptr().size() * sizeof(uint64_t));
  put(g.col().data(), g.col().size() * sizeof(VertexId));
  put(g.labels().data(), g.labels().size() * sizeof(Label));
  return out ? Status::Ok() : Status::Internal("write failed: " + path);
}

Result<Graph> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  auto get = [&in](void* p, std::size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    return static_cast<bool>(in);
  };
  uint64_t magic = 0, nv = 0, arcs = 0, nlabels = 0;
  if (!get(&magic, sizeof magic) || magic != kBinaryMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (!get(&nv, sizeof nv) || !get(&arcs, sizeof arcs) ||
      !get(&nlabels, sizeof nlabels)) {
    return Status::InvalidArgument("truncated header in " + path);
  }
  std::vector<uint64_t> row_ptr(nv + 1);
  std::vector<VertexId> col(arcs);
  std::vector<Label> labels(nlabels);
  if (!get(row_ptr.data(), row_ptr.size() * sizeof(uint64_t)) ||
      !get(col.data(), col.size() * sizeof(VertexId)) ||
      (nlabels > 0 && !get(labels.data(), labels.size() * sizeof(Label)))) {
    return Status::InvalidArgument("truncated body in " + path);
  }
  // Rebuild through FromEdges to revalidate invariants.
  std::vector<Edge> edges;
  edges.reserve(arcs / 2);
  for (VertexId u = 0; u < nv; ++u) {
    for (uint64_t i = row_ptr[u]; i < row_ptr[u + 1]; ++i) {
      if (u < col[i]) edges.push_back({u, col[i]});
    }
  }
  Graph g = Graph::FromEdges(static_cast<VertexId>(nv), edges);
  if (nlabels > 0) g.SetLabels(std::move(labels));
  return g;
}

}  // namespace gpm::graph
