#ifndef GAMMA_GRAPH_LOADER_H_
#define GAMMA_GRAPH_LOADER_H_

#include <string>

#include "common/status.h"
#include "graph/csr.h"

namespace gpm::graph {

/// Loads a whitespace-separated edge-list file ("u v" per line; lines
/// starting with '#' or '%' are comments, SNAP style). Vertex ids are
/// compacted to a dense range.
Result<Graph> LoadEdgeListText(const std::string& path);

/// Writes "u v" per undirected edge.
Status SaveEdgeListText(const Graph& g, const std::string& path);

/// Binary format: magic, vertex/edge counts, CSR arrays, optional labels.
/// Round-trips exactly, including labels.
Status SaveBinary(const Graph& g, const std::string& path);
Result<Graph> LoadBinary(const std::string& path);

}  // namespace gpm::graph

#endif  // GAMMA_GRAPH_LOADER_H_
