#include "graph/metrics.h"

#include <algorithm>
#include <queue>
#include <sstream>

namespace gpm::graph {

std::string GraphMetrics::ToString() const {
  std::ostringstream os;
  os << "|V|=" << num_vertices << " |E|=" << num_edges
     << " d_max=" << max_degree << " d_avg=" << avg_degree
     << " d_p50=" << degree_p50 << " d_p99=" << degree_p99
     << " skew=" << skew << " triangles=" << triangles
     << " clustering=" << clustering << " isolated=" << isolated_vertices
     << " components=" << connected_components;
  return os.str();
}

GraphMetrics ComputeMetrics(const Graph& g) {
  GraphMetrics m;
  m.num_vertices = g.num_vertices();
  m.num_edges = g.num_edges();
  m.max_degree = g.max_degree();
  m.avg_degree = g.average_degree();
  m.skew = m.avg_degree > 0 ? m.max_degree / m.avg_degree : 0;

  std::vector<uint32_t> degrees(g.num_vertices());
  uint64_t wedges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    degrees[v] = g.degree(v);
    if (degrees[v] == 0) ++m.isolated_vertices;
    wedges += static_cast<uint64_t>(degrees[v]) * (degrees[v] - 1) / 2;
  }
  std::sort(degrees.begin(), degrees.end());
  if (!degrees.empty()) {
    m.degree_p50 = degrees[degrees.size() / 2];
    m.degree_p99 = degrees[degrees.size() * 99 / 100];
  }

  // Exact triangle count via ordered intersection.
  std::vector<VertexId> scratch;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto nu = g.neighbors(u);
    auto higher = std::upper_bound(nu.begin(), nu.end(), u);
    for (auto it = higher; it != nu.end(); ++it) {
      VertexId v = *it;
      auto nv = g.neighbors(v);
      scratch.clear();
      std::set_intersection(higher, nu.end(),
                            std::upper_bound(nv.begin(), nv.end(), v),
                            nv.end(), std::back_inserter(scratch));
      m.triangles += scratch.size();
    }
  }
  m.clustering =
      wedges > 0 ? 3.0 * static_cast<double>(m.triangles) / wedges : 0;

  // Connected components by BFS.
  std::vector<bool> visited(g.num_vertices(), false);
  std::queue<VertexId> queue;
  for (VertexId root = 0; root < g.num_vertices(); ++root) {
    if (visited[root]) continue;
    ++m.connected_components;
    visited[root] = true;
    queue.push(root);
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop();
      for (VertexId u : g.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = true;
          queue.push(u);
        }
      }
    }
  }
  return m;
}

std::vector<std::size_t> DegreeHistogram(const Graph& g) {
  std::vector<std::size_t> hist;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    uint32_t d = g.degree(v);
    std::size_t bucket = 0;
    while ((2u << bucket) <= d) ++bucket;
    if (hist.size() <= bucket) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

}  // namespace gpm::graph
