#ifndef GAMMA_GRAPH_METRICS_H_
#define GAMMA_GRAPH_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"

namespace gpm::graph {

/// Summary statistics of a graph's structure — used to validate that the
/// synthetic dataset proxies carry the skew their originals are known for
/// (Table II bench) and by tests of the generators.
struct GraphMetrics {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0;
  double degree_p50 = 0;   ///< median degree
  double degree_p99 = 0;   ///< 99th-percentile degree
  /// Degree skew: max_degree / avg_degree (1 for regular graphs, large
  /// for power-law graphs).
  double skew = 0;
  uint64_t triangles = 0;
  /// Global clustering coefficient: 3 * triangles / wedges.
  double clustering = 0;
  std::size_t isolated_vertices = 0;
  std::size_t connected_components = 0;

  std::string ToString() const;
};

/// Computes the metrics. Triangle counting is exact (ordered merge
/// intersection), so keep inputs at bench scale.
GraphMetrics ComputeMetrics(const Graph& g);

/// Degree histogram in powers of two: bucket[i] counts vertices with
/// degree in [2^i, 2^{i+1}).
std::vector<std::size_t> DegreeHistogram(const Graph& g);

}  // namespace gpm::graph

#endif  // GAMMA_GRAPH_METRICS_H_
