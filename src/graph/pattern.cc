#include "graph/pattern.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>

#include "common/logging.h"

namespace gpm::graph {

Pattern::Pattern(int num_vertices) : n_(num_vertices) {
  GAMMA_CHECK(num_vertices >= 1 && num_vertices <= kMaxVertices)
      << "pattern size out of range: " << num_vertices;
  labels_.fill(kAnyLabel);
}

int Pattern::num_edges() const {
  int m = 0;
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      if (HasEdge(i, j)) ++m;
    }
  }
  return m;
}

void Pattern::AddEdge(int i, int j) {
  GAMMA_CHECK(i != j && i >= 0 && j >= 0 && i < n_ && j < n_)
      << "bad pattern edge (" << i << "," << j << ")";
  adj_[i] |= static_cast<uint8_t>(1u << j);
  adj_[j] |= static_cast<uint8_t>(1u << i);
}

int Pattern::degree(int i) const {
  return __builtin_popcount(adj_[i]);
}

bool Pattern::labeled() const {
  for (int i = 0; i < n_; ++i) {
    if (labels_[i] != kAnyLabel) return true;
  }
  return false;
}

std::vector<int> Pattern::BackwardNeighbors(int i, int limit) const {
  std::vector<int> out;
  for (int j = 0; j < limit; ++j) {
    if (HasEdge(i, j)) out.push_back(j);
  }
  return out;
}

std::vector<std::pair<int, int>> Pattern::EdgeList() const {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      if (HasEdge(i, j)) edges.emplace_back(i, j);
    }
  }
  return edges;
}

std::vector<int> Pattern::DefaultMatchingOrder() const {
  std::vector<int> order;
  std::vector<bool> matched(n_, false);
  int start = 0;
  for (int i = 1; i < n_; ++i) {
    if (degree(i) > degree(start)) start = i;
  }
  order.push_back(start);
  matched[start] = true;
  while (static_cast<int>(order.size()) < n_) {
    int best = -1, best_back = -1, best_deg = -1;
    for (int i = 0; i < n_; ++i) {
      if (matched[i]) continue;
      int back = 0;
      for (int j : order) {
        if (HasEdge(i, j)) ++back;
      }
      if (back > best_back ||
          (back == best_back && degree(i) > best_deg)) {
        best = i;
        best_back = back;
        best_deg = degree(i);
      }
    }
    order.push_back(best);
    matched[best] = true;
  }
  return order;
}

Pattern Pattern::Permuted(const std::vector<int>& perm) const {
  GAMMA_CHECK(static_cast<int>(perm.size()) == n_) << "bad permutation";
  Pattern out(n_);
  for (int i = 0; i < n_; ++i) {
    out.labels_[perm[i]] = labels_[i];
    for (int j = i + 1; j < n_; ++j) {
      if (HasEdge(i, j)) out.AddEdge(perm[i], perm[j]);
    }
  }
  return out;
}

int Pattern::CountAutomorphisms() const {
  std::vector<int> perm(n_);
  std::iota(perm.begin(), perm.end(), 0);
  int count = 0;
  do {
    bool auto_ok = true;
    for (int i = 0; i < n_ && auto_ok; ++i) {
      if (labels_[perm[i]] != labels_[i]) auto_ok = false;
      for (int j = i + 1; j < n_ && auto_ok; ++j) {
        if (HasEdge(i, j) != HasEdge(perm[i], perm[j])) auto_ok = false;
      }
    }
    if (auto_ok) ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return count;
}

namespace {

// Backtracking injective embedding of `p` into `q` (both tiny).
bool MapInto(const Pattern& p, const Pattern& q, int depth,
             std::array<int, Pattern::kMaxVertices>& assignment,
             uint8_t used_mask) {
  if (depth == p.num_vertices()) return true;
  for (int cand = 0; cand < q.num_vertices(); ++cand) {
    if ((used_mask >> cand) & 1u) continue;
    if (p.label(depth) != Pattern::kAnyLabel &&
        p.label(depth) != q.label(cand)) {
      continue;
    }
    bool ok = true;
    for (int j = 0; j < depth && ok; ++j) {
      if (p.HasEdge(depth, j) && !q.HasEdge(cand, assignment[j])) {
        ok = false;
      }
    }
    if (!ok) continue;
    assignment[depth] = cand;
    if (MapInto(p, q, depth + 1, assignment,
                static_cast<uint8_t>(used_mask | (1u << cand)))) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool Pattern::ContainedIn(const Pattern& other) const {
  if (num_vertices() > other.num_vertices()) return false;
  if (num_edges() > other.num_edges()) return false;
  std::array<int, kMaxVertices> assignment{};
  return MapInto(*this, other, 0, assignment, 0);
}

bool Pattern::ConnectedPrefix(const std::vector<int>& order) const {
  for (std::size_t k = 1; k < order.size(); ++k) {
    bool connected = false;
    for (std::size_t j = 0; j < k; ++j) {
      if (HasEdge(order[k], order[j])) connected = true;
    }
    if (!connected) return false;
  }
  return true;
}

std::string Pattern::DebugString() const {
  std::ostringstream os;
  os << "Pattern(n=" << n_ << ", edges={";
  bool first = true;
  for (auto [i, j] : EdgeList()) {
    if (!first) os << ",";
    os << i << "-" << j;
    first = false;
  }
  os << "}";
  if (labeled()) {
    os << ", labels=[";
    for (int i = 0; i < n_; ++i) {
      if (i > 0) os << ",";
      if (labels_[i] == kAnyLabel) {
        os << "*";
      } else {
        os << labels_[i];
      }
    }
    os << "]";
  }
  os << ")";
  return os.str();
}

Pattern Pattern::Triangle() { return Clique(3); }

Pattern Pattern::Clique(int k) {
  Pattern p(k);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) p.AddEdge(i, j);
  }
  return p;
}

Pattern Pattern::Path(int k) {
  Pattern p(k);
  for (int i = 0; i + 1 < k; ++i) p.AddEdge(i, i + 1);
  return p;
}

Pattern Pattern::Cycle(int k) {
  Pattern p = Path(k);
  p.AddEdge(k - 1, 0);
  return p;
}

Pattern Pattern::Star(int k) {
  Pattern p(k + 1);
  for (int i = 1; i <= k; ++i) p.AddEdge(0, i);
  return p;
}

Pattern Pattern::Diamond() {
  Pattern p = Cycle(4);
  p.AddEdge(0, 2);
  return p;
}

Pattern Pattern::TailedTriangle() {
  Pattern p(4);
  p.AddEdge(0, 1);
  p.AddEdge(1, 2);
  p.AddEdge(2, 0);
  p.AddEdge(0, 3);
  return p;
}

namespace {

// Shared hardening for the inline and file pattern forms: validates the
// collected edge and label token lists and assembles the Pattern. Rejects
// self-loops, duplicate edges, id gaps (an id below the maximum that
// appears in no edge), and labels that are not plain non-negative
// integers fitting below the kAnyLabel sentinel.
Result<Pattern> BuildPattern(const std::vector<std::pair<int, int>>& edges,
                             const std::vector<std::string>& labels) {
  if (edges.empty()) {
    return Status::InvalidArgument("pattern needs at least one edge");
  }
  int max_vertex = -1;
  uint8_t seen_vertices = 0;
  uint64_t seen_edges = 0;
  for (auto [a, b] : edges) {
    if (a < 0 || b < 0 || a >= Pattern::kMaxVertices ||
        b >= Pattern::kMaxVertices) {
      return Status::InvalidArgument(
          "pattern vertex out of range in edge (" + std::to_string(a) +
          "," + std::to_string(b) + "); ids must be 0.." +
          std::to_string(Pattern::kMaxVertices - 1));
    }
    if (a == b) {
      return Status::InvalidArgument("pattern has a self-loop at vertex " +
                                     std::to_string(a));
    }
    const int lo = std::min(a, b), hi = std::max(a, b);
    const uint64_t bit = 1ull << (lo * Pattern::kMaxVertices + hi);
    if (seen_edges & bit) {
      return Status::InvalidArgument("duplicate pattern edge (" +
                                     std::to_string(lo) + "," +
                                     std::to_string(hi) + ")");
    }
    seen_edges |= bit;
    seen_vertices |= static_cast<uint8_t>((1u << a) | (1u << b));
    max_vertex = std::max({max_vertex, a, b});
  }
  for (int v = 0; v < max_vertex; ++v) {
    if (!((seen_vertices >> v) & 1u)) {
      return Status::InvalidArgument(
          "pattern vertex ids are not contiguous: vertex " +
          std::to_string(v) + " appears in no edge but vertex " +
          std::to_string(max_vertex) + " does");
    }
  }
  if (!labels.empty() &&
      static_cast<int>(labels.size()) != max_vertex + 1) {
    return Status::InvalidArgument("expected one label per vertex (" +
                                   std::to_string(max_vertex + 1) +
                                   "), got " +
                                   std::to_string(labels.size()));
  }

  Pattern p(max_vertex + 1);
  for (auto [a, b] : edges) p.AddEdge(a, b);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::string& token = labels[i];
    if (token == "*") continue;  // wildcard is the default
    char* end = nullptr;
    errno = 0;
    const long long l = std::strtoll(token.c_str(), &end, 10);
    if (token.empty() || *end != '\0' || errno == ERANGE || l < 0 ||
        l >= static_cast<long long>(Pattern::kAnyLabel)) {
      return Status::InvalidArgument(
          "bad label '" + token +
          "' (want '*' or an integer in [0, 4294967294])");
    }
    p.SetLabel(static_cast<int>(i), static_cast<Label>(l));
  }
  return p;
}

}  // namespace

Result<Pattern> ParsePattern(const std::string& text) {
  std::string edges_part = text;
  std::string labels_part;
  bool has_labels = false;
  if (auto semi = text.find(';'); semi != std::string::npos) {
    edges_part = text.substr(0, semi);
    labels_part = text.substr(semi + 1);
    const std::string prefix = "labels=";
    if (labels_part.rfind(prefix, 0) != 0) {
      return Status::InvalidArgument("expected ';labels=...', got '" +
                                     labels_part + "'");
    }
    labels_part = labels_part.substr(prefix.size());
    has_labels = true;
  }

  // Parse edges "a-b,c-d,...".
  std::vector<std::pair<int, int>> edges;
  std::istringstream es(edges_part);
  std::string token;
  while (std::getline(es, token, ',')) {
    auto dash = token.find('-');
    if (dash == std::string::npos || dash == 0) {
      return Status::InvalidArgument("bad edge token '" + token + "'");
    }
    char* end = nullptr;
    long a = std::strtol(token.c_str(), &end, 10);
    if (end != token.c_str() + dash) {
      return Status::InvalidArgument("bad vertex in '" + token + "'");
    }
    long b = std::strtol(token.c_str() + dash + 1, &end, 10);
    if (end == token.c_str() + dash + 1 || *end != '\0') {
      return Status::InvalidArgument("bad vertex in '" + token + "'");
    }
    if (a < 0 || b < 0 || a > Pattern::kMaxVertices ||
        b > Pattern::kMaxVertices) {
      return Status::InvalidArgument("vertex out of range in '" + token +
                                     "'");
    }
    edges.emplace_back(static_cast<int>(a), static_cast<int>(b));
  }

  std::vector<std::string> labels;
  if (has_labels) {
    std::istringstream ls(labels_part);
    while (std::getline(ls, token, ',')) labels.push_back(token);
    if (labels.empty()) {
      return Status::InvalidArgument("';labels=' lists no labels");
    }
  }
  return BuildPattern(edges, labels);
}

Result<Pattern> ParsePatternFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::InvalidArgument("cannot open " + path);
  std::vector<std::pair<int, int>> edges;
  std::vector<std::string> labels;
  bool has_labels = false;
  std::string line;
  while (std::getline(in, line)) {
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first)) continue;
    if (first == "labels") {
      if (has_labels) {
        return Status::InvalidArgument(
            "pattern file has more than one labels line");
      }
      has_labels = true;
      std::string l;
      while (tokens >> l) labels.push_back(l);
      if (labels.empty()) {
        return Status::InvalidArgument("labels line lists no labels");
      }
      continue;
    }
    // Strictly-integer endpoints: atoi-style silent truncation would turn
    // a typo like '1O' into vertex 1.
    auto parse_vertex = [](const std::string& tok, int* out) {
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(tok.c_str(), &end, 10);
      if (tok.empty() || *end != '\0' || errno == ERANGE || v < 0 ||
          v > Pattern::kMaxVertices) {
        return false;
      }
      *out = static_cast<int>(v);
      return true;
    };
    int u = 0, v = 0;
    std::string second, extra;
    if (!(tokens >> second)) {
      return Status::InvalidArgument("bad pattern line: " + line);
    }
    if (tokens >> extra) {
      return Status::InvalidArgument("trailing tokens on pattern line: " +
                                     line);
    }
    if (!parse_vertex(first, &u) || !parse_vertex(second, &v)) {
      return Status::InvalidArgument("bad pattern edge: " + line);
    }
    edges.emplace_back(u, v);
  }
  return BuildPattern(edges, labels);
}

Pattern Pattern::SmQuery(int which, uint32_t num_labels) {
  auto lbl = [num_labels](uint32_t i) { return i % num_labels; };
  switch (which) {
    case 1: {
      Pattern p = Triangle();
      p.SetLabel(0, lbl(0));
      p.SetLabel(1, lbl(1));
      p.SetLabel(2, lbl(2));
      return p;
    }
    case 2: {
      Pattern p = TailedTriangle();
      p.SetLabel(0, lbl(0));
      p.SetLabel(1, lbl(1));
      p.SetLabel(2, lbl(0));
      p.SetLabel(3, lbl(2));
      return p;
    }
    case 3: {
      Pattern p = Diamond();
      p.SetLabel(0, lbl(0));
      p.SetLabel(1, lbl(1));
      p.SetLabel(2, lbl(1));
      p.SetLabel(3, lbl(2));
      return p;
    }
    default:
      GAMMA_LOG(Fatal) << "unknown SM query " << which;
  }
  return Pattern(1);
}

}  // namespace gpm::graph
