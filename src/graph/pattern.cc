#include "graph/pattern.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "common/logging.h"

namespace gpm::graph {

Pattern::Pattern(int num_vertices) : n_(num_vertices) {
  GAMMA_CHECK(num_vertices >= 1 && num_vertices <= kMaxVertices)
      << "pattern size out of range: " << num_vertices;
  labels_.fill(kAnyLabel);
}

int Pattern::num_edges() const {
  int m = 0;
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      if (HasEdge(i, j)) ++m;
    }
  }
  return m;
}

void Pattern::AddEdge(int i, int j) {
  GAMMA_CHECK(i != j && i >= 0 && j >= 0 && i < n_ && j < n_)
      << "bad pattern edge (" << i << "," << j << ")";
  adj_[i] |= static_cast<uint8_t>(1u << j);
  adj_[j] |= static_cast<uint8_t>(1u << i);
}

int Pattern::degree(int i) const {
  return __builtin_popcount(adj_[i]);
}

bool Pattern::labeled() const {
  for (int i = 0; i < n_; ++i) {
    if (labels_[i] != kAnyLabel) return true;
  }
  return false;
}

std::vector<int> Pattern::BackwardNeighbors(int i, int limit) const {
  std::vector<int> out;
  for (int j = 0; j < limit; ++j) {
    if (HasEdge(i, j)) out.push_back(j);
  }
  return out;
}

std::vector<std::pair<int, int>> Pattern::EdgeList() const {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      if (HasEdge(i, j)) edges.emplace_back(i, j);
    }
  }
  return edges;
}

std::vector<int> Pattern::DefaultMatchingOrder() const {
  std::vector<int> order;
  std::vector<bool> matched(n_, false);
  int start = 0;
  for (int i = 1; i < n_; ++i) {
    if (degree(i) > degree(start)) start = i;
  }
  order.push_back(start);
  matched[start] = true;
  while (static_cast<int>(order.size()) < n_) {
    int best = -1, best_back = -1, best_deg = -1;
    for (int i = 0; i < n_; ++i) {
      if (matched[i]) continue;
      int back = 0;
      for (int j : order) {
        if (HasEdge(i, j)) ++back;
      }
      if (back > best_back ||
          (back == best_back && degree(i) > best_deg)) {
        best = i;
        best_back = back;
        best_deg = degree(i);
      }
    }
    order.push_back(best);
    matched[best] = true;
  }
  return order;
}

Pattern Pattern::Permuted(const std::vector<int>& perm) const {
  GAMMA_CHECK(static_cast<int>(perm.size()) == n_) << "bad permutation";
  Pattern out(n_);
  for (int i = 0; i < n_; ++i) {
    out.labels_[perm[i]] = labels_[i];
    for (int j = i + 1; j < n_; ++j) {
      if (HasEdge(i, j)) out.AddEdge(perm[i], perm[j]);
    }
  }
  return out;
}

int Pattern::CountAutomorphisms() const {
  std::vector<int> perm(n_);
  std::iota(perm.begin(), perm.end(), 0);
  int count = 0;
  do {
    bool auto_ok = true;
    for (int i = 0; i < n_ && auto_ok; ++i) {
      if (labels_[perm[i]] != labels_[i]) auto_ok = false;
      for (int j = i + 1; j < n_ && auto_ok; ++j) {
        if (HasEdge(i, j) != HasEdge(perm[i], perm[j])) auto_ok = false;
      }
    }
    if (auto_ok) ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return count;
}

namespace {

// Backtracking injective embedding of `p` into `q` (both tiny).
bool MapInto(const Pattern& p, const Pattern& q, int depth,
             std::array<int, Pattern::kMaxVertices>& assignment,
             uint8_t used_mask) {
  if (depth == p.num_vertices()) return true;
  for (int cand = 0; cand < q.num_vertices(); ++cand) {
    if ((used_mask >> cand) & 1u) continue;
    if (p.label(depth) != Pattern::kAnyLabel &&
        p.label(depth) != q.label(cand)) {
      continue;
    }
    bool ok = true;
    for (int j = 0; j < depth && ok; ++j) {
      if (p.HasEdge(depth, j) && !q.HasEdge(cand, assignment[j])) {
        ok = false;
      }
    }
    if (!ok) continue;
    assignment[depth] = cand;
    if (MapInto(p, q, depth + 1, assignment,
                static_cast<uint8_t>(used_mask | (1u << cand)))) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool Pattern::ContainedIn(const Pattern& other) const {
  if (num_vertices() > other.num_vertices()) return false;
  if (num_edges() > other.num_edges()) return false;
  std::array<int, kMaxVertices> assignment{};
  return MapInto(*this, other, 0, assignment, 0);
}

bool Pattern::ConnectedPrefix(const std::vector<int>& order) const {
  for (std::size_t k = 1; k < order.size(); ++k) {
    bool connected = false;
    for (std::size_t j = 0; j < k; ++j) {
      if (HasEdge(order[k], order[j])) connected = true;
    }
    if (!connected) return false;
  }
  return true;
}

std::string Pattern::DebugString() const {
  std::ostringstream os;
  os << "Pattern(n=" << n_ << ", edges={";
  bool first = true;
  for (auto [i, j] : EdgeList()) {
    if (!first) os << ",";
    os << i << "-" << j;
    first = false;
  }
  os << "}";
  if (labeled()) {
    os << ", labels=[";
    for (int i = 0; i < n_; ++i) {
      if (i > 0) os << ",";
      if (labels_[i] == kAnyLabel) {
        os << "*";
      } else {
        os << labels_[i];
      }
    }
    os << "]";
  }
  os << ")";
  return os.str();
}

Pattern Pattern::Triangle() { return Clique(3); }

Pattern Pattern::Clique(int k) {
  Pattern p(k);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) p.AddEdge(i, j);
  }
  return p;
}

Pattern Pattern::Path(int k) {
  Pattern p(k);
  for (int i = 0; i + 1 < k; ++i) p.AddEdge(i, i + 1);
  return p;
}

Pattern Pattern::Cycle(int k) {
  Pattern p = Path(k);
  p.AddEdge(k - 1, 0);
  return p;
}

Pattern Pattern::Star(int k) {
  Pattern p(k + 1);
  for (int i = 1; i <= k; ++i) p.AddEdge(0, i);
  return p;
}

Pattern Pattern::Diamond() {
  Pattern p = Cycle(4);
  p.AddEdge(0, 2);
  return p;
}

Pattern Pattern::TailedTriangle() {
  Pattern p(4);
  p.AddEdge(0, 1);
  p.AddEdge(1, 2);
  p.AddEdge(2, 0);
  p.AddEdge(0, 3);
  return p;
}

Result<Pattern> ParsePattern(const std::string& text) {
  std::string edges_part = text;
  std::string labels_part;
  if (auto semi = text.find(';'); semi != std::string::npos) {
    edges_part = text.substr(0, semi);
    labels_part = text.substr(semi + 1);
    const std::string prefix = "labels=";
    if (labels_part.rfind(prefix, 0) != 0) {
      return Status::InvalidArgument("expected ';labels=...', got '" +
                                     labels_part + "'");
    }
    labels_part = labels_part.substr(prefix.size());
  }

  // Parse edges "a-b,c-d,...".
  std::vector<std::pair<int, int>> edges;
  int max_vertex = -1;
  std::istringstream es(edges_part);
  std::string token;
  while (std::getline(es, token, ',')) {
    auto dash = token.find('-');
    if (dash == std::string::npos) {
      return Status::InvalidArgument("bad edge token '" + token + "'");
    }
    char* end = nullptr;
    long a = std::strtol(token.c_str(), &end, 10);
    if (end != token.c_str() + dash) {
      return Status::InvalidArgument("bad vertex in '" + token + "'");
    }
    long b = std::strtol(token.c_str() + dash + 1, &end, 10);
    if (*end != '\0') {
      return Status::InvalidArgument("bad vertex in '" + token + "'");
    }
    if (a < 0 || b < 0 || a >= Pattern::kMaxVertices ||
        b >= Pattern::kMaxVertices || a == b) {
      return Status::InvalidArgument("vertex out of range in '" + token +
                                     "'");
    }
    edges.emplace_back(static_cast<int>(a), static_cast<int>(b));
    max_vertex = std::max(max_vertex, static_cast<int>(std::max(a, b)));
  }
  if (edges.empty()) {
    return Status::InvalidArgument("pattern needs at least one edge");
  }

  Pattern p(max_vertex + 1);
  for (auto [a, b] : edges) p.AddEdge(a, b);

  if (!labels_part.empty()) {
    std::istringstream ls(labels_part);
    int i = 0;
    while (std::getline(ls, token, ',')) {
      if (i > max_vertex) {
        return Status::InvalidArgument("more labels than vertices");
      }
      if (token == "*") {
        p.SetLabel(i, Pattern::kAnyLabel);
      } else {
        char* end = nullptr;
        long l = std::strtol(token.c_str(), &end, 10);
        if (*end != '\0' || l < 0) {
          return Status::InvalidArgument("bad label '" + token + "'");
        }
        p.SetLabel(i, static_cast<Label>(l));
      }
      ++i;
    }
    if (i != max_vertex + 1) {
      return Status::InvalidArgument("expected one label per vertex");
    }
  }
  return p;
}

Pattern Pattern::SmQuery(int which, uint32_t num_labels) {
  auto lbl = [num_labels](uint32_t i) { return i % num_labels; };
  switch (which) {
    case 1: {
      Pattern p = Triangle();
      p.SetLabel(0, lbl(0));
      p.SetLabel(1, lbl(1));
      p.SetLabel(2, lbl(2));
      return p;
    }
    case 2: {
      Pattern p = TailedTriangle();
      p.SetLabel(0, lbl(0));
      p.SetLabel(1, lbl(1));
      p.SetLabel(2, lbl(0));
      p.SetLabel(3, lbl(2));
      return p;
    }
    case 3: {
      Pattern p = Diamond();
      p.SetLabel(0, lbl(0));
      p.SetLabel(1, lbl(1));
      p.SetLabel(2, lbl(1));
      p.SetLabel(3, lbl(2));
      return p;
    }
    default:
      GAMMA_LOG(Fatal) << "unknown SM query " << which;
  }
  return Pattern(1);
}

}  // namespace gpm::graph
