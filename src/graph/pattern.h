#ifndef GAMMA_GRAPH_PATTERN_H_
#define GAMMA_GRAPH_PATTERN_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/csr.h"

namespace gpm::graph {

/// A small pattern / query graph (≤ kMaxVertices vertices), stored as an
/// adjacency bit matrix plus per-vertex labels.
///
/// Patterns play two roles in GAMMA: as the query graph G_q in subgraph
/// matching (filtering constraint, Fig. 3), and as the canonical shape an
/// embedding maps to during aggregation (FPM pattern table, §III-B2).
class Pattern {
 public:
  static constexpr int kMaxVertices = 8;
  /// Wildcard label: matches any data-vertex label.
  static constexpr Label kAnyLabel = 0xffffffffu;

  Pattern() = default;
  explicit Pattern(int num_vertices);

  int num_vertices() const { return n_; }
  int num_edges() const;

  void AddEdge(int i, int j);
  bool HasEdge(int i, int j) const {
    return (adj_[i] >> j) & 1u;
  }
  int degree(int i) const;

  void SetLabel(int i, Label l) { labels_[i] = l; }
  Label label(int i) const { return labels_[i]; }
  bool labeled() const;

  /// Neighbors of pattern vertex `i` with index < `limit` (the already
  /// matched prefix in a matching order).
  std::vector<int> BackwardNeighbors(int i, int limit) const;

  /// Edges as (i, j) with i < j, lexicographic.
  std::vector<std::pair<int, int>> EdgeList() const;

  /// A connected matching order: starts at the max-degree vertex, then
  /// repeatedly appends the unmatched vertex with most matched neighbors
  /// (ties: higher degree). Every prefix is connected, which WOJ-style
  /// vertex extension requires (Algorithm 1).
  std::vector<int> DefaultMatchingOrder() const;

  /// Returns the pattern with vertices renumbered by `perm`
  /// (new index perm[i] = old i).
  Pattern Permuted(const std::vector<int>& perm) const;

  /// Number of automorphisms (label-preserving). Used to convert embedding
  /// counts to instance counts.
  int CountAutomorphisms() const;

  /// True when this pattern maps injectively into `other` preserving edges
  /// and labels (subgraph containment between patterns; used to compute
  /// maximal frequent patterns).
  bool ContainedIn(const Pattern& other) const;

  bool ConnectedPrefix(const std::vector<int>& order) const;

  std::string DebugString() const;

  friend bool operator==(const Pattern& a, const Pattern& b) {
    if (a.n_ != b.n_) return false;
    for (int i = 0; i < a.n_; ++i) {
      if (a.adj_[i] != b.adj_[i] || a.labels_[i] != b.labels_[i])
        return false;
    }
    return true;
  }

  // -- Canned shapes (unlabeled unless noted) -------------------------------
  static Pattern Triangle();
  static Pattern Clique(int k);
  static Pattern Path(int k);    // k vertices, k-1 edges
  static Pattern Cycle(int k);   // k vertices, k edges
  static Pattern Star(int k);    // center + k leaves
  static Pattern Diamond();      // 4-cycle plus one chord
  static Pattern TailedTriangle();

  /// The three SM queries of the paper's Fig. 13 over `num_labels` labels:
  /// q1 = labeled triangle, q2 = labeled 4-path, q3 = labeled diamond.
  static Pattern SmQuery(int which, uint32_t num_labels);

 private:
  int n_ = 0;
  std::array<uint8_t, kMaxVertices> adj_{};
  std::array<Label, kMaxVertices> labels_{};
};

/// Parses a pattern from a compact text form: an edge list
/// "0-1,1-2,2-0", optionally followed by ";labels=a,b,c" with one label
/// per vertex ("*" = wildcard). Vertex ids must be 0..kMaxVertices-1 and
/// form a contiguous range (every id below the maximum must appear in
/// some edge). Self-loops, duplicate edges, non-integer or out-of-range
/// labels (a label must fit in 32 bits and may not collide with the
/// kAnyLabel sentinel), and trailing garbage are rejected with
/// kInvalidArgument. Example: "0-1,1-2,2-0;labels=0,1,*".
Result<Pattern> ParsePattern(const std::string& text);

/// Parses a pattern file: '#' comments, one 'u v' edge per line over
/// vertices 0..k-1, and an optional 'labels l0 l1 ...' line ('*' =
/// wildcard, one label per vertex). Enforces the same hardening rules as
/// ParsePattern (no self-loops, duplicates, gaps, or malformed numbers).
Result<Pattern> ParsePatternFile(const std::string& path);

}  // namespace gpm::graph

#endif  // GAMMA_GRAPH_PATTERN_H_
