#include "graph/reorder.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/logging.h"
#include "common/random.h"

namespace gpm::graph {

const char* ReorderStrategyName(ReorderStrategy strategy) {
  switch (strategy) {
    case ReorderStrategy::kDegreeDescending:
      return "degree-desc";
    case ReorderStrategy::kBfs:
      return "bfs";
    case ReorderStrategy::kRandom:
      return "random";
    case ReorderStrategy::kDegeneracy:
      return "degeneracy";
  }
  return "?";
}

uint32_t DegeneracyOrder(const Graph& g, std::vector<VertexId>* order) {
  const VertexId n = static_cast<VertexId>(g.num_vertices());
  order->clear();
  order->reserve(n);
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket queue over current degrees (classic O(V+E) peeling).
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  std::vector<uint32_t> position(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    position[v] = static_cast<uint32_t>(buckets[degree[v]].size());
    buckets[degree[v]].push_back(v);
  }
  std::vector<bool> removed(n, false);
  uint32_t degeneracy = 0;
  uint32_t cursor = 0;
  while (order->size() < n) {
    while (cursor <= max_degree && buckets[cursor].empty()) ++cursor;
    // Peeling re-files vertices into lower buckets lazily; rewind when a
    // lower bucket received fresh entries.
    while (cursor > 0 && !buckets[cursor - 1].empty()) --cursor;
    VertexId v = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (removed[v] || degree[v] != cursor) continue;  // stale entry
    removed[v] = true;
    degeneracy = std::max(degeneracy, cursor);
    order->push_back(v);
    for (VertexId u : g.neighbors(v)) {
      if (removed[u] || degree[u] == 0) continue;
      --degree[u];
      buckets[degree[u]].push_back(u);
    }
  }
  return degeneracy;
}

std::vector<VertexId> ReorderPermutation(const Graph& g,
                                         ReorderStrategy strategy,
                                         uint64_t seed) {
  const VertexId n = static_cast<VertexId>(g.num_vertices());
  std::vector<VertexId> order(n);  // order[i] = old id placed at new id i
  std::iota(order.begin(), order.end(), 0);

  switch (strategy) {
    case ReorderStrategy::kDegreeDescending:
      std::stable_sort(order.begin(), order.end(),
                       [&g](VertexId a, VertexId b) {
                         return g.degree(a) > g.degree(b);
                       });
      break;
    case ReorderStrategy::kBfs: {
      std::vector<bool> visited(n, false);
      std::vector<VertexId> bfs;
      bfs.reserve(n);
      // Start from the max-degree vertex of each component, by degree.
      std::vector<VertexId> roots = order;
      std::stable_sort(roots.begin(), roots.end(),
                       [&g](VertexId a, VertexId b) {
                         return g.degree(a) > g.degree(b);
                       });
      std::queue<VertexId> queue;
      for (VertexId root : roots) {
        if (visited[root]) continue;
        visited[root] = true;
        queue.push(root);
        while (!queue.empty()) {
          VertexId v = queue.front();
          queue.pop();
          bfs.push_back(v);
          for (VertexId u : g.neighbors(v)) {
            if (!visited[u]) {
              visited[u] = true;
              queue.push(u);
            }
          }
        }
      }
      order = std::move(bfs);
      break;
    }
    case ReorderStrategy::kRandom: {
      Rng rng(seed);
      for (VertexId i = n; i > 1; --i) {
        VertexId j = static_cast<VertexId>(rng.NextBounded(i));
        std::swap(order[i - 1], order[j]);
      }
      break;
    }
    case ReorderStrategy::kDegeneracy: {
      DegeneracyOrder(g, &order);
      break;
    }
  }

  // Invert: perm[old] = new.
  std::vector<VertexId> perm(n);
  for (VertexId i = 0; i < n; ++i) perm[order[i]] = i;
  return perm;
}

Graph ApplyPermutation(const Graph& g, const std::vector<VertexId>& perm) {
  GAMMA_CHECK(perm.size() == g.num_vertices()) << "permutation size";
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) {
        VertexId a = perm[u], b = perm[v];
        edges.push_back({std::min(a, b), std::max(a, b)});
      }
    }
  }
  Graph out = Graph::FromEdges(static_cast<VertexId>(g.num_vertices()),
                               edges);
  if (g.labeled()) {
    std::vector<Label> labels(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      labels[perm[v]] = g.label(v);
    }
    out.SetLabels(std::move(labels));
  }
  return out;
}

Graph Reorder(const Graph& g, ReorderStrategy strategy, uint64_t seed) {
  return ApplyPermutation(g, ReorderPermutation(g, strategy, seed));
}

}  // namespace gpm::graph
