#ifndef GAMMA_GRAPH_REORDER_H_
#define GAMMA_GRAPH_REORDER_H_

#include <vector>

#include "graph/csr.h"

namespace gpm::graph {

/// Vertex reordering strategies. Reordering changes which adjacency lists
/// share memory pages, and therefore how much the unified-memory page
/// buffer and the access-heat policy can exploit locality (§VII-C cites
/// graph reordering as a standard lever for improving UM/zero-copy
/// performance).
enum class ReorderStrategy {
  /// Vertices sorted by decreasing degree: hub lists cluster into few hot
  /// pages, which is the friendliest layout for the hybrid policy.
  kDegreeDescending,
  /// BFS order from the max-degree vertex: neighborhoods cluster, helping
  /// spatial locality of extension frontiers.
  kBfs,
  /// A deterministic pseudo-random shuffle: the adversarial layout used by
  /// the ablation benches.
  kRandom,
  /// Degeneracy (k-core peeling) order: repeatedly remove the minimum-
  /// degree vertex. Ascending-id clique enumeration on a degeneracy-
  /// ordered graph bounds every candidate intersection by the core number
  /// — the standard orientation trick for k-clique on skewed graphs.
  kDegeneracy,
};

const char* ReorderStrategyName(ReorderStrategy strategy);

/// Computes the degeneracy (k-core peeling) order into `order` (peel
/// sequence, first-removed first) and returns the graph's degeneracy —
/// the maximum degree seen at removal time, which bounds the forward
/// neighborhood of every vertex under this order.
uint32_t DegeneracyOrder(const Graph& g, std::vector<VertexId>* order);

/// Computes the permutation (old id -> new id) for `strategy`.
std::vector<VertexId> ReorderPermutation(const Graph& g,
                                         ReorderStrategy strategy,
                                         uint64_t seed = 1);

/// Returns `g` with vertices renumbered by `perm` (old id v becomes
/// perm[v]); labels follow their vertices.
Graph ApplyPermutation(const Graph& g, const std::vector<VertexId>& perm);

/// Convenience: ReorderPermutation + ApplyPermutation.
Graph Reorder(const Graph& g, ReorderStrategy strategy, uint64_t seed = 1);

}  // namespace gpm::graph

#endif  // GAMMA_GRAPH_REORDER_H_
