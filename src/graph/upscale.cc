#include "graph/upscale.h"

#include <numeric>

#include "common/logging.h"
#include "graph/generators.h"

namespace gpm::graph {

Graph Upscale(const Graph& g, int factor, Rng* rng) {
  GAMMA_CHECK(factor >= 1) << "upscale factor must be >= 1";
  const VertexId n = static_cast<VertexId>(g.num_vertices());
  std::vector<Edge> edges;
  edges.reserve(g.num_edges() * factor);
  std::vector<int> perm(factor);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u >= v) continue;
      std::iota(perm.begin(), perm.end(), 0);
      // Fisher-Yates using the shared RNG: a fresh permutation per edge.
      for (int i = factor - 1; i > 0; --i) {
        int j = static_cast<int>(rng->NextBounded(i + 1));
        std::swap(perm[i], perm[j]);
      }
      for (int i = 0; i < factor; ++i) {
        VertexId cu = u + static_cast<VertexId>(i) * n;
        VertexId cv = v + static_cast<VertexId>(perm[i]) * n;
        edges.push_back({std::min(cu, cv), std::max(cu, cv)});
      }
    }
  }
  Graph scaled = Graph::FromEdges(n * factor, edges);
  if (g.labeled()) {
    std::vector<Label> labels(scaled.num_vertices());
    for (std::size_t v = 0; v < scaled.num_vertices(); ++v) {
      labels[v] = g.label(static_cast<VertexId>(v % n));
    }
    scaled.SetLabels(std::move(labels));
  }
  return scaled;
}

}  // namespace gpm::graph
