#ifndef GAMMA_GRAPH_UPSCALE_H_
#define GAMMA_GRAPH_UPSCALE_H_

#include "common/random.h"
#include "graph/csr.h"

namespace gpm::graph {

/// Graph upscaling [33], used by the paper to build com-lj*8 and soc-Live*5.
///
/// Produces a graph with `factor` times the vertices and edges of `g` while
/// preserving the degree distribution: each vertex v becomes `factor` clones
/// v_0..v_{factor-1}; for each original edge (u, v), clone i of u is
/// connected to clone pi_e(i) of v, where pi_e is a random permutation drawn
/// per edge. Labels are inherited by clones.
Graph Upscale(const Graph& g, int factor, Rng* rng);

}  // namespace gpm::graph

#endif  // GAMMA_GRAPH_UPSCALE_H_
