#include <gtest/gtest.h>

#include "core/access_heat.h"
#include "core/adaptive_access.h"
#include "graph/generators.h"
#include "gpusim/device.h"

namespace gpm::core {
namespace {

TEST(AccessHeatTest, SpatialLocAccumulatesBytesTimesAccesses) {
  AccessHeatTracker t(16384, 4096);  // 4 pages
  t.BeginExtension();
  t.AddPlannedAccess(0, 100, 3);      // page 0: 300
  t.AddPlannedAccess(4096, 50, 2);    // page 1: 100
  t.FinalizeExtension();
  EXPECT_DOUBLE_EQ(t.spatial()[0], 300.0);
  EXPECT_DOUBLE_EQ(t.spatial()[1], 100.0);
  EXPECT_DOUBLE_EQ(t.spatial()[2], 0.0);
}

TEST(AccessHeatTest, AccessSpanningPagesSplitsByBytes) {
  AccessHeatTracker t(16384, 4096);
  t.BeginExtension();
  t.AddPlannedAccess(4000, 200, 1);  // 96 bytes on page 0, 104 on page 1
  t.FinalizeExtension();
  EXPECT_DOUBLE_EQ(t.spatial()[0], 96.0);
  EXPECT_DOUBLE_EQ(t.spatial()[1], 104.0);
}

TEST(AccessHeatTest, FirstExtensionHeatIsPureSpatial) {
  AccessHeatTracker t(8192, 4096);
  t.BeginExtension();
  t.AddPlannedAccess(0, 10, 1);
  const auto& heat = t.FinalizeExtension();
  EXPECT_DOUBLE_EQ(heat[0], 10.0);
}

TEST(AccessHeatTest, TemporalHistoryRollsForward) {
  AccessHeatTracker t(8192, 4096);
  t.BeginExtension();
  t.AddPlannedAccess(0, 100, 1);
  t.FinalizeExtension();
  t.BeginExtension();
  t.AddPlannedAccess(4096, 100, 1);
  const auto& heat = t.FinalizeExtension();
  EXPECT_DOUBLE_EQ(t.temporal()[0], 100.0);
  // Page 0 keeps temporal heat; page 1 has spatial heat.
  EXPECT_GT(heat[0], 0.0);
  EXPECT_GT(heat[1], 0.0);
}

TEST(AccessHeatTest, TopPagesOrderedByHeat) {
  AccessHeatTracker t(4 * 4096, 4096);
  t.BeginExtension();
  t.AddPlannedAccess(0, 10, 1);            // page 0: 10
  t.AddPlannedAccess(4096, 500, 1);        // page 1: 500
  t.AddPlannedAccess(2 * 4096, 100, 1);    // page 2: 100
  t.FinalizeExtension();
  auto top = t.TopPages(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
}

TEST(AccessHeatTest, TopPagesBreaksEqualHeatTiesByPageIndex) {
  // Six pages with identical heat and two hotter ones interleaved: the
  // selection must be deterministic (score desc, then page index asc), or
  // the hybrid's unified page set — and every audit record derived from
  // it — would vary across platforms and partial_sort implementations.
  AccessHeatTracker t(8 * 4096, 4096);
  t.BeginExtension();
  for (int p = 0; p < 8; ++p) t.AddPlannedAccess(p * 4096, 100, 1);
  t.AddPlannedAccess(5 * 4096, 100, 1);  // page 5: 200
  t.AddPlannedAccess(2 * 4096, 100, 1);  // page 2: 200
  t.FinalizeExtension();
  auto top = t.TopPages(5);
  ASSERT_EQ(top.size(), 5u);
  // The two 200-heat pages first (tie between them broken 2 < 5), then
  // the lowest-indexed of the six 100-heat pages.
  EXPECT_EQ(top[0], 2u);
  EXPECT_EQ(top[1], 5u);
  EXPECT_EQ(top[2], 0u);
  EXPECT_EQ(top[3], 1u);
  EXPECT_EQ(top[4], 3u);
  // And repeatably so.
  EXPECT_EQ(t.TopPages(5), top);
}

TEST(AccessHeatTest, FinalizeRecordsWSpatial) {
  AccessHeatTracker t(8192, 4096);
  EXPECT_DOUBLE_EQ(t.last_w_spatial(), 1.0);  // before any finalize
  t.BeginExtension();
  t.AddPlannedAccess(0, 100, 1);
  t.FinalizeExtension();
  EXPECT_DOUBLE_EQ(t.last_w_spatial(), 1.0);  // no history yet
  t.BeginExtension();
  t.AddPlannedAccess(0, 300, 1);
  t.FinalizeExtension();
  // w_s = A_2 / (A_2 + A_1) = 300 / 400.
  EXPECT_DOUBLE_EQ(t.last_w_spatial(), 0.75);
  EXPECT_DOUBLE_EQ(t.current_total(), 300.0);
}

TEST(AccessHeatTest, TopPagesExcludesColdPages) {
  AccessHeatTracker t(4 * 4096, 4096);
  t.BeginExtension();
  t.AddPlannedAccess(0, 10, 1);
  t.FinalizeExtension();
  EXPECT_EQ(t.TopPages(10).size(), 1u);
}

TEST(AccessHeatTest, HotPageOverlapDetectsReuse) {
  AccessHeatTracker t(8 * 4096, 4096);
  t.BeginExtension();
  for (int p = 0; p < 4; ++p) t.AddPlannedAccess(p * 4096, 100, 1);
  t.FinalizeExtension();
  t.BeginExtension();
  for (int p = 2; p < 6; ++p) t.AddPlannedAccess(p * 4096, 100, 1);
  t.FinalizeExtension();
  // Pages 2,3 shared out of top-4.
  EXPECT_NEAR(t.HotPageOverlap(4), 0.5, 1e-9);
}

TEST(AccessHeatTest, OverlapZeroBeforeSecondExtension) {
  AccessHeatTracker t(8192, 4096);
  t.BeginExtension();
  t.AddPlannedAccess(0, 10, 1);
  t.FinalizeExtension();
  EXPECT_DOUBLE_EQ(t.HotPageOverlap(4), 0.0);
}

class GraphAccessorTest : public ::testing::Test {
 protected:
  gpusim::SimParams Params() {
    gpusim::SimParams p;
    p.device_memory_bytes = 2 << 20;
    p.um_device_buffer_bytes = 256 << 10;
    return p;
  }
};

TEST_F(GraphAccessorTest, HybridRoutesHotPagesToUnified) {
  gpusim::Device device(Params());
  Rng rng(1);
  graph::Graph g = graph::PowerLaw(2000, 20000, 0.9, &rng);
  GraphAccessor accessor(&device, &g, {});
  ASSERT_TRUE(accessor.Prepare().ok());

  // Frontier dominated by hub vertices: their pages should go unified.
  std::vector<std::pair<graph::VertexId, uint64_t>> frontier;
  for (graph::VertexId v = 0; v < 50; ++v) frontier.push_back({v, 100});
  accessor.PlanExtension(frontier);
  EXPECT_GT(accessor.unified_page_count(), 0u);

  gpusim::DeviceStats& stats = device.stats();
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    for (graph::VertexId v = 0; v < 50; ++v) {
      auto adj = accessor.ReadAdjacency(w, v);
      EXPECT_EQ(adj.size(), g.degree(v));
    }
  });
  EXPECT_GT(stats.um_page_faults + stats.um_page_hits, 0u);
}

TEST_F(GraphAccessorTest, ZeroCopyOnlyNeverFaults) {
  gpusim::Device device(Params());
  Rng rng(2);
  graph::Graph g = graph::ErdosRenyi(500, 2000, &rng);
  GraphAccessor::Options options;
  options.placement = GraphPlacement::kZeroCopyOnly;
  GraphAccessor accessor(&device, &g, options);
  ASSERT_TRUE(accessor.Prepare().ok());
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    for (graph::VertexId v = 0; v < 100; ++v) {
      accessor.ReadAdjacency(w, v);
    }
  });
  EXPECT_EQ(device.stats().um_page_faults, 0u);
  EXPECT_GT(device.stats().zc_transactions, 0u);
}

TEST_F(GraphAccessorTest, UnifiedOnlyNeverUsesZeroCopyForAdjacency) {
  gpusim::Device device(Params());
  Rng rng(3);
  graph::Graph g = graph::ErdosRenyi(500, 2000, &rng);
  GraphAccessor::Options options;
  options.placement = GraphPlacement::kUnifiedOnly;
  GraphAccessor accessor(&device, &g, options);
  ASSERT_TRUE(accessor.Prepare().ok());
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    for (graph::VertexId v = 0; v < 100; ++v) {
      accessor.ReadAdjacency(w, v);
    }
  });
  EXPECT_GT(device.stats().um_page_faults, 0u);
  EXPECT_EQ(device.stats().zc_transactions, 0u);
}

TEST_F(GraphAccessorTest, DeviceResidentRequiresFit) {
  gpusim::SimParams p = Params();
  p.device_memory_bytes = 64 << 10;  // too small for the CSR below
  p.um_device_buffer_bytes = 0;
  gpusim::Device device(p);
  Rng rng(4);
  graph::Graph g = graph::ErdosRenyi(5000, 40000, &rng);
  GraphAccessor::Options options;
  options.placement = GraphPlacement::kDeviceResident;
  GraphAccessor accessor(&device, &g, options);
  Status st = accessor.Prepare();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kDeviceOutOfMemory);
}

TEST_F(GraphAccessorTest, DeviceResidentFitsAndCopies) {
  gpusim::SimParams p = Params();
  p.um_device_buffer_bytes = 0;
  gpusim::Device device(p);
  Rng rng(5);
  graph::Graph g = graph::ErdosRenyi(100, 300, &rng);
  GraphAccessor::Options options;
  options.placement = GraphPlacement::kDeviceResident;
  GraphAccessor accessor(&device, &g, options);
  ASSERT_TRUE(accessor.Prepare().ok());
  EXPECT_EQ(device.stats().explicit_h2d_bytes, g.StorageBytes());
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    accessor.ReadAdjacency(w, 0);
  });
  EXPECT_GT(device.stats().device_reads, 0u);
}

TEST_F(GraphAccessorTest, LabelsReadable) {
  gpusim::Device device(Params());
  Rng rng(6);
  graph::Graph g = graph::ErdosRenyi(100, 200, &rng);
  graph::AssignLabelsZipf(&g, 4, 0.0, &rng);
  GraphAccessor accessor(&device, &g, {});
  ASSERT_TRUE(accessor.Prepare().ok());
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    for (graph::VertexId v = 0; v < 20; ++v) {
      EXPECT_EQ(accessor.ReadLabel(w, v), g.label(v));
    }
  });
}

TEST_F(GraphAccessorTest, EdgeEndpointsAndEids) {
  gpusim::Device device(Params());
  Rng rng(7);
  graph::Graph g = graph::ErdosRenyi(50, 120, &rng);
  g.EnsureEdgeIndex();
  GraphAccessor accessor(&device, &g, {});
  ASSERT_TRUE(accessor.Prepare().ok());
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    auto [nbrs, eids] = accessor.ReadAdjacencyWithEids(w, 3);
    ASSERT_EQ(nbrs.size(), eids.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      graph::Edge e = accessor.ReadEdgeEndpoints(w, eids[i]);
      EXPECT_TRUE((e.u == 3 && e.v == nbrs[i]) ||
                  (e.v == 3 && e.u == nbrs[i]));
    }
  });
}

}  // namespace
}  // namespace gpm::core
