// Exact memory-traffic accounting of GraphAccessor's charged read paths.
//
// The batched paths (ChargeEdgeEndpointsBatch, ChargeLabelsBatch) and the
// adjacency+edge-id read each pin the precise DeviceStats deltas across
// placements, with the expected page faults / hits / transactions computed
// by hand from the 4096 B page and 128 B transaction geometry. These
// numbers are the corrected (higher) traffic: a batch that fails to
// advance its offset, or charges one label for a warp-wide gather, passes
// weaker tests but undercounts the paper's central quantity.
#include <gtest/gtest.h>

#include <vector>

#include "core/adaptive_access.h"
#include "core/gamma.h"
#include "gpusim/device.h"
#include "graph/csr.h"

namespace gpm::core {
namespace {

// Defaults: 32-lane warps, 4096 B pages, 128 B zero-copy transactions.
gpusim::SimParams SmallParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 1 << 20;      // 1 MiB
  p.um_device_buffer_bytes = 64 << 10;  // 16 pages
  return p;
}

// Star: vertex 0 adjacent to vertices 1..leaves. Vertex 0's adjacency
// list starts at column-array offset 0 and holds `leaves` entries; the
// edge index assigns edge i-1 = {0, i}, so edges_packed_ holds `leaves`
// consecutive 8-byte records.
graph::Graph MakeStar(graph::VertexId leaves) {
  std::vector<graph::Edge> edges;
  edges.reserve(leaves);
  for (graph::VertexId i = 1; i <= leaves; ++i) edges.push_back({0, i});
  graph::Graph g = graph::Graph::FromEdges(leaves + 1, edges);
  g.EnsureEdgeIndex();
  return g;
}

// Runs `fn` as the body of a single warp task and returns the stats delta
// it caused (the launch itself only touches kernel_launches/warp_tasks).
template <typename Fn>
gpusim::DeviceStats RunWarp(gpusim::Device* device, Fn fn) {
  gpusim::DeviceStats before = device->stats().Snapshot();
  device->LaunchKernel(1,
                       [&](gpusim::WarpCtx& w, std::size_t) { fn(w); });
  return device->stats().Diff(before);
}

GraphAccessor::Options Placed(GraphPlacement placement) {
  GraphAccessor::Options o;
  o.placement = placement;
  return o;
}

// -- ChargeEdgeEndpointsBatch -----------------------------------------------

TEST(EdgeEndpointsBatchTest, UnifiedChargesEveryBatchSpan) {
  // 600 edges x 8 B = 4800 B of packed endpoints: pages 0 and 1 of the
  // edges_packed_ region. 600 lanes = 19 warp batches (18 x 32 + 24);
  // batches 0-15 land in page 0, batches 16-18 in page 1, so the two
  // pages fault once each and every later batch hits.
  graph::Graph g = MakeStar(600);
  gpusim::Device device(SmallParams());
  GraphAccessor accessor(&device, &g,
                         Placed(GraphPlacement::kUnifiedOnly));
  ASSERT_TRUE(accessor.Prepare().ok());
  gpusim::DeviceStats d = RunWarp(&device, [&](gpusim::WarpCtx& w) {
    accessor.ChargeEdgeEndpointsBatch(w, 0, 600);
  });
  EXPECT_EQ(d.um_page_faults, 2u);
  EXPECT_EQ(d.um_page_hits, 17u);
  EXPECT_EQ(d.um_migrated_bytes, 2u * 4096u);
  EXPECT_EQ(d.zc_transactions, 0u);
}

TEST(EdgeEndpointsBatchTest, UnifiedOffsetAdvancesPastFirstPage) {
  // Starting at edge 512 (byte offset 4096), the whole span lies in page 1
  // of the packed-edge region: the buggy non-advancing offset would charge
  // page 1 once and then page... the same bytes again; the fix charges
  // the actual span [4096, 4608), all page 1.
  graph::Graph g = MakeStar(600);
  gpusim::Device device(SmallParams());
  GraphAccessor accessor(&device, &g,
                         Placed(GraphPlacement::kUnifiedOnly));
  ASSERT_TRUE(accessor.Prepare().ok());
  gpusim::DeviceStats d = RunWarp(&device, [&](gpusim::WarpCtx& w) {
    accessor.ChargeEdgeEndpointsBatch(w, 512, 64);
  });
  EXPECT_EQ(d.um_page_faults, 1u);  // page 1, not page 0
  EXPECT_EQ(d.um_page_hits, 1u);    // second batch of 32
  EXPECT_EQ(d.um_migrated_bytes, 4096u);
}

TEST(EdgeEndpointsBatchTest, DeviceResidentClampsTailBatch) {
  // 70 records over 32-lane batches: 32 + 32 + 6, i.e. three coalesced
  // reads totalling 70 x 8 = 560 bytes (not 3 x 32 x 8 = 768).
  graph::Graph g = MakeStar(600);
  gpusim::Device device(SmallParams());
  GraphAccessor accessor(&device, &g,
                         Placed(GraphPlacement::kDeviceResident));
  ASSERT_TRUE(accessor.Prepare().ok());
  gpusim::DeviceStats d = RunWarp(&device, [&](gpusim::WarpCtx& w) {
    accessor.ChargeEdgeEndpointsBatch(w, 5, 70);
  });
  EXPECT_EQ(d.device_reads, 3u);
  EXPECT_EQ(d.device_read_bytes, 560u);
}

// -- ChargeLabelsBatch --------------------------------------------------------

TEST(LabelsBatchTest, UnifiedChargesPerLaneVertexOffsets) {
  // 5001 vertices, 4 B labels (zero-filled by Prepare): ~5 pages. The
  // four gathered vertices sit exactly one page apart, so a single
  // warp batch faults four distinct pages — one label per batch would
  // fault only the first.
  graph::Graph g = MakeStar(5000);
  gpusim::Device device(SmallParams());
  GraphAccessor accessor(&device, &g,
                         Placed(GraphPlacement::kUnifiedOnly));
  ASSERT_TRUE(accessor.Prepare().ok());
  std::vector<graph::VertexId> spread = {0, 1024, 2048, 3072};
  gpusim::DeviceStats d = RunWarp(&device, [&](gpusim::WarpCtx& w) {
    accessor.ChargeLabelsBatch(w, spread);
  });
  EXPECT_EQ(d.um_page_faults, 4u);
  EXPECT_EQ(d.um_page_hits, 0u);
  EXPECT_EQ(d.um_migrated_bytes, 4u * 4096u);

  // Re-reading a resident page: 64 lanes = 64 per-lane hits (two warp
  // batches), zero faults.
  std::vector<graph::VertexId> same(64, 2);
  gpusim::DeviceStats d2 = RunWarp(&device, [&](gpusim::WarpCtx& w) {
    accessor.ChargeLabelsBatch(w, same);
  });
  EXPECT_EQ(d2.um_page_faults, 0u);
  EXPECT_EQ(d2.um_page_hits, 64u);
}

TEST(LabelsBatchTest, DeviceResidentCoalescesPerBatch) {
  graph::Graph g = MakeStar(600);
  gpusim::Device device(SmallParams());
  GraphAccessor accessor(&device, &g,
                         Placed(GraphPlacement::kDeviceResident));
  ASSERT_TRUE(accessor.Prepare().ok());
  std::vector<graph::VertexId> vertices(40, 5);
  gpusim::DeviceStats d = RunWarp(&device, [&](gpusim::WarpCtx& w) {
    accessor.ChargeLabelsBatch(w, vertices);
  });
  EXPECT_EQ(d.device_reads, 2u);  // 32 + 8 lanes
  EXPECT_EQ(d.device_read_bytes, 40u * sizeof(graph::Label));
}

// -- ReadAdjacencyWithEids ----------------------------------------------------

TEST(AdjacencyWithEidsTest, UnifiedMirrorFaultsAsItsOwnRegion) {
  // Vertex 0's adjacency: 600 x 4 B = 2400 B in page 0 of the column
  // region; the edge-id mirror covers the same byte span but in its own
  // region, so the first read faults both pages (charging the column
  // region twice would make the mirror a free hit).
  graph::Graph g = MakeStar(600);
  gpusim::Device device(SmallParams());
  GraphAccessor accessor(&device, &g,
                         Placed(GraphPlacement::kUnifiedOnly));
  ASSERT_TRUE(accessor.Prepare().ok());
  gpusim::DeviceStats d = RunWarp(&device, [&](gpusim::WarpCtx& w) {
    auto [nbrs, eids] = accessor.ReadAdjacencyWithEids(w, 0);
    EXPECT_EQ(nbrs.size(), 600u);
    EXPECT_EQ(eids.size(), 600u);
  });
  EXPECT_EQ(d.um_page_faults, 2u);
  EXPECT_EQ(d.um_page_hits, 0u);
  EXPECT_EQ(d.um_migrated_bytes, 2u * 4096u);

  gpusim::DeviceStats d2 = RunWarp(&device, [&](gpusim::WarpCtx& w) {
    accessor.ReadAdjacencyWithEids(w, 0);
  });
  EXPECT_EQ(d2.um_page_faults, 0u);
  EXPECT_EQ(d2.um_page_hits, 2u);
}

TEST(AdjacencyWithEidsTest, ZeroCopyChargesBothSpans) {
  // 2400 B per span, 128 B transactions: ceil(2400/128) = 19 per region,
  // 38 total, 38 x 128 = 4864 B on the link.
  graph::Graph g = MakeStar(600);
  gpusim::Device device(SmallParams());
  GraphAccessor accessor(&device, &g,
                         Placed(GraphPlacement::kZeroCopyOnly));
  ASSERT_TRUE(accessor.Prepare().ok());
  gpusim::DeviceStats d = RunWarp(&device, [&](gpusim::WarpCtx& w) {
    accessor.ReadAdjacencyWithEids(w, 0);
  });
  EXPECT_EQ(d.zc_transactions, 38u);
  EXPECT_EQ(d.zc_bytes, 38u * 128u);
  EXPECT_EQ(d.um_page_faults, 0u);
}

TEST(AdjacencyWithEidsTest, DeviceResidentReadsBothArrays) {
  graph::Graph g = MakeStar(600);
  gpusim::Device device(SmallParams());
  GraphAccessor accessor(&device, &g,
                         Placed(GraphPlacement::kDeviceResident));
  ASSERT_TRUE(accessor.Prepare().ok());
  gpusim::DeviceStats d = RunWarp(&device, [&](gpusim::WarpCtx& w) {
    accessor.ReadAdjacencyWithEids(w, 0);
  });
  EXPECT_EQ(d.device_reads, 2u);
  EXPECT_EQ(d.device_read_bytes, 2u * 2400u);
}

TEST(AdjacencyWithEidsTest, HybridDefaultsToZeroCopyBeforePlanning) {
  // Without PlanExtension no page is flagged unified, so hybrid routes
  // everything through zero-copy — identical traffic to kZeroCopyOnly.
  graph::Graph g = MakeStar(600);
  gpusim::Device device(SmallParams());
  GraphAccessor accessor(&device, &g,
                         Placed(GraphPlacement::kHybridAdaptive));
  ASSERT_TRUE(accessor.Prepare().ok());
  gpusim::DeviceStats d = RunWarp(&device, [&](gpusim::WarpCtx& w) {
    accessor.ReadAdjacencyWithEids(w, 0);
  });
  EXPECT_EQ(d.zc_transactions, 38u);
  EXPECT_EQ(d.um_page_faults, 0u);
}

// -- Engine-level profile attribution ----------------------------------------

TEST(EngineProfileTest, PhasesAttributeTrafficAndExportJson) {
  graph::Graph g = MakeStar(64);
  // Room for the extension's default 4 MiB write pool.
  gpusim::SimParams params;
  params.device_memory_bytes = 8 << 20;
  params.um_device_buffer_bytes = 512 << 10;
  gpusim::Device device(params);
  device.set_trace_enabled(true);
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;
  spec.intersect_positions = {0};
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());

  const gpusim::RunProfile& profile = engine.profile();
  const gpusim::PhaseRecord* prep = profile.Find("prepare");
  ASSERT_NE(prep, nullptr);
  EXPECT_EQ(prep->invocations, 1u);
  const gpusim::PhaseRecord* init = profile.Find("init-table");
  ASSERT_NE(init, nullptr);
  EXPECT_EQ(init->invocations, 1u);
  const gpusim::PhaseRecord* ext = profile.Find("vertex-extension");
  ASSERT_NE(ext, nullptr);
  EXPECT_EQ(ext->invocations, 1u);
  EXPECT_GT(ext->cycles, 0.0);
  EXPECT_GE(ext->delta.kernel_launches, 1u);
  // The extension must have read graph data through some host path.
  EXPECT_GT(ext->delta.zc_transactions + ext->delta.um_page_faults +
                ext->delta.um_page_hits,
            0u);

  // Phase cycles partition the run: their sum cannot exceed the clock.
  double phase_cycles = 0;
  for (const gpusim::PhaseRecord& ph : profile.phases()) {
    phase_cycles += ph.cycles;
  }
  EXPECT_LE(phase_cycles, device.now_cycles() * (1 + 1e-12));

  std::string json = profile.ToJson(device);
  EXPECT_NE(json.find("\"schema\": \"gamma.profile.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"vertex-extension\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel_trace\""), std::string::npos);
  // Tracing was on, so the trace array carries named kernel records.
  EXPECT_FALSE(device.kernel_trace().empty());
  EXPECT_NE(json.find("\"compute_makespan_cycles\""), std::string::npos);
}

}  // namespace
}  // namespace gpm::core
