// Adaptivity-audit tests: the counterfactual shadow models are validated
// against ground truth (a hybrid run's est_unified/est_zerocopy totals
// must match pure --placement runs' actual counters exactly, and their
// cycle sums bit-for-bit), the audit is proven cost-free (bit-identical
// clock and counters with the observer on or off), record bookkeeping is
// checked (one record per extension, decision snapshots filled), and the
// gamma.adaptivity.v1 document shape is parsed back.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "algos/kclique.h"
#include "core/adaptivity_audit.h"
#include "core/gamma.h"
#include "graph/generators.h"
#include "gpusim/device.h"
#include "gpusim/sim_params.h"
#include "minijson.h"

namespace gpm::core {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  // The page buffer holds only a fraction of the graph, so faults, hits,
  // and evictions all occur and the LRU order matters.
  p.device_memory_bytes = 8 << 20;
  p.um_device_buffer_bytes = 32 << 10;
  return p;
}

graph::Graph TestGraph() {
  Rng rng(11);
  graph::Graph g = graph::PowerLaw(500, 4000, 0.9, &rng);
  g.EnsureEdgeIndex();
  return g;
}

/// Everything a run leaves behind once the engine is destroyed.
struct RunOutcome {
  uint64_t cliques = 0;
  double now_cycles = 0;
  gpusim::DeviceStats stats;
  bool has_audit = false;
  AdaptivitySummary summary;
  ShadowCounters est_unified;
  ShadowCounters est_zerocopy;
  std::vector<AdaptivityRecord> records;
};

/// Runs 4-clique counting on a fresh device under `placement`, capturing
/// the audit state (when enabled) before the engine goes away.
RunOutcome RunKClique(const graph::Graph& g, GraphPlacement placement,
                      bool audit) {
  gpusim::Device device(TestParams());
  GammaOptions options;
  options.access.placement = placement;
  options.adaptivity_audit = audit;
  GammaEngine engine(&device, &g, options);
  EXPECT_TRUE(engine.Prepare().ok());
  auto r = algos::CountKCliques(&engine, 4);
  EXPECT_TRUE(r.ok());

  RunOutcome out;
  out.cliques = r.ok() ? r.value().cliques : 0;
  out.now_cycles = device.now_cycles();
  out.stats = device.stats().Snapshot();
  if (engine.audit() != nullptr) {
    out.has_audit = true;
    out.summary = engine.audit()->Summary();
    out.est_unified = engine.audit()->unified_shadow_totals();
    out.est_zerocopy = engine.audit()->zerocopy_shadow_totals();
    out.records = engine.audit()->records();
  }
  return out;
}

// --- Shadow vs. ground truth -----------------------------------------------
//
// Functional execution is placement-independent: the hybrid run and the
// pure runs issue the identical logical access stream. The audit replays
// that stream through shadow models that mirror the real cost arithmetic,
// so the hybrid's counterfactual totals must equal the pure runs' actual
// counters EXACTLY — not approximately. (The comparison is on access-
// charge sums, the only cost component that depends on placement.)

TEST(AdaptivityAuditTest, ShadowUnifiedMatchesPureUnifiedGroundTruth) {
  graph::Graph g = TestGraph();
  RunOutcome hybrid = RunKClique(g, GraphPlacement::kHybridAdaptive, true);
  RunOutcome unified = RunKClique(g, GraphPlacement::kUnifiedOnly, true);
  ASSERT_TRUE(hybrid.has_audit);
  ASSERT_TRUE(unified.has_audit);
  EXPECT_EQ(hybrid.cliques, unified.cliques);

  // Counter-exact: the shadow LRU walked the same pages in the same order
  // as the pure run's real page buffer.
  EXPECT_EQ(hybrid.est_unified.um_page_faults, unified.stats.um_page_faults);
  EXPECT_EQ(hybrid.est_unified.um_page_hits, unified.stats.um_page_hits);
  EXPECT_EQ(hybrid.est_unified.um_migrated_bytes,
            unified.stats.um_migrated_bytes);
  EXPECT_EQ(hybrid.est_unified.um_evictions, unified.stats.um_evictions);
  // The pure-unified run still zero-copies what stays zero-copy under
  // every placement (degree probes); the shadow replays those too.
  EXPECT_EQ(hybrid.est_unified.zc_transactions, unified.stats.zc_transactions);
  EXPECT_EQ(hybrid.est_unified.zc_bytes, unified.stats.zc_bytes);

  // Cycle-exact: same charges in the same order, accumulated the same way.
  EXPECT_DOUBLE_EQ(hybrid.est_unified.cycles,
                   unified.summary.actual_access_cycles);
}

TEST(AdaptivityAuditTest, ShadowZeroCopyMatchesPureZeroCopyGroundTruth) {
  graph::Graph g = TestGraph();
  RunOutcome hybrid = RunKClique(g, GraphPlacement::kHybridAdaptive, true);
  RunOutcome zc = RunKClique(g, GraphPlacement::kZeroCopyOnly, true);
  ASSERT_TRUE(hybrid.has_audit);
  ASSERT_TRUE(zc.has_audit);
  EXPECT_EQ(hybrid.cliques, zc.cliques);

  EXPECT_EQ(hybrid.est_zerocopy.zc_transactions, zc.stats.zc_transactions);
  EXPECT_EQ(hybrid.est_zerocopy.zc_bytes, zc.stats.zc_bytes);
  // Non-graph data (labels, packed edges, table columns) stays unified
  // under every host placement, so the zero-copy shadow carries the same
  // unified traffic the pure run actually paid.
  EXPECT_EQ(hybrid.est_zerocopy.um_page_faults, zc.stats.um_page_faults);
  EXPECT_EQ(hybrid.est_zerocopy.um_page_hits, zc.stats.um_page_hits);
  EXPECT_EQ(hybrid.est_zerocopy.um_migrated_bytes, zc.stats.um_migrated_bytes);
  EXPECT_EQ(hybrid.est_zerocopy.um_evictions, zc.stats.um_evictions);

  EXPECT_DOUBLE_EQ(hybrid.est_zerocopy.cycles,
                   zc.summary.actual_access_cycles);
}

TEST(AdaptivityAuditTest, PureRunShadowIsSelfConsistent) {
  graph::Graph g = TestGraph();
  // A pure run's matching shadow replays exactly the charges the real
  // buffer made: estimate == actual, and its committed-mode regret is the
  // gap to the other pure mode only (zero when it is itself the best).
  RunOutcome unified = RunKClique(g, GraphPlacement::kUnifiedOnly, true);
  ASSERT_TRUE(unified.has_audit);
  EXPECT_DOUBLE_EQ(unified.est_unified.cycles,
                   unified.summary.actual_access_cycles);
  EXPECT_EQ(unified.est_unified.um_page_faults, unified.stats.um_page_faults);
  EXPECT_EQ(unified.est_unified.um_evictions, unified.stats.um_evictions);
  EXPECT_DOUBLE_EQ(unified.summary.est_unified_cycles,
                   unified.est_unified.cycles);
  // Pure runs plan nothing, so plan_cycles stays zero and regret reduces
  // to actual - min(est): never negative for the run's own mode.
  EXPECT_DOUBLE_EQ(unified.summary.plan_cycles, 0.0);
  EXPECT_GE(unified.summary.regret_cycles, 0.0);

  RunOutcome zc = RunKClique(g, GraphPlacement::kZeroCopyOnly, true);
  ASSERT_TRUE(zc.has_audit);
  EXPECT_DOUBLE_EQ(zc.est_zerocopy.cycles, zc.summary.actual_access_cycles);
  EXPECT_EQ(zc.est_zerocopy.zc_transactions, zc.stats.zc_transactions);
  EXPECT_DOUBLE_EQ(zc.summary.plan_cycles, 0.0);
  EXPECT_GE(zc.summary.regret_cycles, 0.0);
}

// --- Zero-cost observing ---------------------------------------------------

TEST(AdaptivityAuditTest, AuditDoesNotPerturbSimulation) {
  graph::Graph g = TestGraph();
  for (GraphPlacement placement :
       {GraphPlacement::kHybridAdaptive, GraphPlacement::kUnifiedOnly,
        GraphPlacement::kZeroCopyOnly}) {
    RunOutcome off = RunKClique(g, placement, false);
    RunOutcome on = RunKClique(g, placement, true);
    EXPECT_FALSE(off.has_audit);
    EXPECT_TRUE(on.has_audit);
    EXPECT_EQ(off.cliques, on.cliques);
    // Bit-identical simulated time and counters: observing is read-only.
    EXPECT_EQ(off.now_cycles, on.now_cycles)
        << GraphPlacementName(placement);
    for (const gpusim::DeviceStats::Field& f :
         gpusim::DeviceStats::Fields()) {
      EXPECT_EQ(off.stats.*f.member, on.stats.*f.member)
          << GraphPlacementName(placement) << " " << f.name;
    }
  }
}

TEST(AdaptivityAuditTest, DeviceResidentPlacementGetsNoAudit) {
  graph::Graph g = TestGraph();
  // Nothing to audit when the graph is device-resident: the option is
  // accepted but no observer is attached.
  RunOutcome dev = RunKClique(g, GraphPlacement::kDeviceResident, true);
  EXPECT_FALSE(dev.has_audit);
}

// --- Record bookkeeping ----------------------------------------------------

TEST(AdaptivityAuditTest, OneRecordPerExtensionWithDecisionSnapshots) {
  graph::Graph g = TestGraph();
  RunOutcome hybrid = RunKClique(g, GraphPlacement::kHybridAdaptive, true);
  ASSERT_TRUE(hybrid.has_audit);
  // 4-clique = vertex init + 3 vertex extensions.
  ASSERT_EQ(hybrid.records.size(), 3u);
  EXPECT_EQ(hybrid.summary.extensions, 3u);
  for (std::size_t i = 0; i < hybrid.records.size(); ++i) {
    const AdaptivityRecord& rec = hybrid.records[i];
    EXPECT_EQ(rec.extension, static_cast<int>(i) + 1);
    EXPECT_GT(rec.frontier_vertices, 0u);
    EXPECT_GT(rec.planned_bytes, 0.0);
    EXPECT_GT(rec.unified_pages, 0u);
    EXPECT_GT(rec.plan_cycles, 0.0);
    EXPECT_GE(rec.w_spatial, 0.0);
    EXPECT_LE(rec.w_spatial, 1.0);
    EXPECT_GT(rec.heat_nonzero_pages, 0u);
    uint64_t histogram_total = 0;
    for (uint64_t bucket : rec.heat_histogram) histogram_total += bucket;
    EXPECT_EQ(histogram_total, rec.heat_nonzero_pages);
    EXPECT_GT(rec.est_unified.cycles, 0.0);
    EXPECT_GT(rec.est_zerocopy.cycles, 0.0);
  }
  // The first plan has no history: spatial locality gets all the weight.
  EXPECT_DOUBLE_EQ(hybrid.records[0].w_spatial, 1.0);
  // Per-record actuals sum to the recorded totals minus pre-extension
  // traffic (InitVertexTable runs before the first plan).
  double recorded = 0;
  for (const AdaptivityRecord& rec : hybrid.records) {
    recorded += rec.actual_access_cycles;
  }
  EXPECT_LE(recorded, hybrid.summary.actual_access_cycles);
}

TEST(AdaptivityAuditTest, PureRunsCarryRecordsWithoutPlans) {
  graph::Graph g = TestGraph();
  RunOutcome unified = RunKClique(g, GraphPlacement::kUnifiedOnly, true);
  ASSERT_TRUE(unified.has_audit);
  ASSERT_EQ(unified.records.size(), 3u);
  for (const AdaptivityRecord& rec : unified.records) {
    EXPECT_EQ(rec.unified_pages, 0u);  // no hybrid plan ran
    EXPECT_DOUBLE_EQ(rec.plan_cycles, 0.0);
    EXPECT_GT(rec.frontier_vertices, 0u);
  }
}

// --- ShadowPageLru unit behaviour ------------------------------------------

TEST(ShadowPageLruTest, ZeroCapacityNeverCaches) {
  gpusim::SimParams p = TestParams();
  ShadowPageLru shadow(p, 0);
  shadow.Access(0, 0, p.um_page_bytes);
  shadow.Access(0, 0, p.um_page_bytes);
  EXPECT_EQ(shadow.counters().um_page_faults, 2u);
  EXPECT_EQ(shadow.counters().um_page_hits, 0u);
  EXPECT_EQ(shadow.resident_pages(), 0u);
}

TEST(ShadowPageLruTest, LruEvictionCountsAndOrder) {
  gpusim::SimParams p = TestParams();
  ShadowPageLru shadow(p, 2);
  shadow.Access(0, 0 * p.um_page_bytes, 8);  // page 0
  shadow.Access(0, 1 * p.um_page_bytes, 8);  // page 1
  shadow.Access(0, 0 * p.um_page_bytes, 8);  // hit, page 0 now MRU
  shadow.Access(0, 2 * p.um_page_bytes, 8);  // evicts page 1 (LRU)
  shadow.Access(0, 0 * p.um_page_bytes, 8);  // still resident: hit
  shadow.Access(0, 1 * p.um_page_bytes, 8);  // fault again
  EXPECT_EQ(shadow.counters().um_page_faults, 4u);
  EXPECT_EQ(shadow.counters().um_page_hits, 2u);
  EXPECT_EQ(shadow.counters().um_evictions, 2u);
  EXPECT_EQ(shadow.counters().um_migrated_bytes, 4 * p.um_page_bytes);
  EXPECT_EQ(shadow.resident_pages(), 2u);
}

TEST(ShadowPageLruTest, RegionDropsInvalidateResidency) {
  gpusim::SimParams p = TestParams();
  ShadowPageLru shadow(p, 8);
  shadow.Access(0, 0, 3 * p.um_page_bytes);  // pages 0..2 of region 0
  shadow.Access(1, 0, 2 * p.um_page_bytes);  // pages 0..1 of region 1
  EXPECT_EQ(shadow.resident_pages(), 5u);
  // Shrink region 0 to one page: pages 1..2 drop without eviction cost.
  shadow.DropRegionTail(0, 3 * p.um_page_bytes, p.um_page_bytes);
  EXPECT_EQ(shadow.resident_pages(), 3u);
  shadow.DropRegion(1);
  EXPECT_EQ(shadow.resident_pages(), 1u);
  // Re-access of a dropped page faults again.
  uint64_t faults = shadow.counters().um_page_faults;
  shadow.Access(0, 2 * p.um_page_bytes, 8);
  EXPECT_EQ(shadow.counters().um_page_faults, faults + 1);
}

// --- JSON export -----------------------------------------------------------

TEST(AdaptivityAuditTest, ToJsonMatchesSchema) {
  graph::Graph g = TestGraph();
  gpusim::Device device(TestParams());
  GammaOptions options;
  options.adaptivity_audit = true;
  GammaEngine engine(&device, &g, options);
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(algos::CountKCliques(&engine, 4).ok());
  ASSERT_NE(engine.audit(), nullptr);

  std::string json = engine.audit()->ToJson();
  minijson::Value doc;
  ASSERT_TRUE(minijson::Parse(json, &doc)) << json;
  EXPECT_EQ(doc.Find("schema")->str, "gamma.adaptivity.v1");
  EXPECT_EQ(doc.Find("placement")->str, "hybrid-adaptive");
  const minijson::Value* totals = doc.Find("totals");
  ASSERT_NE(totals, nullptr);
  const std::string best = totals->Find("best_pure")->str;
  EXPECT_TRUE(best == "unified" || best == "zerocopy") << best;

  const minijson::Value* records = doc.Find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->array.size(),
            static_cast<std::size_t>(doc.Find("extensions")->number));
  const minijson::Value& rec = records->array[0];
  EXPECT_DOUBLE_EQ(rec.Find("extension")->number, 1.0);
  ASSERT_NE(rec.Find("heat"), nullptr);
  EXPECT_EQ(rec.Find("heat")->Find("histogram")->array.size(),
            kHeatHistogramBuckets);
  ASSERT_NE(rec.Find("actual"), nullptr);
  EXPECT_GT(rec.Find("actual")->Find("access_cycles")->number, 0.0);
  EXPECT_GT(rec.Find("est_unified")->Find("cycles")->number, 0.0);
  EXPECT_GT(rec.Find("est_zerocopy")->Find("cycles")->number, 0.0);

  // The summary mirrors the document totals.
  AdaptivitySummary summary = engine.audit()->Summary();
  EXPECT_DOUBLE_EQ(totals->Find("regret_cycles")->number,
                   summary.regret_cycles);
}

}  // namespace
}  // namespace gpm::core
