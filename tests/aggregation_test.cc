#include <gtest/gtest.h>

#include "core/aggregation.h"
#include "core/gamma.h"
#include "graph/canonical.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"

namespace gpm::core {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 8 << 20;
  p.um_device_buffer_bytes = 1 << 20;
  return p;
}

graph::Graph Toy() {
  graph::Graph g = graph::Graph::FromEdges(
      5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
  g.SetLabels({0, 1, 2, 0, 1});
  g.EnsureEdgeIndex();
  return g;
}

TEST(AggregationTest, SingleEdgePatternsByLabelPair) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitEdgeTable();
  ASSERT_TRUE(t.ok());
  PatternTable pt;
  auto r = engine.Aggregation(*t.value(), &pt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().codes.size(), 6u);
  // Label pairs over edges: (0,1)x2 [0-1,3-4], (0,2)x2 [0-2,3-2], (1,2)x1
  // [1-2], (0,0)x1? 1-3 is labels (1,0) -> (0,1). Recount:
  // edges: 0-1:(0,1) 0-2:(0,2) 1-2:(1,2) 1-3:(1,0) 2-3:(2,0) 3-4:(0,1)
  // => (0,1):3, (0,2):2, (1,2):1 -> 3 distinct patterns.
  EXPECT_EQ(pt.size(), 3u);
  uint64_t total = 0;
  for (const auto& e : pt.entries()) total += e.support;
  EXPECT_EQ(total, 6u);
}

TEST(AggregationTest, UnlabeledWedgesAndTriangles) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaOptions options;
  options.aggregation.use_labels = false;
  GammaEngine engine(&device, &g, options);
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitEdgeTable();
  ASSERT_TRUE(t.ok());
  EdgeExtensionSpec spec;
  ASSERT_TRUE(engine.EdgeExtension(t.value().get(), spec).ok());
  PatternTable pt;
  auto r = engine.Aggregation(*t.value(), &pt);
  ASSERT_TRUE(r.ok());
  // 2-edge connected sets are all wedges (path of 3 vertices).
  ASSERT_EQ(pt.size(), 1u);
  uint64_t wedges = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    uint64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  EXPECT_EQ(pt.entries()[0].support, wedges);
  EXPECT_EQ(graph::CanonicalCode(pt.entries()[0].exemplar),
            graph::CanonicalCode(graph::Pattern::Path(3)));
}

TEST(AggregationTest, CodesAlignWithRows) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitEdgeTable();
  ASSERT_TRUE(t.ok());
  PatternTable pt;
  auto r = engine.Aggregation(*t.value(), &pt);
  ASSERT_TRUE(r.ok());
  graph::CanonicalCache cache;
  for (std::size_t row = 0; row < t.value()->num_embeddings(); ++row) {
    auto emb = t.value()->GetEmbedding(0, static_cast<RowIndex>(row));
    std::vector<graph::EdgeId> edges(emb.begin(), emb.end());
    graph::Pattern p = graph::PatternOfEdges(g, edges, true);
    EXPECT_EQ(r.value().codes[row], cache.Get(p));
  }
}

TEST(AggregationTest, AccumulatesAcrossCalls) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitEdgeTable();
  ASSERT_TRUE(t.ok());
  PatternTable pt;
  ASSERT_TRUE(engine.Aggregation(*t.value(), &pt).ok());
  uint64_t first = 0;
  for (const auto& e : pt.entries()) first += e.support;
  ASSERT_TRUE(engine.Aggregation(*t.value(), &pt).ok());
  uint64_t second = 0;
  for (const auto& e : pt.entries()) second += e.support;
  EXPECT_EQ(second, 2 * first);
}

TEST(AggregationTest, MniSupportLeqInstanceCount) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaOptions mni_options;
  mni_options.aggregation.support = SupportMeasure::kMni;
  GammaEngine engine(&device, &g, mni_options);
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitEdgeTable();
  ASSERT_TRUE(t.ok());
  PatternTable mni_pt;
  ASSERT_TRUE(engine.Aggregation(*t.value(), &mni_pt).ok());

  gpusim::Device device2(TestParams());
  GammaEngine engine2(&device2, &g, {});
  ASSERT_TRUE(engine2.Prepare().ok());
  auto t2 = engine2.InitEdgeTable();
  ASSERT_TRUE(t2.ok());
  PatternTable cnt_pt;
  ASSERT_TRUE(engine2.Aggregation(*t2.value(), &cnt_pt).ok());

  for (const auto& e : mni_pt.entries()) {
    const PatternEntry* other = cnt_pt.Find(e.code);
    ASSERT_NE(other, nullptr);
    EXPECT_LE(e.support, other->support);
    EXPECT_GT(e.support, 0u);
  }
}

TEST(PatternTableTest, InvalidateAndErase) {
  PatternTable pt;
  pt.Accumulate(1, graph::Pattern::Triangle(), 5);
  pt.Accumulate(2, graph::Pattern::Path(3), 1);
  pt.Accumulate(1, graph::Pattern::Triangle(), 2);
  EXPECT_EQ(pt.Find(1)->support, 7u);
  EXPECT_EQ(pt.InvalidateBelow(3), 1u);
  EXPECT_EQ(pt.InvalidCodes().count(2), 1u);
  pt.EraseInvalid();
  EXPECT_EQ(pt.size(), 1u);
  EXPECT_EQ(pt.Find(2), nullptr);
}

TEST(PatternTableTest, TopPatternsSorted) {
  PatternTable pt;
  pt.Accumulate(1, graph::Pattern::Triangle(), 5);
  pt.Accumulate(2, graph::Pattern::Path(3), 9);
  pt.Accumulate(3, graph::Pattern::Star(3), 2);
  auto top = pt.TopPatterns();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].support, 9u);
  EXPECT_EQ(top[2].support, 2u);
}

TEST(PatternTableTest, SetSupportOverwrites) {
  PatternTable pt;
  pt.SetSupport(1, graph::Pattern::Triangle(), 5);
  pt.SetSupport(1, graph::Pattern::Triangle(), 3);
  EXPECT_EQ(pt.Find(1)->support, 3u);
}

}  // namespace
}  // namespace gpm::core
