#include <gtest/gtest.h>

#include "algos/fpm.h"
#include "algos/kclique.h"
#include "algos/motif.h"
#include "algos/subgraph_matching.h"
#include "baselines/cpu_ref.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"

namespace gpm::algos {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 16 << 20;
  p.um_device_buffer_bytes = 2 << 20;
  return p;
}

graph::Graph RandomLabeled(uint64_t seed, graph::VertexId n,
                           std::size_t m) {
  Rng rng(seed);
  graph::Graph g = graph::ErdosRenyi(n, m, &rng);
  graph::AssignLabelsZipf(&g, 3, 0.3, &rng);
  g.EnsureEdgeIndex();
  return g;
}

TEST(KCliqueTest, TrianglesMatchOracle) {
  graph::Graph g = RandomLabeled(1, 80, 400);
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto r = CountKCliques(&engine, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().cliques,
            graph::CountInstances(g, graph::Pattern::Triangle()));
  EXPECT_GT(r.value().sim_millis, 0.0);
}

TEST(KCliqueTest, FourCliquesMatchOracle) {
  graph::Graph g = RandomLabeled(2, 60, 500);
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto r = CountKCliques(&engine, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().cliques,
            graph::CountInstances(g, graph::Pattern::Clique(4)));
}

TEST(KCliqueTest, CountOnlyLastMatchesMaterialized) {
  graph::Graph g = RandomLabeled(42, 70, 500);
  gpusim::Device d1(TestParams()), d2(TestParams());
  core::GammaEngine e1(&d1, &g, {}), e2(&d2, &g, {});
  ASSERT_TRUE(e1.Prepare().ok());
  ASSERT_TRUE(e2.Prepare().ok());
  auto materialized = CountKCliques(&e1, 4);
  auto counted = CountKCliques(&e2, 4, /*count_only_last=*/true);
  ASSERT_TRUE(materialized.ok());
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted.value().cliques, materialized.value().cliques);
  // The count-only run skips the final flush: strictly less D2H traffic.
  EXPECT_LT(d2.stats().explicit_d2h_bytes, d1.stats().explicit_d2h_bytes);
  EXPECT_LE(counted.value().sim_millis, materialized.value().sim_millis);
}

TEST(KCliqueTest, CountOnlyWorksForEdges) {
  graph::Graph g = RandomLabeled(43, 40, 150);
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto r = CountKCliques(&engine, 2, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().cliques, g.num_edges());
}

TEST(KCliqueTest, TwoCliquesAreEdges) {
  graph::Graph g = RandomLabeled(3, 50, 200);
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto r = CountKCliques(&engine, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().cliques, g.num_edges());
}

TEST(WojTest, UnlabeledTriangleQuery) {
  graph::Graph g = RandomLabeled(4, 70, 350);
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto r = MatchWoj(&engine, graph::Pattern::Triangle());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().embeddings,
            graph::CountEmbeddings(g, graph::Pattern::Triangle()));
  EXPECT_EQ(r.value().instances,
            graph::CountInstances(g, graph::Pattern::Triangle()));
}

TEST(WojTest, LabeledQueriesMatchOracle) {
  graph::Graph g = RandomLabeled(5, 90, 450);
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  for (int q = 1; q <= 3; ++q) {
    graph::Pattern query = graph::Pattern::SmQuery(q, g.num_labels());
    auto r = MatchWoj(&engine, query);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().embeddings, graph::CountEmbeddings(g, query))
        << "query " << q;
  }
}

TEST(WojTest, StarAndCycleQueries) {
  graph::Graph g = RandomLabeled(6, 50, 220);
  for (const graph::Pattern& q :
       {graph::Pattern::Star(3), graph::Pattern::Cycle(4),
        graph::Pattern::Diamond()}) {
    gpusim::Device device(TestParams());
    core::GammaEngine engine(&device, &g, {});
    ASSERT_TRUE(engine.Prepare().ok());
    auto r = MatchWoj(&engine, q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().embeddings, graph::CountEmbeddings(g, q))
        << q.DebugString();
  }
}

TEST(BinaryJoinTest, AgreesWithWojOnInstances) {
  graph::Graph g = RandomLabeled(7, 40, 150);
  for (const graph::Pattern& q :
       {graph::Pattern::Triangle(), graph::Pattern::Path(3)}) {
    gpusim::Device d1(TestParams()), d2(TestParams());
    core::GammaEngine e1(&d1, &g, {}), e2(&d2, &g, {});
    ASSERT_TRUE(e1.Prepare().ok());
    ASSERT_TRUE(e2.Prepare().ok());
    auto woj = MatchWoj(&e1, q);
    auto bj = MatchBinaryJoin(&e2, q);
    ASSERT_TRUE(woj.ok());
    ASSERT_TRUE(bj.ok());
    EXPECT_EQ(bj.value().instances, woj.value().instances)
        << q.DebugString();
  }
}

TEST(MatchesQueryPrefixTest, TriangleSequence) {
  graph::Graph g = RandomLabeled(8, 30, 100);
  graph::Pattern tri = graph::Pattern::Triangle();
  std::vector<std::pair<int, int>> qedges = tri.EdgeList();
  // Any real triangle's edges in connected order must match.
  std::vector<std::vector<graph::VertexId>> embeddings;
  graph::EnumerateEmbeddings(g, tri, &embeddings);
  if (!embeddings.empty()) {
    auto& e = embeddings.front();
    std::vector<graph::EdgeId> edges{
        g.FindEdgeId(e[0], e[1]), g.FindEdgeId(e[0], e[2]),
        g.FindEdgeId(e[1], e[2])};
    EXPECT_TRUE(algos::MatchesQueryPrefix(g, edges, tri, qedges));
  }
}

TEST(FpmTest, MatchesEmbeddingCentricReference) {
  graph::Graph g = RandomLabeled(9, 40, 120);
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  FpmOptions options{.max_edges = 3, .min_support = 3};
  auto r = MineFrequentPatterns(&engine, options);
  ASSERT_TRUE(r.ok());

  auto ref = baselines::CpuFpmEmbeddingCentric(g, 3, 3,
                                               baselines::CpuModel{});
  EXPECT_EQ(r.value().patterns.size(), ref.patterns.size());
  for (const auto& e : ref.patterns.entries()) {
    const core::PatternEntry* mine = r.value().patterns.Find(e.code);
    ASSERT_NE(mine, nullptr) << e.exemplar.DebugString();
    EXPECT_EQ(mine->support, e.support) << e.exemplar.DebugString();
  }
}

TEST(FpmTest, MinSupportOnePreservesEverything) {
  graph::Graph g = RandomLabeled(10, 30, 80);
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto r = MineFrequentPatterns(&engine,
                                {.max_edges = 2, .min_support = 1});
  ASSERT_TRUE(r.ok());
  // Level-1 supports must sum to |E|.
  uint64_t single_edge_total = 0;
  for (const auto& e : r.value().patterns.entries()) {
    if (e.exemplar.num_edges() == 1) single_edge_total += e.support;
  }
  EXPECT_EQ(single_edge_total, g.num_edges());
}

TEST(FpmTest, HigherThresholdNeverAddsPatterns) {
  graph::Graph g = RandomLabeled(11, 50, 150);
  std::size_t prev = SIZE_MAX;
  for (uint64_t sup : {1, 4, 16, 64}) {
    gpusim::Device device(TestParams());
    core::GammaEngine engine(&device, &g, {});
    ASSERT_TRUE(engine.Prepare().ok());
    auto r = MineFrequentPatterns(&engine,
                                  {.max_edges = 2, .min_support = sup});
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r.value().patterns.size(), prev);
    prev = r.value().patterns.size();
  }
}

TEST(MotifTest, ConnectedOrderings) {
  EXPECT_EQ(algos::CountConnectedOrderings(graph::Pattern::Triangle()), 6u);
  EXPECT_EQ(algos::CountConnectedOrderings(graph::Pattern::Path(3)), 4u);
  EXPECT_EQ(algos::CountConnectedOrderings(graph::Pattern::Clique(4)), 24u);
  // Star(3): center+3 leaves; orderings counted by brute force below.
  uint64_t star = algos::CountConnectedOrderings(graph::Pattern::Star(3));
  EXPECT_GT(star, 0u);
  EXPECT_LT(star, 24u);
}

TEST(MotifTest, ThreeMotifCountsMatchOracle) {
  graph::Graph g = RandomLabeled(12, 60, 250);
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto r = CountMotifs(&engine, 3);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().motifs.size(), 2u);  // wedge + triangle
  uint64_t triangles =
      graph::CountInstances(g, graph::Pattern::Triangle());
  uint64_t wedges = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    uint64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  // Induced wedges exclude triangles (each triangle has 3 wedges).
  uint64_t induced_wedges = wedges - 3 * triangles;
  for (const auto& [pattern, count] : r.value().motifs) {
    if (pattern.num_edges() == 3) {
      EXPECT_EQ(count, triangles);
    } else {
      EXPECT_EQ(count, induced_wedges);
    }
  }
}

TEST(DatasetSmokeTest, SmallProxyEndToEnd) {
  graph::Graph g = graph::MakeDataset("ER");
  g.EnsureEdgeIndex();
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto tri = CountKCliques(&engine, 3);
  ASSERT_TRUE(tri.ok());
  EXPECT_EQ(tri.value().cliques,
            graph::CountInstances(g, graph::Pattern::Triangle()));
}

}  // namespace
}  // namespace gpm::algos
