#include <gtest/gtest.h>

#include "baselines/presets.h"
#include "baselines/systems.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"

namespace gpm::baselines {
namespace {

gpusim::SimParams BigDevice() {
  gpusim::SimParams p;
  p.device_memory_bytes = 32 << 20;
  p.um_device_buffer_bytes = 2 << 20;
  return p;
}

gpusim::SimParams TinyDevice() {
  gpusim::SimParams p;
  p.device_memory_bytes = 192 << 10;  // forces in-core systems out of memory
  p.um_device_buffer_bytes = 32 << 10;
  return p;
}

graph::Graph RandomLabeled(uint64_t seed, graph::VertexId n,
                           std::size_t m) {
  Rng rng(seed);
  graph::Graph g = graph::ErdosRenyi(n, m, &rng);
  graph::AssignLabelsZipf(&g, 3, 0.3, &rng);
  g.EnsureEdgeIndex();
  return g;
}

TEST(CpuRefTest, KCliqueMatchesOracle) {
  graph::Graph g = RandomLabeled(1, 70, 420);
  CpuRunResult r = CpuKClique(g, 3, CpuModel{});
  EXPECT_EQ(r.count, graph::CountInstances(g, graph::Pattern::Triangle()));
  EXPECT_GT(r.ops, 0u);
  CpuRunResult r4 = CpuKClique(g, 4, CpuModel{});
  EXPECT_EQ(r4.count,
            graph::CountInstances(g, graph::Pattern::Clique(4)));
}

TEST(CpuRefTest, SubgraphMatchMatchesOracle) {
  graph::Graph g = RandomLabeled(2, 60, 240);
  for (const graph::Pattern& q :
       {graph::Pattern::Triangle(), graph::Pattern::Path(4),
        graph::Pattern::SmQuery(1, g.num_labels())}) {
    CpuRunResult r = CpuSubgraphMatch(g, q, CpuModel{}, false);
    EXPECT_EQ(r.count, graph::CountEmbeddings(g, q)) << q.DebugString();
  }
}

TEST(CpuRefTest, SymmetryBreakingReducesOpsNotCount) {
  graph::Graph g = RandomLabeled(3, 60, 240);
  graph::Pattern q = graph::Pattern::Triangle();
  CpuRunResult plain = CpuSubgraphMatch(g, q, CpuModel{}, false);
  CpuRunResult broken = CpuSubgraphMatch(g, q, CpuModel{}, true);
  EXPECT_EQ(plain.count, broken.count);
  EXPECT_LT(broken.ops, plain.ops);
}

TEST(CpuRefTest, FpmVariantsAgreeAtMinSupportOne) {
  graph::Graph g = RandomLabeled(4, 30, 70);
  CpuFpmResult emb = CpuFpmEmbeddingCentric(g, 2, 1, CpuModel{});
  CpuFpmResult pat = CpuFpmPatternCentric(g, 2, 1, CpuModel{});
  EXPECT_EQ(emb.patterns.size(), pat.patterns.size());
  for (const auto& e : emb.patterns.entries()) {
    const core::PatternEntry* other = pat.patterns.Find(e.code);
    ASSERT_NE(other, nullptr) << e.exemplar.DebugString();
    EXPECT_EQ(other->support, e.support) << e.exemplar.DebugString();
  }
}

TEST(CpuModelTest, ThreadsScaleComputeUntilBandwidthBound) {
  CpuModel st{.threads = 1, .cycles_per_op = 8.0};
  CpuModel mt{.threads = 4, .cycles_per_op = 8.0, .efficiency = 1.0};
  // 4 threads are still compute-bound (2 cycles/op > memory floor).
  EXPECT_DOUBLE_EQ(st.OpsToMillis(32000000) / 4.0,
                   mt.OpsToMillis(32000000));
  // 32 threads hit the DRAM floor: ops * bytes_per_op / bandwidth.
  CpuModel wide{.threads = 32, .cycles_per_op = 8.0, .efficiency = 1.0};
  double floor_ms =
      32000000 * wide.bytes_per_op / wide.bandwidth_bytes_per_cycle * 1e-6;
  EXPECT_DOUBLE_EQ(wide.OpsToMillis(32000000), floor_ms);
  // More threads never make it slower than single-threaded.
  EXPECT_LT(wide.OpsToMillis(32000000), st.OpsToMillis(32000000));
}

TEST(PangolinGpuTest, MatchesGammaCountsWhenItFits) {
  graph::Graph g = RandomLabeled(5, 60, 300);
  gpusim::Device d1(BigDevice()), d2(BigDevice());
  auto gamma = GammaKClique(&d1, g, 3, GammaDefaultOptions());
  auto pangolin = PangolinGpuKClique(&d2, g, 3);
  ASSERT_TRUE(gamma.ok()) << gamma.status().ToString();
  ASSERT_TRUE(pangolin.ok()) << pangolin.status().ToString();
  EXPECT_EQ(gamma.value().count, pangolin.value().count);
}

TEST(PangolinGpuTest, CrashesOutOfMemoryOnLargeInput) {
  Rng rng(6);
  graph::Graph g = graph::ErdosRenyi(3000, 30000, &rng);
  g.EnsureEdgeIndex();
  gpusim::Device device(TinyDevice());
  auto r = PangolinGpuKClique(&device, g, 4);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDeviceOutOfMemory);
}

TEST(GammaTest, SurvivesWhereInCoreCrashes) {
  Rng rng(6);
  graph::Graph g = graph::ErdosRenyi(3000, 30000, &rng);
  g.EnsureEdgeIndex();
  gpusim::Device d1(TinyDevice());
  auto in_core = PangolinGpuKClique(&d1, g, 4);
  ASSERT_FALSE(in_core.ok());

  gpusim::SimParams p = TinyDevice();
  gpusim::Device d2(p);
  core::GammaOptions options = GammaDefaultOptions();
  options.extension.pool_bytes = 64 << 10;  // fit the tiny device
  auto gamma = GammaKClique(&d2, g, 4, options);
  ASSERT_TRUE(gamma.ok()) << gamma.status().ToString();
  EXPECT_EQ(gamma.value().count,
            graph::CountInstances(g, graph::Pattern::Clique(4)));
}

TEST(GsiTest, MatchesGammaOnSmQuery) {
  graph::Graph g = RandomLabeled(7, 70, 280);
  graph::Pattern q = graph::Pattern::SmQuery(1, g.num_labels());
  gpusim::Device d1(BigDevice()), d2(BigDevice());
  auto gamma = GammaMatch(&d1, g, q, GammaDefaultOptions());
  auto gsi = GsiMatch(&d2, g, q);
  ASSERT_TRUE(gamma.ok());
  ASSERT_TRUE(gsi.ok()) << gsi.status().ToString();
  EXPECT_EQ(gamma.value().count, gsi.value().count);
  EXPECT_EQ(gamma.value().count, graph::CountEmbeddings(g, q));
}

TEST(FpmSystemsTest, AllAgreeOnPatternCounts) {
  graph::Graph g = RandomLabeled(8, 40, 100);
  gpusim::Device d1(BigDevice()), d2(BigDevice());
  auto gamma = GammaFpm(&d1, g, 3, 2, GammaDefaultOptions());
  auto pangolin = PangolinGpuFpm(&d2, g, 3, 2);
  auto graphminer = GraphMinerFpm(g, 3, 2);
  auto pangolin_st = PangolinStFpm(g, 3, 2);
  ASSERT_TRUE(gamma.ok());
  ASSERT_TRUE(pangolin.ok()) << pangolin.status().ToString();
  EXPECT_EQ(gamma.value().count, pangolin.value().count);
  EXPECT_EQ(gamma.value().count, graphminer.patterns.size());
  EXPECT_EQ(graphminer.patterns.size(), pangolin_st.patterns.size());
}

TEST(PeakMemoryTest, GammaDeviceFootprintConstantPangolinGrows) {
  graph::Graph small = RandomLabeled(9, 80, 400);
  graph::Graph large = RandomLabeled(9, 400, 4000);
  gpusim::Device d1(BigDevice()), d2(BigDevice()), d3(BigDevice()),
      d4(BigDevice());
  auto gamma_small = GammaKClique(&d1, small, 3, GammaDefaultOptions());
  auto gamma_large = GammaKClique(&d2, large, 3, GammaDefaultOptions());
  auto pangolin_small = PangolinGpuKClique(&d3, small, 3);
  auto pangolin_large = PangolinGpuKClique(&d4, large, 3);
  ASSERT_TRUE(gamma_small.ok());
  ASSERT_TRUE(gamma_large.ok());
  ASSERT_TRUE(pangolin_small.ok());
  ASSERT_TRUE(pangolin_large.ok());
  // GAMMA's device footprint is its fixed buffers (UM page buffer +
  // write pool) regardless of input; the in-core system's grows with the
  // graph and its intermediate results.
  EXPECT_EQ(gamma_small.value().peak_device_bytes,
            gamma_large.value().peak_device_bytes);
  EXPECT_GT(pangolin_large.value().peak_device_bytes,
            pangolin_small.value().peak_device_bytes);
  // The workload data spills to host memory instead.
  EXPECT_GT(gamma_large.value().peak_host_bytes,
            gamma_small.value().peak_host_bytes);
}

TEST(PresetsTest, ConfigurationsDiffer) {
  core::GammaOptions gamma = GammaDefaultOptions();
  core::GammaOptions pangolin = PangolinGpuOptions();
  core::GammaOptions gsi = GsiOptions();
  EXPECT_EQ(gamma.access.placement, core::GraphPlacement::kHybridAdaptive);
  EXPECT_EQ(pangolin.access.placement,
            core::GraphPlacement::kDeviceResident);
  EXPECT_EQ(pangolin.extension.write_strategy,
            core::WriteStrategy::kNaiveTwoPass);
  EXPECT_EQ(gsi.extension.write_strategy, core::WriteStrategy::kPreAlloc);
  EXPECT_FALSE(pangolin.filter.compress);
  EXPECT_TRUE(gamma.filter.compress);
}

TEST(CpuSystemsTest, PeregrineFasterThanPangolinSt) {
  graph::Graph g = RandomLabeled(10, 100, 600);
  CpuRunResult st = PangolinStKClique(g, 3);
  CpuRunResult peregrine = PeregrineKClique(g, 3);
  EXPECT_EQ(st.count, peregrine.count);
  EXPECT_LT(peregrine.sim_millis, st.sim_millis);
}

}  // namespace
}  // namespace gpm::baselines
