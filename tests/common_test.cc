#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/scan.h"
#include "common/status.h"

namespace gpm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::DeviceOutOfMemory("16 bytes short");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kDeviceOutOfMemory);
  EXPECT_EQ(s.message(), "16 bytes short");
  EXPECT_EQ(s.ToString(), "DEVICE_OUT_OF_MEMORY: 16 bytes short");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (ErrorCode c :
       {ErrorCode::kOk, ErrorCode::kDeviceOutOfMemory,
        ErrorCode::kHostOutOfMemory, ErrorCode::kInvalidArgument,
        ErrorCode::kNotFound, ErrorCode::kFailedPrecondition,
        ErrorCode::kUnimplemented, ErrorCode::kInternal}) {
    EXPECT_STRNE(ErrorCodeName(c), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Mix64Test, InjectiveOnSmallRange) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) {
    seen.insert(Mix64(i));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(ScanTest, ExclusiveScanBasic) {
  std::vector<int> in{3, 1, 4, 1, 5};
  std::vector<int> out;
  int total = ExclusiveScan(in, &out);
  EXPECT_EQ(total, 14);
  EXPECT_EQ(out, (std::vector<int>{0, 3, 4, 8, 9}));
}

TEST(ScanTest, ExclusiveScanEmpty) {
  std::vector<int> in, out;
  EXPECT_EQ(ExclusiveScan(in, &out), 0);
  EXPECT_TRUE(out.empty());
}

TEST(ScanTest, InPlaceMatchesOutOfPlace) {
  std::vector<uint64_t> v{2, 7, 1, 8, 2, 8};
  std::vector<uint64_t> expected;
  ExclusiveScan(v, &expected);
  uint64_t total = ExclusiveScanInPlace(&v);
  EXPECT_EQ(total, 28u);
  EXPECT_EQ(v, expected);
}

TEST(ScanTest, InclusiveScan) {
  std::vector<int> in{1, 2, 3};
  std::vector<int> out;
  InclusiveScan(in, &out);
  EXPECT_EQ(out, (std::vector<int>{1, 3, 6}));
}

}  // namespace
}  // namespace gpm
