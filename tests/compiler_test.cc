// Pattern-compiler parity suite: the compiled engine must reproduce the
// hand-specialized algorithms' exact counts (tolerance 0) on every
// workload, and automatically derived symmetry restrictions must be
// complete (no duplicates, orbit-count identity) for asymmetric, fully
// symmetric, and labeled patterns.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "baselines/cpu_ref.h"
#include "core/compiled_engine.h"
#include "core/gamma.h"
#include "core/pattern_compiler.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "graph/pattern.h"
#include "minijson.h"

namespace gpm {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 16 << 20;
  p.um_device_buffer_bytes = 2 << 20;
  return p;
}

graph::Graph RandomLabeled(uint64_t seed, graph::VertexId n,
                           std::size_t m) {
  Rng rng(seed);
  graph::Graph g = graph::ErdosRenyi(n, m, &rng);
  graph::AssignLabelsZipf(&g, 3, 0.3, &rng);
  g.EnsureEdgeIndex();
  return g;
}

core::CompiledRunResult RunPlan(graph::Graph* g,
                                const core::CompiledPlan& plan) {
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, g, {});
  EXPECT_TRUE(engine.Prepare().ok());
  core::CompiledEngine compiled(&engine);
  auto run = compiled.Run(plan);
  EXPECT_TRUE(run.ok()) << run.status().message();
  return run.ok() ? run.value() : core::CompiledRunResult{};
}

TEST(CompilerParityTest, CliqueCountsMatchOracle) {
  graph::Graph g = RandomLabeled(11, 60, 500);
  core::PatternCompiler compiler(&g);
  for (int k : {3, 4, 5}) {
    core::CompiledPlan plan = compiler.CompileKClique(k, true).value();
    // The clique preset must fold every restriction into the ascending
    // intersection — no post-filters survive.
    for (const core::CompiledLevel& level : plan.levels) {
      EXPECT_TRUE(level.require_ascending) << "k=" << k;
      EXPECT_TRUE(level.restrictions.empty()) << "k=" << k;
    }
    EXPECT_TRUE(plan.levels.back().count_only) << "k=" << k;
    core::CompiledRunResult run = RunPlan(&g, plan);
    EXPECT_EQ(run.embeddings,
              graph::CountInstances(g, graph::Pattern::Clique(k)))
        << "k=" << k;
  }
}

// Sorted intra-subgraph degree sequence; distinguishes every connected
// shape on <= 4 vertices (wedge/triangle; path/star/cycle/tailed-
// triangle/diamond/clique).
std::vector<int> DegreeSequence(const graph::Pattern& p) {
  std::vector<int> degs;
  for (int i = 0; i < p.num_vertices(); ++i) degs.push_back(p.degree(i));
  std::sort(degs.begin(), degs.end());
  return degs;
}

// Brute-force census of connected induced k-vertex subgraphs, keyed by
// degree sequence.
std::map<std::vector<int>, uint64_t> InducedCensus(const graph::Graph& g,
                                                   int k) {
  std::map<std::vector<int>, uint64_t> census;
  std::vector<graph::VertexId> pick(k);
  auto visit = [&](auto&& self, int depth, graph::VertexId first) -> void {
    if (depth == k) {
      graph::Pattern shape = graph::PatternOfVertices(
          g, pick, /*use_labels=*/false);
      uint32_t reached = 1;  // bitmask BFS from vertex 0
      for (bool grew = true; grew;) {
        grew = false;
        for (int i = 0; i < k; ++i) {
          if (!((reached >> i) & 1)) continue;
          for (int j = 0; j < k; ++j) {
            if (shape.HasEdge(i, j) && !((reached >> j) & 1)) {
              reached |= 1u << j;
              grew = true;
            }
          }
        }
      }
      if (reached == (1u << k) - 1) ++census[DegreeSequence(shape)];
      return;
    }
    for (graph::VertexId v = first; v < g.num_vertices(); ++v) {
      pick[depth] = v;
      self(self, depth + 1, v + 1);
    }
  };
  visit(visit, 0, 0);
  return census;
}

TEST(CompilerParityTest, MotifCensusMatchesInducedOracle) {
  graph::Graph g = RandomLabeled(12, 40, 150);
  core::PatternCompiler compiler(&g);
  for (int k : {3, 4}) {
    core::CompiledRunResult run =
        RunPlan(&g, compiler.CompileMotifCensus(k).value());
    // 2 connected 3-vertex shapes, 6 connected 4-vertex shapes.
    EXPECT_EQ(run.motifs.size(), k == 3 ? 2u : 6u);
    std::map<std::vector<int>, uint64_t> oracle = InducedCensus(g, k);
    for (const auto& [shape, count] : run.motifs) {
      EXPECT_EQ(count, oracle[DegreeSequence(shape)])
          << shape.DebugString();
    }
  }
}

TEST(CompilerParityTest, FpmMatchesEmbeddingCentricReference) {
  graph::Graph g = RandomLabeled(9, 40, 120);
  core::PatternCompiler compiler(&g);
  core::CompiledRunResult run = RunPlan(&g, compiler.CompileFpm(3, 3).value());
  auto ref = baselines::CpuFpmEmbeddingCentric(g, 3, 3,
                                               baselines::CpuModel{});
  EXPECT_EQ(run.patterns.size(), ref.patterns.size());
  for (const auto& e : ref.patterns.entries()) {
    const core::PatternEntry* mine = run.patterns.Find(e.code);
    ASSERT_NE(mine, nullptr) << e.exemplar.DebugString();
    EXPECT_EQ(mine->support, e.support) << e.exemplar.DebugString();
  }
}

TEST(CompilerParityTest, SubgraphMatchQuerySet) {
  graph::Graph g = RandomLabeled(13, 50, 220);
  core::PatternCompiler compiler(&g);
  std::vector<graph::Pattern> queries = {
      graph::Pattern::SmQuery(1, g.num_labels()),
      graph::Pattern::SmQuery(2, g.num_labels()),
      graph::Pattern::SmQuery(3, g.num_labels()),
      graph::Pattern::Diamond(),
      graph::Pattern::Cycle(5),
      graph::Pattern::Star(3),
      graph::Pattern::TailedTriangle(),
  };
  for (const graph::Pattern& q : queries) {
    core::CompiledRunResult run =
        RunPlan(&g, compiler.CompileMatch(q, {}).value());
    EXPECT_EQ(run.embeddings, graph::CountEmbeddings(g, q))
        << q.DebugString();
    EXPECT_EQ(run.instances, graph::CountInstances(g, q))
        << q.DebugString();
  }
}

TEST(CompilerParityTest, EdgeJoinMatchesOracle) {
  graph::Graph g = RandomLabeled(14, 40, 150);
  core::PatternCompiler compiler(&g);
  for (const graph::Pattern& q :
       {graph::Pattern::Triangle(), graph::Pattern::Path(3)}) {
    core::CompiledRunResult run =
        RunPlan(&g, compiler.CompileEdgeJoin(q).value());
    EXPECT_EQ(run.instances, graph::CountInstances(g, q))
        << q.DebugString();
  }
}

// Orbit-count identity: with derived restrictions each instance appears
// exactly once (embeddings == instances == oracle instance count), and
// restricted * |Aut| == unrestricted embeddings. Count equality against
// the exact oracle implies completeness and no duplicates — every row the
// engine keeps is a valid embedding, so an over- or under-count would
// show.
void CheckSymmetryCompleteness(graph::Graph* g, const graph::Pattern& q,
                               int want_automorphisms) {
  core::PatternCompiler compiler(g);
  core::CompiledPlan plain = compiler.CompileMatch(q, {}).value();
  core::CompiledPlan sym =
      compiler.CompileMatch(q, {.break_symmetry = true}).value();
  EXPECT_EQ(sym.automorphisms,
            static_cast<uint64_t>(want_automorphisms))
      << q.DebugString();
  EXPECT_TRUE(sym.symmetry_broken);
  core::CompiledRunResult plain_run = RunPlan(g, plain);
  core::CompiledRunResult sym_run = RunPlan(g, sym);
  uint64_t want_instances = graph::CountInstances(*g, q);
  EXPECT_EQ(sym_run.embeddings, want_instances) << q.DebugString();
  EXPECT_EQ(sym_run.instances, want_instances) << q.DebugString();
  EXPECT_EQ(sym_run.embeddings * sym.automorphisms, plain_run.embeddings)
      << q.DebugString();
  EXPECT_EQ(plain_run.embeddings, graph::CountEmbeddings(*g, q))
      << q.DebugString();
}

TEST(SymmetryCompletenessTest, AsymmetricPattern) {
  graph::Graph g = RandomLabeled(15, 50, 220);
  // A labeled 3-path with distinct labels has a trivial automorphism
  // group; restrictions must be a no-op.
  graph::Pattern q = graph::Pattern::Path(3);
  q.SetLabel(0, 0);
  q.SetLabel(1, 1);
  q.SetLabel(2, 2);
  ASSERT_EQ(q.CountAutomorphisms(), 1);
  CheckSymmetryCompleteness(&g, q, 1);
}

TEST(SymmetryCompletenessTest, FullySymmetricPattern) {
  graph::Graph g = RandomLabeled(16, 50, 300);
  CheckSymmetryCompleteness(&g, graph::Pattern::Clique(4), 24);
}

TEST(SymmetryCompletenessTest, PartiallySymmetricPatterns) {
  graph::Graph g = RandomLabeled(17, 50, 220);
  CheckSymmetryCompleteness(&g, graph::Pattern::Diamond(), 4);
  CheckSymmetryCompleteness(&g, graph::Pattern::TailedTriangle(), 2);
  CheckSymmetryCompleteness(&g, graph::Pattern::Star(3), 6);
}

TEST(SymmetryCompletenessTest, LabeledPattern) {
  graph::Graph g = RandomLabeled(18, 60, 260);
  // q1 is the labeled triangle: two vertices share a label, one differs,
  // so exactly one automorphism survives the labeling.
  graph::Pattern q = graph::Pattern::SmQuery(1, g.num_labels());
  CheckSymmetryCompleteness(&g, q, q.CountAutomorphisms());
}

TEST(InputAwareTest, EdgeParallelStartPreservesCounts) {
  // Dense enough that the planner estimates more level-1 rows than start
  // vertices, so the foldable (0,1) restriction triggers an edge-parallel
  // start.
  Rng rng(19);
  graph::Graph g = graph::ErdosRenyi(60, 600, &rng);
  g.EnsureEdgeIndex();
  core::PatternCompiler compiler(&g);
  core::CompiledPlan plan =
      compiler
          .CompileMatch(graph::Pattern::Triangle(),
                        {.plan_strategy = core::PlanStrategy::kGreedyCardinality,
                         .break_symmetry = true,
                         .fold_ascending = true,
                         .input_aware = true})
          .value();
  EXPECT_EQ(plan.start, core::StartMode::kEdgeParallel);
  EXPECT_EQ(plan.first_depth(), 2);
  EXPECT_EQ(plan.levels.size(), 1u);
  core::CompiledRunResult run = RunPlan(&g, plan);
  EXPECT_EQ(run.instances,
            graph::CountInstances(g, graph::Pattern::Triangle()));
  EXPECT_EQ(run.embeddings, run.instances);
}

TEST(InputAwareTest, AutoPlansMatchOracleOnQuerySet) {
  graph::Graph g = RandomLabeled(20, 60, 300);
  core::PatternCompiler compiler(&g);
  core::CompileOptions aware{
      .plan_strategy = core::PlanStrategy::kGreedyCardinality,
      .break_symmetry = true,
      .fold_ascending = true,
      .input_aware = true};
  for (const graph::Pattern& q :
       {graph::Pattern::Diamond(), graph::Pattern::Cycle(4),
        graph::Pattern::SmQuery(1, g.num_labels()),
        graph::Pattern::SmQuery(3, g.num_labels())}) {
    core::CompiledRunResult run = RunPlan(&g, compiler.CompileMatch(q, aware).value());
    EXPECT_EQ(run.instances, graph::CountInstances(g, q))
        << q.DebugString();
  }
}

TEST(PlanJsonTest, EmitsWellFormedPlanDocument) {
  graph::Graph g = RandomLabeled(21, 60, 300);
  core::PatternCompiler compiler(&g);
  core::CompiledPlan plan =
      compiler
          .CompileMatch(graph::Pattern::Diamond(),
                        {.plan_strategy = core::PlanStrategy::kGreedyCardinality,
                         .break_symmetry = true,
                         .fold_ascending = true,
                         .input_aware = true})
          .value();
  std::string json = plan.ToJson();
  minijson::Value doc;
  ASSERT_TRUE(minijson::Parser(json).Parse(&doc)) << json;
  ASSERT_EQ(doc.type, minijson::Value::kObject);
  const minijson::Value* schema = doc.Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "gamma.plan.v1");
  EXPECT_EQ(doc.Find("kind")->str, "subgraph-match");
  const minijson::Value* order = doc.Find("order");
  ASSERT_NE(order, nullptr);
  EXPECT_EQ(order->array.size(), 4u);
  const minijson::Value* levels = doc.Find("levels");
  ASSERT_NE(levels, nullptr);
  ASSERT_EQ(levels->array.size(), plan.levels.size());
  for (const minijson::Value& level : levels->array) {
    const minijson::Value* ws = level.Find("write_strategy");
    ASSERT_NE(ws, nullptr);
    EXPECT_NE(ws->str, "inherit");  // input-aware plans pick explicitly
    ASSERT_NE(level.Find("depth"), nullptr);
    ASSERT_NE(level.Find("intersect"), nullptr);
    ASSERT_NE(level.Find("restrictions"), nullptr);
  }
  EXPECT_EQ(doc.Find("symmetry_broken")->boolean, true);
  // Summary mirrors the full document.
  core::PlanSummary summary = plan.Summary();
  EXPECT_TRUE(summary.enabled);
  EXPECT_EQ(summary.kind, "subgraph-match");
  EXPECT_EQ(summary.levels, static_cast<int>(plan.levels.size()));
  EXPECT_TRUE(summary.symmetry_broken);
}

}  // namespace
}  // namespace gpm
