// Tests for the gamma-prof critical-path analyzer: malformed-input
// rejection (forward dependency edges, unbalanced phase markers), the
// structural DAG property (every binding edge points backwards), span
// containment within phase windows, the bit-exact identity between
// critical-path length and the end-to-end clock on single-stream runs
// (and <= on multi-stream), the exact fold-sum decomposition of phase
// attributions, and the what-if factor-1.0 identity projection.
#include <gtest/gtest.h>

#include <string>

#include "algos/kclique.h"
#include "common/random.h"
#include "core/gamma.h"
#include "graph/generators.h"
#include "gpusim/critpath.h"
#include "gpusim/device.h"
#include "gpusim/resource_class.h"

namespace gpm::prof {
namespace {

using gpusim::kNumResourceClasses;
using gpusim::ResourceClass;
using gpusim::ResourceCycles;
using Kind = CommandRecord::Kind;

gpusim::SimParams RecordingParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 16ull << 20;
  p.record_commands = true;
  return p;
}

/// The canonical left-to-right fold every exact-sum assertion uses — the
/// same order Analyze closes residuals against.
double FoldSum(const ResourceCycles& a) {
  double s = 0.0;
  for (int c = 0; c < kNumResourceClasses; ++c) {
    s += a[static_cast<std::size_t>(c)];
  }
  return s;
}

CommandRecord HostWork(double start, double charge) {
  CommandRecord rec;
  rec.kind = Kind::kHostWork;
  rec.name = "host-work";
  rec.start = start;
  rec.end = start + charge;
  rec.charge = charge;
  return rec;
}

CommandRecord Marker(Kind kind, const std::string& name, double at) {
  CommandRecord rec;
  rec.kind = kind;
  rec.name = name;
  rec.start = at;
  rec.end = at;
  return rec;
}

TEST(CommandLogTest, CapacityDropsAndCountsExactly) {
  CommandLog log;
  log.set_enabled(true);
  log.set_capacity(2);
  EXPECT_GE(log.Append(HostWork(0, 10)), 0);
  EXPECT_GE(log.Append(HostWork(10, 10)), 0);
  EXPECT_EQ(log.Append(HostWork(20, 10)), -1);
  EXPECT_EQ(log.commands().size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  log.Clear();
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_TRUE(log.commands().empty());
}

TEST(CommandLogTest, DisabledRecordsNothing) {
  CommandLog log;
  EXPECT_EQ(log.Append(HostWork(0, 10)), -1);
  EXPECT_TRUE(log.commands().empty());
  EXPECT_EQ(log.dropped(), 0u);  // disabled != dropped
}

TEST(CritpathAnalyzeTest, RejectsForwardWaitEdge) {
  CommandLog log;
  log.set_enabled(true);
  CommandRecord wait;
  wait.kind = Kind::kEventWait;
  wait.name = "wait-event";
  wait.wait_pred = 5;  // points past the end of the log
  log.Append(wait);
  auto analyzed = Analyze(log, {});
  ASSERT_FALSE(analyzed.ok());
  EXPECT_NE(analyzed.status().ToString().find("forward"), std::string::npos)
      << analyzed.status().ToString();
}

TEST(CritpathAnalyzeTest, RejectsForwardLinkEdge) {
  CommandLog log;
  log.set_enabled(true);
  CommandRecord copy;
  copy.kind = Kind::kCopy;
  copy.name = "h2d";
  copy.link_transfer = 8;
  copy.link_pred = 0;  // self-reference: still not strictly backwards
  log.Append(copy);
  auto analyzed = Analyze(log, {});
  ASSERT_FALSE(analyzed.ok());
  EXPECT_NE(analyzed.status().ToString().find("forward"), std::string::npos)
      << analyzed.status().ToString();
}

TEST(CritpathAnalyzeTest, RejectsUnbalancedPhaseMarkers) {
  {
    // End without a begin.
    CommandLog log;
    log.set_enabled(true);
    log.Append(Marker(Kind::kPhaseEnd, "lonely", 0));
    auto analyzed = Analyze(log, {});
    ASSERT_FALSE(analyzed.ok());
    EXPECT_NE(analyzed.status().ToString().find("unbalanced"),
              std::string::npos)
        << analyzed.status().ToString();
  }
  {
    // Begin that never closes.
    CommandLog log;
    log.set_enabled(true);
    log.Append(Marker(Kind::kPhaseBegin, "open", 0));
    log.Append(HostWork(0, 10));
    auto analyzed = Analyze(log, {});
    ASSERT_FALSE(analyzed.ok());
    EXPECT_NE(analyzed.status().ToString().find("never closed"),
              std::string::npos)
        << analyzed.status().ToString();
  }
  {
    // Interleaved (non-nesting) markers.
    CommandLog log;
    log.set_enabled(true);
    log.Append(Marker(Kind::kPhaseBegin, "a", 0));
    log.Append(Marker(Kind::kPhaseBegin, "b", 0));
    log.Append(Marker(Kind::kPhaseEnd, "a", 0));
    auto analyzed = Analyze(log, {});
    ASSERT_FALSE(analyzed.ok());
    EXPECT_NE(analyzed.status().ToString().find("nest"), std::string::npos)
        << analyzed.status().ToString();
  }
}

TEST(CritpathAnalyzeTest, HandBuiltSerialChainIsExact) {
  CommandLog log;
  log.set_enabled(true);
  log.Append(Marker(Kind::kPhaseBegin, "p", 0));
  log.Append(HostWork(0, 10));
  log.Append(HostWork(10, 5));
  log.Append(Marker(Kind::kPhaseEnd, "p", 15));
  auto analyzed = Analyze(log, {});
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  const CritpathReport& report = analyzed.value();
  EXPECT_EQ(report.critical_path_cycles, 15.0);
  EXPECT_EQ(report.resource_cycles[static_cast<std::size_t>(
                ResourceClass::kCompute)],
            15.0);
  EXPECT_EQ(FoldSum(report.resource_cycles), report.critical_path_cycles);
  ASSERT_NE(report.FindPhase("p"), nullptr);
  EXPECT_EQ(report.FindPhase("p")->cycles, 15.0);
  EXPECT_EQ(FoldSum(report.FindPhase("p")->attribution), 15.0);
  EXPECT_EQ(report.FindPhase("p")->binding, ResourceClass::kCompute);
  // Both real commands sit on the (only) chain: zero slack.
  for (const SpanInfo& s : report.spans) EXPECT_EQ(s.slack, 0.0);
  // Identity what-if reproduces the total exactly.
  ASSERT_FALSE(report.whatifs.empty());
  EXPECT_EQ(report.whatifs.front().cost_factor, 1.0);
  EXPECT_EQ(report.whatifs.front().projected_cycles,
            report.critical_path_cycles);
}

TEST(CritpathAnalyzeTest, PartialLogSuppressesWhatIfs) {
  CommandLog log;
  log.set_enabled(true);
  log.set_capacity(1);
  log.Append(HostWork(0, 10));
  log.Append(HostWork(10, 10));  // dropped
  ASSERT_EQ(log.dropped(), 1u);
  auto analyzed = Analyze(log, {});
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_TRUE(analyzed.value().partial);
  EXPECT_EQ(analyzed.value().dropped_commands, 1u);
  EXPECT_TRUE(analyzed.value().whatifs.empty());
}

TEST(CritpathAnalyzeTest, ExtraDroppedAlsoMarksPartial) {
  CommandLog log;
  log.set_enabled(true);
  log.Append(HostWork(0, 10));
  AnalyzeOptions options;
  options.extra_dropped = 3;  // e.g. kernel_trace_dropped > 0
  auto analyzed = Analyze(log, options);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_TRUE(analyzed.value().partial);
  EXPECT_TRUE(analyzed.value().whatifs.empty());
}

/// Runs triangle counting through the engine on a recording device and
/// returns the analyzed report (asserting a complete log).
CritpathReport EngineReport(std::size_t streams, gpusim::Device* device) {
  Rng rng(42);
  graph::Graph g = graph::Rmat(10, 6000, &rng);
  core::GammaOptions options;
  if (streams > 1) {
    options.extension.num_streams = streams;
    options.aggregation.sort.num_streams = streams;
  }
  core::GammaEngine engine(device, &g, options);
  EXPECT_TRUE(engine.Prepare().ok());
  auto result = algos::CountTriangles(&engine);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(device->critpath().dropped(), 0u)
      << "raise the capacity: these assertions need a complete log";
  auto analyzed = Analyze(*device);
  EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  return std::move(analyzed).value();
}

TEST(CritpathEngineTest, SingleStreamIdentityIsBitExact) {
  gpusim::Device device(RecordingParams());
  CritpathReport report = EngineReport(1, &device);
  EXPECT_FALSE(report.partial);

  // The acceptance identity: critical-path length equals the end-to-end
  // simulated cycle count with tolerance zero.
  EXPECT_EQ(report.critical_path_cycles, device.now_cycles());
  EXPECT_EQ(report.total_cycles, device.now_cycles());

  // Whole-run attribution folds exactly to the critical path.
  EXPECT_EQ(FoldSum(report.resource_cycles), report.critical_path_cycles);

  // Per-phase attribution folds exactly to each phase's wall cycles —
  // which in turn match the RunProfile's accounting for the same phase.
  ASSERT_FALSE(report.phases.empty());
  for (const PhaseBottleneck& ph : report.phases) {
    EXPECT_EQ(FoldSum(ph.attribution), ph.cycles) << ph.name;
    const gpusim::PhaseRecord* profiled = device.profile().Find(ph.name);
    ASSERT_NE(profiled, nullptr) << ph.name;
    EXPECT_EQ(ph.cycles, profiled->cycles) << ph.name;
    EXPECT_EQ(ph.invocations, profiled->invocations) << ph.name;
  }

  // What-if identity: factor 1.0 reproduces the actual cycles exactly.
  ASSERT_FALSE(report.whatifs.empty());
  EXPECT_EQ(report.whatifs.front().cost_factor, 1.0);
  EXPECT_EQ(report.whatifs.front().projected_cycles,
            report.critical_path_cycles);
  // Speedup what-ifs are lower bounds: never slower than actual.
  for (const WhatIf& wi : report.whatifs) {
    EXPECT_LE(wi.projected_cycles, report.critical_path_cycles)
        << gpusim::ResourceClassName(wi.resource);
  }
}

TEST(CritpathEngineTest, DagIsAcyclicAndSpansNestInPhases) {
  gpusim::Device device(RecordingParams());
  CritpathReport report = EngineReport(1, &device);

  // Structural DAG property: every dependency edge points backwards.
  for (const SpanInfo& s : report.spans) {
    EXPECT_LT(s.binding_pred, s.index);
    EXPECT_GE(s.start, 0.0);
    EXPECT_LE(s.end, report.total_cycles);
    EXPECT_LE(s.start, s.end);
    EXPECT_GE(s.slack, 0.0);
  }

  // Child spans are contained in their parent phase window: every command
  // tagged with a phase lies inside one of that phase's marker windows.
  const std::vector<CommandRecord>& cmds = device.critpath().commands();
  struct Window {
    std::string name;
    double begin = 0;
    double end = 0;
  };
  std::vector<Window> windows;
  std::vector<Window> open;
  for (const CommandRecord& rec : cmds) {
    if (rec.kind == Kind::kPhaseBegin) {
      open.push_back({rec.name, rec.start, 0});
    } else if (rec.kind == Kind::kPhaseEnd) {
      ASSERT_FALSE(open.empty());
      open.back().end = rec.start;
      windows.push_back(open.back());
      open.pop_back();
    }
  }
  ASSERT_TRUE(open.empty());
  ASSERT_FALSE(windows.empty());
  int contained = 0;
  for (const SpanInfo& s : report.spans) {
    if (s.phase.empty()) continue;
    bool found = false;
    for (const Window& win : windows) {
      if (win.name == s.phase && win.begin <= s.start && s.end <= win.end) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "span " << s.index << " (" << s.name << ") ["
                       << s.start << ", " << s.end
                       << "] escapes its phase '" << s.phase << "'";
    ++contained;
  }
  EXPECT_GT(contained, 0);

  // The critical path itself is ordered and ends at the sink.
  ASSERT_FALSE(report.critical_path.empty());
  for (std::size_t i = 1; i < report.critical_path.size(); ++i) {
    EXPECT_LT(report.critical_path[i - 1], report.critical_path[i]);
  }
}

TEST(CritpathEngineTest, MultiStreamPathBoundedByTotal) {
  gpusim::Device device(RecordingParams());
  CritpathReport report = EngineReport(4, &device);
  EXPECT_GT(report.streams, 1);
  EXPECT_LE(report.critical_path_cycles, device.now_cycles());
  EXPECT_EQ(FoldSum(report.resource_cycles), report.critical_path_cycles);
}

TEST(CritpathEngineTest, ReportJsonCarriesSchemaAndIdentity) {
  gpusim::Device device(RecordingParams());
  CritpathReport report = EngineReport(1, &device);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\": \"gamma.critpath.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"whatif\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"sync_idle\""), std::string::npos);
}

}  // namespace
}  // namespace gpm::prof
