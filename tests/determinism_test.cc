// Determinism guarantees of the simulated device:
//
//  * running the same workload twice in one process yields bit-identical
//    hardware counters and cycle totals (no hidden global state, no
//    address- or hash-order-dependent arithmetic), and
//  * running warp tasks on a host thread pool (SimParams::host_threads)
//    changes nothing: the record/replay executor must reproduce the
//    serial schedule's counters and cycles bit-for-bit, whatever
//    interleaving the pool picked.
//
// Also pins the stream attribution of count-only extension kernels: they
// launch on the pipeline's compute stream like every other extension
// strategy, not on the default stream (a regression a trace comparison
// catches but aggregate counters cannot).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "algos/fpm.h"
#include "algos/kclique.h"
#include "algos/motif.h"
#include "algos/subgraph_matching.h"
#include "core/gamma.h"
#include "graph/generators.h"
#include "graph/pattern.h"
#include "gpusim/device.h"

namespace gpm {
namespace {

gpusim::SimParams TestParams(int host_threads) {
  gpusim::SimParams p;
  p.device_memory_bytes = 16 << 20;
  p.um_device_buffer_bytes = 2 << 20;
  p.host_threads = host_threads;
  return p;
}

graph::Graph TestGraph() {
  Rng rng(7);
  graph::Graph g = graph::ErdosRenyi(80, 400, &rng);
  graph::AssignLabelsZipf(&g, 3, 0.3, &rng);
  g.EnsureEdgeIndex();
  return g;
}

enum class Algo { kKcl, kMotif, kFpm, kSm };

const char* AlgoName(Algo a) {
  switch (a) {
    case Algo::kKcl:
      return "kcl";
    case Algo::kMotif:
      return "motif";
    case Algo::kFpm:
      return "fpm";
    case Algo::kSm:
      return "sm";
  }
  return "?";
}

struct RunOutcome {
  gpusim::DeviceStats stats;
  double cycles = 0;
};

// Runs one algorithm end-to-end on a fresh device and returns the final
// counters and clock.
RunOutcome RunAlgo(Algo algo, const graph::Graph& g, int host_threads) {
  gpusim::Device device(TestParams(host_threads));
  core::GammaEngine engine(&device, &g, {});
  EXPECT_TRUE(engine.Prepare().ok());
  switch (algo) {
    case Algo::kKcl:
      EXPECT_TRUE(algos::CountKCliques(&engine, 4).ok());
      break;
    case Algo::kMotif:
      EXPECT_TRUE(algos::CountMotifs(&engine, 3).ok());
      break;
    case Algo::kFpm: {
      algos::FpmOptions fpm;
      fpm.max_edges = 3;
      fpm.min_support = 20;
      EXPECT_TRUE(algos::MineFrequentPatterns(&engine, fpm).ok());
      break;
    }
    case Algo::kSm: {
      graph::Pattern q = graph::Pattern::SmQuery(1, g.num_labels());
      EXPECT_TRUE(algos::MatchWoj(&engine, q).ok());
      break;
    }
  }
  return {device.stats().Snapshot(), device.now_cycles()};
}

void ExpectBitIdentical(const RunOutcome& a, const RunOutcome& b,
                        const std::string& label) {
  for (const auto& f : gpusim::DeviceStats::Fields()) {
    EXPECT_EQ(a.stats.*f.member, b.stats.*f.member)
        << label << ": counter " << f.name << " diverged";
  }
  // Exact double equality on purpose: the determinism contract is
  // bit-identity of the cycle arithmetic, not closeness.
  EXPECT_EQ(a.cycles, b.cycles) << label << ": clock diverged";
}

TEST(DeterminismTest, DoubleRunIsBitIdentical) {
  graph::Graph g = TestGraph();
  for (Algo algo : {Algo::kKcl, Algo::kMotif, Algo::kFpm, Algo::kSm}) {
    RunOutcome first = RunAlgo(algo, g, /*host_threads=*/1);
    RunOutcome second = RunAlgo(algo, g, /*host_threads=*/1);
    ExpectBitIdentical(first, second,
                       std::string(AlgoName(algo)) + " serial double-run");
  }
}

TEST(DeterminismTest, HostThreadPoolIsBitIdentical) {
  graph::Graph g = TestGraph();
  for (Algo algo : {Algo::kKcl, Algo::kMotif, Algo::kFpm, Algo::kSm}) {
    RunOutcome serial = RunAlgo(algo, g, /*host_threads=*/1);
    RunOutcome pooled = RunAlgo(algo, g, /*host_threads=*/4);
    ExpectBitIdentical(serial, pooled,
                       std::string(AlgoName(algo)) + " 1 vs 4 host threads");
  }
}

// With the double-buffered pipeline (num_streams >= 2) every extension
// kernel belongs on the compute stream. Count-only launches used to go
// through the synchronous default-stream API, which skewed stream clocks
// and trace attribution relative to the materializing strategies.
TEST(DeterminismTest, CountOnlyExtensionRunsOnComputeStream) {
  graph::Graph g = TestGraph();
  gpusim::Device device(TestParams(/*host_threads=*/1));
  device.trace().set_enabled(true);
  core::GammaOptions options;
  options.extension.num_streams = 2;
  core::GammaEngine engine(&device, &g, options);
  ASSERT_TRUE(engine.Prepare().ok());
  ASSERT_TRUE(algos::CountKCliques(&engine, 3, /*count_only_last=*/true).ok());

  std::set<int> count_only_tracks;
  std::set<int> materializing_tracks;
  for (const auto& e : device.trace().events()) {
    if (e.kind != gpusim::TraceRecorder::Kind::kKernel) continue;
    if (e.name == "extension-count-only") count_only_tracks.insert(e.track);
    if (e.name == "extension-dynamic") materializing_tracks.insert(e.track);
  }
  ASSERT_FALSE(count_only_tracks.empty());
  ASSERT_FALSE(materializing_tracks.empty());
  EXPECT_EQ(count_only_tracks, materializing_tracks)
      << "count-only extension kernels must share the materializing "
         "strategies' compute stream";
}

}  // namespace
}  // namespace gpm
