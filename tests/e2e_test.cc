// End-to-end integration tests on the Table II dataset proxies: the whole
// pipeline (dataset generation -> staging -> primitives -> algorithms)
// against the reference oracles, plus cross-system count agreement — the
// invariants the benchmark harness relies on.
#include <gtest/gtest.h>

#include "algos/fpm.h"
#include "algos/kclique.h"
#include "algos/subgraph_matching.h"
#include "baselines/presets.h"
#include "baselines/systems.h"
#include "graph/datasets.h"
#include "graph/isomorphism.h"
#include "graph/metrics.h"

namespace gpm {
namespace {

gpusim::SimParams BenchLikeParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 4ull << 20;
  p.um_device_buffer_bytes = 256ull << 10;
  return p;
}

core::GammaOptions BenchLikeOptions() {
  core::GammaOptions o = baselines::GammaDefaultOptions();
  o.extension.pool_bytes = 2ull << 20;
  return o;
}

TEST(EndToEndTest, TrianglesOnSmallProxiesMatchMetrics) {
  for (const char* name : {"ER", "EA"}) {
    graph::Graph g = graph::MakeDataset(name);
    graph::GraphMetrics m = graph::ComputeMetrics(g);
    gpusim::Device device(BenchLikeParams());
    core::GammaEngine engine(&device, &g, BenchLikeOptions());
    ASSERT_TRUE(engine.Prepare().ok());
    auto r = algos::CountTriangles(&engine);
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_EQ(r.value().cliques, m.triangles) << name;
  }
}

TEST(EndToEndTest, AllGpuSystemsAgreeWhereTheyRun) {
  graph::Graph g = graph::MakeDataset("ER");
  g.EnsureEdgeIndex();
  graph::Pattern q = graph::Pattern::SmQuery(1, g.num_labels());
  uint64_t oracle = graph::CountEmbeddings(g, q);

  gpusim::Device d1(BenchLikeParams());
  auto gamma = baselines::GammaMatch(&d1, g, q, BenchLikeOptions());
  ASSERT_TRUE(gamma.ok());
  EXPECT_EQ(gamma.value().count, oracle);

  gpusim::SimParams in_core = BenchLikeParams();
  in_core.um_device_buffer_bytes = 0;
  gpusim::Device d2(in_core);
  auto gsi = baselines::GsiMatch(&d2, g, q);
  if (gsi.ok()) {
    EXPECT_EQ(gsi.value().count, oracle);
  } else {
    EXPECT_EQ(gsi.status().code(), ErrorCode::kDeviceOutOfMemory);
  }
}

TEST(EndToEndTest, CpuAndGpuFpmAgreeOnProxy) {
  graph::Graph g = graph::MakeDataset("ER");
  g.EnsureEdgeIndex();
  uint64_t minsup = g.num_edges() / 4;
  gpusim::Device device(BenchLikeParams());
  auto gamma = baselines::GammaFpm(&device, g, 2, minsup,
                                   BenchLikeOptions());
  ASSERT_TRUE(gamma.ok());
  auto cpu = baselines::GraphMinerFpm(g, 2, minsup);
  EXPECT_EQ(gamma.value().count, cpu.patterns.size());
}

TEST(EndToEndTest, ProxyFamiliesCarryExpectedSkew) {
  // Web/social proxies must be markedly more skewed than email ones —
  // that is what makes the hybrid access policy's job non-trivial.
  graph::GraphMetrics social =
      graph::ComputeMetrics(graph::MakeDataset("CL"));
  graph::GraphMetrics email =
      graph::ComputeMetrics(graph::MakeDataset("ER"));
  EXPECT_GT(social.skew, email.skew);
  EXPECT_GT(social.skew, 20.0);
}

TEST(EndToEndTest, SymmetricAndOrientedAgreeOnProxy) {
  graph::Graph g = graph::MakeDataset("EA");
  gpusim::Device d1(BenchLikeParams()), d2(BenchLikeParams());
  core::GammaEngine e1(&d1, &g, BenchLikeOptions());
  ASSERT_TRUE(e1.Prepare().ok());
  auto plain = algos::CountKCliques(&e1, 4);
  auto oriented =
      algos::CountKCliquesOriented(&d2, g, 4, BenchLikeOptions());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(oriented.ok());
  EXPECT_EQ(plain.value().cliques, oriented.value().cliques);

  gpusim::Device d3(BenchLikeParams());
  core::GammaEngine e3(&d3, &g, BenchLikeOptions());
  ASSERT_TRUE(e3.Prepare().ok());
  auto sym = algos::MatchWojSymmetric(&e3, graph::Pattern::Clique(4));
  ASSERT_TRUE(sym.ok());
  EXPECT_EQ(sym.value().instances, plain.value().cliques);
}

TEST(EndToEndTest, UpscaledProxyKeepsPerCloneCounts) {
  // CL8 is CL upscaled 8x with per-edge random matchings; its triangle
  // count need not be exactly 8x, but its density matches the base.
  graph::Graph base = graph::MakeDataset("CL");
  graph::Graph scaled = graph::MakeDataset("CL8");
  EXPECT_NEAR(scaled.average_degree(), base.average_degree(),
              base.average_degree() * 0.15);
  EXPECT_EQ(scaled.num_vertices(), 8 * base.num_vertices());
}

TEST(EndToEndTest, DeterministicAcrossProcessRestarts) {
  // Dataset generation and the whole pipeline are seeded: two runs in the
  // same process must agree bit-for-bit on counts and simulated time.
  double times[2];
  uint64_t counts[2];
  for (int run = 0; run < 2; ++run) {
    graph::Graph g = graph::MakeDataset("EA");
    gpusim::Device device(BenchLikeParams());
    core::GammaEngine engine(&device, &g, BenchLikeOptions());
    ASSERT_TRUE(engine.Prepare().ok());
    auto r = algos::CountKCliques(&engine, 4);
    ASSERT_TRUE(r.ok());
    counts[run] = r.value().cliques;
    times[run] = r.value().sim_millis;
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_DOUBLE_EQ(times[0], times[1]);
}

}  // namespace
}  // namespace gpm
