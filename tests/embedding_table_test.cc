#include <gtest/gtest.h>

#include "core/compaction.h"
#include "core/embedding_table.h"
#include "gpusim/device.h"

namespace gpm::core {
namespace {

gpusim::SimParams SmallParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 1 << 20;
  p.um_device_buffer_bytes = 64 << 10;
  return p;
}

// Builds the Fig. 6-style table:
//   col0: a b      col1 children: a->(x,y), b->(z)
std::unique_ptr<EmbeddingTable> TwoColumnTable(gpusim::Device* device) {
  auto t = std::make_unique<EmbeddingTable>(device, TableKind::kVertex);
  EXPECT_TRUE(t->InitFirstColumn({10, 20}).ok());
  EXPECT_TRUE(t->AppendColumn({100, 101, 200}, {0, 0, 1}).ok());
  return t;
}

TEST(EmbeddingTableTest, InitAndShape) {
  gpusim::Device device(SmallParams());
  auto t = TwoColumnTable(&device);
  EXPECT_EQ(t->length(), 2);
  EXPECT_EQ(t->num_embeddings(), 3u);
  EXPECT_EQ(t->column(0).size(), 2u);
}

TEST(EmbeddingTableTest, GetEmbeddingWalksParents) {
  gpusim::Device device(SmallParams());
  auto t = TwoColumnTable(&device);
  EXPECT_EQ(t->GetEmbedding(1, 0), (std::vector<Unit>{10, 100}));
  EXPECT_EQ(t->GetEmbedding(1, 2), (std::vector<Unit>{20, 200}));
}

TEST(EmbeddingTableTest, MaterializeAll) {
  gpusim::Device device(SmallParams());
  auto t = TwoColumnTable(&device);
  auto all = t->Materialize();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[1], (std::vector<Unit>{10, 101}));
}

TEST(EmbeddingTableTest, PopColumnRollsBack) {
  gpusim::Device device(SmallParams());
  auto t = TwoColumnTable(&device);
  t->PopColumn();
  EXPECT_EQ(t->length(), 1);
  EXPECT_EQ(t->num_embeddings(), 2u);
}

TEST(EmbeddingTableTest, StorageBytesCountsAllColumns) {
  gpusim::Device device(SmallParams());
  auto t = TwoColumnTable(&device);
  // (2 + 3) rows x 8 bytes each.
  EXPECT_EQ(t->StorageBytes(), 40u);
  EXPECT_GE(device.host_tracker().current_bytes(), 40u);
}

TEST(EmbeddingTableTest, DeviceResidentAllocatesOnDevice) {
  gpusim::Device device(SmallParams());
  EmbeddingTable t(&device, TableKind::kVertex, /*device_resident=*/true);
  std::size_t before = device.memory().used_bytes();
  ASSERT_TRUE(t.InitFirstColumn({1, 2, 3}).ok());
  EXPECT_EQ(device.memory().used_bytes(), before + 3 * 8);
}

TEST(EmbeddingTableTest, DeviceResidentOomSurfaces) {
  gpusim::SimParams p = SmallParams();
  p.device_memory_bytes = 80 << 10;
  p.um_device_buffer_bytes = 64 << 10;  // leaves 16 KiB
  gpusim::Device device(p);
  EmbeddingTable t(&device, TableKind::kVertex, true);
  std::vector<Unit> big(4096, 1);  // 32 KiB > 16 KiB free
  Status st = t.InitFirstColumn(big);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kDeviceOutOfMemory);
}

TEST(CompactionTest, DropsMarkedRows) {
  gpusim::Device device(SmallParams());
  auto t = TwoColumnTable(&device);
  CompactionResult r = CompactTable(t.get(), {1, 0, 1}, false);
  EXPECT_EQ(r.removed_last, 1u);
  EXPECT_EQ(t->num_embeddings(), 2u);
  EXPECT_EQ(t->GetEmbedding(1, 0), (std::vector<Unit>{10, 100}));
  EXPECT_EQ(t->GetEmbedding(1, 1), (std::vector<Unit>{20, 200}));
}

TEST(CompactionTest, PrunesOrphanAncestors) {
  gpusim::Device device(SmallParams());
  auto t = TwoColumnTable(&device);
  // Remove both children of parent 'a' (rows 0 and 1).
  CompactionResult r = CompactTable(t.get(), {0, 0, 1}, true);
  EXPECT_EQ(r.removed_last, 2u);
  EXPECT_EQ(r.removed_ancestors, 1u);
  EXPECT_EQ(t->column(0).size(), 1u);
  EXPECT_EQ(t->GetEmbedding(1, 0), (std::vector<Unit>{20, 200}));
}

TEST(CompactionTest, KeepAllIsNoOp) {
  gpusim::Device device(SmallParams());
  auto t = TwoColumnTable(&device);
  CompactionResult r = CompactTable(t.get(), {1, 1, 1}, true);
  EXPECT_EQ(r.removed_last, 0u);
  EXPECT_EQ(r.removed_ancestors, 0u);
  EXPECT_EQ(t->num_embeddings(), 3u);
}

TEST(CompactionTest, RemoveAllEmptiesTable) {
  gpusim::Device device(SmallParams());
  auto t = TwoColumnTable(&device);
  CompactTable(t.get(), {0, 0, 0}, true);
  EXPECT_EQ(t->num_embeddings(), 0u);
  EXPECT_EQ(t->column(0).size(), 0u);
}

TEST(CompactionTest, ChargesKernelCycles) {
  gpusim::Device device(SmallParams());
  auto t = TwoColumnTable(&device);
  CompactionResult r = CompactTable(t.get(), {1, 0, 1}, true);
  EXPECT_GT(r.kernel_cycles, 0.0);
}

TEST(CompactionTest, ThreeLevelCascade) {
  gpusim::Device device(SmallParams());
  EmbeddingTable t(&device, TableKind::kVertex);
  ASSERT_TRUE(t.InitFirstColumn({1, 2}).ok());
  ASSERT_TRUE(t.AppendColumn({11, 21}, {0, 1}).ok());
  ASSERT_TRUE(t.AppendColumn({111, 211, 212}, {0, 1, 1}).ok());
  // Kill every descendant of root 1.
  CompactTable(&t, {0, 1, 1}, true);
  EXPECT_EQ(t.column(0).size(), 1u);
  EXPECT_EQ(t.column(1).size(), 1u);
  EXPECT_EQ(t.num_embeddings(), 2u);
  EXPECT_EQ(t.GetEmbedding(2, 0), (std::vector<Unit>{2, 21, 211}));
  EXPECT_EQ(t.GetEmbedding(2, 1), (std::vector<Unit>{2, 21, 212}));
}

}  // namespace
}  // namespace gpm::core
