#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/extension.h"
#include "core/gamma.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"

namespace gpm::core {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 8 << 20;
  p.um_device_buffer_bytes = 1 << 20;
  return p;
}

graph::Graph Toy() {
  // Two triangles sharing edge 1-2 plus a tail.
  graph::Graph g = graph::Graph::FromEdges(
      5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
  g.SetLabels({0, 1, 2, 0, 1});
  g.EnsureEdgeIndex();
  return g;
}

// Runs one wedge->triangle style extension over all strategy combinations
// and returns the sorted embeddings.
std::multiset<std::vector<Unit>> ExtendAllVertices(
    const graph::Graph& g, WriteStrategy strategy, bool pre_merge,
    int steps, bool ascending) {
  gpusim::Device device(TestParams());
  GammaOptions options;
  options.extension.write_strategy = strategy;
  options.extension.pre_merge = pre_merge;
  GammaEngine engine(&device, &g, options);
  EXPECT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  EXPECT_TRUE(t.ok());
  for (int s = 0; s < steps; ++s) {
    VertexExtensionSpec spec;
    for (int j = 0; j <= s; ++j) spec.intersect_positions.push_back(j);
    spec.require_ascending = ascending;
    auto r = engine.VertexExtension(t.value().get(), spec);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  std::multiset<std::vector<Unit>> out;
  for (auto& e : t.value()->Materialize()) out.insert(e);
  return out;
}

TEST(VertexExtensionTest, TriangleClosureMatchesOracle) {
  graph::Graph g = Toy();
  auto embeddings = ExtendAllVertices(g, WriteStrategy::kDynamicAlloc,
                                      true, 2, /*ascending=*/true);
  // Ascending triangles: {0,1,2} and {1,2,3}.
  EXPECT_EQ(embeddings.size(), 2u);
  EXPECT_TRUE(embeddings.count({0, 1, 2}));
  EXPECT_TRUE(embeddings.count({1, 2, 3}));
}

TEST(VertexExtensionTest, AllStrategiesAgree) {
  Rng rng(17);
  graph::Graph g = graph::ErdosRenyi(60, 240, &rng);
  auto expected = ExtendAllVertices(g, WriteStrategy::kDynamicAlloc, true,
                                    2, true);
  for (WriteStrategy s :
       {WriteStrategy::kNaiveTwoPass, WriteStrategy::kPreAlloc,
        WriteStrategy::kDynamicAlloc}) {
    for (bool pm : {false, true}) {
      auto got = ExtendAllVertices(g, s, pm, 2, true);
      EXPECT_EQ(got, expected)
          << WriteStrategyName(s) << " pre_merge=" << pm;
    }
  }
}

TEST(VertexExtensionTest, InjectivityEnforced) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;  // union mode: all neighbors
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
  for (const auto& emb : t.value()->Materialize()) {
    std::set<Unit> uniq(emb.begin(), emb.end());
    EXPECT_EQ(uniq.size(), emb.size());
  }
}

TEST(VertexExtensionTest, UnionModeMatchesDefinition31) {
  // Ext_v(M) = neighbors of any vertex of M, minus V(M).
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
  std::multiset<std::vector<Unit>> got;
  for (auto& e : t.value()->Materialize()) got.insert(e);
  std::multiset<std::vector<Unit>> expected;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    for (graph::VertexId u : g.neighbors(v)) {
      expected.insert({v, u});
    }
  }
  EXPECT_EQ(got, expected);
}

TEST(VertexExtensionTest, LabelFilterApplied) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;
  spec.intersect_positions = {0};
  spec.candidate_label = 1;  // vertices 1 and 4
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
  for (const auto& emb : t.value()->Materialize()) {
    EXPECT_EQ(g.label(emb[1]), 1u);
  }
}

TEST(VertexExtensionTest, PostFilterApplied) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;
  spec.intersect_positions = {0};
  spec.post_filter = [](std::span<const Unit>, Unit cand) {
    return cand % 2 == 0;
  };
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
  for (const auto& emb : t.value()->Materialize()) {
    EXPECT_EQ(emb[1] % 2, 0u);
  }
}

TEST(VertexExtensionTest, PreAllocFailsWhenWorstCaseTooLarge) {
  Rng rng(23);
  graph::Graph g = graph::PowerLaw(2000, 20000, 1.0, &rng);  // big hub
  gpusim::Device device(TestParams());
  GammaOptions options;
  options.extension.write_strategy = WriteStrategy::kPreAlloc;
  options.extension.pool_bytes = 1024;  // < d_max * 8
  GammaEngine engine(&device, &g, options);
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;
  spec.intersect_positions = {0};
  auto r = engine.VertexExtension(t.value().get(), spec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDeviceOutOfMemory);
}

TEST(VertexExtensionTest, DynamicAllocHandlesPoolOverflow) {
  Rng rng(29);
  graph::Graph g = graph::ErdosRenyi(200, 2000, &rng);
  gpusim::Device device(TestParams());
  GammaOptions options;
  options.extension.pool_bytes = 16 << 10;  // tiny pool forces flushes
  options.extension.block_bytes = 1024;
  GammaEngine engine(&device, &g, options);
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;  // union: ~2|E| results >> pool
  auto r = engine.VertexExtension(t.value().get(), spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().results, 2 * g.num_edges());
  EXPECT_GT(device.stats().pool_block_requests, 16u);
}

TEST(VertexExtensionTest, StatsPopulated) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;
  spec.intersect_positions = {0};
  auto r = engine.VertexExtension(t.value().get(), spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().input_rows, 5u);
  EXPECT_GT(r.value().candidates, 0u);
  EXPECT_GT(r.value().kernel_cycles, 0.0);
  EXPECT_GE(r.value().chunks, 1u);
}

TEST(EdgeExtensionTest, CanonicalSequencesUnique) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitEdgeTable();
  ASSERT_TRUE(t.ok());
  EdgeExtensionSpec spec;
  ASSERT_TRUE(engine.EdgeExtension(t.value().get(), spec).ok());
  // Every 2-edge connected subgraph exactly once.
  std::set<std::set<Unit>> seen;
  for (const auto& emb : t.value()->Materialize()) {
    std::set<Unit> s(emb.begin(), emb.end());
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(seen.insert(s).second) << "duplicate edge set";
  }
  // Count wedges + count... every pair of adjacent edges:
  uint64_t adjacent_pairs = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    uint64_t d = g.degree(v);
    adjacent_pairs += d * (d - 1) / 2;
  }
  EXPECT_EQ(seen.size(), adjacent_pairs);
}

TEST(EdgeExtensionTest, IsCanonicalExtensionBasics) {
  graph::Graph g = Toy();
  // Edge ids: sorted (u,v) pairs: (0,1)=0,(0,2)=1,(1,2)=2,(1,3)=3,(2,3)=4,(3,4)=5
  std::vector<Unit> base{0};
  EXPECT_TRUE(IsCanonicalEdgeExtension(g, base, 1));
  EXPECT_TRUE(IsCanonicalEdgeExtension(g, base, 2));
  // Extending {e1} by e0 is not canonical (e0 < e1 must come first).
  std::vector<Unit> later{1};
  EXPECT_FALSE(IsCanonicalEdgeExtension(g, later, 0));
  // Disconnected extension rejected: {0-1} + {3-4}.
  EXPECT_FALSE(IsCanonicalEdgeExtension(g, base, 5));
}

TEST(EdgeExtensionTest, ThreeEdgeSetsMatchBruteForce) {
  Rng rng(31);
  graph::Graph g = graph::ErdosRenyi(30, 80, &rng);
  g.EnsureEdgeIndex();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitEdgeTable();
  ASSERT_TRUE(t.ok());
  EdgeExtensionSpec spec;
  ASSERT_TRUE(engine.EdgeExtension(t.value().get(), spec).ok());
  ASSERT_TRUE(engine.EdgeExtension(t.value().get(), spec).ok());
  std::set<std::set<Unit>> got;
  for (const auto& emb : t.value()->Materialize()) {
    got.insert(std::set<Unit>(emb.begin(), emb.end()));
  }
  // Brute force: all connected 3-edge subsets.
  std::set<std::set<Unit>> expected;
  const auto& edges = g.edge_list();
  auto connected = [&](const std::set<Unit>& s) {
    std::vector<graph::EdgeId> list(s.begin(), s.end());
    std::set<graph::VertexId> verts{edges[list[0]].u, edges[list[0]].v};
    bool grew = true;
    std::set<Unit> used{list[0]};
    while (grew) {
      grew = false;
      for (Unit e : list) {
        if (used.count(e)) continue;
        if (verts.count(edges[e].u) || verts.count(edges[e].v)) {
          verts.insert(edges[e].u);
          verts.insert(edges[e].v);
          used.insert(e);
          grew = true;
        }
      }
    }
    return used.size() == s.size();
  };
  for (Unit a = 0; a < edges.size(); ++a) {
    for (Unit b = a + 1; b < edges.size(); ++b) {
      for (Unit c = b + 1; c < edges.size(); ++c) {
        std::set<Unit> s{a, b, c};
        if (connected(s)) expected.insert(s);
      }
    }
  }
  EXPECT_EQ(got, expected);
}

TEST(EdgeExtensionTest, PreMergeEquivalentToPlain) {
  Rng rng(37);
  graph::Graph g = graph::ErdosRenyi(40, 120, &rng);
  g.EnsureEdgeIndex();
  std::multiset<std::vector<Unit>> results[2];
  for (int pm = 0; pm < 2; ++pm) {
    gpusim::Device device(TestParams());
    GammaOptions options;
    options.extension.pre_merge = pm == 1;
    GammaEngine engine(&device, &g, options);
    ASSERT_TRUE(engine.Prepare().ok());
    auto t = engine.InitEdgeTable();
    ASSERT_TRUE(t.ok());
    EdgeExtensionSpec spec;
    ASSERT_TRUE(engine.EdgeExtension(t.value().get(), spec).ok());
    ASSERT_TRUE(engine.EdgeExtension(t.value().get(), spec).ok());
    for (auto& e : t.value()->Materialize()) results[pm].insert(e);
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(ExtensionTest, ChunkingPreservesResults) {
  Rng rng(41);
  graph::Graph g = graph::ErdosRenyi(100, 500, &rng);
  std::multiset<std::vector<Unit>> big_chunks, small_chunks;
  for (std::size_t chunk : {std::size_t{1} << 16, std::size_t{64}}) {
    gpusim::Device device(TestParams());
    GammaOptions options;
    options.extension.chunk_rows = chunk;
    GammaEngine engine(&device, &g, options);
    ASSERT_TRUE(engine.Prepare().ok());
    auto t = engine.InitVertexTable();
    ASSERT_TRUE(t.ok());
    VertexExtensionSpec spec;
    spec.intersect_positions = {0};
    spec.require_ascending = true;
    ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
    auto& sink = chunk == 64 ? small_chunks : big_chunks;
    for (auto& e : t.value()->Materialize()) sink.insert(e);
  }
  EXPECT_EQ(big_chunks, small_chunks);
}

}  // namespace
}  // namespace gpm::core
