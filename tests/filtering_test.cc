#include <gtest/gtest.h>

#include "core/filtering.h"
#include "core/gamma.h"
#include "graph/generators.h"

namespace gpm::core {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 8 << 20;
  p.um_device_buffer_bytes = 1 << 20;
  return p;
}

graph::Graph Toy() {
  graph::Graph g = graph::Graph::FromEdges(
      5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
  g.SetLabels({0, 1, 2, 0, 1});
  g.EnsureEdgeIndex();
  return g;
}

std::unique_ptr<EmbeddingTable> PairsTable(core::GammaEngine* engine) {
  auto t = engine->InitVertexTable();
  EXPECT_TRUE(t.ok());
  VertexExtensionSpec spec;  // union: all (v, neighbor) pairs
  EXPECT_TRUE(engine->VertexExtension(t.value().get(), spec).ok());
  return std::move(t).value();
}

TEST(FilteringTest, PredicateDropsRows) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = PairsTable(&engine);
  std::size_t before = t->num_embeddings();
  FilterStats stats = engine.Filtering(
      t.get(),
      [](std::span<const Unit> emb) { return emb[0] < emb[1]; });
  EXPECT_EQ(stats.checked, before);
  EXPECT_EQ(stats.removed, before / 2);  // symmetric pairs
  EXPECT_EQ(t->num_embeddings(), before / 2);
  for (const auto& emb : t->Materialize()) {
    EXPECT_LT(emb[0], emb[1]);
  }
}

TEST(FilteringTest, KeepAllLeavesTableIntact) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = PairsTable(&engine);
  std::size_t before = t->num_embeddings();
  auto all = t->Materialize();
  FilterStats stats =
      engine.Filtering(t.get(), [](std::span<const Unit>) { return true; });
  EXPECT_EQ(stats.removed, 0u);
  EXPECT_EQ(t->num_embeddings(), before);
  EXPECT_EQ(t->Materialize(), all);
}

TEST(FilteringTest, RemoveAllEmptiesTable) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = PairsTable(&engine);
  engine.Filtering(t.get(), [](std::span<const Unit>) { return false; });
  EXPECT_EQ(t->num_embeddings(), 0u);
}

TEST(FilteringTest, WithoutCompressionTableKeepsRows) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaOptions options;
  options.filter.compress = false;
  GammaEngine engine(&device, &g, options);
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = PairsTable(&engine);
  std::size_t before = t->num_embeddings();
  FilterStats stats = engine.Filtering(
      t.get(), [](std::span<const Unit> emb) { return emb[0] < emb[1]; });
  EXPECT_EQ(stats.removed, before / 2);  // counted...
  EXPECT_EQ(t->num_embeddings(), before);  // ...but not compacted
}

TEST(FilteringTest, PatternFilterDropsInvalidInstances) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitEdgeTable();
  ASSERT_TRUE(t.ok());
  PatternTable pt;
  auto agg = engine.Aggregation(*t.value(), &pt);
  ASSERT_TRUE(agg.ok());
  // Label pairs: (0,1)x3, (0,2)x2, (1,2)x1 — threshold 2 kills one.
  pt.InvalidateBelow(2);
  FilterStats stats = engine.Filtering(t.value().get(),
                                       agg.value().codes, pt);
  EXPECT_EQ(stats.removed, 1u);
  EXPECT_EQ(t.value()->num_embeddings(), 5u);
}

TEST(FilteringTest, PatternFilterNoInvalidIsNoOp) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitEdgeTable();
  ASSERT_TRUE(t.ok());
  PatternTable pt;
  auto agg = engine.Aggregation(*t.value(), &pt);
  ASSERT_TRUE(agg.ok());
  pt.InvalidateBelow(1);  // nothing below 1
  FilterStats stats = engine.Filtering(t.value().get(),
                                       agg.value().codes, pt);
  EXPECT_EQ(stats.removed, 0u);
  EXPECT_EQ(t.value()->num_embeddings(), g.num_edges());
}

TEST(FilteringTest, ChargesSimulatedTime) {
  graph::Graph g = Toy();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = PairsTable(&engine);
  double before = device.now_cycles();
  FilterStats stats = engine.Filtering(
      t.get(), [](std::span<const Unit> emb) { return emb[0] % 2 == 0; });
  EXPECT_GT(stats.kernel_cycles, 0.0);
  EXPECT_GT(device.now_cycles(), before);
}

TEST(FilteringTest, AncestorPruningShrinksEarlierColumns) {
  Rng rng(5);
  graph::Graph g = graph::ErdosRenyi(40, 120, &rng);
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;
  spec.intersect_positions = {0};
  spec.require_ascending = true;
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
  std::size_t col0_before = t.value()->column(0).size();
  // Kill everything extending from vertices < 20: their roots go too.
  engine.Filtering(t.value().get(), [](std::span<const Unit> emb) {
    return emb[0] >= 20;
  });
  EXPECT_LT(t.value()->column(0).size(), col0_before);
  for (const auto& emb : t.value()->Materialize()) {
    EXPECT_GE(emb[0], 20u);
  }
}

}  // namespace
}  // namespace gpm::core
