// Engine-level API tests: table initialization, option plumbing, output
// rendering, and end-to-end determinism of the façade.
#include <gtest/gtest.h>

#include "algos/kclique.h"
#include "core/gamma.h"
#include "graph/generators.h"

namespace gpm::core {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 8 << 20;
  p.um_device_buffer_bytes = 512 << 10;
  return p;
}

graph::Graph Labeled(uint64_t seed) {
  Rng rng(seed);
  graph::Graph g = graph::ErdosRenyi(60, 200, &rng);
  graph::AssignLabelsZipf(&g, 3, 0.4, &rng);
  g.EnsureEdgeIndex();
  return g;
}

TEST(GammaEngineTest, InitVertexTableAllVertices) {
  graph::Graph g = Labeled(1);
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value()->num_embeddings(), g.num_vertices());
  EXPECT_EQ(t.value()->length(), 1);
  EXPECT_EQ(t.value()->kind(), TableKind::kVertex);
}

TEST(GammaEngineTest, InitVertexTableFiltersByLabel) {
  graph::Graph g = Labeled(2);
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  for (graph::Label l = 0; l < g.num_labels(); ++l) {
    auto t = engine.InitVertexTable(l);
    ASSERT_TRUE(t.ok());
    std::size_t expected = 0;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.label(v) == l) ++expected;
    }
    EXPECT_EQ(t.value()->num_embeddings(), expected) << "label " << l;
    for (const auto& emb : t.value()->Materialize()) {
      EXPECT_EQ(g.label(emb[0]), l);
    }
  }
}

TEST(GammaEngineTest, InitEdgeTableEnumeratesEdges) {
  graph::Graph g = Labeled(3);
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitEdgeTable();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value()->num_embeddings(), g.num_edges());
  EXPECT_EQ(t.value()->kind(), TableKind::kEdge);
}

TEST(GammaEngineTest, InitEdgeTableNeedsEdgeIndex) {
  Rng rng(4);
  graph::Graph g = graph::ErdosRenyi(20, 40, &rng);  // no EnsureEdgeIndex
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitEdgeTable();
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(GammaEngineTest, OutputResultsRendersBoth) {
  graph::Graph g = Labeled(5);
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  PatternTable pt;
  pt.Accumulate(1, graph::Pattern::Triangle(), 3);
  std::string out = engine.OutputResults(t.value().get(), &pt);
  EXPECT_NE(out.find("embeddings"), std::string::npos);
  EXPECT_NE(out.find("sup=3"), std::string::npos);
}

TEST(GammaEngineTest, DeterministicAcrossIdenticalRuns) {
  graph::Graph g = Labeled(6);
  double times[2];
  uint64_t counts[2];
  for (int run = 0; run < 2; ++run) {
    gpusim::Device device(TestParams());
    GammaEngine engine(&device, &g, {});
    ASSERT_TRUE(engine.Prepare().ok());
    auto r = algos::CountKCliques(&engine, 3);
    ASSERT_TRUE(r.ok());
    times[run] = r.value().sim_millis;
    counts[run] = r.value().cliques;
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_DOUBLE_EQ(times[0], times[1]);
}

TEST(GammaEngineTest, MutableOptionsAffectSubsequentCalls) {
  graph::Graph g = Labeled(7);
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  engine.mutable_options().extension.pre_merge = false;
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;
  spec.intersect_positions = {0};
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
  VertexExtensionSpec spec2;
  spec2.intersect_positions = {0, 1};
  auto r = engine.VertexExtension(t.value().get(), spec2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().groups, 0u);  // grouping disabled
}

TEST(GammaEngineTest, HostFootprintTracksTables) {
  graph::Graph g = Labeled(8);
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  std::size_t before = device.host_tracker().current_bytes();
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  EXPECT_GT(device.host_tracker().current_bytes(), before);
  std::size_t with_table = device.host_tracker().current_bytes();
  t.value().reset();
  EXPECT_LT(device.host_tracker().current_bytes(), with_table);
}

TEST(GammaEngineTest, SimulatedClockAdvancesMonotonically) {
  graph::Graph g = Labeled(9);
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  double t0 = device.now_cycles();
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  double t1 = device.now_cycles();
  EXPECT_GT(t1, t0);
  VertexExtensionSpec spec;
  spec.intersect_positions = {0};
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
  EXPECT_GT(device.now_cycles(), t1);
}

}  // namespace
}  // namespace gpm::core
