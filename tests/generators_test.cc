#include <gtest/gtest.h>

#include <cstdio>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/loader.h"
#include "graph/upscale.h"

namespace gpm::graph {
namespace {

TEST(ErdosRenyiTest, ProducesRequestedEdges) {
  Rng rng(1);
  Graph g = ErdosRenyi(100, 300, &rng);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 300u);
}

TEST(ErdosRenyiTest, CapsAtCompleteGraph) {
  Rng rng(1);
  Graph g = ErdosRenyi(5, 1000, &rng);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(ErdosRenyiTest, DeterministicForSeed) {
  Rng a(42), b(42);
  Graph g1 = ErdosRenyi(50, 100, &a);
  Graph g2 = ErdosRenyi(50, 100, &b);
  EXPECT_EQ(g1.col(), g2.col());
}

TEST(RmatTest, SkewedDegrees) {
  Rng rng(3);
  Graph g = Rmat(10, 4000, &rng);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_GT(g.num_edges(), 3000u);  // some dedup loss is fine
  // R-MAT hubs: max degree far above average.
  EXPECT_GT(g.max_degree(), 4 * g.average_degree());
}

TEST(PowerLawTest, HeavyHead) {
  Rng rng(5);
  Graph g = PowerLaw(500, 2000, 0.9, &rng);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_GT(g.num_edges(), 1500u);
  // Low-id vertices should be hubs under the (i+1)^-alpha weighting.
  uint64_t head = 0, tail = 0;
  for (VertexId v = 0; v < 50; ++v) head += g.degree(v);
  for (VertexId v = 450; v < 500; ++v) tail += g.degree(v);
  EXPECT_GT(head, tail * 2);
}

TEST(LabelsTest, ZipfAssignsAllInRange) {
  Rng rng(7);
  Graph g = ErdosRenyi(200, 400, &rng);
  AssignLabelsZipf(&g, 4, 0.5, &rng);
  ASSERT_TRUE(g.labeled());
  EXPECT_LE(g.num_labels(), 4u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(g.label(v), 4u);
  }
}

TEST(UpscaleTest, ScalesVerticesAndEdges) {
  Rng rng(11);
  Graph base = ErdosRenyi(50, 100, &rng);
  AssignLabelsZipf(&base, 3, 0.0, &rng);
  Graph big = Upscale(base, 4, &rng);
  EXPECT_EQ(big.num_vertices(), 200u);
  EXPECT_EQ(big.num_edges(), 400u);
}

TEST(UpscaleTest, PreservesDegreeDistribution) {
  Rng rng(13);
  Graph base = PowerLaw(100, 400, 0.8, &rng);
  Graph big = Upscale(base, 3, &rng);
  // Each clone keeps its original's degree.
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(big.degree(v + c * base.num_vertices()), base.degree(v));
    }
  }
}

TEST(UpscaleTest, ClonesInheritLabels) {
  Rng rng(17);
  Graph base = ErdosRenyi(20, 40, &rng);
  AssignLabelsZipf(&base, 4, 0.5, &rng);
  Graph big = Upscale(base, 2, &rng);
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    EXPECT_EQ(big.label(v + base.num_vertices()), base.label(v));
  }
}

TEST(DatasetsTest, AllTenListed) {
  EXPECT_EQ(AllDatasets().size(), 10u);
  EXPECT_EQ(DatasetByName("CP").full_name, "cit-Patent");
  EXPECT_EQ(DatasetByName("TW").full_name, "twitter_rv");
}

TEST(DatasetsTest, SmallProxiesMaterialize) {
  for (const char* name : {"ER", "EA", "CP", "CL"}) {
    Graph g = MakeDataset(name);
    const DatasetInfo& info = DatasetByName(name);
    EXPECT_GT(g.num_edges(), info.proxy_edges / 3) << name;
    EXPECT_TRUE(g.labeled()) << name;
  }
}

TEST(DatasetsTest, DeterministicForSeed) {
  Graph a = MakeDataset("EA", 99);
  Graph b = MakeDataset("EA", 99);
  EXPECT_EQ(a.col(), b.col());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(LoaderTest, TextRoundTrip) {
  Rng rng(23);
  Graph g = ErdosRenyi(30, 60, &rng);
  std::string path = testing::TempDir() + "/gamma_edges.txt";
  ASSERT_TRUE(SaveEdgeListText(g, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_edges(), g.num_edges());
  std::remove(path.c_str());
}

TEST(LoaderTest, TextSkipsCommentsAndCompacts) {
  std::string path = testing::TempDir() + "/gamma_comments.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("# comment\n100 200\n% other comment\n200 300\n", f);
    std::fclose(f);
  }
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_vertices(), 3u);  // ids compacted
  EXPECT_EQ(loaded.value().num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(LoaderTest, BinaryRoundTripWithLabels) {
  Rng rng(29);
  Graph g = ErdosRenyi(40, 80, &rng);
  AssignLabelsZipf(&g, 5, 0.3, &rng);
  std::string path = testing::TempDir() + "/gamma_graph.bin";
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().col(), g.col());
  EXPECT_EQ(loaded.value().labels(), g.labels());
  std::remove(path.c_str());
}

TEST(LoaderTest, MissingFileReturnsNotFound) {
  auto loaded = LoadEdgeListText("/nonexistent/path/graph.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kNotFound);
}

TEST(LoaderTest, BadMagicRejected) {
  std::string path = testing::TempDir() + "/gamma_bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a gamma file", f);
    std::fclose(f);
  }
  auto loaded = LoadBinary(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gpm::graph
