#include <gtest/gtest.h>

#include <string>

#include "gpusim/device.h"
#include "gpusim/host_array.h"
#include "gpusim/profile.h"

namespace gpm::gpusim {
namespace {

SimParams SmallParams() {
  SimParams p;
  p.device_memory_bytes = 1 << 20;       // 1 MiB
  p.um_device_buffer_bytes = 64 << 10;   // 16 pages
  return p;
}

TEST(DeviceMemoryTest, AllocateAndFree) {
  DeviceMemory mem(1000);
  auto a = mem.Allocate(400);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(mem.used_bytes(), 400u);
  auto b = mem.Allocate(600);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(mem.available_bytes(), 0u);
  mem.Free(a.value());
  EXPECT_EQ(mem.used_bytes(), 600u);
}

TEST(DeviceMemoryTest, OomWhenExceedingCapacity) {
  DeviceMemory mem(1000);
  auto a = mem.Allocate(800);
  ASSERT_TRUE(a.ok());
  auto b = mem.Allocate(300);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), ErrorCode::kDeviceOutOfMemory);
}

TEST(DeviceMemoryTest, PeakTracksHighWater) {
  DeviceMemory mem(1000);
  auto a = mem.Allocate(700);
  mem.Free(a.value());
  auto b = mem.Allocate(100);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(mem.peak_used_bytes(), 700u);
}

TEST(DeviceMemoryTest, ResizeGrowsAndShrinks) {
  DeviceMemory mem(1000);
  auto a = mem.Allocate(100);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(mem.Resize(a.value(), 900).ok());
  EXPECT_EQ(mem.used_bytes(), 900u);
  EXPECT_FALSE(mem.Resize(a.value(), 1100).ok());
  EXPECT_TRUE(mem.Resize(a.value(), 50).ok());
  EXPECT_EQ(mem.used_bytes(), 50u);
}

TEST(DeviceBufferTest, RaiiFreesOnDestruction) {
  DeviceMemory mem(1000);
  {
    auto buf = DeviceBuffer::Make(&mem, 500);
    ASSERT_TRUE(buf.ok());
    EXPECT_EQ(mem.used_bytes(), 500u);
  }
  EXPECT_EQ(mem.used_bytes(), 0u);
}

TEST(DeviceBufferTest, MoveTransfersOwnership) {
  DeviceMemory mem(1000);
  auto buf = DeviceBuffer::Make(&mem, 500);
  ASSERT_TRUE(buf.ok());
  DeviceBuffer other = std::move(buf).value();
  EXPECT_TRUE(other.valid());
  other.Release();
  EXPECT_EQ(mem.used_bytes(), 0u);
}

TEST(DeviceBufferTest, MoveAssignEmptiesSource) {
  DeviceMemory mem(1000);
  auto a = DeviceBuffer::Make(&mem, 300);
  auto b = DeviceBuffer::Make(&mem, 200);
  ASSERT_TRUE(a.ok() && b.ok());
  DeviceBuffer dst = std::move(a).value();
  DeviceBuffer src = std::move(b).value();
  dst = std::move(src);
  // The moved-from buffer must be fully emptied: a stale id/bytes pair
  // would double-free on destruction or misreport its size.
  EXPECT_FALSE(src.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(src.bytes(), 0u);
  EXPECT_EQ(src.id(), 0u);
  EXPECT_TRUE(dst.valid());
  EXPECT_EQ(dst.bytes(), 200u);
  EXPECT_EQ(mem.used_bytes(), 200u);  // the 300-byte target was released
  dst.Release();
  EXPECT_EQ(mem.used_bytes(), 0u);
}

TEST(DeviceBufferTest, SelfMoveAssignIsSafe) {
  DeviceMemory mem(1000);
  auto buf = DeviceBuffer::Make(&mem, 400);
  ASSERT_TRUE(buf.ok());
  DeviceBuffer b = std::move(buf).value();
  DeviceBuffer& alias = b;
  b = std::move(alias);  // NOLINT(clang-diagnostic-self-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.bytes(), 400u);
  EXPECT_EQ(mem.used_bytes(), 400u);
}

TEST(UnifiedMemoryTest, FaultThenHit) {
  SimParams p = SmallParams();
  DeviceStats stats;
  UnifiedMemory um(p, &stats);
  auto region = um.Register(1 << 20);
  AccessCharge miss = um.Access(region, 0, 64);
  EXPECT_EQ(stats.um_page_faults, 1u);
  EXPECT_EQ(miss.pcie_bytes, p.um_page_bytes);
  AccessCharge hit = um.Access(region, 128, 64);
  EXPECT_EQ(stats.um_page_faults, 1u);
  EXPECT_EQ(stats.um_page_hits, 1u);
  EXPECT_EQ(hit.pcie_bytes, 0u);
  EXPECT_LT(hit.cycles, miss.cycles);
}

TEST(UnifiedMemoryTest, SpanningAccessTouchesAllPages) {
  SimParams p = SmallParams();
  DeviceStats stats;
  UnifiedMemory um(p, &stats);
  auto region = um.Register(1 << 20);
  um.Access(region, p.um_page_bytes - 8, 16);  // crosses a page boundary
  EXPECT_EQ(stats.um_page_faults, 2u);
}

TEST(UnifiedMemoryTest, LruEvictsOldest) {
  SimParams p = SmallParams();  // 16-page buffer
  DeviceStats stats;
  UnifiedMemory um(p, &stats);
  auto region = um.Register(1 << 20);
  for (int i = 0; i < 17; ++i) {
    um.Access(region, i * p.um_page_bytes, 8);
  }
  EXPECT_EQ(stats.um_evictions, 1u);
  EXPECT_FALSE(um.IsResident(region, 0));      // page 0 evicted
  EXPECT_TRUE(um.IsResident(region, 16 * p.um_page_bytes));
}

TEST(UnifiedMemoryTest, TouchRefreshesLruPosition) {
  SimParams p = SmallParams();
  DeviceStats stats;
  UnifiedMemory um(p, &stats);
  auto region = um.Register(1 << 20);
  for (int i = 0; i < 16; ++i) um.Access(region, i * p.um_page_bytes, 8);
  um.Access(region, 0, 8);  // refresh page 0
  um.Access(region, 16 * p.um_page_bytes, 8);  // evicts page 1, not 0
  EXPECT_TRUE(um.IsResident(region, 0));
  EXPECT_FALSE(um.IsResident(region, p.um_page_bytes));
}

TEST(UnifiedMemoryTest, ShrinkInvalidatesStalePages) {
  SimParams p = SmallParams();
  DeviceStats stats;
  UnifiedMemory um(p, &stats);
  auto region = um.Register(8 * p.um_page_bytes);
  um.Access(region, 7 * p.um_page_bytes, 8);
  EXPECT_TRUE(um.IsResident(region, 7 * p.um_page_bytes));
  um.ResizeRegion(region, 2 * p.um_page_bytes);
  EXPECT_FALSE(um.IsResident(region, 7 * p.um_page_bytes));
}

TEST(DeviceTest, UmBufferReservedAtConstruction) {
  Device device(SmallParams());
  EXPECT_EQ(device.memory().used_bytes(), SmallParams().um_device_buffer_bytes);
}

TEST(DeviceTest, KernelAdvancesClock) {
  Device device(SmallParams());
  double before = device.now_cycles();
  device.LaunchKernel(4, [](WarpCtx& w, std::size_t) {
    w.ChargeCompute(1000);
  });
  EXPECT_GT(device.now_cycles(), before);
  EXPECT_EQ(device.stats().kernel_launches, 1u);
  EXPECT_EQ(device.stats().warp_tasks, 4u);
}

TEST(DeviceTest, MakespanScalesWithWarpSlots) {
  SimParams one = SmallParams();
  one.num_warp_slots = 1;
  SimParams many = SmallParams();
  many.num_warp_slots = 64;
  Device d1(one), d64(many);
  auto work = [](WarpCtx& w, std::size_t) { w.ChargeCompute(10000); };
  double t1 = d1.LaunchKernel(64, work);
  double t64 = d64.LaunchKernel(64, work);
  // 64 equal tasks: serial is ~64x the parallel makespan (plus overhead).
  EXPECT_GT(t1, t64 * 30);
}

TEST(DeviceTest, PcieOverlapsWithCompute) {
  Device device(SmallParams());
  // Compute-heavy kernel: PCIe traffic is hidden under the makespan.
  double compute_only = device.LaunchKernel(1, [](WarpCtx& w, std::size_t) {
    w.ChargeCompute(1e7);
  });
  double with_traffic = device.LaunchKernel(1, [](WarpCtx& w, std::size_t) {
    w.ChargeCompute(1e7);
    w.ZeroCopyRead(1024);
  });
  EXPECT_NEAR(compute_only, with_traffic, compute_only * 0.01);
}

TEST(DeviceTest, ExplicitCopyChargesLink) {
  Device device(SmallParams());
  double cycles = device.CopyHostToDevice(16 << 10);
  EXPECT_GT(cycles, 0);
  EXPECT_EQ(device.stats().explicit_h2d_bytes, 16u << 10);
}

TEST(WarpCtxTest, ZeroCopyCountsTransactions) {
  Device device(SmallParams());
  device.LaunchKernel(1, [](WarpCtx& w, std::size_t) {
    w.ZeroCopyRead(300);  // 3 x 128B transactions
  });
  EXPECT_EQ(device.stats().zc_transactions, 3u);
  EXPECT_EQ(device.stats().zc_bytes, 384u);
}

TEST(WarpCtxTest, SimtWorkRoundsUpToWarpSteps) {
  Device device(SmallParams());
  double t33 = 0, t1 = 0;
  device.LaunchKernel(1, [&](WarpCtx& w, std::size_t) {
    w.ChargeSimtWork(33);  // 2 steps of 32
    t33 = w.cycles();
  });
  device.LaunchKernel(1, [&](WarpCtx& w, std::size_t) {
    w.ChargeSimtWork(1);  // 1 step
    t1 = w.cycles();
  });
  EXPECT_DOUBLE_EQ(t33, 2.0);
  EXPECT_DOUBLE_EQ(t1, 1.0);
}

TEST(HostArrayTest, TracksHostMemory) {
  Device device(SmallParams());
  {
    HostArray<uint32_t> arr(&device);
    arr.Assign(std::vector<uint32_t>(1000, 7));
    EXPECT_EQ(device.host_tracker().current_bytes(), 4000u);
  }
  EXPECT_EQ(device.host_tracker().current_bytes(), 0u);
  EXPECT_EQ(device.host_tracker().peak_bytes(), 4000u);
}

TEST(HostArrayTest, ReadReturnsLiveData) {
  Device device(SmallParams());
  HostArray<uint32_t> arr(&device);
  arr.Assign({10, 20, 30, 40});
  device.LaunchKernel(1, [&](WarpCtx& w, std::size_t) {
    auto span = arr.Read(w, 1, 2, AccessMode::kZeroCopy);
    EXPECT_EQ(span[0], 20u);
    EXPECT_EQ(span[1], 30u);
    EXPECT_EQ(arr.ReadOne(w, 3, AccessMode::kUnified), 40u);
  });
  EXPECT_GT(device.stats().zc_transactions, 0u);
  EXPECT_GT(device.stats().um_page_faults, 0u);
}

TEST(DeviceTest, TraceRecordsNamedKernels) {
  Device device(SmallParams());
  device.set_trace_enabled(true);
  device.LaunchKernel(3, [](WarpCtx& w, std::size_t) {
    w.ChargeCompute(100);
  }, "alpha");
  device.LaunchKernel(1, [](WarpCtx& w, std::size_t) {
    w.ZeroCopyRead(1024);
  }, "beta");
  ASSERT_EQ(device.kernel_trace().size(), 2u);
  EXPECT_EQ(device.kernel_trace()[0].name, "alpha");
  EXPECT_EQ(device.kernel_trace()[0].tasks, 3u);
  EXPECT_GT(device.kernel_trace()[0].total_cycles, 0.0);
  EXPECT_EQ(device.kernel_trace()[1].name, "beta");
  EXPECT_GT(device.kernel_trace()[1].pcie_cycles, 0.0);
  device.ClearTrace();
  EXPECT_TRUE(device.kernel_trace().empty());
}

TEST(DeviceTest, TraceOffByDefault) {
  Device device(SmallParams());
  device.LaunchKernel(1, [](WarpCtx& w, std::size_t) {
    w.ChargeCompute(1);
  });
  EXPECT_TRUE(device.kernel_trace().empty());
}

TEST(SimParamsTest, PresetsAreConsistent) {
  SimParams v100 = SimParams::V100();
  EXPECT_EQ(v100.device_memory_bytes, 16ull << 30);
  EXPECT_GT(v100.num_warp_slots, SimParams().num_warp_slots);
  SimParams bench = SimParams::BenchScale();
  EXPECT_LT(bench.device_memory_bytes, v100.device_memory_bytes);
  // Both presets keep the page buffer inside device memory.
  EXPECT_LT(bench.um_device_buffer_bytes, bench.device_memory_bytes);
  EXPECT_LT(v100.um_device_buffer_bytes, v100.device_memory_bytes);
  // A device can actually be built from each preset.
  Device d1(bench);
  Device d2(v100);
  EXPECT_GT(d1.memory().available_bytes(), 0u);
  EXPECT_GT(d2.memory().available_bytes(), 0u);
}

TEST(StatsTest, ToStringMentionsCounters) {
  DeviceStats stats;
  stats.um_page_faults = 5;
  std::string s = stats.ToString();
  EXPECT_NE(s.find("um_faults=5"), std::string::npos);
}

TEST(StatsTest, FieldsEnumerateEveryCounterOnce) {
  // Setting each field through its member pointer to a distinct value and
  // summing the struct proves the table hits every counter exactly once
  // (a missing or duplicated entry changes the sum).
  DeviceStats stats;
  uint64_t expected_sum = 0;
  uint64_t v = 1;
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    stats.*f.member = v;
    expected_sum += v;
    ++v;
  }
  uint64_t sum = 0;
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    sum += stats.*f.member;
  }
  EXPECT_EQ(sum, expected_sum);
  EXPECT_EQ(DeviceStats::Fields().size(), 16u);
}

TEST(StatsTest, SnapshotDiffRoundTrip) {
  DeviceStats before;
  uint64_t v = 10;
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    before.*f.member = v++;
  }
  DeviceStats after = before.Snapshot();
  uint64_t inc = 1;
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    after.*f.member += inc++;
  }
  DeviceStats delta = after.Diff(before);
  inc = 1;
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    EXPECT_EQ(delta.*f.member, inc) << f.name;
    EXPECT_EQ(before.*f.member + delta.*f.member, after.*f.member)
        << f.name;
    ++inc;
  }
  // Diff saturates rather than wrapping when counters ran backwards.
  DeviceStats negative = before.Diff(after);
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    EXPECT_EQ(negative.*f.member, 0u) << f.name;
  }
}

TEST(StatsTest, JsonListsEveryCounter) {
  DeviceStats stats;
  uint64_t v = 100;
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    stats.*f.member = v++;
  }
  std::string json = StatsJson(stats);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  v = 100;
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    std::string entry =
        std::string("\"") + f.name + "\": " + std::to_string(v++);
    EXPECT_NE(json.find(entry), std::string::npos) << entry;
  }
}

TEST(ProfileTest, PhaseScopeAttributesDeltasByName) {
  Device device(SmallParams());
  for (int i = 0; i < 2; ++i) {
    PhaseScope scope(&device, &device.profile(), "zc-phase");
    device.LaunchKernel(1, [](WarpCtx& w, std::size_t) {
      w.ZeroCopyRead(300);  // 3 x 128B transactions
    });
  }
  {
    PhaseScope scope(&device, &device.profile(), "idle-phase");
  }
  const PhaseRecord* zc = device.profile().Find("zc-phase");
  ASSERT_NE(zc, nullptr);
  EXPECT_EQ(zc->invocations, 2u);
  EXPECT_EQ(zc->delta.kernel_launches, 2u);
  EXPECT_EQ(zc->delta.zc_transactions, 6u);
  EXPECT_GT(zc->cycles, 0.0);
  const PhaseRecord* idle = device.profile().Find("idle-phase");
  ASSERT_NE(idle, nullptr);
  EXPECT_EQ(idle->invocations, 1u);
  EXPECT_EQ(idle->delta.zc_transactions, 0u);
  EXPECT_EQ(device.profile().Find("never-ran"), nullptr);
}

TEST(ProfileTest, NullProfileScopeIsNoOp) {
  Device device(SmallParams());
  {
    PhaseScope scope(&device, nullptr, "ignored");
    device.LaunchKernel(1, [](WarpCtx& w, std::size_t) {
      w.ChargeCompute(10);
    });
  }
  EXPECT_TRUE(device.profile().phases().empty());
}

TEST(ProfileTest, ToJsonCarriesTotalsPhasesAndTrace) {
  Device device(SmallParams());
  device.set_trace_enabled(true);
  {
    PhaseScope scope(&device, &device.profile(), "alpha");
    device.LaunchKernel(2, [](WarpCtx& w, std::size_t) {
      w.ZeroCopyRead(128);
    }, "alpha-kernel");
  }
  std::string json = device.profile().ToJson(device);
  EXPECT_NE(json.find("\"schema\": \"gamma.profile.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha-kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"invocations\": 1"), std::string::npos);
  // The counters object inside each section lists every field by name.
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    EXPECT_NE(json.find(std::string("\"") + f.name + "\""),
              std::string::npos)
        << f.name;
  }
}

}  // namespace
}  // namespace gpm::gpusim
