#include <gtest/gtest.h>

#include <algorithm>

#include "graph/canonical.h"
#include "graph/csr.h"
#include "graph/isomorphism.h"
#include "graph/pattern.h"

namespace gpm::graph {
namespace {

// The Fig. 2 style toy graph: a labeled graph with a few triangles.
Graph ToyGraph() {
  // 0-1, 0-2, 1-2 (triangle), 1-3, 2-3 (second triangle), 3-4
  Graph g = Graph::FromEdges(5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3},
                                 {3, 4}});
  g.SetLabels({0, 1, 2, 0, 1});
  return g;
}

TEST(CsrTest, BasicCounts) {
  Graph g = ToyGraph();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.num_arcs(), 12u);
  EXPECT_EQ(g.degree(3), 3u);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(CsrTest, NeighborsSortedAndSymmetric) {
  Graph g = ToyGraph();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    for (VertexId u : nbrs) {
      EXPECT_TRUE(g.HasEdge(u, v));
      EXPECT_TRUE(g.HasEdge(v, u));
    }
  }
}

TEST(CsrTest, RemovesDuplicatesAndSelfLoops) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 0}, {0, 1}, {2, 2}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(2, 2));
}

TEST(CsrTest, HasEdge) {
  Graph g = ToyGraph();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(0, 4));
}

TEST(CsrTest, EdgeIndexRoundTrips) {
  Graph g = ToyGraph();
  g.EnsureEdgeIndex();
  ASSERT_EQ(g.edge_list().size(), 6u);
  for (EdgeId e = 0; e < g.edge_list().size(); ++e) {
    const Edge& ed = g.edge_list()[e];
    EXPECT_LT(ed.u, ed.v);
    EXPECT_EQ(g.FindEdgeId(ed.u, ed.v), e);
    EXPECT_EQ(g.FindEdgeId(ed.v, ed.u), e);
  }
  EXPECT_EQ(g.FindEdgeId(0, 4), Graph::kInvalidEdge);
}

TEST(CsrTest, IncidentEdgesCoverDegree) {
  Graph g = ToyGraph();
  g.EnsureEdgeIndex();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.incident_edges(v).size(), g.degree(v));
    for (EdgeId e : g.incident_edges(v)) {
      const Edge& ed = g.edge_list()[e];
      EXPECT_TRUE(ed.u == v || ed.v == v);
    }
  }
}

TEST(CsrTest, ArcEdgeIdsAligned) {
  Graph g = ToyGraph();
  g.EnsureEdgeIndex();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    auto eids = g.neighbor_edge_ids(v);
    ASSERT_EQ(nbrs.size(), eids.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Edge& ed = g.edge_list()[eids[i]];
      EXPECT_TRUE((ed.u == v && ed.v == nbrs[i]) ||
                  (ed.v == v && ed.u == nbrs[i]));
    }
  }
}

TEST(PatternTest, CannedShapes) {
  EXPECT_EQ(Pattern::Triangle().num_edges(), 3);
  EXPECT_EQ(Pattern::Clique(5).num_edges(), 10);
  EXPECT_EQ(Pattern::Path(4).num_edges(), 3);
  EXPECT_EQ(Pattern::Cycle(5).num_edges(), 5);
  EXPECT_EQ(Pattern::Star(4).num_edges(), 4);
  EXPECT_EQ(Pattern::Diamond().num_edges(), 5);
}

TEST(PatternTest, Automorphisms) {
  EXPECT_EQ(Pattern::Triangle().CountAutomorphisms(), 6);
  EXPECT_EQ(Pattern::Clique(4).CountAutomorphisms(), 24);
  EXPECT_EQ(Pattern::Path(3).CountAutomorphisms(), 2);
  EXPECT_EQ(Pattern::Cycle(4).CountAutomorphisms(), 8);
  EXPECT_EQ(Pattern::Star(3).CountAutomorphisms(), 6);
}

TEST(PatternTest, LabelsBreakAutomorphisms) {
  Pattern p = Pattern::Triangle();
  p.SetLabel(0, 0);
  p.SetLabel(1, 1);
  p.SetLabel(2, 2);
  EXPECT_EQ(p.CountAutomorphisms(), 1);
}

TEST(PatternTest, MatchingOrderConnected) {
  for (const Pattern& p :
       {Pattern::Triangle(), Pattern::Path(4), Pattern::Diamond(),
        Pattern::Star(4), Pattern::Cycle(5), Pattern::Clique(4)}) {
    EXPECT_TRUE(p.ConnectedPrefix(p.DefaultMatchingOrder()))
        << p.DebugString();
  }
}

TEST(PatternTest, SmQueriesMatchFig13Shapes) {
  Pattern q1 = Pattern::SmQuery(1, 4);
  Pattern q2 = Pattern::SmQuery(2, 4);
  Pattern q3 = Pattern::SmQuery(3, 4);
  EXPECT_EQ(q1.num_vertices(), 3);
  EXPECT_EQ(q1.num_edges(), 3);
  EXPECT_EQ(q2.num_vertices(), 4);
  EXPECT_EQ(q2.num_edges(), 4);
  EXPECT_EQ(q3.num_vertices(), 4);
  EXPECT_EQ(q3.num_edges(), 5);
  EXPECT_TRUE(q1.labeled());
}

TEST(CanonicalTest, IsomorphicPatternsShareCode) {
  Pattern a = Pattern::Path(3);  // 0-1-2
  Pattern b(3);                  // 1-0, 0-2: same path renumbered
  b.AddEdge(1, 0);
  b.AddEdge(0, 2);
  EXPECT_EQ(CanonicalCode(a), CanonicalCode(b));
  EXPECT_EQ(CanonicalEncoding(a), CanonicalEncoding(b));
}

TEST(CanonicalTest, DifferentShapesDiffer) {
  EXPECT_NE(CanonicalCode(Pattern::Path(3)),
            CanonicalCode(Pattern::Triangle()));
  EXPECT_NE(CanonicalCode(Pattern::Path(4)),
            CanonicalCode(Pattern::Star(3)));
  EXPECT_NE(CanonicalCode(Pattern::Diamond()),
            CanonicalCode(Pattern::Cycle(4)));
}

TEST(CanonicalTest, LabelsDistinguish) {
  Pattern a = Pattern::Path(3);
  Pattern b = Pattern::Path(3);
  a.SetLabel(0, 1);
  b.SetLabel(2, 1);  // symmetric position: still isomorphic
  EXPECT_EQ(CanonicalCode(a), CanonicalCode(b));
  Pattern c = Pattern::Path(3);
  c.SetLabel(1, 1);  // center labeled: different
  EXPECT_NE(CanonicalCode(a), CanonicalCode(c));
}

TEST(CanonicalTest, CacheAgreesWithDirect) {
  CanonicalCache cache;
  for (const Pattern& p :
       {Pattern::Triangle(), Pattern::Path(4), Pattern::Diamond()}) {
    EXPECT_EQ(cache.Get(p), CanonicalCode(p));
  }
  EXPECT_EQ(cache.size(), 3u);
}

TEST(IsomorphismTest, TriangleCountOnToy) {
  Graph g = ToyGraph();
  // Triangles: {0,1,2} and {1,2,3}.
  EXPECT_EQ(CountInstances(g, Pattern::Triangle()), 2u);
  EXPECT_EQ(CountEmbeddings(g, Pattern::Triangle()), 12u);
}

TEST(IsomorphismTest, LabeledMatch) {
  Graph g = ToyGraph();
  Pattern q = Pattern::Triangle();
  q.SetLabel(0, 0);
  q.SetLabel(1, 1);
  q.SetLabel(2, 2);
  // Two labeled triangles: {0,1,2} and {3,1,2} (labels 0,1,2 each), one
  // embedding apiece since the labels break every automorphism.
  EXPECT_EQ(CountEmbeddings(g, q), 2u);
}

TEST(IsomorphismTest, IsEmbeddingValidation) {
  Graph g = ToyGraph();
  EXPECT_TRUE(IsEmbedding(g, Pattern::Triangle(), {0, 1, 2}));
  EXPECT_FALSE(IsEmbedding(g, Pattern::Triangle(), {0, 1, 3}));  // 0-3 absent
  EXPECT_FALSE(IsEmbedding(g, Pattern::Triangle(), {0, 1, 1}));  // not injective
}

TEST(IsomorphismTest, EnumerateMatchesCount) {
  Graph g = ToyGraph();
  std::vector<std::vector<VertexId>> embeddings;
  EnumerateEmbeddings(g, Pattern::Path(3), &embeddings);
  EXPECT_EQ(embeddings.size(), CountEmbeddings(g, Pattern::Path(3)));
  for (const auto& e : embeddings) {
    EXPECT_TRUE(IsEmbedding(g, Pattern::Path(3), e));
  }
}

TEST(IsomorphismTest, PatternOfVerticesInduced) {
  Graph g = ToyGraph();
  Pattern p = PatternOfVertices(g, {0, 1, 2}, /*use_labels=*/false);
  EXPECT_EQ(CanonicalCode(p), CanonicalCode(Pattern::Triangle()));
  Pattern q = PatternOfVertices(g, {0, 1, 3}, false);
  EXPECT_EQ(q.num_edges(), 2);  // wedge 0-1, 1-3
}

TEST(IsomorphismTest, PatternOfEdges) {
  Graph g = ToyGraph();
  g.EnsureEdgeIndex();
  EdgeId e01 = g.FindEdgeId(0, 1);
  EdgeId e12 = g.FindEdgeId(1, 2);
  Pattern p = PatternOfEdges(g, {e01, e12}, false);
  EXPECT_EQ(CanonicalCode(p), CanonicalCode(Pattern::Path(3)));
}

TEST(ParsePatternTest, EdgesOnly) {
  auto p = ParsePattern("0-1,1-2,2-0");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(CanonicalCode(p.value()), CanonicalCode(Pattern::Triangle()));
  EXPECT_FALSE(p.value().labeled());
}

TEST(ParsePatternTest, WithLabelsAndWildcard) {
  auto p = ParsePattern("0-1,1-2;labels=5,*,7");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().label(0), 5u);
  EXPECT_EQ(p.value().label(1), Pattern::kAnyLabel);
  EXPECT_EQ(p.value().label(2), 7u);
}

TEST(ParsePatternTest, RoundTripsCannedShapes) {
  auto diamond = ParsePattern("0-1,1-2,2-3,3-0,0-2");
  ASSERT_TRUE(diamond.ok());
  EXPECT_EQ(CanonicalCode(diamond.value()),
            CanonicalCode(Pattern::Diamond()));
}

TEST(ParsePatternTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParsePattern("").ok());
  EXPECT_FALSE(ParsePattern("01").ok());
  EXPECT_FALSE(ParsePattern("0-x").ok());
  EXPECT_FALSE(ParsePattern("0-0").ok());            // self loop
  EXPECT_FALSE(ParsePattern("0-9").ok());            // out of range
  EXPECT_FALSE(ParsePattern("0-1;labels=1").ok());   // label count
  EXPECT_FALSE(ParsePattern("0-1;lbl=1,2").ok());    // bad suffix
  EXPECT_FALSE(ParsePattern("0-1;labels=1,2,3").ok());
}

TEST(GraphTest, StorageBytesReasonable) {
  Graph g = ToyGraph();
  // row_ptr (6x8) + col (12x4) + labels (5x4) = 116 before edge index.
  EXPECT_EQ(g.StorageBytes(), 116u);
}

}  // namespace
}  // namespace gpm::graph
