#include <gtest/gtest.h>

#include "core/intersection.h"
#include "gpusim/device.h"

namespace gpm::core {
namespace {

using graph::VertexId;

gpusim::SimParams SmallParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 1 << 20;
  p.um_device_buffer_bytes = 0;
  return p;
}

std::vector<VertexId> Evens(std::size_t n) {
  std::vector<VertexId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<VertexId>(2 * i);
  return v;
}

std::vector<VertexId> Multiples(std::size_t n, VertexId step) {
  std::vector<VertexId> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<VertexId>(step * i);
  }
  return v;
}

template <typename Fn>
std::pair<std::vector<VertexId>, double> RunIntersect(
    Fn&& fn, const std::vector<VertexId>& a,
    const std::vector<VertexId>& b) {
  gpusim::Device device(SmallParams());
  std::vector<VertexId> out;
  double cycles = 0;
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    fn(w, a, b, &out);
    cycles = w.cycles();
  });
  return {out, cycles};
}

TEST(IntersectionTest, MergeAndGallopingAgree) {
  auto a = Evens(100);                // 0,2,...,198
  auto b = Multiples(40, 3);          // 0,3,...,117
  auto [merge_out, merge_cycles] = RunIntersect(IntersectSorted, a, b);
  auto [gallop_out, gallop_cycles] =
      RunIntersect(IntersectGalloping, a, b);
  EXPECT_EQ(merge_out, gallop_out);
  // Multiples of 6 up to min(198, 117).
  std::vector<VertexId> expected;
  for (VertexId x = 0; x <= 117; x += 6) expected.push_back(x);
  EXPECT_EQ(merge_out, expected);
}

TEST(IntersectionTest, GallopingCheaperWhenLopsided) {
  auto small = Multiples(8, 100);     // 8 elements
  auto large = Evens(100000);         // 100k elements
  auto [m_out, merge_cycles] = RunIntersect(IntersectSorted, small, large);
  auto [g_out, gallop_cycles] =
      RunIntersect(IntersectGalloping, small, large);
  EXPECT_EQ(m_out, g_out);
  EXPECT_LT(gallop_cycles, merge_cycles / 10);
}

TEST(IntersectionTest, MergeCheaperWhenBalanced) {
  auto a = Evens(5000);
  auto b = Multiples(5000, 3);
  auto [m_out, merge_cycles] = RunIntersect(IntersectSorted, a, b);
  auto [g_out, gallop_cycles] =
      RunIntersect(IntersectGalloping, a, b);
  EXPECT_EQ(m_out, g_out);
  EXPECT_LT(merge_cycles, gallop_cycles);
}

TEST(IntersectionTest, AdaptivePicksTheCheaper) {
  // Lopsided: adaptive should cost like galloping.
  auto small = Multiples(8, 100);
  auto large = Evens(100000);
  auto [a_out, adaptive_cycles] =
      RunIntersect(IntersectAdaptive, small, large);
  auto [g_out, gallop_cycles] =
      RunIntersect(IntersectGalloping, small, large);
  EXPECT_EQ(a_out, g_out);
  EXPECT_DOUBLE_EQ(adaptive_cycles, gallop_cycles);

  // Balanced: adaptive should cost like merge.
  auto a = Evens(5000);
  auto b = Multiples(5000, 3);
  auto [a2_out, adaptive2] = RunIntersect(IntersectAdaptive, a, b);
  auto [m2_out, merge2] = RunIntersect(IntersectSorted, a, b);
  EXPECT_EQ(a2_out, m2_out);
  EXPECT_DOUBLE_EQ(adaptive2, merge2);
}

TEST(IntersectionTest, EmptyInputs) {
  std::vector<VertexId> empty;
  auto a = Evens(10);
  auto [out1, c1] = RunIntersect(IntersectAdaptive, empty, a);
  EXPECT_TRUE(out1.empty());
  auto [out2, c2] = RunIntersect(IntersectAdaptive, a, empty);
  EXPECT_TRUE(out2.empty());
  auto [out3, c3] = RunIntersect(IntersectSorted, empty, empty);
  EXPECT_TRUE(out3.empty());
}

TEST(IntersectionTest, UnionSortedDedups) {
  gpusim::Device device(SmallParams());
  std::vector<VertexId> a{1, 3, 5}, b{3, 4, 5, 6}, out;
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    UnionSorted(w, a, b, &out);
  });
  EXPECT_EQ(out, (std::vector<VertexId>{1, 3, 4, 5, 6}));
}

TEST(IntersectionTest, BinaryContainsProbes) {
  gpusim::Device device(SmallParams());
  auto list = Evens(1000);
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    EXPECT_TRUE(BinaryContains(w, list, 500));
    EXPECT_FALSE(BinaryContains(w, list, 501));
    EXPECT_GT(w.cycles(), 0.0);
  });
}

}  // namespace
}  // namespace gpm::core
