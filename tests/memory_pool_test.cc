#include <gtest/gtest.h>

#include "core/memory_pool.h"

namespace gpm::core {
namespace {

gpusim::SimParams SmallParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 1 << 20;
  p.um_device_buffer_bytes = 0;
  return p;
}

TEST(MemoryPoolTest, ReserveTakesDeviceMemory) {
  gpusim::Device device(SmallParams());
  MemoryPool pool(&device, {.pool_bytes = 64 << 10, .block_bytes = 8192});
  ASSERT_TRUE(pool.Reserve().ok());
  EXPECT_EQ(device.memory().used_bytes(), 64u << 10);
  EXPECT_EQ(pool.blocks_total(), 8u);
}

TEST(MemoryPoolTest, ReserveFailsWhenTooLarge) {
  gpusim::Device device(SmallParams());
  MemoryPool pool(&device, {.pool_bytes = 2 << 20, .block_bytes = 8192});
  Status st = pool.Reserve();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kDeviceOutOfMemory);
}

TEST(MemoryPoolTest, WarpWriteGrabsBlocksOnDemand) {
  gpusim::Device device(SmallParams());
  MemoryPool pool(&device, {.pool_bytes = 64 << 10, .block_bytes = 8192});
  ASSERT_TRUE(pool.Reserve().ok());
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    MemoryPool::WarpCursor cursor;
    // 8 KiB blocks hold 1024 8-byte entries; 2500 entries = 3 blocks.
    pool.WarpWrite(w, &cursor, 2500, 8);
    pool.EndWarpTask(&cursor);
  });
  EXPECT_EQ(device.stats().pool_block_requests, 3u);
  EXPECT_EQ(device.stats().pool_blocks_wasted, 1u);  // last block partial
}

TEST(MemoryPoolTest, CursorPersistsAcrossTasks) {
  gpusim::Device device(SmallParams());
  MemoryPool pool(&device, {.pool_bytes = 64 << 10, .block_bytes = 8192});
  ASSERT_TRUE(pool.Reserve().ok());
  MemoryPool::WarpCursor cursor;
  device.LaunchKernel(4, [&](gpusim::WarpCtx& w, std::size_t) {
    pool.WarpWrite(w, &cursor, 100, 8);  // 400 entries total < 1 block
  });
  pool.EndWarpTask(&cursor);
  EXPECT_EQ(device.stats().pool_block_requests, 1u);
}

TEST(MemoryPoolTest, ExhaustionTriggersMidKernelFlush) {
  gpusim::Device device(SmallParams());
  MemoryPool pool(&device, {.pool_bytes = 16 << 10, .block_bytes = 8192});
  ASSERT_TRUE(pool.Reserve().ok());
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    MemoryPool::WarpCursor cursor;
    // 2 blocks available; 5000 entries need 5 blocks => flushes.
    pool.WarpWrite(w, &cursor, 5000, 8);
    pool.EndWarpTask(&cursor);
  });
  EXPECT_GE(pool.mid_kernel_flushes(), 1u);
  EXPECT_GT(device.stats().explicit_d2h_bytes, 0u);
}

TEST(MemoryPoolTest, FlushToHostDrainsDirtyBytes) {
  gpusim::Device device(SmallParams());
  MemoryPool pool(&device, {.pool_bytes = 64 << 10, .block_bytes = 8192});
  ASSERT_TRUE(pool.Reserve().ok());
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    MemoryPool::WarpCursor cursor;
    pool.WarpWrite(w, &cursor, 500, 8);
    pool.EndWarpTask(&cursor);
  });
  EXPECT_EQ(pool.FlushToHost(), 4000u);
  EXPECT_EQ(pool.FlushToHost(), 0u);  // already drained
}

TEST(MemoryPoolTest, WritesChargeDeviceTraffic) {
  gpusim::Device device(SmallParams());
  MemoryPool pool(&device, {.pool_bytes = 64 << 10, .block_bytes = 8192});
  ASSERT_TRUE(pool.Reserve().ok());
  device.LaunchKernel(1, [&](gpusim::WarpCtx& w, std::size_t) {
    MemoryPool::WarpCursor cursor;
    pool.WarpWrite(w, &cursor, 1000, 8);
    pool.EndWarpTask(&cursor);
  });
  EXPECT_EQ(device.stats().device_write_bytes, 8000u);
}

TEST(MemoryPoolTest, BlockSizeClampRespected) {
  gpusim::Device device(SmallParams());
  // Pool smaller than one default block still works with a clamped block.
  MemoryPool pool(&device, {.pool_bytes = 4096, .block_bytes = 4096});
  ASSERT_TRUE(pool.Reserve().ok());
  EXPECT_EQ(pool.blocks_total(), 1u);
}

// -- DeviceMemory error paths ------------------------------------------------

TEST(DeviceMemoryErrorTest, ResizeBeyondCapacityLeavesStateUntouched) {
  gpusim::DeviceMemory mem(1000);
  auto a = mem.Allocate(300);
  auto b = mem.Allocate(500);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::size_t used_before = mem.used_bytes();
  const std::size_t peak_before = mem.peak_used_bytes();
  // Growing `a` to 600 needs 300 extra bytes but only 200 are free.
  Status st = mem.Resize(a.value(), 600);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kDeviceOutOfMemory);
  EXPECT_EQ(mem.used_bytes(), used_before);
  EXPECT_EQ(mem.peak_used_bytes(), peak_before);
  // The allocation is still usable at its original size.
  EXPECT_TRUE(mem.Resize(a.value(), 200).ok());
  EXPECT_EQ(mem.used_bytes(), 700u);
  mem.Free(a.value());
  mem.Free(b.value());
}

TEST(DeviceMemoryErrorTest, FreeOrderDoesNotDisturbPeakTracking) {
  gpusim::DeviceMemory mem(1000);
  auto a = mem.Allocate(400);
  auto b = mem.Allocate(600);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(mem.peak_used_bytes(), 1000u);
  // Free out of allocation order: peak must stay the high-water mark.
  mem.Free(b.value());
  EXPECT_EQ(mem.peak_used_bytes(), 1000u);
  auto c = mem.Allocate(100);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(mem.peak_used_bytes(), 1000u);
  mem.Free(a.value());
  mem.Free(c.value());
  EXPECT_EQ(mem.used_bytes(), 0u);
  // ResetPeak rebases to the current (empty) usage.
  mem.ResetPeak();
  EXPECT_EQ(mem.peak_used_bytes(), 0u);
}

TEST(DeviceMemoryErrorTest, FailedPoolReserveUnwindsCleanly) {
  gpusim::Device device(SmallParams());
  device.EnableSanitizer(gpusim::Sanitizer::Options{});
  // Claim most of the device so the pool reservation cannot fit.
  auto hog = gpusim::DeviceBuffer::Make(&device.memory(), 900 << 10);
  ASSERT_TRUE(hog.ok());
  const std::size_t used_before = device.memory().used_bytes();
  MemoryPool pool(&device, {.pool_bytes = 512 << 10, .block_bytes = 8192});
  Status st = pool.Reserve();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kDeviceOutOfMemory);
  // The failed reservation must not strand bytes or shadow state: usage is
  // unchanged and the sanitizer's leak sweep stays clean once the
  // remaining owner releases.
  EXPECT_EQ(device.memory().used_bytes(), used_before);
  hog.value().Release();
  device.sanitizer()->FinalizeLeakCheck();
  EXPECT_TRUE(device.sanitizer()->findings().empty())
      << device.sanitizer()->ReportText();
}

}  // namespace
}  // namespace gpm::core
