// Tests for the periodic metrics sampler: the series matches hand-computed
// DeviceStats deltas on a tiny kernel sequence, interval semantics
// (disabled by default, huge intervals sample nothing, interval=1 samples
// every clock advance), and the gamma.metrics.v1 JSON shape.
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <string>

#include "gpusim/device.h"
#include "gpusim/metrics.h"
#include "minijson.h"

namespace gpm::gpusim {
namespace {

SimParams SmallParams() {
  SimParams p;
  p.device_memory_bytes = 1 << 20;
  p.um_device_buffer_bytes = 64 << 10;
  return p;
}

TEST(MetricsSamplerTest, DisabledByDefault) {
  Device device(SmallParams());
  EXPECT_FALSE(device.metrics().enabled());
  device.LaunchKernel(4, [](WarpCtx& w, std::size_t) {
    w.ChargeCompute(100);
  });
  device.ChargeHostWork(5000);
  EXPECT_TRUE(device.metrics().samples().empty());
}

TEST(MetricsSamplerTest, SeriesMatchesHandComputedDeltas) {
  SimParams params = SmallParams();
  Device device(params);
  // Interval 1: every clock advance crosses the next boundary, so the
  // series gets exactly one sample per kernel/copy and the counters in
  // consecutive samples are the per-step deltas.
  device.metrics().set_interval_cycles(1);

  // Step 1: one kernel, one task, a 300-byte zero-copy read.
  device.LaunchKernel(1, [](WarpCtx& w, std::size_t) {
    w.ZeroCopyRead(300);
  });
  // Step 2: an explicit 1000-byte H2D copy (no kernel).
  device.CopyHostToDevice(1000);
  // Step 3: another kernel with two device reads of 64 bytes each.
  device.LaunchKernel(2, [](WarpCtx& w, std::size_t) {
    w.DeviceRead(64);
  });

  const auto& samples = device.metrics().samples();
  ASSERT_EQ(samples.size(), 3u);

  const std::size_t zc_tx =
      (300 + params.zc_transaction_bytes - 1) / params.zc_transaction_bytes;
  EXPECT_EQ(samples[0].counters.kernel_launches, 1u);
  EXPECT_EQ(samples[0].counters.warp_tasks, 1u);
  EXPECT_EQ(samples[0].counters.zc_transactions, zc_tx);
  EXPECT_EQ(samples[0].counters.zc_bytes,
            zc_tx * params.zc_transaction_bytes);
  EXPECT_EQ(samples[0].counters.explicit_h2d_bytes, 0u);

  // The copy advanced the clock but launched nothing: only h2d moved.
  EXPECT_EQ(samples[1].counters.kernel_launches, 1u);
  EXPECT_EQ(samples[1].counters.explicit_h2d_bytes, 1000u);
  EXPECT_EQ(samples[1].counters.zc_transactions, zc_tx);

  EXPECT_EQ(samples[2].counters.kernel_launches, 2u);
  EXPECT_EQ(samples[2].counters.warp_tasks, 3u);
  EXPECT_EQ(samples[2].counters.device_reads -
                samples[1].counters.device_reads,
            2u);
  EXPECT_EQ(samples[2].counters.device_read_bytes -
                samples[1].counters.device_read_bytes,
            128u);

  // Timestamps are the clock at each sampling edge, strictly increasing.
  EXPECT_GT(samples[0].cycles, 0.0);
  EXPECT_GT(samples[1].cycles, samples[0].cycles);
  EXPECT_GT(samples[2].cycles, samples[1].cycles);
  EXPECT_DOUBLE_EQ(samples[2].cycles, device.now_cycles());
}

TEST(MetricsSamplerTest, HugeIntervalSamplesNothingUntilCrossed) {
  Device device(SmallParams());
  device.metrics().set_interval_cycles(1e12);
  for (int i = 0; i < 8; ++i) {
    device.LaunchKernel(1, [](WarpCtx& w, std::size_t) {
      w.ChargeCompute(100);
    });
  }
  EXPECT_TRUE(device.metrics().samples().empty());
  device.ChargeHostWork(2e12);  // crosses the first interval boundary
  ASSERT_EQ(device.metrics().samples().size(), 1u);
  EXPECT_EQ(device.metrics().samples()[0].counters.kernel_launches, 8u);
}

TEST(MetricsSamplerTest, ForceSamplePinsFinalStateAndTracksOccupancy) {
  SimParams params = SmallParams();
  Device device(params);
  auto region = device.unified().Register(1 << 18);
  device.LaunchKernel(1, [&](WarpCtx& w, std::size_t) {
    w.UnifiedRead(region, 0, 64);
    w.UnifiedRead(region, params.um_page_bytes, 64);
  });
  // Sampler is disabled (no interval), but ForceSample still records.
  device.metrics().ForceSample(device);
  ASSERT_EQ(device.metrics().samples().size(), 1u);
  const MetricsSampler::Sample& s = device.metrics().samples()[0];
  EXPECT_EQ(s.um_resident_pages, 2u);
  EXPECT_EQ(s.um_capacity_pages, device.unified().capacity_pages());
  EXPECT_EQ(s.counters.um_page_faults, 2u);
  EXPECT_GT(s.device_peak_bytes, 0u);  // UM buffer reservation counts
}

TEST(MetricsSamplerTest, JsonHasEveryColumnAndMatchingRows) {
  Device device(SmallParams());
  device.metrics().set_interval_cycles(1);
  device.LaunchKernel(2, [](WarpCtx& w, std::size_t) {
    w.ChargeCompute(50);
    w.DeviceWrite(32);
  });
  device.metrics().ForceSample(device);

  minijson::Value doc;
  ASSERT_TRUE(minijson::Parse(device.metrics().ToJson(device), &doc));
  EXPECT_EQ(doc.Find("schema")->str, "gamma.metrics.v1");
  EXPECT_DOUBLE_EQ(doc.Find("interval_cycles")->number, 1.0);

  const minijson::Value* columns = doc.Find("columns");
  ASSERT_NE(columns, nullptr);
  // Ten gauges plus every DeviceStats counter, each exactly once.
  ASSERT_EQ(columns->array.size(), 10 + DeviceStats::Fields().size());
  std::set<std::string> names;
  for (const minijson::Value& c : columns->array) names.insert(c.str);
  EXPECT_EQ(names.size(), columns->array.size()) << "duplicate column";
  for (const DeviceStats::Field& f : DeviceStats::Fields()) {
    EXPECT_TRUE(names.count(f.name)) << "missing counter column " << f.name;
  }
  for (const char* gauge : {"cycles", "device_used_bytes", "host_bytes",
                            "um_resident_pages", "um_capacity_pages",
                            "device_peak_bytes", "streams",
                            "link_busy_cycles", "unified_page_count",
                            "adaptivity_regret_cycles"}) {
    EXPECT_TRUE(names.count(gauge)) << "missing gauge column " << gauge;
  }

  const minijson::Value* rows = doc.Find("samples");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), device.metrics().samples().size());
  std::size_t kernel_col = 0;
  for (std::size_t i = 0; i < columns->array.size(); ++i) {
    if (columns->array[i].str == "kernel_launches") kernel_col = i;
  }
  for (std::size_t i = 0; i < rows->array.size(); ++i) {
    const minijson::Value& row = rows->array[i];
    ASSERT_EQ(row.array.size(), columns->array.size()) << "row " << i;
    EXPECT_DOUBLE_EQ(row.array[0].number,
                     device.metrics().samples()[i].cycles);
    EXPECT_DOUBLE_EQ(
        row.array[kernel_col].number,
        static_cast<double>(
            device.metrics().samples()[i].counters.kernel_launches));
  }
}

}  // namespace
}  // namespace gpm::gpusim
