// Historical location of the minimal JSON reader; the implementation now
// lives in src/common/json_reader.h so the gamma.plan.v1 load path can use
// it. Tests keep including "minijson.h".
#ifndef GAMMA_TESTS_MINIJSON_H_
#define GAMMA_TESTS_MINIJSON_H_

#include "common/json_reader.h"

#endif  // GAMMA_TESTS_MINIJSON_H_
